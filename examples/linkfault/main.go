// Linkfault demonstrates the network-level fault model end to end: a
// 4x4 mesh under uniform traffic loses a link (and later a whole
// router) mid-run, fault-aware two-layer turn-model routing detours the
// live traffic, and the NIs' end-to-end retransmission layer wins back
// the packets that were in flight when the hardware died — finishing
// with a 1.0000 delivery ratio despite both faults.
package main

import (
	"fmt"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

const (
	stop     = 4000
	linkAt   = 1000
	routerAt = 2500
	linkSrc  = 5  // router 5's East link dies first
	deadNode = 10 // then router 10 dies outright
)

func main() {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	src := traffic.NewSynthetic(16, 0.04, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 2014)
	src.StopAt(stop)
	n := noc.MustNew(noc.Config{
		Width: 4, Height: 4, Router: rc,
		// Retransmit after 300 quiet cycles, doubling the wait each retry.
		Retx: noc.RetxConfig{Timeout: 300},
	}, &avoid{inner: src, node: deadNode})
	defer n.Close()

	n.AddHook(func(c sim.Cycle) {
		switch c {
		case linkAt:
			must(n.SetLinkFault(linkSrc, topology.East, true))
			fmt.Printf("cycle %4d: link %d:e died — traffic detours around it\n", c, linkSrc)
		case routerAt:
			must(n.SetRouterFault(deadNode, true))
			fmt.Printf("cycle %4d: router %d died — all four of its links are gone\n", c, deadNode)
		}
	})

	fmt.Println("4x4 mesh, uniform traffic, retransmission timeout 300 cycles")
	n.Run(stop)
	if !n.Drain(stop + 100000) {
		fmt.Printf("network did not drain: %d packets in flight\n", n.Stats().InFlight())
		return
	}
	st := n.Stats()
	var reroutes uint64
	for id := 0; id < 16; id++ {
		reroutes += n.Router(id).Counters.Reroutes
	}
	fmt.Printf("\nafter drain at cycle %d:\n", n.Now())
	fmt.Printf("  offered:      %d packets (+%d retransmitted copies)\n",
		st.Created()-st.Retransmits(), st.Retransmits())
	fmt.Printf("  delivered:    %d (delivery ratio %.4f)\n", st.Ejected(), st.DeliveryRatio())
	fmt.Printf("  lost copies:  %d dropped at faults, %d duplicates suppressed at sinks\n",
		st.Dropped(), st.Duplicates())
	fmt.Printf("  reroutes:     %d RC decisions deviated from XY to dodge the faults\n", reroutes)
	fmt.Printf("  avg latency:  %.2f cycles (p99 %.0f — recovery cost lives in the tail)\n",
		st.AvgLatency(), st.Percentile(99))
}

// avoid keeps the workload off the router that is scheduled to die, so
// every offered packet stays deliverable and the final ratio is exactly
// 1. Packets merely routed *through* the dying node are still lost and
// recovered — that is the interesting part.
type avoid struct {
	inner noc.Traffic
	node  int
}

func (a *avoid) Offered(node int, c sim.Cycle) []*flit.Packet {
	if node == a.node {
		return nil
	}
	ps := a.inner.Offered(node, c)
	kept := ps[:0]
	for _, p := range ps {
		if p.Dst != a.node {
			kept = append(kept, p)
		}
	}
	return kept
}

func (a *avoid) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	return a.inner.OnEject(p, c)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
