// Detection demonstrates the fault lifecycle around the paper's router:
// transient faults striking and being masked (Section I's second fault
// class), permanent faults accumulating under the protected router's
// mechanisms, and — when a router finally exhausts its redundancy — the
// watchdog layer (the NoCAlert role of the paper's reference [18])
// detecting and localizing the failure online.
package main

import (
	"fmt"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
	"gonoc/internal/watchdog"
)

func main() {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Classes = 1
	cfg := noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}
	src := traffic.NewSynthetic(16, 0.015, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 99)
	n := noc.MustNew(cfg, src)

	mon := watchdog.New(n, 250)
	trans := fault.NewTransientInjector(n, 0.002, 8, 7)

	fmt.Println("phase 1 — transient storm, all masked")
	n.Run(10_000)
	fmt.Printf("  %d transient strikes, %d packets delivered, watchdog reports: %d\n",
		trans.Strikes, n.Stats().Ejected(), len(mon.Suspects()))
	trans.Rate = 0 // storm over

	fmt.Println("phase 2 — permanent faults accumulate, mechanisms mask them")
	inj := fault.NewInjector(n, 800, 13, true) // safe-only: never breaks a router
	n.Run(10_000)
	fmt.Printf("  %d permanent faults injected, network functional: %v, watchdog reports: %d\n",
		len(inj.Injected()), n.Functional(), len(mon.Suspects()))

	fmt.Println("phase 3 — a router exhausts its redundancy")
	victim := n.Router(5)
	victim.SetRCFault(topology.West, 0, true)
	victim.SetRCFault(topology.West, 1, true) // both copies: RC at West is dead
	n.Run(10_000)
	fmt.Printf("  router 5 functional: %v\n", victim.Functional())
	if sus := mon.SuspectsAt(5); len(sus) > 0 {
		fmt.Printf("  watchdog localized it: %v\n", sus[0])
	} else {
		fmt.Println("  (no flow crossed the dead port yet — run longer to see a report)")
	}

	fmt.Println()
	fmt.Print(n.Heatmap())
}
