// Spfsweep reproduces the paper's Section VIII: the Table III SPF
// comparison against BulletProof, Vicis and RoCo, the SPF-vs-VC-count
// corollary, and — beyond the paper's theoretical analysis — Monte-Carlo
// faults-to-failure campaigns on the actual router models.
package main

import (
	"fmt"

	"gonoc/internal/experiments"
	"gonoc/internal/fault"
	"gonoc/internal/router"
)

func main() {
	fmt.Print(experiments.FormatSPF(experiments.SPFTable()))
	fmt.Println()

	fmt.Println("SPF vs virtual channels (Section VIII-E: 7 @ 2 VCs, 11.4 @ 4 VCs)")
	for _, r := range experiments.SPFVCSweep([]int{2, 3, 4, 6, 8}) {
		fmt.Printf("  %-26s area +%4.1f%%  mean faults %5.1f  SPF %5.2f\n",
			r.Design, r.AreaOverhead*100, r.MeanFaults, r.SPF)
	}
	fmt.Println()

	const trials = 10_000
	fmt.Printf("Monte-Carlo faults-to-failure (%d trials per design)\n", trials)
	for _, r := range experiments.CampaignTable(trials, 1, 0) {
		fmt.Printf("  %-16s mean %5.2f  range [%d, %d]\n", r.Design, r.Mean, r.Min, r.Max)
	}
	fmt.Println()

	// The theoretical bounds behind the proposed router's row, and how
	// the two site universes differ (see internal/fault).
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	min, max := fault.TheoreticalBounds(cfg.Ports, cfg.VCs)
	fmt.Printf("theoretical bounds (Section VIII-E): min %d, max %d, mean %.1f\n",
		min, max, float64(min+max)/2)
	full := fault.FaultsToFailure(cfg, trials, 2, fault.UniverseAll)
	fmt.Printf("full site universe (incl. VA2/SA2 arbiters): mean %.2f, range [%d, %d]\n",
		full.Mean, full.Min, full.Max)
	fmt.Println("(the real router tolerates more faults than the paper's conservative count)")
}
