// Quickstart: build the paper's 8×8 mesh of protected routers, drive it
// with uniform random traffic, and print latency and throughput.
package main

import (
	"fmt"

	"gonoc/internal/noc"
	"gonoc/internal/traffic"
)

func main() {
	// The default configuration is the paper's evaluation point: an 8×8
	// mesh of fault-tolerant 5×5 routers with 4 VCs per input port.
	cfg := noc.DefaultConfig()

	// Uniform random traffic: every node offers 0.02 packets per cycle,
	// 60% single-flit control packets and 40% five-flit data packets.
	mesh := cfg.Width * cfg.Height
	src := traffic.NewSynthetic(
		mesh,
		0.02,
		traffic.Uniform(mesh),
		traffic.Bimodal(1, 5, 0.6),
		42, // seed: every run of this program prints identical numbers
	)

	n := noc.MustNew(cfg, src)
	n.Run(50_000)

	st := n.Stats()
	fmt.Println("gonoc quickstart — 8×8 mesh, protected routers, uniform traffic")
	fmt.Printf("  packets delivered: %d of %d offered\n", st.Ejected(), st.Created())
	fmt.Printf("  average latency:   %.2f cycles\n", st.AvgLatency())
	fmt.Printf("  p95 latency:       %.0f cycles\n", st.Percentile(95))
	fmt.Printf("  throughput:        %.4f flits/node/cycle\n",
		st.ThroughputFlits(n.Now())/float64(mesh))
}
