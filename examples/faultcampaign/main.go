// Faultcampaign demonstrates the protected router's headline property:
// it keeps delivering packets as permanent faults accumulate, engaging a
// different mechanism per pipeline stage (Section V), while the
// unprotected baseline dies on its first fault.
//
// The program injects the paper's Section IV scenario — one fault per
// pipeline stage — one fault at a time into a live 4×4 network, and after
// each injection reports delivered packets, average latency and which
// fault-tolerance mechanisms fired.
package main

import (
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func run(ft bool) {
	kind := "baseline (unprotected)"
	if ft {
		kind = "protected"
	}
	fmt.Printf("=== %s router ===\n", kind)

	rc := router.DefaultConfig()
	rc.FaultTolerant = ft
	rc.Classes = 1
	src := traffic.NewSynthetic(16, 0.03, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 7)
	n := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}, src)

	// The Section IV scenario, applied to the central router 5: one
	// permanent fault in each pipeline stage.
	target := n.Router(5)
	steps := []struct {
		name   string
		inject func()
	}{
		{"no faults", func() {}},
		{"RC: primary RC unit of West port", func() { target.SetRCFault(topology.West, 0, true) }},
		{"VA: arbiter set of West/VC0", func() { target.SetVA1Fault(topology.West, 0, true) }},
		{"SA: stage-1 arbiter of West port", func() { target.SetSA1Fault(topology.West, true) }},
		{"XB: crossbar mux of East port", func() { target.SetXBFault(topology.East, true) }},
	}

	var prevEjected uint64
	for _, step := range steps {
		step.inject()
		start := n.Now()
		n.Run(10_000)
		st := n.Stats()
		delivered := st.Ejected() - prevEjected
		prevEjected = st.Ejected()
		fmt.Printf("%-38s delivered %5d pkts in %5d cycles  functional=%v\n",
			step.name, delivered, n.Now()-start, target.Functional())
		if delivered == 0 && ft {
			fmt.Println("  !! protected router stopped delivering — should not happen")
		}
	}

	if ft {
		c := target.Counters
		fmt.Println("mechanism activity at router 5:")
		fmt.Printf("  duplicate RC computations: %d\n", c.RCDuplicateUses)
		fmt.Printf("  VA arbiter borrows:        %d (stalled %d cycles waiting for a lender)\n",
			c.VA1Borrows, c.VA1BorrowStalls)
		fmt.Printf("  SA bypass grants:          %d (with %d VC transfers)\n",
			c.SABypassGrants, c.SATransfers)
		fmt.Printf("  crossbar secondary-path:   %d traversals\n", c.XBSecondary)
	}
	fmt.Println()
}

func main() {
	run(true)
	run(false)

	// Finally, the failure boundary: break both paths of one output and
	// watch Functional() flip, exactly the SPF minimum of 2 faults.
	fmt.Println("=== failure boundary (Section VIII-D) ===")
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	r := core.MustNew(4, topology.NewMesh(3, 3), rc)
	fmt.Printf("fresh router functional: %v\n", r.Functional())
	r.SetXBFault(topology.East, true)
	fmt.Printf("after XB mux fault:      %v (secondary path covers it)\n", r.Functional())
	r.SetXBSecondaryFault(topology.East, true)
	fmt.Printf("after secondary fault:   %v (minimum 2 faults to fail)\n", r.Functional())
	_ = sim.Cycle(0)
}
