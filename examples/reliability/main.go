// Reliability recomputes the paper's Section VII analysis from first
// principles: the FORC/TDDB physics, the component FIT library, Tables I
// and II, and the MTTF equations 4–7 — showing each step of the
// derivation rather than just the final table.
package main

import (
	"fmt"

	"gonoc/internal/experiments"
	"gonoc/internal/reliability"
)

func main() {
	params := reliability.DefaultTDDBParams()
	fmt.Println("Step 1 — FORC TDDB physics (Equation 2)")
	fmt.Printf("  FORC(1.0 V, 300 K)      = %.4f FIT\n", params.FORC(1.0, 300))
	fmt.Printf("  FIT per FET (100%% duty) = %.4f FIT (calibration point)\n",
		params.FITPerFET(1, 1.0, 300))
	fmt.Printf("  at 350 K                = %.4f FIT (temperature acceleration)\n",
		params.FITPerFET(1, 1.0, 350))
	fmt.Println()

	lib := reliability.DefaultFITLibrary()
	fmt.Println("Step 2 — component FIT library (transistor count × FIT/FET)")
	for _, c := range []reliability.Component{
		reliability.Comparator6, reliability.Arb4, reliability.Arb20,
		reliability.Mux4x1, reliability.Mux5x1x32, reliability.DFFBit,
	} {
		fmt.Printf("  %-18s %5d FETs  →  %6.1f FIT\n",
			c.String(), reliability.Transistors(c), lib.FIT(c))
	}
	fmt.Println()

	fmt.Println("Step 3 — SOFR composition of the pipeline (Tables I & II) and MTTF")
	fmt.Print(experiments.FormatReliability(experiments.Reliability()))
	fmt.Println()

	fmt.Println("Step 4 — sensitivity: MTTF improvement across operating points")
	spec := reliability.PaperSpec()
	for _, t := range []float64{300, 325, 350} {
		l := reliability.NewFITLibrary(params, 1.0, 1.0, t)
		fmt.Printf("  T=%3.0f K: baseline %8.0f h, protected %9.0f h, improvement %.2f×\n",
			t,
			reliability.MTTFBaseline(l, spec),
			reliability.MTTFProtected(l, spec),
			reliability.Improvement(l, spec))
	}
}
