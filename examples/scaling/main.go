// Scaling walkthrough: step a 32×32 torus — 1024 fault-tolerant
// routers, 4× the paper's evaluation mesh — under tornado traffic, the
// pattern a torus is built for, and show what the scaled-up step loop
// provides: wrap-around links, worker sharding with bit-exact results,
// and a steady-state hot path that does not allocate.
package main

import (
	"fmt"
	"runtime"
	"time"

	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func main() {
	const w, h = 32, 32
	topo, err := topology.New("torus", w, h, 1)
	if err != nil {
		panic(err)
	}
	nodes := topo.Nodes()

	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	build := func(workers int) *noc.Network {
		// Tornado traffic sends each packet halfway around its row — the
		// adversarial pattern for a mesh (it concentrates load on the
		// center) and the showcase pattern for a torus, whose wrap-around
		// links cut every such route to at most half the ring. A fresh
		// seeded source per network keeps the runs comparable.
		src := traffic.NewSynthetic(nodes, 0.02, traffic.Tornado(topo), traffic.Bimodal(1, 5, 0.6), 42)
		return noc.MustNew(noc.Config{
			Width: w, Height: h, Topo: "torus",
			Router: rc, Warmup: 1000, Workers: workers,
		}, src)
	}

	fmt.Printf("gonoc scaling walkthrough — %dx%d torus (%d routers), tornado traffic\n\n", w, h, nodes)

	// 1. Throughput: time the same 5000-cycle run serially and sharded
	// over the worker pool. On a multi-core machine the parallel run is
	// faster; on any machine the results are bit-exact identical,
	// because compute shards only read last-cycle state and commits
	// apply in canonical node order.
	var serial, parallel *noc.Network
	for _, workers := range []int{1, 4} {
		n := build(workers)
		start := time.Now()
		n.Run(5000)
		elapsed := time.Since(start)
		st := n.Stats()
		fmt.Printf("  workers=%d: %6.0f steps/s (%.2fs), %d packets, avg latency %.2f cycles\n",
			workers, 5000/elapsed.Seconds(), elapsed.Seconds(), st.Ejected(), st.AvgLatency())
		if workers == 1 {
			serial = n
		} else {
			parallel = n
		}
	}
	same := serial.Stats().Ejected() == parallel.Stats().Ejected() &&
		serial.Stats().AvgLatency() == parallel.Stats().AvgLatency()
	fmt.Printf("  serial ≡ parallel: %v (same deliveries, bit-identical latencies)\n\n", same)
	parallel.Close()

	// 2. The zero-alloc steady state: with injection quiet, Step runs
	// entirely inside pre-allocated storage — no garbage at all — so
	// multi-million-cycle campaigns put no pressure on the collector.
	// (TestStepZeroAllocSteadyState pins this to exactly zero on a 64×64
	// mesh; here we just watch the allocation counter stand still.)
	n := serial
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	n.Run(500)
	runtime.ReadMemStats(&m1)
	fmt.Printf("  500 more cycles with live traffic: %d bytes allocated (traffic injection only)\n",
		m1.TotalAlloc-m0.TotalAlloc)
	fmt.Printf("  steady-state contract: Step itself allocates 0 objects — see BENCHMARKS.md\n")
	n.Close()
}
