// Observability walks through the internal/obs layer: a faulty 4×4
// protected mesh is simulated with metrics and tracing enabled, the
// per-router counter table shows where the fault-tolerance mechanisms
// fired, the latency distribution and per-packet hop spans show what
// those mechanisms cost and where, and the captured event trace is
// written as a Chrome trace_event file — open trace.json in
// chrome://tracing or https://ui.perfetto.dev to see each router's
// pipeline activity laid out as per-port timelines.
//
// For the same data live over HTTP while a long run steps, see
// `noctool serve` (Prometheus /metrics + JSON /status).
package main

import (
	"fmt"
	"log"
	"os"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func main() {
	// One Observer carries both the counter registry and the event
	// tracer; attaching it to the router config instruments every router,
	// link and network interface. A nil Obs (the default) keeps the
	// simulator metrics-free.
	o := obs.New(1 << 18) // ring retains the most recent 262144 events

	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	cfg := noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}
	src := traffic.NewSynthetic(16, 0.04, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 2014)
	n := noc.MustNew(cfg, src)

	// Break router 5 three different ways; each engages a different
	// Section V mechanism, and each shows up under its own counter.
	center := n.Router(5)
	center.SetSA1Fault(topology.East, true)     // → SA bypass + VC transfer
	center.SetVA1Fault(topology.North, 0, true) // → VA arbiter borrowing
	center.SetXBFault(topology.West, true)      // → secondary crossbar path

	// Let the uniform-random injector add more faults as the run goes.
	fault.NewInjector(n, 8000, 7, true)

	n.Run(30_000)

	fmt.Println(obs.FormatPerRouter(o.Metrics, uint64(n.Now())))
	st := n.Stats()
	fmt.Printf("delivered %d/%d packets, avg latency %.1f cycles, functional: %v\n",
		st.Ejected(), st.Created(), st.AvgLatency(), n.Functional())
	// The histogram keeps the whole distribution, not just the mean: the
	// fault-tolerance mechanisms cost tail latency, so the interesting
	// numbers are the percentiles.
	fmt.Printf("latency p50 %.0f  p95 %.0f  p99 %.0f  max %d cycles\n\n",
		st.Percentile(50), st.Percentile(95), st.Percentile(99), st.MaxLatency())

	// Hop spans reconstruct each packet's life from the trace: which hops
	// the slowest packets crossed and which pipeline phase (VA stall, SA
	// wait, crossbar serialization...) ate the cycles.
	fmt.Print(obs.FormatSpans(n.Spans(), 3))
	fmt.Println()

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := o.Tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d events to trace.json (%d emitted, %d overwritten by the ring)\n",
		o.Tracer.Total()-o.Tracer.Dropped(), o.Tracer.Total(), o.Tracer.Dropped())
	fmt.Println("open it in chrome://tracing or https://ui.perfetto.dev")
}
