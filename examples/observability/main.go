// Observability walks through the internal/obs layer: a faulty 4×4
// protected mesh is simulated with metrics and tracing enabled, the
// per-router counter table shows where the fault-tolerance mechanisms
// fired, and the captured event trace is written as a Chrome
// trace_event file — open trace.json in chrome://tracing or
// https://ui.perfetto.dev to see each router's pipeline activity laid
// out as per-port timelines.
package main

import (
	"fmt"
	"log"
	"os"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func main() {
	// One Observer carries both the counter registry and the event
	// tracer; attaching it to the router config instruments every router,
	// link and network interface. A nil Obs (the default) keeps the
	// simulator metrics-free.
	o := obs.New(1 << 18) // ring retains the most recent 262144 events

	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	cfg := noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}
	src := traffic.NewSynthetic(16, 0.04, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 2014)
	n := noc.MustNew(cfg, src)

	// Break router 5 three different ways; each engages a different
	// Section V mechanism, and each shows up under its own counter.
	center := n.Router(5)
	center.SetSA1Fault(topology.East, true)     // → SA bypass + VC transfer
	center.SetVA1Fault(topology.North, 0, true) // → VA arbiter borrowing
	center.SetXBFault(topology.West, true)      // → secondary crossbar path

	// Let the uniform-random injector add more faults as the run goes.
	fault.NewInjector(n, 8000, 7, true)

	n.Run(30_000)

	fmt.Println(obs.FormatPerRouter(o.Metrics, uint64(n.Now())))
	fmt.Printf("delivered %d/%d packets, avg latency %.1f cycles, functional: %v\n\n",
		n.Stats().Ejected(), n.Stats().Created(), n.Stats().AvgLatency(), n.Functional())

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := o.Tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d events to trace.json (%d emitted, %d overwritten by the ring)\n",
		o.Tracer.Total()-o.Tracer.Dropped(), o.Tracer.Total(), o.Tracer.Dropped())
	fmt.Println("open it in chrome://tracing or https://ui.perfetto.dev")
}
