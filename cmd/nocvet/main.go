// Command nocvet runs gonoc's invariant analyzer suite over the module.
//
// Usage:
//
//	go run ./cmd/nocvet [-tags taglist] [-run name,name] [packages]
//
// With no packages it analyzes ./.... It prints one line per finding
//
//	file:line:col: [analyzer] message
//
// and exits 2 when any finding (or type error) survives, so CI can gate
// on it exactly like go vet. Findings are suppressed in place with
// "//nocvet:ignore <analyzer> <reason>" on the offending line or the
// line above it.
//
// The analyzers and the rules they enforce are documented in
// internal/analysis and in DESIGN.md's "Machine-checked invariants"
// section.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gonoc/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "build tags for package loading (comma-separated)")
	runOnly := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nocvet [-tags taglist] [-run name,name] [packages]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	findings, err := run(os.Stdout, *tags, *runOnly, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocvet: %v\n", err)
		os.Exit(1)
	}
	if findings > 0 {
		os.Exit(2)
	}
}

// run loads the packages and applies the selected analyzers, printing
// findings to w and returning their count.
func run(w io.Writer, tags, runOnly string, patterns []string) (int, error) {
	analyzers := analysis.All()
	if runOnly != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(runOnly, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return 0, fmt.Errorf("unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot()
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.Load(root, tags, patterns...)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(w, "%v\n", terr)
			findings++
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			return findings, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s\n", d)
			findings++
		}
	}
	return findings, nil
}
