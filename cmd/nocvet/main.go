// Command nocvet runs gonoc's invariant analyzer suite over the module.
//
// Usage:
//
//	go run ./cmd/nocvet [-tags taglist] [-run name,name] [-json] [-sarif] [-o file] [packages]
//
// With no packages it analyzes ./.... By default it prints one line per
// finding
//
//	file:line:col: [analyzer] message
//
// and exits 2 when any finding (or type error) survives, so CI can gate
// on it exactly like go vet. -json emits a machine-readable report
// instead ({"findings": [...], "count": N}); -sarif emits SARIF 2.1.0
// for code-scanning consumers. -o writes the report to a file while the
// human-readable lines still go to stdout, which is what the CI
// annotation step uses. Type errors are reported as findings of the
// pseudo-analyzer "typecheck".
//
// Findings are suppressed in place with "//nocvet:ignore <analyzer>
// <reason>" on the offending line or the line above it; a directive that
// suppresses nothing is itself a finding (pseudo-analyzer "nocvet"), so
// the -fix for a stale waiver is simply deleting the line the finding
// points at.
//
// The analyzers and the rules they enforce are documented in
// internal/analysis and in DESIGN.md's "Machine-checked invariants"
// section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gonoc/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "build tags for package loading (comma-separated)")
	runOnly := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of plain lines")
	sarifOut := flag.Bool("sarif", false, "emit the report as SARIF 2.1.0 instead of plain lines")
	outFile := flag.String("o", "", "also write the report to this file (plain lines still go to stdout)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nocvet [-tags taglist] [-run name,name] [-json] [-sarif] [-o file] [packages]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	diags, err := run(*tags, *runOnly, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocvet: %v\n", err)
		os.Exit(1)
	}

	var report []byte
	switch {
	case *jsonOut:
		report = jsonReport(diags)
	case *sarifOut:
		report = sarifReport(diags)
	}
	if *outFile != "" {
		if report == nil {
			report = jsonReport(diags)
		}
		if err := os.WriteFile(*outFile, report, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nocvet: %v\n", err)
			os.Exit(1)
		}
		printPlain(os.Stdout, diags)
	} else if report != nil {
		os.Stdout.Write(report)
	} else {
		printPlain(os.Stdout, diags)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// run loads the packages and applies the selected analyzers as one
// suite, so cross-package facts flow and stale suppressions surface.
// Type errors become "typecheck" findings.
func run(tags, runOnly string, patterns []string) ([]analysis.Diagnostic, error) {
	analyzers := analysis.All()
	if runOnly != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(runOnly, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot()
	if err != nil {
		return nil, err
	}
	pkgs, err := analysis.Load(root, tags, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			diags = append(diags, analysis.Diagnostic{
				Analyzer: "typecheck",
				Message:  terr.Error(),
			})
		}
	}
	suite, err := analysis.RunSuite(pkgs, analyzers)
	if err != nil {
		return diags, err
	}
	return append(diags, suite...), nil
}

// printPlain writes the classic one-line-per-finding format, or the
// NOCVET-CLEAN sentinel when there is nothing to report.
func printPlain(w io.Writer, diags []analysis.Diagnostic) {
	if len(diags) == 0 {
		fmt.Fprintln(w, "NOCVET-CLEAN")
		return
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s\n", d)
	}
}

// jsonFinding is the -json wire format for one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport renders {"findings": [...], "count": N}.
func jsonReport(diags []analysis.Diagnostic) []byte {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	out, _ := json.MarshalIndent(map[string]any{
		"findings": findings,
		"count":    len(findings),
	}, "", "  ")
	return append(out, '\n')
}

// sarifReport renders a minimal SARIF 2.1.0 document: one run, one rule
// per analyzer, one result per finding.
func sarifReport(diags []analysis.Diagnostic) []byte {
	ruleSet := map[string]bool{}
	var rules []map[string]any
	addRule := func(name, doc string) {
		if !ruleSet[name] {
			ruleSet[name] = true
			rules = append(rules, map[string]any{
				"id":               name,
				"shortDescription": map[string]any{"text": doc},
			})
		}
	}
	for _, a := range analysis.All() {
		addRule(a.Name, a.Doc)
	}
	addRule("typecheck", "the package must type-check")
	addRule("nocvet", "suppression directives must be well-formed and live")

	results := make([]map[string]any, 0, len(diags))
	for _, d := range diags {
		addRule(d.Analyzer, "")
		loc := map[string]any{
			"physicalLocation": map[string]any{
				"artifactLocation": map[string]any{"uri": d.Pos.Filename},
				"region": map[string]any{
					"startLine":   max(d.Pos.Line, 1),
					"startColumn": max(d.Pos.Column, 1),
				},
			},
		}
		results = append(results, map[string]any{
			"ruleId":    d.Analyzer,
			"level":     "error",
			"message":   map[string]any{"text": d.Message},
			"locations": []any{loc},
		})
	}
	doc := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []any{map[string]any{
			"tool": map[string]any{"driver": map[string]any{
				"name":           "nocvet",
				"informationUri": "https://example.invalid/gonoc/nocvet",
				"rules":          rules,
			}},
			"results": results,
		}},
	}
	out, _ := json.MarshalIndent(doc, "", "  ")
	return append(out, '\n')
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
