// Command noctool regenerates every table and figure of the paper from
// the gonoc library, and exposes the simulator for free-form use:
//
//	noctool tables            Tables I and II and the MTTF analysis (Eq. 4–7)
//	noctool spf               Table III and the SPF-vs-VC sweep
//	noctool campaign          Monte-Carlo faults-to-failure for all designs
//	noctool area              Section VI-A area/power overheads + VI-B
//	noctool critpath          Section VI-B critical-path analysis only
//	noctool latency           Figures 7 and 8 (SPLASH-2 / PARSEC latency)
//	noctool sim               Free-form simulation with synthetic traffic
//	noctool serve             Long-running simulation with a live telemetry endpoint
//	noctool metrics           Simulate and print per-router obs counters
//	noctool spans             Simulate and print per-packet hop-span breakdowns
//	noctool heatmap           Simulate and render windowed link heatmaps + bottlenecks
//	noctool flightrec         Simulate with the anomaly-triggered flight recorder
//	noctool trace             Simulate and write a cycle-accurate event trace
//	noctool ablation          Design-choice sweeps
//	noctool bench             Step-loop scaling benchmark (BENCH_scaling.json)
//	noctool record / replay   Record and replay offered-traffic traces
//
// The global -pprof flag (before the command) serves net/http/pprof for
// profiling long simulations: noctool -pprof :6060 sim -cycles 10000000.
package main

import (
	"flag"
	"fmt"
	"net"
	_ "net/http/pprof"
	"os"
	"os/signal"

	"gonoc/internal/experiments"
	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/perf"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/telemetry"
	"gonoc/internal/topology"
	"gonoc/internal/tracefile"
	"gonoc/internal/traffic"
	"gonoc/internal/workloads"
)

func main() {
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	flag.Usage = usage
	flag.Parse()
	if *pprofAddr != "" {
		// Bind synchronously so a bad address fails here, before the
		// command runs; the nil handler serves http.DefaultServeMux,
		// where net/http/pprof registers.
		// The pprof listener lives for the whole process; its shutdown
		// handle is intentionally discarded.
		addr, _, err := telemetry.ListenAndServe(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noctool: pprof server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", addr)
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "tables":
		fmt.Print(experiments.FormatReliability(experiments.Reliability()))
	case "spf":
		err = runSPF(args)
	case "campaign":
		err = runCampaign(args)
	case "area":
		a := experiments.Area()
		fmt.Print(experiments.FormatArea(a))
	case "critpath":
		a := experiments.Area()
		fmt.Print(experiments.FormatCritPath(a))
	case "latency":
		err = runLatency(args)
	case "sim":
		err = runSim(args)
	case "serve":
		err = runServe(args)
	case "metrics":
		err = runMetrics(args)
	case "spans":
		err = runSpans(args)
	case "heatmap":
		err = runHeatmap(args)
	case "flightrec":
		err = runFlightrec(args)
	case "trace":
		err = runTrace(args)
	case "ablation":
		err = runAblation(args)
	case "bench":
		err = runBench(args)
	case "record":
		err = runRecord(args)
	case "replay":
		err = runReplay(args)
	case "check":
		err = runCheck(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "noctool: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "noctool %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: noctool [-pprof addr] <command> [flags]

commands:
  tables     print Tables I and II and the MTTF analysis (Eq. 4-7)
  spf        print Table III and the SPF-vs-VC sweep
  campaign   Monte-Carlo faults-to-failure campaigns for all designs
  area       print Section VI-A area/power overheads + VI-B critical path
  critpath   print only the Section VI-B critical-path analysis
  latency    run the Figure 7/8 latency study (-suite splash2|parsec|both)
  sim        run a synthetic-traffic simulation (see -h for flags)
  serve      run a (possibly endless) simulation with a live telemetry
             endpoint: Prometheus text on /metrics, JSON on /status
             (-addr :8077; -cycles 0 runs until interrupted)
  metrics    run a simulation and print per-router observability counters
  spans      run a simulation and print per-packet hop spans: the slowest
             packets' latency broken down into queueing, VC-allocation
             stall, switch wait, crossbar and link cycles per hop
  heatmap    run a simulation collecting windowed per-link utilization
             and stall-mix series; prints per-direction ASCII heatmaps
             and a top-N bottleneck report (-json for the raw document)
  flightrec  run a simulation with the bounded flight recorder armed: a
             watchdog suspect dumps the recent event history to a JSON
             Lines file; -replay formats a dump file afterwards
  trace      run a simulation and write a cycle-accurate event trace
             (-format chrome opens in chrome://tracing or ui.perfetto.dev)
  ablation   design-choice sweeps (bypass rotation, VC count, secondary path)
  bench      measure step-loop throughput and steady-state allocations
             across mesh sizes, worker counts and topologies; -o writes
             the BENCH_scaling.json snapshot (see BENCHMARKS.md)
  record     record a workload's offered packets to a trace file
  replay     replay a recorded trace (optionally with faults)
  check      exhaustively model-check a small mesh: prove deadlock
             freedom and full delivery for the fault-free network and
             under every single link/router fault (-w/-h dimensions,
             -budget wall-clock bound, -mc N for sampled mode, -crossval
             for the reliability cross-check)

global flags (before the command):
  -pprof addr   serve net/http/pprof on addr (e.g. -pprof :6060)

The simulation commands accept -topo mesh|torus|cmesh (with -conc for
cmesh concentration) on any -width x -height router grid. Torus links
wrap around; fault injection of whole links/routers works on all three
families (on a torus the fault-aware tables restrict wrap-link
crossings to stay deadlock free, and wrap links are valid link-fault
sites).

sim, serve, metrics, spans and trace accept -inject with comma-separated
fault specs <router>:<kind>[:<port>[:<vc>]], e.g. -inject 5:sa1:e,0:va1:n:2;
kinds are rc, rcdup, va1, va2, sa1, sa1byp, sa2, xb, xbsec and ports
l,n,e,s,w. Two network-level kinds kill whole links or routers: link
(needs a grid direction, e.g. 5:link:e — the link is dead both ways) and
router (no port, e.g. 10:router). Traffic reroutes around network faults
via deadlock-free two-layer turn-model routing; pair with -retx-timeout
(plus -retx-retries / -retx-buffer) to recover lost packets end-to-end
and watch the delivery ratio, reroute and retransmit counters in the
metrics output.

campaign -inject <specs> runs the network-fault delivery campaign (one
scenario per spec plus a fault-free baseline) instead of the Monte-Carlo
faults-to-failure table.

The simulation commands and campaign accept -workers to bound
parallelism: for the simulation commands it shards each cycle's compute
phase across that many goroutines (0 = all cores, 1 = serial) with
bit-identical results; for campaign it runs the designs concurrently.

sim and campaign also accept -telemetry addr to serve live /metrics and
/status for the duration of the run (campaign exports per-design trial
progress gauges); serve is the long-running form of the same endpoint.`)
}

func runSPF(args []string) error {
	fs := flag.NewFlagSet("spf", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Print(experiments.FormatSPF(experiments.SPFTable()))
	fmt.Println()
	fmt.Println("SPF vs virtual channel count (Section VIII-E)")
	for _, r := range experiments.SPFVCSweep([]int{2, 3, 4, 6, 8}) {
		fmt.Printf("  %-26s mean faults %5.1f  SPF %5.2f\n", r.Design, r.MeanFaults, r.SPF)
	}
	return nil
}

func runCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	trials := fs.Int("trials", 5000, "Monte-Carlo trials per design")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "designs campaigned in parallel (0 = all cores)")
	width := fs.Int("width", 0, "grid width for the -inject delivery campaign (0 = the study default)")
	height := fs.Int("height", 0, "grid height for the -inject delivery campaign (0 = the study default)")
	topoFlag := fs.String("topo", "", "topology for the -inject delivery campaign: mesh (default), torus or cmesh")
	conc := fs.Int("conc", 0, "cmesh concentration for the -inject delivery campaign")
	inject := fs.String("inject", "", "comma-separated fault specs (e.g. 5:link:e,10:router): "+
		"run the network-fault delivery campaign over these scenarios instead of the Monte-Carlo table")
	telemetryAddr := fs.String("telemetry", "",
		"serve live per-design trial progress on this address for the duration of the campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var onTrial func(design string, done, total int)
	if *telemetryAddr != "" {
		srv := telemetry.NewServer(nil)
		addr, shutdown, err := telemetry.ListenAndServe(*telemetryAddr, srv.Handler())
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics (status on /status)\n", addr)
		onTrial = srv.SetProgress
	}
	if *inject != "" {
		// Network-fault delivery campaign: one scenario per spec plus the
		// fault-free baseline, each run to drain with retransmission on.
		cfg := experiments.DefaultLinkFaultConfig()
		cfg.Seed = *seed
		cfg.Workers = *workers
		cfg.Topo = *topoFlag
		cfg.Conc = *conc
		if *width > 0 {
			cfg.Width = *width
		}
		if *height > 0 {
			cfg.Height = *height
		}
		scenarios, err := experiments.ScenariosFromSpecs(*inject)
		if err != nil {
			return err
		}
		// ScenariosFromSpecs only checks the grammar; range-check the
		// specs against the campaign's actual grid before any trial runs.
		if err := experiments.ValidateScenarios(cfg, scenarios); err != nil {
			return err
		}
		fmt.Print(experiments.FormatLinkFault(experiments.LinkFaultStudy(cfg, scenarios)))
		return nil
	}
	if *width > 0 || *height > 0 || *topoFlag != "" || *conc > 0 {
		return fmt.Errorf("-width/-height/-topo/-conc only apply to the -inject delivery campaign")
	}
	fmt.Print(experiments.FormatCampaign(experiments.CampaignTableObserved(*trials, *seed, *workers, onTrial)))
	return nil
}

func runLatency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	suite := fs.String("suite", "both", "splash2, parsec or both")
	seed := fs.Uint64("seed", 2014, "random seed")
	faultMean := fs.Uint64("fault-mean", 20000, "mean cycles between faults per (router, stage)")
	measure := fs.Uint64("measure", 25000, "measured cycles after warmup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultLatencyConfig()
	cfg.Seed = *seed
	cfg.FaultMean = sim.Cycle(*faultMean)
	cfg.Measure = sim.Cycle(*measure)
	if *suite == "splash2" || *suite == "both" {
		fmt.Print(experiments.FormatSuite(experiments.Figure7(cfg)))
	}
	if *suite == "parsec" || *suite == "both" {
		fmt.Print(experiments.FormatSuite(experiments.Figure8(cfg)))
	}
	return nil
}

// simFlags is the network-setup flag group shared by the sim, metrics
// and trace commands.
type simFlags struct {
	width, height *int
	topo          *string
	conc          *int
	rate          *float64
	pattern       *string
	cycles        *uint64
	warmup        *uint64
	seed          *uint64
	faultMean     *uint64
	baseline      *bool
	inject        *string
	workers       *int
	retxTimeout   *uint64
	retxRetries   *int
	retxBuffer    *int
}

func addSimFlags(fs *flag.FlagSet) *simFlags {
	return &simFlags{
		width:     fs.Int("width", 8, "router grid width"),
		height:    fs.Int("height", 8, "router grid height"),
		topo:      fs.String("topo", "mesh", "topology: mesh, torus or cmesh"),
		conc:      fs.Int("conc", 1, "terminals per router (cmesh concentration)"),
		rate:      fs.Float64("rate", 0.02, "packets per node per cycle"),
		pattern:   fs.String("pattern", "uniform", "uniform, transpose, bitcomp, tornado, neighbor, hotspot"),
		cycles:    fs.Uint64("cycles", 50000, "cycles to simulate (including warmup)"),
		warmup:    fs.Uint64("warmup", 5000, "warmup cycles excluded from statistics"),
		seed:      fs.Uint64("seed", 1, "random seed"),
		faultMean: fs.Uint64("fault-mean", 0, "mean cycles between random faults (0 = none)"),
		baseline:  fs.Bool("baseline", false, "use the unprotected baseline router"),
		inject: fs.String("inject", "", "comma-separated fault specs "+
			"<router>:<kind>[:<port>[:<vc>]] applied at cycle 0 (see noctool help)"),
		workers: fs.Int("workers", 0,
			"worker goroutines sharding each cycle's compute phase (0 = all cores, 1 = serial; results are identical)"),
		retxTimeout: fs.Uint64("retx-timeout", 0,
			"end-to-end retransmission timeout in cycles (0 = retransmission off)"),
		retxRetries: fs.Int("retx-retries", 0,
			"max retransmissions per packet (0 = default 8; needs -retx-timeout)"),
		retxBuffer: fs.Int("retx-buffer", 0,
			"retransmission buffer entries per source NI (0 = default 32; needs -retx-timeout)"),
	}
}

// validate rejects flag values the flag package parses happily but the
// simulator would otherwise mangle silently: negative retransmission
// knobs (Int flags accept "-1", and RetxConfig's zero-value defaulting
// would quietly replace it) and retransmission knobs that are dead
// because -retx-timeout is off. Each violation is a one-line usage
// error; the commands exit non-zero on it.
func (sf *simFlags) validate() error {
	if *sf.retxRetries < 0 {
		return fmt.Errorf("-retx-retries must be >= 0, got %d", *sf.retxRetries)
	}
	if *sf.retxBuffer < 0 {
		return fmt.Errorf("-retx-buffer must be >= 0, got %d", *sf.retxBuffer)
	}
	if *sf.retxTimeout == 0 && (*sf.retxRetries > 0 || *sf.retxBuffer > 0) {
		return fmt.Errorf("-retx-retries/-retx-buffer need -retx-timeout > 0 (retransmission is off)")
	}
	if *sf.rate < 0 || *sf.rate > 1 {
		return fmt.Errorf("-rate must be in [0, 1], got %g", *sf.rate)
	}
	return nil
}

// build constructs the network, applies any -inject faults at cycle 0 and
// attaches the random injector when -fault-mean is set. o may be nil for
// an uninstrumented run.
func (sf *simFlags) build(o *obs.Observer) (*noc.Network, error) {
	if err := sf.validate(); err != nil {
		return nil, err
	}
	rc := router.DefaultConfig()
	rc.FaultTolerant = !*sf.baseline
	rc.Obs = o
	topo, err := topology.New(*sf.topo, *sf.width, *sf.height, *sf.conc)
	if err != nil {
		return nil, err
	}
	var dest traffic.DestFn
	switch *sf.pattern {
	case "uniform":
		dest = traffic.Uniform(topo.Nodes())
	case "transpose":
		dest = traffic.Transpose(topo)
	case "bitcomp":
		dest = traffic.BitComplement(topo)
	case "tornado":
		dest = traffic.Tornado(topo)
	case "neighbor":
		dest = traffic.Neighbor(topo)
	case "hotspot":
		dest = traffic.Hotspot(topo.Nodes(), []int{0, topo.Nodes() - 1}, 0.3)
	default:
		return nil, fmt.Errorf("unknown pattern %q", *sf.pattern)
	}
	src := traffic.NewSynthetic(topo.Nodes(), *sf.rate, dest, traffic.Bimodal(1, 5, 0.6), *sf.seed)
	n, err := noc.New(noc.Config{
		Width: *sf.width, Height: *sf.height, Topo: *sf.topo, Conc: *sf.conc,
		Router: rc, Warmup: sim.Cycle(*sf.warmup),
		Workers: *sf.workers,
		Retx: noc.RetxConfig{
			Timeout:    sim.Cycle(*sf.retxTimeout),
			MaxRetries: *sf.retxRetries,
			Buffer:     *sf.retxBuffer,
		},
	}, src)
	if err != nil {
		return nil, err
	}
	routers, sites, err := fault.ParseInjections(*sf.inject)
	if err != nil {
		return nil, err
	}
	for i, r := range routers {
		if r >= topo.Nodes() {
			return nil, fmt.Errorf("fault spec router %d outside the %d-node %s", r, topo.Nodes(), topo.Kind())
		}
		if err := fault.ApplyNetwork(n, r, sites[i], true); err != nil {
			return nil, err
		}
		o.RecordFault(obs.KFaultsInjected, obs.EvFaultInject, 0, r,
			int(sites[i].Port), sites[i].Index, int32(sites[i].Kind.Stage()), sites[i].String())
	}
	if *sf.faultMean > 0 {
		fault.NewInjector(n, sim.Cycle(*sf.faultMean), *sf.seed^0xabcdef, true)
	}
	return n, nil
}

func runSim(args []string) error { return runSimReady(args, nil) }

// runSimReady is runSim with a test hook: when -telemetry is set, onReady
// (if non-nil) receives the bound address before the simulation starts.
func runSimReady(args []string, onReady func(net.Addr)) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	sf := addSimFlags(fs)
	heatmap := fs.Bool("heatmap", false, "print a router-load heatmap at the end")
	telemetryAddr := fs.String("telemetry", "",
		"serve live /metrics and /status on this address during the run (e.g. :8077)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// With telemetry on, the run is instrumented (counters plus the
	// windowed link-utilization ring backing /heatmap — the trace ring
	// stays minimal and disabled).
	var o *obs.Observer
	if *telemetryAddr != "" {
		o = obs.New(1)
		o.Tracer.SetEnabled(false)
		topo, err := topology.New(*sf.topo, *sf.width, *sf.height, *sf.conc)
		if err != nil {
			return err
		}
		rc := router.DefaultConfig()
		o.Windows = obs.NewWindows(topo.Nodes(), rc.Ports, rc.VCs, obs.DefaultBucketCycles, obs.DefaultWindowBucket)
	}
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	var flush func()
	if *telemetryAddr != "" {
		srv := telemetry.NewServer(o.Metrics)
		flush = telemetry.Attach(srv, n, 0)
		// The endpoint outlives the run on purpose: the final snapshot
		// stays scrapeable until the process exits, so a dashboard (or
		// TestSimTelemetryScrape) can read the end state after Run returns.
		addr, _, err := telemetry.ListenAndServe(*telemetryAddr, srv.Handler())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics (status on /status)\n", addr)
		if onReady != nil {
			onReady(addr)
		}
	}
	n.Run(sim.Cycle(*sf.cycles))
	st := n.Stats()
	if flush != nil {
		// Publish the final (usually partial) interval: the run length is
		// rarely a multiple of the snapshot period.
		flush()
	}
	nodes := n.Topo().Nodes()
	fmt.Printf("cycles:        %d\n", n.Now())
	fmt.Printf("packets:       %d created, %d delivered, %d in flight\n",
		st.Created(), st.Ejected(), st.InFlight())
	if st.Dropped()+st.Retransmits()+st.Duplicates() > 0 {
		fmt.Printf("reliability:   delivery ratio %.4f (%d dropped, %d retransmitted, %d duplicates suppressed)\n",
			st.DeliveryRatio(), st.Dropped(), st.Retransmits(), st.Duplicates())
	}
	fmt.Printf("avg latency:   %.2f cycles (network %.2f)\n", st.AvgLatency(), st.AvgNetworkLatency())
	fmt.Printf("p50/p95/p99:   %.0f / %.0f / %.0f cycles\n",
		st.Percentile(50), st.Percentile(95), st.Percentile(99))
	fmt.Printf("throughput:    %.4f flits/node/cycle\n",
		st.ThroughputFlits(n.Now())/float64(nodes))
	fmt.Printf("functional:    %v\n", n.Functional())
	if *heatmap {
		fmt.Print(n.Heatmap())
	}
	return nil
}

// runServe runs serveSim until the run completes or the process is
// interrupted (SIGINT ends the simulation gracefully and prints the
// final summary).
func runServe(args []string) error {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		<-sig
		close(stop)
	}()
	return serveSim(args, nil, stop)
}

// serveSim is the testable core of the serve command: a simulation that
// exposes live telemetry while it runs. onReady (optional) receives the
// bound address before the first cycle; closing stop ends the run at the
// next chunk boundary. -cycles 0 runs until stopped.
func serveSim(args []string, onReady func(net.Addr), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	sf := addSimFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8077", "telemetry listen address (/metrics and /status)")
	interval := fs.Uint64("interval", 0, "cycles between stats snapshots (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := obs.New(1) // counters + windows; keep the trace ring minimal
	o.Tracer.SetEnabled(false)
	topo, err := topology.New(*sf.topo, *sf.width, *sf.height, *sf.conc)
	if err != nil {
		return err
	}
	rc := router.DefaultConfig()
	o.Windows = obs.NewWindows(topo.Nodes(), rc.Ports, rc.VCs, obs.DefaultBucketCycles, obs.DefaultWindowBucket)
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	srv := telemetry.NewServer(o.Metrics)
	flush := telemetry.Attach(srv, n, sim.Cycle(*interval))
	bound, shutdown, err := telemetry.ListenAndServe(*addr, srv.Handler())
	if err != nil {
		return err
	}
	// Graceful teardown on every exit path (including SIGINT): in-flight
	// scrapes finish and the port is released before the process exits.
	defer shutdown()
	fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics (status on /status)\n", bound)
	if onReady != nil {
		onReady(bound)
	}
	// Step in chunks so a stop request is honoured promptly even on an
	// endless (-cycles 0) run.
	const chunk = 1 << 10
	total := sim.Cycle(*sf.cycles)
	for stopped := false; !stopped && (total == 0 || n.Now() < total); {
		step := sim.Cycle(chunk)
		if total > 0 && total-n.Now() < step {
			step = total - n.Now()
		}
		n.Run(step)
		select {
		case <-stop:
			stopped = true
		default:
		}
	}
	// Publish the final (usually partial) interval before reporting.
	flush()
	st := n.Stats()
	fmt.Printf("stopped at cycle %d: %d packets delivered, avg latency %.2f cycles "+
		"(p50 %.0f, p95 %.0f, p99 %.0f)\n",
		n.Now(), st.Ejected(), st.AvgLatency(),
		st.Percentile(50), st.Percentile(95), st.Percentile(99))
	return nil
}

// runSpans runs an instrumented simulation and prints the per-packet
// hop-span report: where the slowest packets spent their cycles, hop by
// hop and pipeline phase by pipeline phase.
func runSpans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	sf := addSimFlags(fs)
	events := fs.Int("events", 1<<20, "trace ring capacity; spans are built from retained events")
	top := fs.Int("top", 5, "how many of the slowest packets to detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := obs.New(*events)
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	// Trace only the measured window, like runTrace: spans of warmup
	// packets would be excluded from latency stats anyway.
	warm := sim.Cycle(*sf.warmup)
	total := sim.Cycle(*sf.cycles)
	if warm >= total {
		fmt.Fprintf(os.Stderr, "noctool spans: warmup (%d) covers the whole run (%d cycles); "+
			"no spans will be complete — lower -warmup or raise -cycles\n", warm, total)
		warm = total
	}
	if warm > 0 {
		o.Tracer.SetEnabled(false)
		n.Run(warm)
		o.Tracer.SetEnabled(true)
	}
	n.Run(total - warm)
	fmt.Print(obs.FormatSpans(n.Spans(), *top))
	return nil
}

// runMetrics runs an instrumented simulation and prints the per-router
// observability counters.
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	sf := addSimFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := obs.New(1) // counters only; keep the trace ring minimal
	o.Tracer.SetEnabled(false)
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	n.Run(sim.Cycle(*sf.cycles))
	st := n.Stats()
	fmt.Print(obs.FormatPerRouter(o.Metrics, uint64(n.Now())))
	fmt.Printf("\npackets:    %d created, %d delivered, %d in flight\n",
		st.Created(), st.Ejected(), st.InFlight())
	fmt.Printf("delivery:   ratio %.4f (%d dropped, %d retransmitted, %d duplicates suppressed)\n",
		st.DeliveryRatio(), st.Dropped(), st.Retransmits(), st.Duplicates())
	fmt.Printf("latency:    avg %.2f cycles, p95 %.0f\n", st.AvgLatency(), st.Percentile(95))
	fmt.Printf("functional: %v\n", n.Functional())
	return nil
}

// runTrace runs an instrumented simulation and writes the captured event
// trace to a file.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	sf := addSimFlags(fs)
	out := fs.String("o", "trace.json", "output file")
	format := fs.String("format", "chrome", "chrome (trace_event JSON) or jsonl (JSON Lines)")
	events := fs.Int("events", 1<<20, "trace ring capacity; the most recent events are retained")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "chrome" && *format != "jsonl" {
		return fmt.Errorf("unknown format %q (want chrome or jsonl)", *format)
	}
	o := obs.New(*events)
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	// Trace only the measured window: warmup cycles run untraced.
	warm := sim.Cycle(*sf.warmup)
	total := sim.Cycle(*sf.cycles)
	if warm >= total {
		fmt.Fprintf(os.Stderr, "noctool trace: warmup (%d) covers the whole run (%d cycles); "+
			"pipeline events will be missing — lower -warmup or raise -cycles\n", warm, total)
		warm = total
	}
	if warm > 0 {
		o.Tracer.SetEnabled(false)
		n.Run(warm)
		o.Tracer.SetEnabled(true)
	}
	n.Run(total - warm)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *format == "chrome" {
		err = o.Tracer.WriteChromeTrace(f)
	} else {
		err = o.Tracer.WriteJSONL(f)
	}
	if err != nil {
		return err
	}
	retained := o.Tracer.Total() - o.Tracer.Dropped()
	fmt.Printf("wrote %d events to %s (%s format; %d emitted, %d dropped by ring wrap)\n",
		retained, *out, *format, o.Tracer.Total(), o.Tracer.Dropped())
	return nil
}

// runRecord records the offered packets of a workload to a trace file.
func runRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("o", "trace.csv", "output trace file")
	app := fs.String("app", "fft", "workload application name (any SPLASH-2/PARSEC app)")
	cycles := fs.Uint64("cycles", 20000, "cycles to record")
	seed := fs.Uint64("seed", 1, "random seed")
	width := fs.Int("width", 8, "grid width")
	height := fs.Int("height", 8, "grid height")
	topoFlag := fs.String("topo", "mesh", "topology: mesh, torus or cmesh")
	conc := fs.Int("conc", 0, "cmesh concentration (terminals per router)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof, err := findApp(*app)
	if err != nil {
		return err
	}
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	tp, err := topology.New(*topoFlag, *width, *height, *conc)
	if err != nil {
		return err
	}
	src := workloads.NewCoherence(prof, tp, *seed)
	rec := tracefile.NewRecorder(src)
	n := noc.MustNew(noc.Config{Width: *width, Height: *height, Topo: *topoFlag, Conc: *conc, Router: rc}, rec)
	defer n.Close()
	n.Run(sim.Cycle(*cycles))
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tracefile.Write(f, rec.Entries()); err != nil {
		return err
	}
	fmt.Printf("recorded %d packets over %d cycles to %s\n", len(rec.Entries()), *cycles, *out)
	return nil
}

// runReplay replays a recorded trace, optionally with fault injection.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	in := fs.String("i", "trace.csv", "input trace file")
	faultMean := fs.Uint64("fault-mean", 0, "mean cycles between faults (0 = fault-free)")
	limit := fs.Uint64("limit", 500000, "drain cycle limit")
	seed := fs.Uint64("seed", 1, "random seed for fault injection")
	width := fs.Int("width", 8, "mesh width (must match the recording)")
	height := fs.Int("height", 8, "mesh height (must match the recording)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := tracefile.Read(f)
	if err != nil {
		return err
	}
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	n := noc.MustNew(noc.Config{Width: *width, Height: *height, Router: rc}, traffic.NewTrace(entries))
	defer n.Close()
	if *faultMean > 0 {
		fault.NewInjector(n, sim.Cycle(*faultMean), *seed, true)
	}
	// Run past the trace horizon first, then drain the tail.
	var horizon sim.Cycle
	for _, e := range entries {
		if e.Cycle > horizon {
			horizon = e.Cycle
		}
	}
	n.Run(horizon + 1)
	if !n.Drain(sim.Cycle(*limit)) {
		return fmt.Errorf("replay did not drain: %d packets in flight", n.Stats().InFlight())
	}
	st := n.Stats()
	fmt.Printf("replayed %d packets, avg latency %.2f cycles (p95 %.0f)\n",
		st.Ejected(), st.AvgLatency(), st.Percentile(95))
	return nil
}

// runBench measures the step-loop scaling trajectory and optionally
// writes the snapshot CI compares against (BENCH_scaling.json).
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("o", "", "write the snapshot JSON here (e.g. BENCH_scaling.json); empty prints only")
	quick := fs.Bool("quick", false, "run the short CI smoke trajectory instead of the full curve")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cases := perf.DefaultTrajectory()
	if *quick {
		cases = perf.QuickTrajectory()
	}
	fmt.Printf("%-18s %12s %16s %10s %10s\n", "case", "steps/s", "router-cyc/s", "allocs/op", "B/op")
	snap, err := perf.Collect(cases, func(p perf.Point) {
		fmt.Printf("%-18s %12.1f %16.0f %10.2f %10.1f\n",
			p.Key(), p.StepsPerSec, p.RouterCyclesPerSec, p.AllocsPerStep, p.BytesPerStep)
	})
	if err != nil {
		return err
	}
	if *out != "" {
		if err := perf.WriteFile(*out, snap); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d points to %s\n", len(snap.Points), *out)
	}
	return nil
}

// findApp looks a profile up by name across both suites.
func findApp(name string) (workloads.App, error) {
	for _, a := range append(workloads.SPLASH2(), workloads.PARSEC()...) {
		if a.Name == name {
			return a, nil
		}
	}
	return workloads.App{}, fmt.Errorf("unknown application %q", name)
}

// runAblation prints the design-choice ablation studies.
func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ContinueOnError)
	cycles := fs.Uint64("cycles", 20000, "cycles per configuration")
	seed := fs.Uint64("seed", 3, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cyc := sim.Cycle(*cycles)
	fmt.Println("bypass default-winner rotation period (SA1 faults on E/W everywhere)")
	for _, p := range experiments.AblationRotatePeriod([]int{1, 4, 16, 64, 256}, cyc, *seed) {
		fmt.Printf("  period %4d: avg latency %6.2f cycles, %d packets\n", p.Param, p.AvgLatency, p.Delivered)
	}
	fmt.Println("virtual channels per port (fault-free)")
	for _, p := range experiments.AblationVCCount([]int{1, 2, 4, 8}, cyc, *seed) {
		fmt.Printf("  %d VCs:       avg latency %6.2f cycles, %d packets\n", p.Param, p.AvgLatency, p.Delivered)
	}
	fmt.Println("crossbar secondary path (East mux faulty everywhere)")
	res := experiments.AblationSecondaryPath(cyc, *seed)
	fmt.Printf("  protected: %d packets delivered at %.2f cycles avg\n", res.ProtectedDelivered, res.ProtectedLatency)
	fmt.Printf("  baseline:  %d delivered, %d wedged in-network\n", res.BaselineDelivered, res.BaselineStuck)
	return nil
}
