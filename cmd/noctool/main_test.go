package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gonoc/internal/experiments"
)

func TestFindApp(t *testing.T) {
	for _, name := range []string{"fft", "canneal", "water", "x264"} {
		app, err := findApp(name)
		if err != nil || app.Name != name {
			t.Errorf("findApp(%q) = (%v, %v)", name, app, err)
		}
	}
	if _, err := findApp("nosuchapp"); err == nil {
		t.Error("findApp accepted an unknown application")
	}
}

func TestRunSPFAndCampaign(t *testing.T) {
	if err := runSPF(nil); err != nil {
		t.Fatalf("spf: %v", err)
	}
	if err := runCampaign([]string{"-trials", "100"}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
}

func TestRunSimSmoke(t *testing.T) {
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "200",
		"-rate", "0.02", "-pattern", "transpose", "-fault-mean", "1500", "-heatmap",
	}
	if err := runSim(args); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if err := runSim([]string{"-pattern", "bogus"}); err == nil {
		t.Fatal("sim accepted an unknown pattern")
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.csv")
	if err := runRecord([]string{"-o", trace, "-app", "water", "-cycles", "3000"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing/empty: %v", err)
	}
	if err := runReplay([]string{"-i", trace}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestRunTraceChrome is the headline acceptance check: a 4×4 mesh with an
// injected SA-stage fault must produce a valid Chrome trace_event file
// containing at least one bypass/borrow event.
func TestRunTraceChrome(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "4000", "-warmup", "500",
		"-rate", "0.05", "-inject", "5:sa1:e,5:va1:n:0", "-o", out,
	}
	if err := runTrace(args); err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	var bypass, borrow bool
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "SA bypass":
			bypass = true
		case "VA borrow":
			borrow = true
		}
		if e.Ph != "X" && e.Ph != "i" && e.Ph != "M" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !bypass || !borrow {
		t.Errorf("trace has bypass=%v borrow=%v, want both (fault mechanisms not captured)", bypass, borrow)
	}
}

func TestRunTraceJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "0",
		"-inject", "5:sa1:e", "-format", "jsonl", "-o", out, "-events", "5000",
	}
	if err := runTrace(args); err != nil {
		t.Fatalf("trace: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		if _, ok := obj["kind"]; !ok {
			t.Fatalf("line %d missing kind: %s", lines+1, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty JSONL trace")
	}
}

func TestRunTraceErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	if err := runTrace([]string{"-format", "xml", "-o", out}); err == nil {
		t.Error("trace accepted an unknown format")
	}
	if err := runTrace([]string{"-inject", "bogus", "-o", out}); err == nil {
		t.Error("trace accepted a bad fault spec")
	}
	if err := runTrace([]string{"-width", "2", "-height", "2", "-inject", "9:sa1:e", "-o", out}); err == nil {
		t.Error("trace accepted a fault spec outside the mesh")
	}
}

func TestRunMetricsSmoke(t *testing.T) {
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "200",
		"-inject", "5:sa1:e", "-fault-mean", "1500",
	}
	if err := runMetrics(args); err != nil {
		t.Fatalf("metrics: %v", err)
	}
}

// TestCritPathDiffersFromArea pins the fix for critpath printing the
// identical report as area: critpath is now only the VI-B section.
func TestCritPathDiffersFromArea(t *testing.T) {
	a := experiments.Area()
	full, crit := experiments.FormatArea(a), experiments.FormatCritPath(a)
	if full == crit {
		t.Fatal("critpath output identical to area output")
	}
	if !strings.Contains(crit, "critical path") || strings.Contains(crit, "Section VI-A") {
		t.Errorf("critpath report wrong sections:\n%s", crit)
	}
	if !strings.HasSuffix(full, crit) {
		t.Errorf("area report no longer embeds the critical-path section")
	}
}

// TestServeScrape is the live-telemetry acceptance check: while an
// endless `noctool serve` run steps a faulty mesh, a scrape of /metrics
// must return Prometheus text with latency histogram buckets and
// per-router fault-tolerance counters; closing the stop channel must end
// the run cleanly.
func TestServeScrape(t *testing.T) {
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "0", "-warmup", "100",
		"-rate", "0.05", "-inject", "5:sa1:e",
		"-addr", "127.0.0.1:0", "-interval", "256",
	}
	ready := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- serveSim(args, func(a net.Addr) { ready <- a }, stop)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	want := []string{
		"# TYPE gonoc_packet_latency_cycles histogram",
		`gonoc_packet_latency_cycles_bucket{class="all",le="+Inf"}`,
		"gonoc_packets_measured_total",
		`gonoc_sa_bypass_grants_total{router="5"`,
		"gonoc_cycle",
	}
	// The counters and the first snapshot need some simulated cycles;
	// poll the live endpoint until every series has appeared.
	deadline := time.Now().Add(20 * time.Second)
	var body string
	for {
		if resp, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Fatalf("bad /metrics content type %q", ct)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
		}
		missing := ""
		for _, w := range want {
			if !strings.Contains(body, w) {
				missing = w
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live scrape never served %q; last body:\n%s", missing, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServeBindFailureIsSynchronous pins the listener fix: a conflicting
// address must fail the command before any simulation runs, not race in
// a background goroutine.
func TestServeBindFailureIsSynchronous(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = serveSim([]string{"-addr", ln.Addr().String(), "-cycles", "10"}, nil, make(chan struct{}))
	if err == nil {
		t.Fatal("serve bound an already-used address without error")
	}
}

// TestSimTelemetryScrape covers `noctool sim -telemetry`: after the run,
// the endpoint still serves the final snapshot, and /status's packet
// accounting is consistent.
func TestSimTelemetryScrape(t *testing.T) {
	var addr net.Addr
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "3000", "-warmup", "200",
		"-rate", "0.05", "-inject", "5:sa1:e", "-telemetry", "127.0.0.1:0",
	}
	if err := runSimReady(args, func(a net.Addr) { addr = a }); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if addr == nil {
		t.Fatal("telemetry readiness hook never ran")
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, w := range []string{
		"gonoc_packets_measured_total",
		`gonoc_packet_latency_cycles_bucket{class="all",le="`,
		`gonoc_sa_bypass_grants_total{router="5"`,
	} {
		if !strings.Contains(string(body), w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
	resp, err = http.Get("http://" + addr.String() + "/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Cycle uint64 `json:"cycle"`
		Stats *struct {
			Created  uint64 `json:"created"`
			Ejected  uint64 `json:"ejected"`
			InFlight uint64 `json:"in_flight"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if st.Cycle != 3000 {
		t.Errorf("status cycle = %d, want 3000", st.Cycle)
	}
	if st.Stats == nil {
		t.Fatal("status has no stats snapshot")
	}
	if st.Stats.Created != st.Stats.Ejected+st.Stats.InFlight {
		t.Errorf("packet accounting inconsistent: created %d != ejected %d + in-flight %d",
			st.Stats.Created, st.Stats.Ejected, st.Stats.InFlight)
	}
}

// TestRunCampaignTelemetry exercises the campaign progress-gauge wiring
// end to end (the gauge content itself is pinned in internal/telemetry).
func TestRunCampaignTelemetry(t *testing.T) {
	if err := runCampaign([]string{"-trials", "60", "-telemetry", "127.0.0.1:0"}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
}

// TestRunSpansCommand checks the spans command prints the critical-path
// breakdown and the slowest-packet details.
func TestRunSpansCommand(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := runSpans([]string{
		"-width", "4", "-height", "4", "-cycles", "4000", "-warmup", "500",
		"-rate", "0.05", "-inject", "5:sa1:e", "-top", "3",
	})
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("spans: %v", runErr)
	}
	for _, want := range []string{
		"per-packet hop spans",
		"critical path over",
		"switch allocation wait",
		"slowest 3 packets:",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("spans output missing %q; got:\n%s", want, out)
		}
	}
}

func TestRunLatencyTiny(t *testing.T) {
	// A drastically shortened latency run to keep the test fast.
	if err := runLatency([]string{"-suite", "splash2", "-measure", "1500", "-fault-mean", "1200"}); err != nil {
		t.Fatalf("latency: %v", err)
	}
}
