package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gonoc/internal/experiments"
)

func TestFindApp(t *testing.T) {
	for _, name := range []string{"fft", "canneal", "water", "x264"} {
		app, err := findApp(name)
		if err != nil || app.Name != name {
			t.Errorf("findApp(%q) = (%v, %v)", name, app, err)
		}
	}
	if _, err := findApp("nosuchapp"); err == nil {
		t.Error("findApp accepted an unknown application")
	}
}

func TestRunSPFAndCampaign(t *testing.T) {
	if err := runSPF(nil); err != nil {
		t.Fatalf("spf: %v", err)
	}
	if err := runCampaign([]string{"-trials", "100"}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
}

func TestRunSimSmoke(t *testing.T) {
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "200",
		"-rate", "0.02", "-pattern", "transpose", "-fault-mean", "1500", "-heatmap",
	}
	if err := runSim(args); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if err := runSim([]string{"-pattern", "bogus"}); err == nil {
		t.Fatal("sim accepted an unknown pattern")
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.csv")
	if err := runRecord([]string{"-o", trace, "-app", "water", "-cycles", "3000"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing/empty: %v", err)
	}
	if err := runReplay([]string{"-i", trace}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestRunTraceChrome is the headline acceptance check: a 4×4 mesh with an
// injected SA-stage fault must produce a valid Chrome trace_event file
// containing at least one bypass/borrow event.
func TestRunTraceChrome(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "4000", "-warmup", "500",
		"-rate", "0.05", "-inject", "5:sa1:e,5:va1:n:0", "-o", out,
	}
	if err := runTrace(args); err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	var bypass, borrow bool
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "SA bypass":
			bypass = true
		case "VA borrow":
			borrow = true
		}
		if e.Ph != "X" && e.Ph != "i" && e.Ph != "M" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !bypass || !borrow {
		t.Errorf("trace has bypass=%v borrow=%v, want both (fault mechanisms not captured)", bypass, borrow)
	}
}

func TestRunTraceJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "0",
		"-inject", "5:sa1:e", "-format", "jsonl", "-o", out, "-events", "5000",
	}
	if err := runTrace(args); err != nil {
		t.Fatalf("trace: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		if _, ok := obj["kind"]; !ok {
			t.Fatalf("line %d missing kind: %s", lines+1, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty JSONL trace")
	}
}

func TestRunTraceErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	if err := runTrace([]string{"-format", "xml", "-o", out}); err == nil {
		t.Error("trace accepted an unknown format")
	}
	if err := runTrace([]string{"-inject", "bogus", "-o", out}); err == nil {
		t.Error("trace accepted a bad fault spec")
	}
	if err := runTrace([]string{"-width", "2", "-height", "2", "-inject", "9:sa1:e", "-o", out}); err == nil {
		t.Error("trace accepted a fault spec outside the mesh")
	}
}

func TestRunMetricsSmoke(t *testing.T) {
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "200",
		"-inject", "5:sa1:e", "-fault-mean", "1500",
	}
	if err := runMetrics(args); err != nil {
		t.Fatalf("metrics: %v", err)
	}
}

// TestCritPathDiffersFromArea pins the fix for critpath printing the
// identical report as area: critpath is now only the VI-B section.
func TestCritPathDiffersFromArea(t *testing.T) {
	a := experiments.Area()
	full, crit := experiments.FormatArea(a), experiments.FormatCritPath(a)
	if full == crit {
		t.Fatal("critpath output identical to area output")
	}
	if !strings.Contains(crit, "critical path") || strings.Contains(crit, "Section VI-A") {
		t.Errorf("critpath report wrong sections:\n%s", crit)
	}
	if !strings.HasSuffix(full, crit) {
		t.Errorf("area report no longer embeds the critical-path section")
	}
}

func TestRunLatencyTiny(t *testing.T) {
	// A drastically shortened latency run to keep the test fast.
	if err := runLatency([]string{"-suite", "splash2", "-measure", "1500", "-fault-mean", "1200"}); err != nil {
		t.Fatalf("latency: %v", err)
	}
}
