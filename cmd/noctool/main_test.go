package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFindApp(t *testing.T) {
	for _, name := range []string{"fft", "canneal", "water", "x264"} {
		app, err := findApp(name)
		if err != nil || app.Name != name {
			t.Errorf("findApp(%q) = (%v, %v)", name, app, err)
		}
	}
	if _, err := findApp("nosuchapp"); err == nil {
		t.Error("findApp accepted an unknown application")
	}
}

func TestRunSPFAndCampaign(t *testing.T) {
	if err := runSPF(nil); err != nil {
		t.Fatalf("spf: %v", err)
	}
	if err := runCampaign([]string{"-trials", "100"}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
}

func TestRunSimSmoke(t *testing.T) {
	args := []string{
		"-width", "4", "-height", "4", "-cycles", "2000", "-warmup", "200",
		"-rate", "0.02", "-pattern", "transpose", "-fault-mean", "1500", "-heatmap",
	}
	if err := runSim(args); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if err := runSim([]string{"-pattern", "bogus"}); err == nil {
		t.Fatal("sim accepted an unknown pattern")
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.csv")
	if err := runRecord([]string{"-o", trace, "-app", "water", "-cycles", "3000"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing/empty: %v", err)
	}
	if err := runReplay([]string{"-i", trace}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestRunLatencyTiny(t *testing.T) {
	// A drastically shortened latency run to keep the test fast.
	if err := runLatency([]string{"-suite", "splash2", "-measure", "1500", "-fault-mean", "1200"}); err != nil {
		t.Fatalf("latency: %v", err)
	}
}
