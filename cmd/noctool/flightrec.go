package main

import (
	"flag"
	"fmt"
	"os"

	"gonoc/internal/obs"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/watchdog"
)

// runFlightrec runs a simulation with the bounded flight recorder armed
// and a watchdog as the anomaly trigger: every suspect the watchdog
// raises freezes the recent event history into a dump. Dumps are written
// as JSON Lines (-o) and can be replayed later with -replay, which
// formats a dump file cycle by cycle without running anything.
func runFlightrec(args []string) error {
	fs := flag.NewFlagSet("flightrec", flag.ContinueOnError)
	sf := addSimFlags(fs)
	events := fs.Int("events", obs.DefaultFlightEvents, "flight-recorder events retained per router lane")
	out := fs.String("o", "flight.jsonl", "dump output file (JSON Lines)")
	threshold := fs.Uint64("watchdog", 1000,
		"watchdog non-progress threshold in cycles triggering a dump (0 disables the watchdog)")
	final := fs.Bool("final", false, "also dump the recorder at the end of the run")
	replay := fs.String("replay", "", "format an existing dump file and exit (no simulation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replay != "" {
		return replayFlightDumps(*replay)
	}
	o := obs.New(1) // counters + flight recorder; keep the trace ring minimal
	o.Tracer.SetEnabled(false)
	topo, err := topology.New(*sf.topo, *sf.width, *sf.height, *sf.conc)
	if err != nil {
		return err
	}
	o.Flight = obs.NewFlightRecorder(topo.Nodes(), *events)
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	var mon *watchdog.Monitor
	if *threshold > 0 {
		mon = watchdog.New(n, sim.Cycle(*threshold))
	}
	n.Run(sim.Cycle(*sf.cycles))
	if *final {
		n.TriggerFlightDump("end of run")
	}
	dumps := o.Flight.Dumps()
	if mon != nil {
		fmt.Printf("watchdog: %d suspects raised\n", len(mon.Suspects()))
	}
	fmt.Printf("flight recorder: %d events recorded, %d dumps captured\n",
		o.Flight.Total(), len(dumps))
	if len(dumps) == 0 {
		fmt.Println("no dump written (no anomaly tripped; -final forces an end-of-run dump)")
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteDumps(f, dumps); err != nil {
		return err
	}
	for _, d := range dumps {
		fmt.Printf("  cycle %d: %s (%d events)\n", d.Cycle, d.Reason, len(d.Events))
	}
	fmt.Printf("wrote %d dumps to %s (replay with: noctool flightrec -replay %s)\n",
		len(dumps), *out, *out)
	return nil
}

// replayFlightDumps formats a dump file for reading: one cycle-grouped
// event listing per dump.
func replayFlightDumps(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dumps, err := obs.ReadDumps(f)
	if err != nil {
		return err
	}
	for i, d := range dumps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(obs.FormatDump(d))
	}
	fmt.Printf("%d dumps replayed from %s\n", len(dumps), path)
	return nil
}
