package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// TestSimFlagValidation drives the shared sim flag group through build:
// values the flag package parses but the simulator must not accept die
// with a one-line usage error instead of being silently defaulted away.
func TestSimFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the build error; "" means success
	}{
		{"defaults", nil, ""},
		{"retx enabled", []string{"-retx-timeout", "500", "-retx-retries", "3", "-retx-buffer", "8"}, ""},
		{"negative retries", []string{"-retx-timeout", "500", "-retx-retries", "-1"}, "-retx-retries must be >= 0"},
		{"negative buffer", []string{"-retx-timeout", "500", "-retx-buffer", "-4"}, "-retx-buffer must be >= 0"},
		{"retries without timeout", []string{"-retx-retries", "3"}, "need -retx-timeout"},
		{"buffer without timeout", []string{"-retx-buffer", "8"}, "need -retx-timeout"},
		{"negative rate", []string{"-rate", "-0.5"}, "-rate must be in [0, 1]"},
		{"rate above one", []string{"-rate", "1.5"}, "-rate must be in [0, 1]"},
		{"unknown pattern", []string{"-pattern", "zigzag"}, `unknown pattern "zigzag"`},
		{"malformed inject", []string{"-inject", "bogus"}, "fault spec"},
		{"inject unknown kind", []string{"-inject", "3:warp"}, `unknown kind "warp"`},
		{"inject outside mesh", []string{"-width", "2", "-height", "2", "-inject", "9:router"}, "outside the 4-node mesh"},
		{"torus", []string{"-topo", "torus"}, ""},
		{"torus tornado", []string{"-topo", "torus", "-pattern", "tornado", "-width", "4", "-height", "4"}, ""},
		{"cmesh", []string{"-topo", "cmesh", "-conc", "4"}, ""},
		{"unknown topo", []string{"-topo", "hypercube"}, `unknown kind "hypercube"`},
		{"negative conc", []string{"-topo", "cmesh", "-conc", "-2"}, "concentration"},
		{"inject outside torus", []string{"-topo", "torus", "-width", "4", "-height", "4", "-inject", "99:sa1:e"},
			"outside the 16-node torus"},
		{"torus link fault ok", []string{"-topo", "torus", "-inject", "5:link:e"}, ""},
		{"torus router fault ok", []string{"-topo", "torus", "-inject", "5:router"}, ""},
		{"torus wrap link fault ok", []string{"-topo", "torus", "-width", "4", "-height", "4", "-inject", "3:link:e"}, ""},
		{"torus missing link still rejected", []string{"-topo", "torus", "-width", "4", "-height", "1", "-inject", "0:link:n"},
			"has no N link"},
		{"cmesh link fault ok", []string{"-topo", "cmesh", "-conc", "2", "-inject", "5:link:e"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("sim", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			sf := addSimFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("flag parse: %v", err)
			}
			n, err := sf.build(nil)
			if n != nil {
				n.Close()
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("build: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("build: want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("build: error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestRetxTimeoutRejectsNegative pins the flag-level behavior for the
// uint64 timeout: the flag package itself refuses a negative value, so
// commands exit with a usage error before any simulation starts.
func TestRetxTimeoutRejectsNegative(t *testing.T) {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addSimFlags(fs)
	err := fs.Parse([]string{"-retx-timeout", "-5"})
	if err == nil || !strings.Contains(err.Error(), "invalid value") {
		t.Fatalf("parsing -retx-timeout -5: want invalid-value error, got %v", err)
	}
}
