package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// runHeatmap runs a simulation with the windowed link-utilization ring
// attached and renders the result: per-direction ASCII link heatmaps, a
// top-N bottleneck report with each link's stall mix, or the raw JSON
// document (-json), matching what a live run serves on /heatmap.
func runHeatmap(args []string) error {
	fs := flag.NewFlagSet("heatmap", flag.ContinueOnError)
	sf := addSimFlags(fs)
	bucket := fs.Uint64("bucket", uint64(obs.DefaultBucketCycles), "cycles per utilization window bucket")
	windows := fs.Int("windows", obs.DefaultWindowBucket, "window buckets retained in the ring")
	top := fs.Int("top", 10, "bottleneck links to report")
	asJSON := fs.Bool("json", false, "emit the heatmap document as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := obs.New(1) // counters + windows; keep the trace ring minimal
	o.Tracer.SetEnabled(false)
	topo, err := topology.New(*sf.topo, *sf.width, *sf.height, *sf.conc)
	if err != nil {
		return err
	}
	rc := router.DefaultConfig()
	o.Windows = obs.NewWindows(topo.Nodes(), rc.Ports, rc.VCs, sim.Cycle(*bucket), *windows)
	n, err := sf.build(o)
	if err != nil {
		return err
	}
	defer n.Close()
	n.Run(sim.Cycle(*sf.cycles))
	snap := o.Windows.Snapshot()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(heatmapDoc(n, snap, *top))
	}
	fmt.Print(formatHeatmap(n, snap, *top))
	return nil
}

// heatmapJSON mirrors telemetry's /heatmap document so the offline
// command and the live endpoint stay interchangeable inputs for the
// same tooling.
type heatmapJSON struct {
	Cycle        uint64            `json:"cycle"`
	BucketCycles uint64            `json:"bucket_cycles"`
	Buckets      int               `json:"buckets"`
	WindowCycles uint64            `json:"window_cycles"`
	StallKinds   []string          `json:"stall_kinds"`
	Links        []heatmapLinkJSON `json:"links"`
}

type heatmapLinkJSON struct {
	Node   int      `json:"node"`
	Port   int      `json:"port"`
	Flits  uint64   `json:"flits"`
	PerVC  []uint64 `json:"per_vc"`
	Stalls []uint64 `json:"stalls"`
}

func heatmapDoc(n *noc.Network, snap obs.WindowSnapshot, top int) heatmapJSON {
	doc := heatmapJSON{
		Cycle:        uint64(n.Now()),
		BucketCycles: uint64(snap.BucketCycles),
		Buckets:      len(snap.Buckets),
		WindowCycles: uint64(snap.Cycles()),
		StallKinds:   make([]string, obs.NumStallKinds),
	}
	for k := 0; k < obs.NumStallKinds; k++ {
		doc.StallKinds[k] = obs.StallKind(k).String()
	}
	totals := snap.LinkTotals()
	if top > 0 {
		totals = snap.TopLinks(top)
	}
	for _, lt := range totals {
		doc.Links = append(doc.Links, heatmapLinkJSON{
			Node: lt.Node, Port: lt.Port, Flits: lt.Flits,
			PerVC: lt.PerVC, Stalls: lt.Stalls[:],
		})
	}
	return doc
}

// stallTotal sums a link's stall mix.
func stallTotal(lt obs.LinkTotal) uint64 {
	var s uint64
	for _, v := range lt.Stalls {
		s += v
	}
	return s
}

// formatHeatmap renders the windowed link activity as text: one ASCII
// grid per mesh direction (outbound flits, 0-9 scale), then the top-N
// bottleneck links ranked by stalled flit-cycles (flits break ties).
// Per link, "flits" counts the outbound direction's traffic and the
// stall columns count flit-cycles the inbound direction's VCs spent
// waiting at that port — the two directions of the same physical
// channel, congested together when the link is a bottleneck.
func formatHeatmap(n *noc.Network, snap obs.WindowSnapshot, top int) string {
	var b strings.Builder
	totals := snap.LinkTotals()
	fmt.Fprintf(&b, "link heatmap: %d cycles in %d windows of %d cycles\n",
		snap.Cycles(), len(snap.Buckets), snap.BucketCycles)

	topo := n.Topo()
	w, h := topo.Dims()
	var max uint64
	flits := map[[2]int]uint64{}
	for _, lt := range totals {
		flits[[2]int{lt.Node, lt.Port}] = lt.Flits
		if lt.Flits > max {
			max = lt.Flits
		}
	}
	for _, dir := range []topology.Port{topology.North, topology.East, topology.South, topology.West} {
		fmt.Fprintf(&b, "\noutbound %v links (max %d flits)\n", dir, max)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				id := topo.ID(topology.Coord{X: x, Y: y})
				if _, ok := topo.Neighbor(id, dir); !ok {
					b.WriteString("  ") // mesh edge: no link in this direction
					continue
				}
				f := flits[[2]int{id, int(dir)}]
				switch {
				case max == 0 || f == 0:
					b.WriteString(" .")
				default:
					v := f * 9 / max
					if v == 0 {
						v = 1
					}
					fmt.Fprintf(&b, " %d", v)
				}
			}
			b.WriteByte('\n')
		}
	}

	// Bottleneck ranking: stalled flit-cycles first — a saturated link
	// and an idle one can carry the same flit count, but only the
	// bottleneck makes traffic wait.
	ranked := make([]obs.LinkTotal, len(totals))
	copy(ranked, totals)
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := stallTotal(ranked[i]), stallTotal(ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i].Flits > ranked[j].Flits
	})
	if top > 0 && len(ranked) > top {
		ranked = ranked[:top]
	}
	fmt.Fprintf(&b, "\ntop %d bottleneck links (by stalled flit-cycles; stalls count the inbound direction)\n", len(ranked))
	fmt.Fprintf(&b, "%-4s %-18s %10s %8s %10s %10s %10s %10s\n",
		"rank", "link", "flits", "util", "credit", "arb", "route", "drain")
	cyc := snap.Cycles()
	for i, lt := range ranked {
		c := topo.Coord(lt.Node)
		util := 0.0
		if cyc > 0 {
			util = float64(lt.Flits) / float64(cyc)
		}
		fmt.Fprintf(&b, "%-4d r%d(%d,%d)%s%-6v %10d %8.3f %10d %10d %10d %10d\n",
			i+1, lt.Node, c.X, c.Y, arrow(lt.Port), topology.Port(lt.Port), lt.Flits, util,
			lt.Stalls[obs.StallCreditStarved], lt.Stalls[obs.StallArbLost],
			lt.Stalls[obs.StallRouteBlocked], lt.Stalls[obs.StallFaultDrain])
	}
	return b.String()
}

// arrow renders the link direction separator; the Local "link" is the
// ejection port, not a hop.
func arrow(port int) string {
	if topology.Port(port) == topology.Local {
		return " @"
	}
	return " >"
}
