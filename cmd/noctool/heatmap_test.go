package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gonoc/internal/obs"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed. The reader drains concurrently: heatmap JSON documents exceed
// the pipe buffer, so reading after fn returns would deadlock.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		out, _ := io.ReadAll(r)
		done <- string(out)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

// TestRunHeatmapFaultedBottleneck is the headline acceptance check for
// the congestion tier: on an 8x8 mesh with router 27's East link dead,
// the bottleneck report must name the links adjacent to the detour —
// traffic that would have used 27->28 now queues at 27's other ports and
// re-enters eastward around the hole, showing up as route-blocked
// stalls there.
func TestRunHeatmapFaultedBottleneck(t *testing.T) {
	scenario := []string{
		"-width", "8", "-height", "8", "-cycles", "20000", "-warmup", "0",
		"-rate", "0.01", "-inject", "27:link:e",
	}
	out, err := captureStdout(t, func() error {
		return runHeatmap(append([]string{"-top", "8"}, scenario...))
	})
	if err != nil {
		t.Fatalf("heatmap: %v", err)
	}
	for _, want := range []string{
		"outbound E links",
		"top 8 bottleneck links",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap output missing %q; got:\n%s", want, out)
		}
	}
	// The dead link's neighbors carry the detour: packets that would have
	// crossed 27->28 leave router 27 westward around the hole, and 28's
	// East output carries the opposite direction's detour. Both show up
	// with route-blocked stalls the healthy links never have.
	table := out[strings.Index(out, "top 8 bottleneck links"):]
	for _, link := range []string{"r27(3,3) >W", "r28(4,3) >E"} {
		if !strings.Contains(table, link) {
			t.Errorf("bottleneck report does not name detour link %s:\n%s", link, table)
		}
	}

	// JSON mode on the same scenario: the full document must show
	// route-blocked stalls concentrated at the dead link's router.
	out, err = captureStdout(t, func() error {
		return runHeatmap(append([]string{"-top", "0", "-json"}, scenario...))
	})
	if err != nil {
		t.Fatalf("heatmap -json: %v", err)
	}
	var doc heatmapJSON
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("heatmap -json not valid JSON: %v", err)
	}
	if doc.Cycle != 20000 || doc.BucketCycles != uint64(obs.DefaultBucketCycles) {
		t.Fatalf("doc header = cycle %d bucket %d", doc.Cycle, doc.BucketCycles)
	}
	var routeStallsAt27, routeStallsTotal uint64
	for _, l := range doc.Links {
		rb := l.Stalls[obs.StallRouteBlocked]
		routeStallsTotal += rb
		if l.Node == 27 {
			routeStallsAt27 += rb
		}
	}
	if routeStallsTotal == 0 {
		t.Fatal("dead link produced no route-blocked stalls anywhere")
	}
	if routeStallsAt27 == 0 {
		t.Fatalf("no route-blocked stalls at the faulted router (total %d elsewhere)", routeStallsTotal)
	}
}

// TestRunHeatmapFaultFreeHasNoRouteStalls pins the classifier's negative
// space: with every link healthy, congestion is credit/arbitration only.
func TestRunHeatmapFaultFreeHasNoRouteStalls(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return runHeatmap([]string{
			"-width", "4", "-height", "4", "-cycles", "5000", "-warmup", "0",
			"-rate", "0.05", "-top", "0", "-json",
		})
	})
	if err != nil {
		t.Fatalf("heatmap: %v", err)
	}
	var doc heatmapJSON
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	var flits, route, drain uint64
	for _, l := range doc.Links {
		flits += l.Flits
		route += l.Stalls[obs.StallRouteBlocked]
		drain += l.Stalls[obs.StallFaultDrain]
	}
	if flits == 0 {
		t.Fatal("no traffic recorded")
	}
	if route != 0 || drain != 0 {
		t.Fatalf("fault-free run shows %d route-blocked and %d fault-drain stalls", route, drain)
	}
}

// TestRunFlightrecTripAndReplay drives the flightrec command end to end:
// a wedged baseline router trips the watchdog, the dump lands in the
// JSON Lines file, and -replay formats it back without running anything.
func TestRunFlightrecTripAndReplay(t *testing.T) {
	dumpFile := filepath.Join(t.TempDir(), "flight.jsonl")
	out, err := captureStdout(t, func() error {
		return runFlightrec([]string{
			"-width", "4", "-height", "4", "-cycles", "15000", "-warmup", "0",
			"-rate", "0.01", "-baseline", "-inject", "9:va1:n:0",
			"-watchdog", "200", "-o", dumpFile,
		})
	})
	if err != nil {
		t.Fatalf("flightrec: %v", err)
	}
	if !strings.Contains(out, "suspects raised") || strings.Contains(out, "0 suspects raised") {
		t.Fatalf("watchdog never tripped:\n%s", out)
	}
	if !strings.Contains(out, "dumps captured") || strings.Contains(out, "0 dumps captured") {
		t.Fatalf("trip captured no dump:\n%s", out)
	}
	if st, err := os.Stat(dumpFile); err != nil || st.Size() == 0 {
		t.Fatalf("dump file missing or empty: %v", err)
	}

	replay, err := captureStdout(t, func() error {
		return runFlightrec([]string{"-replay", dumpFile})
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, want := range []string{"watchdog", "cycle", "dumps replayed from"} {
		if !strings.Contains(replay, want) {
			t.Errorf("replay output missing %q; got:\n%s", want, replay)
		}
	}
}

// TestRunFlightrecFinalDump: with no anomaly, -final still freezes the
// end-of-run history so quiet runs stay inspectable.
func TestRunFlightrecFinalDump(t *testing.T) {
	dumpFile := filepath.Join(t.TempDir(), "final.jsonl")
	out, err := captureStdout(t, func() error {
		return runFlightrec([]string{
			"-width", "4", "-height", "4", "-cycles", "3000", "-warmup", "0",
			"-rate", "0.02", "-watchdog", "0", "-final", "-o", dumpFile,
		})
	})
	if err != nil {
		t.Fatalf("flightrec: %v", err)
	}
	if !strings.Contains(out, "end of run") {
		t.Fatalf("no end-of-run dump:\n%s", out)
	}
	f, err := os.Open(dumpFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dumps, err := obs.ReadDumps(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 || dumps[0].Reason != "end of run" || len(dumps[0].Events) == 0 {
		t.Fatalf("dump file = %d dumps, want one non-empty end-of-run dump", len(dumps))
	}
}
