package main

import (
	"flag"
	"fmt"
	"time"

	"gonoc/internal/modelcheck"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// runCheck is the model-checking tier's CLI: it exhaustively explores
// the w x h ring scenario fault free and under every single link and
// router fault, proving deadlock freedom and full delivery, and exits
// non-zero with a replayable counterexample trace on any violation.
func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	w := fs.Int("w", 2, "grid width")
	h := fs.Int("h", 2, "grid height")
	topoFlag := fs.String("topo", "mesh", "topology family: mesh or torus (a torus sweep includes every wrap link)")
	maxStates := fs.Int("max-states", 1<<22, "distinct-state cap per scenario")
	maxDepth := fs.Int("max-depth", 4096, "transition-depth cap per scenario")
	budget := fs.Duration("budget", 0, "wall-clock budget per scenario (0 = none)")
	retxTimeout := fs.Uint64("retx-timeout", 0, "NI retransmission timeout in cycles (0 = off)")
	retxRetries := fs.Int("retx-retries", 0, "max retransmissions per packet (needs -retx-timeout)")
	mcWalks := fs.Int("mc", 0, "Monte-Carlo mode: sample this many random walks per scenario instead of exhausting (for meshes beyond exhaustive reach)")
	mcSeed := fs.Uint64("seed", 1, "random seed for -mc")
	sabotage := fs.Int("sabotage", -1, "arm the credit-loss sabotage transition at this node (expects a DEADLOCK verdict; checker self-test)")
	crossval := fs.Bool("crossval", false, "also cross-check the faults-to-failure campaign against the exact combinatorial mean")
	trials := fs.Int("trials", 4000, "campaign trials for -crossval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	retx := noc.RetxConfig{Timeout: sim.Cycle(*retxTimeout), MaxRetries: *retxRetries}
	opt := modelcheck.Options{MaxStates: *maxStates, MaxDepth: *maxDepth, Budget: *budget}
	if _, err := topology.New(*topoFlag, *w, *h, 1); err != nil {
		return err
	}

	if *sabotage >= 0 {
		sc := modelcheck.RingOn(*topoFlag, *w, *h)
		sc.Name = fmt.Sprintf("%s-sabotage-%d", sc.Name, *sabotage)
		sc.VCs, sc.Classes, sc.Depth = 1, 1, 1
		sc.SabotageNode = *sabotage
		// Three packets in sequence over the sabotaged node's first hop
		// through depth-1 single-VC buffers: one lost credit permanently
		// starves the followers. A single packet per link would survive.
		dst := (*sabotage + 1) % (*w * *h)
		sc.Packets = nil
		for i := 0; i < 3; i++ {
			sc.Packets = append(sc.Packets, modelcheck.Packet{Src: *sabotage, Dst: dst, Size: 1})
		}
		res, err := modelcheck.Explore(sc, opt)
		if err != nil {
			return err
		}
		fmt.Print(modelcheck.FormatResults([]modelcheck.Result{res}))
		if res.Verdict != modelcheck.Deadlocked && res.Verdict != modelcheck.Livelocked {
			return fmt.Errorf("sabotage self-test expected a violation, got %v", res.Verdict)
		}
		fmt.Println("\nsabotage self-test: violation found and replayed, as expected")
		return nil
	}

	if *mcWalks > 0 {
		sc := modelcheck.RingOn(*topoFlag, *w, *h)
		sc.Retx = retx
		res, err := modelcheck.MonteCarlo(sc, modelcheck.MCOptions{Walks: *mcWalks, Seed: *mcSeed})
		if err != nil {
			return err
		}
		fmt.Println(res)
		if res.Violations > 0 {
			return fmt.Errorf("%d delivery violations; first walk: %v", res.Violations, res.FirstViolation)
		}
		return crossvalIfAsked(*crossval, *trials, *mcSeed)
	}

	start := time.Now()
	results, err := modelcheck.CheckTopo(*topoFlag, *w, *h, retx, opt)
	if err != nil {
		return err
	}
	fmt.Print(modelcheck.FormatResults(results))
	states, proved := 0, 0
	for _, r := range results {
		states += r.States
		switch r.Verdict {
		case modelcheck.Proved:
			proved++
		case modelcheck.Deadlocked, modelcheck.Livelocked:
			return fmt.Errorf("%s: %v — counterexample above", r.Scenario.Name, r.Verdict)
		case modelcheck.Exhausted:
			return fmt.Errorf("%s: exploration bound hit (%s); raise -max-states/-budget or use -mc", r.Scenario.Name, r.Detail)
		}
	}
	kind := *topoFlag
	if kind == "" {
		kind = "mesh"
	}
	fmt.Printf("\nPROVED %d/%d scenarios (%d states total) in %v: deadlock freedom and full delivery on the %dx%d %s, fault free and under every single link/router fault\n",
		proved, len(results), states, time.Since(start).Round(time.Millisecond), *w, *h, kind)
	return crossvalIfAsked(*crossval, *trials, *mcSeed)
}

func crossvalIfAsked(run bool, trials int, seed uint64) error {
	if !run {
		return nil
	}
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	cc := modelcheck.CrossValidate(cfg, trials, seed, 4)
	fmt.Println(cc)
	if !cc.OK {
		return fmt.Errorf("reliability cross-check failed")
	}
	return nil
}
