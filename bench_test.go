// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the simulator core. Each experiment benchmark
// reports the paper's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation in one run:
//
//	BenchmarkTableI_BaselineFIT      — Table I   (total_FIT ≈ 2822)
//	BenchmarkTableII_CorrectionFIT   — Table II  (total_FIT = 646)
//	BenchmarkMTTF_Improvement        — Eq. 4–7   (improvement ≈ 6.2×)
//	BenchmarkTableIII_SPF            — Table III (proposed SPF ≈ 11.4)
//	BenchmarkSPF_VCSweep             — Section VIII-E corollary
//	BenchmarkCampaign_FaultsToFailure— Monte-Carlo fault campaigns
//	BenchmarkAreaPower_Overhead      — Section VI-A (31% / 30%)
//	BenchmarkCriticalPath            — Section VI-B (0/20/10/25%)
//	BenchmarkFig7_SPLASH2            — Figure 7 (overall ≈ +10%)
//	BenchmarkFig8_PARSEC             — Figure 8 (overall ≈ +13%)
package gonoc

import (
	"fmt"
	"strings"
	"testing"

	"gonoc/internal/area"
	"gonoc/internal/core"
	"gonoc/internal/experiments"
	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/reliability"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// --- Experiment benchmarks (one per table / figure) ---

func BenchmarkTableI_BaselineFIT(b *testing.B) {
	lib := reliability.DefaultFITLibrary()
	spec := reliability.PaperSpec()
	var s reliability.StageFIT
	for i := 0; i < b.N; i++ {
		s = reliability.BaselineStageFIT(lib, spec)
	}
	b.ReportMetric(s.RC, "RC_FIT")
	b.ReportMetric(s.VA, "VA_FIT")
	b.ReportMetric(s.SA, "SA_FIT")
	b.ReportMetric(s.XB, "XB_FIT")
	b.ReportMetric(s.Total(), "total_FIT")
}

func BenchmarkTableII_CorrectionFIT(b *testing.B) {
	lib := reliability.DefaultFITLibrary()
	spec := reliability.PaperSpec()
	var s reliability.StageFIT
	for i := 0; i < b.N; i++ {
		s = reliability.CorrectionStageFIT(lib, spec)
	}
	b.ReportMetric(s.RC, "RC_FIT")
	b.ReportMetric(s.VA, "VA_FIT")
	b.ReportMetric(s.SA, "SA_FIT")
	b.ReportMetric(s.XB, "XB_FIT")
	b.ReportMetric(s.Total(), "total_FIT")
}

func BenchmarkMTTF_Improvement(b *testing.B) {
	lib := reliability.DefaultFITLibrary()
	spec := reliability.PaperSpec()
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = reliability.Improvement(lib, spec)
	}
	b.ReportMetric(reliability.MTTFBaseline(lib, spec), "MTTF_baseline_h")
	b.ReportMetric(reliability.MTTFProtected(lib, spec), "MTTF_protected_h")
	b.ReportMetric(imp, "improvement_x")
}

func BenchmarkTableIII_SPF(b *testing.B) {
	var rows []reliability.SPFResult
	for i := 0; i < b.N; i++ {
		rows = experiments.SPFTable()
	}
	for _, r := range rows {
		b.ReportMetric(r.SPF, metricName(r.Design)+"_SPF")
	}
}

// metricName makes a design or app name usable as a benchmark metric
// unit (no whitespace allowed).
func metricName(s string) string { return strings.ReplaceAll(s, " ", "_") }

func BenchmarkSPF_VCSweep(b *testing.B) {
	vcs := []int{2, 4, 8}
	var rows []reliability.SPFResult
	for i := 0; i < b.N; i++ {
		rows = experiments.SPFVCSweep(vcs)
	}
	b.ReportMetric(rows[0].SPF, "SPF_2VC")
	b.ReportMetric(rows[1].SPF, "SPF_4VC")
	b.ReportMetric(rows[2].SPF, "SPF_8VC")
}

func BenchmarkCampaign_FaultsToFailure(b *testing.B) {
	const trials = 2000
	for i := 0; i < b.N; i++ {
		rows := experiments.CampaignTable(trials, uint64(i)+1, 0)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Mean, metricName(r.Design)+"_mean")
			}
		}
	}
}

func BenchmarkAreaPower_Overhead(b *testing.B) {
	var rep experiments.AreaReport
	for i := 0; i < b.N; i++ {
		rep = experiments.Area()
	}
	b.ReportMetric(rep.AreaOverhead*100, "area_pct")
	b.ReportMetric(rep.PowerOverhead*100, "power_pct")
}

func BenchmarkCriticalPath(b *testing.B) {
	var prot area.StageBreakdown
	cp := area.DefaultCritPath()
	for i := 0; i < b.N; i++ {
		prot = cp.ProtectedPs()
	}
	b.ReportMetric(cp.Overhead(core.StageVA)*100, "VA_pct")
	b.ReportMetric(cp.Overhead(core.StageSA)*100, "SA_pct")
	b.ReportMetric(cp.Overhead(core.StageXB)*100, "XB_pct")
	b.ReportMetric(prot.VA, "VA_protected_ps")
}

// figureBench runs a whole suite once per iteration; at default benchtime
// this executes a single full-scale (8×8, 30k-cycle) run per suite.
func figureBench(b *testing.B, fig func(experiments.LatencyConfig) experiments.SuiteResult) {
	cfg := experiments.DefaultLatencyConfig()
	var res experiments.SuiteResult
	for i := 0; i < b.N; i++ {
		res = fig(cfg)
	}
	b.ReportMetric(res.OverallDeltaPct, "overall_delta_pct")
	for _, p := range res.Points {
		b.ReportMetric(p.DeltaPct, p.App+"_delta_pct")
	}
}

func BenchmarkFig7_SPLASH2(b *testing.B) { figureBench(b, experiments.Figure7) }

func BenchmarkFig8_PARSEC(b *testing.B) { figureBench(b, experiments.Figure8) }

// --- Microbenchmarks of the simulator core ---

func benchNetwork(b *testing.B, ft bool, faults bool) {
	rc := router.DefaultConfig()
	rc.FaultTolerant = ft
	// Workers pinned to 1: these benchmarks track the serial per-step cost
	// across revisions; parallel scaling is BenchmarkStep's job.
	src := traffic.NewSynthetic(64, 0.02, traffic.Uniform(64), traffic.Bimodal(1, 5, 0.6), 1)
	n := noc.MustNew(noc.Config{Width: 8, Height: 8, Router: rc, Warmup: 0, Workers: 1}, src)
	defer n.Close()
	if faults {
		fault.NewInjector(n, 5000, 2, true)
		n.Run(20000) // accumulate a fault population first
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
	b.ReportMetric(float64(n.Stats().Ejected()), "pkts_delivered")
}

func BenchmarkNetworkStep_Baseline8x8(b *testing.B)        { benchNetwork(b, false, false) }
func BenchmarkNetworkStep_Protected8x8(b *testing.B)       { benchNetwork(b, true, false) }
func BenchmarkNetworkStep_ProtectedFaulty8x8(b *testing.B) { benchNetwork(b, true, true) }

// benchNetworkObs mirrors benchNetwork with the internal/obs layer
// attached, so comparing against BenchmarkNetworkStep_Protected8x8 (obs
// disabled — a nil pointer test per instrumentation site) quantifies the
// cost of counters alone and of counters plus event tracing.
func benchNetworkObs(b *testing.B, trace bool, faults bool) {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	o := obs.New(1 << 16)
	o.Tracer.SetEnabled(trace)
	rc.Obs = o
	src := traffic.NewSynthetic(64, 0.02, traffic.Uniform(64), traffic.Bimodal(1, 5, 0.6), 1)
	n := noc.MustNew(noc.Config{Width: 8, Height: 8, Router: rc, Warmup: 0, Workers: 1}, src)
	defer n.Close()
	if faults {
		fault.NewInjector(n, 5000, 2, true)
		n.Run(20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
	b.ReportMetric(float64(n.Stats().Ejected()), "pkts_delivered")
}

func BenchmarkNetworkStep_ObsCounters8x8(b *testing.B)    { benchNetworkObs(b, false, false) }
func BenchmarkNetworkStep_ObsTrace8x8(b *testing.B)       { benchNetworkObs(b, true, false) }
func BenchmarkNetworkStep_ObsTraceFaulty8x8(b *testing.B) { benchNetworkObs(b, true, true) }

// BenchmarkStep measures the parallel scaling of the two-phase network
// step: the same offered load at 1, 2, 4 and 8 compute-phase workers on
// 4×4 and 8×8 meshes. The results are bit-identical at every worker
// count (see internal/noc's conformance suite); only the wall clock
// moves. Speedup over workers=1 is bounded by GOMAXPROCS — on a
// single-core runner all counts perform alike.
func BenchmarkStep(b *testing.B) {
	for _, m := range []struct{ w, h int }{{4, 4}, {8, 8}} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("mesh=%dx%d/workers=%d", m.w, m.h, workers), func(b *testing.B) {
				rc := router.DefaultConfig()
				rc.FaultTolerant = true
				nodes := m.w * m.h
				src := traffic.NewSynthetic(nodes, 0.02, traffic.Uniform(nodes), traffic.Bimodal(1, 5, 0.6), 1)
				n := noc.MustNew(noc.Config{Width: m.w, Height: m.h, Router: rc, Workers: workers}, src)
				defer n.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
				b.ReportMetric(float64(n.Stats().Ejected()), "pkts_delivered")
			})
		}
	}
}

func BenchmarkRouterTick(b *testing.B) {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Classes = 1
	r := core.MustNew(4, topology.NewMesh(3, 3), rc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Tick(sim.Cycle(i))
	}
}

func BenchmarkFaultCampaignProposed(b *testing.B) {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	for i := 0; i < b.N; i++ {
		fault.FaultsToFailure(rc, 100, uint64(i)+1, fault.UniversePaper)
	}
}

// --- Ablation benchmarks (design-choice studies from DESIGN.md) ---

func BenchmarkAblation_RotatePeriod(b *testing.B) {
	periods := []int{1, 4, 16, 64, 256}
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationRotatePeriod(periods, 10000, 3)
	}
	for _, p := range pts {
		b.ReportMetric(p.AvgLatency, fmt.Sprintf("latency_period%d", p.Param))
	}
}

func BenchmarkAblation_VCCount(b *testing.B) {
	vcs := []int{1, 2, 4, 8}
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationVCCount(vcs, 10000, 5)
	}
	for _, p := range pts {
		b.ReportMetric(p.AvgLatency, fmt.Sprintf("latency_%dvc", p.Param))
	}
}

func BenchmarkAblation_SecondaryPath(b *testing.B) {
	var res experiments.SecondaryPathAblation
	for i := 0; i < b.N; i++ {
		res = experiments.AblationSecondaryPath(10000, 7)
	}
	b.ReportMetric(res.ProtectedLatency, "protected_latency")
	b.ReportMetric(float64(res.ProtectedDelivered), "protected_delivered")
	b.ReportMetric(float64(res.BaselineStuck), "baseline_stuck_pkts")
}

func BenchmarkDegradationCurve(b *testing.B) {
	counts := []int{0, 30, 60, 120, 240}
	var pts []experiments.DegradationPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.DegradationCurve(counts, 10000, 11)
	}
	for _, p := range pts {
		b.ReportMetric(p.AvgLatency, fmt.Sprintf("latency_%dfaults", p.Faults))
	}
}
