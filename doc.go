// Package gonoc is a from-scratch Go reproduction of Poluri & Louri,
// "An Improved Router Design for Reliable On-Chip Networks" (IEEE IPDPS
// 2014): a cycle-accurate mesh network-on-chip simulator whose routers
// implement the paper's per-stage fault-tolerance mechanisms, together
// with the paper's complete evaluation — the FORC/TDDB reliability
// framework (Tables I–II, the 6× MTTF improvement), the Silicon
// Protection Factor comparison against BulletProof, Vicis and RoCo
// (Table III), the 45 nm area/power/critical-path model (Section VI) and
// the SPLASH-2/PARSEC fault-injection latency study (Figures 7–8).
//
// # Architecture
//
// The implementation lives under internal/, layered from primitives up
// to experiments. Foundations:
//
//   - sim — the cycle kernel: the Cycle type, Ticker interface and the
//     Kernel that advances registered components in deterministic order.
//   - rng — splittable xoshiro256** streams; every random decision in
//     the repository flows from an explicit seed.
//   - flit — packets, flits and message classes (request/response), with
//     the creation/injection/ejection timestamps the stats layer reads.
//   - topology — the 2-D mesh, the five router ports (Local, North,
//     East, South, West) and XY dimension-order routing.
//
// Router building blocks, one package per structural component:
//
//   - arbiter — round-robin arbiters plus the SA bypass wrapper with the
//     rotating default winner (Fig. 5).
//   - vc — virtual-channel state machines carrying the paper's extra
//     fields (R2, VF, ID for VA borrowing; Figs. 3d and 4).
//   - crossbar — the baseline crossbar and the protected crossbar whose
//     SP/FSP-directed secondary paths route around dead muxes (Fig. 6).
//   - router — structural configuration: port/VC counts, RC unit pairs,
//     allocator arrays, and the Config that assembles a core.Router
//     (including the Obs hook, see below).
//
// The router and network:
//
//   - core — the paper's router itself: the four-stage RC→VA→SA→XB
//     pipeline in both baseline and protected modes, with per-stage
//     fault masking (duplicate RC, VA arbiter borrowing, SA bypass with
//     VC transfer, secondary crossbar traversal) and the Functional()
//     failure predicate.
//   - noc — network assembly: routers wired by mesh links, network
//     interfaces injecting and ejecting traffic, per-cycle hooks, and
//     the top-level Network.Step/Run loop.
//
// Traffic flows into the network from:
//
//   - traffic — synthetic patterns (uniform, transpose, bit-complement,
//     tornado, neighbor, hotspot) and trace-driven sources.
//   - workloads — SPLASH-2 / PARSEC coherence-style traffic profiles
//     used by the Figure 7/8 latency study.
//   - tracefile — CSV record/replay of offered packets, so a workload
//     can be captured once and replayed under different fault loads.
//
// Fault modelling and detection:
//
//   - fault — the fault-site enumeration (Sites), permanent and
//     transient injectors, the injection-spec parser used by noctool's
//     -inject flag, and Monte-Carlo faults-to-failure campaigns.
//   - watchdog — online detection: localizes stuck VCs to a suspected
//     pipeline stage, the NoCAlert role of the paper's reference [18].
//   - ecc — a SEC-DED Hamming codec modelling Vicis-style datapath
//     protection for the comparison designs.
//
// Measurement and analysis:
//
//   - stats — packet-level latency/throughput collection with a warmup
//     window excluded from measurement.
//   - obs — the observability layer: a per-router/port/VC counter
//     registry and a ring-buffered cycle-accurate event tracer with
//     JSON-Lines and Chrome trace_event sinks. Disabled (nil) by
//     default; when enabled via router.Config.Obs, the core pipeline,
//     NIs, links, injectors and watchdog all report into it.
//   - reliability — FORC/TDDB failure physics, the FIT library behind
//     Tables I–II, the MTTF analysis and the SPF metric.
//   - area — the calibrated 45 nm gate-equivalent area/power model and
//     the Section VI-B critical-path model.
//   - ftrouters — behavioural models of BulletProof, Vicis and RoCo for
//     the Table III comparison.
//   - experiments — every table and figure as a pure function, plus
//     ablation studies; sweep fans independent simulations out across
//     goroutines (the simulator core itself is single-threaded).
//
// # Data flow
//
// A simulation cycle moves data through the layers as:
//
//	traffic/workloads → noc.NI → core.Router pipeline (RC→VA→SA→XB)
//	    → mesh links → ... → destination NI → stats.Collector
//
// while fault.Injector/TransientInjector mutate router fault state via
// network hooks, watchdog.Monitor observes VC progress, and every layer
// reports counters and events into obs when it is attached.
//
// # Entry points
//
//   - cmd/noctool — CLI: regenerates every table and figure, free-form
//     simulation (sim), per-router counters (metrics), event tracing
//     (trace), record/replay, ablations, and a -pprof profiling flag.
//   - examples/quickstart — minimal simulation of the 8×8 protected mesh
//   - examples/faultcampaign — per-mechanism fault tolerance walkthrough
//   - examples/reliability — the Section VII derivation step by step
//   - examples/spfsweep — Table III and the SPF corollaries
//   - examples/detection — transients, accumulation, watchdog localization
//   - examples/observability — faulty mesh → counter table + Chrome trace
//
// The benchmarks in bench_test.go regenerate each experiment and include
// obs-enabled/disabled microbenchmarks of the network step; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package gonoc
