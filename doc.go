// Package gonoc is a from-scratch Go reproduction of Poluri & Louri,
// "An Improved Router Design for Reliable On-Chip Networks" (IEEE IPDPS
// 2014): a cycle-accurate mesh network-on-chip simulator whose routers
// implement the paper's per-stage fault-tolerance mechanisms, together
// with the paper's complete evaluation — the FORC/TDDB reliability
// framework (Tables I–II, the 6× MTTF improvement), the Silicon
// Protection Factor comparison against BulletProof, Vicis and RoCo
// (Table III), the 45 nm area/power/critical-path model (Section VI) and
// the SPLASH-2/PARSEC fault-injection latency study (Figures 7–8).
//
// The implementation lives under internal/; the runnable entry points
// are:
//
//   - cmd/noctool — regenerates every table and figure from the CLI
//   - examples/quickstart — minimal simulation of the 8×8 protected mesh
//   - examples/faultcampaign — per-mechanism fault tolerance walkthrough
//   - examples/reliability — the Section VII derivation step by step
//   - examples/spfsweep — Table III and the SPF corollaries
//   - examples/detection — transients, accumulation and watchdog localization
//
// The benchmarks in bench_test.go regenerate each experiment; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package gonoc
