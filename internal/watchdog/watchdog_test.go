package watchdog

import (
	"bytes"
	"strings"
	"testing"

	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func protCfg(ft bool) noc.Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = ft
	rc.Classes = 1
	return noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}
}

func lightTraffic(seed uint64) *traffic.Synthetic {
	return traffic.NewSynthetic(16, 0.01, traffic.Uniform(16), traffic.FixedSize(2), seed)
}

func TestNoFalsePositivesAtLightLoad(t *testing.T) {
	n := noc.MustNew(protCfg(true), lightTraffic(1))
	m := New(n, 200)
	n.Run(10000)
	if s := m.Suspects(); len(s) != 0 {
		t.Fatalf("false positives on a healthy network: %v", s[0])
	}
}

func TestDetectsDeadRCPort(t *testing.T) {
	// Both RC copies of router 5's West port dead: heads entering that
	// port stick in Routing; the watchdog must localize RC at (5, W).
	n := noc.MustNew(protCfg(true), lightTraffic(2))
	n.Router(5).SetRCFault(topology.West, 0, true)
	n.Router(5).SetRCFault(topology.West, 1, true)
	m := New(n, 200)
	n.Run(15000)
	found := false
	for _, s := range m.SuspectsAt(5) {
		if s.Port == topology.West && s.Stage == core.StageRC {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead RC port not localized; suspects: %v", m.Suspects())
	}
}

func TestDetectsBaselineVAFault(t *testing.T) {
	// Baseline router: one VA arbiter-set fault blocks that VC forever;
	// the watchdog should flag the VA stage on that port.
	n := noc.MustNew(protCfg(false), lightTraffic(3))
	n.Router(9).SetVA1Fault(topology.North, 0, true)
	m := New(n, 200)
	n.Run(20000)
	found := false
	for _, s := range m.SuspectsAt(9) {
		if s.Port == topology.North && s.Stage == core.StageVA {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline VA fault not localized; suspects at 9: %v", m.SuspectsAt(9))
	}
}

func TestDetectsBaselineSwitchFault(t *testing.T) {
	n := noc.MustNew(protCfg(false), lightTraffic(4))
	n.Router(6).SetSA1Fault(topology.East, true)
	m := New(n, 200)
	n.Run(20000)
	found := false
	for _, s := range m.SuspectsAt(6) {
		if s.Port == topology.East && s.Stage == core.StageSA {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline SA fault not localized; suspects at 6: %v", m.SuspectsAt(6))
	}
}

func TestProtectedMasksFaultsFromWatchdog(t *testing.T) {
	// The protected router routes around a tolerable fault, so the
	// watchdog — which observes symptoms, not components — stays quiet.
	n := noc.MustNew(protCfg(true), lightTraffic(5))
	n.Router(5).SetRCFault(topology.West, 0, true)
	n.Router(5).SetSA1Fault(topology.East, true)
	n.Router(5).SetXBFault(topology.North, true)
	m := New(n, 300)
	n.Run(15000)
	if s := m.Suspects(); len(s) != 0 {
		t.Fatalf("watchdog fired on masked faults: %v", s[0])
	}
}

func TestReportOncePerStall(t *testing.T) {
	n := noc.MustNew(protCfg(true), lightTraffic(6))
	n.Router(5).SetRCFault(topology.West, 0, true)
	n.Router(5).SetRCFault(topology.West, 1, true)
	m := New(n, 100)
	n.Run(20000)
	// One stuck VC must produce exactly one report, not one per cycle.
	perVC := map[int]int{}
	for _, s := range m.SuspectsAt(5) {
		if s.Port == topology.West {
			perVC[s.VC]++
		}
	}
	for v, c := range perVC {
		if c != 1 {
			t.Fatalf("VC %d reported %d times", v, c)
		}
	}
	if len(perVC) == 0 {
		t.Fatal("nothing detected")
	}
	m.Clear()
	if len(m.Suspects()) != 0 {
		t.Fatal("Clear did not clear")
	}
}

func TestSuspectString(t *testing.T) {
	s := Suspect{Router: 3, Port: topology.East, VC: 1, Stage: core.StageVA, Since: 10, Detected: 210}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTripTriggersFlightDump(t *testing.T) {
	// A watchdog trip is an anomaly: it must capture a non-empty,
	// replayable flight-recorder dump naming the suspect in its reason.
	o := obs.New(1)
	o.Tracer.SetEnabled(false)
	o.Flight = obs.NewFlightRecorder(16, 64)
	cfg := protCfg(true)
	cfg.Router.Obs = o
	n := noc.MustNew(cfg, lightTraffic(7))
	n.Router(5).SetRCFault(topology.West, 0, true)
	n.Router(5).SetRCFault(topology.West, 1, true)
	m := New(n, 200)
	n.Run(15000)
	if len(m.Suspects()) == 0 {
		t.Fatal("watchdog never tripped")
	}
	dumps := o.Flight.Dumps()
	if len(dumps) == 0 {
		t.Fatal("trip captured no flight dump")
	}
	d := dumps[0]
	if len(d.Events) == 0 {
		t.Fatal("flight dump is empty")
	}
	if !strings.Contains(d.Reason, "watchdog") || !strings.Contains(d.Reason, "router 5") {
		t.Fatalf("dump reason %q does not name the suspect", d.Reason)
	}
	// Replayable: the dump survives serialization and formats to a
	// cycle-grouped transcript.
	var buf bytes.Buffer
	if err := obs.WriteDumps(&buf, dumps); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadDumps(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(dumps) || len(back[0].Events) != len(d.Events) {
		t.Fatalf("round trip lost events: %d dumps, %d events", len(back), len(back[0].Events))
	}
	if txt := obs.FormatDump(back[0]); !strings.Contains(txt, d.Reason) {
		t.Fatalf("formatted replay missing reason:\n%s", txt)
	}
}
