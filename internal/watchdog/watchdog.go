// Package watchdog provides an online fault-detection layer for the NoC,
// standing in for the NoCAlert-style mechanism the paper assumes
// (reference [18]: "an on-line and real-time fault detection mechanism").
//
// The paper's router *tolerates* faults but deliberately leaves
// *detection* to prior work. This package closes that loop at the
// architectural level: a Monitor watches every input VC of every router
// and flags any VC that holds flits yet makes no progress for longer
// than a threshold, localizing the suspected pipeline stage from the
// VC's global state ('G' field):
//
//	stuck in Routing   → RC stage suspect
//	stuck in VCAlloc   → VA stage suspect
//	stuck in Active    → SA or XB stage suspect (reported as SA; the two
//	                     share the switch datapath)
//
// Like any timeout-based detector, the threshold trades detection
// latency against false positives under congestion: a VC legitimately
// blocked behind a saturated hotspot looks identical to one blocked by a
// dead arbiter until the hotspot drains. Choose thresholds well above
// the longest legitimate stall at the operating load.
package watchdog

import (
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/vc"
)

// Suspect is one localized fault report.
type Suspect struct {
	// Router is the node id of the suspect router.
	Router int
	// Port is the input port whose VC stopped progressing.
	Port topology.Port
	// VC is the stuck virtual channel index.
	VC int
	// Stage is the localized pipeline stage.
	Stage core.StageID
	// Since is the cycle the VC last made progress.
	Since sim.Cycle
	// Detected is the cycle the watchdog raised the report.
	Detected sim.Cycle
}

// String implements fmt.Stringer.
func (s Suspect) String() string {
	return fmt.Sprintf("router %d %v/vc%d: %v stage stuck since cycle %d (detected %d)",
		s.Router, s.Port, s.VC, s.Stage, s.Since, s.Detected)
}

// vcKey identifies one observed VC.
type vcKey struct {
	router int
	port   topology.Port
	vc     int
}

type vcState struct {
	g        vc.GState
	length   int
	lastMove sim.Cycle
	reported bool
}

// Monitor is a network-wide watchdog.
type Monitor struct {
	net *noc.Network
	// Threshold is how many cycles a non-empty VC may sit in one state
	// before being reported.
	Threshold sim.Cycle

	state    map[vcKey]*vcState
	suspects []Suspect
	obs      *obs.Observer
}

// New attaches a monitor with the given stall threshold to net.
func New(net *noc.Network, threshold sim.Cycle) *Monitor {
	m := &Monitor{net: net, Threshold: threshold, state: map[vcKey]*vcState{}, obs: net.Obs()}
	net.AddHook(m.hook)
	return m
}

// hook samples every VC once per cycle.
func (m *Monitor) hook(c sim.Cycle) {
	topo := m.net.Topo()
	for node := 0; node < topo.Nodes(); node++ {
		r := m.net.Router(node)
		cfg := r.Config()
		for p := 0; p < cfg.Ports; p++ {
			port := topology.Port(p)
			for v := 0; v < cfg.VCs; v++ {
				q := r.InputVC(port, v)
				key := vcKey{router: node, port: port, vc: v}
				st := m.state[key]
				if st == nil {
					st = &vcState{lastMove: c}
					m.state[key] = st
				}
				if q.G != st.g || q.Len() != st.length {
					st.g, st.length = q.G, q.Len()
					st.lastMove = c
					st.reported = false
					continue
				}
				if q.Empty() || q.G == vc.Idle || st.reported {
					continue
				}
				if c-st.lastMove < m.Threshold {
					continue
				}
				st.reported = true
				stage := localize(q.G)
				sus := Suspect{
					Router:   node,
					Port:     port,
					VC:       v,
					Stage:    stage,
					Since:    st.lastMove,
					Detected: c,
				}
				m.suspects = append(m.suspects, sus)
				m.obs.RecordFault(obs.KFaultsDetected, obs.EvFaultDetect,
					c, node, p, v, int32(stage), "")
				// A new suspect is exactly the anomaly the flight recorder
				// exists for: freeze the recent history before the stuck
				// traffic ages it out of the ring.
				if o := m.obs; o != nil {
					if f := o.Flight; f != nil {
						f.Trigger(c, "watchdog: "+sus.String())
					}
				}
			}
		}
	}
}

// localize maps a stuck VC state to the pipeline stage that failed to
// serve it.
func localize(g vc.GState) core.StageID {
	switch g {
	case vc.Routing:
		return core.StageRC
	case vc.VCAlloc:
		return core.StageVA
	default:
		return core.StageSA
	}
}

// Suspects returns all reports raised so far, in detection order.
func (m *Monitor) Suspects() []Suspect {
	out := make([]Suspect, len(m.suspects))
	copy(out, m.suspects)
	return out
}

// SuspectsAt filters reports to one router.
func (m *Monitor) SuspectsAt(router int) []Suspect {
	var out []Suspect
	for _, s := range m.suspects {
		if s.Router == router {
			out = append(out, s)
		}
	}
	return out
}

// Clear discards accumulated reports (state tracking continues).
func (m *Monitor) Clear() { m.suspects = m.suspects[:0] }
