// Package ecc implements the single-error-correcting, double-error-
// detecting (SEC-DED) Hamming code used to protect 32-bit flit datapaths.
//
// This is the "low overhead Error Correcting Codes ... to tolerate faults
// in the datapath" of the Vicis comparator design (Fick et al., DAC 2009,
// the paper's reference [15]), and the standard remedy for the transient
// datapath upsets the paper's introduction describes. A hard fault in one
// datapath bit line manifests as a stuck bit in every word that crosses
// it; SEC-DED corrects it continuously until a second fault lands in the
// same word, which matches the two-faults-per-unit failure semantics of
// the Vicis model in internal/ftrouters.
//
// The codeword layout is the classic Hamming construction: bit positions
// 1..38 hold the 32 data bits with parity bits at the power-of-two
// positions (1, 2, 4, 8, 16, 32), and bit 0 holds an overall parity bit
// that upgrades single-error correction to double-error detection.
package ecc

import (
	"fmt"
	"math/bits"
)

// DataBits is the protected word width.
const DataBits = 32

// CodeBits is the full codeword width: 32 data + 6 Hamming parity + 1
// overall parity.
const CodeBits = 39

// Result classifies the outcome of a Decode.
type Result int

const (
	// OK: the codeword was clean.
	OK Result = iota
	// Corrected: exactly one bit error was found and repaired.
	Corrected
	// Detected: a double-bit error was found; the data is unusable.
	Detected
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// isParityPos reports whether a 1-based codeword position holds a Hamming
// parity bit.
func isParityPos(p uint) bool { return p&(p-1) == 0 }

// Encode returns the 39-bit SEC-DED codeword for data (in the low bits of
// the returned word).
func Encode(data uint32) uint64 {
	var cw uint64
	// Scatter data bits into non-parity positions 3, 5, 6, 7, 9, ...
	d := 0
	for pos := uint(1); pos <= 38; pos++ {
		if isParityPos(pos) {
			continue
		}
		if data&(1<<d) != 0 {
			cw |= 1 << pos
		}
		d++
	}
	// Hamming parity bits: parity at position 2^k covers every position
	// with bit k set.
	for k := uint(0); k < 6; k++ {
		p := uint(1) << k
		var parity uint64
		for pos := uint(1); pos <= 38; pos++ {
			if pos&p != 0 {
				parity ^= (cw >> pos) & 1
			}
		}
		cw |= parity << p
	}
	// Overall parity at position 0 covers the whole word.
	cw |= uint64(bits.OnesCount64(cw)) & 1
	return cw
}

// Decode checks and, if possible, repairs a codeword, returning the data
// word, the outcome and (for Corrected) the corrected 0-based codeword
// position. For Detected the returned data is unusable.
func Decode(cw uint64) (data uint32, res Result, fixedPos int) {
	// Syndrome: XOR of Hamming parities.
	var syndrome uint
	for k := uint(0); k < 6; k++ {
		p := uint(1) << k
		var parity uint64
		for pos := uint(1); pos <= 38; pos++ {
			if pos&p != 0 {
				parity ^= (cw >> pos) & 1
			}
		}
		if parity != 0 {
			syndrome |= p
		}
	}
	overall := uint(bits.OnesCount64(cw)) & 1

	fixedPos = -1
	switch {
	case syndrome == 0 && overall == 0:
		res = OK
	case overall == 1:
		// Odd number of errors: assume single, repairable.
		res = Corrected
		if syndrome == 0 {
			// The overall parity bit itself flipped.
			cw ^= 1
			fixedPos = 0
		} else if syndrome <= 38 {
			cw ^= 1 << syndrome
			fixedPos = int(syndrome)
		} else {
			// Syndrome points outside the word: multi-bit upset.
			return 0, Detected, -1
		}
	default:
		// Non-zero syndrome with even overall parity: double error.
		return 0, Detected, -1
	}

	// Gather data bits.
	d := 0
	for pos := uint(1); pos <= 38; pos++ {
		if isParityPos(pos) {
			continue
		}
		if cw&(1<<pos) != 0 {
			data |= 1 << d
		}
		d++
	}
	return data, res, fixedPos
}

// Word is a convenience wrapper pairing a stored codeword with stuck-bit
// faults, modelling a datapath lane with hard faults: every pass through
// Read applies the stuck bits before decoding, as a physical stuck line
// would.
type Word struct {
	cw        uint64
	stuckMask uint64 // bits forced to stuckVal
	stuckVal  uint64
}

// Store encodes data into the word.
func (w *Word) Store(data uint32) { w.cw = Encode(data) }

// StickBit forces 0-based codeword position pos to value v on every read,
// modelling a hard fault in that bit line.
func (w *Word) StickBit(pos uint, v bool) {
	w.stuckMask |= 1 << pos
	if v {
		w.stuckVal |= 1 << pos
	} else {
		w.stuckVal &^= 1 << pos
	}
}

// Read applies the stuck bits and decodes.
func (w *Word) Read() (uint32, Result) {
	cw := (w.cw &^ w.stuckMask) | (w.stuckVal & w.stuckMask)
	data, res, _ := Decode(cw)
	return data, res
}
