package ecc

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	for _, d := range []uint32{0, 1, 0xFFFFFFFF, 0xDEADBEEF, 0x80000000, 0x55555555} {
		cw := Encode(d)
		got, res, _ := Decode(cw)
		if res != OK || got != d {
			t.Fatalf("roundtrip %#x: got %#x, %v", d, got, res)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(d uint32) bool {
		got, res, _ := Decode(Encode(d))
		return res == OK && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEverySingleBitErrorCorrected(t *testing.T) {
	data := uint32(0xCAFEBABE)
	cw := Encode(data)
	for pos := uint(0); pos < CodeBits; pos++ {
		got, res, fixed := Decode(cw ^ (1 << pos))
		if res != Corrected {
			t.Fatalf("flip at %d: result %v, want corrected", pos, res)
		}
		if got != data {
			t.Fatalf("flip at %d: data %#x, want %#x", pos, got, data)
		}
		if fixed != int(pos) {
			t.Fatalf("flip at %d: reported position %d", pos, fixed)
		}
	}
}

func TestSingleBitCorrectionProperty(t *testing.T) {
	f := func(d uint32, p uint8) bool {
		pos := uint(p) % CodeBits
		got, res, _ := Decode(Encode(d) ^ (1 << pos))
		return res == Corrected && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryDoubleBitErrorDetected(t *testing.T) {
	data := uint32(0x12345678)
	cw := Encode(data)
	for a := uint(0); a < CodeBits; a++ {
		for b := a + 1; b < CodeBits; b++ {
			_, res, _ := Decode(cw ^ (1 << a) ^ (1 << b))
			if res != Detected {
				t.Fatalf("double flip (%d, %d): result %v, want detected", a, b, res)
			}
		}
	}
}

func TestDoubleBitDetectionProperty(t *testing.T) {
	f := func(d uint32, pa, pb uint8) bool {
		a := uint(pa) % CodeBits
		b := uint(pb) % CodeBits
		if a == b {
			b = (b + 1) % CodeBits
		}
		_, res, _ := Decode(Encode(d) ^ (1 << a) ^ (1 << b))
		return res == Detected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordStuckBitContinuouslyCorrected(t *testing.T) {
	// A hard fault in one bit line is corrected on every read — the Vicis
	// datapath-protection behaviour.
	var w Word
	w.StickBit(7, true)
	for _, d := range []uint32{0, 0xFFFFFFFF, 0xA5A5A5A5, 42} {
		w.Store(d)
		got, res := w.Read()
		if got != d {
			t.Fatalf("stuck bit corrupted data: got %#x want %#x", got, d)
		}
		// Depending on the stored word, the stuck value may coincide with
		// the true bit (OK) or differ (Corrected); both keep data intact.
		if res == Detected {
			t.Fatalf("single stuck line reported as double error for %#x", d)
		}
	}
}

func TestWordTwoStuckBitsDetected(t *testing.T) {
	var w Word
	w.StickBit(3, true)
	w.StickBit(9, true)
	detected := false
	for _, d := range []uint32{0, 0xFFFF0000, 0x0F0F0F0F} {
		w.Store(d)
		if _, res := w.Read(); res == Detected {
			detected = true
		}
	}
	if !detected {
		t.Fatal("two stuck lines never detected across test words")
	}
}

func TestResultString(t *testing.T) {
	for _, r := range []Result{OK, Corrected, Detected, Result(9)} {
		if r.String() == "" {
			t.Fatal("empty Result string")
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Encode(uint32(i))
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	cw := Encode(0xDEADBEEF)
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}
