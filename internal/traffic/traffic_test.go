package traffic

import (
	"math"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/rng"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

func TestUniformNeverSelf(t *testing.T) {
	d := Uniform(16)
	r := rng.New(1)
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		dst := d(5, r)
		if dst == 5 {
			t.Fatal("uniform pattern returned src")
		}
		counts[dst]++
	}
	for i, c := range counts {
		if i == 5 {
			continue
		}
		want := 16000.0 / 15
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := topology.NewMesh(4, 4)
	d := Transpose(m)
	r := rng.New(1)
	src := m.ID(topology.Coord{X: 1, Y: 3})
	if got := d(src, r); got != m.ID(topology.Coord{X: 3, Y: 1}) {
		t.Errorf("transpose(1,3) = %v", m.Coord(got))
	}
	// Diagonal nodes fall back to uniform but never self.
	diag := m.ID(topology.Coord{X: 2, Y: 2})
	for i := 0; i < 100; i++ {
		if d(diag, r) == diag {
			t.Fatal("diagonal transpose returned src")
		}
	}
}

func TestTransposeNeedsSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-square transpose")
		}
	}()
	Transpose(topology.NewMesh(4, 2))
}

func TestBitComplement(t *testing.T) {
	m := topology.NewMesh(8, 8)
	d := BitComplement(m)
	r := rng.New(1)
	src := m.ID(topology.Coord{X: 1, Y: 2})
	if got := d(src, r); got != m.ID(topology.Coord{X: 6, Y: 5}) {
		t.Errorf("bitcomplement(1,2) = %v", m.Coord(got))
	}
}

func TestTornado(t *testing.T) {
	m := topology.NewMesh(8, 8)
	d := Tornado(m)
	r := rng.New(1)
	src := m.ID(topology.Coord{X: 1, Y: 3})
	if got := d(src, r); got != m.ID(topology.Coord{X: 5, Y: 3}) {
		t.Errorf("tornado(1,3) = %v", m.Coord(got))
	}
}

func TestNeighbor(t *testing.T) {
	m := topology.NewMesh(4, 4)
	d := Neighbor(m)
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		src := r.Intn(16)
		dst := d(src, r)
		if m.HopsXY(src, dst) != 1 {
			t.Fatalf("neighbor pattern: %d -> %d is %d hops", src, dst, m.HopsXY(src, dst))
		}
	}
}

func TestHotspot(t *testing.T) {
	d := Hotspot(64, []int{0, 7}, 0.5)
	r := rng.New(3)
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		dst := d(30, r)
		if dst == 30 {
			t.Fatal("hotspot returned src")
		}
		if dst == 0 || dst == 7 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.45 || frac > 0.60 {
		t.Errorf("hot fraction = %v, want ~0.5", frac)
	}
}

func TestSizeFns(t *testing.T) {
	r := rng.New(4)
	if FixedSize(5)(r) != 5 {
		t.Fatal("FixedSize broken")
	}
	bi := Bimodal(1, 5, 0.7)
	short := 0
	for i := 0; i < 10000; i++ {
		switch bi(r) {
		case 1:
			short++
		case 5:
		default:
			t.Fatal("bimodal returned unexpected size")
		}
	}
	if f := float64(short) / 10000; math.Abs(f-0.7) > 0.03 {
		t.Errorf("short fraction = %v", f)
	}
}

func TestSyntheticRate(t *testing.T) {
	s := NewSynthetic(4, 0.25, Uniform(4), FixedSize(1), 7)
	total := 0
	const cycles = 20000
	for c := 0; c < cycles; c++ {
		for node := 0; node < 4; node++ {
			total += len(s.Offered(node, sim.Cycle(c)))
		}
	}
	got := float64(total) / (4 * cycles)
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("offered rate = %v, want 0.25", got)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	mk := func() []int {
		s := NewSynthetic(8, 0.3, Uniform(8), Bimodal(1, 5, 0.5), 42)
		var log []int
		for c := 0; c < 500; c++ {
			for node := 0; node < 8; node++ {
				for _, p := range s.Offered(node, sim.Cycle(c)) {
					log = append(log, node, p.Dst, p.Size)
				}
			}
		}
		return log
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestSyntheticStopAt(t *testing.T) {
	s := NewSynthetic(2, 1.0, Uniform(2), FixedSize(1), 1)
	s.StopAt(10)
	if len(s.Offered(0, 9)) == 0 {
		t.Fatal("no packet before stop with rate 1")
	}
	if len(s.Offered(0, 10)) != 0 {
		t.Fatal("packet offered at stop cycle")
	}
}

func TestSyntheticBurstRaisesRate(t *testing.T) {
	base := NewSynthetic(1, 0.1, Uniform(2), FixedSize(1), 9)
	bursty := NewSynthetic(1, 0.1, Uniform(2), FixedSize(1), 9)
	bursty.SetBurstiness(0.8)
	nb, nr := 0, 0
	for c := 0; c < 50000; c++ {
		nr += len(base.Offered(0, sim.Cycle(c)))
		nb += len(bursty.Offered(0, sim.Cycle(c)))
	}
	if nb <= nr*3 {
		t.Errorf("burstiness did not raise offered load: base %d, bursty %d", nr, nb)
	}
}

func TestTraceReplay(t *testing.T) {
	tr := NewTrace([]TraceEntry{
		{Cycle: 5, Src: 1, Dst: 2, Size: 3, Class: flit.Response},
		{Cycle: 5, Src: 1, Dst: 3, Size: 1},
		{Cycle: 9, Src: 2, Dst: 0, Size: 2},
	})
	if tr.Remaining() != 3 {
		t.Fatalf("Remaining = %d", tr.Remaining())
	}
	if got := tr.Offered(1, 4); len(got) != 0 {
		t.Fatalf("early offer: %v", got)
	}
	got := tr.Offered(1, 5)
	if len(got) != 2 || got[0].Dst != 2 || got[0].Size != 3 || got[1].Dst != 3 {
		t.Fatalf("offer at 5: %+v", got)
	}
	if got := tr.Offered(2, 20); len(got) != 1 || got[0].Dst != 0 {
		t.Fatalf("late offer: %+v", got)
	}
	if tr.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", tr.Remaining())
	}
}
