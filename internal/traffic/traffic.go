// Package traffic provides synthetic workload generators for the NoC:
// the classic destination patterns (uniform random, transpose,
// bit-complement, tornado, hotspot, nearest neighbour), Bernoulli and
// bursty injection processes, and a trace replayer. All generators are
// deterministic given their seed.
package traffic

import (
	"fmt"

	"gonoc/internal/flit"
	"gonoc/internal/rng"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// DestFn selects a destination node for a packet originating at src. A
// DestFn may use the provided stream for randomized patterns. It must
// never return src.
type DestFn func(src int, r *rng.Stream) int

// Uniform sends to a destination chosen uniformly among all other nodes.
func Uniform(nodes int) DestFn {
	if nodes < 2 {
		panic("traffic: uniform pattern needs >= 2 nodes")
	}
	return func(src int, r *rng.Stream) int {
		d := r.Intn(nodes - 1)
		if d >= src {
			d++
		}
		return d
	}
}

// Transpose sends (x, y) → (y, x); nodes on the diagonal fall back to
// uniform. Requires a square router grid (any topology family).
func Transpose(t topology.Topology) DestFn {
	w, h := t.Dims()
	if w != h {
		panic(fmt.Sprintf("traffic: transpose needs a square grid, got %dx%d", w, h))
	}
	uni := Uniform(t.Nodes())
	return func(src int, r *rng.Stream) int {
		c := t.Coord(src)
		if c.X == c.Y {
			return uni(src, r)
		}
		return t.ID(topology.Coord{X: c.Y, Y: c.X})
	}
}

// BitComplement sends (x, y) → (W−1−x, H−1−y); the centre falls back to
// uniform on odd-sized grids.
func BitComplement(t topology.Topology) DestFn {
	w, h := t.Dims()
	uni := Uniform(t.Nodes())
	return func(src int, r *rng.Stream) int {
		c := t.Coord(src)
		d := topology.Coord{X: w - 1 - c.X, Y: h - 1 - c.Y}
		if d == c {
			return uni(src, r)
		}
		return t.ID(d)
	}
}

// Tornado sends halfway around each dimension: (x, y) → ((x+W/2) mod W, y).
// On a torus this is the classic adversarial pattern for minimal routing:
// every packet travels the maximum distance its ring allows.
func Tornado(t topology.Topology) DestFn {
	w, _ := t.Dims()
	uni := Uniform(t.Nodes())
	return func(src int, r *rng.Stream) int {
		c := t.Coord(src)
		d := topology.Coord{X: (c.X + w/2) % w, Y: c.Y}
		if d == c {
			return uni(src, r)
		}
		return t.ID(d)
	}
}

// Neighbor sends to a uniformly chosen directly-linked neighbour.
func Neighbor(t topology.Topology) DestFn {
	return func(src int, r *rng.Stream) int {
		dirs := []topology.Port{topology.North, topology.East, topology.South, topology.West}
		for {
			if n, ok := t.Neighbor(src, dirs[r.Intn(len(dirs))]); ok && n != src {
				return n
			}
		}
	}
}

// Hotspot sends a fraction frac of traffic to a uniformly chosen node in
// hot, and the remainder uniformly. It models memory-controller or
// directory concentration.
func Hotspot(nodes int, hot []int, frac float64) DestFn {
	if len(hot) == 0 {
		panic("traffic: hotspot pattern needs at least one hot node")
	}
	uni := Uniform(nodes)
	return func(src int, r *rng.Stream) int {
		if r.Bernoulli(frac) {
			d := hot[r.Intn(len(hot))]
			if d != src {
				return d
			}
		}
		return uni(src, r)
	}
}

// SizeFn returns a packet size in flits.
type SizeFn func(r *rng.Stream) int

// FixedSize always returns n flits.
func FixedSize(n int) SizeFn {
	if n < 1 {
		panic("traffic: packet size must be >= 1")
	}
	return func(*rng.Stream) int { return n }
}

// Bimodal returns shortSize with probability shortFrac, else longSize —
// the control/data mix of coherence traffic.
func Bimodal(shortSize, longSize int, shortFrac float64) SizeFn {
	return func(r *rng.Stream) int {
		if r.Bernoulli(shortFrac) {
			return shortSize
		}
		return longSize
	}
}

// Synthetic is an open-loop generator: every node offers packets by a
// Bernoulli (or bursty) process at the configured rate.
type Synthetic struct {
	nodes   int
	rate    float64 // packets per node per cycle
	dest    DestFn
	size    SizeFn
	class   flit.Class
	burst   float64 // probability a packet is followed by a burst packet
	stopAt  sim.Cycle
	streams []*rng.Stream
	inBurst []bool
}

// NewSynthetic builds a generator for nodes nodes offering rate packets
// per node per cycle with the given destination pattern and size
// distribution.
func NewSynthetic(nodes int, rate float64, dest DestFn, size SizeFn, seed uint64) *Synthetic {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("traffic: rate %v outside [0,1]", rate))
	}
	root := rng.New(seed)
	s := &Synthetic{
		nodes:   nodes,
		rate:    rate,
		dest:    dest,
		size:    size,
		streams: make([]*rng.Stream, nodes),
		inBurst: make([]bool, nodes),
	}
	for i := range s.streams {
		s.streams[i] = root.Split()
	}
	return s
}

// SetClass sets the message class of generated packets (default Request).
func (s *Synthetic) SetClass(c flit.Class) { s.class = c }

// SetBurstiness makes each packet trigger a follow-up packet next cycle
// with probability p, modelling bursty application phases.
func (s *Synthetic) SetBurstiness(p float64) { s.burst = p }

// StopAt stops generation at cycle c (0 = never), letting the network
// drain.
func (s *Synthetic) StopAt(c sim.Cycle) { s.stopAt = c }

// Offered implements the noc.Traffic interface.
func (s *Synthetic) Offered(node int, c sim.Cycle) []*flit.Packet {
	if s.stopAt != 0 && c >= s.stopAt {
		return nil
	}
	r := s.streams[node]
	fire := s.inBurst[node] || r.Bernoulli(s.rate)
	if !fire {
		return nil
	}
	s.inBurst[node] = s.burst > 0 && r.Bernoulli(s.burst)
	return []*flit.Packet{{
		Dst:   s.dest(node, r),
		Class: s.class,
		Size:  s.size(r),
	}}
}

// OnEject implements the noc.Traffic interface (open loop: no replies).
func (s *Synthetic) OnEject(*flit.Packet, sim.Cycle) []*flit.Packet { return nil }

// TraceEntry is one packet of a recorded trace.
type TraceEntry struct {
	Cycle sim.Cycle
	Src   int
	Dst   int
	Size  int
	Class flit.Class
}

// Trace replays a fixed packet schedule; entries must be sorted by Cycle.
type Trace struct {
	byNode map[int][]TraceEntry
}

// NewTrace builds a replayer from entries (grouped internally by source).
func NewTrace(entries []TraceEntry) *Trace {
	t := &Trace{byNode: map[int][]TraceEntry{}}
	for _, e := range entries {
		t.byNode[e.Src] = append(t.byNode[e.Src], e)
	}
	return t
}

// Offered implements the noc.Traffic interface.
func (t *Trace) Offered(node int, c sim.Cycle) []*flit.Packet {
	q := t.byNode[node]
	var out []*flit.Packet
	for len(q) > 0 && q[0].Cycle <= c {
		e := q[0]
		q = q[1:]
		out = append(out, &flit.Packet{Dst: e.Dst, Size: e.Size, Class: e.Class})
	}
	t.byNode[node] = q
	return out
}

// OnEject implements the noc.Traffic interface.
func (t *Trace) OnEject(*flit.Packet, sim.Cycle) []*flit.Packet { return nil }

// Remaining returns how many trace entries are still unsent.
func (t *Trace) Remaining() int {
	n := 0
	for _, q := range t.byNode {
		n += len(q)
	}
	return n
}
