// Package vc models virtual channels and the router input port.
//
// Each input port of the paper's router (Figure 3d) holds V virtual
// channels, each a small flit FIFO plus per-VC state fields:
//
//	G — the VC's pipeline state this cycle (idle / routing / VC
//	    allocation / active)
//	R — the routing computation result (requested output port)
//	O — the VC allocation result (assigned downstream VC)
//	P — FIFO read/write pointers (implicit in the buffer here)
//	C — credit count (tracked by the upstream output side in gonoc)
//
// The protected router (Figure 4) adds five fields that implement arbiter
// sharing and the crossbar secondary path:
//
//	R2  — the RC result a borrowing VC deposits with the lender
//	VF  — flag: this VC's arbiters are currently lent out
//	ID  — identity of the borrowing VC
//	SP  — the output port to arbitrate for when using the secondary path
//	FSP — flag: the secondary path must be used
package vc

import (
	"fmt"

	"gonoc/internal/flit"
	"gonoc/internal/topology"
)

// GState is the per-VC pipeline state (the 'G' field of Figure 3d).
type GState uint8

const (
	// Idle: the VC holds no packet.
	Idle GState = iota
	// Routing: a head flit is waiting for (or in) routing computation.
	Routing
	// VCAlloc: routing is done; the head flit competes for a downstream VC.
	VCAlloc
	// Active: a downstream VC is allocated; flits compete in switch
	// allocation until the tail departs.
	Active
	// Dropping: routing found the destination unreachable (network
	// partitioned by link/router faults); buffered flits are discarded
	// one per cycle, returning credits upstream, until the tail frees
	// the VC.
	Dropping
)

// String implements fmt.Stringer.
func (g GState) String() string {
	switch g {
	case Idle:
		return "I"
	case Routing:
		return "R"
	case VCAlloc:
		return "V"
	case Active:
		return "A"
	case Dropping:
		return "D"
	default:
		return fmt.Sprintf("GState(%d)", uint8(g))
	}
}

// None is the sentinel for "no VC" in ID/OutVC fields.
const None = -1

// VC is a single virtual channel: a flit FIFO plus state fields.
type VC struct {
	// Index is this VC's position within its input port.
	//noc:derived immutable slot identity, fixed at construction
	Index int

	buf   []*flit.Flit
	depth int

	// G is the pipeline state.
	G GState
	// R is the routing computation result ('R' field).
	R topology.Port
	// OutVC is the allocated downstream VC ('O' field), or None.
	OutVC int

	// R2 holds a borrowing VC's routing result (protected router only).
	R2 topology.Port
	// VF is set while this VC's arbiters serve another VC.
	VF bool
	// ID names the VC borrowing the arbiters, or None.
	ID int
	// SP is the output port to request in SA when FSP is set.
	SP topology.Port
	// FSP indicates the crossbar secondary path must be used.
	FSP bool

	// Detour is set when fault-aware routing sent this packet off the
	// baseline XY path at this hop. It is observational only — the
	// stall scan attributes the packet's waits to the fault
	// (route-blocked) while it holds — and never feeds back into
	// arbitration.
	//noc:derived observational only: saved and restored, but excluded from the canonical encoding because it never feeds arbitration
	Detour bool

	// CreditHome is the VC index the upstream router believes these flits
	// occupy. It equals Index normally and diverges only after an SA-stage
	// transfer (Section V-C1): credits and the tail's VC-free signal must
	// be returned for the VC the upstream allocated, not the one the flits
	// were moved into.
	CreditHome int

	// DvcLo and DvcHi restrict VC allocation to the downstream VC range
	// [DvcLo, DvcHi), set by fault-aware routing to pin the packet to a
	// deadlock-free routing layer. Both zero (the reset state) means no
	// restriction: the full message-class range is eligible.
	DvcLo, DvcHi int
}

// NewVC returns an empty VC with the given buffer depth. It panics if
// depth < 1.
func NewVC(index, depth int) *VC {
	if depth < 1 {
		panic(fmt.Sprintf("vc: invalid depth %d", depth))
	}
	// The buffer is fully pre-allocated: credit flow control bounds it at
	// depth, and growing it lazily would put first-fill allocations on
	// the steady-state tick path.
	return &VC{Index: index, depth: depth, buf: make([]*flit.Flit, 0, depth),
		OutVC: None, ID: None, CreditHome: index}
}

// Depth returns the buffer capacity in flits.
func (v *VC) Depth() int { return v.depth }

// Len returns the number of buffered flits.
func (v *VC) Len() int { return len(v.buf) }

// Free returns the remaining buffer space in flits.
func (v *VC) Free() int { return v.depth - len(v.buf) }

// Empty reports whether the buffer holds no flits.
func (v *VC) Empty() bool { return len(v.buf) == 0 }

// Push appends a flit. It panics on overflow — credit-based flow control
// must make overflow impossible, so an overflow is a simulator bug.
func (v *VC) Push(f *flit.Flit) {
	if v.Free() == 0 {
		panic(fmt.Sprintf("vc: overflow on VC %d (depth %d); flow-control bug", v.Index, v.depth))
	}
	v.buf = append(v.buf, f)
}

// Front returns the flit at the head of the FIFO without removing it, or
// nil when empty.
func (v *VC) Front() *flit.Flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0]
}

// Pop removes and returns the flit at the head of the FIFO. It panics when
// empty.
func (v *VC) Pop() *flit.Flit {
	if len(v.buf) == 0 {
		panic(fmt.Sprintf("vc: pop from empty VC %d", v.Index))
	}
	f := v.buf[0]
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	return f
}

// Flits returns the buffered flits in FIFO order. The returned slice
// aliases the VC's buffer: callers (checkpoint/restore, the model
// checker's canonical encoder) must treat it as read-only and must not
// hold it across a Push/Pop.
func (v *VC) Flits() []*flit.Flit { return v.buf }

// SetFlits replaces the buffer contents with fs (front first), for
// checkpoint/restore. It panics when fs exceeds the buffer depth. The
// slice is copied; the caller keeps ownership of fs.
func (v *VC) SetFlits(fs []*flit.Flit) {
	if len(fs) > v.depth {
		panic(fmt.Sprintf("vc: restoring %d flits into depth-%d VC %d", len(fs), v.depth, v.Index))
	}
	v.buf = append(v.buf[:0], fs...)
}

// ResetPacketState clears the allocation fields after a tail flit departs,
// returning the VC to Idle. Buffered flits (of a next packet, under
// non-atomic reallocation) are not touched; gonoc uses atomic reallocation
// so the buffer is empty here.
func (v *VC) ResetPacketState() {
	v.G = Idle
	v.R = topology.Local
	v.OutVC = None
	v.FSP = false
	v.SP = topology.Local
	v.Detour = false
	v.CreditHome = v.Index
	v.DvcLo, v.DvcHi = 0, 0
}

// ClearBorrow clears the borrow-request fields (R2/VF/ID) after the lent
// arbiters finish an allocation on behalf of another VC.
func (v *VC) ClearBorrow() {
	v.R2 = topology.Local
	v.VF = false
	v.ID = None
}

// String implements fmt.Stringer.
func (v *VC) String() string {
	return fmt.Sprintf("VC%d{G=%v R=%v O=%d len=%d}", v.Index, v.G, v.R, v.OutVC, v.Len())
}

// InputPort is one router input port: V virtual channels sharing a link.
type InputPort struct {
	// Port is which router port this is.
	Port topology.Port
	// VCs are the port's virtual channels.
	VCs []*VC
}

// NewInputPort returns an input port with nvc virtual channels of the
// given depth.
func NewInputPort(p topology.Port, nvc, depth int) *InputPort {
	if nvc < 1 {
		panic(fmt.Sprintf("vc: invalid VC count %d", nvc))
	}
	ip := &InputPort{Port: p, VCs: make([]*VC, nvc)}
	for i := range ip.VCs {
		ip.VCs[i] = NewVC(i, depth)
	}
	return ip
}

// FindLender scans the port's other VCs for one whose arbiters can be
// borrowed by VC `requester`: per Section V-B1 the borrower "scan[s]
// through the 'G' state field of all the other input VCs and pick[s] out
// the first VC it encounters that is either idle or in switch allocation
// state". VCs whose own arbiter sets are faulty (per arbFaulty) or that
// are already lending (VF set) are skipped. Returns the lender index or
// None.
func (ip *InputPort) FindLender(requester int, arbFaulty func(vcIdx int) bool) int {
	for _, v := range ip.VCs {
		if v.Index == requester {
			continue
		}
		//nocvet:ignore hotpathalloc non-escaping predicate: callers pass stack closures FindLender never retains
		if arbFaulty != nil && arbFaulty(v.Index) {
			continue
		}
		if v.VF {
			continue
		}
		if v.G == Idle || v.G == Active {
			return v.Index
		}
	}
	return None
}

// Transfer moves all flits and the packet state fields from VC src to VC
// dst within this port — the read/write operation Section V-C1 uses to
// feed the bypass path's default winner. dst must be empty and idle, src
// non-empty. The paper notes flits and state move in parallel, costing one
// cycle; the caller models that latency.
func (ip *InputPort) Transfer(src, dst int) {
	s, d := ip.VCs[src], ip.VCs[dst]
	if !d.Empty() || d.G != Idle {
		panic(fmt.Sprintf("vc: transfer into non-empty/busy VC %d (G=%v len=%d)", dst, d.G, d.Len()))
	}
	if s.Empty() {
		panic(fmt.Sprintf("vc: transfer from empty VC %d", src))
	}
	d.buf = append(d.buf, s.buf...)
	s.buf = s.buf[:0]
	d.G, d.R, d.OutVC = s.G, s.R, s.OutVC
	d.SP, d.FSP = s.SP, s.FSP
	d.Detour = s.Detour
	d.CreditHome = s.CreditHome
	d.DvcLo, d.DvcHi = s.DvcLo, s.DvcHi
	s.ResetPacketState()
}
