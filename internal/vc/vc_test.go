package vc

import (
	"testing"
	"testing/quick"

	"gonoc/internal/flit"
	"gonoc/internal/topology"
)

func mkFlits(n int) []*flit.Flit {
	return flit.Segment(&flit.Packet{ID: 1, Size: n})
}

func TestFIFOOrder(t *testing.T) {
	v := NewVC(0, 4)
	fs := mkFlits(4)
	for _, f := range fs {
		v.Push(f)
	}
	for i, want := range fs {
		if got := v.Pop(); got != want {
			t.Fatalf("pop %d returned wrong flit", i)
		}
	}
	if !v.Empty() {
		t.Fatal("VC not empty after draining")
	}
}

func TestFrontNonDestructive(t *testing.T) {
	v := NewVC(0, 2)
	fs := mkFlits(2)
	v.Push(fs[0])
	if v.Front() != fs[0] || v.Front() != fs[0] {
		t.Fatal("Front changed state")
	}
	if v.Len() != 1 {
		t.Fatal("Front consumed a flit")
	}
	if NewVC(0, 1).Front() != nil {
		t.Fatal("Front of empty VC not nil")
	}
}

func TestFreeAccounting(t *testing.T) {
	v := NewVC(0, 4)
	if v.Free() != 4 || v.Depth() != 4 {
		t.Fatalf("fresh VC: Free=%d Depth=%d", v.Free(), v.Depth())
	}
	fs := mkFlits(3)
	v.Push(fs[0])
	v.Push(fs[1])
	if v.Free() != 2 || v.Len() != 2 {
		t.Fatalf("after 2 pushes: Free=%d Len=%d", v.Free(), v.Len())
	}
	v.Pop()
	if v.Free() != 3 {
		t.Fatalf("after pop: Free=%d", v.Free())
	}
}

func TestOverflowPanics(t *testing.T) {
	v := NewVC(0, 1)
	fs := mkFlits(2)
	v.Push(fs[0])
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	v.Push(fs[1])
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty did not panic")
		}
	}()
	NewVC(0, 1).Pop()
}

func TestResetPacketState(t *testing.T) {
	v := NewVC(2, 4)
	v.G = Active
	v.R = topology.East
	v.OutVC = 3
	v.FSP = true
	v.SP = topology.South
	v.CreditHome = 0
	v.ResetPacketState()
	if v.G != Idle || v.OutVC != None || v.FSP || v.CreditHome != 2 {
		t.Fatalf("reset left state %+v", v)
	}
}

func TestClearBorrow(t *testing.T) {
	v := NewVC(1, 4)
	v.R2 = topology.West
	v.VF = true
	v.ID = 3
	v.ClearBorrow()
	if v.VF || v.ID != None {
		t.Fatalf("borrow fields not cleared: %+v", v)
	}
}

func TestFindLenderPrefersFirstIdleOrActive(t *testing.T) {
	ip := NewInputPort(topology.North, 4, 4)
	ip.VCs[0].G = VCAlloc // requester
	ip.VCs[1].G = Routing // busy: not eligible
	ip.VCs[2].G = Active  // eligible
	ip.VCs[3].G = Idle    // eligible but later
	if l := ip.FindLender(0, nil); l != 2 {
		t.Fatalf("lender = %d, want 2", l)
	}
}

func TestFindLenderSkipsFaultyAndLending(t *testing.T) {
	ip := NewInputPort(topology.North, 4, 4)
	for _, v := range ip.VCs {
		v.G = Idle
	}
	ip.VCs[1].VF = true // already lending
	faulty := func(i int) bool { return i == 2 }
	if l := ip.FindLender(0, faulty); l != 3 {
		t.Fatalf("lender = %d, want 3", l)
	}
}

func TestFindLenderNone(t *testing.T) {
	ip := NewInputPort(topology.North, 2, 4)
	ip.VCs[0].G = VCAlloc
	ip.VCs[1].G = VCAlloc // also allocating: not eligible this cycle
	if l := ip.FindLender(0, nil); l != None {
		t.Fatalf("lender = %d, want None", l)
	}
}

func TestFindLenderExcludesSelf(t *testing.T) {
	ip := NewInputPort(topology.North, 2, 4)
	ip.VCs[0].G = Idle
	ip.VCs[1].G = Routing
	if l := ip.FindLender(0, nil); l != None {
		t.Fatalf("lender = %d; requester must not lend to itself", l)
	}
}

func TestTransferMovesFlitsAndState(t *testing.T) {
	ip := NewInputPort(topology.East, 4, 4)
	src, dst := ip.VCs[1], ip.VCs[2]
	fs := mkFlits(3)
	for _, f := range fs {
		src.Push(f)
	}
	src.G = Active
	src.R = topology.South
	src.OutVC = 1
	src.FSP = true
	src.SP = topology.East

	ip.Transfer(1, 2)

	if dst.Len() != 3 || dst.Front() != fs[0] {
		t.Fatalf("flits not moved: len=%d", dst.Len())
	}
	if dst.G != Active || dst.R != topology.South || dst.OutVC != 1 || !dst.FSP {
		t.Fatalf("state not moved: %+v", dst)
	}
	if dst.CreditHome != 1 {
		t.Fatalf("CreditHome = %d, want 1 (origin VC)", dst.CreditHome)
	}
	if !src.Empty() || src.G != Idle || src.OutVC != None {
		t.Fatalf("source not reset: %+v", src)
	}
}

func TestTransferIntoBusyPanics(t *testing.T) {
	ip := NewInputPort(topology.East, 2, 4)
	ip.VCs[0].Push(mkFlits(1)[0])
	ip.VCs[0].G = Active
	ip.VCs[1].G = Routing
	defer func() {
		if recover() == nil {
			t.Fatal("transfer into busy VC did not panic")
		}
	}()
	ip.Transfer(0, 1)
}

func TestTransferFromEmptyPanics(t *testing.T) {
	ip := NewInputPort(topology.East, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("transfer from empty VC did not panic")
		}
	}()
	ip.Transfer(0, 1)
}

func TestNewInputPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInputPort with 0 VCs did not panic")
		}
	}()
	NewInputPort(topology.Local, 0, 4)
}

// Property: any sequence of pushes and pops preserves FIFO order and never
// loses or duplicates flits.
func TestFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		v := NewVC(0, 8)
		next := 0
		var expect []int
		seq := 0
		for _, push := range ops {
			if push && v.Free() > 0 {
				fl := &flit.Flit{Pkt: &flit.Packet{Size: 1}, Seq: seq}
				seq++
				v.Push(fl)
				expect = append(expect, fl.Seq)
			} else if !push && v.Len() > 0 {
				got := v.Pop()
				if got.Seq != expect[next] {
					return false
				}
				next++
			}
		}
		return v.Len() == len(expect)-next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	v := NewVC(0, 2)
	if v.String() == "" {
		t.Fatal("empty VC string")
	}
	for _, g := range []GState{Idle, Routing, VCAlloc, Active, GState(9)} {
		if g.String() == "" {
			t.Fatal("empty GState string")
		}
	}
}
