package topology

import "fmt"

// CMesh is a concentrated W×H mesh: the router graph is exactly a W×H
// mesh (same links, same XY routing, same coordinates), but each router
// serves C terminals (cores) instead of one. For a fixed core count the
// router grid shrinks by C×, which is how real many-core fabrics keep
// router count and wire length down; the cost is that C cores share one
// injection/ejection port, which is the concentration bottleneck the
// simulator models by keeping a single one-flit-per-cycle NI per router.
type CMesh struct {
	// Mesh is the underlying router graph; CMesh adds only the
	// terminal↔router mapping on top of it.
	Mesh
	// C is the concentration: terminals per router (>= 1).
	C int
}

// NewCMesh returns a W×H concentrated mesh with conc terminals per
// router. It panics unless both dimensions and conc are >= 1.
func NewCMesh(w, h, conc int) CMesh {
	if w < 1 || h < 1 || conc < 1 {
		panic(fmt.Sprintf("topology: invalid cmesh %dx%dx%d", w, h, conc))
	}
	return CMesh{Mesh: NewMesh(w, h), C: conc}
}

// Kind implements Topology.
func (c CMesh) Kind() string { return "cmesh" }

// Concentration returns the terminals-per-router count.
func (c CMesh) Concentration() int { return c.C }

// Terminals returns the total terminal (core) count, W*H*C.
func (c CMesh) Terminals() int { return c.Nodes() * c.C }

// TerminalRouter returns the router serving terminal t: terminals are
// blocked C-per-router in terminal-ID order. It panics out of range.
func (c CMesh) TerminalRouter(t int) int {
	if t < 0 || t >= c.Terminals() {
		panic(fmt.Sprintf("topology: terminal %d outside %d-terminal cmesh", t, c.Terminals()))
	}
	return t / c.C
}

var _ Topology = CMesh{}
