// Package topology models the NoC's physical structure: the router
// graph, the five router ports (Local, North, East, South, West) and the
// deterministic minimal routing function each graph family uses. Three
// families are provided, all with radix-5 routers so the paper's router
// microarchitecture (5×5 crossbar, four directions plus the local NI
// port) carries over unchanged:
//
//   - Mesh — the W×H 2-D mesh the paper evaluates (8×8, 64 cores, XY
//     dimension-order routing). Edge routers simply lack the neighbours
//     that would fall off the grid.
//   - Torus — the same grid with wrap-around links closing each row and
//     column into a ring. Routing is minimal-direction dimension-order:
//     X is corrected before Y, and within a dimension the packet travels
//     whichever way around the ring is shorter (ties at exactly half the
//     ring break toward East/South, deterministically). The wrap links
//     halve the worst-case hop count but create a cycle in each ring's
//     channel-dependency graph; the network layer breaks it with
//     dateline virtual-channel layers (see internal/noc).
//   - CMesh — a concentrated mesh: the router graph is a W×H mesh, but
//     each router serves C terminals (cores) instead of one. The router
//     count for a given core count shrinks by C×, trading bisection
//     bandwidth for area. The simulator keeps one NI per router; the
//     concentration surfaces as the terminal↔router mapping (Terminals,
//     TerminalRouter) and as a C× higher per-router injection rate, which
//     is exactly the concentration bottleneck a real CMesh NI has.
//
// # Coordinates and node IDs
//
// All three families share the coordinate system: node IDs are assigned
// row-major (id = y*W + x) with the origin at the north-west corner;
// North decreases y, South increases y, East increases x, West decreases
// x. A CMesh terminal t maps to router t/C (terminals are blocked
// C-per-router in terminal-ID order).
//
// # Link wiring
//
// A link is identified by its (router, output port) pair and is always
// paired with (neighbor, opposite port) on the far side: a flit leaving
// router u through East arrives on Neighbor(u, East)'s West port one
// cycle later, and credits flow back along the same pair. In a mesh,
// edge ports have no link (Neighbor reports ok=false). In a torus every
// directional port has a link; the wrap links connect column x=W-1 East
// to x=0 West and row y=H-1 South to y=0 North. Wrap(id, p) reports
// whether the link leaving id through p is such a wrap (dateline) link —
// the network layer's deadlock-avoidance scheme keys off it. A 2-wide
// torus dimension has two parallel links between the same router pair
// (the direct link and the wrap link); they are distinct links with
// distinct buffers, exactly as in hardware.
//
// The Topology interface abstracts the family; Mesh, Torus and CMesh are
// cheap value types implementing it, and New builds one from a kind
// string (the noctool -topo flag).
package topology
