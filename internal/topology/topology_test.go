package topology

import (
	"testing"
	"testing/quick"
)

func TestCoordIDRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for id := 0; id < m.Nodes(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("round trip %d -> %v -> %d", id, m.Coord(id), got)
		}
	}
}

func TestNodes(t *testing.T) {
	if n := NewMesh(8, 8).Nodes(); n != 64 {
		t.Fatalf("8x8 mesh has %d nodes", n)
	}
	if n := NewMesh(4, 2).Nodes(); n != 8 {
		t.Fatalf("4x2 mesh has %d nodes", n)
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMesh(0,3) did not panic")
		}
	}()
	NewMesh(0, 3)
}

func TestNeighbor(t *testing.T) {
	m := NewMesh(4, 4)
	// Node 5 = (1,1): all four neighbours exist.
	cases := []struct {
		p    Port
		want int
	}{
		{North, 1}, {South, 9}, {East, 6}, {West, 4},
	}
	for _, c := range cases {
		got, ok := m.Neighbor(5, c.p)
		if !ok || got != c.want {
			t.Errorf("Neighbor(5, %v) = (%d, %v), want (%d, true)", c.p, got, ok, c.want)
		}
	}
	// Corner node 0 = (0,0): North and West fall off.
	for _, p := range []Port{North, West} {
		if _, ok := m.Neighbor(0, p); ok {
			t.Errorf("Neighbor(0, %v) should not exist", p)
		}
	}
	// Local never has a neighbour.
	if _, ok := m.Neighbor(5, Local); ok {
		t.Error("Local port has a neighbour")
	}
}

func TestOpposite(t *testing.T) {
	pairs := map[Port]Port{North: South, South: North, East: West, West: East}
	for p, want := range pairs {
		if p.Opposite() != want {
			t.Errorf("%v.Opposite() = %v", p, p.Opposite())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Local.Opposite() did not panic")
		}
	}()
	_ = Local.Opposite()
}

func TestNeighborOppositeSymmetry(t *testing.T) {
	m := NewMesh(5, 3)
	for id := 0; id < m.Nodes(); id++ {
		for _, p := range []Port{North, East, South, West} {
			n, ok := m.Neighbor(id, p)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(n, p.Opposite())
			if !ok2 || back != id {
				t.Fatalf("asymmetric link %d --%v--> %d --%v--> %d", id, p, n, p.Opposite(), back)
			}
		}
	}
}

func TestRouteXYBasic(t *testing.T) {
	m := NewMesh(8, 8)
	// From (0,0) to (3,2): X first.
	if p := m.RouteXY(0, m.ID(Coord{3, 2})); p != East {
		t.Errorf("first hop = %v, want E", p)
	}
	// Same column: go vertical.
	if p := m.RouteXY(m.ID(Coord{3, 0}), m.ID(Coord{3, 2})); p != South {
		t.Errorf("vertical hop = %v, want S", p)
	}
	if p := m.RouteXY(5, 5); p != Local {
		t.Errorf("self route = %v, want L", p)
	}
}

func TestPathXYMatchesHops(t *testing.T) {
	m := NewMesh(8, 8)
	src, dst := m.ID(Coord{1, 6}), m.ID(Coord{5, 2})
	path := m.PathXY(src, dst)
	if len(path) != m.HopsXY(src, dst)+1 {
		t.Fatalf("path length %d, hops %d", len(path), m.HopsXY(src, dst))
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path endpoints %d..%d", path[0], path[len(path)-1])
	}
}

// Property: XY routing always terminates at dst with exactly Manhattan
// distance hops, and X is fully corrected before Y moves.
func TestRouteXYProperty(t *testing.T) {
	m := NewMesh(8, 8)
	f := func(a, b uint8) bool {
		src, dst := int(a)%64, int(b)%64
		path := m.PathXY(src, dst)
		if len(path)-1 != m.HopsXY(src, dst) {
			return false
		}
		// Once a vertical move happens, no horizontal moves may follow.
		vertical := false
		for i := 1; i < len(path); i++ {
			pc, cc := m.Coord(path[i-1]), m.Coord(path[i])
			dx, dy := cc.X-pc.X, cc.Y-pc.Y
			if abs(dx)+abs(dy) != 1 {
				return false // non-unit hop
			}
			if dy != 0 {
				vertical = true
			} else if vertical {
				return false // X move after Y began
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: XY routing is deadlock-free on a mesh because the port turn
// ordering forbids the four "illegal" turns; equivalently, every route's
// channel sequence is monotone in (dimension, direction). We check the
// weaker invariant that RouteXY never returns a port whose neighbour does
// not exist.
func TestRouteXYNeverFallsOff(t *testing.T) {
	m := NewMesh(6, 5)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			cur := src
			for steps := 0; cur != dst; steps++ {
				if steps > m.Nodes() {
					t.Fatalf("route %d->%d did not terminate", src, dst)
				}
				p := m.RouteXY(cur, dst)
				next, ok := m.Neighbor(cur, p)
				if !ok {
					t.Fatalf("route %d->%d falls off mesh at %d via %v", src, dst, cur, p)
				}
				cur = next
			}
		}
	}
}

func TestPortString(t *testing.T) {
	want := map[Port]string{Local: "L", North: "N", East: "E", South: "S", West: "W"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}
