package topology

import (
	"testing"
)

// TestTorusNeighborWrap checks the wrap links close every row and column
// into a ring, and that link pairing (port ↔ opposite port) is symmetric.
func TestTorusNeighborWrap(t *testing.T) {
	tor := NewTorus(4, 3)
	// Wrap links at the boundaries.
	cases := []struct {
		id   int
		p    Port
		want int
		wrap bool
	}{
		{tor.ID(Coord{X: 3, Y: 0}), East, tor.ID(Coord{X: 0, Y: 0}), true},
		{tor.ID(Coord{X: 0, Y: 0}), West, tor.ID(Coord{X: 3, Y: 0}), true},
		{tor.ID(Coord{X: 1, Y: 2}), South, tor.ID(Coord{X: 1, Y: 0}), true},
		{tor.ID(Coord{X: 1, Y: 0}), North, tor.ID(Coord{X: 1, Y: 2}), true},
		{tor.ID(Coord{X: 1, Y: 1}), East, tor.ID(Coord{X: 2, Y: 1}), false},
	}
	for _, tc := range cases {
		got, ok := tor.Neighbor(tc.id, tc.p)
		if !ok || got != tc.want {
			t.Errorf("Neighbor(%d, %v) = %d, %v; want %d, true", tc.id, tc.p, got, ok, tc.want)
		}
		if w := tor.Wrap(tc.id, tc.p); w != tc.wrap {
			t.Errorf("Wrap(%d, %v) = %v, want %v", tc.id, tc.p, w, tc.wrap)
		}
	}
	// Symmetry: crossing a link and coming back through the opposite port
	// returns home, for every node and direction.
	for id := 0; id < tor.Nodes(); id++ {
		for p := North; p <= West; p++ {
			nb, ok := tor.Neighbor(id, p)
			if !ok {
				t.Fatalf("torus node %d lacks a %v link", id, p)
			}
			back, ok := tor.Neighbor(nb, p.Opposite())
			if !ok || back != id {
				t.Errorf("Neighbor(%d, %v)=%d but Neighbor(%d, %v)=%d", id, p, nb, nb, p.Opposite(), back)
			}
		}
	}
}

// TestTorusRouteMinimal walks Route from every source to every
// destination and checks it terminates in exactly Hops steps — i.e. the
// route is minimal, loop-free and never falls off the graph.
func TestTorusRouteMinimal(t *testing.T) {
	for _, dims := range []struct{ w, h int }{{4, 4}, {5, 3}, {2, 2}, {1, 6}, {8, 8}} {
		tor := NewTorus(dims.w, dims.h)
		for src := 0; src < tor.Nodes(); src++ {
			for dst := 0; dst < tor.Nodes(); dst++ {
				cur, steps := src, 0
				for cur != dst {
					p := tor.Route(cur, dst)
					if p == Local {
						t.Fatalf("%dx%d: Route(%d,%d) = Local before arrival", dims.w, dims.h, cur, dst)
					}
					next, ok := tor.Neighbor(cur, p)
					if !ok {
						t.Fatalf("%dx%d: Route(%d,%d) = %v has no link", dims.w, dims.h, cur, dst, p)
					}
					cur = next
					if steps++; steps > tor.Nodes() {
						t.Fatalf("%dx%d: route %d->%d loops", dims.w, dims.h, src, dst)
					}
				}
				if want := tor.Hops(src, dst); steps != want {
					t.Errorf("%dx%d: route %d->%d took %d hops, Hops says %d", dims.w, dims.h, src, dst, steps, want)
				}
			}
		}
	}
}

// TestTorusRouteTieBreak pins the deterministic tie-break: at exactly
// half an even ring the positive direction (East/South) wins.
func TestTorusRouteTieBreak(t *testing.T) {
	tor := NewTorus(4, 4)
	// (0,0) -> (2,0): distance 2 both ways; East must win.
	if p := tor.Route(tor.ID(Coord{X: 0, Y: 0}), tor.ID(Coord{X: 2, Y: 0})); p != East {
		t.Errorf("X tie-break = %v, want East", p)
	}
	// (0,0) -> (0,2): South must win.
	if p := tor.Route(tor.ID(Coord{X: 0, Y: 0}), tor.ID(Coord{X: 0, Y: 2})); p != South {
		t.Errorf("Y tie-break = %v, want South", p)
	}
}

// TestTorusWrapCrossings checks a minimal route crosses each dimension's
// dateline at most once — the property the noc layer's dateline VC
// scheme relies on for deadlock freedom.
func TestTorusWrapCrossings(t *testing.T) {
	tor := NewTorus(5, 4)
	for src := 0; src < tor.Nodes(); src++ {
		for dst := 0; dst < tor.Nodes(); dst++ {
			cur, xWraps, yWraps := src, 0, 0
			for cur != dst {
				p := tor.Route(cur, dst)
				if tor.Wrap(cur, p) {
					if p == East || p == West {
						xWraps++
					} else {
						yWraps++
					}
				}
				cur, _ = tor.Neighbor(cur, p)
			}
			if xWraps > 1 || yWraps > 1 {
				t.Fatalf("route %d->%d crosses datelines %d/%d times", src, dst, xWraps, yWraps)
			}
		}
	}
}

// TestCMesh checks the concentrated mesh keeps the mesh router graph
// while exposing the terminal mapping.
func TestCMesh(t *testing.T) {
	cm := NewCMesh(4, 2, 4)
	if cm.Kind() != "cmesh" || cm.Nodes() != 8 || cm.Terminals() != 32 || cm.Concentration() != 4 {
		t.Fatalf("cmesh basics wrong: %+v", cm)
	}
	if w, h := cm.Dims(); w != 4 || h != 2 {
		t.Fatalf("Dims = %d,%d", w, h)
	}
	// Router graph is the mesh: same neighbours, same routes, no wraps.
	m := NewMesh(4, 2)
	for id := 0; id < cm.Nodes(); id++ {
		for p := North; p <= West; p++ {
			mn, mok := m.Neighbor(id, p)
			cn, cok := cm.Neighbor(id, p)
			if mok != cok || (mok && mn != cn) {
				t.Errorf("Neighbor(%d,%v): cmesh %d,%v vs mesh %d,%v", id, p, cn, cok, mn, mok)
			}
			if cm.Wrap(id, p) {
				t.Errorf("cmesh reports a wrap link at (%d,%v)", id, p)
			}
		}
		for dst := 0; dst < cm.Nodes(); dst++ {
			if cm.Route(id, dst) != m.Route(id, dst) {
				t.Errorf("Route(%d,%d) diverges from mesh XY", id, dst)
			}
		}
	}
	// Terminal mapping: blocked C-per-router, covering every router.
	for term := 0; term < cm.Terminals(); term++ {
		if got, want := cm.TerminalRouter(term), term/4; got != want {
			t.Errorf("TerminalRouter(%d) = %d, want %d", term, got, want)
		}
	}
}

// TestNewFactory is the kind-string constructor table test.
func TestNewFactory(t *testing.T) {
	cases := []struct {
		kind    string
		w, h, c int
		wantErr bool
		nodes   int
	}{
		{kind: "mesh", w: 4, h: 4, nodes: 16},
		{kind: "", w: 2, h: 3, nodes: 6}, // empty kind defaults to mesh
		{kind: "torus", w: 4, h: 4, nodes: 16},
		{kind: "cmesh", w: 4, h: 4, c: 4, nodes: 16},
		{kind: "cmesh", w: 4, h: 4, c: 0, nodes: 16}, // conc 0 defaults to 1
		{kind: "hypercube", w: 4, h: 4, wantErr: true},
		{kind: "mesh", w: 0, h: 4, wantErr: true},
		{kind: "torus", w: 4, h: -1, wantErr: true},
		{kind: "cmesh", w: 4, h: 4, c: -2, wantErr: true},
	}
	for _, tc := range cases {
		topo, err := New(tc.kind, tc.w, tc.h, tc.c)
		if tc.wantErr {
			if err == nil {
				t.Errorf("New(%q,%d,%d,%d) accepted, want error", tc.kind, tc.w, tc.h, tc.c)
			}
			continue
		}
		if err != nil {
			t.Errorf("New(%q,%d,%d,%d): %v", tc.kind, tc.w, tc.h, tc.c, err)
			continue
		}
		if topo.Nodes() != tc.nodes {
			t.Errorf("New(%q,%d,%d,%d).Nodes() = %d, want %d", tc.kind, tc.w, tc.h, tc.c, topo.Nodes(), tc.nodes)
		}
	}
}

// TestMeshImplementsTopology pins the Mesh interface methods onto their
// XY counterparts.
func TestMeshImplementsTopology(t *testing.T) {
	m := NewMesh(5, 3)
	if m.Kind() != "mesh" {
		t.Fatalf("Kind = %q", m.Kind())
	}
	if w, h := m.Dims(); w != 5 || h != 3 {
		t.Fatalf("Dims = %d,%d", w, h)
	}
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			if m.Route(src, dst) != m.RouteXY(src, dst) {
				t.Fatalf("Route(%d,%d) != RouteXY", src, dst)
			}
			if m.Hops(src, dst) != m.HopsXY(src, dst) {
				t.Fatalf("Hops(%d,%d) != HopsXY", src, dst)
			}
		}
		for p := North; p <= West; p++ {
			if m.Wrap(src, p) {
				t.Fatalf("mesh Wrap(%d,%v) = true", src, p)
			}
		}
	}
}
