// Package topology models the NoC's physical structure: a 2-D mesh of
// nodes, the five router ports (Local, North, East, South, West) and
// dimension-order (XY) routing — the configuration the paper evaluates
// (an 8×8 mesh, 64 cores, XY routing, 5×5 routers).
package topology

import "fmt"

// Port identifies one of a mesh router's five ports. Port values double as
// indices into per-port arrays throughout the simulator.
type Port int

// The five ports of a 2-D mesh router. Local connects to the node's
// network interface (core/cache); the others connect to neighbouring
// routers. North decreases y, South increases y, East increases x, West
// decreases x (origin at the north-west corner).
const (
	Local Port = iota
	North
	East
	South
	West
	// NumPorts is the router radix in a 2-D mesh.
	NumPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port on the neighbouring router that faces back at
// p: a flit leaving through East arrives on the neighbour's West port.
// It panics for Local, which has no peer router.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	panic(fmt.Sprintf("topology: port %v has no opposite", p))
}

// Coord is a node position in the mesh.
type Coord struct{ X, Y int }

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Mesh is a W×H 2-D mesh topology. Node IDs are assigned row-major:
// id = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh returns a W×H mesh. It panics unless both dimensions are >= 1.
func NewMesh(w, h int) Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", w, h))
	}
	return Mesh{W: w, H: h}
}

// Nodes returns the number of nodes (routers) in the mesh.
func (m Mesh) Nodes() int { return m.W * m.H }

// Coord returns the position of node id. It panics for out-of-range ids.
func (m Mesh) Coord(id int) Coord {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("topology: node %d outside %dx%d mesh", id, m.W, m.H))
	}
	return Coord{X: id % m.W, Y: id / m.W}
}

// ID returns the node id at position c. It panics for out-of-range coords.
func (m Mesh) ID(c Coord) int {
	if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
		panic(fmt.Sprintf("topology: coord %v outside %dx%d mesh", c, m.W, m.H))
	}
	return c.Y*m.W + c.X
}

// Neighbor returns the node reached from id through port p, and whether
// such a neighbour exists (edge routers lack some neighbours; Local has
// none).
func (m Mesh) Neighbor(id int, p Port) (int, bool) {
	c := m.Coord(id)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return -1, false
	}
	if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
		return -1, false
	}
	return m.ID(c), true
}

// RouteXY performs dimension-order routing: it returns the output port a
// flit at node cur must take to reach dst, correcting X before Y. When
// cur == dst it returns Local.
//
// XY routing is deterministic, table-free (it needs only two coordinate
// comparators, which is why the paper's RC unit is a pair of 6-bit
// comparators) and deadlock-free on a mesh.
func (m Mesh) RouteXY(cur, dst int) Port {
	cc, dc := m.Coord(cur), m.Coord(dst)
	switch {
	case dc.X > cc.X:
		return East
	case dc.X < cc.X:
		return West
	case dc.Y > cc.Y:
		return South
	case dc.Y < cc.Y:
		return North
	default:
		return Local
	}
}

// HopsXY returns the number of router-to-router hops on the XY route from
// src to dst (the Manhattan distance).
func (m Mesh) HopsXY(src, dst int) int {
	s, d := m.Coord(src), m.Coord(dst)
	return abs(s.X-d.X) + abs(s.Y-d.Y)
}

// PathXY returns the full sequence of nodes visited from src to dst under
// XY routing, inclusive of both endpoints.
func (m Mesh) PathXY(src, dst int) []int {
	path := []int{src}
	cur := src
	for cur != dst {
		p := m.RouteXY(cur, dst)
		next, ok := m.Neighbor(cur, p)
		if !ok {
			panic(fmt.Sprintf("topology: XY route from %d to %d fell off the mesh at %d", src, dst, cur))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
