package topology

import "fmt"

// Port identifies one of a mesh router's five ports. Port values double as
// indices into per-port arrays throughout the simulator.
type Port int

// The five ports of a 2-D mesh router. Local connects to the node's
// network interface (core/cache); the others connect to neighbouring
// routers. North decreases y, South increases y, East increases x, West
// decreases x (origin at the north-west corner).
const (
	Local Port = iota
	North
	East
	South
	West
	// NumPorts is the router radix in a 2-D mesh.
	NumPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port on the neighbouring router that faces back at
// p: a flit leaving through East arrives on the neighbour's West port.
// It panics for Local, which has no peer router.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	panic(fmt.Sprintf("topology: port %v has no opposite", p))
}

// Coord is a node position in the mesh.
type Coord struct{ X, Y int }

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Topology is the router-graph abstraction the simulator builds against:
// a family of radix-5 router networks sharing the mesh coordinate system
// (see the package documentation). Implementations are small value types
// (Mesh, Torus, CMesh) and must be deterministic pure functions of the
// node arguments.
type Topology interface {
	// Kind names the topology family: "mesh", "torus" or "cmesh".
	Kind() string
	// Nodes returns the number of routers.
	Nodes() int
	// Dims returns the router-grid dimensions (W, H).
	Dims() (w, h int)
	// Coord returns the position of node id; it panics out of range.
	Coord(id int) Coord
	// ID returns the node id at position c; it panics out of range.
	ID(c Coord) int
	// Neighbor returns the node reached from id through port p and
	// whether such a link exists (mesh edges lack some; Local has none).
	Neighbor(id int, p Port) (int, bool)
	// Route returns the output port a flit at cur takes toward dst under
	// the family's deterministic minimal routing (XY for mesh/cmesh,
	// minimal-direction DOR for torus). Route(dst, dst) is Local.
	Route(cur, dst int) Port
	// Hops returns the number of router-to-router hops on the Route path
	// from src to dst.
	Hops(src, dst int) int
	// Wrap reports whether the link leaving id through p is a
	// wrap-around (dateline) link. Always false for mesh and cmesh.
	Wrap(id int, p Port) bool
}

// New builds a topology from its kind name: "mesh", "torus" or "cmesh"
// (conc is the terminals-per-router concentration, used by cmesh only
// and ignored elsewhere; 0 defaults to 1).
func New(kind string, w, h, conc int) (Topology, error) {
	switch kind {
	case "", "mesh":
		if w < 1 || h < 1 {
			return nil, fmt.Errorf("topology: invalid mesh %dx%d", w, h)
		}
		return NewMesh(w, h), nil
	case "torus":
		if w < 1 || h < 1 {
			return nil, fmt.Errorf("topology: invalid torus %dx%d", w, h)
		}
		return NewTorus(w, h), nil
	case "cmesh":
		if w < 1 || h < 1 {
			return nil, fmt.Errorf("topology: invalid cmesh %dx%d", w, h)
		}
		if conc == 0 {
			conc = 1
		}
		if conc < 1 {
			return nil, fmt.Errorf("topology: invalid cmesh concentration %d", conc)
		}
		return NewCMesh(w, h, conc), nil
	default:
		return nil, fmt.Errorf("topology: unknown kind %q (want mesh, torus or cmesh)", kind)
	}
}

// Mesh is a W×H 2-D mesh topology. Node IDs are assigned row-major:
// id = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh returns a W×H mesh. It panics unless both dimensions are >= 1.
func NewMesh(w, h int) Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", w, h))
	}
	return Mesh{W: w, H: h}
}

// Nodes returns the number of nodes (routers) in the mesh.
func (m Mesh) Nodes() int { return m.W * m.H }

// Coord returns the position of node id. It panics for out-of-range ids.
func (m Mesh) Coord(id int) Coord {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("topology: node %d outside %dx%d mesh", id, m.W, m.H))
	}
	return Coord{X: id % m.W, Y: id / m.W}
}

// ID returns the node id at position c. It panics for out-of-range coords.
func (m Mesh) ID(c Coord) int {
	if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
		panic(fmt.Sprintf("topology: coord %v outside %dx%d mesh", c, m.W, m.H))
	}
	return c.Y*m.W + c.X
}

// Neighbor returns the node reached from id through port p, and whether
// such a neighbour exists (edge routers lack some neighbours; Local has
// none).
func (m Mesh) Neighbor(id int, p Port) (int, bool) {
	c := m.Coord(id)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return -1, false
	}
	if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
		return -1, false
	}
	return m.ID(c), true
}

// RouteXY performs dimension-order routing: it returns the output port a
// flit at node cur must take to reach dst, correcting X before Y. When
// cur == dst it returns Local.
//
// XY routing is deterministic, table-free (it needs only two coordinate
// comparators, which is why the paper's RC unit is a pair of 6-bit
// comparators) and deadlock-free on a mesh.
func (m Mesh) RouteXY(cur, dst int) Port {
	cc, dc := m.Coord(cur), m.Coord(dst)
	switch {
	case dc.X > cc.X:
		return East
	case dc.X < cc.X:
		return West
	case dc.Y > cc.Y:
		return South
	case dc.Y < cc.Y:
		return North
	default:
		return Local
	}
}

// HopsXY returns the number of router-to-router hops on the XY route from
// src to dst (the Manhattan distance).
func (m Mesh) HopsXY(src, dst int) int {
	s, d := m.Coord(src), m.Coord(dst)
	return abs(s.X-d.X) + abs(s.Y-d.Y)
}

// PathXY returns the full sequence of nodes visited from src to dst under
// XY routing, inclusive of both endpoints.
func (m Mesh) PathXY(src, dst int) []int {
	path := []int{src}
	cur := src
	for cur != dst {
		p := m.RouteXY(cur, dst)
		next, ok := m.Neighbor(cur, p)
		if !ok {
			panic(fmt.Sprintf("topology: XY route from %d to %d fell off the mesh at %d", src, dst, cur))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Kind implements Topology.
func (m Mesh) Kind() string { return "mesh" }

// Dims implements Topology.
func (m Mesh) Dims() (int, int) { return m.W, m.H }

// Route implements Topology: dimension-order XY routing.
func (m Mesh) Route(cur, dst int) Port { return m.RouteXY(cur, dst) }

// Hops implements Topology: the Manhattan distance.
func (m Mesh) Hops(src, dst int) int { return m.HopsXY(src, dst) }

// Wrap implements Topology: a mesh has no wrap-around links.
func (m Mesh) Wrap(int, Port) bool { return false }

var _ Topology = Mesh{}
