package topology

import "fmt"

// Torus is a W×H 2-D torus: the mesh grid with wrap-around links closing
// every row and column into a ring. Node IDs and coordinates are shared
// with Mesh (row-major, origin north-west). Routing is minimal-direction
// dimension-order: X before Y, shorter way around each ring, ties at
// exactly half the ring breaking toward the positive direction (East,
// South). Deadlock freedom across the wrap links is the network layer's
// job (dateline VC layers; see internal/noc).
type Torus struct {
	W, H int
}

// NewTorus returns a W×H torus. It panics unless both dimensions are
// >= 1. A dimension of size 1 simply has no links (as in a mesh); a
// dimension of size 2 has both a direct and a wrap link between each
// router pair.
func NewTorus(w, h int) Torus {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: invalid torus %dx%d", w, h))
	}
	return Torus{W: w, H: h}
}

// Kind implements Topology.
func (t Torus) Kind() string { return "torus" }

// Nodes implements Topology.
func (t Torus) Nodes() int { return t.W * t.H }

// Dims implements Topology.
func (t Torus) Dims() (int, int) { return t.W, t.H }

// Coord implements Topology; it panics for out-of-range ids.
func (t Torus) Coord(id int) Coord {
	if id < 0 || id >= t.Nodes() {
		panic(fmt.Sprintf("topology: node %d outside %dx%d torus", id, t.W, t.H))
	}
	return Coord{X: id % t.W, Y: id / t.W}
}

// ID implements Topology; it panics for out-of-range coords.
func (t Torus) ID(c Coord) int {
	if c.X < 0 || c.X >= t.W || c.Y < 0 || c.Y >= t.H {
		panic(fmt.Sprintf("topology: coord %v outside %dx%d torus", c, t.W, t.H))
	}
	return c.Y*t.W + c.X
}

// Neighbor implements Topology: directional moves wrap modulo the
// dimension size. A size-1 dimension has no links at all (a self-link
// would be meaningless).
func (t Torus) Neighbor(id int, p Port) (int, bool) {
	c := t.Coord(id)
	switch p {
	case North, South:
		if t.H < 2 {
			return -1, false
		}
		if p == North {
			c.Y = (c.Y - 1 + t.H) % t.H
		} else {
			c.Y = (c.Y + 1) % t.H
		}
	case East, West:
		if t.W < 2 {
			return -1, false
		}
		if p == East {
			c.X = (c.X + 1) % t.W
		} else {
			c.X = (c.X - 1 + t.W) % t.W
		}
	default:
		return -1, false
	}
	return t.ID(c), true
}

// Wrap implements Topology: the wrap links are East out of the x=W-1
// column, West out of x=0, South out of y=H-1 and North out of y=0.
func (t Torus) Wrap(id int, p Port) bool {
	c := t.Coord(id)
	switch p {
	case East:
		return t.W >= 2 && c.X == t.W-1
	case West:
		return t.W >= 2 && c.X == 0
	case South:
		return t.H >= 2 && c.Y == t.H-1
	case North:
		return t.H >= 2 && c.Y == 0
	}
	return false
}

// ringStep returns the signed minimal step from a to b on a ring of size
// n: +1 for the positive direction, -1 for negative, 0 when a == b. A
// tie (distance exactly n/2 on an even ring) breaks positive, so routing
// stays deterministic.
func ringStep(a, b, n int) int {
	if a == b {
		return 0
	}
	fwd := (b - a + n) % n // hops going positive
	if fwd <= n-fwd {
		return 1
	}
	return -1
}

// Route implements Topology: minimal-direction dimension-order routing,
// X before Y. The returned port never reverses a minimal path (a packet
// is never routed 180° back the way it came).
func (t Torus) Route(cur, dst int) Port {
	cc, dc := t.Coord(cur), t.Coord(dst)
	switch ringStep(cc.X, dc.X, t.W) {
	case 1:
		return East
	case -1:
		return West
	}
	switch ringStep(cc.Y, dc.Y, t.H) {
	case 1:
		return South
	case -1:
		return North
	}
	return Local
}

// ringDist returns the minimal hop count from a to b on a ring of size n.
func ringDist(a, b, n int) int {
	d := abs(a - b)
	if n-d < d {
		d = n - d
	}
	return d
}

// Hops implements Topology: the wrap-aware Manhattan distance.
func (t Torus) Hops(src, dst int) int {
	s, d := t.Coord(src), t.Coord(dst)
	return ringDist(s.X, d.X, t.W) + ringDist(s.Y, d.Y, t.H)
}

var _ Topology = Torus{}
