package topology_test

import (
	"fmt"

	"gonoc/internal/topology"
)

// ExampleMesh_RouteXY shows dimension-order routing across the paper's
// 8×8 mesh: X is corrected before Y.
func ExampleMesh_RouteXY() {
	m := topology.NewMesh(8, 8)
	src := m.ID(topology.Coord{X: 1, Y: 6})
	dst := m.ID(topology.Coord{X: 4, Y: 2})
	for _, hop := range m.PathXY(src, dst) {
		fmt.Print(m.Coord(hop), " ")
	}
	fmt.Println()
	// Output:
	// (1,6) (2,6) (3,6) (4,6) (4,5) (4,4) (4,3) (4,2)
}
