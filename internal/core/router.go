// Package core implements the paper's primary contribution: a NoC router
// whose four pipeline stages — Routing Computation (RC), Virtual-channel
// Allocation (VA), Switch Allocation (SA) and Crossbar traversal (XB) —
// each tolerate a permanent fault (Poluri & Louri, "An Improved Router
// Design for Reliable On-Chip Networks", IPDPS 2014).
//
// One Router type implements both the unprotected baseline and the
// protected router (Config.FaultTolerant); in the fault-free case the two
// behave identically, exactly as the paper's protected crossbar "behaves
// just like the baseline crossbar" without faults. The per-stage
// mechanisms are:
//
//   - RC: a duplicate RC unit per input port is switched in when the
//     primary is faulty (Section V-A).
//   - VA stage 1: a VC with a faulty arbiter set borrows the arbiters of
//     the first sibling VC found idle or in switch-allocation state, via
//     the R2/VF/ID state fields (Section V-B1, Figure 4). If every
//     sibling is busy allocating, the borrower waits a cycle (Scenario 2).
//   - VA stage 2: a faulty per-downstream-VC arbiter simply loses its VC;
//     the retry re-arbitrates for a different downstream VC one cycle
//     later using the inherent VC redundancy (Section V-B3).
//   - SA stage 1: a bypass path names a rotating default-winner VC; when
//     the default winner is empty, flits and state are transferred into it
//     from a sibling VC in one cycle (Section V-C1, Figure 5).
//   - SA stage 2 + XB: a secondary crossbar path (Figure 6) reaches an
//     output port through the neighbouring port's multiplexer and arbiter,
//     directed by the SP/FSP state fields set at RC time (Sections V-C2,
//     V-D).
package core

import (
	"fmt"

	"gonoc/internal/crossbar"
	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/vc"
)

// CreditIn is a credit arriving at a router's output side: the downstream
// consumer freed one buffer slot of VC (and the whole VC when VCFree).
type CreditIn struct {
	// Out is the output port of this router the credit applies to.
	Out topology.Port
	// VC is the downstream VC index.
	VC int
	// VCFree marks the downstream VC free for reallocation.
	VCFree bool
}

// RouteFn overrides the per-hop routing computation with a network-level
// fault-aware function. It receives the current router, the input port
// the packet occupies (Local for freshly injected packets), the input VC
// index and the destination, and returns the output port plus the
// downstream VC range [dvcLo, dvcHi) the packet must allocate from (the
// deadlock-avoidance layer). ok=false means no path to the destination
// survives the current fault set; the router then discards the packet.
type RouteFn func(cur int, in topology.Port, vcIdx int, dst int) (out topology.Port, dvcLo, dvcHi int, ok bool)

// grant is one switch-allocation winner, executed by the crossbar stage
// the following cycle.
type grant struct {
	inPort    topology.Port
	inVC      int
	outPort   topology.Port // actual destination output port
	secondary bool          // traverse via the protected crossbar's secondary path
}

// saWinner is one input port's stage-1 switch-allocation winner, held in
// the router's reusable per-port scratch buffer (saWinners) between the
// two allocator stages. vcIdx is -1 when the port won nothing.
type saWinner struct {
	vcIdx     int
	reqPort   topology.Port
	outPort   topology.Port
	secondary bool
	bypass    bool
}

// Counters tallies fault-tolerance mechanism activity and basic traffic,
// for tests and the latency analysis.
type Counters struct {
	// FlitsRouted counts flits that traversed the crossbar.
	FlitsRouted uint64
	// RCDuplicateUses counts routing computations served by the duplicate
	// RC unit.
	RCDuplicateUses uint64
	// VA1Borrows counts successful arbiter borrows (Section V-B1).
	VA1Borrows uint64
	// VA1BorrowStalls counts cycles a VC wanted to borrow but found no
	// lender (Scenario 2 waits).
	VA1BorrowStalls uint64
	// VA2Retries counts stage-2 allocation attempts lost to a faulty
	// stage-2 arbiter (each costs one recompute cycle, Section V-B3).
	VA2Retries uint64
	// SABypassGrants counts stage-1 grants served by the bypass path.
	SABypassGrants uint64
	// SATransfers counts VC-to-VC flit/state transfers feeding the bypass
	// default winner (each costs one cycle, Section V-C1).
	SATransfers uint64
	// XBSecondary counts crossbar traversals through the secondary path.
	XBSecondary uint64
	// Reroutes counts routing computations where the fault-aware route
	// function diverged from dimension-ordered XY to detour around a dead
	// link or router.
	Reroutes uint64
}

// Router is a P-port, V-VC, 4-stage pipelined wormhole router with
// credit-based flow control. It implements both the baseline and the
// paper's fault-tolerant design, selected by Config.FaultTolerant.
type Router struct {
	// ID is the router's node id in the mesh.
	//noc:derived immutable identity, fixed at construction
	ID int

	cfg router.Config
	//noc:derived immutable configuration, fixed at construction
	topo topology.Topology

	in []*vc.InputPort
	rc []*router.RCUnit
	va *router.VAlloc
	sa *router.SAlloc

	xbBase *crossbar.Baseline
	xbProt *crossbar.Protected

	// Output-side bookkeeping: this router as upstream of each output
	// port's downstream buffers.
	outVCBusy [][]bool
	credits   [][]int

	grants []grant

	// The I/O latches are empty at the step boundary where snapshots are
	// taken; RestoreState clears them rather than restoring contents.
	inFlits    []router.InFlit  //noc:derived I/O latch, empty at the step boundary
	inCredits  []CreditIn       //noc:derived I/O latch, empty at the step boundary
	outFlits   []router.OutFlit //noc:derived I/O latch, empty at the step boundary
	outCredits []router.Credit  //noc:derived I/O latch, empty at the step boundary

	// rcScan is the per-port round-robin pointer for the (single) RC unit
	// serving at most one VC per cycle.
	rcScan []int

	// saAdopted tracks, per input port, the VC adopted as the bypass
	// path's effective default winner after a transfer (Section V-C1), or
	// -1. Modelling the transfer as adoption keeps the upstream router's
	// per-VC credit and allocation bookkeeping exact: physically the
	// flits and state move into the default winner's buffers in one
	// cycle; architecturally the packet still occupies its original VC
	// identity, which is what the upstream sees.
	saAdopted []int
	// saAdoptAge counts cycles since the adoption, for rotation expiry.
	saAdoptAge []int

	// va2req collects stage-2 VA requests: va2req[outPort][dvc] lists
	// flat input-VC indices (p*V + v). Reused across cycles.
	//noc:derived per-cycle scratch, rebuilt from empty every Tick
	va2req [][][]int
	//noc:derived per-cycle scratch, rebuilt from empty every Tick
	reqBuf []bool // scratch request vector, len = Ports*VCs
	// saWinners is the switch allocator's per-port scratch buffer,
	// reused every cycle so the steady-state Tick allocates nothing.
	//noc:derived per-cycle scratch, rebuilt from empty every Tick
	saWinners []saWinner

	// routeFn, when non-nil, replaces the RC units' XY computation with a
	// network-level fault-aware function (see RouteFn).
	//noc:derived immutable wiring, installed at network construction
	routeFn RouteFn
	// droppedPkts collects packets whose destination routing declared
	// unreachable this cycle; the network drains them via TakeDropped.
	//noc:derived per-cycle scratch, drained by the network before the step boundary
	droppedPkts []*flit.Packet

	// Counters tallies mechanism activity.
	//noc:derived observational only: saved and restored, but excluded from the canonical encoding because counters never feed back into arbitration
	Counters Counters

	// obs is the pre-bound observability handle (nil when disabled, the
	// default); every instrumentation site guards on it with one nil
	// check so the disabled hot path stays allocation-free.
	//noc:derived immutable wiring, bound at network construction; observational only
	obs *obs.RouterObs

	// stallSkip marks, per flat input-VC index p*VCs+v, that the VC
	// advanced this cycle and must be skipped by the end-of-tick stall
	// scan. Bits are set only on the obs-enabled path (inside existing
	// nil-guarded blocks) and cleared by the scan itself, so the
	// disabled hot path never touches it.
	//noc:derived per-cycle scratch, cleared by the end-of-tick stall scan; observational only
	stallSkip []bool
}

// New returns a router with the given id in topo, configured by cfg.
func New(id int, topo topology.Topology, cfg router.Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{ID: id, cfg: cfg, topo: topo}
	r.in = make([]*vc.InputPort, cfg.Ports)
	r.rc = make([]*router.RCUnit, cfg.Ports)
	r.outVCBusy = make([][]bool, cfg.Ports)
	r.credits = make([][]int, cfg.Ports)
	r.rcScan = make([]int, cfg.Ports)
	r.saAdopted = make([]int, cfg.Ports)
	r.saAdoptAge = make([]int, cfg.Ports)
	for i := range r.saAdopted {
		r.saAdopted[i] = -1
	}
	r.va2req = make([][][]int, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		r.in[p] = vc.NewInputPort(topology.Port(p), cfg.VCs, cfg.Depth)
		r.rc[p] = router.NewRCUnit(topo, cfg.FaultTolerant)
		r.outVCBusy[p] = make([]bool, cfg.VCs)
		r.credits[p] = make([]int, cfg.VCs)
		for v := range r.credits[p] {
			r.credits[p][v] = cfg.Depth
		}
		r.va2req[p] = make([][]int, cfg.VCs)
		for v := range r.va2req[p] {
			// Worst case every input VC requests the same (out, dvc);
			// full capacity up front keeps the steady-state tick
			// allocation-free.
			r.va2req[p][v] = make([]int, 0, cfg.Ports*cfg.VCs)
		}
	}
	r.va = router.NewVAlloc(cfg)
	r.sa = router.NewSAlloc(cfg)
	if cfg.FaultTolerant {
		r.xbProt = crossbar.NewProtected(cfg.Ports)
	} else {
		r.xbBase = crossbar.NewBaseline(cfg.Ports)
	}
	r.reqBuf = make([]bool, cfg.Ports*cfg.VCs)
	r.saWinners = make([]saWinner, cfg.Ports)
	// Pre-size the per-cycle staging latches to their flow-control bounds
	// (one flit per port per cycle; credits bounded by total VCs plus the
	// VC-free piggyback) so the steady-state tick never grows them.
	r.inFlits = make([]router.InFlit, 0, cfg.Ports)
	r.inCredits = make([]CreditIn, 0, cfg.Ports*cfg.VCs+cfg.Ports)
	r.outFlits = make([]router.OutFlit, 0, cfg.Ports)
	r.outCredits = make([]router.Credit, 0, cfg.Ports*cfg.VCs+cfg.Ports)
	r.droppedPkts = make([]*flit.Packet, 0, cfg.Ports)
	r.stallSkip = make([]bool, cfg.Ports*cfg.VCs)
	r.obs = obs.BindRouter(cfg.Obs, id, cfg.Ports, cfg.VCs)
	return r, nil
}

// MustNew is New that panics on configuration errors, for tests and
// examples.
func MustNew(id int, topo topology.Topology, cfg router.Config) *Router {
	r, err := New(id, topo, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the router's configuration.
func (r *Router) Config() router.Config { return r.cfg }

// FaultTolerant reports whether this is the protected design.
func (r *Router) FaultTolerant() bool { return r.cfg.FaultTolerant }

// InputVC exposes input VC (p, v) for inspection by tests and the NI.
func (r *Router) InputVC(p topology.Port, v int) *vc.VC { return r.in[p].VCs[v] }

// AcceptFlit delivers a flit to input port latch; it is buffered at the
// start of the next Tick.
func (r *Router) AcceptFlit(f router.InFlit) { r.inFlits = append(r.inFlits, f) }

// AcceptCredit delivers a credit to the output-side latch.
func (r *Router) AcceptCredit(c CreditIn) { r.inCredits = append(r.inCredits, c) }

// SetRouteFn installs (or with nil, removes) a network-level fault-aware
// routing function that overrides the RC units' XY computation.
func (r *Router) SetRouteFn(fn RouteFn) { r.routeFn = fn }

// TakeDropped drains and returns the packets whose destination the
// routing function declared unreachable this cycle. Each such packet's
// buffered flits are discarded by the drain stage over the following
// cycles; the packet itself is reported exactly once, here.
//
// The returned slice aliases a buffer the router refills on its next
// Tick: consume it before then. (All three Take* drains share this
// contract; it is what keeps the steady-state network step free of
// allocations.)
func (r *Router) TakeDropped() []*flit.Packet {
	o := r.droppedPkts
	r.droppedPkts = r.droppedPkts[:0]
	return o
}

// TakeOutFlits drains and returns the flits that left the router this
// cycle. The returned slice is valid until the router's next Tick.
func (r *Router) TakeOutFlits() []router.OutFlit {
	o := r.outFlits
	r.outFlits = r.outFlits[:0]
	return o
}

// TakeOutCredits drains and returns the credits the router emitted this
// cycle. The returned slice is valid until the router's next Tick.
func (r *Router) TakeOutCredits() []router.Credit {
	o := r.outCredits
	r.outCredits = r.outCredits[:0]
	return o
}

// FreeOutVCs returns, for output port p and message class cls, how many
// downstream VCs are currently unallocated — used by the local NI to
// decide whether a new packet can be injected.
func (r *Router) FreeOutVCs(p topology.Port, cls int) int {
	lo, hi := r.cfg.ClassRange(cls)
	n := 0
	for v := lo; v < hi; v++ {
		if !r.outVCBusy[p][v] {
			n++
		}
	}
	return n
}

// Tick advances the router one cycle. Stages run in reverse pipeline
// order (buffer-write, XB, SA, VA, RC) so that state written by an
// earlier stage this cycle is consumed by the next stage next cycle; the
// head-flit pipeline is therefore RC → VA → SA → XB, one stage per cycle,
// exactly the paper's Figure 2.
func (r *Router) Tick(cy sim.Cycle) {
	r.acceptInputs()
	r.drainStage()
	r.xbStage(cy)
	r.saStage(cy)
	r.vaStage(cy)
	r.rcStage(cy)
	r.stallScan(cy)
}

// String implements fmt.Stringer.
func (r *Router) String() string {
	kind := "baseline"
	if r.cfg.FaultTolerant {
		kind = "protected"
	}
	return fmt.Sprintf("core.Router{id=%d %s %dp/%dvc}", r.ID, kind, r.cfg.Ports, r.cfg.VCs)
}

// headReady reports whether v's front flit is a head flit, a precondition
// for entering the RC stage.
func headReady(v *vc.VC) bool {
	f := v.Front()
	return f != nil && f.Kind.IsHead()
}

var _ = flit.Head // keep the flit import referenced even if unused later

// Credits returns the router's current credit count for downstream VC
// (p, v) — exposed for the network-level credit-conservation checker.
func (r *Router) Credits(p topology.Port, v int) int { return r.credits[p][v] }

// creditReturn is the audited entry point for adding a downstream credit
// on (p, v): a credit arriving from the neighbour, or one refunded when a
// grant is cancelled. It bundles the increment with its overflow panic so
// every credit movement stays bounds-checked (see the creditflow
// analyzer in internal/analysis).
//
//noc:credit-accessor
func (r *Router) creditReturn(p topology.Port, v int) {
	r.credits[p][v]++
	if r.credits[p][v] > r.cfg.Depth {
		panic(fmt.Sprintf("core: router %d credit overflow on %v/vc%d", r.ID, p, v))
	}
}

// creditSpend is the audited entry point for reserving a downstream
// credit on (p, v) for a granted flit, with its underflow panic.
//
//noc:credit-accessor
func (r *Router) creditSpend(p topology.Port, v int) {
	r.credits[p][v]--
	if r.credits[p][v] < 0 {
		panic(fmt.Sprintf("core: router %d negative credit on %v/vc%d", r.ID, p, v))
	}
}

// PendingGrants counts switch-allocation grants awaiting crossbar
// traversal whose flit will occupy downstream VC (p, v). The credit for
// such a flit is already reserved, so the network's credit-conservation
// checker must count it.
func (r *Router) PendingGrants(p topology.Port, v int) int {
	n := 0
	for _, g := range r.grants {
		if g.outPort == p && r.in[g.inPort].VCs[g.inVC].OutVC == v {
			n++
		}
	}
	return n
}
