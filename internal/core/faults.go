package core

import (
	"fmt"

	"gonoc/internal/topology"
)

// StageID identifies a router pipeline stage, used by the fault model and
// the reliability analysis.
type StageID int

// The four pipeline stages of Figure 2.
const (
	StageRC StageID = iota
	StageVA
	StageSA
	StageXB
	// NumStages is the number of pipeline stages.
	NumStages
)

// String implements fmt.Stringer.
func (s StageID) String() string {
	switch s {
	case StageRC:
		return "RC"
	case StageVA:
		return "VA"
	case StageSA:
		return "SA"
	case StageXB:
		return "XB"
	default:
		return fmt.Sprintf("StageID(%d)", int(s))
	}
}

// SetRCFault marks RC copy copyIdx (0 = primary, 1 = duplicate) of input
// port p faulty.
func (r *Router) SetRCFault(p topology.Port, copyIdx int, f bool) {
	r.rc[p].SetFaulty(copyIdx, f)
}

// SetVA1Fault marks the stage-1 VA arbiter set of input VC (p, v) faulty.
func (r *Router) SetVA1Fault(p topology.Port, v int, f bool) {
	r.va.SetStage1Faulty(int(p), v, f)
}

// SetVA2Fault marks the stage-2 VA arbiter of downstream VC (out, dvc)
// faulty.
func (r *Router) SetVA2Fault(out topology.Port, dvc int, f bool) {
	r.va.Stage2(int(out), dvc).SetFaulty(f)
}

// SetSA1Fault marks input port p's stage-1 SA arbiter faulty.
func (r *Router) SetSA1Fault(p topology.Port, f bool) {
	r.sa.Stage1(int(p)).Arb.SetFaulty(f)
}

// SetSA1BypassFault marks input port p's SA bypass path faulty.
func (r *Router) SetSA1BypassFault(p topology.Port, f bool) {
	r.sa.Stage1(int(p)).SetBypassFaulty(f)
}

// SetSA2Fault marks output port out's stage-2 SA arbiter faulty.
func (r *Router) SetSA2Fault(out topology.Port, f bool) {
	r.sa.Stage2(int(out)).SetFaulty(f)
}

// SetXBFault marks output port out's primary crossbar multiplexer faulty.
func (r *Router) SetXBFault(out topology.Port, f bool) {
	if r.cfg.FaultTolerant {
		r.xbProt.SetMuxFaulty(int(out), f)
	} else {
		r.xbBase.SetMuxFaulty(int(out), f)
	}
}

// SetXBSecondaryFault marks output port out's secondary crossbar path
// faulty. It panics on the baseline router, which has no secondary paths.
func (r *Router) SetXBSecondaryFault(out topology.Port, f bool) {
	if !r.cfg.FaultTolerant {
		panic("core: baseline crossbar has no secondary path")
	}
	r.xbProt.SetSecondaryFaulty(int(out), f)
}

// Functional reports whether the router can still perform every routing
// function — the failure predicate of the paper's SPF analysis (Section
// VIII). The protected router fails when, for some port:
//
//   - both RC copies are faulty (routing impossible at that port), or
//   - every VC's stage-1 VA arbiter set is faulty (no allocation), or
//   - every stage-2 VA arbiter of some message class is faulty, or
//   - the SA stage-1 arbiter and its bypass path are both faulty, or
//   - neither the primary nor the secondary path reaches the output
//     (crossbar mux / SA stage-2 arbiter combinations).
//
// The baseline router fails on its first fault anywhere.
func (r *Router) Functional() bool {
	for p := 0; p < r.cfg.Ports; p++ {
		if !r.rc[p].Usable() {
			return false
		}
		if r.cfg.FaultTolerant {
			if r.va.PortStage1Dead(p) {
				return false
			}
			if !r.sa.Stage1(p).Usable() {
				return false
			}
		} else {
			for v := 0; v < r.cfg.VCs; v++ {
				if r.va.Stage1Faulty(p, v) || r.va.Stage2(p, v).Faulty() {
					return false
				}
			}
			if r.sa.Stage1(p).Arb.Faulty() || r.sa.Stage2(p).Faulty() {
				return false
			}
			if r.xbBase.MuxFaulty(p) {
				return false
			}
			continue
		}
		for cls := 0; cls < r.cfg.Classes; cls++ {
			if r.classStage2Dead(p, cls) {
				return false
			}
		}
		if !r.primaryPathUsable(topology.Port(p)) && !r.secondaryPathUsable(topology.Port(p)) {
			return false
		}
	}
	return true
}

// classStage2Dead reports whether every stage-2 VA arbiter of class cls at
// output port p is faulty.
func (r *Router) classStage2Dead(p, cls int) bool {
	lo, hi := r.cfg.ClassRange(cls)
	for dvc := lo; dvc < hi; dvc++ {
		if !r.va.Stage2(p, dvc).Faulty() {
			return false
		}
	}
	return true
}

// RCFault reports whether RC copy copyIdx of input port p is faulty.
func (r *Router) RCFault(p topology.Port, copyIdx int) bool {
	return r.rc[p].Faulty(copyIdx)
}

// VA1Fault reports whether input VC (p, v)'s stage-1 arbiter set is
// faulty.
func (r *Router) VA1Fault(p topology.Port, v int) bool {
	return r.va.Stage1Faulty(int(p), v)
}

// VA2Fault reports whether the stage-2 VA arbiter of (out, dvc) is
// faulty.
func (r *Router) VA2Fault(out topology.Port, dvc int) bool {
	return r.va.Stage2(int(out), dvc).Faulty()
}

// SA1Fault reports whether input port p's stage-1 SA arbiter is faulty.
func (r *Router) SA1Fault(p topology.Port) bool {
	return r.sa.Stage1(int(p)).Arb.Faulty()
}

// SA1BypassFault reports whether input port p's bypass path is faulty.
func (r *Router) SA1BypassFault(p topology.Port) bool {
	return r.sa.Stage1(int(p)).BypassFaulty()
}

// SA2Fault reports whether output port out's stage-2 SA arbiter is
// faulty.
func (r *Router) SA2Fault(out topology.Port) bool {
	return r.sa.Stage2(int(out)).Faulty()
}

// XBFault reports whether output port out's primary crossbar mux is
// faulty.
func (r *Router) XBFault(out topology.Port) bool {
	if r.cfg.FaultTolerant {
		return r.xbProt.MuxFaulty(int(out))
	}
	return r.xbBase.MuxFaulty(int(out))
}

// XBSecondaryFault reports whether output out's secondary crossbar path
// is faulty. It panics on the baseline router.
func (r *Router) XBSecondaryFault(out topology.Port) bool {
	if !r.cfg.FaultTolerant {
		panic("core: baseline crossbar has no secondary path")
	}
	return r.xbProt.SecondaryFaulty(int(out))
}
