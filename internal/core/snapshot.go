package core

import (
	"encoding/binary"

	"gonoc/internal/flit"
	"gonoc/internal/topology"
	"gonoc/internal/vc"
)

// This file implements deep save/restore of a router's architectural
// state and a canonical byte encoding of it. Both exist for the
// model-checking tier (internal/modelcheck), which snapshots a
// mid-execution network, explores one branch, and rolls back — and they
// are the per-router half of the checkpoint/restore groundwork the
// ROADMAP's campaign-server item needs.
//
// Save/Restore operate at the network step boundary, where the router's
// four I/O latches (inFlits, inCredits, outFlits, outCredits) and the
// droppedPkts drain are empty by construction: inputs were accepted at
// the top of Tick and outputs were taken by the network's commit phase.
// The only cross-cycle state is what SaveState captures: VC buffers and
// state fields, output-side credit/busy bookkeeping, pending SA grants
// (executed by next cycle's crossbar stage), arbiter priority and
// bypass registers, the RC scan and bypass-adoption pointers, fault
// flags, and the counters.

// vcState is the saved form of one input VC.
type vcState struct {
	flits      []*flit.Flit
	g          vc.GState
	r          topology.Port
	outVC      int
	r2         topology.Port
	vf         bool
	id         int
	sp         topology.Port
	fsp        bool
	detour     bool
	creditHome int
	dvcLo      int
	dvcHi      int
}

// RouterState is a deep copy of a Router's mutable architectural state
// at a network step boundary. It is produced by SaveState and consumed
// by RestoreState; the flit pointers it holds are clones produced by
// the caller's cloneFlit function, never aliases of live router state.
type RouterState struct {
	vcs       [][]vcState
	outVCBusy [][]bool
	credits   [][]int
	grants    []grant
	rcScan    []int
	saAdopted []int
	saAdopt   []int

	va1Prio [][]int
	va2Prio [][]int
	sa1Prio []int
	sa1DW   []int // bypass default-winner register, per port
	sa1Rot  []int // bypass grants-since-rotation counter, per port
	sa2Prio []int

	rcFaulty     [][2]bool
	va1Faulty    [][]bool
	va2Faulty    [][]bool
	sa1ArbFault  []bool
	sa1BypFault  []bool
	sa2Faulty    []bool
	xbMuxFaulty  []bool
	xbSecFaulty  []bool
	xbSecPresent bool

	counters Counters
}

// SaveState deep-copies the router's mutable state. cloneFlit maps each
// buffered flit to the copy stored in the snapshot; the caller supplies
// it so packet identity can be preserved across routers (the network
// snapshot passes a memoizing cloner that maps every *flit.Packet to a
// single clone). cloneFlit must not return its argument: flits are
// mutated in place by the pipeline (Hops), so aliasing would let
// post-snapshot execution corrupt the snapshot.
func (r *Router) SaveState(cloneFlit func(*flit.Flit) *flit.Flit) *RouterState {
	P, V := r.cfg.Ports, r.cfg.VCs
	s := &RouterState{
		vcs:       make([][]vcState, P),
		outVCBusy: make([][]bool, P),
		credits:   make([][]int, P),
		grants:    append([]grant(nil), r.grants...),
		rcScan:    append([]int(nil), r.rcScan...),
		saAdopted: append([]int(nil), r.saAdopted...),
		saAdopt:   append([]int(nil), r.saAdoptAge...),

		va1Prio: make([][]int, P),
		va2Prio: make([][]int, P),
		sa1Prio: make([]int, P),
		sa1DW:   make([]int, P),
		sa1Rot:  make([]int, P),
		sa2Prio: make([]int, P),

		rcFaulty:    make([][2]bool, P),
		va1Faulty:   make([][]bool, P),
		va2Faulty:   make([][]bool, P),
		sa1ArbFault: make([]bool, P),
		sa1BypFault: make([]bool, P),
		sa2Faulty:   make([]bool, P),
		xbMuxFaulty: make([]bool, P),
		xbSecFaulty: make([]bool, P),

		counters: r.Counters,
	}
	for p := 0; p < P; p++ {
		s.vcs[p] = make([]vcState, V)
		s.outVCBusy[p] = append([]bool(nil), r.outVCBusy[p]...)
		s.credits[p] = append([]int(nil), r.credits[p]...)
		s.va1Prio[p] = make([]int, V)
		s.va2Prio[p] = make([]int, V)
		s.va1Faulty[p] = make([]bool, V)
		s.va2Faulty[p] = make([]bool, V)
		for v := 0; v < V; v++ {
			s.vcs[p][v] = saveVC(r.in[p].VCs[v], cloneFlit)
			s.va1Prio[p][v] = r.va.Stage1(p, v).Prio()
			s.va2Prio[p][v] = r.va.Stage2(p, v).Prio()
			s.va1Faulty[p][v] = r.va.Stage1Faulty(p, v)
			s.va2Faulty[p][v] = r.va.Stage2(p, v).Faulty()
		}
		b := r.sa.Stage1(p)
		s.sa1Prio[p] = b.Arb.Prio()
		s.sa1DW[p], s.sa1Rot[p] = b.BypassState()
		s.sa1ArbFault[p] = b.Arb.Faulty()
		s.sa1BypFault[p] = b.BypassFaulty()
		s.sa2Prio[p] = r.sa.Stage2(p).Prio()
		s.sa2Faulty[p] = r.sa.Stage2(p).Faulty()
		s.rcFaulty[p][0] = r.rc[p].Faulty(0)
		if r.cfg.FaultTolerant {
			s.rcFaulty[p][1] = r.rc[p].Faulty(1)
		}
		if r.xbProt != nil {
			s.xbSecPresent = true
			s.xbMuxFaulty[p] = r.xbProt.MuxFaulty(p)
			s.xbSecFaulty[p] = r.xbProt.SecondaryFaulty(p)
		} else {
			s.xbMuxFaulty[p] = r.xbBase.MuxFaulty(p)
		}
	}
	return s
}

func saveVC(v *vc.VC, cloneFlit func(*flit.Flit) *flit.Flit) vcState {
	live := v.Flits()
	fs := make([]*flit.Flit, len(live))
	for i, f := range live {
		fs[i] = cloneFlit(f)
	}
	return vcState{
		flits: fs,
		g:     v.G, r: v.R, outVC: v.OutVC,
		r2: v.R2, vf: v.VF, id: v.ID, sp: v.SP, fsp: v.FSP, detour: v.Detour,
		creditHome: v.CreditHome, dvcLo: v.DvcLo, dvcHi: v.DvcHi,
	}
}

// RestoreState rewinds the router to a state saved by SaveState.
// cloneFlit maps each snapshot flit to a fresh copy installed in the
// router, so the snapshot itself stays pristine and can be restored
// from again. The router's I/O latches are cleared — the caller must
// restore at a network step boundary, where they are empty anyway.
func (r *Router) RestoreState(s *RouterState, cloneFlit func(*flit.Flit) *flit.Flit) {
	if s.xbSecPresent != (r.xbProt != nil) {
		panic("core: RestoreState: snapshot crossbar protection does not match the router's configuration")
	}
	P, V := r.cfg.Ports, r.cfg.VCs
	scratch := make([]*flit.Flit, 0, r.cfg.Depth)
	for p := 0; p < P; p++ {
		copy(r.outVCBusy[p], s.outVCBusy[p])
		copy(r.credits[p], s.credits[p])
		for v := 0; v < V; v++ {
			restoreVC(r.in[p].VCs[v], &s.vcs[p][v], cloneFlit, &scratch)
			r.va.Stage1(p, v).SetPrio(s.va1Prio[p][v])
			r.va.Stage2(p, v).SetPrio(s.va2Prio[p][v])
			r.va.SetStage1Faulty(p, v, s.va1Faulty[p][v])
			r.va.Stage2(p, v).SetFaulty(s.va2Faulty[p][v])
		}
		b := r.sa.Stage1(p)
		b.Arb.SetPrio(s.sa1Prio[p])
		b.SetBypassState(s.sa1DW[p], s.sa1Rot[p])
		b.Arb.SetFaulty(s.sa1ArbFault[p])
		b.SetBypassFaulty(s.sa1BypFault[p])
		r.sa.Stage2(p).SetPrio(s.sa2Prio[p])
		r.sa.Stage2(p).SetFaulty(s.sa2Faulty[p])
		r.rc[p].SetFaulty(0, s.rcFaulty[p][0])
		if r.cfg.FaultTolerant {
			r.rc[p].SetFaulty(1, s.rcFaulty[p][1])
		}
		if r.xbProt != nil {
			r.xbProt.SetMuxFaulty(p, s.xbMuxFaulty[p])
			r.xbProt.SetSecondaryFaulty(p, s.xbSecFaulty[p])
		} else {
			r.xbBase.SetMuxFaulty(p, s.xbMuxFaulty[p])
		}
	}
	r.grants = append(r.grants[:0], s.grants...)
	copy(r.rcScan, s.rcScan)
	copy(r.saAdopted, s.saAdopted)
	copy(r.saAdoptAge, s.saAdopt)
	r.Counters = s.counters
	r.inFlits = r.inFlits[:0]
	r.inCredits = r.inCredits[:0]
	r.outFlits = r.outFlits[:0]
	r.outCredits = r.outCredits[:0]
	r.droppedPkts = r.droppedPkts[:0]
}

func restoreVC(v *vc.VC, s *vcState, cloneFlit func(*flit.Flit) *flit.Flit, scratch *[]*flit.Flit) {
	fs := (*scratch)[:0]
	for _, f := range s.flits {
		fs = append(fs, cloneFlit(f))
	}
	*scratch = fs
	v.SetFlits(fs)
	v.G, v.R, v.OutVC = s.g, s.r, s.outVC
	v.R2, v.VF, v.ID, v.SP, v.FSP = s.r2, s.vf, s.id, s.sp, s.fsp
	v.Detour = s.detour
	v.CreditHome = s.creditHome
	v.DvcLo, v.DvcHi = s.dvcLo, s.dvcHi
}

// Canonical-encoding helpers. Signed varints keep the encoding compact
// and unambiguous (every field is length- or count-prefixed where
// variable).
func appI(b []byte, v int) []byte    { return binary.AppendVarint(b, int64(v)) }
func appU(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appB(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendCanonicalFlit appends a behaviour-relevant encoding of one flit:
// kind, flit sequence number, and the packet's logical identity
// (source, destination, class, size, end-to-end sequence number).
// Simulation-bookkeeping fields — packet ID, timestamps, hop count — are
// deliberately excluded: two states that differ only in those fields
// behave identically forever, and folding them together is what makes
// exhaustive exploration terminate.
func AppendCanonicalFlit(b []byte, f *flit.Flit) []byte {
	b = append(b, byte(f.Kind))
	b = appI(b, f.Seq)
	b = appI(b, f.Pkt.Src)
	b = appI(b, f.Pkt.Dst)
	b = append(b, byte(f.Pkt.Class))
	b = appI(b, f.Pkt.Size)
	b = appU(b, f.Pkt.Seq)
	return b
}

// AppendCanonical appends the router's behaviour-relevant state to b and
// returns the extended slice. Two routers with equal canonical encodings
// (and equal configurations) are bisimilar: every future Tick sequence
// produces the same architectural behaviour. Counters are excluded (they
// never feed back into arbitration), as are the I/O latches (empty at
// the step boundary where this must be called).
func (r *Router) AppendCanonical(b []byte) []byte {
	P, V := r.cfg.Ports, r.cfg.VCs
	for p := 0; p < P; p++ {
		for v := 0; v < V; v++ {
			ivc := r.in[p].VCs[v]
			b = append(b, byte(ivc.G))
			b = appI(b, int(ivc.R))
			b = appI(b, ivc.OutVC)
			b = appI(b, int(ivc.R2))
			b = appB(b, ivc.VF)
			b = appI(b, ivc.ID)
			b = appI(b, int(ivc.SP))
			b = appB(b, ivc.FSP)
			// Detour is observational only (stall attribution) and is
			// excluded like the counters: it never feeds arbitration.
			b = appI(b, ivc.CreditHome)
			b = appI(b, ivc.DvcLo)
			b = appI(b, ivc.DvcHi)
			fs := ivc.Flits()
			b = appI(b, len(fs))
			for _, f := range fs {
				b = AppendCanonicalFlit(b, f)
			}
			b = appB(b, r.outVCBusy[p][v])
			b = appI(b, r.credits[p][v])
			b = appI(b, r.va.Stage1(p, v).Prio())
			b = appI(b, r.va.Stage2(p, v).Prio())
			b = appB(b, r.va.Stage1Faulty(p, v))
			b = appB(b, r.va.Stage2(p, v).Faulty())
		}
		sa1 := r.sa.Stage1(p)
		b = appI(b, sa1.Arb.Prio())
		dw, rot := sa1.BypassState()
		b = appI(b, dw)
		b = appI(b, rot)
		b = appB(b, sa1.Arb.Faulty())
		b = appB(b, sa1.BypassFaulty())
		b = appI(b, r.sa.Stage2(p).Prio())
		b = appB(b, r.sa.Stage2(p).Faulty())
		b = appB(b, r.rc[p].Faulty(0))
		if r.cfg.FaultTolerant {
			b = appB(b, r.rc[p].Faulty(1))
		}
		if r.xbProt != nil {
			b = appB(b, r.xbProt.MuxFaulty(p))
			b = appB(b, r.xbProt.SecondaryFaulty(p))
		} else {
			b = appB(b, r.xbBase.MuxFaulty(p))
		}
		b = appI(b, r.rcScan[p])
		b = appI(b, r.saAdopted[p])
		b = appI(b, r.saAdoptAge[p])
	}
	b = appI(b, len(r.grants))
	for _, g := range r.grants {
		b = appI(b, int(g.inPort))
		b = appI(b, g.inVC)
		b = appI(b, int(g.outPort))
		b = appB(b, g.secondary)
	}
	return b
}
