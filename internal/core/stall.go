package core

import (
	"gonoc/internal/obs"
	"gonoc/internal/sim"
	"gonoc/internal/vc"
)

// Stall attribution: at the end of every Tick the router classifies
// each input VC that held work it could not advance this cycle —
// answering why latency rose, not just that it did. The taxonomy
// (obs.StallKind) splits waits into downstream backpressure
// (credit-starved), contention inside this router (arbitration-lost),
// fault detours (route-blocked) and the drain of fault-dropped packets
// (fault-drain).
//
// The scan is a pure observer: it reads pipeline state through the
// same predicates the stages use but mutates nothing (in particular it
// avoids effectiveRequestPort, which refreshes SP/FSP), so enabling
// observability cannot perturb the simulation it measures. When obs is
// nil the scan is a single branch, preserving the zero-alloc disabled
// hot path.

// noteAdvance marks input VC (p, v) as having advanced this cycle so
// the stall scan skips it. Callers sit inside the pipeline's existing
// obs nil-guarded blocks: the bits only matter when the scan runs.
func (r *Router) noteAdvance(p, v int) { r.stallSkip[p*r.cfg.VCs+v] = true }

// stallScan runs after the pipeline stages and classifies every
// non-advancing input VC. Within a Tick the stages run in reverse
// pipeline order and the scan runs last, so a VC that was serviced
// this cycle has either been marked by noteAdvance or moved to a state
// whose stage already ran (and is marked there too); everything else
// genuinely waited.
func (r *Router) stallScan(cy sim.Cycle) {
	o := r.obs
	if o == nil {
		return
	}
	V := r.cfg.VCs
	for p := 0; p < r.cfg.Ports; p++ {
		ip := r.in[p]
		for v := 0; v < V; v++ {
			skip := r.stallSkip[p*V+v]
			r.stallSkip[p*V+v] = false
			q := ip.VCs[v]
			if skip {
				continue
			}
			switch q.G {
			case vc.Dropping:
				// Draining a packet discarded by network faults; every
				// cycle it still holds flits is fault cost.
				if !q.Empty() {
					o.Stall(obs.StallFaultDrain, p, v)
				}
			case vc.Routing:
				if !headReady(q) {
					continue // head still on the wire — not this router's wait
				}
				if !r.rc[p].Usable() {
					// No fault-free RC copy: routing itself is blocked.
					o.Stall(obs.StallRouteBlocked, p, v)
				} else {
					// Lost the port's one-RC-per-cycle round-robin.
					o.Stall(obs.StallArbLost, p, v)
				}
			case vc.VCAlloc:
				out := int(q.R)
				lo, hi := r.cfg.ClassRange(r.cfg.ClassOf(v))
				if q.DvcLo < q.DvcHi {
					lo, hi = q.DvcLo, q.DvcHi
				}
				free := false
				for dvc := lo; dvc < hi; dvc++ {
					if !r.outVCBusy[out][dvc] {
						free = true
						break
					}
				}
				switch {
				case q.Detour || q.FSP:
					o.Stall(obs.StallRouteBlocked, p, v)
				case !free:
					// Every eligible downstream VC is allocated: the wait
					// is downstream occupancy, not this router's arbiters.
					o.Stall(obs.StallCreditStarved, p, v)
				default:
					o.Stall(obs.StallArbLost, p, v)
				}
			case vc.Active:
				if q.Empty() {
					continue // body flits still on the wire
				}
				switch {
				case !r.primaryPathUsable(q.R) && !r.secondaryPathUsable(q.R):
					o.Stall(obs.StallRouteBlocked, p, v)
				case q.Detour || q.FSP:
					o.Stall(obs.StallRouteBlocked, p, v)
				case r.credits[q.R][q.OutVC] == 0:
					o.Stall(obs.StallCreditStarved, p, v)
				default:
					o.Stall(obs.StallArbLost, p, v)
				}
			}
		}
	}
}
