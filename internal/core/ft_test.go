package core

import (
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/vc"
)

// eastOf returns the node id east of the 3x3-mesh centre.
func eastOf(b *bench) int { return b.mesh.ID(topology.Coord{X: 2, Y: 1}) }

// --- RC stage (Section V-A) ---

func TestRCDuplicateCoversPrimaryFault(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetRCFault(topology.West, 0, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with a single RC fault")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(10)
	got := b.arrived[topology.East]
	if len(got) != 1 {
		t.Fatalf("%d arrivals, want 1", len(got))
	}
	// Spatial redundancy: no latency penalty (Section VI-B).
	if got[0].at != 3 {
		t.Errorf("latency with duplicate RC = %d cycles, want 3", got[0].at)
	}
	if b.r.Counters.RCDuplicateUses != 1 {
		t.Errorf("RCDuplicateUses = %d, want 1", b.r.Counters.RCDuplicateUses)
	}
}

func TestRCBothCopiesFaultyFails(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetRCFault(topology.West, 0, true)
	b.r.SetRCFault(topology.West, 1, true)
	if b.r.Functional() {
		t.Fatal("router functional with both RC copies dead")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(20)
	if len(b.arrived[topology.East]) != 0 {
		t.Fatal("packet routed despite dead RC unit")
	}
	// Other ports keep working.
	pkt2 := &flit.Packet{ID: 2, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.North, 0, flit.Segment(pkt2)[0])
	b.run(10)
	if len(b.arrived[topology.East]) != 1 {
		t.Fatal("healthy port stopped working")
	}
}

func TestBaselineRCFaultKillsPort(t *testing.T) {
	b := newBench(t, baseCfg())
	b.r.SetRCFault(topology.West, 0, true)
	if b.r.Functional() {
		t.Fatal("baseline functional with RC fault")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(20)
	if len(b.arrived[topology.East]) != 0 {
		t.Fatal("baseline routed through faulty RC")
	}
}

// --- VA stage 1 (Section V-B1) ---

func TestVA1BorrowScenario1NoExtraLatency(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetVA1Fault(topology.West, 0, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with one VA1 fault")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(10)
	got := b.arrived[topology.East]
	if len(got) != 1 {
		t.Fatalf("%d arrivals, want 1", len(got))
	}
	// Scenario 1: the lender was idle, so borrowing costs no cycle.
	if got[0].at != 3 {
		t.Errorf("borrow latency = %d cycles, want 3", got[0].at)
	}
	if b.r.Counters.VA1Borrows != 1 {
		t.Errorf("VA1Borrows = %d, want 1", b.r.Counters.VA1Borrows)
	}
}

func TestVA1BorrowScenario2OneCycleStall(t *testing.T) {
	// Two VCs, both in VCAlloc the same cycle, borrower's arbiters
	// faulty: the borrower must wait one cycle for the lender to finish
	// (Section V-B1, Scenario 2).
	cfg := ftCfg()
	cfg.VCs = 2
	b := newBench(t, cfg)
	b.r.SetVA1Fault(topology.West, 0, true)
	east := eastOf(b)
	p0 := &flit.Packet{ID: 1, Src: 4, Dst: east, Size: 1}
	p1 := &flit.Packet{ID: 2, Src: 4, Dst: east, Size: 1}
	// Hand-craft the race: both VCs hold a routed head, entering VA the
	// same cycle.
	q0, q1 := b.r.InputVC(topology.West, 0), b.r.InputVC(topology.West, 1)
	q0.Push(flit.Segment(p0)[0])
	q0.G, q0.R = vc.VCAlloc, topology.East
	q1.Push(flit.Segment(p1)[0])
	q1.G, q1.R = vc.VCAlloc, topology.East
	b.run(12)
	if b.r.Counters.VA1BorrowStalls == 0 {
		t.Error("expected at least one borrow stall (Scenario 2)")
	}
	if b.r.Counters.VA1Borrows != 1 {
		t.Errorf("VA1Borrows = %d, want 1", b.r.Counters.VA1Borrows)
	}
	got := b.arrived[topology.East]
	if len(got) != 2 {
		t.Fatalf("%d arrivals, want 2", len(got))
	}
	// The healthy VC's packet (ID 2) proceeds first; the borrower lands
	// exactly one cycle behind the contention-free schedule.
	if got[0].f.Pkt.ID != 2 {
		t.Errorf("healthy VC did not win first: first arrival pkt %d", got[0].f.Pkt.ID)
	}
}

func TestVA1AllSetsFaultyFails(t *testing.T) {
	b := newBench(t, ftCfg())
	for v := 0; v < 4; v++ {
		b.r.SetVA1Fault(topology.West, v, true)
	}
	if b.r.Functional() {
		t.Fatal("router functional with all VA1 sets faulty on a port")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(20)
	if len(b.arrived[topology.East]) != 0 {
		t.Fatal("packet allocated with no healthy arbiter set")
	}
}

func TestVA1ThreeFaultsStillWork(t *testing.T) {
	// Paper Section VIII-B: a port tolerates 3 VA1 faults (borrowing from
	// the single surviving set).
	b := newBench(t, ftCfg())
	for v := 0; v < 3; v++ {
		b.r.SetVA1Fault(topology.West, v, true)
	}
	if !b.r.Functional() {
		t.Fatal("router not functional with 3 of 4 VA1 sets faulty")
	}
	east := eastOf(b)
	for i := 0; i < 3; i++ {
		pkt := &flit.Packet{ID: uint64(i), Src: 4, Dst: east, Size: 2}
		for _, f := range flit.Segment(pkt) {
			b.inject(topology.West, 0, f)
			b.step()
		}
		b.run(8)
	}
	if n := len(b.arrived[topology.East]); n != 6 {
		t.Fatalf("%d flits arrived, want 6", n)
	}
}

// --- VA stage 2 (Section V-B3) ---

func TestVA2FaultRetriesWithAnotherVC(t *testing.T) {
	b := newBench(t, ftCfg())
	// With round-robin stage-1 starting at dvc 0, the first attempt hits
	// the faulty arbiter and costs one recompute cycle.
	b.r.SetVA2Fault(topology.East, 0, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with one VA2 fault")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(12)
	got := b.arrived[topology.East]
	if len(got) != 1 {
		t.Fatalf("%d arrivals, want 1", len(got))
	}
	if got[0].at != 4 {
		t.Errorf("latency = %d cycles, want 4 (one recompute cycle)", got[0].at)
	}
	if got[0].dvc == 0 {
		t.Error("packet was allocated the downstream VC with the faulty arbiter")
	}
	if b.r.Counters.VA2Retries != 1 {
		t.Errorf("VA2Retries = %d, want 1", b.r.Counters.VA2Retries)
	}
}

func TestVA2AllFaultyFails(t *testing.T) {
	b := newBench(t, ftCfg())
	for v := 0; v < 4; v++ {
		b.r.SetVA2Fault(topology.East, v, true)
	}
	if b.r.Functional() {
		t.Fatal("router functional with every East VA2 arbiter faulty")
	}
}

// --- SA stage 1 (Section V-C1) ---

func TestSABypassDefaultWinnerReady(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetSA1Fault(topology.West, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with one SA1 fault")
	}
	// Default winner starts at VC 0; inject there.
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 2}
	for _, f := range flit.Segment(pkt) {
		b.inject(topology.West, 0, f)
		b.step()
	}
	b.run(10)
	if n := len(b.arrived[topology.East]); n != 2 {
		t.Fatalf("%d arrivals, want 2", n)
	}
	if b.r.Counters.SABypassGrants == 0 {
		t.Error("no bypass grants recorded")
	}
	if b.r.Counters.SATransfers != 0 {
		t.Errorf("unexpected transfers: %d", b.r.Counters.SATransfers)
	}
}

func TestSABypassTransfersIntoDefaultWinner(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetSA1Fault(topology.West, true)
	// Inject into VC 1 while the default winner is VC 0 (empty): the
	// router must transfer flits+state into VC 0, costing one cycle.
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 3}
	for _, f := range flit.Segment(pkt) {
		b.inject(topology.West, 1, f)
		b.step()
	}
	b.run(12)
	got := b.arrived[topology.East]
	if len(got) != 3 {
		t.Fatalf("%d arrivals, want 3", len(got))
	}
	if b.r.Counters.SATransfers != 1 {
		t.Errorf("SATransfers = %d, want 1", b.r.Counters.SATransfers)
	}
	// Credits must be returned for the ORIGINAL VC (CreditHome), so the
	// upstream's bookkeeping stays consistent.
	for _, c := range b.credits {
		if c.In == topology.West && c.VC != 1 {
			t.Fatalf("credit returned for VC %d, want 1 (origin)", c.VC)
		}
	}
	// The head flit pays the transfer cycle: 3 (pipeline) + 1.
	if got[0].at != 4 {
		t.Errorf("head arrived at %d, want 4 (one transfer cycle)", got[0].at)
	}
}

func TestSABypassPlusBypassFaultFails(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetSA1Fault(topology.West, true)
	b.r.SetSA1BypassFault(topology.West, true)
	if b.r.Functional() {
		t.Fatal("router functional with SA1 arbiter and bypass both faulty")
	}
}

// --- SA stage 2 + XB (Sections V-C2, V-D) ---

func TestXBFaultUsesSecondaryPath(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetXBFault(topology.East, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with one XB mux fault")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 2}
	for _, f := range flit.Segment(pkt) {
		b.inject(topology.West, 0, f)
		b.step()
	}
	b.run(10)
	got := b.arrived[topology.East]
	if len(got) != 2 {
		t.Fatalf("%d arrivals at East, want 2", len(got))
	}
	if b.r.Counters.XBSecondary != 2 {
		t.Errorf("XBSecondary = %d, want 2", b.r.Counters.XBSecondary)
	}
	// FSP/SP were set at RC time.
	if got[0].at != 3 {
		t.Errorf("secondary-path latency = %d, want 3 (no cycle penalty)", got[0].at)
	}
}

func TestSA2FaultUsesSecondaryPath(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetSA2Fault(topology.East, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with one SA2 fault")
	}
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: eastOf(b), Size: 1}
	b.inject(topology.West, 0, flit.Segment(pkt)[0])
	b.run(10)
	if len(b.arrived[topology.East]) != 1 {
		t.Fatal("packet did not reach East with faulty SA2 arbiter")
	}
	if b.r.Counters.XBSecondary != 1 {
		t.Errorf("XBSecondary = %d, want 1", b.r.Counters.XBSecondary)
	}
}

func TestXBPrimaryAndSecondaryFaultFails(t *testing.T) {
	b := newBench(t, ftCfg())
	b.r.SetXBFault(topology.East, true)
	b.r.SetXBSecondaryFault(topology.East, true)
	if b.r.Functional() {
		t.Fatal("router functional with both East paths dead")
	}
}

func TestXBSecondaryContention(t *testing.T) {
	// With East's mux faulty, East traffic detours through the secondary
	// mux — which is also some other output's primary. Flows to both
	// outputs must still all arrive, serialized on the shared mux.
	b := newBench(t, ftCfg())
	b.r.SetXBFault(topology.East, true)
	sec := topology.Port(1) // secondary(East=2) is mux 1 (North) per the assignment
	if got := b.mesh.RouteXY(4, eastOf(b)); got != topology.East {
		t.Fatal("sanity: route must be East")
	}
	north := b.mesh.ID(topology.Coord{X: 1, Y: 0})
	for i := 0; i < 3; i++ {
		pe := &flit.Packet{ID: uint64(10 + i), Src: 4, Dst: eastOf(b), Size: 1}
		pn := &flit.Packet{ID: uint64(20 + i), Src: 4, Dst: north, Size: 1}
		b.inject(topology.West, i, flit.Segment(pe)[0])
		b.inject(topology.South, i, flit.Segment(pn)[0])
	}
	b.run(25)
	if n := len(b.arrived[topology.East]); n != 3 {
		t.Fatalf("%d East arrivals, want 3", n)
	}
	if n := len(b.arrived[sec]); n != 3 {
		t.Fatalf("%d North arrivals, want 3", n)
	}
	// The shared mux carries at most one flit per cycle.
	seen := map[any]int{}
	for _, a := range b.arrived[topology.East] {
		seen[a.at]++
	}
	for _, a := range b.arrived[sec] {
		seen[a.at]++
	}
	for cyc, n := range seen {
		if n > 1 {
			t.Fatalf("cycle %v: %d flits through shared mux", cyc, n)
		}
	}
}

// --- Multi-fault operation (the paper's headline claim) ---

func TestFourFaultsOnePerStageStillDelivers(t *testing.T) {
	// "Assuming that each individual pipeline stage is affected by only
	// one permanent fault, the protected router pipeline will be able to
	// tolerate four permanent faults." (Section IV)
	b := newBench(t, ftCfg())
	b.r.SetRCFault(topology.West, 0, true)
	b.r.SetVA1Fault(topology.West, 0, true)
	b.r.SetSA1Fault(topology.West, true)
	b.r.SetXBFault(topology.East, true)
	if !b.r.Functional() {
		t.Fatal("router not functional with one fault per stage")
	}
	east := eastOf(b)
	for i := 0; i < 4; i++ {
		pkt := &flit.Packet{ID: uint64(i), Src: 4, Dst: east, Size: 3}
		for _, f := range flit.Segment(pkt) {
			b.inject(topology.West, 0, f)
			b.step()
		}
		b.run(10)
	}
	if n := len(b.arrived[topology.East]); n != 12 {
		t.Fatalf("%d flits arrived under 4 faults, want 12", n)
	}
	c := b.r.Counters
	if c.RCDuplicateUses == 0 || c.VA1Borrows == 0 || c.SABypassGrants == 0 || c.XBSecondary == 0 {
		t.Fatalf("not every mechanism engaged: %+v", c)
	}
}

func TestBaselineAnyFaultNotFunctional(t *testing.T) {
	muts := []func(*Router){
		func(r *Router) { r.SetRCFault(topology.North, 0, true) },
		func(r *Router) { r.SetVA1Fault(topology.South, 2, true) },
		func(r *Router) { r.SetVA2Fault(topology.East, 1, true) },
		func(r *Router) { r.SetSA1Fault(topology.Local, true) },
		func(r *Router) { r.SetSA2Fault(topology.West, true) },
		func(r *Router) { r.SetXBFault(topology.North, true) },
	}
	for i, mut := range muts {
		b := newBench(t, baseCfg())
		if !b.r.Functional() {
			t.Fatalf("case %d: fresh baseline not functional", i)
		}
		mut(b.r)
		if b.r.Functional() {
			t.Errorf("case %d: baseline functional after a fault", i)
		}
	}
}

func TestProtectedFaultFreeMatchesBaseline(t *testing.T) {
	// "In the fault-free scenario, the protected crossbar behaves just
	// like the baseline crossbar" — we require it of the whole router:
	// identical arrival cycles for an identical stimulus.
	run := func(cfg router.Config) []arrival {
		b := newBench(t, cfg)
		east := eastOf(b)
		north := b.mesh.ID(topology.Coord{X: 1, Y: 0})
		for i := 0; i < 3; i++ {
			pe := &flit.Packet{ID: uint64(i), Src: 4, Dst: east, Size: 2}
			pn := &flit.Packet{ID: uint64(100 + i), Src: 4, Dst: north, Size: 2}
			for _, f := range flit.Segment(pe) {
				b.inject(topology.West, i, f)
			}
			for _, f := range flit.Segment(pn) {
				b.inject(topology.South, i, f)
			}
			b.step()
		}
		b.run(20)
		var all []arrival
		all = append(all, b.arrived[topology.East]...)
		all = append(all, b.arrived[topology.North]...)
		return all
	}
	ba, ft := run(baseCfg()), run(ftCfg())
	if len(ba) != len(ft) {
		t.Fatalf("arrival counts differ: baseline %d vs protected %d", len(ba), len(ft))
	}
	for i := range ba {
		if ba[i].at != ft[i].at || ba[i].f.Pkt.ID != ft[i].f.Pkt.ID {
			t.Fatalf("arrival %d differs: baseline (pkt %d @%d) vs protected (pkt %d @%d)",
				i, ba[i].f.Pkt.ID, ba[i].at, ft[i].f.Pkt.ID, ft[i].at)
		}
	}
}
