package core

import (
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// bench wraps a single router and emulates its neighbourhood: it echoes
// downstream credits back (with one cycle of latency, like a real link)
// and collects ejected flits per output port.
type bench struct {
	t       *testing.T
	r       *Router
	mesh    topology.Mesh
	cycle   sim.Cycle
	arrived map[topology.Port][]arrival
	// pendingCredits are credits generated this cycle, applied next cycle.
	pendingCredits []CreditIn
	credits        []router.Credit // credits the router sent upstream
}

type arrival struct {
	f   *flit.Flit
	dvc int
	at  sim.Cycle
}

// newBench builds a router with id 4 at the centre of a 3x3 mesh, so all
// five ports are meaningful.
func newBench(t *testing.T, cfg router.Config) *bench {
	t.Helper()
	mesh := topology.NewMesh(3, 3)
	r, err := New(4, mesh, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &bench{t: t, r: r, mesh: mesh, arrived: map[topology.Port][]arrival{}}
}

func ftCfg() router.Config {
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	cfg.Classes = 1
	return cfg
}

func baseCfg() router.Config {
	cfg := router.DefaultConfig()
	cfg.Classes = 1
	return cfg
}

// inject delivers a flit into input port p, VC v, before the next tick.
func (b *bench) inject(p topology.Port, v int, f *flit.Flit) {
	b.r.AcceptFlit(router.InFlit{In: p, VC: v, F: f})
}

// step advances one cycle, echoing downstream credits and collecting
// outputs.
func (b *bench) step() {
	for _, c := range b.pendingCredits {
		b.r.AcceptCredit(c)
	}
	b.pendingCredits = b.pendingCredits[:0]

	b.r.Tick(b.cycle)

	for _, of := range b.r.TakeOutFlits() {
		b.arrived[of.Out] = append(b.arrived[of.Out], arrival{f: of.F, dvc: of.DownVC, at: b.cycle})
		// Downstream consumes instantly and returns the credit next cycle.
		b.pendingCredits = append(b.pendingCredits, CreditIn{
			Out:    of.Out,
			VC:     of.DownVC,
			VCFree: of.F.Kind.IsTail(),
		})
	}
	b.credits = append(b.credits, b.r.TakeOutCredits()...)
	b.cycle++
}

func (b *bench) run(n int) {
	for i := 0; i < n; i++ {
		b.step()
	}
}

// sendPacket injects a size-flit packet into (port, vc) heading to dst,
// one flit per cycle, stepping as it goes.
func (b *bench) sendPacket(p topology.Port, v int, dst, size int) *flit.Packet {
	pkt := &flit.Packet{ID: 1, Src: b.r.ID, Dst: dst, Size: size, CreatedAt: b.cycle}
	for _, f := range flit.Segment(pkt) {
		b.inject(p, v, f)
		b.step()
	}
	return pkt
}

func TestSingleFlitPipelineLatency(t *testing.T) {
	for _, cfg := range []router.Config{baseCfg(), ftCfg()} {
		b := newBench(t, cfg)
		east := b.mesh.ID(topology.Coord{X: 2, Y: 1})
		pkt := &flit.Packet{ID: 1, Src: 4, Dst: east, Size: 1}
		b.inject(topology.West, 0, flit.Segment(pkt)[0])
		b.run(10)
		got := b.arrived[topology.East]
		if len(got) != 1 {
			t.Fatalf("ft=%v: %d flits arrived at East, want 1", cfg.FaultTolerant, len(got))
		}
		// 4-stage pipeline: buffered+RC at cycle 0, VA at 1, SA at 2,
		// XB at 3.
		if got[0].at != 3 {
			t.Errorf("ft=%v: flit left at cycle %d, want 3 (4-stage pipeline)", cfg.FaultTolerant, got[0].at)
		}
	}
}

func TestMultiFlitInOrderBackToBack(t *testing.T) {
	b := newBench(t, ftCfg())
	east := b.mesh.ID(topology.Coord{X: 2, Y: 1})
	pkt := &flit.Packet{ID: 2, Src: 4, Dst: east, Size: 4}
	for _, f := range flit.Segment(pkt) {
		b.inject(topology.West, 1, f)
		b.step()
	}
	b.run(10)
	got := b.arrived[topology.East]
	if len(got) != 4 {
		t.Fatalf("%d flits arrived, want 4", len(got))
	}
	for i, a := range got {
		if a.f.Seq != i {
			t.Errorf("arrival %d has seq %d", i, a.f.Seq)
		}
	}
	// Body/tail flits stream one per cycle behind the head.
	for i := 1; i < 4; i++ {
		if got[i].at != got[i-1].at+1 {
			t.Errorf("flit %d at %d, flit %d at %d: not back-to-back", i-1, got[i-1].at, i, got[i].at)
		}
	}
}

func TestRoutingAllDirections(t *testing.T) {
	// From the centre of the 3x3 mesh, packets to each neighbour and to
	// self leave through the right ports.
	dests := map[topology.Port]topology.Coord{
		topology.North: {X: 1, Y: 0},
		topology.South: {X: 1, Y: 2},
		topology.East:  {X: 2, Y: 1},
		topology.West:  {X: 0, Y: 1},
		topology.Local: {X: 1, Y: 1},
	}
	for wantPort, c := range dests {
		b := newBench(t, ftCfg())
		pkt := &flit.Packet{ID: 3, Src: 4, Dst: b.mesh.ID(c), Size: 1}
		b.inject(topology.Local, 0, flit.Segment(pkt)[0])
		b.run(10)
		if n := len(b.arrived[wantPort]); n != 1 {
			t.Errorf("dst %v: %d flits at %v, want 1", c, n, wantPort)
		}
	}
}

func TestTailFreesVCAndCreditsFlow(t *testing.T) {
	b := newBench(t, ftCfg())
	east := b.mesh.ID(topology.Coord{X: 2, Y: 1})
	b.sendPacket(topology.West, 0, east, 3)
	b.run(10)
	q := b.r.InputVC(topology.West, 0)
	if q.G.String() != "I" || !q.Empty() {
		t.Fatalf("input VC not reset after tail: %v", q)
	}
	// Three credits must have been sent upstream for West/vc0, the last
	// with VCFree.
	var westCredits []router.Credit
	for _, c := range b.credits {
		if c.In == topology.West && c.VC == 0 {
			westCredits = append(westCredits, c)
		}
	}
	if len(westCredits) != 3 {
		t.Fatalf("%d credits for West/vc0, want 3", len(westCredits))
	}
	if !westCredits[2].VCFree || westCredits[0].VCFree || westCredits[1].VCFree {
		t.Fatalf("VCFree pattern wrong: %+v", westCredits)
	}
	// Downstream VC must be reallocatable: a second packet flows.
	b.sendPacket(topology.West, 0, east, 2)
	b.run(10)
	if len(b.arrived[topology.East]) != 5 {
		t.Fatalf("second packet did not arrive: %d flits total", len(b.arrived[topology.East]))
	}
}

func TestCreditBackpressure(t *testing.T) {
	// Without credit echo, at most Depth flits can leave for one output
	// VC; the rest stall until credits return.
	cfg := ftCfg()
	b := newBench(t, cfg)
	east := b.mesh.ID(topology.Coord{X: 2, Y: 1})
	pkt := &flit.Packet{ID: 4, Src: 4, Dst: east, Size: 6}
	flits := flit.Segment(pkt)
	// Manually step without echoing downstream credits, while respecting
	// upstream credits for West/vc0 like a real upstream router would.
	upCredits := cfg.Depth
	next := 0
	for i := 0; i < 25; i++ {
		if next < len(flits) && upCredits > 0 {
			b.inject(topology.West, 0, flits[next])
			next++
			upCredits--
		}
		b.r.Tick(b.cycle)
		for _, of := range b.r.TakeOutFlits() {
			b.arrived[of.Out] = append(b.arrived[of.Out], arrival{f: of.F, dvc: of.DownVC, at: b.cycle})
		}
		for _, c := range b.r.TakeOutCredits() {
			if c.In == topology.West && c.VC == 0 {
				upCredits++
			}
		}
		b.cycle++
	}
	if n := len(b.arrived[topology.East]); n != cfg.Depth {
		t.Fatalf("%d flits left without credits, want %d (buffer depth)", n, cfg.Depth)
	}
	// Return one credit: exactly one more flit moves.
	b.r.AcceptCredit(CreditIn{Out: topology.East, VC: b.arrived[topology.East][0].dvc})
	for i := 0; i < 5; i++ {
		b.r.Tick(b.cycle)
		for _, of := range b.r.TakeOutFlits() {
			b.arrived[of.Out] = append(b.arrived[of.Out], arrival{f: of.F, dvc: of.DownVC, at: b.cycle})
		}
		b.cycle++
	}
	if n := len(b.arrived[topology.East]); n != cfg.Depth+1 {
		t.Fatalf("%d flits after one credit, want %d", n, cfg.Depth+1)
	}
}

func TestTwoFlowsDifferentOutputsNoInterference(t *testing.T) {
	b := newBench(t, ftCfg())
	east := b.mesh.ID(topology.Coord{X: 2, Y: 1})
	north := b.mesh.ID(topology.Coord{X: 1, Y: 0})
	pe := &flit.Packet{ID: 5, Src: 4, Dst: east, Size: 2}
	pn := &flit.Packet{ID: 6, Src: 4, Dst: north, Size: 2}
	fe, fn := flit.Segment(pe), flit.Segment(pn)
	// Interleave on two different input ports.
	b.inject(topology.West, 0, fe[0])
	b.inject(topology.South, 0, fn[0])
	b.step()
	b.inject(topology.West, 0, fe[1])
	b.inject(topology.South, 0, fn[1])
	b.run(12)
	if len(b.arrived[topology.East]) != 2 || len(b.arrived[topology.North]) != 2 {
		t.Fatalf("arrivals E=%d N=%d, want 2/2", len(b.arrived[topology.East]), len(b.arrived[topology.North]))
	}
}

func TestContentionSharedOutputSerializes(t *testing.T) {
	b := newBench(t, ftCfg())
	east := b.mesh.ID(topology.Coord{X: 2, Y: 1})
	p1 := &flit.Packet{ID: 7, Src: 4, Dst: east, Size: 1}
	p2 := &flit.Packet{ID: 8, Src: 4, Dst: east, Size: 1}
	b.inject(topology.West, 0, flit.Segment(p1)[0])
	b.inject(topology.North, 0, flit.Segment(p2)[0])
	b.run(12)
	got := b.arrived[topology.East]
	if len(got) != 2 {
		t.Fatalf("%d arrivals, want 2", len(got))
	}
	if got[0].at == got[1].at {
		t.Fatal("two flits crossed one output mux in the same cycle")
	}
	if got[0].dvc == got[1].dvc {
		t.Fatal("two packets allocated the same downstream VC")
	}
}
