package core

import (
	"fmt"

	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/vc"
)

// acceptInputs applies the latched credits and buffers the latched flits.
func (r *Router) acceptInputs() {
	for _, c := range r.inCredits {
		r.creditReturn(c.Out, c.VC)
		if c.VCFree {
			r.outVCBusy[c.Out][c.VC] = false
		}
	}
	r.inCredits = r.inCredits[:0]

	for _, inf := range r.inFlits {
		q := r.in[inf.In].VCs[inf.VC]
		if inf.F.Kind.IsHead() {
			if q.G != vc.Idle {
				panic(fmt.Sprintf("core: router %d head flit into busy VC %v/%d (G=%v)", r.ID, inf.In, inf.VC, q.G))
			}
			q.G = vc.Routing
		}
		q.Push(inf.F)
	}
	r.inFlits = r.inFlits[:0]
}

// rcStage performs routing computation for at most one head flit per input
// port (each port has a single RC unit). In the protected router the
// duplicate unit covers a faulty primary, and the SP/FSP fields are set
// when the computed output port's regular path is unusable (Section V-D).
func (r *Router) rcStage(cy sim.Cycle) {
	for p := 0; p < r.cfg.Ports; p++ {
		ip := r.in[p]
		for i := 0; i < r.cfg.VCs; i++ {
			idx := (r.rcScan[p] + i) % r.cfg.VCs
			q := ip.VCs[idx]
			if q.G != vc.Routing || !headReady(q) {
				continue
			}
			out, ok, unreachable := r.computeRoute(cy, p, q)
			if unreachable {
				// Network faults cut every remaining path to the
				// destination: discard the packet. The drain stage frees
				// the buffered flits one per cycle, returning credits
				// upstream, until the tail releases the VC.
				q.G = vc.Dropping
				r.droppedPkts = append(r.droppedPkts, q.Front().Pkt)
				r.rcScan[p] = (idx + 1) % r.cfg.VCs
				break
			}
			if !ok {
				// No fault-free RC copy: the packet is stuck. The router
				// is no longer Functional(); leave the VC in Routing.
				break
			}
			q.R = out
			q.FSP = false
			if r.cfg.FaultTolerant && !r.primaryPathUsable(out) {
				if r.secondaryPathUsable(out) {
					q.FSP = true
					q.SP = topology.Port(r.xbProt.SecondaryOf(int(out)))
				}
				// If neither path works the packet waits; Functional()
				// reports the router failed.
			}
			q.G = vc.VCAlloc
			if o := r.obs; o != nil {
				o.RCCompute(cy, p, idx, int(out), r.rc[p].Faulty(0))
				r.noteAdvance(p, idx)
			}
			r.rcScan[p] = (idx + 1) % r.cfg.VCs
			break // one RC per port per cycle
		}
	}
}

// computeRoute runs the port's RC unit, tracking duplicate use. With a
// fault-aware route function installed the unit computes that function
// instead of XY (unreachable=true when no path to the destination
// survives); without one the behavior is exactly the baseline XY lookup.
func (r *Router) computeRoute(cy sim.Cycle, p int, q *vc.VC) (out topology.Port, ok, unreachable bool) {
	u := r.rc[p]
	if !u.Usable() {
		return topology.Local, false, false
	}
	if u.Faulty(0) {
		r.Counters.RCDuplicateUses++
	}
	dst := q.Front().Pkt.Dst
	if fn := r.routeFn; fn != nil {
		//nocvet:ignore hotpathalloc RouteFn targets are pre-built table lookups (torusRoute, routeTable), pinned allocation-free by the zero-alloc suite
		fout, lo, hi, fok := fn(r.ID, topology.Port(p), q.Index, dst)
		if !fok {
			return topology.Local, false, true
		}
		q.DvcLo, q.DvcHi = lo, hi
		//nocvet:ignore hotpathalloc topology Route implementations are pure coordinate arithmetic
		if r.ID != dst && fout != r.topo.Route(r.ID, dst) {
			q.Detour = true
			r.Counters.Reroutes++
			if o := r.obs; o != nil {
				o.Reroute(cy, p, q.Index, int(fout))
			}
		}
		return fout, true, false
	}
	out, ok = u.Compute(r.ID, dst)
	return out, ok, false
}

// drainStage discards one buffered flit per Dropping VC per cycle,
// returning the credit (and on the tail, the VC-free signal) upstream so
// the upstream router's flow control unwinds exactly as if the flits had
// been forwarded.
func (r *Router) drainStage() {
	for p := 0; p < r.cfg.Ports; p++ {
		for _, q := range r.in[p].VCs {
			if q.G != vc.Dropping || q.Empty() {
				continue
			}
			f := q.Pop()
			r.outCredits = append(r.outCredits, router.Credit{
				In:     topology.Port(p),
				VC:     q.CreditHome,
				VCFree: f.Kind.IsTail(),
			})
			if f.Kind.IsTail() {
				q.ResetPacketState()
			}
		}
	}
}

// primaryPathUsable reports whether output port out's regular path — its
// SA stage-2 arbiter plus its primary crossbar multiplexer — is fault
// free.
func (r *Router) primaryPathUsable(out topology.Port) bool {
	if r.sa.Stage2(int(out)).Faulty() {
		return false
	}
	if r.cfg.FaultTolerant {
		return r.xbProt.PrimaryUsable(int(out))
	}
	return !r.xbBase.MuxFaulty(int(out))
}

// secondaryPathUsable reports whether output out can be reached through
// the protected crossbar's secondary path: the neighbouring mux, the
// demux/Pk leg and the neighbouring port's SA stage-2 arbiter must all be
// fault free. Only meaningful for the protected router.
func (r *Router) secondaryPathUsable(out topology.Port) bool {
	if !r.cfg.FaultTolerant {
		return false
	}
	sec := r.xbProt.SecondaryOf(int(out))
	return r.xbProt.SecondaryUsable(int(out)) && !r.sa.Stage2(sec).Faulty()
}

// vaStage runs the two-stage separable virtual-channel allocator,
// including the protected router's arbiter borrowing.
func (r *Router) vaStage(cy sim.Cycle) {
	// Reset stage-2 request lists.
	for p := range r.va2req {
		for v := range r.va2req[p] {
			r.va2req[p][v] = r.va2req[p][v][:0]
		}
	}

	// Stage 1: each input VC in VCAlloc picks one candidate downstream VC.
	for p := 0; p < r.cfg.Ports; p++ {
		ip := r.in[p]
		for v := 0; v < r.cfg.VCs; v++ {
			q := ip.VCs[v]
			if q.G != vc.VCAlloc {
				continue
			}
			arbVC := v
			if r.va.Stage1Faulty(p, v) {
				if !r.cfg.FaultTolerant {
					continue // baseline: the VC is dead
				}
				//nocvet:ignore hotpathalloc the closure captures only loop-local state and never escapes FindLender: stack-allocated
				lender := ip.FindLender(v, func(i int) bool { return r.va.Stage1Faulty(p, i) })
				if lender == vc.None {
					// Scenario 2: every candidate lender is busy
					// allocating this cycle; wait one cycle.
					r.Counters.VA1BorrowStalls++
					if o := r.obs; o != nil {
						o.VABorrowStall(cy, p, v)
					}
					continue
				}
				// Deposit the borrow request in the lender's state fields
				// (Figure 4); the allocation below acts for the borrower.
				lq := ip.VCs[lender]
				lq.R2 = q.R
				lq.ID = v
				lq.VF = true
				arbVC = lender
				r.Counters.VA1Borrows++
				if o := r.obs; o != nil {
					o.VABorrow(cy, p, v, lender)
				}
			}
			out := int(q.R)
			cls := r.cfg.ClassOf(v)
			lo, hi := r.cfg.ClassRange(cls)
			if q.DvcLo < q.DvcHi {
				// Fault-aware routing pinned the packet to a downstream
				// VC layer; allocate only inside it.
				lo, hi = q.DvcLo, q.DvcHi
			}
			reqs := r.reqBuf[:r.cfg.VCs]
			for i := range reqs {
				reqs[i] = false
			}
			any := false
			for dvc := lo; dvc < hi; dvc++ {
				if !r.outVCBusy[out][dvc] {
					reqs[dvc] = true
					any = true
				}
			}
			if any {
				if dvc, ok := r.va.Stage1(p, arbVC).Grant(reqs); ok {
					r.va2req[out][dvc] = append(r.va2req[out][dvc], p*r.cfg.VCs+v)
				}
			}
			if arbVC != v {
				// The VA unit resets R2/ID/VF once the borrowed arbiters
				// have served the borrower (Section V-B2).
				ip.VCs[arbVC].ClearBorrow()
			}
		}
	}

	// Stage 2: one arbiter per downstream VC resolves conflicts.
	for out := 0; out < r.cfg.Ports; out++ {
		for dvc := 0; dvc < r.cfg.VCs; dvc++ {
			cands := r.va2req[out][dvc]
			if len(cands) == 0 {
				continue
			}
			arb := r.va.Stage2(out, dvc)
			if arb.Faulty() {
				// Section V-B3: the requesters lose this downstream VC
				// and re-arbitrate for a different one next cycle.
				r.Counters.VA2Retries += uint64(len(cands))
				if o := r.obs; o != nil {
					o.VARetry(cy, out, dvc, len(cands))
				}
				continue
			}
			reqs := r.reqBuf[:r.cfg.Ports*r.cfg.VCs]
			for i := range reqs {
				reqs[i] = false
			}
			for _, c := range cands {
				reqs[c] = true
			}
			w, ok := arb.Grant(reqs)
			if !ok {
				continue
			}
			wp, wv := w/r.cfg.VCs, w%r.cfg.VCs
			q := r.in[wp].VCs[wv]
			q.G = vc.Active
			q.OutVC = dvc
			r.outVCBusy[out][dvc] = true
			if o := r.obs; o != nil {
				o.VAAlloc(cy, wp, wv, out, dvc)
				r.noteAdvance(wp, wv)
			}
		}
	}
}

// saReady reports whether input VC q can compete in switch allocation this
// cycle: it is active, has a buffered flit, its output path is currently
// usable, and a downstream credit is available.
func (r *Router) saReady(q *vc.VC) bool {
	if q.G != vc.Active || q.Empty() {
		return false
	}
	if _, ok := r.effectiveRequestPort(q); !ok {
		return false
	}
	return r.credits[q.R][q.OutVC] > 0
}

// effectiveRequestPort returns the output port whose SA stage-2 arbiter
// the VC must request: the routed port when its regular path works, or
// the secondary port when the protected router must detour (refreshing
// SP/FSP so mid-packet faults are also rerouted). ok is false when no
// usable path remains.
func (r *Router) effectiveRequestPort(q *vc.VC) (topology.Port, bool) {
	if r.primaryPathUsable(q.R) {
		q.FSP = false
		return q.R, true
	}
	if r.secondaryPathUsable(q.R) {
		q.FSP = true
		q.SP = topology.Port(r.xbProt.SecondaryOf(int(q.R)))
		return q.SP, true
	}
	return topology.Local, false
}

// saStage runs the two-stage separable switch allocator with the
// protected router's bypass path and VC transfer.
func (r *Router) saStage(cy sim.Cycle) {
	winners := r.saWinners
	for i := range winners {
		winners[i] = saWinner{vcIdx: -1}
	}

	// Stage 1: pick one VC per input port.
	for p := 0; p < r.cfg.Ports; p++ {
		ip := r.in[p]
		ready := r.reqBuf[:r.cfg.VCs]
		for v := 0; v < r.cfg.VCs; v++ {
			ready[v] = r.saReady(ip.VCs[v])
		}
		b := r.sa.Stage1(p)
		var w int
		var ok, bypassed bool
		switch {
		case !b.Arb.Faulty():
			w, ok = b.Arb.Grant(ready)
		case !r.cfg.FaultTolerant:
			continue // baseline: the port is dead
		case b.BypassFaulty():
			continue // both paths gone; Functional() reports failure
		default:
			// Bypass path: the default winner is chosen without
			// arbitration (Section V-C1). An adoption (a completed
			// transfer into the default winner) expires when the
			// packet's tail departs or when the default winner rotates
			// on — the rotation is what guarantees every VC of the port
			// is eventually served, so adoption must never outlive it
			// (otherwise a credit-stalled adopted packet could block a
			// sibling it transitively depends on).
			if a := r.saAdopted[p]; a >= 0 {
				r.saAdoptAge[p]++
				if ip.VCs[a].G != vc.Active || r.saAdoptAge[p] >= r.cfg.BypassRotatePeriod {
					r.saAdopted[p] = -1
				}
			}
			if a := r.saAdopted[p]; a >= 0 {
				if !ready[a] {
					continue // waiting (e.g., on credits)
				}
				w, ok, bypassed = a, true, true
				r.Counters.SABypassGrants++
				if o := r.obs; o != nil {
					o.SABypassGrant(p)
				}
				break
			}
			w, ok = b.Grant(ready)
			if ok && !ready[w] {
				// The default winner cannot send. If it is idle and
				// empty, transfer a sibling's flits and state into it;
				// the transfer itself consumes this cycle.
				r.tryTransfer(cy, ip, p, w)
				continue
			}
			if ok {
				bypassed = true
				r.Counters.SABypassGrants++
				if o := r.obs; o != nil {
					o.SABypassGrant(p)
				}
			}
		}
		if !ok {
			continue
		}
		q := ip.VCs[w]
		reqPort, pathOK := r.effectiveRequestPort(q)
		if !pathOK {
			continue
		}
		winners[p] = saWinner{vcIdx: w, reqPort: reqPort, outPort: q.R, secondary: q.FSP, bypass: bypassed}
	}

	// Stage 2: one arbiter per output port resolves input-port conflicts.
	reqs := r.reqBuf[:r.cfg.Ports]
	for out := 0; out < r.cfg.Ports; out++ {
		arb := r.sa.Stage2(out)
		if arb.Faulty() {
			continue
		}
		any := false
		for p := 0; p < r.cfg.Ports; p++ {
			reqs[p] = winners[p].vcIdx >= 0 && int(winners[p].reqPort) == out
			any = any || reqs[p]
		}
		if !any {
			continue
		}
		wp, ok := arb.Grant(reqs)
		if !ok {
			continue
		}
		win := winners[wp]
		q := r.in[wp].VCs[win.vcIdx]
		r.creditSpend(win.outPort, q.OutVC)
		r.grants = append(r.grants, grant{
			inPort:    topology.Port(wp),
			inVC:      win.vcIdx,
			outPort:   win.outPort,
			secondary: win.secondary,
		})
		if o := r.obs; o != nil {
			o.SAGrant(cy, wp, win.vcIdx, int(win.outPort), win.bypass)
			r.noteAdvance(wp, win.vcIdx)
		}
	}
}

// tryTransfer performs the Section V-C1 transfer: when the bypass default
// winner dst is idle and empty while a sibling VC holds a sendable packet,
// the sibling's flits and state fields move into dst's buffers in one
// cycle (this cycle — no grant is issued). We model the result as
// adoption: from the next cycle the moved packet is served as the default
// winner, while flow control keeps the packet's original VC identity so
// the upstream router's per-VC credits and allocation state stay exact.
func (r *Router) tryTransfer(cy sim.Cycle, ip *vc.InputPort, port, dst int) {
	d := ip.VCs[dst]
	if d.G != vc.Idle || !d.Empty() {
		return // default winner holds a packet that is simply not ready
	}
	cand := -1
	for v := 0; v < r.cfg.VCs; v++ {
		if v == dst {
			continue
		}
		s := ip.VCs[v]
		if s.G != vc.Active || s.Empty() {
			continue
		}
		if r.saReady(s) {
			cand = v
			break
		}
		if cand < 0 {
			cand = v
		}
	}
	if cand >= 0 {
		r.saAdopted[port] = cand
		r.saAdoptAge[port] = 0
		r.Counters.SATransfers++
		if o := r.obs; o != nil {
			o.SATransfer(cy, port, dst, cand)
			// The one-cycle transfer is the bypass mechanism making
			// progress, not a stall of the adopted VC.
			r.noteAdvance(port, cand)
		}
	}
}

// xbStage executes the previous cycle's grants: pops each granted flit,
// moves it through the crossbar (secondary path when directed) and emits
// it plus the upstream credit.
func (r *Router) xbStage(cy sim.Cycle) {
	if r.cfg.FaultTolerant {
		r.xbProt.BeginCycle()
	} else {
		r.xbBase.BeginCycle()
	}
	for _, g := range r.grants {
		q := r.in[g.inPort].VCs[g.inVC]
		var err error
		if r.cfg.FaultTolerant {
			err = r.xbProt.Traverse(int(g.inPort), int(g.outPort), g.secondary)
			if err != nil {
				// A fault can appear between the grant (last cycle's SA)
				// and the traversal; try the other path before giving up.
				err = r.xbProt.Traverse(int(g.inPort), int(g.outPort), !g.secondary)
				if err == nil {
					g.secondary = !g.secondary
				}
			}
		} else {
			err = r.xbBase.Traverse(int(g.inPort), int(g.outPort))
		}
		if err != nil {
			// No usable path remains this cycle: cancel the grant, refund
			// the reserved credit, and let switch allocation retry (the
			// retry re-evaluates SP/FSP against the new fault state).
			r.creditReturn(g.outPort, q.OutVC)
			continue
		}
		f := q.Pop()
		if g.secondary {
			r.Counters.XBSecondary++
		}
		f.Hops++
		r.Counters.FlitsRouted++
		if o := r.obs; o != nil {
			o.XBTraverse(cy, int(g.inPort), g.inVC, int(g.outPort), g.secondary)
			r.noteAdvance(int(g.inPort), g.inVC)
		}
		r.outFlits = append(r.outFlits, router.OutFlit{Out: g.outPort, DownVC: q.OutVC, F: f})
		r.outCredits = append(r.outCredits, router.Credit{
			In:     g.inPort,
			VC:     q.CreditHome,
			VCFree: f.Kind.IsTail(),
		})
		if f.Kind.IsTail() {
			q.ResetPacketState()
		}
	}
	r.grants = r.grants[:0]
}
