package core

import (
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/topology"
)

// These tests cover the subtler corners of the fault-tolerance
// mechanisms: adoption expiry, bypass fairness, message-class isolation
// and counter behaviour.

func TestBypassAdoptionExpiresWithRotation(t *testing.T) {
	// With a short rotation period and two competing VCs behind a faulty
	// SA1 arbiter, both VCs' packets must make progress — the adoption
	// must not pin the port to the first packet.
	cfg := ftCfg()
	cfg.BypassRotatePeriod = 4
	b := newBench(t, cfg)
	b.r.SetSA1Fault(topology.West, true)
	east := eastOf(b)
	// Two long packets into two VCs of the bypassed port, injected while
	// respecting upstream credits (the buffers drain slowly under bypass).
	p0 := &flit.Packet{ID: 1, Src: 4, Dst: east, Size: 6}
	p1 := &flit.Packet{ID: 2, Src: 4, Dst: east, Size: 6}
	queue := [2][]*flit.Flit{flit.Segment(p0), flit.Segment(p1)}
	credits := [2]int{cfg.Depth, cfg.Depth}
	for cyc := 0; cyc < 150 && (len(queue[0]) > 0 || len(queue[1]) > 0); cyc++ {
		for v := 0; v < 2; v++ {
			if len(queue[v]) > 0 && credits[v] > 0 {
				b.inject(topology.West, v, queue[v][0])
				queue[v] = queue[v][1:]
				credits[v]--
			}
		}
		nc := len(b.credits)
		b.step()
		for _, c := range b.credits[nc:] {
			if c.In == topology.West && c.VC < 2 {
				credits[c.VC]++
			}
		}
	}
	b.run(80)
	got := b.arrived[topology.East]
	if len(got) != 12 {
		t.Fatalf("%d flits arrived, want 12 (both packets)", len(got))
	}
	// Both packet IDs must appear among deliveries.
	seen := map[uint64]int{}
	for _, a := range got {
		seen[a.f.Pkt.ID]++
	}
	if seen[1] != 6 || seen[2] != 6 {
		t.Fatalf("deliveries per packet: %v", seen)
	}
}

func TestBypassNoStarvationLongRun(t *testing.T) {
	// Sustained traffic on all four VCs of a bypassed port: every VC's
	// packets keep flowing (the rotation guarantee).
	cfg := ftCfg()
	b := newBench(t, cfg)
	b.r.SetSA1Fault(topology.West, true)
	east := eastOf(b)
	delivered := map[int]int{} // per source VC
	var pending [4]int
	nextID := uint64(1)
	for cyc := 0; cyc < 3000; cyc++ {
		for v := 0; v < 4; v++ {
			q := b.r.InputVC(topology.West, v)
			if q.Empty() && q.G.String() == "I" && pending[v] == 0 {
				pkt := &flit.Packet{ID: nextID<<4 | uint64(v), Src: 4, Dst: east, Size: 1}
				nextID++
				b.inject(topology.West, v, flit.Segment(pkt)[0])
				pending[v]++
			}
		}
		b.step()
		for _, a := range b.arrived[topology.East] {
			delivered[int(a.f.Pkt.ID&0xf)]++
			pending[a.f.Pkt.ID&0xf] = 0
		}
		b.arrived[topology.East] = nil
	}
	for v := 0; v < 4; v++ {
		if delivered[v] < 20 {
			t.Errorf("VC %d delivered only %d packets in 3000 cycles (starved)", v, delivered[v])
		}
	}
}

func TestClassIsolationInVA(t *testing.T) {
	// Request packets must only ever be allocated request-class
	// downstream VCs, responses response-class ones.
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true // Classes = 2 by default
	b := newBench(t, cfg)
	east := eastOf(b)
	req := &flit.Packet{ID: 1, Src: 4, Dst: east, Class: flit.Request, Size: 1}
	rsp := &flit.Packet{ID: 2, Src: 4, Dst: east, Class: flit.Response, Size: 1}
	// Class partition of 4 VCs: requests on VC0-1, responses on VC2-3.
	b.inject(topology.West, 0, flit.Segment(req)[0])
	b.inject(topology.West, 2, flit.Segment(rsp)[0])
	b.run(12)
	got := b.arrived[topology.East]
	if len(got) != 2 {
		t.Fatalf("%d arrivals, want 2", len(got))
	}
	for _, a := range got {
		cls := a.f.Pkt.Class
		if cls == flit.Request && a.dvc >= 2 {
			t.Errorf("request allocated response-class VC %d", a.dvc)
		}
		if cls == flit.Response && a.dvc < 2 {
			t.Errorf("response allocated request-class VC %d", a.dvc)
		}
	}
}

func TestCountersFlitsRouted(t *testing.T) {
	b := newBench(t, ftCfg())
	b.sendPacket(topology.West, 0, eastOf(b), 4)
	b.run(10)
	if b.r.Counters.FlitsRouted != 4 {
		t.Fatalf("FlitsRouted = %d, want 4", b.r.Counters.FlitsRouted)
	}
}

func TestMidPacketXBFaultRecovers(t *testing.T) {
	// Inject an XB fault while a packet is mid-flight: the grant/traverse
	// race must be handled (credit refund + secondary retry), and all
	// flits still arrive.
	b := newBench(t, ftCfg())
	east := eastOf(b)
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: east, Size: 6}
	fs := flit.Segment(pkt)
	for i := 0; i < 3; i++ {
		b.inject(topology.West, 0, fs[i])
		b.step()
	}
	// Fault lands mid-packet.
	b.r.SetXBFault(topology.East, true)
	for i := 3; i < 6; i++ {
		b.inject(topology.West, 0, fs[i])
		b.step()
	}
	b.run(20)
	if n := len(b.arrived[topology.East]); n != 6 {
		t.Fatalf("%d flits arrived, want 6", n)
	}
	if b.r.Counters.XBSecondary == 0 {
		t.Fatal("secondary path never used after mid-packet fault")
	}
}

func TestMidPacketSecondaryFaultFallsBack(t *testing.T) {
	// Start on the secondary path, then break it and repair the primary:
	// the effective-request refresh must switch back.
	b := newBench(t, ftCfg())
	east := eastOf(b)
	b.r.SetXBFault(topology.East, true) // start: secondary in use
	pkt := &flit.Packet{ID: 1, Src: 4, Dst: east, Size: 6}
	fs := flit.Segment(pkt)
	for i := 0; i < 3; i++ {
		b.inject(topology.West, 0, fs[i])
		b.step()
	}
	b.r.SetXBFault(topology.East, false)         // primary repaired
	b.r.SetXBSecondaryFault(topology.East, true) // secondary dies
	for i := 3; i < 6; i++ {
		b.inject(topology.West, 0, fs[i])
		b.step()
	}
	b.run(20)
	if n := len(b.arrived[topology.East]); n != 6 {
		t.Fatalf("%d flits arrived, want 6", n)
	}
}

func TestVA1BorrowManyPacketsSequential(t *testing.T) {
	// A VC with faulty arbiters sustains a long sequence of packets
	// purely through borrowing.
	b := newBench(t, ftCfg())
	b.r.SetVA1Fault(topology.West, 1, true)
	east := eastOf(b)
	for i := 0; i < 10; i++ {
		pkt := &flit.Packet{ID: uint64(i), Src: 4, Dst: east, Size: 2}
		for _, f := range flit.Segment(pkt) {
			b.inject(topology.West, 1, f)
			b.step()
		}
		b.run(8)
	}
	if n := len(b.arrived[topology.East]); n != 20 {
		t.Fatalf("%d flits arrived, want 20", n)
	}
	if b.r.Counters.VA1Borrows != 10 {
		t.Fatalf("VA1Borrows = %d, want 10", b.r.Counters.VA1Borrows)
	}
}

func TestRouterStringAndAccessors(t *testing.T) {
	b := newBench(t, ftCfg())
	if b.r.String() == "" || !b.r.FaultTolerant() {
		t.Fatal("accessor smoke test failed")
	}
	if b.r.Config().Ports != 5 {
		t.Fatal("Config() wrong")
	}
	if b.r.FreeOutVCs(topology.East, 0) != 4 {
		t.Fatalf("FreeOutVCs = %d, want 4", b.r.FreeOutVCs(topology.East, 0))
	}
	bb := newBench(t, baseCfg())
	if bb.r.String() == "" || bb.r.FaultTolerant() {
		t.Fatal("baseline accessor smoke test failed")
	}
}
