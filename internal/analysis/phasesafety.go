package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// PhaseSafety enforces the two-phase tick discipline that makes parallel
// stepping bit-exact (PR 2).
//
// Network.Step splits each cycle into a compute phase — sharded across
// workers, each node reading only last-cycle state — and a serial commit
// phase that applies all cross-node effects in canonical node order.
// Nothing but convention stops a future change from mutating committed
// state inside the compute phase, which would turn a deterministic
// simulation into a racy one that happens to pass small tests.
//
// The analyzer seeds from functions marked //noc:compute-phase (the
// compute shards), walks the package's static call graph, and reports:
//
//   - calls from compute-reachable code to functions marked
//     //noc:commit-only (the commit-side entry points);
//   - writes from compute-reachable code to struct fields marked
//     //noc:committed (committed cross-node state).
//
// The call graph covers direct calls and method calls resolved at
// compile time within the package, including function literals, which
// inherit their enclosing declaration's phase. Dynamic calls through
// stored function values or interfaces are not traced; keep phase
// boundaries out of such indirections.
var PhaseSafety = &Analyzer{
	Name: "phasesafety",
	Doc:  "flag commit-phase work (commit-only calls, committed-state writes) reachable from the compute phase",
	Run:  runPhaseSafety,
}

func runPhaseSafety(pass *Pass) error {
	roots := markedFuncs(pass, MarkerComputePhase)
	if len(roots) == 0 {
		return nil
	}
	commitOnly := markedFuncs(pass, MarkerCommitOnly)
	committed := markedFields(pass, MarkerCommitted)

	// Map every function object to its declaration, and build the static
	// intra-package call graph.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	callees := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(pass.TypesInfo, call); callee != nil {
				if _, inPkg := decls[callee]; inPkg {
					callees[obj] = append(callees[obj], callee)
				}
			}
			return true
		})
	}

	// Reachability from the compute roots.
	reachable := map[*types.Func]bool{}
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		for _, c := range callees[fn] {
			walk(c)
		}
	}
	for fn := range roots {
		walk(fn)
	}

	// Deterministic reporting order: visit declarations in file order.
	var ordered []*types.Func
	for fn := range reachable {
		if _, ok := decls[fn]; ok {
			ordered = append(ordered, fn)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })

	for _, fn := range ordered {
		if commitOnly[fn] {
			// The offending call edge is reported at the caller; flagging
			// the commit-only function's own body would be noise.
			continue
		}
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if callee := staticCallee(pass.TypesInfo, n); callee != nil && commitOnly[callee] {
					pass.Reportf(n.Pos(), "compute-phase code calls commit-only %s: cross-node effects must wait for the commit phase (reachable from a %s root)", callee.Name(), MarkerComputePhase)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if fld := committedFieldWrite(pass.TypesInfo, committed, lhs); fld != nil {
						pass.Reportf(n.Pos(), "compute-phase code writes committed field %s: committed state may only change in the commit phase", fld.Name())
					}
				}
			case *ast.IncDecStmt:
				if fld := committedFieldWrite(pass.TypesInfo, committed, n.X); fld != nil {
					pass.Reportf(n.Pos(), "compute-phase code writes committed field %s: committed state may only change in the commit phase", fld.Name())
				}
			}
			return true
		})
	}
	return nil
}

// staticCallee resolves a call expression to the function or method
// object it statically invokes, or nil for dynamic calls, conversions
// and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// committedFieldWrite resolves an assignment target and returns the
// committed field it writes, or nil. The selector chain's outermost
// field decides: `n.seqNext[node]++` writes field seqNext.
func committedFieldWrite(info *types.Info, committed map[*types.Var]bool, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && committed[v] {
					return v
				}
			}
			expr = e.X
		default:
			return nil
		}
	}
}
