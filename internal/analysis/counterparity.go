package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// CounterParity keeps the observability surface and the instrumentation
// from drifting apart.
//
// internal/obs declares the counter space (Kind), the stall taxonomy
// (StallKind), their stable exported names (String) and their pipeline
// grouping (Stage); internal/telemetry exports the whole space to the
// Prometheus endpoint; core/noc/fault/watchdog increment the counters.
// Nothing ties those four layers together: a Kind added without a name
// misprints as "kind(31)", one missing from Stage silently lands in the
// fault group, and a counter nobody increments exports a forever-zero
// gauge that reads as "no faults" instead of "not wired".
//
// The analyzer checks, inside internal/obs:
//
//   - the Kind String() names array has exactly numKinds entries, and
//     the StallKind String() array exactly numStallKinds
//   - every Kind constant appears in a Stage() case clause; only kinds
//     whose exported name starts with "fault." may fall through to the
//     StageFault default
//   - the KStall* Kind block is contiguous and exactly numStallKinds
//     long, so StallKind.Kind()'s additive mapping stays total
//
// inside internal/telemetry:
//
//   - the package references obs.NumKinds and obs.NumStallKinds — the
//     export loops must iterate the full space, so new counters appear
//     on the endpoint without a telemetry change
//
// and across the whole tree (Finish, suite runs only): every Kind and
// StallKind constant must be referenced somewhere outside its own
// declaration, String and Stage — an obs-internal binding (BindRouter,
// BindNode) or a user-package increment both count. KStall* kinds are
// reached through StallKind.Kind(), so a use of the corresponding
// StallKind constant covers them. The whole-tree check arms only when
// core, noc, fault, watchdog and telemetry were all analyzed in the same
// run, so partial loads (fixtures, single-package runs) stay silent.
var CounterParity = &Analyzer{
	Name:   "counterparity",
	Doc:    "verify obs counters, their names, stages, telemetry export and instrumentation sites stay in one-to-one correspondence",
	Run:    runCounterParity,
	Finish: finishCounterParity,
}

// obsPkgPath is shared with obsguard.go.
const telemetryPkgPath = "gonoc/internal/telemetry"

// parityUserPkgs are the packages that must have been analyzed before
// the whole-tree never-used check may fire.
var parityUserPkgs = []string{
	"gonoc/internal/core",
	"gonoc/internal/noc",
	"gonoc/internal/fault",
	"gonoc/internal/watchdog",
	telemetryPkgPath,
}

func runCounterParity(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, "_test") {
		return nil
	}
	base := basePkgPath(pass.PkgPath)
	pass.Facts.Set("par.analyzed:"+base, "")
	if base == obsPkgPath {
		checkObsDecls(pass)
	}
	if base == telemetryPkgPath {
		checkTelemetryExport(pass)
	}
	recordKindUses(pass)
	return nil
}

// lookupConstValue resolves a package-scope integer constant.
func lookupConstValue(pkg *types.Package, name string) (int64, bool) {
	c, ok := pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(c.Val()))
}

// enumConsts returns the package-scope constants of the named local
// type, sorted by value.
func enumConsts(pkg *types.Package, typeName string) []*types.Const {
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pkg || named.Obj().Name() != typeName {
			continue
		}
		out = append(out, c)
	}
	// scope.Names() is sorted by name; re-sort by declared value so the
	// positional names array lines up.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, _ := constant.Int64Val(constant.ToInt(out[j-1].Val()))
			b, _ := constant.Int64Val(constant.ToInt(out[j].Val()))
			if a <= b {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// methodDecl finds the declaration of receiverType.name in the
// package's production files.
func methodDecl(pass *Pass, receiverType, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name {
				continue
			}
			if recvTypeName(fd) == receiverType {
				return fd
			}
		}
	}
	return nil
}

// namesArray finds the first [...]string composite literal in the method
// body and returns its element values and the literal's position.
func namesArray(pass *Pass, fd *ast.FuncDecl) ([]string, token.Pos) {
	var names []string
	pos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		arr, ok := pass.TypesInfo.TypeOf(lit).Underlying().(*types.Array)
		if !ok || !isStringType(arr.Elem()) {
			return true
		}
		pos = lit.Pos()
		for _, elt := range lit.Elts {
			if bl, ok := elt.(*ast.BasicLit); ok && bl.Kind == token.STRING {
				if s, err := strconv.Unquote(bl.Value); err == nil {
					names = append(names, s)
					continue
				}
			}
			names = append(names, "")
		}
		return false
	})
	return names, pos
}

// checkObsDecls runs the in-package structural checks over internal/obs
// (or an obs fixture) and exports the declaration facts the Finish pass
// consumes.
func checkObsDecls(pass *Pass) {
	numKinds, haveNumKinds := lookupConstValue(pass.Pkg, "numKinds")
	kinds := enumConsts(pass.Pkg, "Kind")
	var kindNames []string

	if haveNumKinds {
		if fd := methodDecl(pass, "Kind", "String"); fd != nil {
			names, pos := namesArray(pass, fd)
			kindNames = names
			if int64(len(names)) != numKinds {
				pass.Reportf(pos, "Kind String() names array has %d entries but numKinds is %d: every counter needs a stable exported name", len(names), numKinds)
			}
		}
		if fd := methodDecl(pass, "Kind", "Stage"); fd != nil {
			covered := map[*types.Const]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					ast.Inspect(e, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
								covered[c] = true
							}
						}
						return true
					})
				}
				return true
			})
			for _, c := range kinds {
				if c.Name() == "numKinds" || covered[c] {
					continue
				}
				v, _ := constant.Int64Val(constant.ToInt(c.Val()))
				if int(v) < len(kindNames) && strings.HasPrefix(kindNames[v], "fault.") {
					continue // StageFault default is the fault kinds' home
				}
				pass.Reportf(c.Pos(), "Kind %s is not classified in Stage(): add a case clause — only fault.* kinds may fall through to the StageFault default", c.Name())
			}
		}
	}

	if numStall, ok := lookupConstValue(pass.Pkg, "numStallKinds"); ok {
		if fd := methodDecl(pass, "StallKind", "String"); fd != nil {
			names, pos := namesArray(pass, fd)
			if int64(len(names)) != numStall {
				pass.Reportf(pos, "StallKind String() names array has %d entries but numStallKinds is %d: every stall cause needs a stable exported name", len(names), numStall)
			}
		}
		// KStall* must be a contiguous block exactly numStallKinds long:
		// StallKind.Kind() maps additively from KStallCreditStarved.
		var stallKinds []*types.Const
		for _, c := range kinds {
			if strings.HasPrefix(c.Name(), "KStall") {
				stallKinds = append(stallKinds, c)
			}
		}
		if len(stallKinds) > 0 {
			first, _ := constant.Int64Val(constant.ToInt(stallKinds[0].Val()))
			last, _ := constant.Int64Val(constant.ToInt(stallKinds[len(stallKinds)-1].Val()))
			switch {
			case int64(len(stallKinds)) != numStall:
				pass.Reportf(stallKinds[0].Pos(), "found %d KStall* Kind constants but numStallKinds is %d: the stall-counter block and the StallKind enum must stay in lockstep", len(stallKinds), numStall)
			case last-first+1 != int64(len(stallKinds)):
				pass.Reportf(stallKinds[0].Pos(), "the KStall* Kind block is not contiguous: StallKind.Kind() maps additively from %s, so interleaving other kinds breaks the mapping", stallKinds[0].Name())
			}
		}
	}

	for _, c := range kinds {
		if c.Name() == "numKinds" {
			continue
		}
		pass.Facts.Set("par.kind:"+c.Name(), encodePos(pass.Fset.Position(c.Pos())))
	}
	for _, c := range enumConsts(pass.Pkg, "StallKind") {
		if c.Name() == "numStallKinds" {
			continue
		}
		pass.Facts.Set("par.stall:"+c.Name(), encodePos(pass.Fset.Position(c.Pos())))
	}
}

// checkTelemetryExport requires the telemetry package to iterate the
// full counter space via the exported size constants.
func checkTelemetryExport(pass *Pass) {
	want := map[string]bool{"NumKinds": false, "NumStallKinds": false}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
				return true
			}
			if _, tracked := want[obj.Name()]; tracked {
				want[obj.Name()] = true
			}
			return true
		})
	}
	for _, name := range []string{"NumKinds", "NumStallKinds"} {
		if !want[name] {
			pass.Reportf(pass.Files[0].Name.Pos(), "telemetry never references obs.%s: export loops must iterate the full counter space so new counters appear on the endpoint automatically", name)
		}
	}
}

// recordKindUses records, for every package, which obs Kind/StallKind
// constants its production code references — excluding the String and
// Stage pretty-printers and the declarations themselves, which name
// every constant by construction.
func recordKindUses(pass *Pass) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil &&
				(fd.Name.Name == "String" || fd.Name.Name == "Stage") &&
				basePkgPath(pass.PkgPath) == obsPkgPath {
				continue
			}
			ast.Inspect(d, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				c, ok := pass.TypesInfo.Uses[id].(*types.Const)
				if !ok {
					return true
				}
				named, ok := c.Type().(*types.Named)
				if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPkgPath {
					return true
				}
				switch named.Obj().Name() {
				case "Kind", "StallKind":
					pass.Facts.Set("par.used:"+c.Name(), "")
				}
				return true
			})
		}
	}
}

// finishCounterParity reports counters nobody increments. It arms only
// when the whole instrumented tree was analyzed in this run.
func finishCounterParity(facts *Facts, report func(Diagnostic)) {
	for _, pkg := range parityUserPkgs {
		if !facts.Has("par.analyzed:" + pkg) {
			return
		}
	}
	for _, key := range facts.Keys("par.kind:") {
		name := strings.TrimPrefix(key, "par.kind:")
		if facts.Has("par.used:" + name) {
			continue
		}
		if strings.HasPrefix(name, "KStall") && facts.Has("par.used:"+strings.TrimPrefix(name, "K")) {
			continue // reached through StallKind.Kind()
		}
		pos, _ := facts.Get(key)
		report(Diagnostic{
			Pos:     decodePos(pos),
			Message: fmt.Sprintf("obs counter %s is declared and named but never incremented or bound anywhere in the tree: wire it into the instrumentation or delete it", name),
		})
	}
	for _, key := range facts.Keys("par.stall:") {
		name := strings.TrimPrefix(key, "par.stall:")
		if facts.Has("par.used:" + name) {
			continue
		}
		pos, _ := facts.Get(key)
		report(Diagnostic{
			Pos:     decodePos(pos),
			Message: fmt.Sprintf("obs stall cause %s is declared and named but never attributed anywhere in the tree: wire it into the stall-attribution path or delete it", name),
		})
	}
}

// encodePos flattens a position into a fact value.
func encodePos(p token.Position) string {
	return fmt.Sprintf("%s\x00%d\x00%d", p.Filename, p.Line, p.Column)
}

// decodePos reverses encodePos.
func decodePos(s string) token.Position {
	parts := strings.SplitN(s, "\x00", 3)
	if len(parts) != 3 {
		return token.Position{Filename: s}
	}
	line, _ := strconv.Atoi(parts[1])
	col, _ := strconv.Atoi(parts[2])
	return token.Position{Filename: parts[0], Line: line, Column: col}
}
