// Fixture: a stale suppression. The directive names an analyzer that
// runs in the suite but reports nothing on this line or the next, so the
// suite flags the directive itself for deletion.
package core

type q struct{ n int }

func (x *q) bump() {
	//nocvet:ignore determinism pinned iteration order // want `unused //nocvet:ignore determinism directive: no determinism finding on this line or the next`
	x.n++
}
