// Fixture: a correctly phased tick — compute touches only node-local
// state, commit-side work stays unreachable from the compute root.
package noc

type network struct {
	cycle int //noc:committed
	local []int
}

//noc:compute-phase
func (n *network) compute(id int) {
	n.local[id]++
	n.nodeHelper(id)
}

func (n *network) nodeHelper(id int) {
	n.local[id] += 2
}

//noc:commit-only
func (n *network) commit() {
	n.cycle++
	n.finish()
}

// finish writes committed state but is reachable only from the commit
// side, so it is fine unmarked.
func (n *network) finish() {
	n.cycle++
}
