// Fixture: compute-phase code reaching commit-side work, both directly
// and through an unmarked helper.
package noc

type network struct {
	cycle   int //noc:committed
	scratch []int
}

// compute is a compute-phase root: it may touch node-local state but
// nothing committed.
//
//noc:compute-phase
func (n *network) compute(id int) {
	n.scratch[id]++
	n.cycle++ // want `compute-phase code writes committed field cycle`
	n.helper()
}

// helper is reachable from the compute phase, so its commit-only call is
// a phase violation.
func (n *network) helper() {
	n.commitWork() // want `compute-phase code calls commit-only commitWork`
}

//noc:commit-only
func (n *network) commitWork() {
	n.cycle++
}
