// Fixture: //nocvet:ignore suppresses exactly the analyzer it names —
// standalone above the line, or trailing on the line — and leaves other
// analyzers' findings on the same lines intact.
package core

import "time"

func suppressedStandalone() int64 {
	//nocvet:ignore determinism fixture demonstrates suppression
	return time.Now().UnixNano()
}

func suppressedTrailing() int64 {
	return time.Now().UnixNano() //nocvet:ignore determinism trailing form
}

func wrongName(m map[string]int) int {
	total := 0
	//nocvet:ignore creditflow names an analyzer that did not report here
	for _, v := range m { // want `map iteration writes to total`
		total += v
	}
	return total
}
