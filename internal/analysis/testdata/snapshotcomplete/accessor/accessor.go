// Fixture: the accessor-completeness mode for state-component packages.
// The snapshot triple reaches vc/arbiter/crossbar state only through
// exported functions, so every unexported field needs an exported reader
// and an exported writer (or a //noc:derived marker).
package vc

type VC struct {
	Index int // exported: checked by the owning triple, not here

	covered   int
	writeOnly int // want `unexported field writeOnly of gonoc/internal/vc.VC is never read by an exported function`
	readOnly  int // want `unexported field readOnly of gonoc/internal/vc.VC is never written by an exported function`
	orphan    int // want `unexported field orphan of gonoc/internal/vc.VC is never read or written by an exported function`
	//noc:derived immutable configuration, fixed at construction
	depth int
}

// NewVC writes covered and writeOnly through composite-literal keys.
func NewVC(c int) *VC {
	return &VC{covered: c, writeOnly: c, depth: 8}
}

// Covered reads covered back; readOnly and depth are read here too, but
// readOnly has no exported writer and orphan appears nowhere.
func (v *VC) Covered() int { return v.covered + v.readOnly + v.depth }

// internal helpers do not count as accessor surface.
func (v *VC) touch() { v.orphan++ }
