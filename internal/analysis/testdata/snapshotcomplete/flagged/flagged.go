// Fixture: snapshot-triple coverage gaps in the core contract structs.
// scratch is mutable state the triple never touches; RouterState.dropped
// is saved but not restored (the acceptance-contract tripwire: deleting
// a field's restore assignment must fail the build); vcState.lost is the
// same gap one level down; bad carries a reason-less //noc:derived.
package core

type Router struct {
	covered int
	scratch []int // want `field scratch of Router is not referenced by its save functions` // want `field scratch of Router is not referenced by its restore functions` // want `field scratch of Router is not referenced by its canonical functions`
	//noc:derived per-cycle scratch, rebuilt every tick
	derived []bool
	//noc:derived
	bad int // want `//noc:derived requires a reason`
}

type RouterState struct {
	covered int
	dropped int // want `field dropped of RouterState is not referenced by its restore functions \(RestoreState/restoreVC\)`
	vcs     []vcState
}

type vcState struct {
	g    int
	lost bool // want `field lost of vcState is not referenced by its restore functions \(restoreVC\)`
}

func (r *Router) SaveState() *RouterState {
	s := &RouterState{covered: r.covered, dropped: r.bad}
	s.vcs = append(s.vcs, saveVC(r.covered))
	return s
}

func saveVC(g int) vcState {
	return vcState{g: g, lost: true}
}

func (r *Router) RestoreState(s *RouterState) {
	r.covered = s.covered
	r.bad = 0
	for i := range s.vcs {
		restoreVC(&s.vcs[i])
	}
}

func restoreVC(s *vcState) {
	_ = s.g
}

func (r *Router) AppendCanonical(b []byte) []byte {
	b = append(b, byte(r.covered), byte(r.bad))
	return b
}
