// Fixture: a snapshotcomplete finding waived in place. The directive
// names the analyzer and gives a reason, so the coverage gap on ghost is
// suppressed.
package core

type Router struct {
	covered int
	//nocvet:ignore snapshotcomplete legacy field, coverage tracked in a follow-up
	ghost int
}

type RouterState struct {
	covered int
}

type vcState struct {
	g int
}

func (r *Router) SaveState() *RouterState {
	return &RouterState{covered: r.covered}
}

func saveVC(g int) vcState { return vcState{g: g} }

func (r *Router) RestoreState(s *RouterState) {
	r.covered = s.covered
}

func restoreVC(s *vcState) { _ = s.g }

func (r *Router) AppendCanonical(b []byte) []byte {
	return append(b, byte(r.covered))
}
