// Fixture: a fully covered snapshot contract — every mutable field is
// referenced by each role of the triple, and the one exception carries a
// reasoned //noc:derived marker.
package core

type Router struct {
	covered int
	flags   []bool
	//noc:derived per-cycle scratch, rebuilt every tick
	scratch []int
}

type RouterState struct {
	covered int
	flags   []bool
}

type vcState struct {
	g int
}

func (r *Router) SaveState() *RouterState {
	return &RouterState{
		covered: r.covered,
		flags:   append([]bool(nil), r.flags...),
	}
}

func saveVC(g int) vcState {
	return vcState{g: g}
}

func (r *Router) RestoreState(s *RouterState) {
	r.covered = s.covered
	copy(r.flags, s.flags)
}

func restoreVC(s *vcState) {
	_ = s.g
}

func (r *Router) AppendCanonical(b []byte) []byte {
	b = append(b, byte(r.covered))
	for _, f := range r.flags {
		if f {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}
