// Fixture: the sanctioned obs guard idioms — every call is dominated by
// a nil check of its own receiver expression.
package core

import (
	"gonoc/internal/obs"
)

type router struct {
	obs *obs.RouterObs
}

func (r *router) boundGuard() {
	if o := r.obs; o != nil {
		o.SABypassGrant(0)
	}
}

func (r *router) directGuard() {
	if r.obs != nil {
		r.obs.SABypassGrant(1)
	}
}

func (r *router) earlyReturn() {
	if r.obs == nil {
		return
	}
	r.obs.SABypassGrant(2)
}

func (r *router) compoundCondition(busy bool) {
	if r.obs != nil && busy {
		r.obs.SABypassGrant(3)
	}
}

func (r *router) negatedOr(busy bool) {
	if r.obs == nil || busy {
		return
	}
	r.obs.SABypassGrant(4)
}

type windowed struct {
	win    *obs.Windows
	flight *obs.FlightRecorder
}

func (w *windowed) boundWindow() {
	if win := w.win; win != nil {
		win.AddStall(0, 1, obs.StallArbLost)
	}
}

func (w *windowed) earlyReturnFlight(e obs.Event) {
	f := w.flight
	if f == nil {
		return
	}
	f.Record(e)
}
