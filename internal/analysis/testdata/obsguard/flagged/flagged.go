// Fixture: obs handle calls the guard analyzer must flag — unguarded,
// guarded by the wrong handle, and invoked on a call result.
package core

import (
	"gonoc/internal/obs"
)

type router struct {
	obs *obs.RouterObs
}

type network struct {
	o *obs.Observer
}

func (n *network) Obs() *obs.Observer { return n.o }

func (r *router) unguarded() {
	r.obs.SABypassGrant(0) // want `not dominated by a nil check`
}

func (r *router) unrelatedCondition(busy bool) {
	if busy {
		r.obs.SABypassGrant(1) // want `not dominated by a nil check`
	}
}

func (r *router) wrongHandle(other *router) {
	if other.obs != nil {
		r.obs.SABypassGrant(2) // want `not dominated by a nil check`
	}
}

func (r *router) guardLost() {
	if r.obs != nil {
		r.obs = nil
	}
	r.obs.SABypassGrant(3) // want `not dominated by a nil check`
}

func onCallResult(n *network) {
	n.Obs().RecordFault(0, 0, 0, 0, 0, 0, 0, "") // want `on a call result: bind the handle to a variable`
}

type windowed struct {
	win    *obs.Windows
	flight *obs.FlightRecorder
}

func (w *windowed) unguardedWindow() {
	w.win.AddUtil(0, 1, 2) // want `not dominated by a nil check`
}

func (w *windowed) unguardedFlight(e obs.Event) {
	w.flight.Record(e) // want `not dominated by a nil check`
}

func (w *windowed) crossGuarded(e obs.Event) {
	if w.win != nil {
		w.flight.Record(e) // want `not dominated by a nil check`
	}
}
