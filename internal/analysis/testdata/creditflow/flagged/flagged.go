// Fixture: credit-counter arithmetic outside the audited accessor
// surface.
package core

type router struct {
	credits [][]int
	depth   int
}

type ni struct {
	credits []int
}

func (r *router) acceptCredit(p, v int) {
	r.credits[p][v]++ // want `direct increment of credit counter credits`
}

func (r *router) spend(p, v int) {
	r.credits[p][v]-- // want `direct decrement of credit counter credits`
}

func (r *router) refill(p, v int) {
	r.credits[p][v] += r.depth // want `direct \+= of credit counter credits`
}

func (n *ni) drain(v int) {
	n.credits[v] -= 1 // want `direct -= of credit counter credits`
}
