// Fixture: legal credit handling — mutation inside marked accessors,
// reads anywhere, and local tallies that merely mention credits.
package core

type router struct {
	credits [][]int
	depth   int
}

// creditReturn bundles the mutation with its bounds panic: the accessor
// surface the analyzer admits.
//
//noc:credit-accessor
func (r *router) creditReturn(p, v int) {
	r.credits[p][v]++
	if r.credits[p][v] > r.depth {
		panic("credit overflow")
	}
}

//noc:credit-accessor
func (r *router) creditSpend(p, v int) {
	r.credits[p][v]--
	if r.credits[p][v] < 0 {
		panic("negative credit")
	}
}

// audit only reads the counters, which is always fine.
func (r *router) audit(p int) int {
	total := 0
	for v := range r.credits[p] {
		total += r.credits[p][v]
	}
	return total
}

// wireCredits tallies into a local: locals are not the counters.
func wireCredits(seen []int) int {
	credits := 0
	for range seen {
		credits++
	}
	return credits
}
