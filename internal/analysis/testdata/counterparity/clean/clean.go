// Fixture: a consistent counter space. Names arrays match the sentinel
// counts, every non-fault Kind has a Stage case, and the KStall* block
// is contiguous and exactly numStallKinds long.
package obs

// Kind enumerates the counters.
type Kind int

const (
	KAlpha Kind = iota
	KStallOne
	KStallTwo
	KFaultDropped
	numKinds
)

// Stage groups counters by pipeline stage.
type Stage int

const (
	StageCompute Stage = iota
	StageFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"alpha", "stall.one", "stall.two", "fault.dropped"}
	if int(k) < len(names) {
		return names[k]
	}
	return "kind(?)"
}

// Stage classifies the counter.
func (k Kind) Stage() Stage {
	switch k {
	case KAlpha, KStallOne, KStallTwo:
		return StageCompute
	default:
		return StageFault
	}
}

// StallKind enumerates stall causes.
type StallKind int

const (
	StallOne StallKind = iota
	StallTwo
	numStallKinds
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	names := [...]string{"credit", "xbar"}
	if int(k) < len(names) {
		return names[k]
	}
	return "stall(?)"
}
