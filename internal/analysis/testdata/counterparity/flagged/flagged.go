// Fixture: counter-space drift inside an obs-shaped package. KBeta is
// missing from Stage() (and "beta" is not a fault.* name, so the default
// does not excuse it); the KStall* block has three members against a
// numStallKinds of two; and the StallKind names array is short.
// KFaultDropped has no Stage case either, but its exported name starts
// with "fault." so the StageFault default is its home.
package obs

// Kind enumerates the counters.
type Kind int

const (
	KAlpha Kind = iota
	KBeta     // want `Kind KBeta is not classified in Stage\(\)`
	KStallOne // want `found 3 KStall\* Kind constants but numStallKinds is 2`
	KStallTwo
	KStallThree
	KFaultDropped
	numKinds
)

// Stage groups counters by pipeline stage.
type Stage int

const (
	StageCompute Stage = iota
	StageFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"alpha", "beta", "stall.one", "stall.two", "stall.three", "fault.dropped"}
	if int(k) < len(names) {
		return names[k]
	}
	return "kind(?)"
}

// Stage classifies the counter.
func (k Kind) Stage() Stage {
	switch k {
	case KAlpha, KStallOne, KStallTwo, KStallThree:
		return StageCompute
	default:
		return StageFault
	}
}

// StallKind enumerates stall causes.
type StallKind int

const (
	StallOne StallKind = iota
	StallTwo
	numStallKinds
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	names := [...]string{"one"} // want `StallKind String\(\) names array has 1 entries but numStallKinds is 2`
	if int(k) < len(names) {
		return names[k]
	}
	return "stall(?)"
}
