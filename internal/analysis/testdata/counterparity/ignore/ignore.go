// Fixture: a counterparity finding waived in place. The StallKind names
// array is deliberately short (the second cause is experimental and
// unexported for now); the directive suppresses exactly that finding.
package obs

// Kind enumerates the counters.
type Kind int

const (
	KAlpha Kind = iota
	KStallOne
	KStallTwo
	numKinds
)

// Stage groups counters by pipeline stage.
type Stage int

const (
	StageCompute Stage = iota
	StageFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"alpha", "stall.one", "stall.two"}
	if int(k) < len(names) {
		return names[k]
	}
	return "kind(?)"
}

// Stage classifies the counter.
func (k Kind) Stage() Stage {
	switch k {
	case KAlpha, KStallOne, KStallTwo:
		return StageCompute
	default:
		return StageFault
	}
}

// StallKind enumerates stall causes.
type StallKind int

const (
	StallOne StallKind = iota
	StallTwo
	numStallKinds
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	//nocvet:ignore counterparity the experimental second cause is named in a follow-up
	names := [...]string{"credit"}
	if int(k) < len(names) {
		return names[k]
	}
	return "stall(?)"
}
