// Fixture: the allocation-inducing construct catalogue under a
// //noc:hot-path root, including a transitive offense (helper/box are
// clean to call but not to run) and the panic exemption. cold is
// unreachable from any root, so its map literal is not reported.
package core

import "strings"

type doer interface{ Do() }

type ring struct {
	buf  []int
	m    map[string]int
	sink any
	fn   func() int
	d    doer
}

//noc:hot-path
func (r *ring) tick(n int, name string) {
	if n < 0 {
		panic(strings.Repeat(name, 2)) // panic args are exempt
	}
	r.buf = append(r.buf[:0], r.buf...) // self-append: allowed
	r.buf = make([]int, n)              // want `make with non-constant size allocates`
	tmp := []int{1, 2}                  // want `slice literal allocates`
	r.buf = append(tmp, 3)              // want `append into a different slice allocates`
	r.fn = func() int { return n }      // want `function literal allocates a closure`
	r.sink = n                          // want `assigning int as .* boxes the value on the heap`
	for k := range r.m {                // want `map iteration in the hot path`
		_ = k
	}
	s := name + "!" // want `string concatenation allocates`
	b := []byte(s)  // want `string -> \[\]byte conversion allocates`
	_ = b
	_ = r.fn()  // want `dynamic call through a function value`
	r.d.Do()    // want `dynamic dispatch through interface method Do`
	go r.noop() // want `go statement allocates a goroutine`
	_ = strings.Repeat(s, 2) // want `call into strings \(allocating stdlib package\)`
	p := &ring{} // want `&composite-literal escapes to the heap`
	_ = p
	r.helper()
	_ = box(n)
}

func (r *ring) helper() {
	r.m = make(map[string]int) // want `make\(map\) allocates \(in ring.helper, reachable from //noc:hot-path root ring.tick\)`
}

func (r *ring) noop() {}

func box(v int) any {
	return v // want `returning int as .* boxes the value on the heap \(in box, reachable from //noc:hot-path root ring.tick\)`
}

func cold() map[string]int {
	return map[string]int{"a": 1} // no root reaches cold: not reported
}
