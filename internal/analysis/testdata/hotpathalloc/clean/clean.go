// Fixture: the sanctioned hot-path idioms. Self-append into pre-capped
// buffers, value struct literals, constant-size make outside the hot
// path, and allocating diagnostics guarded behind panic all pass.
package core

import "strconv"

const depth = 8

type ring struct {
	buf []int
	n   int
}

// newRing allocates freely: constructors are not hot-path roots.
func newRing() *ring {
	return &ring{buf: make([]int, 0, depth)}
}

//noc:hot-path
func (r *ring) tick() {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, r.n)
	r.buf = append(r.buf[:0], r.buf...)
	local := ring{n: 1} // value struct literal stays on the stack
	r.n += local.n
	r.advance()
	if r.n > depth*depth {
		panic(badState(r.n)) // exempt: a dying simulator may allocate
	}
}

func (r *ring) advance() { r.n++ }

// badState allocates, but only panic arguments reach it.
func badState(n int) string {
	return "ring out of range: " + strconv.Itoa(n)
}
