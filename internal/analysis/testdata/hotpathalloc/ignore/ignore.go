// Fixture: waived hot-path offenses. A //nocvet:ignore hotpathalloc
// directive consumes the offense at scan time, so the waived construct
// is excused in the function's summary too — tick stays clean even
// though it calls fill.
package core

type ring struct {
	buf []int
	m   map[string]int
}

//noc:hot-path
func (r *ring) tick(n int) {
	//nocvet:ignore hotpathalloc warm-up path: runs once before the steady state begins
	r.buf = make([]int, n)
	r.fill()
}

func (r *ring) fill() {
	//nocvet:ignore hotpathalloc rebuilt only on topology changes, never in the steady state
	r.m = make(map[string]int)
}
