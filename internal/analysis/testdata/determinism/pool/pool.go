// Fixture: the //noc:worker-pool marker sanctions goroutines and selects
// inside the marked function — and only there — in internal/noc.
package noc

// startPool is the sanctioned compute pool.
//
//noc:worker-pool
func startPool(n int, work chan int, done chan struct{}) {
	for i := 0; i < n; i++ {
		go func() {
			select {
			case <-work:
			case <-done:
			}
		}()
	}
}

func rogue() {
	go func() {}() // want `go statement outside the sanctioned worker pool`
}
