// Fixture: everything the determinism analyzer must flag inside a
// simulation package.
package core

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `use of time\.Now in simulation code`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `use of time\.Since in simulation code`
}

func globalDraw() int {
	return rand.Intn(8) // want `use of global math/rand \(math/rand\.Intn\)`
}

func globalSeed() {
	rand.Seed(42) // want `use of global math/rand \(math/rand\.Seed\)`
}

func orderLeak(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration writes to total declared outside the loop`
		total += v
	}
	return total
}

func spawn() {
	go func() {}() // want `go statement outside the sanctioned worker pool`
}

func wait(ch chan int) int {
	select { // want `select statement outside the sanctioned worker pool`
	case v := <-ch:
		return v
	}
}
