// Fixture: deterministic idioms the analyzer must accept in a simulation
// package.
package core

import (
	"math/rand"
	"sort"
)

// seededDraw builds a locally-seeded generator: rand.New/NewSource are
// allowed, and method calls on the resulting *rand.Rand are too.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// sortedIteration is the sanctioned map-iteration pattern: collect the
// keys (writing only membership-order-independent state is still flagged,
// so the collection loop writes through a slice declared inside this
// function but the analyzer's rule is exercised by the flagged fixture),
// sort, then range over the slice.
func sortedIteration(m map[string]int) int {
	keys := make([]string, 0, len(m))
	//nocvet:ignore determinism keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// loopLocal writes only state declared inside the range statement, which
// cannot observe iteration order.
func loopLocal(m map[string]int) {
	for _, v := range m {
		doubled := v * 2
		_ = doubled
	}
}
