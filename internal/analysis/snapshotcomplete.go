package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnapshotComplete proves the snapshot triple covers every mutable field.
//
// The model-checking tier (PR 7) and the ROADMAP's checkpoint/restore
// direction hang on one convention: SaveState/RestoreState/AppendCanonical
// (core.Router) and Snapshot/Restore/AppendCanonical (noc.Network) must
// touch *every* mutable field, or state hashing silently folds distinct
// states together and golden determinism drifts after a restore. A field
// added without snapshot coverage is exactly the heisenbug class runtime
// tests cannot see until a model-check run happens to traverse it.
//
// The analyzer diffs field sets against the triple's bodies using
// go/types:
//
//   - Contract structs (core.Router, noc.Network, noc.NI, and the
//     RouterState/vcState/Snapshot/niState mirrors) must have every field
//     referenced by each of their save, restore and — for the live
//     structs — canonical-encoding functions, or carry an explicit
//     "//noc:derived <reason>" marker stating why the field sits outside
//     the triple (recomputed on restore, immutable configuration,
//     per-cycle scratch, observational-only, accessor-covered).
//   - core's pass also checks the exported fields of vc.VC — the VC state
//     the core triple serializes across the package boundary — against
//     derived facts exported by vc's own pass.
//   - State-component packages (vc, arbiter, crossbar) get an
//     accessor-completeness check instead: every unexported field of
//     their state structs must be readable and writable through exported
//     functions (that is how the core triple reaches them), or be marked
//     //noc:derived.
//
// The mirror-struct checks are the tripwire the acceptance contract
// names: deleting a single field assignment from SaveState/RestoreState
// makes that RouterState field unreferenced in its role and fails the
// build.
var SnapshotComplete = &Analyzer{
	Name: "snapshotcomplete",
	Doc:  "verify every mutable field of the router/network state structs is covered by the Save/Restore/AppendCanonical triple or marked //noc:derived",
	Run:  runSnapshotComplete,
}

// snapRole is one leg of the snapshot triple: the named functions must
// collectively reference every field of the contract struct.
type snapRole struct {
	name  string
	funcs []string
}

// snapOwner is one contract struct checked against its roles.
type snapOwner struct {
	typeName string
	roles    []snapRole
}

// snapExtern is a struct in an imported package whose exported fields
// this package's triple serializes.
type snapExtern struct {
	pkgPath  string
	typeName string
	roles    []snapRole
}

// snapContracts maps a package to its snapshot contracts. The function
// names are the triple as implemented; renaming one is a contract change
// and must be mirrored here.
var snapContracts = map[string]struct {
	owners  []snapOwner
	externs []snapExtern
}{
	"gonoc/internal/core": {
		owners: []snapOwner{
			{typeName: "Router", roles: []snapRole{
				{name: "save", funcs: []string{"SaveState", "saveVC"}},
				{name: "restore", funcs: []string{"RestoreState", "restoreVC"}},
				{name: "canonical", funcs: []string{"AppendCanonical"}},
			}},
			{typeName: "RouterState", roles: []snapRole{
				{name: "save", funcs: []string{"SaveState", "saveVC"}},
				{name: "restore", funcs: []string{"RestoreState", "restoreVC"}},
			}},
			{typeName: "vcState", roles: []snapRole{
				{name: "save", funcs: []string{"saveVC"}},
				{name: "restore", funcs: []string{"restoreVC"}},
			}},
		},
		externs: []snapExtern{
			{pkgPath: "gonoc/internal/vc", typeName: "VC", roles: []snapRole{
				{name: "save", funcs: []string{"saveVC"}},
				{name: "restore", funcs: []string{"restoreVC"}},
				{name: "canonical", funcs: []string{"AppendCanonical"}},
			}},
		},
	},
	"gonoc/internal/noc": {
		owners: []snapOwner{
			{typeName: "Network", roles: []snapRole{
				{name: "save", funcs: []string{"Snapshot", "saveNI"}},
				{name: "restore", funcs: []string{"Restore", "restoreNI"}},
				{name: "canonical", funcs: []string{"AppendCanonical", "appendCanonicalNI", "appendCanonicalWindows"}},
			}},
			{typeName: "NI", roles: []snapRole{
				{name: "save", funcs: []string{"saveNI"}},
				{name: "restore", funcs: []string{"restoreNI"}},
				{name: "canonical", funcs: []string{"appendCanonicalNI"}},
			}},
			{typeName: "Snapshot", roles: []snapRole{
				{name: "save", funcs: []string{"Snapshot", "saveNI"}},
				{name: "restore", funcs: []string{"Restore", "restoreNI"}},
			}},
			{typeName: "niState", roles: []snapRole{
				{name: "save", funcs: []string{"saveNI"}},
				{name: "restore", funcs: []string{"restoreNI"}},
			}},
		},
	},
}

// accessorStructs lists, per state-component package, the structs whose
// unexported fields the core/noc triple reaches through accessors.
var accessorStructs = map[string][]string{
	"gonoc/internal/vc":       {"VC"},
	"gonoc/internal/arbiter":  {"RoundRobin", "Bypassed"},
	"gonoc/internal/crossbar": {"Baseline", "Protected"},
}

func runSnapshotComplete(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, "_test") {
		return nil
	}
	base := basePkgPath(pass.PkgPath)
	derived := collectDerived(pass)
	pass.Facts.Set("snap.analyzed:"+base, "")

	if contract, ok := snapContracts[base]; ok {
		decls := snapFuncDecls(pass)
		for _, owner := range contract.owners {
			st, pos := lookupStruct(pass.Pkg, pass.Files, owner.typeName)
			if st == nil {
				continue // fixture subset: struct not modeled
			}
			checkOwner(pass, owner, st, pos, decls, func(f *types.Var) (string, bool) {
				r, ok := derived[f]
				return r, ok
			}, owner.typeName, false)
		}
		for _, ext := range contract.externs {
			if !pass.Facts.Has("snap.analyzed:" + ext.pkgPath) {
				continue // dependency not in this run: derived facts unavailable
			}
			imp := importedPackage(pass.Pkg, ext.pkgPath)
			if imp == nil {
				continue
			}
			obj, _ := imp.Scope().Lookup(ext.typeName).(*types.TypeName)
			if obj == nil {
				continue
			}
			st, _ := obj.Type().Underlying().(*types.Struct)
			if st == nil {
				continue
			}
			qual := ext.pkgPath + "." + ext.typeName
			checkOwner(pass, snapOwner{typeName: qual, roles: ext.roles}, st, obj.Pos(), decls,
				func(f *types.Var) (string, bool) {
					return pass.Facts.Get("snap.derived:" + qual + "." + f.Name())
				}, qual, true)
		}
	}

	if structs, ok := accessorStructs[base]; ok {
		checkAccessors(pass, structs, derived)
	}
	return nil
}

// collectDerived gathers the package's //noc:derived fields, reporting
// reason-less markers, and exports each as a fact keyed by its qualified
// name so dependent packages' passes can consult it.
func collectDerived(pass *Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	base := basePkgPath(pass.PkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				reason, found := markerReason(field.Doc, MarkerDerived)
				if !found {
					reason, found = markerReason(field.Comment, MarkerDerived)
				}
				if !found {
					continue
				}
				if reason == "" {
					pass.Reportf(field.Pos(), "%s requires a reason: \"%s <why this field sits outside the snapshot triple>\"", MarkerDerived, MarkerDerived)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[obj] = reason
						pass.Facts.Set("snap.derived:"+base+"."+ts.Name.Name+"."+name.Name, reason)
					}
				}
			}
			return true
		})
	}
	return out
}

// snapFuncDecls indexes the package's production function declarations
// by name (methods and plain functions alike — the triple's names are
// unique within their packages).
func snapFuncDecls(pass *Pass) map[string][]*ast.FuncDecl {
	out := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out[fd.Name.Name] = append(out[fd.Name.Name], fd)
			}
		}
	}
	return out
}

// lookupStruct finds a named struct type in the package and returns its
// field set and declaration position.
func lookupStruct(pkg *types.Package, files []*ast.File, name string) (*types.Struct, token.Pos) {
	obj, _ := pkg.Scope().Lookup(name).(*types.TypeName)
	if obj == nil {
		return nil, token.NoPos
	}
	st, _ := obj.Type().Underlying().(*types.Struct)
	return st, obj.Pos()
}

// importedPackage finds a direct or transitive import by path.
func importedPackage(pkg *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := find(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return find(pkg)
}

// checkOwner verifies one contract struct against its roles: every field
// must be referenced by each role's functions or be derived. For extern
// structs only exported fields are checked (unexported ones are reached
// through accessors and checked by the accessor-completeness pass in
// their own package).
func checkOwner(pass *Pass, owner snapOwner, st *types.Struct, structPos token.Pos,
	decls map[string][]*ast.FuncDecl, derivedReason func(*types.Var) (string, bool),
	display string, exportedOnly bool) {

	fieldSet := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fieldSet[st.Field(i)] = true
	}
	for _, role := range owner.roles {
		covered := map[*types.Var]bool{}
		for _, name := range role.funcs {
			fds, ok := decls[name]
			if !ok {
				pass.Reportf(structPos, "snapshot contract for %s: %s function %s not found in this package — the triple and the contract table (internal/analysis/snapshotcomplete.go) must stay in sync", display, role.name, name)
				continue
			}
			for _, fd := range fds {
				collectFieldRefs(pass.TypesInfo, fd, fieldSet, covered)
			}
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if exportedOnly && !f.Exported() {
				continue
			}
			if covered[f] {
				continue
			}
			if _, ok := derivedReason(f); ok {
				continue
			}
			pos := f.Pos()
			if pos == token.NoPos {
				pos = structPos
			}
			pass.Reportf(pos, "field %s of %s is not referenced by its %s functions (%s): cover it in the snapshot triple or mark it %s <reason>",
				f.Name(), display, role.name, strings.Join(role.funcs, "/"), MarkerDerived)
		}
	}
}

// collectFieldRefs records every field of fieldSet referenced anywhere
// in the function body — selectors, composite-literal keys, anything the
// type-checker resolved to the field object.
func collectFieldRefs(info *types.Info, fd *ast.FuncDecl, fieldSet, covered map[*types.Var]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && fieldSet[v] {
				covered[v] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && fieldSet[v] {
					covered[v] = true
				}
			}
		}
		return true
	})
}

// checkAccessors runs the accessor-completeness mode: every unexported
// field of the listed structs must be read and written by at least one
// exported function each, or carry //noc:derived. Reads and writes are
// classified syntactically: assignment/inc-dec targets and keyed
// composite-literal entries are writes, every other resolved reference
// is a read.
func checkAccessors(pass *Pass, structNames []string, derived map[*types.Var]string) {
	fieldSet := map[*types.Var]string{} // field -> owning struct name
	type fieldRec struct {
		v     *types.Var
		owner string
	}
	var ordered []fieldRec
	for _, name := range structNames {
		st, _ := lookupStruct(pass.Pkg, pass.Files, name)
		if st == nil {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Exported() {
				continue
			}
			fieldSet[f] = name
			ordered = append(ordered, fieldRec{f, name})
		}
	}
	if len(fieldSet) == 0 {
		return
	}

	reads := map[*types.Var]bool{}
	writes := map[*types.Var]bool{}
	writeNodes := map[ast.Node]bool{} // exact nodes consumed as write targets
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if v, node := fieldWriteTarget(pass.TypesInfo, lhs); v != nil && fieldSet[v] != "" {
							writes[v] = true
							writeNodes[node] = true
							if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
								reads[v] = true // compound assignment reads too
							}
						}
					}
				case *ast.IncDecStmt:
					if v, node := fieldWriteTarget(pass.TypesInfo, n.X); v != nil && fieldSet[v] != "" {
						writes[v] = true
						reads[v] = true
						writeNodes[node] = true
					}
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						id, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && fieldSet[v] != "" {
							writes[v] = true
							writeNodes[id] = true
						}
					}
				}
				return true
			})
			// Second sweep: everything resolved to a tracked field that
			// was not consumed as a write target counts as a read.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if writeNodes[n] {
						return true
					}
					if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && fieldSet[v] != "" {
						reads[v] = true
					}
				case *ast.SelectorExpr:
					if writeNodes[n] {
						return true
					}
					if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
						if v, ok := sel.Obj().(*types.Var); ok && fieldSet[v] != "" && !writeNodes[n] {
							reads[v] = true
						}
					}
				}
				return true
			})
		}
	}

	sort.Slice(ordered, func(i, j int) bool { return ordered[i].v.Pos() < ordered[j].v.Pos() })
	for _, rec := range ordered {
		if _, ok := derived[rec.v]; ok {
			continue
		}
		var missing string
		switch {
		case !reads[rec.v] && !writes[rec.v]:
			missing = "read or written"
		case !reads[rec.v]:
			missing = "read"
		case !writes[rec.v]:
			missing = "written"
		default:
			continue
		}
		pass.Reportf(rec.v.Pos(), "unexported field %s of %s.%s is never %s by an exported function: the snapshot triple can only reach it through accessors — add one or mark it %s <reason>",
			rec.v.Name(), basePkgPath(pass.PkgPath), rec.owner, missing, MarkerDerived)
	}
}

// fieldWriteTarget resolves an assignment target to the outermost struct
// field it writes and the AST node naming it: x.f[i] = v writes f.
func fieldWriteTarget(info *types.Info, expr ast.Expr) (*types.Var, ast.Node) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v, ast.Node(e)
				}
			}
			expr = e.X
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && v.IsField() {
				return v, ast.Node(e)
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}
