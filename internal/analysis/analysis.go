// Package analysis is gonoc's invariant linter framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface the nocvet analyzers are written against.
//
// The repository's headline guarantees — bit-exact parallel stepping and
// credit-conserving fault recovery — rest on coding rules ("no wall-clock
// time in simulation code", "credit counters change only through the
// audited accessors") that ordinary go vet cannot express. Each rule is a
// *Analyzer here; cmd/nocvet runs the whole suite over the module and
// exits non-zero on findings, so CI mechanically enforces what would
// otherwise be convention.
//
// The framework deliberately mirrors go/analysis: an Analyzer has a Name,
// a Doc string and a Run function receiving a *Pass with the package's
// syntax, type information and a Report sink. Porting the analyzers to
// the real x/tools framework, should the dependency ever become
// available, is a mechanical change.
//
// # Suppression
//
// A finding can be waived in place with
//
//	//nocvet:ignore <analyzer> <reason>
//
// placed on the offending line or alone on the line directly above it.
// The directive names exactly one analyzer; other analyzers still report
// on that line. The reason is required — an unexplained waiver is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and //nocvet:ignore
	// directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description: the rule, and which guarantee
	// it protects.
	Doc string
	// Run executes the check over one package, reporting findings
	// through pass.Report. It returns an error only for internal
	// failures, not for findings.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file of the package.
	Fset *token.FileSet
	// Files is the package's syntax, including in-package _test.go
	// files. External (package foo_test) test files form their own Pass.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the import path the analyzers scope on. For external
	// test packages it is the package under test's path plus "_test";
	// fixture packages may carry a fake path.
	PkgPath string
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violation and the fix.
	Message string
}

// String formats the finding the way cmd/nocvet prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// ignoreDirective is the parsed form of a //nocvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

// IgnorePrefix is the suppression directive's comment prefix.
const IgnorePrefix = "//nocvet:ignore"

// parseIgnores extracts every //nocvet:ignore directive of the files,
// keyed by (filename, line) for both the directive's own line and, for a
// directive standing alone on its line, the line below it.
func parseIgnores(fset *token.FileSet, files []*ast.File) (byLine map[string]map[int][]ignoreDirective, malformed []Diagnostic) {
	byLine = make(map[string]map[int][]ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "nocvet",
						Message:  "malformed //nocvet:ignore: want \"//nocvet:ignore <analyzer> <reason>\"",
					})
					continue
				}
				d := ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
				m := byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]ignoreDirective)
					byLine[pos.Filename] = m
				}
				// The directive covers its own line (trailing form) and
				// the line below it (standalone form).
				m[pos.Line] = append(m[pos.Line], d)
				m[pos.Line+1] = append(m[pos.Line+1], d)
			}
		}
	}
	return byLine, malformed
}

// RunAnalyzers executes the analyzers over the package and returns the
// surviving findings: //nocvet:ignore-suppressed findings are dropped,
// and malformed directives are themselves reported. Findings are sorted
// by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	ignores, malformed := parseIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(ignores, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// suppressed reports whether an ignore directive for d's analyzer covers
// d's line.
func suppressed(ignores map[string]map[int][]ignoreDirective, d Diagnostic) bool {
	for _, dir := range ignores[d.Pos.Filename][d.Pos.Line] {
		if dir.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}
