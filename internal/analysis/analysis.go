// Package analysis is gonoc's invariant linter framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface the nocvet analyzers are written against.
//
// The repository's headline guarantees — bit-exact parallel stepping and
// credit-conserving fault recovery — rest on coding rules ("no wall-clock
// time in simulation code", "credit counters change only through the
// audited accessors") that ordinary go vet cannot express. Each rule is a
// *Analyzer here; cmd/nocvet runs the whole suite over the module and
// exits non-zero on findings, so CI mechanically enforces what would
// otherwise be convention.
//
// The framework deliberately mirrors go/analysis: an Analyzer has a Name,
// a Doc string and a Run function receiving a *Pass with the package's
// syntax, type information and a Report sink. Porting the analyzers to
// the real x/tools framework, should the dependency ever become
// available, is a mechanical change. Cross-package checks use a
// string-keyed fact store instead of x/tools' typed facts: packages are
// analyzed in dependency order, so a pass can read the facts its
// dependencies exported, and an optional Finish hook runs once after
// every package for whole-program checks (counter parity).
//
// # Suppression
//
// A finding can be waived in place with
//
//	//nocvet:ignore <analyzer> <reason>
//
// placed on the offending line or alone on the line directly above it.
// The directive names exactly one analyzer; other analyzers still report
// on that line. The reason is required — an unexplained waiver is itself
// reported. In suite runs (RunSuite, which is what cmd/nocvet uses) a
// directive that suppresses nothing is itself a finding, so waivers
// cannot silently outlive the code they excused.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and //nocvet:ignore
	// directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description: the rule, and which guarantee
	// it protects.
	Doc string
	// Run executes the check over one package, reporting findings
	// through pass.Report. It returns an error only for internal
	// failures, not for findings.
	Run func(pass *Pass) error
	// Finish, if non-nil, runs once per suite after every package's Run
	// completed, reporting whole-program findings from the facts the
	// Runs recorded. Finish findings are still waivable at their line.
	// Single-package drivers (RunAnalyzers) do not call Finish.
	Finish func(facts *Facts, report func(Diagnostic))
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file of the package.
	Fset *token.FileSet
	// Files is the package's syntax, including in-package _test.go
	// files. External (package foo_test) test files form their own Pass.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the import path the analyzers scope on. For external
	// test packages it is the package under test's path plus "_test";
	// fixture packages may carry a fake path.
	PkgPath string
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Facts is the suite-wide fact store: writes made here are visible
	// to later packages' passes and to Finish hooks. Never nil.
	Facts *Facts

	ignores *ignoreSet
	report  func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Waived reports whether a //nocvet:ignore directive for this pass's
// analyzer covers pos, marking the directive as used. Analyzers whose
// verdicts feed cross-package facts (hotpathalloc function summaries)
// call this at would-be findings, so a waived construct is excused
// everywhere, not just at its own line.
func (p *Pass) Waived(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.ignores.waive(p.Analyzer.Name, position.Filename, position.Line)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violation and the fix.
	Message string
}

// String formats the finding the way cmd/nocvet prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Facts is the cross-package key/value store threaded through a suite
// run. Keys are plain strings (analyzers prefix their own namespace,
// e.g. "alloc:" or "derived:") so facts survive the loader's per-variant
// re-type-checking — types.Object identities differ between variants,
// qualified names do not.
type Facts struct {
	m map[string]string
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: map[string]string{}} }

// Set records key = value, overwriting any previous value.
func (f *Facts) Set(key, value string) { f.m[key] = value }

// Get returns the value recorded for key.
func (f *Facts) Get(key string) (string, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Has reports whether key was recorded.
func (f *Facts) Has(key string) bool {
	_, ok := f.m[key]
	return ok
}

// Keys returns the sorted keys beginning with prefix.
func (f *Facts) Keys(prefix string) []string {
	var out []string
	for k := range f.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ignoreDirective is the parsed form of a //nocvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	fired    bool // suppressed at least one finding
}

// ignoreSet is every directive of one package, indexed for lookup and
// retained in declaration order for unused-directive reporting.
type ignoreSet struct {
	byLine    map[string]map[int][]*ignoreDirective
	all       []*ignoreDirective
	malformed []Diagnostic
}

// IgnorePrefix is the suppression directive's comment prefix.
const IgnorePrefix = "//nocvet:ignore"

// parseIgnores extracts every //nocvet:ignore directive of the files,
// keyed by (filename, line) for both the directive's own line and, for a
// directive standing alone on its line, the line below it. Both slots
// share one *ignoreDirective, so a fire through either marks the
// directive used.
func parseIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	s := &ignoreSet{byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "nocvet",
						Message:  "malformed //nocvet:ignore: want \"//nocvet:ignore <analyzer> <reason>\"",
					})
					continue
				}
				d := &ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
				s.all = append(s.all, d)
				m := s.byLine[pos.Filename]
				if m == nil {
					m = map[int][]*ignoreDirective{}
					s.byLine[pos.Filename] = m
				}
				// The directive covers its own line (trailing form) and
				// the line below it (standalone form).
				m[pos.Line] = append(m[pos.Line], d)
				m[pos.Line+1] = append(m[pos.Line+1], d)
			}
		}
	}
	return s
}

// waive reports whether a directive for analyzer covers (file, line),
// marking it used.
func (s *ignoreSet) waive(analyzer, file string, line int) bool {
	if s == nil {
		return false
	}
	for _, d := range s.byLine[file][line] {
		if d.analyzer == analyzer {
			d.fired = true
			return true
		}
	}
	return false
}

// runOn executes the analyzers over one package, dropping suppressed
// findings (which marks the covering directives used) and appending the
// package's malformed directives. The result is unsorted.
func runOn(pkg *Package, analyzers []*Analyzer, facts *Facts, ignores *ignoreSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.TypesInfo,
			Facts:     facts,
			ignores:   ignores,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.waive(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
			kept = append(kept, d)
		}
	}
	return append(kept, ignores.malformed...), nil
}

// RunAnalyzers executes the analyzers over a single package and returns
// the surviving findings: //nocvet:ignore-suppressed findings are
// dropped, and malformed directives are themselves reported. Findings
// are sorted by position. Finish hooks and unused-directive reporting
// need whole-suite context and run only under RunSuite.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := runOn(pkg, analyzers, NewFacts(), parseIgnores(pkg.Fset, pkg.Files))
	if err != nil {
		return nil, err
	}
	sortDiags(diags)
	return diags, nil
}

// RunSuite executes the analyzers over every package — in the order
// given, which Load guarantees is dependency order, so facts flow from
// dependencies to dependents — then runs each analyzer's Finish hook,
// and finally reports every unused //nocvet:ignore directive naming an
// analyzer in the run set: a waiver that suppresses nothing is stale and
// must be deleted. Findings are sorted by position.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	var diags []Diagnostic
	var sets []*ignoreSet
	for _, pkg := range pkgs {
		ig := parseIgnores(pkg.Fset, pkg.Files)
		sets = append(sets, ig)
		d, err := runOn(pkg, analyzers, facts, ig)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(facts, func(d Diagnostic) {
			d.Analyzer = name
			for _, s := range sets {
				if s.waive(name, d.Pos.Filename, d.Pos.Line) {
					return
				}
			}
			diags = append(diags, d)
		})
	}
	inRun := map[string]bool{}
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	for _, s := range sets {
		for _, dir := range s.all {
			if inRun[dir.analyzer] && !dir.fired {
				diags = append(diags, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "nocvet",
					Message: fmt.Sprintf("unused //nocvet:ignore %s directive: no %s finding on this line or the next — delete it",
						dir.analyzer, dir.analyzer),
				})
			}
		}
	}
	sortDiags(diags)
	return diags, nil
}

// sortDiags orders findings by position, then analyzer.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
