package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestParseIgnores covers the directive grammar directly: coverage of the
// directive's own line and the line below, and the malformed
// (reason-less) form being reported instead of honored.
func TestParseIgnores(t *testing.T) {
	src := `package p

func a() {
	//nocvet:ignore determinism standalone with reason
	_ = 1
	_ = 2 //nocvet:ignore creditflow trailing with reason
	//nocvet:ignore determinism
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := parseIgnores(fset, []*ast.File{f})
	malformed := set.malformed
	if len(malformed) != 1 {
		t.Fatalf("malformed directives: got %d, want 1 (%v)", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "malformed //nocvet:ignore") {
		t.Errorf("malformed message = %q", malformed[0].Message)
	}
	if malformed[0].Pos.Line != 7 {
		t.Errorf("malformed directive line = %d, want 7", malformed[0].Pos.Line)
	}

	covers := func(line int, analyzer string) bool {
		for _, d := range set.byLine["ignore.go"][line] {
			if d.analyzer == analyzer {
				return true
			}
		}
		return false
	}
	// Standalone form: own line (4) and the line below (5).
	if !covers(4, "determinism") || !covers(5, "determinism") {
		t.Error("standalone directive must cover its line and the next")
	}
	// Trailing form covers its own line.
	if !covers(6, "creditflow") {
		t.Error("trailing directive must cover its line")
	}
	// The malformed directive must not suppress anything.
	if covers(8, "determinism") {
		t.Error("reason-less directive must not suppress")
	}
}
