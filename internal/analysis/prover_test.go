package analysis

// Tests for the three contract provers added with the scale-out work
// (snapshotcomplete, hotpathalloc, counterparity), the suite-level
// unused-suppression pass, and the meta-checks that run the full
// seven-analyzer suite over every fixture and over this package itself.

import (
	"go/token"
	"strings"
	"testing"
)

func TestSnapshotCompleteFixtures(t *testing.T) {
	runFixture(t, "snapshotcomplete/flagged", "gonoc/internal/core", SnapshotComplete)
	runFixture(t, "snapshotcomplete/clean", "gonoc/internal/core", SnapshotComplete)
	runFixture(t, "snapshotcomplete/ignore", "gonoc/internal/core", SnapshotComplete)
	runFixture(t, "snapshotcomplete/accessor", "gonoc/internal/vc", SnapshotComplete)
}

func TestHotPathAllocFixtures(t *testing.T) {
	runFixture(t, "hotpathalloc/flagged", "gonoc/internal/core", HotPathAlloc)
	runFixture(t, "hotpathalloc/clean", "gonoc/internal/core", HotPathAlloc)
	runFixture(t, "hotpathalloc/ignore", "gonoc/internal/core", HotPathAlloc)
}

func TestCounterParityFixtures(t *testing.T) {
	runFixture(t, "counterparity/flagged", "gonoc/internal/obs", CounterParity)
	runFixture(t, "counterparity/clean", "gonoc/internal/obs", CounterParity)
	runFixture(t, "counterparity/ignore", "gonoc/internal/obs", CounterParity)
}

// TestUnusedSuppressionReported runs the full suite via RunSuite — the
// only mode that reports stale directives — over a fixture whose one
// directive suppresses nothing.
func TestUnusedSuppressionReported(t *testing.T) {
	pkg := loadTestFixture(t, "unusedignore", "gonoc/internal/core")
	diags, err := RunSuite([]*Package{pkg}, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	checkWants(t, pkg, diags)
}

// TestCounterParityFinish feeds the Finish hook synthetic facts: the
// whole-tree never-used check cannot run over single-package fixtures
// (fixture imports resolve to the real module), so the cross-package
// logic is exercised directly.
func TestCounterParityFinish(t *testing.T) {
	at := func(line int) string {
		return encodePos(token.Position{Filename: "kinds.go", Line: line, Column: 2})
	}
	facts := NewFacts()
	for _, pkg := range parityUserPkgs {
		facts.Set("par.analyzed:"+pkg, "")
	}
	facts.Set("par.analyzed:gonoc/internal/obs", "")
	facts.Set("par.kind:KUsed", at(1))
	facts.Set("par.kind:KOrphan", at(2))
	facts.Set("par.kind:KStallCredit", at(3))
	facts.Set("par.stall:StallCredit", at(4))
	facts.Set("par.stall:StallOrphan", at(5))
	facts.Set("par.used:KUsed", "")
	facts.Set("par.used:StallCredit", "")

	var got []Diagnostic
	finishCounterParity(facts, func(d Diagnostic) { got = append(got, d) })

	wantNames := map[string]bool{"KOrphan": false, "StallOrphan": false}
	for _, d := range got {
		found := false
		for name := range wantNames {
			if strings.Contains(d.Message, name+" ") {
				wantNames[name] = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected finish diagnostic: %s", d)
		}
	}
	for name, hit := range wantNames {
		if !hit {
			t.Errorf("finish never reported %s as unused", name)
		}
	}
	if len(got) != 2 {
		t.Errorf("finish reported %d diagnostics, want 2 (KStallCredit must be covered by the StallCredit use)", len(got))
	}
}

// TestCounterParityFinishGated: with only part of the instrumented tree
// analyzed, the never-used check must stay silent.
func TestCounterParityFinishGated(t *testing.T) {
	facts := NewFacts()
	facts.Set("par.analyzed:gonoc/internal/core", "")
	facts.Set("par.kind:KOrphan", encodePos(token.Position{Filename: "kinds.go", Line: 1}))
	var got []Diagnostic
	finishCounterParity(facts, func(d Diagnostic) { got = append(got, d) })
	if len(got) != 0 {
		t.Errorf("finish fired on a partial run: %v", got)
	}
}

// TestSuiteOverFixtures runs all seven analyzers together over every
// fixture package: foreign analyzers may report on each other's
// fixtures, but none may error or panic.
func TestSuiteOverFixtures(t *testing.T) {
	cases := []struct{ fixture, pkgPath string }{
		{"determinism/flagged", "gonoc/internal/core"},
		{"determinism/clean", "gonoc/internal/core"},
		{"determinism/pool", "gonoc/internal/noc"},
		{"phasesafety/flagged", "gonoc/internal/noc"},
		{"phasesafety/clean", "gonoc/internal/noc"},
		{"obsguard/flagged", "gonoc/internal/core"},
		{"obsguard/clean", "gonoc/internal/core"},
		{"creditflow/flagged", "gonoc/internal/core"},
		{"creditflow/clean", "gonoc/internal/core"},
		{"snapshotcomplete/flagged", "gonoc/internal/core"},
		{"snapshotcomplete/clean", "gonoc/internal/core"},
		{"snapshotcomplete/ignore", "gonoc/internal/core"},
		{"snapshotcomplete/accessor", "gonoc/internal/vc"},
		{"hotpathalloc/flagged", "gonoc/internal/core"},
		{"hotpathalloc/clean", "gonoc/internal/core"},
		{"hotpathalloc/ignore", "gonoc/internal/core"},
		{"counterparity/flagged", "gonoc/internal/obs"},
		{"counterparity/clean", "gonoc/internal/obs"},
		{"counterparity/ignore", "gonoc/internal/obs"},
		{"ignore", "gonoc/internal/core"},
		{"unusedignore", "gonoc/internal/core"},
	}
	for _, c := range cases {
		pkg := loadTestFixture(t, c.fixture, c.pkgPath)
		if _, err := RunAnalyzers(pkg, All()); err != nil {
			t.Errorf("%s: suite errored: %v", c.fixture, err)
		}
	}
}

// TestSuiteSelfCheck loads internal/analysis itself and runs the full
// suite over it: the prover must come up clean on its own source.
func TestSuiteSelfCheck(t *testing.T) {
	root, err := moduleRootOnce()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := Load(root, "", "./internal/analysis")
	if err != nil {
		t.Fatalf("loading internal/analysis: %v", err)
	}
	diags, err := RunSuite(pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("suite is not clean on its own source: %s", d)
	}
}
