package analysis

// All returns the nocvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PhaseSafety, ObsGuard, CreditFlow}
}
