package analysis

// All returns the nocvet analyzer suite in reporting order: the four
// concurrency/determinism analyzers from PR 5, plus the three scale-out
// contract provers (snapshot completeness, hot-path allocation freedom,
// counter parity).
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		PhaseSafety,
		ObsGuard,
		CreditFlow,
		SnapshotComplete,
		HotPathAlloc,
		CounterParity,
	}
}
