package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags nondeterminism sources in simulation packages.
//
// The parallel stepping design (PR 2) promises bit-exact results at any
// worker count, and every experiment is reproducible from its seed. Both
// guarantees die silently the moment simulation code reads the wall
// clock, draws from the globally-seeded math/rand source, lets map
// iteration order leak into simulation state, or spawns its own
// goroutines. Each of those is flagged here:
//
//   - calls to (or references of) time.Now and time.Since;
//   - any use of math/rand's package-level generator (rand.Intn,
//     rand.Float64, rand.Seed, ...). Constructing a locally-seeded
//     generator (rand.New, rand.NewSource, rand.NewZipf) is allowed,
//     though gonoc code should prefer internal/rng;
//   - range statements over maps whose bodies write state declared
//     outside the loop (sort the keys and iterate those instead);
//   - go and select statements anywhere except functions marked
//     //noc:worker-pool in internal/noc — the sanctioned compute-phase
//     pool.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock time, global math/rand, order-dependent map iteration and unsanctioned goroutines in simulation packages",
	Run:  runDeterminism,
}

// globalRandAllowed are the math/rand package-level functions that build
// locally-seeded generators rather than touching the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) error {
	if !inSimScope(pass) {
		return nil
	}
	// Forbidden identifier uses: time.Now/Since and the global math/rand
	// surface. Checking Uses (not just calls) also catches references
	// like `fn := time.Now`.
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		// Package-level functions only; methods (e.g. (*rand.Rand).Intn)
		// have a receiver and are fine.
		if fn.Type().(*types.Signature).Recv() != nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(id.Pos(), "use of time.%s in simulation code: time must come from sim.Cycle so runs are reproducible", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !globalRandAllowed[fn.Name()] {
				pass.Reportf(id.Pos(), "use of global math/rand (%s.%s): draw from a seeded internal/rng stream so runs are reproducible from their seed", fn.Pkg().Path(), fn.Name())
			}
		}
	}

	inNoc := basePkgPath(pass.PkgPath) == nocPackage
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pooled := inNoc && funcHasMarker(fd, MarkerWorkerPool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !pooled {
						pass.Reportf(n.Pos(), "go statement outside the sanctioned worker pool: simulation code must not spawn goroutines (mark the compute pool with %s in internal/noc)", MarkerWorkerPool)
					}
				case *ast.SelectStmt:
					if !pooled {
						pass.Reportf(n.Pos(), "select statement outside the sanctioned worker pool: channel races break bit-exact stepping (mark the compute pool with %s in internal/noc)", MarkerWorkerPool)
					}
				case *ast.RangeStmt:
					checkMapRange(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkMapRange flags a range over a map whose body writes to state
// declared outside the loop: those writes observe Go's randomized map
// order, so the result depends on the iteration order.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Findings anchor at the range statement — the loop is what a
	// //nocvet:ignore directive suppresses — one per written variable.
	reported := map[string]bool{}
	report := func(what string) {
		if !reported[what] {
			reported[what] = true
			pass.Reportf(rng.Pos(), "map iteration writes to %s declared outside the loop: iteration order is nondeterministic — sort the keys and range over the slice instead", what)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := nonLocalWriteTarget(pass, rng, lhs); v != nil {
					report(v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := nonLocalWriteTarget(pass, rng, n.X); v != nil {
				report(v.Name())
			}
		case *ast.SendStmt:
			if v := nonLocalWriteTarget(pass, rng, n.Chan); v != nil {
				report(v.Name())
			}
		}
		return true
	})
}

// nonLocalWriteTarget resolves the root identifier of an assignment
// target and returns its variable object when that variable is declared
// outside the range statement (a non-local write), or nil.
func nonLocalWriteTarget(pass *Pass, rng *ast.RangeStmt, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[e]
			if !ok {
				obj = pass.TypesInfo.Defs[e]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return nil
			}
			if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
				return nil // declared inside the loop (or its header)
			}
			return v
		default:
			return nil
		}
	}
}
