package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsGuard enforces the zero-overhead-when-nil observability contract
// from PR 1.
//
// Hot-path packages hold pre-bound obs handles (*obs.RouterObs,
// *obs.NodeObs, or the raw *obs.Observer / *obs.Metrics / *obs.Tracer /
// *obs.Windows / *obs.FlightRecorder) that are nil when observability is
// disabled — the common case, which
// must cost nothing. Every method call on such a handle must therefore
// be dominated by a nil check of the same expression:
//
//	if o := r.obs; o != nil {
//		o.RCCompute(...)
//	}
//
// The analyzer tracks nil facts through if conditions (including && /
// || combinations) and early returns (`if o == nil { return }`), keyed
// by the receiver's printed expression. Receivers that are themselves
// call results (n.Obs().Emit(...)) can never be proven non-nil; bind
// them to a variable first.
//
// Test files are exempt: tests construct their observers explicitly, so
// a nil handle there is a test bug, not an overhead leak.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "flag obs handle method calls in hot-path packages that are not dominated by a nil check",
	Run:  runObsGuard,
}

// obsGuardedTypes are the obs types whose pointer receivers are nil when
// observability is off.
var obsGuardedTypes = map[string]bool{
	"Observer":       true,
	"RouterObs":      true,
	"NodeObs":        true,
	"Metrics":        true,
	"Tracer":         true,
	"Windows":        true,
	"FlightRecorder": true,
}

const obsPkgPath = "gonoc/internal/obs"

func runObsGuard(pass *Pass) error {
	if !inSimScope(pass) {
		return nil
	}
	g := &obsGuard{pass: pass}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				g.stmts(fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

type obsGuard struct {
	pass *Pass
}

// stmts walks a statement list with env, the set of receiver expressions
// proven non-nil here, accumulating facts from early-return guards.
func (g *obsGuard) stmts(list []ast.Stmt, env map[string]bool) {
	env = copyEnv(env)
	for _, s := range list {
		g.stmt(s, env)
	}
}

func (g *obsGuard) stmt(s ast.Stmt, env map[string]bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			g.stmt(s.Init, env)
		}
		g.exprs(s.Cond, env)
		pos, neg := nilFacts(s.Cond)
		g.stmts(s.Body.List, union(env, pos))
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				g.stmts(e.List, union(env, neg))
			case *ast.IfStmt:
				g.stmt(e, union(env, neg))
			}
		}
		// `if o == nil { return }` proves o for the rest of the block.
		if terminates(s.Body.List) {
			for k := range neg {
				env[k] = true
			}
		}
	case *ast.BlockStmt:
		g.stmts(s.List, env)
	case *ast.ForStmt:
		if s.Init != nil {
			g.stmt(s.Init, env)
		}
		if s.Cond != nil {
			g.exprs(s.Cond, env)
		}
		if s.Post != nil {
			g.stmt(s.Post, copyEnv(env))
		}
		g.stmts(s.Body.List, env)
	case *ast.RangeStmt:
		g.exprs(s.X, env)
		g.stmts(s.Body.List, env)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, env)
		}
		if s.Tag != nil {
			g.exprs(s.Tag, env)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				g.exprs(e, env)
			}
			g.stmts(cc.Body, env)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, env)
		}
		g.stmt(s.Assign, env)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			g.stmts(cc.Body, env)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.exprs(e, env)
		}
		for _, e := range s.Lhs {
			g.exprs(e, env)
			invalidate(env, e)
		}
	case *ast.IncDecStmt:
		g.exprs(s.X, env)
		invalidate(env, s.X)
	case *ast.ExprStmt:
		g.exprs(s.X, env)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.exprs(e, env)
		}
	case *ast.DeferStmt:
		g.exprs(s.Call, env)
	case *ast.GoStmt:
		g.exprs(s.Call, env)
	case *ast.SendStmt:
		g.exprs(s.Chan, env)
		g.exprs(s.Value, env)
	case *ast.LabeledStmt:
		g.stmt(s.Stmt, env)
	case *ast.DeclStmt:
		g.exprs(s, env)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				g.stmt(cc.Comm, copyEnv(env))
			}
			g.stmts(cc.Body, env)
		}
	}
}

// exprs checks every method call on an obs handle inside the node
// against env; function literals inherit the surrounding facts.
func (g *obsGuard) exprs(node ast.Node, env map[string]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.stmts(n.Body.List, env)
			return false
		case *ast.CallExpr:
			g.checkCall(n, env)
		}
		return true
	})
}

// checkCall reports a method call on an obs handle whose receiver is not
// proven non-nil.
func (g *obsGuard) checkCall(call *ast.CallExpr, env map[string]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := g.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	tname := obsHandleType(selection.Recv())
	if tname == "" {
		return
	}
	recv := types.ExprString(sel.X)
	if env[recv] {
		return
	}
	if _, isCall := ast.Unparen(sel.X).(*ast.CallExpr); isCall {
		g.pass.Reportf(call.Pos(), "call to (*obs.%s).%s on a call result: bind the handle to a variable and nil-check it (obs must be zero-overhead when disabled)", tname, sel.Sel.Name)
		return
	}
	g.pass.Reportf(call.Pos(), "call to (*obs.%s).%s not dominated by a nil check of %s: obs handles are nil when observability is off (guard with `if %s != nil`)", tname, sel.Sel.Name, recv, recv)
}

// obsHandleType returns the obs handle type name when t is a pointer to
// one of the guarded obs types, or "".
func obsHandleType(t types.Type) string {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath || !obsGuardedTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}

// nilFacts analyzes a condition and returns the receiver expressions
// proven non-nil when it is true (pos) and when it is false (neg).
func nilFacts(cond ast.Expr) (pos, neg map[string]bool) {
	pos, neg = map[string]bool{}, map[string]bool{}
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			if s, ok := nilComparand(c); ok {
				pos[s] = true
			}
		case token.EQL:
			if s, ok := nilComparand(c); ok {
				neg[s] = true
			}
		case token.LAND:
			lp, _ := nilFacts(c.X)
			rp, _ := nilFacts(c.Y)
			pos = union(lp, rp)
		case token.LOR:
			_, ln := nilFacts(c.X)
			_, rn := nilFacts(c.Y)
			neg = union(ln, rn)
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			neg, pos = nilFacts(c.X)
		}
	}
	return pos, neg
}

// nilComparand returns the printed non-nil side of a comparison against
// nil, if the expression is such a comparison.
func nilComparand(b *ast.BinaryExpr) (string, bool) {
	if isNil(b.Y) && !isNil(b.X) {
		return types.ExprString(ast.Unparen(b.X)), true
	}
	if isNil(b.X) && !isNil(b.Y) {
		return types.ExprString(ast.Unparen(b.Y)), true
	}
	return "", false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a statement list always leaves the
// enclosing block (return, branch, or panic).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyEnv(env map[string]bool) map[string]bool {
	out := make(map[string]bool, len(env))
	for k := range env {
		out[k] = true
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := copyEnv(a)
	for k := range b {
		out[k] = true
	}
	return out
}

// invalidate drops facts about the assigned expression's root identifier:
// reassignment may make a previously-checked handle nil again.
func invalidate(env map[string]bool, target ast.Expr) {
	root := rootIdent(target)
	if root == "" {
		return
	}
	for k := range env {
		if k == root || hasRoot(k, root) {
			delete(env, k)
		}
	}
}

// rootIdent returns the base identifier name of an assignment target.
func rootIdent(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// hasRoot reports whether printed expression k starts with the
// identifier root followed by a selector/index boundary.
func hasRoot(k, root string) bool {
	if len(k) <= len(root) || k[:len(root)] != root {
		return false
	}
	switch k[len(root)] {
	case '.', '[':
		return true
	}
	return false
}
