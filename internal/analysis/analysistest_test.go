package analysis

// This file is the fixture harness: each testdata/<analyzer>/<case>
// directory is loaded as a package under a fake gonoc import path (so it
// lands inside the scopes the analyzers guard) and the diagnostics are
// matched against `// want `regexp`` comments in the fixture source,
// x/tools-analysistest style. A line with no want comment must produce
// no diagnostics; a want comment must be matched by exactly the
// diagnostics on its line.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var moduleRootOnce = sync.OnceValues(func() (string, error) {
	return ModuleRoot()
})

// loadTestFixture loads testdata/<fixture> as a package with the given
// import path, failing the test on load or type errors.
func loadTestFixture(t *testing.T, fixture, pkgPath string) *Package {
	t.Helper()
	root, err := moduleRootOnce()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", fixture)
	pkg, err := LoadFixture(root, dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", fixture, terr)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg
}

// runFixture checks the analyzers' diagnostics over a fixture against its
// want comments.
func runFixture(t *testing.T, fixture, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadTestFixture(t, fixture, pkgPath)
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWants(t, pkg, diags)
}

// wantRe extracts the `// want `regexp“ expectations from a comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// checkWants matches diagnostics against the fixture's want comments by
// (file, line): every want must be hit and every diagnostic expected.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{filepath.Base(pos.Filename), pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := map[key]int{}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				ok = true
				matched[k]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		if matched[k] < len(res) {
			t.Errorf("%s:%d: want %d diagnostic(s) matching %s, matched %d",
				k.file, k.line, len(res), describe(res), matched[k])
		}
	}
}

func describe(res []*regexp.Regexp) string {
	var out []string
	for _, re := range res {
		out = append(out, fmt.Sprintf("%q", re.String()))
	}
	return strings.Join(out, ", ")
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, "determinism/flagged", "gonoc/internal/core", Determinism)
	runFixture(t, "determinism/clean", "gonoc/internal/core", Determinism)
	runFixture(t, "determinism/pool", "gonoc/internal/noc", Determinism)
}

// TestDeterminismScope runs the determinism analyzer over the flagged
// fixture under a non-simulation import path: everything it would flag
// in scope must pass silently out of scope.
func TestDeterminismScope(t *testing.T) {
	pkg := loadTestFixture(t, "determinism/flagged", "gonoc/cmd/noctool")
	diags, err := RunAnalyzers(pkg, []*Analyzer{Determinism})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("determinism reported outside sim scope: %s", d)
	}
}

func TestPhaseSafetyFixtures(t *testing.T) {
	runFixture(t, "phasesafety/flagged", "gonoc/internal/noc", PhaseSafety)
	runFixture(t, "phasesafety/clean", "gonoc/internal/noc", PhaseSafety)
}

func TestObsGuardFixtures(t *testing.T) {
	runFixture(t, "obsguard/flagged", "gonoc/internal/core", ObsGuard)
	runFixture(t, "obsguard/clean", "gonoc/internal/core", ObsGuard)
}

func TestCreditFlowFixtures(t *testing.T) {
	runFixture(t, "creditflow/flagged", "gonoc/internal/core", CreditFlow)
	runFixture(t, "creditflow/clean", "gonoc/internal/core", CreditFlow)
}

// TestIgnoreSuppressesNamedAnalyzerOnly runs the full suite over the
// ignore fixture: a //nocvet:ignore directive must drop findings of
// exactly the analyzer it names — other analyzers still report on the
// covered lines — and a directive missing its reason is itself reported.
func TestIgnoreSuppressesNamedAnalyzerOnly(t *testing.T) {
	runFixture(t, "ignore", "gonoc/internal/core", All()...)
}
