package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CreditFlow gives credit conservation a single audited mutation
// surface.
//
// The network-level invariant (noc.CheckInvariants, asserted per tick
// under the nocassert build tag) proves that for every link
//
//	credits + occupancy + in-flight flits + in-flight credits
//	  + pending grants = Depth
//
// That proof is only as strong as the set of places credits can change.
// This analyzer flags arithmetic mutation (++, --, +=, -=) of any credit
// counter — a variable or field whose name contains "credit" — in
// simulation packages, unless the enclosing function is marked
// //noc:credit-accessor. The accessors bundle the mutation with its
// overflow/underflow panic, so every credit movement is bounds-checked.
//
// Test files are exempt: tests legitimately model upstream credit loops
// of their own.
var CreditFlow = &Analyzer{
	Name: "creditflow",
	Doc:  "flag credit-counter arithmetic outside the //noc:credit-accessor surface",
	Run:  runCreditFlow,
}

func runCreditFlow(pass *Pass) error {
	if !inSimScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || funcHasMarker(fd, MarkerCreditAccessor) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// Function literals do not inherit the accessor
					// marker; they are part of the enclosing function's
					// body and checked with it.
					return true
				case *ast.IncDecStmt:
					if v := creditTarget(pass.TypesInfo, n.X); v != nil {
						pass.Reportf(n.Pos(), "direct %s of credit counter %s outside a %s function: route credit changes through the audited accessors so conservation stays checkable", opWord(n.Tok), v.Name(), MarkerCreditAccessor)
					}
				case *ast.AssignStmt:
					if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
						return true
					}
					for _, lhs := range n.Lhs {
						if v := creditTarget(pass.TypesInfo, lhs); v != nil {
							pass.Reportf(n.Pos(), "direct %s of credit counter %s outside a %s function: route credit changes through the audited accessors so conservation stays checkable", opWord(n.Tok), v.Name(), MarkerCreditAccessor)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// opWord names the mutating operator in the finding.
func opWord(tok token.Token) string {
	switch tok {
	case token.INC:
		return "increment"
	case token.DEC:
		return "decrement"
	case token.ADD_ASSIGN:
		return "+="
	case token.SUB_ASSIGN:
		return "-="
	}
	return tok.String()
}

// creditTarget resolves an assignment target to the credit-counter
// field it mutates, or nil. A target counts when a field on its
// selector/index path has "credit" in its name (case-insensitive):
// r.credits[p][v] and ni.credits[v] both match. Local variables are
// exempt — credit counters live in router and NI state, and locals
// named over credits are tallies, not the counters themselves.
func creditTarget(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && isCreditName(v.Name()) {
					return v
				}
			}
			expr = e.X
		default:
			return nil
		}
	}
}

func isCreditName(name string) bool {
	return strings.Contains(strings.ToLower(name), "credit")
}
