package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The //noc: markers wire the analyzers to the code they guard. Each is
// written on its own line inside a declaration's doc comment (functions)
// or in a struct field's doc or trailing line comment (fields).
const (
	// MarkerWorkerPool sanctions go/select statements inside the marked
	// function: the compute-phase worker pool in internal/noc is the one
	// place simulation code may spawn goroutines.
	MarkerWorkerPool = "//noc:worker-pool"
	// MarkerComputePhase marks a compute-phase entry point: the function
	// (and everything statically reachable from it inside the package)
	// runs concurrently across nodes and must stay node-local.
	MarkerComputePhase = "//noc:compute-phase"
	// MarkerCommitOnly marks a commit-side entry point: it mutates
	// cross-node state and must never be reached from the compute phase.
	MarkerCommitOnly = "//noc:commit-only"
	// MarkerCommitted marks a struct field holding committed cross-node
	// state: compute-phase code must not write it.
	MarkerCommitted = "//noc:committed"
	// MarkerCreditAccessor marks a function as part of the audited
	// credit-mutation surface: credit-counter arithmetic is legal only
	// inside marked functions.
	MarkerCreditAccessor = "//noc:credit-accessor"
	// MarkerHotPath marks a steady-state hot-path root: the function and
	// everything statically reachable from it must be free of
	// allocation-inducing constructs (hotpathalloc).
	MarkerHotPath = "//noc:hot-path"
	// MarkerDerived marks a struct field as deliberately outside part or
	// all of the Save/Restore/AppendCanonical snapshot triple. It takes a
	// mandatory reason: "//noc:derived <reason>" — recomputed on restore,
	// immutable configuration, per-cycle scratch, observational-only, or
	// covered through accessors (snapshotcomplete).
	MarkerDerived = "//noc:derived"
)

// hasMarker reports whether the comment group contains the marker on a
// line of its own.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// markerReason extracts a reason-carrying marker from the comment group:
// a line of the form "<marker> <reason>" (or a bare "<marker>", which is
// malformed for markers requiring a reason). found reports the marker's
// presence; reason is the trailing text, possibly empty.
func markerReason(doc *ast.CommentGroup, marker string) (reason string, found bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker {
			return "", true
		}
		if strings.HasPrefix(text, marker+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, marker)), true
		}
	}
	return "", false
}

// funcHasMarker reports whether the function declaration carries the
// marker in its doc comment.
func funcHasMarker(decl *ast.FuncDecl, marker string) bool {
	return hasMarker(decl.Doc, marker)
}

// markedFuncs returns the package's function objects whose declarations
// carry the marker.
func markedFuncs(pass *Pass, marker string) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !funcHasMarker(fd, marker) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// markedFields returns the package's struct-field objects whose
// declarations carry the marker (in the field's doc comment or trailing
// line comment).
func markedFields(pass *Pass, marker string) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc, marker) && !hasMarker(field.Comment, marker) {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// simPackages are the packages making up the simulated hardware model:
// everything here must be deterministic and race-free under the sharded
// compute phase, so the determinism, obsguard and creditflow analyzers
// scope to this set. internal/stats rides along because the collectors
// feed the bit-exact conformance comparisons.
var simPackages = []string{
	"gonoc/internal/core",
	"gonoc/internal/noc",
	"gonoc/internal/vc",
	"gonoc/internal/arbiter",
	"gonoc/internal/crossbar",
	"gonoc/internal/router",
	"gonoc/internal/ftrouters",
	"gonoc/internal/stats",
}

// nocPackage is the one package whose marked worker pool may use
// goroutines.
const nocPackage = "gonoc/internal/noc"

// basePkgPath strips the external-test suffix, so scoping treats a
// package and its test packages alike.
func basePkgPath(path string) string {
	return strings.TrimSuffix(path, "_test")
}

// inSimScope reports whether the pass's package is one of the simulation
// packages (or one of their test packages).
func inSimScope(pass *Pass) bool {
	p := basePkgPath(pass.PkgPath)
	for _, s := range simPackages {
		if p == s {
			return true
		}
	}
	return false
}
