package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path analyzers scope on. External test
	// packages carry the under-test path plus a "_test" suffix.
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Fset positions for Files.
	Fset *token.FileSet
	// Files is the parsed syntax (with comments).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo is the type-checker output for Files.
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems. Analysis still runs —
	// the checker recovers per-declaration — but findings in broken
	// regions may be incomplete, so drivers surface these.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ModuleRoot locates the enclosing module's directory (the directory of
// go.mod), so loads behave identically from any working directory.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod), nil
}

// Load lists, parses and type-checks the packages matched by patterns
// (with the given build tags, comma- or space-separated, possibly empty),
// including their test files.
//
// Every in-module package — matched or merely depended upon — is
// type-checked from source against one shared importer, so package
// identity is consistent everywhere (a *noc.Network seen through
// internal/fault is the same type as one named directly). Standard
// library dependencies are imported from compiled export data.
//
// Each matched package yields one Package for its GoFiles+TestGoFiles
// and, when present, a second Package for its external (package foo_test)
// test files.
func Load(dir, tags string, patterns ...string) ([]*Package, error) {
	tagArgs := []string{}
	if tags != "" {
		tagArgs = append(tagArgs, "-tags", tags)
	}
	targets, err := goList(dir, append(tagArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	extra := []string{}
	seen := map[string]bool{}
	nTargets := 0
	for _, p := range targets {
		if p.Standard || p.Dir == "" || len(p.GoFiles)+len(p.TestGoFiles)+len(p.XTestGoFiles) == 0 {
			continue
		}
		isTarget[p.ImportPath] = true
		seen[p.ImportPath] = true
		nTargets++
		for _, imps := range [][]string{p.TestImports, p.XTestImports} {
			for _, imp := range imps {
				if !seen[imp] {
					seen[imp] = true
					extra = append(extra, imp)
				}
			}
		}
	}
	if nTargets == 0 {
		return nil, fmt.Errorf("no Go packages matched %v", patterns)
	}
	// -deps emits dependencies before dependents, which is exactly the
	// order source checking needs.
	exportArgs := append([]string{"-export", "-deps"}, tagArgs...)
	exportArgs = append(exportArgs, patterns...)
	exportArgs = append(exportArgs, extra...)
	deps, err := goList(dir, exportArgs...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		exports: exports,
		module:  map[string]*types.Package{},
	}
	ld.imp = &overrideImporter{
		base:     importer.ForCompiler(ld.fset, "gc", ld.lookup),
		override: ld.module,
	}

	// Pass 1: source-check every in-module package (production files
	// only) in dependency order, so all cross-package references share
	// one identity per type.
	var modPkgs []*listPackage
	imports := map[string][]string{}
	for _, p := range deps {
		if p.Standard || p.Dir == "" || len(p.GoFiles) == 0 {
			continue
		}
		modPkgs = append(modPkgs, p)
		imports[p.ImportPath] = p.Imports
		pkg, err := ld.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		ld.module[p.ImportPath] = pkg.Types
	}

	// Pass 2: re-check each target with its in-package test files
	// merged. In-package tests cannot import anything that depends on
	// the package under test (Go rejects the cycle), so the pass-1
	// import identities stay consistent.
	var pkgs []*Package
	for _, p := range modPkgs {
		if !isTarget[p.ImportPath] {
			continue
		}
		files := append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
		pkg, err := ld.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
		if len(p.XTestGoFiles) == 0 {
			continue
		}
		// External test packages may import module packages that
		// themselves import the package under test. Like the go tool,
		// re-check that reverse closure against the test-augmented
		// package so every path agrees on its identity.
		variant := map[string]*types.Package{p.ImportPath: pkg.Types}
		for _, q := range modPkgs {
			if q.ImportPath != p.ImportPath && transitivelyImports(imports, q.ImportPath, p.ImportPath) {
				vimp := &overrideImporter{base: ld.imp, override: variant}
				vpkg, err := ld.checkWith(vimp, q.ImportPath, q.Dir, q.GoFiles)
				if err != nil {
					return nil, fmt.Errorf("%s [%s.test]: %v", q.ImportPath, p.ImportPath, err)
				}
				variant[q.ImportPath] = vpkg.Types
			}
		}
		vimp := &overrideImporter{base: ld.imp, override: variant}
		xpkg, err := ld.checkWith(vimp, p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s [test]: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, xpkg)
	}
	return pkgs, nil
}

// transitivelyImports reports whether package from (transitively)
// imports target, following the production import graph.
func transitivelyImports(imports map[string][]string, from, target string) bool {
	seen := map[string]bool{}
	var walk func(p string) bool
	walk = func(p string) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		for _, imp := range imports[p] {
			if imp == target || walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// loader shares one FileSet and importer across packages. In-module
// packages are resolved from module (filled as source checking
// proceeds, in dependency order); everything else comes from compiled
// export data.
type loader struct {
	fset    *token.FileSet
	exports map[string]string
	module  map[string]*types.Package
	imp     types.Importer
}

// lookup feeds the gc importer the export-data file recorded by go list.
func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// overrideImporter resolves the named packages from memory and everything
// else through the underlying export-data importer.
type overrideImporter struct {
	base     types.Importer
	override map[string]*types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.override[path]; ok {
		return p, nil
	}
	return o.base.Import(path)
}

// check parses and type-checks one package's files against the shared
// importer.
func (ld *loader) check(pkgPath, dir string, fileNames []string) (*Package, error) {
	return ld.checkWith(ld.imp, pkgPath, dir, fileNames)
}

// checkWith parses and type-checks one package's files, resolving
// imports through imp (used for test-variant re-checks).
func (ld *loader) checkWith(imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, ld.fset, files, info) // errors collected above
	return &Package{
		PkgPath:    pkgPath,
		Dir:        dir,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		TypeErrors: typeErrs,
	}, nil
}

// LoadFixture parses and type-checks a single directory of Go files as a
// package with the given (possibly fake) import path — the analysistest
// harness uses this to place fixture packages inside the scopes the
// analyzers guard. Imports resolve against the module's build cache, so
// fixtures may import both standard-library and gonoc packages.
func LoadFixture(moduleRoot, dir, pkgPath string) (*Package, error) {
	// One export run covers the module's own packages plus the handful
	// of standard-library packages fixtures use.
	deps, err := goList(moduleRoot, "-export", "-deps", "./...",
		"time", "math/rand", "sort", "fmt", "os")
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	ld := &loader{fset: token.NewFileSet(), exports: exports}
	ld.imp = importer.ForCompiler(ld.fset, "gc", ld.lookup)
	return ld.check(pkgPath, dir, names)
}
