package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathAlloc turns the AllocsPerRun==0 benchmark pin into a static
// proof.
//
// PR 6's scale-out contract says the steady-state step loop allocates
// nothing: BenchmarkStep's TestStepZeroAllocSteadyState pins
// AllocsPerRun to zero. But a benchmark only sees the paths its traffic
// pattern exercises; a fresh allocation on a rare branch (a fault
// branch, a particular VC state) survives until a profile regresses. The
// analyzer makes the contract structural: functions marked
// //noc:hot-path are roots, and every function statically reachable from
// a root must be free of allocation-inducing constructs:
//
//   - make with a non-constant size, and make of maps/channels
//   - growing append — append whose target differs from its source;
//     self-append (x = append(x, ...) / x = append(x[:0], ...)) is the
//     sanctioned pre-capped-buffer idiom and is allowed
//   - slice, map and &-composite literals (plain value struct literals
//     stay on the stack and are allowed)
//   - function literals (closure capture) and go statements
//   - string concatenation and string<->slice conversions
//   - interface boxing: passing, assigning or returning a non-pointer
//     concrete value as an interface
//   - map iteration (hidden iterator, and nondeterministic order)
//   - dynamic calls — function values and interface methods — which the
//     analyzer cannot see through; waive the call if every dynamic
//     target is known clean
//   - calls into allocation-heavy stdlib packages (fmt, strings,
//     sort, ...); other stdlib calls (sync, sync/atomic, math) are
//     assumed clean
//
// Arguments to panic are exempt: a panicking simulator is already dead,
// so its diagnostics may allocate.
//
// Verdicts propagate: each function's transitive summary ("clean" or the
// first offense with its location) is exported as an "alloc:" fact, so a
// hot-path root in internal/noc proves the internal/core and
// internal/obs functions it calls, not just its own body. Findings are
// reported at the offending construct with the root that reaches it.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "prove functions reachable from //noc:hot-path roots contain no allocation-inducing constructs",
	Run:  runHotPathAlloc,
}

// allocOffense is one allocation-inducing construct.
type allocOffense struct {
	pos    token.Pos
	detail string
}

// allocEdge is one static in-package call.
type allocEdge struct {
	callee *types.Func
	pos    token.Pos
}

// allocFuncInfo accumulates one function's own offenses and call edges.
type allocFuncInfo struct {
	decl *ast.FuncDecl
	name string
	own  []allocOffense
	out  []allocEdge
}

// allocStdlibDeny lists stdlib packages whose entry points allocate as a
// matter of course. Calls into any other non-gonoc package are assumed
// allocation-free (sync, sync/atomic, math, math/bits, ...).
var allocStdlibDeny = map[string]bool{
	"bytes": true, "errors": true, "fmt": true, "io": true,
	"log": true, "os": true, "reflect": true, "regexp": true,
	"sort": true, "strconv": true, "strings": true,
}

func allocDeniedStdlib(path string) bool {
	return allocStdlibDeny[path] || strings.HasPrefix(path, "encoding/")
}

func runHotPathAlloc(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, "_test") {
		return nil
	}

	infos := map[*types.Func]*allocFuncInfo{}
	var order []*types.Func // declaration order, for deterministic facts
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &allocFuncInfo{decl: fd, name: fd.Name.Name}
			if fd.Recv != nil {
				info.name = recvTypeName(fd) + "." + fd.Name.Name
			}
			infos[obj] = info
			order = append(order, obj)
		}
	}
	for obj, info := range infos {
		scanAllocBody(pass, obj, info, infos)
	}

	// Transitive summaries: a function is clean iff its own body and
	// every in-package callee is clean. Cycles resolve optimistically —
	// the offense, if any, is attributed to the function that owns it.
	memo := map[*types.Func]*allocOffense{}
	state := map[*types.Func]int{} // 0 new, 1 visiting, 2 done
	var summarize func(fn *types.Func) *allocOffense
	summarize = func(fn *types.Func) *allocOffense {
		if state[fn] == 2 {
			return memo[fn]
		}
		if state[fn] == 1 {
			return nil
		}
		state[fn] = 1
		info := infos[fn]
		var verdict *allocOffense
		if len(info.own) > 0 {
			verdict = &info.own[0]
		} else {
			for _, e := range info.out {
				if sub := summarize(e.callee); sub != nil {
					verdict = &allocOffense{pos: e.pos, detail: fmt.Sprintf(
						"call to %s which is not allocation-free (%s: %s)",
						infos[e.callee].name, pass.Fset.Position(sub.pos), sub.detail)}
					break
				}
			}
		}
		state[fn] = 2
		memo[fn] = verdict
		return verdict
	}
	for _, fn := range order {
		if v := summarize(fn); v != nil {
			pos := pass.Fset.Position(v.pos)
			pass.Facts.Set("alloc:"+fn.FullName(), fmt.Sprintf("%s: %s", pos, v.detail))
		} else {
			pass.Facts.Set("alloc:"+fn.FullName(), "clean")
		}
	}

	// Report: walk reachability from each marked root and surface every
	// reached function's own offenses, each exactly once.
	roots := markedFuncs(pass, MarkerHotPath)
	var rootOrder []*types.Func
	for fn := range roots {
		if _, ok := infos[fn]; ok {
			rootOrder = append(rootOrder, fn)
		}
	}
	sort.Slice(rootOrder, func(i, j int) bool { return rootOrder[i].Pos() < rootOrder[j].Pos() })
	reported := map[*types.Func]bool{}
	type reachedFunc struct {
		fn   *types.Func
		root *types.Func
	}
	var reached []reachedFunc
	for _, root := range rootOrder {
		stack := []*types.Func{root}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reported[fn] {
				continue
			}
			reported[fn] = true
			reached = append(reached, reachedFunc{fn, root})
			for _, e := range infos[fn].out {
				stack = append(stack, e.callee)
			}
		}
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].fn.Pos() < reached[j].fn.Pos() })
	for _, r := range reached {
		info := infos[r.fn]
		for _, o := range info.own {
			where := info.name
			if r.fn != r.root {
				where = fmt.Sprintf("%s, reachable from //noc:hot-path root %s", info.name, infos[r.root].name)
			}
			pass.Reportf(o.pos, "%s (in %s)", o.detail, where)
		}
	}
	return nil
}

// recvTypeName extracts the receiver's type name for display.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// scanAllocBody walks one function body collecting allocation offenses
// and static call edges. Offenses covered by a //nocvet:ignore directive
// are consumed here — before they reach summaries — so a waived
// construct is excused in every caller, not just at its own line.
func scanAllocBody(pass *Pass, fn *types.Func, info *allocFuncInfo, infos map[*types.Func]*allocFuncInfo) {
	res := fn.Type().(*types.Signature).Results()
	offend := func(pos token.Pos, format string, args ...any) {
		if pass.Waived(pos) {
			return
		}
		info.own = append(info.own, allocOffense{pos: pos, detail: fmt.Sprintf(format, args...)})
	}
	selfAppendOK := map[*ast.CallExpr]bool{}

	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return scanAllocCall(pass, n, info, infos, offend, selfAppendOK)
		case *ast.FuncLit:
			offend(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				offend(n.Pos(), "slice literal allocates")
			case *types.Map:
				offend(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					offend(n.Pos(), "&composite-literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(n)) && !isConstExpr(pass.TypesInfo, n) {
				offend(n.Pos(), "string concatenation allocates")
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); ok {
				offend(n.Pos(), "map iteration in the hot path (hidden iterator, nondeterministic order)")
			}
		case *ast.GoStmt:
			offend(n.Pos(), "go statement allocates a goroutine")
		case *ast.AssignStmt:
			scanAllocAssign(pass, n, offend, selfAppendOK)
		case *ast.ReturnStmt:
			if res != nil && len(n.Results) == res.Len() {
				for i, e := range n.Results {
					checkBoxing(pass, e, res.At(i).Type(), "returning", offend)
				}
			}
		}
		return true
	})
}

// scanAllocAssign handles the two assignment-specific checks: blessing
// self-appends and flagging interface boxing on plain assignments.
func scanAllocAssign(pass *Pass, n *ast.AssignStmt, offend func(token.Pos, string, ...any), selfAppendOK map[*ast.CallExpr]bool) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, rhs := range n.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(pass.TypesInfo, call, "append") && len(call.Args) > 0 {
				src := call.Args[0]
				if s, ok := src.(*ast.SliceExpr); ok {
					src = s.X
				}
				if types.ExprString(n.Lhs[i]) == types.ExprString(src) {
					selfAppendOK[call] = true
				}
			}
			if n.Tok == token.ASSIGN {
				lt := pass.TypesInfo.TypeOf(n.Lhs[i])
				if lt != nil {
					checkBoxing(pass, rhs, lt, "assigning", offend)
				}
			}
		}
	}
}

// scanAllocCall classifies one call expression. The return value is the
// "descend into children" answer for ast.Inspect: panic arguments are
// exempt and not descended into.
func scanAllocCall(pass *Pass, call *ast.CallExpr, info *allocFuncInfo, infos map[*types.Func]*allocFuncInfo,
	offend func(token.Pos, string, ...any), selfAppendOK map[*ast.CallExpr]bool) bool {

	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() { // conversion
		to := pass.TypesInfo.TypeOf(call.Fun)
		from := pass.TypesInfo.TypeOf(call.Args[0])
		if isStringSliceConv(to, from) {
			offend(call.Pos(), "%s -> %s conversion allocates", types.TypeString(from, nil), types.TypeString(to, nil))
		}
		return true
	}
	if ok && tv.IsBuiltin() {
		name := builtinName(call.Fun)
		switch name {
		case "panic":
			return false // a dying simulator may allocate its diagnostics
		case "append":
			if !selfAppendOK[call] {
				offend(call.Pos(), "append into a different slice allocates: only self-append (x = append(x, ...), x = append(x[:0], ...)) is the sanctioned pre-capped-buffer idiom")
			}
		case "make":
			switch pass.TypesInfo.TypeOf(call).Underlying().(type) {
			case *types.Map:
				offend(call.Pos(), "make(map) allocates")
			case *types.Chan:
				offend(call.Pos(), "make(chan) allocates")
			default:
				for _, arg := range call.Args[1:] {
					if !isConstExpr(pass.TypesInfo, arg) {
						offend(call.Pos(), "make with non-constant size allocates")
						break
					}
				}
			}
		}
		return true
	}

	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil {
		offend(call.Pos(), "dynamic call through a function value cannot be proven allocation-free")
		return true
	}
	if sig, ok := callee.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			offend(call.Pos(), "dynamic dispatch through interface method %s cannot be proven allocation-free", callee.Name())
			return true
		}
		checkCallBoxing(pass, call, sig, offend)
	}
	switch {
	case callee.Pkg() == nil:
		// universe-scope (error.Error on unnamed types etc.): ignore
	case callee.Pkg() == pass.Pkg:
		if _, ok := infos[callee]; ok {
			info.out = append(info.out, allocEdge{callee: callee, pos: call.Pos()})
		}
	case strings.HasPrefix(callee.Pkg().Path(), "gonoc/"):
		if v, ok := pass.Facts.Get("alloc:" + callee.FullName()); ok {
			if v != "clean" {
				offend(call.Pos(), "call to %s which is not allocation-free (%s)", callee.FullName(), v)
			}
		} else {
			// No fact means the dependency was not analyzed in this run
			// (partial load, single-package fixture mode): assume clean,
			// but consume any waiver on the call so a directive that
			// fires in whole-tree runs is not reported stale here.
			pass.Waived(call.Pos())
		}
	default:
		if allocDeniedStdlib(callee.Pkg().Path()) {
			offend(call.Pos(), "call into %s (allocating stdlib package)", callee.Pkg().Path())
		}
	}
	return true
}

// checkCallBoxing flags arguments boxed into interface parameters.
func checkCallBoxing(pass *Pass, call *ast.CallExpr, sig *types.Signature, offend func(token.Pos, string, ...any)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, arg, pt, "passing", offend)
	}
}

// checkBoxing flags converting a non-pointer-shaped concrete value into
// an interface: that conversion heap-allocates the value's box. Pointer,
// map, chan and func values are stored in the interface word directly.
func checkBoxing(pass *Pass, expr ast.Expr, target types.Type, verb string, offend func(token.Pos, string, ...any)) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	et := pass.TypesInfo.TypeOf(expr)
	if et == nil || types.IsInterface(et.Underlying()) {
		return
	}
	if et == types.Typ[types.UntypedNil] {
		return
	}
	if b, ok := et.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch et.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	}
	offend(expr.Pos(), "%s %s as %s boxes the value on the heap", verb, types.TypeString(et, nil), types.TypeString(target, nil))
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsBuiltin() && builtinName(call.Fun) == name
}

// builtinName unwraps the identifier naming a builtin in call position.
func builtinName(fun ast.Expr) string {
	if p, ok := fun.(*ast.ParenExpr); ok {
		return builtinName(p.X)
	}
	if id, ok := fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the type-checker folded expr to a constant.
func isConstExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// isStringSliceConv reports whether the conversion crosses the
// string/slice boundary (string([]byte), []byte(s), []rune(s), ...),
// which copies and therefore allocates.
func isStringSliceConv(to, from types.Type) bool {
	_, toSlice := to.Underlying().(*types.Slice)
	_, fromSlice := from.Underlying().(*types.Slice)
	return (isStringType(to) && fromSlice) || (toSlice && isStringType(from))
}
