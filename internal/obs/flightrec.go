package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"gonoc/internal/sim"
)

// Flight-recorder defaults: events retained per node lane, and how many
// trigger dumps are kept (the first anomalies are the interesting ones;
// later trips of a wedged fabric repeat the story).
const (
	DefaultFlightEvents = 64
	maxFlightDumps      = 8
)

// FlightRecorder is an always-on bounded record of the most recent
// trace events, cheap enough to leave enabled on 64×64 runs: one
// fixed-size event ring per node (plus one lane for network-global
// events), written without locks.
//
// Lock-freedom leans on the network's phase discipline rather than
// atomics: during the parallel compute phase the only events carrying a
// node's id are emitted by the worker that owns that node, and every
// other emitter (NI offer/eject, link drops, the fault layer, the
// watchdog) runs in a serial phase. One lane therefore never has two
// concurrent writers. The corollary: a FlightRecorder must not be
// shared by concurrently stepping networks (unlike the mutex-guarded
// Tracer) — give each simulation its own.
//
// Trigger and Dumps must also run from a serial phase (a cycle hook,
// post-step code, or the nocassert failure path), where no writer is
// active.
type FlightRecorder struct {
	nodes   int
	perLane int

	ring  []Event  // nodes+1 lanes of perLane slots
	next  []int32  // per-lane write cursor
	count []int32  // per-lane filled slots (≤ perLane)
	total []uint64 // per-lane lifetime emit count

	mu    sync.Mutex
	dumps []Dump
}

// NewFlightRecorder returns a recorder for a nodes-router network
// retaining the last perLane events per node. perLane <= 0 selects
// DefaultFlightEvents.
func NewFlightRecorder(nodes, perLane int) *FlightRecorder {
	if nodes < 1 {
		nodes = 1
	}
	if perLane <= 0 {
		perLane = DefaultFlightEvents
	}
	lanes := nodes + 1
	return &FlightRecorder{
		nodes: nodes, perLane: perLane,
		ring:  make([]Event, lanes*perLane),
		next:  make([]int32, lanes),
		count: make([]int32, lanes),
		total: make([]uint64, lanes),
	}
}

// Record stores e in its router's lane, overwriting the oldest event
// when full. It never allocates.
func (f *FlightRecorder) Record(e Event) {
	lane := int(e.Router)
	if lane < 0 || lane >= f.nodes {
		lane = f.nodes // network-global lane
	}
	i := f.next[lane]
	f.ring[lane*f.perLane+int(i)] = e
	f.next[lane] = (i + 1) % int32(f.perLane)
	if f.count[lane] < int32(f.perLane) {
		f.count[lane]++
	}
	f.total[lane]++
}

// Total returns how many events were recorded over the lifetime,
// including overwritten ones. Serial-phase only, like Trigger.
func (f *FlightRecorder) Total() uint64 {
	var n uint64
	for _, t := range f.total {
		n += t
	}
	return n
}

// Dump is one flight-recorder extraction: the events retained at
// trigger time, in canonical order (obs.SortEvents), so a dump is
// bit-exact regardless of the worker count that produced the run.
type Dump struct {
	// Cycle is the simulation cycle the trigger fired in.
	Cycle sim.Cycle
	// Reason describes the trigger (watchdog suspect, nocassert
	// failure, explicit request).
	Reason string
	// Events is the recorded window, canonically ordered.
	Events []Event
}

// Trigger snapshots every lane into a Dump, keeps it (up to
// maxFlightDumps) and returns it. It must run from a serial phase —
// no compute-phase writer may be active.
func (f *FlightRecorder) Trigger(cy sim.Cycle, reason string) Dump {
	var total int32
	for _, c := range f.count {
		total += c
	}
	d := Dump{Cycle: cy, Reason: reason, Events: make([]Event, 0, total)}
	for lane := range f.count {
		base, n := lane*f.perLane, int(f.count[lane])
		start := 0
		if n == f.perLane {
			start = int(f.next[lane])
		}
		for i := 0; i < n; i++ {
			d.Events = append(d.Events, f.ring[base+(start+i)%f.perLane])
		}
	}
	SortEvents(d.Events)
	f.mu.Lock()
	if len(f.dumps) < maxFlightDumps {
		f.dumps = append(f.dumps, d)
	}
	f.mu.Unlock()
	return d
}

// Dumps returns the retained trigger dumps in trigger order.
func (f *FlightRecorder) Dumps() []Dump {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Dump(nil), f.dumps...)
}

// dumpEvent is the JSON wire form of a dumped event: the numeric kind
// makes the round-trip exact, the name keeps the file greppable.
type dumpEvent struct {
	Cycle  uint64 `json:"cycle"`
	Kind   uint8  `json:"kind"`
	Name   string `json:"name"`
	Router int32  `json:"router"`
	Port   int8   `json:"port"`
	VC     int8   `json:"vc"`
	Arg    int32  `json:"arg"`
	Arg2   int32  `json:"arg2,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// dumpJSON is the wire form of one Dump.
type dumpJSON struct {
	Cycle  uint64      `json:"cycle"`
	Reason string      `json:"reason"`
	Events []dumpEvent `json:"events"`
}

// WriteDumps writes ds as JSON Lines: one dump object per line, so a
// file accumulates triggers and any line tool can slice it.
func WriteDumps(w io.Writer, ds []Dump) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range ds {
		dj := dumpJSON{Cycle: uint64(d.Cycle), Reason: d.Reason, Events: make([]dumpEvent, len(d.Events))}
		for i, e := range d.Events {
			dj.Events[i] = dumpEvent{
				Cycle: uint64(e.Cycle), Kind: uint8(e.Kind), Name: e.Kind.String(),
				Router: e.Router, Port: e.Port, VC: e.VC,
				Arg: e.Arg, Arg2: e.Arg2, Detail: e.Detail,
			}
		}
		if err := enc.Encode(dj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDumps parses a stream written by WriteDumps.
func ReadDumps(r io.Reader) ([]Dump, error) {
	dec := json.NewDecoder(r)
	var out []Dump
	for {
		var dj dumpJSON
		if err := dec.Decode(&dj); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: malformed flight dump: %w", err)
		}
		d := Dump{Cycle: sim.Cycle(dj.Cycle), Reason: dj.Reason, Events: make([]Event, len(dj.Events))}
		for i, e := range dj.Events {
			d.Events[i] = Event{
				Cycle: sim.Cycle(e.Cycle), Kind: EventKind(e.Kind),
				Router: e.Router, Port: e.Port, VC: e.VC,
				Arg: e.Arg, Arg2: e.Arg2, Detail: e.Detail,
			}
		}
		out = append(out, d)
	}
}

// FormatDump renders a dump as a human-readable replay, grouped by
// cycle — the "what happened right before the anomaly" report.
func FormatDump(d Dump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder — %s (trigger cycle %d, %d events)\n", d.Reason, d.Cycle, len(d.Events))
	last := sim.Cycle(0)
	first := true
	for _, e := range d.Events {
		if first || e.Cycle != last {
			fmt.Fprintf(&b, "cycle %d:\n", e.Cycle)
			last, first = e.Cycle, false
		}
		fmt.Fprintf(&b, "  r%-4d", e.Router)
		switch {
		case e.Port >= 0 && e.VC >= 0:
			fmt.Fprintf(&b, " p%d/vc%d", e.Port, e.VC)
		case e.Port >= 0:
			fmt.Fprintf(&b, " p%d    ", e.Port)
		default:
			b.WriteString("       ")
		}
		fmt.Fprintf(&b, "  %-17s", e.Kind.String())
		if n := e.Kind.argName(); n != "" {
			fmt.Fprintf(&b, " %s=%d", n, e.Arg)
		}
		if e.Arg2 != 0 {
			fmt.Fprintf(&b, " arg2=%d", e.Arg2)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " (%s)", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
