package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlightRecorderRingAndTrigger(t *testing.T) {
	f := NewFlightRecorder(2, 4)
	// Overfill node 0's lane: only the 4 newest survive.
	for i := 0; i < 7; i++ {
		f.Record(Event{Cycle: uint64ToCycle(i), Kind: EvXBTraverse, Router: 0, Port: 1})
	}
	// One event on node 1, one network-global (router out of range).
	f.Record(Event{Cycle: 3, Kind: EvNIEject, Router: 1})
	f.Record(Event{Cycle: 5, Kind: EvFaultDetect, Router: -1, Detail: "monitor"})

	if got := f.Total(); got != 9 {
		t.Fatalf("Total = %d, want 9 (overwrites still count)", got)
	}
	d := f.Trigger(6, "test trigger")
	if d.Cycle != 6 || d.Reason != "test trigger" {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Events) != 6 {
		t.Fatalf("dump has %d events, want 6 (4 retained + 1 + 1)", len(d.Events))
	}
	for i := 1; i < len(d.Events); i++ {
		if CanonicalLess(d.Events[i], d.Events[i-1]) {
			t.Fatalf("dump events not in canonical order at %d: %+v", i, d.Events)
		}
	}
	// Node 0's lane kept cycles 3..6, dropping 0..2.
	oldest := uint64ToCycle(99)
	for _, e := range d.Events {
		if e.Router == 0 && e.Cycle < oldest {
			oldest = e.Cycle
		}
	}
	if oldest != 3 {
		t.Fatalf("node 0's oldest retained cycle = %d, want 3", oldest)
	}
	if ds := f.Dumps(); len(ds) != 1 || ds[0].Reason != "test trigger" {
		t.Fatalf("Dumps() = %+v, want the one trigger", ds)
	}
}

func TestFlightRecorderDumpCap(t *testing.T) {
	f := NewFlightRecorder(1, 2)
	for i := 0; i < maxFlightDumps+3; i++ {
		f.Trigger(uint64ToCycle(i), "again")
	}
	if got := len(f.Dumps()); got != maxFlightDumps {
		t.Fatalf("retained %d dumps, want cap %d", got, maxFlightDumps)
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	f := NewFlightRecorder(2, 8)
	f.Record(Event{Cycle: 10, Kind: EvVAAlloc, Router: 0, Port: 2, VC: 1, Arg: 3, Arg2: 2})
	f.Record(Event{Cycle: 11, Kind: EvFaultInject, Router: 1, Port: 4, VC: NoVC, Detail: "SA1 arbiter"})
	d1 := f.Trigger(12, "first")
	f.Record(Event{Cycle: 13, Kind: EvNIRetransmit, Router: 1, Port: NoPort, VC: NoVC, Arg: 0, Arg2: 1})
	d2 := f.Trigger(14, "second")

	var buf bytes.Buffer
	if err := WriteDumps(&buf, []Dump{d1, d2}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDumps(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d dumps, want 2", len(back))
	}
	for i, want := range []Dump{d1, d2} {
		got := back[i]
		if got.Cycle != want.Cycle || got.Reason != want.Reason || len(got.Events) != len(want.Events) {
			t.Fatalf("dump %d header mangled: %+v vs %+v", i, got, want)
		}
		for j := range got.Events {
			if got.Events[j] != want.Events[j] {
				t.Fatalf("dump %d event %d: %+v != %+v", i, j, got.Events[j], want.Events[j])
			}
		}
	}
}

func TestFormatDump(t *testing.T) {
	f := NewFlightRecorder(1, 8)
	f.Record(Event{Cycle: 7, Kind: EvSAGrant, Router: 0, Port: 1, VC: 2, Arg: 3})
	f.Record(Event{Cycle: 8, Kind: EvFaultDetect, Router: 0, Port: 2, VC: 0, Arg: 2, Detail: "watchdog"})
	txt := FormatDump(f.Trigger(9, "unit test"))
	for _, want := range []string{"unit test", "cycle 7:", "cycle 8:", "SA grant", "fault detect", "watchdog"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("formatted dump missing %q:\n%s", want, txt)
		}
	}
}
