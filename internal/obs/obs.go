// Package obs is the simulator's observability layer: a metrics registry
// of monotonic counters and gauges keyed by (router, port, VC, kind), and
// a ring-buffered cycle-accurate event tracer with JSON Lines and Chrome
// trace_event sinks.
//
// # Why it exists
//
// The paper's evaluation reasons about where inside the router faults
// bite — per pipeline stage, per port, per VC — but endpoint packet
// statistics (internal/stats) cannot show pipeline occupancy, arbiter
// borrows, bypass activations or secondary-crossbar detours. This package
// makes that activity visible without perturbing the thing it measures.
//
// # Design
//
// Observability is opt-in per simulation via router.Config.Obs. When the
// field is nil — the default — every instrumentation site in the hot path
// reduces to one nil pointer test and no allocation, so the disabled
// simulator profile is indistinguishable from an uninstrumented build
// (bench_test.go keeps the comparison honest). When enabled, components
// resolve their counter handles once at attach time (RouterObs, NodeObs);
// per-event work is then a few predictable atomic adds plus, when tracing,
// one ring-buffer store.
//
// # Data flow
//
//	core.Router ──RouterObs──▶ Metrics (counters/gauges)
//	noc.Network/NI ──NodeObs──▶   │             │
//	fault.Injector ──Observer──▶  │          Tracer (ring buffer)
//	watchdog.Monitor ─Observer─▶  │             │
//	                              ▼             ▼
//	              noctool metrics table   trace.json (Chrome) / JSONL
//
// The Tracer retains the most recent window of events (ring buffer), so
// arbitrarily long campaigns stay bounded in memory while the tail — the
// part that explains how the simulation ended — is always available.
package obs

import "gonoc/internal/sim"

// Observer bundles the collection surfaces. Any field may be nil to
// collect only the others.
type Observer struct {
	// Metrics is the counter/gauge registry, or nil.
	Metrics *Metrics
	// Tracer captures cycle-stamped events, or nil.
	Tracer *Tracer
	// Windows accumulates windowed per-link utilization and stall-mix
	// series (the /heatmap and noctool heatmap source), or nil.
	Windows *Windows
	// Flight is the always-on bounded flight recorder, dumped when a
	// watchdog or nocassert anomaly trips, or nil.
	Flight *FlightRecorder
}

// New returns an Observer with a fresh metrics registry and, when
// traceCapacity > 0, a tracer retaining that many events.
func New(traceCapacity int) *Observer {
	o := &Observer{Metrics: NewMetrics()}
	if traceCapacity > 0 {
		o.Tracer = NewTracer(traceCapacity)
	}
	return o
}

// counter returns a bound counter handle, or nil when metrics are off.
func (o *Observer) counter(k Key) *Counter {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Counter(k)
}

// gauge returns a bound gauge handle, or nil when metrics are off.
func (o *Observer) gauge(k Key) *Gauge {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Gauge(k)
}

// emit forwards an event to the tracer and flight recorder, if any.
func (o *Observer) emit(e Event) {
	if o == nil {
		return
	}
	if o.Tracer != nil {
		o.Tracer.Emit(e)
	}
	if o.Flight != nil {
		o.Flight.Record(e)
	}
}

// RecordFault counts and traces one fault-layer occurrence (injection,
// transient strike, recovery, detection). kind selects the counter
// series; ev the event class. port/vcIdx locate the site (NoPort/NoVC
// when not applicable), arg carries the event's Kind-specific argument
// and detail an optional site name. Fault events are rare, so this
// resolves the counter per call instead of pre-binding.
func (o *Observer) RecordFault(kind Kind, ev EventKind, cy sim.Cycle, routerID, port, vcIdx int, arg int32, detail string) {
	if o == nil {
		return
	}
	if c := o.counter(Key{Kind: kind, Router: int32(routerID), Port: int8(port), VC: int8(vcIdx)}); c != nil {
		c.Inc()
	}
	o.emit(Event{
		Cycle: cy, Kind: ev, Router: int32(routerID),
		Port: int8(port), VC: int8(vcIdx), Arg: arg, Detail: detail,
	})
}

// inc is a nil-tolerant counter increment for pre-bound handles.
func inc(c *Counter) {
	if c != nil {
		c.Inc()
	}
}

// RouterObs is a router's pre-bound instrumentation handle: every
// counter the pipeline touches is resolved once here, so the per-event
// cost inside core.Router is an atomic add (and a ring store when
// tracing). A nil *RouterObs means observability is disabled; callers
// guard with a single nil check.
type RouterObs struct {
	o   *Observer
	id  int32
	vcs int
	win *Windows

	rcComputes, rcDup              []*Counter // per input port
	vaAllocs, vaBorrows, vaStalls  []*Counter // per input port
	saGrants, saBypass, saTransfer []*Counter // per input port
	reroutes                       []*Counter // per input port
	vaRetries                      []*Counter // per output port
	flitsRouted, xbSecondary       []*Counter // per output port

	// stalls holds the stall-attribution counters, one per class, each
	// indexed port*vcs+vc. Stall sites fire up to once per input VC per
	// cycle, so they are pre-bound like everything else here.
	stalls [NumStallKinds][]*Counter
}

// BindRouter resolves the per-port and per-VC counter handles for
// router id. It returns nil when o is nil, so core.New can bind
// unconditionally.
func BindRouter(o *Observer, id, ports, vcs int) *RouterObs {
	if o == nil {
		return nil
	}
	r := &RouterObs{o: o, id: int32(id), vcs: vcs, win: o.Windows}
	bind := func(k Kind) []*Counter {
		cs := make([]*Counter, ports)
		for p := range cs {
			cs[p] = o.counter(Key{Kind: k, Router: int32(id), Port: int8(p), VC: NoVC})
		}
		return cs
	}
	r.rcComputes = bind(KRCComputes)
	r.rcDup = bind(KRCDuplicateUses)
	r.vaAllocs = bind(KVAAllocs)
	r.vaBorrows = bind(KVA1Borrows)
	r.vaStalls = bind(KVA1BorrowStalls)
	r.vaRetries = bind(KVA2Retries)
	r.saGrants = bind(KSAGrants)
	r.saBypass = bind(KSABypassGrants)
	r.saTransfer = bind(KSATransfers)
	r.flitsRouted = bind(KFlitsRouted)
	r.xbSecondary = bind(KXBSecondary)
	r.reroutes = bind(KReroutes)
	for k := 0; k < NumStallKinds; k++ {
		cs := make([]*Counter, ports*vcs)
		for p := 0; p < ports; p++ {
			for v := 0; v < vcs; v++ {
				cs[p*vcs+v] = o.counter(Key{
					Kind: StallKind(k).Kind(), Router: int32(id),
					Port: int8(p), VC: int8(v),
				})
			}
		}
		r.stalls[k] = cs
	}
	return r
}

// Stall records one non-advancing flit-cycle of input VC (port, vcIdx)
// classified as k. The stall scan can fire for every VC every cycle at
// saturation, so no trace event is emitted — the series lives in the
// counters and the windowed stall mix, which is what a drowned tracer
// ring could not show anyway.
func (r *RouterObs) Stall(k StallKind, port, vcIdx int) {
	inc(r.stalls[k][port*r.vcs+vcIdx])
	if w := r.win; w != nil {
		w.AddStall(int(r.id), port, k)
	}
}

// RCCompute records a completed routing computation for input VC
// (port, vcIdx) toward out; dup marks service by the duplicate unit.
func (r *RouterObs) RCCompute(cy sim.Cycle, port, vcIdx, out int, dup bool) {
	inc(r.rcComputes[port])
	kind := EvRCCompute
	if dup {
		inc(r.rcDup[port])
		kind = EvRCDuplicate
	}
	r.o.emit(Event{Cycle: cy, Kind: kind, Router: r.id, Port: int8(port), VC: int8(vcIdx), Arg: int32(out)})
}

// Reroute records routing for (port, vcIdx) detouring off the XY path
// toward out to avoid a dead link or router.
func (r *RouterObs) Reroute(cy sim.Cycle, port, vcIdx, out int) {
	inc(r.reroutes[port])
	r.o.emit(Event{Cycle: cy, Kind: EvReroute, Router: r.id, Port: int8(port), VC: int8(vcIdx), Arg: int32(out)})
}

// VAAlloc records input VC (port, vcIdx) winning downstream VC dvc at
// output port out.
func (r *RouterObs) VAAlloc(cy sim.Cycle, port, vcIdx, out, dvc int) {
	inc(r.vaAllocs[port])
	r.o.emit(Event{Cycle: cy, Kind: EvVAAlloc, Router: r.id, Port: int8(port), VC: int8(vcIdx), Arg: int32(out), Arg2: int32(dvc)})
}

// VABorrow records (port, vcIdx) borrowing the stage-1 arbiters of
// sibling VC lender.
func (r *RouterObs) VABorrow(cy sim.Cycle, port, vcIdx, lender int) {
	inc(r.vaBorrows[port])
	r.o.emit(Event{Cycle: cy, Kind: EvVABorrow, Router: r.id, Port: int8(port), VC: int8(vcIdx), Arg: int32(lender)})
}

// VABorrowStall records (port, vcIdx) waiting a cycle for a lender.
func (r *RouterObs) VABorrowStall(cy sim.Cycle, port, vcIdx int) {
	inc(r.vaStalls[port])
	r.o.emit(Event{Cycle: cy, Kind: EvVABorrowStall, Router: r.id, Port: int8(port), VC: int8(vcIdx)})
}

// VARetry records losers requesters of downstream VC (out, dvc) losing
// their attempt to a faulty stage-2 arbiter.
func (r *RouterObs) VARetry(cy sim.Cycle, out, dvc, losers int) {
	if c := r.vaRetries[out]; c != nil {
		c.Add(uint64(losers))
	}
	r.o.emit(Event{Cycle: cy, Kind: EvVARetry, Router: r.id, Port: int8(out), VC: int8(dvc), Arg: int32(losers)})
}

// SAGrant records input VC (port, vcIdx) winning switch allocation
// toward out; bypass marks a stage-1 grant issued by the bypass path.
func (r *RouterObs) SAGrant(cy sim.Cycle, port, vcIdx, out int, bypass bool) {
	inc(r.saGrants[port])
	kind := EvSAGrant
	if bypass {
		kind = EvSABypass
	}
	r.o.emit(Event{Cycle: cy, Kind: kind, Router: r.id, Port: int8(port), VC: int8(vcIdx), Arg: int32(out)})
}

// SABypassGrant records a stage-1 grant issued by the bypass default
// winner at port (counted even when stage 2 later denies the port).
func (r *RouterObs) SABypassGrant(port int) { inc(r.saBypass[port]) }

// SATransfer records input port adopting sibling VC adopted as the
// bypass default winner dst.
func (r *RouterObs) SATransfer(cy sim.Cycle, port, dst, adopted int) {
	inc(r.saTransfer[port])
	r.o.emit(Event{Cycle: cy, Kind: EvSATransfer, Router: r.id, Port: int8(port), VC: NoVC, Arg: int32(dst), Arg2: int32(adopted)})
}

// XBTraverse records a flit from (port, vcIdx) crossing to output out;
// secondary marks the protected crossbar's detour path.
func (r *RouterObs) XBTraverse(cy sim.Cycle, port, vcIdx, out int, secondary bool) {
	inc(r.flitsRouted[out])
	kind := EvXBTraverse
	if secondary {
		inc(r.xbSecondary[out])
		kind = EvXBSecondary
	}
	r.o.emit(Event{Cycle: cy, Kind: kind, Router: r.id, Port: int8(port), VC: int8(vcIdx), Arg: int32(out)})
}

// NodeObs is the pre-bound handle for a node's network-side activity:
// link utilization per output port and NI injection/ejection. Held by
// noc.Network and noc.NI; nil when observability is disabled.
type NodeObs struct {
	o   *Observer
	id  int32
	win *Windows

	linkFlits []*Counter // per output port
	linkDrops []*Counter // per output port
	niSent    *Counter
	niOffered *Counter
	niEjected *Counter
	niQueue   *Gauge

	niUnreach      *Counter
	niRetx         *Counter
	niRetxTimeouts *Counter
	niDups         *Counter
}

// BindNode resolves node id's link and NI handles. It returns nil when
// o is nil.
func BindNode(o *Observer, id, ports int) *NodeObs {
	if o == nil {
		return nil
	}
	n := &NodeObs{o: o, id: int32(id), win: o.Windows}
	n.linkFlits = make([]*Counter, ports)
	n.linkDrops = make([]*Counter, ports)
	for p := range n.linkFlits {
		n.linkFlits[p] = o.counter(Key{Kind: KLinkFlits, Router: int32(id), Port: int8(p), VC: NoVC})
		n.linkDrops[p] = o.counter(Key{Kind: KLinkDrops, Router: int32(id), Port: int8(p), VC: NoVC})
	}
	n.niSent = o.counter(Key{Kind: KNIFlitsSent, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niOffered = o.counter(Key{Kind: KNIPacketsOffered, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niEjected = o.counter(Key{Kind: KNIPacketsEjected, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niQueue = o.gauge(Key{Kind: KNIQueueDepth, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niUnreach = o.counter(Key{Kind: KDropsUnreachable, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niRetx = o.counter(Key{Kind: KNIRetransmits, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niRetxTimeouts = o.counter(Key{Kind: KNIRetxTimeouts, Router: int32(id), Port: NoPort, VC: NoVC})
	n.niDups = o.counter(Key{Kind: KNIDupsSuppressed, Router: int32(id), Port: NoPort, VC: NoVC})
	return n
}

// LinkFlit records one flit carried by the node's output link out on
// downstream VC vcIdx (the VC dimension feeds the utilization windows;
// the counter stays per-port).
func (n *NodeObs) LinkFlit(out, vcIdx int) {
	inc(n.linkFlits[out])
	if w := n.win; w != nil {
		w.AddUtil(int(n.id), out, vcIdx)
	}
}

// NIFlitSent records the NI streaming one flit into the router.
func (n *NodeObs) NIFlitSent() { inc(n.niSent) }

// NIOffer records a packet for node dst entering the injection queue.
func (n *NodeObs) NIOffer(cy sim.Cycle, dst int) {
	inc(n.niOffered)
	n.o.emit(Event{Cycle: cy, Kind: EvNIOffer, Router: n.id, Port: NoPort, VC: NoVC, Arg: int32(dst)})
}

// NIEject records a packet delivered at this node with the given
// creation-to-ejection latency.
func (n *NodeObs) NIEject(cy sim.Cycle, latency sim.Cycle) {
	inc(n.niEjected)
	n.o.emit(Event{Cycle: cy, Kind: EvNIEject, Router: n.id, Port: NoPort, VC: NoVC, Arg: int32(latency)})
}

// NIQueueDepth updates the NI's waiting-packet gauge.
func (n *NodeObs) NIQueueDepth(depth int) {
	if n.niQueue != nil {
		n.niQueue.Set(int64(depth))
	}
}

// LinkDrop records a packet for dst discarded at the node's dead
// outgoing link out. The drop feeds the windowed stall mix as
// fault-drain work on that link.
func (n *NodeObs) LinkDrop(cy sim.Cycle, out, dst int) {
	inc(n.linkDrops[out])
	if w := n.win; w != nil {
		w.AddStall(int(n.id), out, StallFaultDrain)
	}
	n.o.emit(Event{Cycle: cy, Kind: EvLinkDrop, Router: n.id, Port: int8(out), VC: NoVC, Arg: int32(dst)})
}

// DropUnreachable records a packet for dst dropped because no surviving
// path reaches it.
func (n *NodeObs) DropUnreachable(cy sim.Cycle, dst int) {
	inc(n.niUnreach)
	n.o.emit(Event{Cycle: cy, Kind: EvDropUnreachable, Router: n.id, Port: NoPort, VC: NoVC, Arg: int32(dst)})
}

// NIRetransmit records the NI re-injecting an unacknowledged packet for
// dst after a retransmission-timer expiry; retry is the retransmission
// attempt number (1-based). Every retransmission today is timer-driven,
// so the timeout counter moves in lockstep.
func (n *NodeObs) NIRetransmit(cy sim.Cycle, dst, retry int) {
	inc(n.niRetx)
	inc(n.niRetxTimeouts)
	n.o.emit(Event{Cycle: cy, Kind: EvNIRetransmit, Router: n.id, Port: NoPort, VC: NoVC, Arg: int32(dst), Arg2: int32(retry)})
}

// NIDupSuppressed records the sink NI discarding a duplicate delivery of
// a packet from src.
func (n *NodeObs) NIDupSuppressed(cy sim.Cycle, src int) {
	inc(n.niDups)
	n.o.emit(Event{Cycle: cy, Kind: EvNIDupSuppressed, Router: n.id, Port: NoPort, VC: NoVC, Arg: int32(src)})
}
