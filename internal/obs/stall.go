package obs

// Stall attribution. The router's end-of-tick stall scan (core.Router)
// classifies every input VC that held work it could not advance this
// cycle into one of four causes, answering "where do the lost cycles
// go" — the congestion-observability question the raw stage counters
// cannot: KVAAllocs says how often allocation succeeded, never why it
// didn't.

// StallKind classifies one non-advancing flit-cycle of an input VC.
type StallKind uint8

const (
	// StallCreditStarved: the VC waited on downstream buffer space — no
	// free downstream VC to allocate, or zero credits on the allocated
	// one. The bottleneck is the next hop, not this router.
	StallCreditStarved StallKind = iota
	// StallArbLost: the VC was ready but lost an arbitration — the
	// per-port RC round-robin, a VA stage, or switch allocation. The
	// bottleneck is contention inside this router.
	StallArbLost
	// StallRouteBlocked: the wait is attributed to a fault detour — the
	// packet left the baseline XY path (vc.VC.Detour), rides the
	// protected crossbar's secondary path (FSP), or no usable output
	// path remains at all. The root cause is the fault, whatever
	// resource the packet happens to be waiting on.
	StallRouteBlocked
	// StallFaultDrain: the VC is Dropping — draining a packet discarded
	// because network faults cut off its destination — and still held
	// flits this cycle.
	StallFaultDrain

	numStallKinds
)

// NumStallKinds is the number of stall classes, for table building.
const NumStallKinds = int(numStallKinds)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	names := [...]string{"credit_starved", "arb_lost", "route_blocked", "fault_drain"}
	if int(k) < len(names) {
		return names[k]
	}
	return "stall.unknown"
}

// Kind returns the metrics counter Kind accumulating this stall class.
func (k StallKind) Kind() Kind { return KStallCreditStarved + Kind(k) }
