package obs

import (
	"fmt"
	"sort"
	"strings"

	"gonoc/internal/sim"
)

// Hop spans: a packet's lifecycle reconstructed from the event trace and
// decomposed per hop into pipeline phases — route compute, VC-allocation
// wait (including fault-tolerance borrow stalls), switch-allocation
// wait, crossbar serialization and link traversal. No extra
// instrumentation is needed: the tracer's pipeline events already carry
// everything required to follow a packet, because a wormhole packet owns
// exactly one input VC per router at a time and the VA-allocation event
// names the downstream (output port, VC) pair the packet moves to next.
// The builder chains those allocations across routers; FIFO order per
// downstream VC resolves which packet is which.
//
// Spans are derived data: they are only as complete as the trace window.
// When the tracer's ring wrapped, chains whose head events were
// overwritten are reported as orphans and chains still in flight at the
// end of the window as incomplete.

// SpanConfig tells the builder how the routers are wired; the obs
// package itself is topology-agnostic.
type SpanConfig struct {
	// NextHop maps (router, output port) to the downstream router and
	// the input port the link feeds there. ok must be false for the
	// local (ejection) port.
	NextHop func(router, out int) (nextRouter, inPort int, ok bool)
	// LocalPort is the index of the NI-facing port (topology.Local).
	LocalPort int
}

// HopSpan is one router traversal of one packet.
type HopSpan struct {
	// Router is the node id; InPort and VC the input VC the packet
	// occupied; Out and DownVC the output port and downstream VC it won.
	Router     int
	InPort, VC int
	Out, DownVC int

	// Arrive is the cycle the head's route was computed; VACycle the
	// cycle the downstream VC was allocated; SACycle the first
	// switch-allocation grant; Depart the last flit's crossbar
	// traversal.
	Arrive, VACycle, SACycle, Depart sim.Cycle

	// Flits counts crossbar traversals (the packet length as seen at
	// this hop); Grants counts switch-allocation wins.
	Flits, Grants int

	// Fault-tolerance activity at this hop: RC served by the duplicate
	// unit, stage-1 arbiter borrows and the cycles stalled waiting for a
	// lender, grants issued by the SA bypass default winner, and flits
	// detoured through the secondary crossbar path.
	Duplicate     bool
	Borrows       int
	BorrowStalls  int
	BypassGrants  int
	SecondaryFlits int

	sawVA, sawSA bool
}

// VAWait returns the cycles from route computation to VC allocation.
func (h *HopSpan) VAWait() sim.Cycle {
	if !h.sawVA || h.VACycle < h.Arrive {
		return 0
	}
	return h.VACycle - h.Arrive
}

// SAWait returns the cycles from VC allocation to the first switch
// grant.
func (h *HopSpan) SAWait() sim.Cycle {
	if !h.sawVA || !h.sawSA || h.SACycle < h.VACycle {
		return 0
	}
	return h.SACycle - h.VACycle
}

// Serialize returns the cycles from the first switch grant to the last
// flit's crossbar traversal (body-flit serialization).
func (h *HopSpan) Serialize() sim.Cycle {
	if !h.sawSA || h.Depart < h.SACycle {
		return 0
	}
	return h.Depart - h.SACycle
}

// PacketSpan is one packet's reconstructed lifecycle.
type PacketSpan struct {
	// Src and Dst are the first and last routers of the chain.
	Src, Dst int
	// Offered is the cycle the packet entered the source NI queue (from
	// the matched NI-offer event; equal to Injected when no offer event
	// was in the window). Injected is the first hop's route-compute
	// cycle and Ejected the delivery cycle.
	Offered, Injected, Ejected sim.Cycle
	// Latency is the creation-to-ejection latency reported by the
	// NI-eject event (includes source queueing before the window).
	Latency sim.Cycle
	// Hops is the chain of router traversals in path order.
	Hops []HopSpan
}

// NetworkLatency returns the in-window network traversal time.
func (p *PacketSpan) NetworkLatency() sim.Cycle {
	if p.Ejected < p.Injected {
		return 0
	}
	return p.Ejected - p.Injected
}

// SourceQueue returns the cycles spent queued at the source NI within
// the window.
func (p *PacketSpan) SourceQueue() sim.Cycle {
	if p.Injected < p.Offered {
		return 0
	}
	return p.Injected - p.Offered
}

// SpanSet is the result of a reconstruction pass.
type SpanSet struct {
	// Packets holds the completed (ejected-in-window) packets in
	// ejection order.
	Packets []PacketSpan
	// Incomplete counts chains still in flight when the window ended.
	Incomplete int
	// Orphans counts chains that began mid-flight — their earlier
	// events were overwritten by ring wrap-around.
	Orphans int
	// Dropped counts pipeline events that could not be attributed to
	// any hop (also a ring-wrap artifact).
	Dropped int
}

// span is the mutable build-time form of PacketSpan.
type span struct {
	src           int
	hops          []*HopSpan
	orphan        bool
	complete      bool
	ejected       sim.Cycle
	latency       sim.Cycle
	offered       sim.Cycle
	offerMatched  bool
}

type vcKey struct {
	r    int32
	p, v int8
}

// pendingHop is a chain whose head flit crossed a link toward key's
// input VC and is expected to route there at or after ready.
type pendingHop struct {
	sp    *span
	ready sim.Cycle
}

// BuildSpans reconstructs packet spans from a trace window. Events may
// be passed in raw emission order from any worker count: the builder
// first orders them by (cycle, router) with a stable sort, which
// restores each router's causal intra-cycle order while making the
// result independent of goroutine scheduling.
func BuildSpans(events []Event, cfg SpanConfig) SpanSet {
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Cycle != evs[j].Cycle {
			return evs[i].Cycle < evs[j].Cycle
		}
		return evs[i].Router < evs[j].Router
	})

	var (
		set      SpanSet
		open     = map[vcKey]*HopSpan{}
		owner    = map[vcKey]*span{}
		pending  = map[vcKey][]pendingHop{}
		ejectQ   = map[int32][]*span{}
		offers   = map[[2]int32][]sim.Cycle{}
		spans    []*span
		done     []*span
	)

	for _, e := range evs {
		k := vcKey{r: e.Router, p: e.Port, v: e.VC}
		switch e.Kind {
		case EvNIOffer:
			offers[[2]int32{e.Router, e.Arg}] = append(offers[[2]int32{e.Router, e.Arg}], e.Cycle)

		case EvRCCompute, EvRCDuplicate:
			if h := open[k]; h != nil && h.Flits == 0 {
				// Re-computation for the same head (no flit has left):
				// keep the hop open rather than starting a new chain.
				if e.Kind == EvRCDuplicate {
					h.Duplicate = true
				}
				continue
			}
			var sp *span
			if q := pending[k]; len(q) > 0 && q[0].ready <= e.Cycle {
				sp = q[0].sp
				pending[k] = q[1:]
			} else {
				sp = &span{src: int(e.Router), offered: e.Cycle}
				if int(e.Port) != cfg.LocalPort {
					sp.orphan = true
					set.Orphans++
				}
				spans = append(spans, sp)
			}
			h := &HopSpan{
				Router: int(e.Router), InPort: int(e.Port), VC: int(e.VC),
				Out: -1, DownVC: -1,
				Arrive: e.Cycle, Duplicate: e.Kind == EvRCDuplicate,
			}
			sp.hops = append(sp.hops, h)
			open[k] = h
			owner[k] = sp

		case EvVABorrow:
			if h := open[k]; h != nil {
				h.Borrows++
			} else {
				set.Dropped++
			}
		case EvVABorrowStall:
			if h := open[k]; h != nil {
				h.BorrowStalls++
			} else {
				set.Dropped++
			}

		case EvVAAlloc:
			h := open[k]
			if h == nil {
				set.Dropped++
				continue
			}
			h.Out, h.DownVC = int(e.Arg), int(e.Arg2)
			h.VACycle, h.sawVA = e.Cycle, true
			if h.Out == cfg.LocalPort {
				ejectQ[e.Router] = append(ejectQ[e.Router], owner[k])
			}

		case EvSAGrant, EvSABypass:
			h := open[k]
			if h == nil {
				set.Dropped++
				continue
			}
			if !h.sawSA {
				h.SACycle, h.sawSA = e.Cycle, true
			}
			h.Grants++
			if e.Kind == EvSABypass {
				h.BypassGrants++
			}

		case EvXBTraverse, EvXBSecondary:
			h := open[k]
			if h == nil {
				set.Dropped++
				continue
			}
			h.Depart = e.Cycle
			h.Flits++
			if e.Kind == EvXBSecondary {
				h.SecondaryFlits++
			}
			if h.Flits == 1 && h.sawVA && h.Out != cfg.LocalPort {
				if nr, inPort, ok := cfg.NextHop(int(e.Router), h.Out); ok {
					nk := vcKey{r: int32(nr), p: int8(inPort), v: int8(h.DownVC)}
					pending[nk] = append(pending[nk], pendingHop{sp: owner[k], ready: e.Cycle + 1})
				}
			}

		case EvNIEject:
			q := ejectQ[e.Router]
			for i, sp := range q {
				last := sp.hops[len(sp.hops)-1]
				if last.Router == int(e.Router) && last.Out == cfg.LocalPort &&
					last.Flits > 0 && last.Depart == e.Cycle {
					sp.complete = true
					sp.ejected = e.Cycle
					sp.latency = sim.Cycle(e.Arg)
					ejectQ[e.Router] = append(q[:i:i], q[i+1:]...)
					if !sp.orphan {
						done = append(done, sp)
					}
					break
				}
			}
		}
	}

	for _, sp := range spans {
		if !sp.complete && !sp.orphan {
			set.Incomplete++
		}
	}

	set.Packets = make([]PacketSpan, 0, len(done))
	for _, sp := range done {
		ps := PacketSpan{
			Src: sp.src, Offered: sp.offered,
			Injected: sp.hops[0].Arrive,
			Ejected:  sp.ejected, Latency: sp.latency,
		}
		last := sp.hops[len(sp.hops)-1]
		ps.Dst = last.Router
		// Match the earliest NI-offer for this (src, dst) pair that
		// precedes injection, for the source-queueing component.
		ok := [2]int32{int32(ps.Src), int32(ps.Dst)}
		if q := offers[ok]; len(q) > 0 && q[0] <= ps.Injected {
			ps.Offered = q[0]
			offers[ok] = q[1:]
		}
		ps.Hops = make([]HopSpan, len(sp.hops))
		for i, h := range sp.hops {
			ps.Hops[i] = *h
		}
		set.Packets = append(set.Packets, ps)
	}
	return set
}

// FormatSpans renders a SpanSet as the critical-path breakdown printed
// by `noctool spans`: where the cycles of a delivered packet go — per
// pipeline phase, with the share each fault-tolerance mechanism adds —
// followed by the slowest packets hop by hop.
func FormatSpans(set SpanSet, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-packet hop spans: %d complete packets", len(set.Packets))
	if set.Incomplete > 0 || set.Orphans > 0 || set.Dropped > 0 {
		fmt.Fprintf(&b, " (%d in flight at window end, %d orphaned by ring wrap, %d unattributed events)",
			set.Incomplete, set.Orphans, set.Dropped)
	}
	b.WriteString("\n")
	if len(set.Packets) == 0 {
		return b.String()
	}

	var (
		queue, rc, vaWait, saWait, ser, link, total uint64
		stalls, borrows, bypass, secondary, dup     uint64
		hops                                        int
	)
	for i := range set.Packets {
		p := &set.Packets[i]
		queue += uint64(p.SourceQueue())
		total += uint64(p.SourceQueue() + p.NetworkLatency())
		hops += len(p.Hops)
		for j := range p.Hops {
			h := &p.Hops[j]
			rc++
			vaWait += uint64(h.VAWait())
			saWait += uint64(h.SAWait())
			ser += uint64(h.Serialize())
			if j < len(p.Hops)-1 {
				link++
			}
			stalls += uint64(h.BorrowStalls)
			borrows += uint64(h.Borrows)
			bypass += uint64(h.BypassGrants)
			secondary += uint64(h.SecondaryFlits)
			if h.Duplicate {
				dup++
			}
		}
	}
	n := uint64(len(set.Packets))
	pct := func(v uint64) float64 {
		if total == 0 {
			return 0
		}
		return float64(v) / float64(total) * 100
	}
	fmt.Fprintf(&b, "critical path over %d packets, %d hops (%% of %d total cycles):\n", n, hops, total)
	fmt.Fprintf(&b, "  %-26s %8d  (%5.1f%%)\n", "source queueing", queue, pct(queue))
	fmt.Fprintf(&b, "  %-26s %8d  (%5.1f%%)\n", "route computation", rc, pct(rc))
	fmt.Fprintf(&b, "  %-26s %8d  (%5.1f%%)  incl. %d borrow-stall cycles\n",
		"VC allocation wait", vaWait, pct(vaWait), stalls)
	fmt.Fprintf(&b, "  %-26s %8d  (%5.1f%%)\n", "switch allocation wait", saWait, pct(saWait))
	fmt.Fprintf(&b, "  %-26s %8d  (%5.1f%%)\n", "crossbar serialization", ser, pct(ser))
	fmt.Fprintf(&b, "  %-26s %8d  (%5.1f%%)\n", "link traversal", link, pct(link))
	fmt.Fprintf(&b, "fault-tolerance mechanisms on the path: "+
		"%d VA borrows (%d stall cycles), %d SA bypass grants, %d secondary-crossbar flits, %d duplicate-RC hops\n",
		borrows, stalls, bypass, secondary, dup)

	if top > 0 {
		idx := make([]int, len(set.Packets))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, c int) bool {
			return set.Packets[idx[a]].Latency > set.Packets[idx[c]].Latency
		})
		if top > len(idx) {
			top = len(idx)
		}
		fmt.Fprintf(&b, "slowest %d packets:\n", top)
		for _, i := range idx[:top] {
			p := &set.Packets[i]
			fmt.Fprintf(&b, "  %3d->%-3d lat %5d (net %4d, %d hops):",
				p.Src, p.Dst, p.Latency, p.NetworkLatency(), len(p.Hops))
			for j := range p.Hops {
				h := &p.Hops[j]
				ft := ""
				if h.BorrowStalls > 0 {
					ft += fmt.Sprintf(" stall%d", h.BorrowStalls)
				}
				if h.BypassGrants > 0 {
					ft += " byp"
				}
				if h.SecondaryFlits > 0 {
					ft += " sec"
				}
				fmt.Fprintf(&b, " r%d[va%d sa%d xb%d%s]",
					h.Router, h.VAWait(), h.SAWait(), h.Serialize(), ft)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
