package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"gonoc/internal/sim"
)

// EventKind identifies one class of traced event.
type EventKind uint8

// The traced event kinds. Pipeline events use Port/VC for the acting
// input VC and Arg for the output port; the remaining fields are
// documented per kind.
const (
	// EvRCCompute: routing computed for the head flit of (Port, VC);
	// Arg is the output port.
	EvRCCompute EventKind = iota
	// EvRCDuplicate: as EvRCCompute, but served by the duplicate unit.
	EvRCDuplicate
	// EvVAAlloc: (Port, VC) won downstream VC Arg2 at output port Arg.
	EvVAAlloc
	// EvVABorrow: (Port, VC) borrowed the stage-1 arbiters of sibling VC
	// Arg (Section V-B1).
	EvVABorrow
	// EvVABorrowStall: (Port, VC) found no lender and waits a cycle.
	EvVABorrowStall
	// EvVARetry: Arg requesters of downstream VC (Port, VC) hit a faulty
	// stage-2 arbiter and must re-arbitrate (Port is the output port).
	EvVARetry
	// EvSAGrant: (Port, VC) won switch allocation toward output Arg.
	EvSAGrant
	// EvSABypass: as EvSAGrant, issued by the bypass default winner.
	EvSABypass
	// EvSATransfer: input port Port adopted VC Arg2 into default winner
	// VC Arg (Section V-C1 transfer).
	EvSATransfer
	// EvXBTraverse: a flit from (Port, VC) crossed the crossbar to
	// output Arg.
	EvXBTraverse
	// EvXBSecondary: as EvXBTraverse, through the secondary path.
	EvXBSecondary
	// EvNIOffer: a packet for node Arg entered the NI injection queue.
	EvNIOffer
	// EvNIEject: a packet was delivered at this node; Arg is its
	// creation-to-ejection latency in cycles.
	EvNIEject
	// EvFaultInject: a permanent fault appeared at (Port, VC); Arg is
	// the site's pipeline stage; Detail names the site.
	EvFaultInject
	// EvFaultTransient: a transient strike at (Port, VC); Detail names
	// the site, Arg is the outage duration.
	EvFaultTransient
	// EvFaultRecover: a transient outage at (Port, VC) expired.
	EvFaultRecover
	// EvFaultDetect: the watchdog localized a suspected fault at
	// (Port, VC); Arg is the suspected pipeline stage.
	EvFaultDetect
	// EvReroute: routing for (Port, VC) detoured off the XY path around a
	// dead link or router; Arg is the chosen output port.
	EvReroute
	// EvLinkDrop: a packet was discarded at the dead outgoing link Port;
	// Arg is the packet's destination node.
	EvLinkDrop
	// EvDropUnreachable: a packet was dropped because no path to
	// destination Arg survives the fault set.
	EvDropUnreachable
	// EvNIRetransmit: the NI re-injected an unacknowledged packet for
	// destination Arg; Arg2 is the retry number.
	EvNIRetransmit
	// EvNIDupSuppressed: the sink NI discarded a duplicate delivery of a
	// packet from source Arg.
	EvNIDupSuppressed

	numEventKinds
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	names := [...]string{
		"RC compute", "RC duplicate",
		"VA alloc", "VA borrow", "VA borrow stall", "VA retry",
		"SA grant", "SA bypass", "SA transfer",
		"XB traverse", "XB secondary",
		"NI offer", "NI eject",
		"fault inject", "fault transient", "fault recover", "fault detect",
		"reroute", "link drop", "drop unreachable",
		"NI retransmit", "NI dup suppressed",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "event.unknown"
}

// Stage returns the pipeline stage (or pseudo-stage) of the event kind.
func (k EventKind) Stage() Stage {
	switch k {
	case EvRCCompute, EvRCDuplicate, EvReroute:
		return StageRC
	case EvVAAlloc, EvVABorrow, EvVABorrowStall, EvVARetry:
		return StageVA
	case EvSAGrant, EvSABypass, EvSATransfer:
		return StageSA
	case EvXBTraverse, EvXBSecondary:
		return StageXB
	case EvNIOffer, EvNIEject, EvDropUnreachable, EvNIRetransmit, EvNIDupSuppressed:
		return StageNI
	case EvLinkDrop:
		return StageLink
	default:
		return StageFault
	}
}

// instant reports whether the event is a point-in-time marker rather
// than a one-cycle operation (Chrome "i" phase vs "X").
func (k EventKind) instant() bool { return k >= EvFaultInject }

// argName returns the Chrome-trace args key for Arg, or "" when unused.
func (k EventKind) argName() string {
	switch k {
	case EvRCCompute, EvRCDuplicate, EvVAAlloc, EvSAGrant, EvSABypass,
		EvXBTraverse, EvXBSecondary:
		return "out"
	case EvVABorrow:
		return "lender"
	case EvVARetry:
		return "losers"
	case EvSATransfer:
		return "winner"
	case EvNIOffer:
		return "dst"
	case EvNIEject:
		return "latency"
	case EvFaultTransient:
		return "duration"
	case EvFaultDetect:
		return "stage"
	case EvReroute:
		return "out"
	case EvLinkDrop, EvDropUnreachable, EvNIRetransmit:
		return "dst"
	case EvNIDupSuppressed:
		return "src"
	}
	return ""
}

// Event is one cycle-stamped occurrence inside a router, NI or the fault
// layer. The integer fields are deliberately small so a deep ring buffer
// stays cheap; Detail is set only by the low-frequency fault events.
type Event struct {
	// Cycle is the simulation cycle the event happened in.
	Cycle sim.Cycle
	// Kind is the event class.
	Kind EventKind
	// Router is the node id.
	Router int32
	// Port and VC locate the acting component (see the Kind docs);
	// NoPort / NoVC when not applicable.
	Port int8
	VC   int8
	// Arg and Arg2 carry per-Kind detail (see the Kind docs).
	Arg  int32
	Arg2 int32
	// Detail is an optional human-readable note (fault site names).
	Detail string
}

// Tracer is a fixed-capacity ring buffer of Events. When full, the
// oldest events are overwritten, so a long campaign always retains the
// most recent window — the part that explains the state the simulation
// ended in. Emit is safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	total   uint64
	enabled bool
}

// NewTracer returns a tracer retaining the last capacity events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity), enabled: true}
}

// Emit appends an event to the ring.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	if !t.enabled {
		t.mu.Unlock()
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// SetEnabled pauses (false) or resumes (true) event capture, so a warmup
// window can be excluded from a trace.
func (t *Tracer) SetEnabled(on bool) {
	t.mu.Lock()
	t.enabled = on
	t.mu.Unlock()
}

// Total returns how many events were emitted over the tracer's lifetime,
// including any that have been overwritten.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	if len(t.ring) < cap(t.ring) {
		// Ring not yet full: t.ring[:t.next] is everything.
		out = out[:len(t.ring)]
	}
	return out
}

// jsonlEvent is the JSON Lines wire form of an Event. Port and VC are
// always present — 0 is a meaningful value (the Local port, VC 0) and
// "not applicable" is the explicit -1 sentinel.
type jsonlEvent struct {
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"`
	Stage  string `json:"stage"`
	Router int32  `json:"router"`
	Port   int8   `json:"port"`
	VC     int8   `json:"vc"`
	Arg    int32  `json:"arg"`
	Arg2   int32  `json:"arg2,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WriteJSONL writes the retained events as JSON Lines: one object per
// event, machine-parseable with any line-oriented tooling.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		je := jsonlEvent{
			Cycle:  uint64(e.Cycle),
			Kind:   e.Kind.String(),
			Stage:  e.Kind.Stage().String(),
			Router: e.Router,
			Port:   e.Port,
			VC:     e.VC,
			Arg:    e.Arg,
			Arg2:   e.Arg2,
			Detail: e.Detail,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// One simulation cycle maps to one trace microsecond; routers map to
// processes (pid) and ports to threads (tid), so chrome://tracing and
// Perfetto lay a router's activity out as parallel per-port lanes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (the {"traceEvents": [...]} object form). The output opens directly in
// chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+16)

	// Name the router processes and port threads that appear.
	type lane struct{ pid, tid int32 }
	seen := map[lane]bool{}
	for _, e := range events {
		l := lane{pid: e.Router, tid: int32(e.Port)}
		if seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: e.Router,
			Args: map[string]any{"name": fmt.Sprintf("router %d", e.Router)},
		})
		tname := "router"
		if e.Port >= 0 {
			tname = fmt.Sprintf("port %d", e.Port)
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: e.Router, Tid: int32(e.Port),
			Args: map[string]any{"name": tname},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.Stage().String(),
			Ts:   uint64(e.Cycle),
			Pid:  e.Router,
			Tid:  int32(e.Port),
		}
		if e.Kind.instant() {
			ce.Ph, ce.S = "i", "p" // process-scoped instant marker
		} else {
			ce.Ph, ce.Dur = "X", 1 // one-cycle complete event
		}
		args := map[string]any{}
		if e.VC != NoVC {
			args["vc"] = e.VC
		}
		if n := e.Kind.argName(); n != "" {
			if e.Kind == EvFaultDetect {
				args[n] = Stage(e.Arg).String()
			} else {
				args[n] = e.Arg
			}
		}
		switch e.Kind {
		case EvVAAlloc:
			args["dvc"] = e.Arg2
		case EvSATransfer:
			args["adopted"] = e.Arg2
		case EvNIRetransmit:
			args["retry"] = e.Arg2
		}
		if e.Detail != "" {
			args["site"] = e.Detail
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ns"}); err != nil {
		return err
	}
	return bw.Flush()
}
