package obs

import (
	"strings"
	"testing"
)

// tableRow finds the row of FormatPerRouter output whose first field is
// label and returns its whitespace-split fields.
func tableRow(t *testing.T, out, label string) []string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && f[0] == label {
			return f
		}
	}
	t.Fatalf("no %q row in:\n%s", label, out)
	return nil
}

func TestFormatPerRouterTable(t *testing.T) {
	m := NewMetrics()
	key := func(k Kind, router int32, port int8) Key {
		return Key{Kind: k, Router: router, Port: port, VC: NoVC}
	}
	m.Counter(key(KFlitsRouted, 0, 1)).Add(5)
	m.Counter(key(KVA1Borrows, 0, NoPort)).Add(2)
	m.Counter(key(KFaultsInjected, 0, NoPort)).Add(1)
	m.Counter(key(KFaultsTransient, 0, NoPort)).Add(2)
	// Router 2's flits are split across two ports; PerRouter must sum them.
	m.Counter(key(KFlitsRouted, 2, 0)).Add(4)
	m.Counter(key(KFlitsRouted, 2, 3)).Add(6)
	m.Counter(key(KSABypassGrants, 2, 2)).Add(3)
	// A network-global series (Router == -1) gets no row and must not
	// leak into the totals either.
	m.Counter(key(KFlitsRouted, -1, NoPort)).Add(99)

	out := FormatPerRouter(m, 100)

	// Column order: router flits util rc.dup va.borrow va.stall va.retry
	// sa.byp sa.xfer xb.sec faults detect.
	r0 := tableRow(t, out, "0")
	if r0[1] != "5" || r0[2] != "0.050" {
		t.Errorf("router 0 flits/util = %s/%s, want 5/0.050", r0[1], r0[2])
	}
	if r0[4] != "2" {
		t.Errorf("router 0 va.borrow = %s, want 2", r0[4])
	}
	if r0[10] != "3" {
		t.Errorf("router 0 faults = %s, want 3 (injected 1 + transient 2)", r0[10])
	}
	r2 := tableRow(t, out, "2")
	if r2[1] != "10" || r2[2] != "0.100" {
		t.Errorf("router 2 flits/util = %s/%s, want 10/0.100 (summed over ports)", r2[1], r2[2])
	}
	if r2[7] != "3" {
		t.Errorf("router 2 sa.byp = %s, want 3", r2[7])
	}
	tot := tableRow(t, out, "total")
	if tot[1] != "15" || tot[2] != "0.150" {
		t.Errorf("totals flits/util = %s/%s, want 15/0.150 (global series excluded)", tot[1], tot[2])
	}
	if tot[4] != "2" || tot[7] != "3" || tot[10] != "3" {
		t.Errorf("totals borrow/byp/faults = %s/%s/%s, want 2/3/3", tot[4], tot[7], tot[10])
	}
	if strings.Contains(out, "99") {
		t.Errorf("network-global series leaked into the table:\n%s", out)
	}
	if strings.Contains(out, "-1") {
		t.Errorf("router -1 got a row:\n%s", out)
	}
}

// TestFormatPerRouterNetworkFaultSection: the recovery table appears
// only when a network-fault counter moved, lists only the routers the
// recovery machinery touched, and sums correctly.
func TestFormatPerRouterNetworkFaultSection(t *testing.T) {
	m := NewMetrics()
	key := func(k Kind, router int32, port int8) Key {
		return Key{Kind: k, Router: router, Port: port, VC: NoVC}
	}
	m.Counter(key(KFlitsRouted, 0, 1)).Add(5)
	if out := FormatPerRouter(m, 100); strings.Contains(out, "network-fault") {
		t.Fatalf("recovery section rendered with no network-fault counters:\n%s", out)
	}

	m.Counter(key(KReroutes, 3, 2)).Add(7)
	m.Counter(key(KLinkDrops, 3, 2)).Add(1)
	m.Counter(key(KDropsUnreachable, 6, NoPort)).Add(4)
	m.Counter(key(KNIRetransmits, 6, NoPort)).Add(2)
	m.Counter(key(KNIDupsSuppressed, 6, NoPort)).Add(2)
	out := FormatPerRouter(m, 100)
	_, section, found := strings.Cut(out, "network-fault recovery counters")
	if !found {
		t.Fatalf("recovery section missing:\n%s", out)
	}
	// Column order: router reroute link.drop unreach ni.retx ni.dup.
	r3 := tableRow(t, section, "3")
	if r3[1] != "7" || r3[2] != "1" {
		t.Errorf("router 3 reroute/link.drop = %s/%s, want 7/1", r3[1], r3[2])
	}
	r6 := tableRow(t, section, "6")
	if r6[3] != "4" || r6[4] != "2" || r6[5] != "2" {
		t.Errorf("router 6 unreach/retx/dup = %s/%s/%s, want 4/2/2", r6[3], r6[4], r6[5])
	}
	tot := tableRow(t, section, "total")
	if tot[1] != "7" || tot[3] != "4" || tot[4] != "2" {
		t.Errorf("totals reroute/unreach/retx = %s/%s/%s, want 7/4/2", tot[1], tot[3], tot[4])
	}
	// Router 0 had traffic but no recovery activity: no row in the section.
	for _, line := range strings.Split(section, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && f[0] == "0" {
			t.Errorf("untouched router 0 got a recovery row:\n%s", section)
		}
	}
}

func TestFormatPerRouterZeroCycles(t *testing.T) {
	m := NewMetrics()
	m.Counter(Key{Kind: KFlitsRouted, Router: 1, Port: 0, VC: NoVC}).Add(7)
	out := FormatPerRouter(m, 0)
	r1 := tableRow(t, out, "1")
	if r1[2] != "-" {
		t.Errorf("utilization with unknown cycles = %q, want \"-\"", r1[2])
	}
	if tot := tableRow(t, out, "total"); tot[2] != "-" {
		t.Errorf("totals utilization with unknown cycles = %q, want \"-\"", tot[2])
	}
}

func TestUtil(t *testing.T) {
	if got := util(5, 0); got != "-" {
		t.Errorf("util(5, 0) = %q, want \"-\"", got)
	}
	if got := util(5, 100); got != "0.050" {
		t.Errorf("util(5, 100) = %q, want \"0.050\"", got)
	}
	if got := util(0, 100); got != "0.000" {
		t.Errorf("util(0, 100) = %q, want \"0.000\"", got)
	}
}
