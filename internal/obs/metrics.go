package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind identifies one class of observable quantity. Each Kind belongs to
// a fixed pipeline stage (or the link/NI/fault layer) via Stage().
type Kind uint8

// The counter and gauge kinds collected by the instrumentation.
const (
	// KRCComputes counts routing computations completed, per input port.
	KRCComputes Kind = iota
	// KRCDuplicateUses counts computations served by the duplicate RC
	// unit because the primary is faulty (Section V-A).
	KRCDuplicateUses
	// KVAAllocs counts successful downstream-VC allocations, per input
	// port of the winning VC.
	KVAAllocs
	// KVA1Borrows counts successful stage-1 arbiter borrows
	// (Section V-B1), per input port.
	KVA1Borrows
	// KVA1BorrowStalls counts cycles a VC wanted to borrow but found no
	// idle lender (Scenario 2 waits), per input port.
	KVA1BorrowStalls
	// KVA2Retries counts allocation attempts lost to a faulty stage-2
	// arbiter (Section V-B3), per output port.
	KVA2Retries
	// KSAGrants counts stage-2 switch-allocation wins, per input port.
	KSAGrants
	// KSABypassGrants counts stage-1 grants issued by the bypass path's
	// default winner (Section V-C1), per input port.
	KSABypassGrants
	// KSATransfers counts VC-to-VC flit/state transfers feeding the
	// bypass default winner, per input port.
	KSATransfers
	// KFlitsRouted counts flits that traversed the crossbar, per output
	// port.
	KFlitsRouted
	// KXBSecondary counts crossbar traversals through the secondary path
	// (Sections V-C2, V-D), per output port.
	KXBSecondary
	// KLinkFlits counts flits carried by the outgoing link, per output
	// port (Local counts ejections to the NI).
	KLinkFlits
	// KNIFlitsSent counts flits the NI streamed into the router's local
	// input port.
	KNIFlitsSent
	// KNIPacketsOffered counts packets offered to the NI for injection.
	KNIPacketsOffered
	// KNIPacketsEjected counts packets delivered at this node.
	KNIPacketsEjected
	// KNIQueueDepth is a gauge: packets waiting at the NI for a free VC.
	KNIQueueDepth
	// KFaultsInjected counts permanent faults injected into the router.
	KFaultsInjected
	// KFaultsTransient counts transient strikes on the router.
	KFaultsTransient
	// KFaultsRecovered counts transient outages that expired.
	KFaultsRecovered
	// KFaultsDetected counts watchdog fault detections at the router.
	KFaultsDetected
	// KReroutes counts routing computations that diverged from XY to
	// detour around a dead link or router, per input port.
	KReroutes
	// KLinkDrops counts packets discarded at a dead outgoing link, per
	// output port.
	KLinkDrops
	// KDropsUnreachable counts packets dropped because no path to their
	// destination survives the fault set (at the NI before injection, or
	// in-network when routing hits a wall).
	KDropsUnreachable
	// KNIRetransmits counts packet retransmissions issued by the NI's
	// end-to-end reliability layer.
	KNIRetransmits
	// KNIRetxTimeouts counts retransmission-timer expirations at the NI.
	KNIRetxTimeouts
	// KNIDupsSuppressed counts duplicate deliveries suppressed at the
	// sink NI.
	KNIDupsSuppressed
	// KStallCreditStarved counts non-advancing flit-cycles waiting on a
	// free downstream VC or downstream credit, per input port and VC.
	// The four stall kinds below must stay contiguous and in StallKind
	// order: StallKind.Kind converts with an offset from this constant.
	KStallCreditStarved
	// KStallArbLost counts non-advancing flit-cycles lost to arbitration
	// (the per-port RC round-robin, VA, or SA), per input port and VC.
	KStallArbLost
	// KStallRouteBlocked counts non-advancing flit-cycles attributed to a
	// fault detour: the packet left the baseline XY path, rides the
	// secondary crossbar path, or has no usable output path at all — per
	// input port and VC.
	KStallRouteBlocked
	// KStallFaultDrain counts flit-cycles of Dropping VCs draining a
	// packet discarded because network faults cut its destination off,
	// per input port and VC.
	KStallFaultDrain

	numKinds
)

// NumKinds is the number of defined Kinds, for table building.
const NumKinds = int(numKinds)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{
		"rc.computes", "rc.duplicate_uses",
		"va.allocs", "va.borrows", "va.borrow_stalls", "va.retries",
		"sa.grants", "sa.bypass_grants", "sa.transfers",
		"xb.flits_routed", "xb.secondary",
		"link.flits",
		"ni.flits_sent", "ni.packets_offered", "ni.packets_ejected", "ni.queue_depth",
		"fault.injected", "fault.transient", "fault.recovered", "fault.detected",
		"rc.reroutes", "link.drops", "ni.drops_unreachable",
		"ni.retransmits", "ni.retx_timeouts", "ni.dups_suppressed",
		"stall.credit_starved", "stall.arb_lost", "stall.route_blocked",
		"stall.fault_drain",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "kind.unknown"
}

// Stage returns the pipeline stage (or pseudo-stage) the kind belongs to.
func (k Kind) Stage() Stage {
	switch k {
	case KRCComputes, KRCDuplicateUses, KReroutes:
		return StageRC
	case KVAAllocs, KVA1Borrows, KVA1BorrowStalls, KVA2Retries:
		return StageVA
	case KSAGrants, KSABypassGrants, KSATransfers:
		return StageSA
	case KFlitsRouted, KXBSecondary:
		return StageXB
	case KLinkFlits, KLinkDrops:
		return StageLink
	case KNIFlitsSent, KNIPacketsOffered, KNIPacketsEjected, KNIQueueDepth,
		KDropsUnreachable, KNIRetransmits, KNIRetxTimeouts, KNIDupsSuppressed:
		return StageNI
	case KStallCreditStarved, KStallArbLost, KStallRouteBlocked, KStallFaultDrain:
		return StageStall
	default:
		return StageFault
	}
}

// Stage is a pipeline stage or pseudo-stage used to group metrics and
// trace events. The first four values match core.StageID by construction
// so the fault model can convert with a plain cast.
type Stage int8

// The router pipeline stages plus the link, NI, fault and stall
// pseudo-stages.
const (
	StageRC Stage = iota
	StageVA
	StageSA
	StageXB
	StageLink
	StageNI
	StageFault
	StageStall
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	names := [...]string{"RC", "VA", "SA", "XB", "link", "NI", "fault", "stall"}
	if int(s) >= 0 && int(s) < len(names) {
		return names[s]
	}
	return "?"
}

// Key locates one counter or gauge in the registry: the owning router,
// the component port and VC within it (NoPort / NoVC when the dimension
// does not apply) and the Kind measured.
type Key struct {
	// Kind is the measured quantity.
	Kind Kind
	// Router is the node id of the owning router, or -1 for
	// network-global series.
	Router int32
	// Port is the input or output port index (Kind-dependent), or NoPort.
	Port int8
	// VC is the virtual-channel index, or NoVC.
	VC int8
}

// NoPort and NoVC mark a Key dimension as not applicable.
const (
	NoPort int8 = -1
	NoVC   int8 = -1
)

// Counter is a monotonic counter. Increments are atomic, so concurrent
// simulations sharing a registry (e.g. internal/sweep fan-out) stay
// race-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, occupancy).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Metrics is the registry: a lazily populated map from Key to counter or
// gauge. Handle resolution (Counter/Gauge) takes a lock and may allocate;
// instrumented hot paths therefore resolve their handles once at
// attach time (see RouterObs / NodeObs) and only touch atomics per event.
// A nil *Metrics is never dereferenced by the instrumentation layer: the
// simulator holds a nil Observer when observability is off, making the
// disabled path a single pointer test.
type Metrics struct {
	mu       sync.Mutex
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[Key]*Counter{},
		gauges:   map[Key]*Gauge{},
	}
}

// Counter returns the counter at k, creating it if needed.
func (m *Metrics) Counter(k Key) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[k]
	if c == nil {
		c = &Counter{}
		m.counters[k] = c
	}
	return c
}

// Gauge returns the gauge at k, creating it if needed.
func (m *Metrics) Gauge(k Key) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[k]
	if g == nil {
		g = &Gauge{}
		m.gauges[k] = g
	}
	return g
}

// Sample is one registry entry at snapshot time.
type Sample struct {
	// Key locates the series.
	Key Key
	// Value is the counter count or gauge level.
	Value int64
	// IsGauge distinguishes gauges from counters.
	IsGauge bool
}

// Snapshot returns every registered series, sorted by (router, kind,
// port, VC) for stable output.
func (m *Metrics) Snapshot() []Sample {
	m.mu.Lock()
	out := make([]Sample, 0, len(m.counters)+len(m.gauges))
	for k, c := range m.counters {
		out = append(out, Sample{Key: k, Value: int64(c.Value())})
	}
	for k, g := range m.gauges {
		out = append(out, Sample{Key: k, Value: g.Value(), IsGauge: true})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.VC < b.VC
	})
	return out
}

// RouterTotals is one router's counters summed over ports and VCs.
type RouterTotals struct {
	// Router is the node id.
	Router int
	// Total is indexed by Kind.
	Total [NumKinds]uint64
}

// PerRouter aggregates every counter by router, summing over the port and
// VC dimensions, sorted by router id. Gauges are not included.
func (m *Metrics) PerRouter() []RouterTotals {
	m.mu.Lock()
	acc := map[int32]*RouterTotals{}
	for k, c := range m.counters {
		t := acc[k.Router]
		if t == nil {
			t = &RouterTotals{Router: int(k.Router)}
			acc[k.Router] = t
		}
		t.Total[k.Kind] += c.Value()
	}
	m.mu.Unlock()
	out := make([]RouterTotals, 0, len(acc))
	for _, t := range acc {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Router < out[j].Router })
	return out
}
