package obs

import (
	"sort"
	"sync/atomic"

	"gonoc/internal/sim"
)

// Default window geometry: 1k-cycle buckets, 16 buckets retained. At
// 64×64 that is ~21 MB of uint32 cells — opt-in cost, paid only when a
// Windows is attached.
const (
	DefaultBucketCycles sim.Cycle = 1024
	DefaultWindowBucket           = 16
)

// Windows is a fixed-size ring of per-link utilization and stall-mix
// windows: every bucketCycles cycles the current bucket closes and the
// oldest is recycled, so a long run always retains the most recent
// time-resolved view of where flits flowed and where cycles stalled.
//
// Cells are plain uint32 accessed only through sync/atomic, so samples
// from the parallel compute phase and reads from a live telemetry
// scrape are race-free. Roll must run in the network's serial phase
// (it is registered as a cycle hook by noc.New), which is what makes
// the bucket index stable while workers add samples.
//
// Utilization is kept per (node, output port, VC); the stall mix per
// (node, input port, StallKind) — summed over VCs to bound memory. The
// per-VC stall resolution lives in the KStall* counters.
type Windows struct {
	nodes, ports, vcs int
	bucketCycles      sim.Cycle
	buckets           int

	cur      atomic.Int32  // ring slot receiving current-cycle samples
	curStart atomic.Uint64 // first cycle of the current bucket
	last     atomic.Uint64 // most recent cycle seen by Roll
	rolled   atomic.Uint64 // buckets completed over the lifetime

	util  []uint32 // [bucket][node][port][vc]
	stall []uint32 // [bucket][node][port][stallKind]
}

// NewWindows returns a window ring for a nodes-router network with the
// given port and VC counts. bucketCycles <= 0 and buckets < 2 select
// the defaults.
func NewWindows(nodes, ports, vcs int, bucketCycles sim.Cycle, buckets int) *Windows {
	if bucketCycles <= 0 {
		bucketCycles = DefaultBucketCycles
	}
	if buckets < 2 {
		buckets = DefaultWindowBucket
	}
	return &Windows{
		nodes: nodes, ports: ports, vcs: vcs,
		bucketCycles: bucketCycles, buckets: buckets,
		util:  make([]uint32, buckets*nodes*ports*vcs),
		stall: make([]uint32, buckets*nodes*ports*NumStallKinds),
	}
}

// BucketCycles returns the bucket width in cycles.
func (w *Windows) BucketCycles() sim.Cycle { return w.bucketCycles }

// AddUtil records one flit carried by node's output link out on VC
// vcIdx. Safe from the parallel compute/commit phases.
func (w *Windows) AddUtil(node, out, vcIdx int) {
	b := int(w.cur.Load())
	atomic.AddUint32(&w.util[((b*w.nodes+node)*w.ports+out)*w.vcs+vcIdx], 1)
}

// AddStall records one stalled flit-cycle of class k at node's input
// port. Safe from the parallel compute/commit phases.
func (w *Windows) AddStall(node, port int, k StallKind) {
	b := int(w.cur.Load())
	atomic.AddUint32(&w.stall[((b*w.nodes+node)*w.ports+port)*NumStallKinds+int(k)], 1)
}

// Roll closes the current bucket once bucketCycles have elapsed and
// reopens the oldest ring slot for the new window. It is registered as
// a network cycle hook — the serial pre-phase of Step — so it never
// races the compute-phase adders; the per-cell stores stay atomic only
// for concurrent scrape readers.
func (w *Windows) Roll(c sim.Cycle) {
	w.last.Store(uint64(c))
	if c-sim.Cycle(w.curStart.Load()) < w.bucketCycles {
		return
	}
	next := (int(w.cur.Load()) + 1) % w.buckets
	uo := next * w.nodes * w.ports * w.vcs
	for i := uo; i < uo+w.nodes*w.ports*w.vcs; i++ {
		atomic.StoreUint32(&w.util[i], 0)
	}
	so := next * w.nodes * w.ports * NumStallKinds
	for i := so; i < so+w.nodes*w.ports*NumStallKinds; i++ {
		atomic.StoreUint32(&w.stall[i], 0)
	}
	w.cur.Store(int32(next))
	w.curStart.Store(uint64(c))
	w.rolled.Add(1)
}

// WindowBucket is one retained window: Start is its first cycle,
// Cycles how many cycles it covers (a partial final bucket covers
// fewer than the configured width).
type WindowBucket struct {
	Start   sim.Cycle
	Cycles  sim.Cycle
	Partial bool
	Util    []uint32 // (node*ports+out)*vcs + vc
	Stall   []uint32 // (node*ports+port)*NumStallKinds + kind
}

// WindowSnapshot is a copy of the retained windows, oldest first; the
// last bucket is the in-progress one (Partial). Taken between steps it
// is deterministic and bit-exact at any worker count; taken during a
// live scrape it is a monitoring-grade view whose newest cells may be
// mid-cycle.
type WindowSnapshot struct {
	Nodes, Ports, VCs int
	BucketCycles      sim.Cycle
	Buckets           []WindowBucket
}

// Snapshot copies the retained windows.
func (w *Windows) Snapshot() WindowSnapshot {
	cur := int(w.cur.Load())
	start := sim.Cycle(w.curStart.Load())
	last := sim.Cycle(w.last.Load())
	completed := int(w.rolled.Load())
	if completed > w.buckets-1 {
		completed = w.buckets - 1
	}
	s := WindowSnapshot{
		Nodes: w.nodes, Ports: w.ports, VCs: w.vcs,
		BucketCycles: w.bucketCycles,
		Buckets:      make([]WindowBucket, 0, completed+1),
	}
	ustride := w.nodes * w.ports * w.vcs
	sstride := w.nodes * w.ports * NumStallKinds
	copyCells := func(dst, src []uint32) {
		for i := range src {
			dst[i] = atomic.LoadUint32(&src[i])
		}
	}
	for i := completed; i >= 0; i-- {
		b := ((cur-i)%w.buckets + w.buckets) % w.buckets
		wb := WindowBucket{
			Start:  start - sim.Cycle(i)*w.bucketCycles,
			Cycles: w.bucketCycles,
			Util:   make([]uint32, ustride),
			Stall:  make([]uint32, sstride),
		}
		if i == 0 {
			wb.Partial = true
			wb.Cycles = last - start + 1
			if last < start {
				wb.Cycles = 0
			}
		}
		copyCells(wb.Util, w.util[b*ustride:(b+1)*ustride])
		copyCells(wb.Stall, w.stall[b*sstride:(b+1)*sstride])
		s.Buckets = append(s.Buckets, wb)
	}
	return s
}

// Cycles returns the total cycle span the snapshot covers.
func (s *WindowSnapshot) Cycles() sim.Cycle {
	var n sim.Cycle
	for _, b := range s.Buckets {
		n += b.Cycles
	}
	return n
}

// LinkTotal is one output link's activity summed over a snapshot's
// windows. Stalls are the ones scanned at the link's router input port
// of the same index — a per-router port view, pairing the flits a port
// carried out with the waits observed at that port's input side.
type LinkTotal struct {
	// Node is the upstream router; Port its output port.
	Node, Port int
	// Flits is the flit count carried, summed over VCs and windows.
	Flits uint64
	// PerVC resolves Flits by downstream VC.
	PerVC []uint64
	// Stalls is the stall-mix by class at the router's same-index input
	// port over the same windows.
	Stalls [NumStallKinds]uint64
}

// LinkTotals aggregates the snapshot over its windows, sorted by
// (node, port).
func (s *WindowSnapshot) LinkTotals() []LinkTotal {
	out := make([]LinkTotal, 0, s.Nodes*s.Ports)
	for node := 0; node < s.Nodes; node++ {
		for port := 0; port < s.Ports; port++ {
			lt := LinkTotal{Node: node, Port: port, PerVC: make([]uint64, s.VCs)}
			for _, b := range s.Buckets {
				uo := (node*s.Ports + port) * s.VCs
				for v := 0; v < s.VCs; v++ {
					lt.PerVC[v] += uint64(b.Util[uo+v])
					lt.Flits += uint64(b.Util[uo+v])
				}
				so := (node*s.Ports + port) * NumStallKinds
				for k := 0; k < NumStallKinds; k++ {
					lt.Stalls[k] += uint64(b.Stall[so+k])
				}
			}
			out = append(out, lt)
		}
	}
	return out
}

// TopLinks returns the n busiest links by carried flits (ties broken by
// node then port, so the order is deterministic). Links that carried
// nothing are excluded.
func (s *WindowSnapshot) TopLinks(n int) []LinkTotal {
	all := s.LinkTotals()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Flits != b.Flits {
			return a.Flits > b.Flits
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Port < b.Port
	})
	for i, lt := range all {
		if lt.Flits == 0 {
			all = all[:i]
			break
		}
	}
	if n >= 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
