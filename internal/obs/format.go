package obs

import (
	"fmt"
	"strings"
)

// FormatPerRouter renders the per-router counter table printed by
// `noctool metrics`: one row per router with the crossbar throughput and
// every fault-tolerance mechanism activation, plus a totals row. cycles
// scales the utilization column (crossbar flits per cycle); pass 0 to
// omit it.
func FormatPerRouter(m *Metrics, cycles uint64) string {
	rows := m.PerRouter()
	var b strings.Builder
	fmt.Fprintf(&b, "per-router observability counters\n")
	fmt.Fprintf(&b, "%6s %8s %6s %6s %9s %8s %8s %7s %7s %6s %7s %7s\n",
		"router", "flits", "util", "rc.dup", "va.borrow", "va.stall",
		"va.retry", "sa.byp", "sa.xfer", "xb.sec", "faults", "detect")
	var tot RouterTotals
	for _, r := range rows {
		if r.Router < 0 {
			continue // network-global series have no router row
		}
		for k := 0; k < NumKinds; k++ {
			tot.Total[k] += r.Total[k]
		}
		fmt.Fprintf(&b, "%6d %8d %6s %6d %9d %8d %8d %7d %7d %6d %7d %7d\n",
			r.Router,
			r.Total[KFlitsRouted], util(r.Total[KFlitsRouted], cycles),
			r.Total[KRCDuplicateUses],
			r.Total[KVA1Borrows], r.Total[KVA1BorrowStalls], r.Total[KVA2Retries],
			r.Total[KSABypassGrants], r.Total[KSATransfers],
			r.Total[KXBSecondary],
			r.Total[KFaultsInjected]+r.Total[KFaultsTransient],
			r.Total[KFaultsDetected])
	}
	fmt.Fprintf(&b, "%6s %8d %6s %6d %9d %8d %8d %7d %7d %6d %7d %7d\n",
		"total",
		tot.Total[KFlitsRouted], util(tot.Total[KFlitsRouted], cycles),
		tot.Total[KRCDuplicateUses],
		tot.Total[KVA1Borrows], tot.Total[KVA1BorrowStalls], tot.Total[KVA2Retries],
		tot.Total[KSABypassGrants], tot.Total[KSATransfers],
		tot.Total[KXBSecondary],
		tot.Total[KFaultsInjected]+tot.Total[KFaultsTransient],
		tot.Total[KFaultsDetected])

	// Network-fault recovery section, only when any of its counters moved
	// (a run with no dead links/routers keeps the classic table shape).
	netKinds := []Kind{KReroutes, KLinkDrops, KDropsUnreachable, KNIRetransmits, KNIDupsSuppressed}
	var any uint64
	for _, k := range netKinds {
		any += tot.Total[k]
	}
	if any > 0 {
		fmt.Fprintf(&b, "\nnetwork-fault recovery counters\n")
		fmt.Fprintf(&b, "%6s %8s %9s %7s %7s %7s\n",
			"router", "reroute", "link.drop", "unreach", "ni.retx", "ni.dup")
		for _, r := range rows {
			if r.Router < 0 {
				continue
			}
			var rowAny uint64
			for _, k := range netKinds {
				rowAny += r.Total[k]
			}
			if rowAny == 0 {
				continue // only routers the recovery machinery touched
			}
			fmt.Fprintf(&b, "%6d %8d %9d %7d %7d %7d\n",
				r.Router, r.Total[KReroutes], r.Total[KLinkDrops],
				r.Total[KDropsUnreachable], r.Total[KNIRetransmits],
				r.Total[KNIDupsSuppressed])
		}
		fmt.Fprintf(&b, "%6s %8d %9d %7d %7d %7d\n",
			"total", tot.Total[KReroutes], tot.Total[KLinkDrops],
			tot.Total[KDropsUnreachable], tot.Total[KNIRetransmits],
			tot.Total[KNIDupsSuppressed])
	}
	return b.String()
}

// util formats flits-per-cycle, or "-" when cycles is unknown.
func util(flits, cycles uint64) string {
	if cycles == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(flits)/float64(cycles))
}
