package obs

import "sort"

// Canonical event order. Within one cycle the compute phase of a
// parallel network step (see internal/noc) emits router events from
// worker goroutines in scheduler-dependent interleavings; the canonical
// order is a total order over every Event field, so two traces of the
// same simulation compare equal after CanonicalSort regardless of the
// worker count that produced them. Fully identical events tie, which is
// harmless: equal elements are interchangeable.

// CanonicalLess reports whether a orders before b canonically:
// by cycle, then router, kind, port, VC, args and detail.
func CanonicalLess(a, b Event) bool {
	switch {
	case a.Cycle != b.Cycle:
		return a.Cycle < b.Cycle
	case a.Router != b.Router:
		return a.Router < b.Router
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Port != b.Port:
		return a.Port < b.Port
	case a.VC != b.VC:
		return a.VC < b.VC
	case a.Arg != b.Arg:
		return a.Arg < b.Arg
	case a.Arg2 != b.Arg2:
		return a.Arg2 < b.Arg2
	default:
		return a.Detail < b.Detail
	}
}

// SortEvents sorts evs in place into the canonical order.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return CanonicalLess(evs[i], evs[j]) })
}

// CanonicalEvents returns the tracer's retained events in canonical
// order, for bit-exact comparison of traces across worker counts. The
// comparison is only meaningful when the ring did not wrap (Dropped()
// == 0): once events are overwritten, which ones survive depends on
// emission order.
func (t *Tracer) CanonicalEvents() []Event {
	evs := t.Events()
	SortEvents(evs)
	return evs
}
