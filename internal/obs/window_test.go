package obs

import (
	"sync"
	"testing"
)

func TestStallKindCounterMapping(t *testing.T) {
	// StallKind.Kind depends on the four KStall* constants staying
	// contiguous and in StallKind order.
	want := []Kind{KStallCreditStarved, KStallArbLost, KStallRouteBlocked, KStallFaultDrain}
	for k := 0; k < NumStallKinds; k++ {
		if got := StallKind(k).Kind(); got != want[k] {
			t.Errorf("StallKind(%d).Kind() = %v, want %v", k, got, want[k])
		}
		if StallKind(k).String() == "" {
			t.Errorf("StallKind(%d) has no name", k)
		}
		if got := want[k].Stage(); got != StageStall {
			t.Errorf("%v.Stage() = %v, want %v", want[k], got, StageStall)
		}
	}
}

func TestWindowsRollAndSnapshot(t *testing.T) {
	w := NewWindows(2, 5, 4, 10, 3)
	// Bucket 1 (cycles 0..9): 3 flits on node 0 port 1 vc 2, one stall.
	for c := 0; c < 10; c++ {
		w.Roll(uint64ToCycle(c))
		if c < 3 {
			w.AddUtil(0, 1, 2)
		}
	}
	w.AddStall(0, 1, StallArbLost)
	// Bucket 2 (cycles 10..19): 2 flits on node 1 port 4 vc 0.
	for c := 10; c < 20; c++ {
		w.Roll(uint64ToCycle(c))
		if c < 12 {
			w.AddUtil(1, 4, 0)
		}
	}
	// Bucket 3 opens at cycle 20 (partial, 5 cycles): a route stall.
	for c := 20; c < 25; c++ {
		w.Roll(uint64ToCycle(c))
	}
	w.AddStall(1, 4, StallRouteBlocked)

	s := w.Snapshot()
	if len(s.Buckets) != 3 {
		t.Fatalf("retained %d buckets, want 3", len(s.Buckets))
	}
	if s.Buckets[0].Start != 0 || s.Buckets[1].Start != 10 || s.Buckets[2].Start != 20 {
		t.Fatalf("bucket starts = %d,%d,%d, want 0,10,20",
			s.Buckets[0].Start, s.Buckets[1].Start, s.Buckets[2].Start)
	}
	if s.Buckets[2].Cycles != 5 || !s.Buckets[2].Partial {
		t.Fatalf("final bucket = %d cycles partial=%v, want 5 partial", s.Buckets[2].Cycles, s.Buckets[2].Partial)
	}
	if got := s.Cycles(); got != 25 {
		t.Fatalf("snapshot covers %d cycles, want 25", got)
	}
	totals := s.LinkTotals()
	if len(totals) != 2*5 {
		t.Fatalf("got %d link totals, want 10", len(totals))
	}
	byLink := map[[2]int]LinkTotal{}
	for _, lt := range totals {
		byLink[[2]int{lt.Node, lt.Port}] = lt
	}
	if lt := byLink[[2]int{0, 1}]; lt.Flits != 3 || lt.PerVC[2] != 3 || lt.Stalls[StallArbLost] != 1 {
		t.Fatalf("link (0,1) = %+v, want 3 flits on vc2 and one arb stall", lt)
	}
	if lt := byLink[[2]int{1, 4}]; lt.Flits != 2 || lt.Stalls[StallRouteBlocked] != 1 {
		t.Fatalf("link (1,4) = %+v, want 2 flits and one route stall", lt)
	}

	top := s.TopLinks(5)
	if len(top) != 2 {
		t.Fatalf("TopLinks kept %d links, want 2 (zero-flit links excluded)", len(top))
	}
	if top[0].Node != 0 || top[0].Port != 1 || top[1].Node != 1 || top[1].Port != 4 {
		t.Fatalf("TopLinks order wrong: %+v", top)
	}
	if one := s.TopLinks(1); len(one) != 1 || one[0].Flits != 3 {
		t.Fatalf("TopLinks(1) = %+v, want just the 3-flit link", one)
	}
}

func TestWindowsRingRecycles(t *testing.T) {
	w := NewWindows(1, 5, 4, 10, 3)
	// Run 6 buckets; only the last 2 completed plus the partial survive.
	for c := 0; c < 60; c++ {
		w.Roll(uint64ToCycle(c))
		w.AddUtil(0, 1, 0)
	}
	s := w.Snapshot()
	if len(s.Buckets) != 3 {
		t.Fatalf("retained %d buckets, want 3", len(s.Buckets))
	}
	if s.Buckets[0].Start != 30 {
		t.Fatalf("oldest retained bucket starts at %d, want 30", s.Buckets[0].Start)
	}
	// Each completed bucket saw exactly 10 adds; drops of older buckets
	// are reflected in the totals.
	if lt := s.LinkTotals()[1]; lt.Flits != 30 {
		t.Fatalf("retained flits = %d, want 30 (3 buckets x 10)", lt.Flits)
	}
}

func TestWindowsConcurrentAdds(t *testing.T) {
	// Adders race each other and a scrape reader; run under -race in CI.
	w := NewWindows(4, 5, 4, DefaultBucketCycles, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.AddUtil(node, 1, i%4)
				w.AddStall(node, 2, StallKind(i%NumStallKinds))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = w.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	var flits uint64
	final := w.Snapshot()
	for _, lt := range final.LinkTotals() {
		flits += lt.Flits
	}
	if flits != 4*1000 {
		t.Fatalf("total flits = %d, want 4000", flits)
	}
}
