package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"gonoc/internal/sim"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	// The registry must be safe for concurrent resolution and the
	// counters for concurrent increments (run under -race in CI).
	m := NewMetrics()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	key := Key{Kind: KFlitsRouted, Router: 3, Port: 1, VC: NoVC}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Counter(key).Inc()
				m.Gauge(Key{Kind: KNIQueueDepth, Router: 3, Port: NoPort, VC: NoVC}).Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter(key).Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestDisabledObserverIsNoOp(t *testing.T) {
	// A nil Observer must make every binding nil and every generic
	// record a no-op — this is the disabled hot path.
	if BindRouter(nil, 0, 5, 4) != nil {
		t.Fatal("BindRouter(nil) != nil")
	}
	if BindNode(nil, 0, 5) != nil {
		t.Fatal("BindNode(nil) != nil")
	}
	var o *Observer
	o.RecordFault(KFaultsInjected, EvFaultInject, 10, 1, 2, 0, 0, "SA1 arbiter") // must not panic
	// And an Observer with both surfaces nil must also be inert.
	empty := &Observer{}
	empty.RecordFault(KFaultsInjected, EvFaultInject, 10, 1, 2, 0, 0, "SA1 arbiter")
	if n := BindNode(empty, 1, 5); n == nil {
		t.Fatal("BindNode with metrics-less observer returned nil")
	} else {
		n.LinkFlit(2, 0) // nil counter handles must be tolerated
		n.NIQueueDepth(3)
	}
}

func TestDisabledAllocationFree(t *testing.T) {
	// The nil-guarded call pattern used in core must not allocate.
	var r *RouterObs
	allocs := testing.AllocsPerRun(1000, func() {
		if r != nil {
			r.RCCompute(1, 0, 0, 2, false)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op", allocs)
	}
}

func TestRouterObsCountsAndTraces(t *testing.T) {
	o := New(64)
	r := BindRouter(o, 7, 5, 4)
	r.RCCompute(5, 1, 0, 2, true)
	r.VAAlloc(6, 1, 0, 2, 3)
	r.VABorrow(6, 1, 2, 0)
	r.VABorrowStall(7, 1, 2)
	r.VARetry(7, 2, 1, 3)
	r.SAGrant(8, 1, 0, 2, true)
	r.SABypassGrant(1)
	r.SATransfer(8, 1, 0, 3)
	r.XBTraverse(9, 1, 0, 2, true)

	checks := []struct {
		kind Kind
		port int8
		want uint64
	}{
		{KRCComputes, 1, 1}, {KRCDuplicateUses, 1, 1},
		{KVAAllocs, 1, 1}, {KVA1Borrows, 1, 1}, {KVA1BorrowStalls, 1, 1},
		{KVA2Retries, 2, 3},
		{KSAGrants, 1, 1}, {KSABypassGrants, 1, 1}, {KSATransfers, 1, 1},
		{KFlitsRouted, 2, 1}, {KXBSecondary, 2, 1},
	}
	for _, c := range checks {
		got := o.Metrics.Counter(Key{Kind: c.kind, Router: 7, Port: c.port, VC: NoVC}).Value()
		if got != c.want {
			t.Errorf("%v = %d, want %d", c.kind, got, c.want)
		}
	}
	// Every call above traces except SABypassGrant, which is counter-only
	// (the grant event itself is emitted at stage 2).
	if got := o.Tracer.Total(); got != 8 {
		t.Errorf("trace events = %d, want 8", got)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64ToCycle(i), Kind: EvXBTraverse, Router: 1})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if int(e.Cycle) != 6+i {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first order)", i, e.Cycle, 6+i)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total/dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
}

func TestTracerSetEnabled(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Cycle: 1})
	tr.SetEnabled(false)
	tr.Emit(Event{Cycle: 2})
	tr.SetEnabled(true)
	tr.Emit(Event{Cycle: 3})
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("retained %d events, want 2 (capture paused for one)", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Cycle: 12, Kind: EvVABorrow, Router: 5, Port: 2, VC: 1, Arg: 3})
	tr.Emit(Event{Cycle: 13, Kind: EvFaultInject, Router: 5, Port: 2, Detail: "SA1 arbiter"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if _, ok := obj["cycle"]; !ok {
			t.Fatalf("line %d missing cycle: %s", lines, sc.Text())
		}
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Event{Cycle: 12, Kind: EvVABorrow, Router: 5, Port: 2, VC: 1, Arg: 3})
	tr.Emit(Event{Cycle: 14, Kind: EvSABypass, Router: 5, Port: 2, VC: 1, Arg: 4})
	tr.Emit(Event{Cycle: 20, Kind: EvFaultInject, Router: 6, Port: 1, VC: NoVC, Detail: "XB mux E"})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var names []string
	for _, e := range doc.TraceEvents {
		names = append(names, e["name"].(string))
		ph := e["ph"].(string)
		if ph != "X" && ph != "i" && ph != "M" {
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"VA borrow", "SA bypass", "fault inject", "process_name"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q in %s", want, joined)
		}
	}
}

func TestFormatPerRouter(t *testing.T) {
	o := New(0)
	r := BindRouter(o, 2, 5, 4)
	r.XBTraverse(1, 0, 0, 1, true)
	r.VABorrow(1, 0, 0, 1)
	txt := FormatPerRouter(o.Metrics, 100)
	if !strings.Contains(txt, "router") || !strings.Contains(txt, "total") {
		t.Fatalf("table malformed:\n%s", txt)
	}
	if !strings.Contains(txt, "0.010") {
		t.Fatalf("utilization column missing:\n%s", txt)
	}
}

// uint64ToCycle documents the int→Cycle conversion in ring tests.
func uint64ToCycle(i int) sim.Cycle { return sim.Cycle(i) }

func TestSortEventsCanonicalOrder(t *testing.T) {
	// A scrambled multiset of events differing in exactly one field per
	// adjacent canonical pair, including duplicates.
	evs := []Event{
		{Cycle: 7, Router: 0, Kind: EvFaultInject},
		{Cycle: 3, Router: 2, Kind: EvFaultInject, Port: 1},
		{Cycle: 3, Router: 1, Kind: EvFaultInject},
		{Cycle: 3, Router: 2, Kind: EvFaultInject, Port: 1, VC: 2},
		{Cycle: 3, Router: 2, Kind: EvFaultInject, Port: 1, VC: 2, Arg: 5},
		{Cycle: 3, Router: 2, Kind: EvFaultInject, Port: 1, VC: 2, Arg: 5, Arg2: 1},
		{Cycle: 3, Router: 2, Kind: EvFaultInject, Port: 1, VC: 2, Arg: 5, Arg2: 1, Detail: "x"},
		{Cycle: 3, Router: 1, Kind: EvFaultInject},
	}
	SortEvents(evs)
	for i := 1; i < len(evs); i++ {
		if CanonicalLess(evs[i], evs[i-1]) {
			t.Fatalf("events %d and %d out of canonical order: %+v > %+v", i-1, i, evs[i-1], evs[i])
		}
	}
	if evs[len(evs)-1].Cycle != 7 {
		t.Fatalf("cycle is not the primary key: %+v", evs)
	}
	if evs[0] != evs[1] || evs[0].Router != 1 {
		t.Fatalf("duplicate events must sort adjacently: %+v", evs[:2])
	}
}

func TestCanonicalEventsPermutationInvariant(t *testing.T) {
	// Two tracers receive the same multiset in different emission orders
	// (a serial run vs a worker interleaving); the canonical views agree.
	base := []Event{
		{Cycle: 1, Router: 4, Kind: EvFaultInject, Port: 2},
		{Cycle: 1, Router: 0, Kind: EvFaultInject},
		{Cycle: 2, Router: 3, Kind: EvFaultDetect, Arg: 9},
		{Cycle: 1, Router: 0, Kind: EvFaultInject}, // duplicate
	}
	a, b := NewTracer(16), NewTracer(16)
	for _, e := range base {
		a.Emit(e)
	}
	for i := len(base) - 1; i >= 0; i-- {
		b.Emit(base[i])
	}
	ca, cb := a.CanonicalEvents(), b.CanonicalEvents()
	if len(ca) != len(cb) {
		t.Fatalf("lengths differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("event %d differs after canonical sort: %+v vs %+v", i, ca[i], cb[i])
		}
	}
}
