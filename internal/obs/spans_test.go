package obs

import (
	"strings"
	"testing"

	"gonoc/internal/sim"
)

// lineCfg wires two routers 0 --(out 1 / in 3)--> 1; port 0 is local.
func lineCfg() SpanConfig {
	return SpanConfig{
		LocalPort: 0,
		NextHop: func(router, out int) (int, int, bool) {
			if router == 0 && out == 1 {
				return 1, 3, true
			}
			return 0, 0, false
		},
	}
}

// twoHopEvents is one two-flit packet 0 -> 1 exercising every phase and
// every fault-tolerance marker the span builder attributes.
func twoHopEvents() []Event {
	return []Event{
		{Cycle: 1, Kind: EvNIOffer, Router: 0, Port: NoPort, VC: NoVC, Arg: 1},
		// Hop 0 at router 0, local input VC (0, 0).
		{Cycle: 2, Kind: EvRCCompute, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 3, Kind: EvVABorrowStall, Router: 0, Port: 0, VC: 0},
		{Cycle: 4, Kind: EvVABorrow, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 4, Kind: EvVAAlloc, Router: 0, Port: 0, VC: 0, Arg: 1, Arg2: 0},
		{Cycle: 5, Kind: EvSAGrant, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 6, Kind: EvXBTraverse, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 7, Kind: EvXBTraverse, Router: 0, Port: 0, VC: 0, Arg: 1},
		// Hop 1 at router 1, input (3, 0); head arrived cycle 7.
		{Cycle: 7, Kind: EvRCCompute, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 8, Kind: EvVAAlloc, Router: 1, Port: 3, VC: 0, Arg: 0, Arg2: 0},
		{Cycle: 9, Kind: EvSABypass, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 10, Kind: EvXBTraverse, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 11, Kind: EvXBSecondary, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 11, Kind: EvNIEject, Router: 1, Port: NoPort, VC: NoVC, Arg: 10},
	}
}

func TestBuildSpansTwoHopPacket(t *testing.T) {
	set := BuildSpans(twoHopEvents(), lineCfg())
	if len(set.Packets) != 1 || set.Incomplete != 0 || set.Orphans != 0 || set.Dropped != 0 {
		t.Fatalf("set = %d packets, %d incomplete, %d orphans, %d dropped",
			len(set.Packets), set.Incomplete, set.Orphans, set.Dropped)
	}
	p := set.Packets[0]
	if p.Src != 0 || p.Dst != 1 {
		t.Errorf("src->dst = %d->%d, want 0->1", p.Src, p.Dst)
	}
	if p.Offered != 1 || p.Injected != 2 || p.Ejected != 11 || p.Latency != 10 {
		t.Errorf("offered/injected/ejected/latency = %d/%d/%d/%d",
			p.Offered, p.Injected, p.Ejected, p.Latency)
	}
	if p.SourceQueue() != 1 || p.NetworkLatency() != 9 {
		t.Errorf("queue/network = %d/%d, want 1/9", p.SourceQueue(), p.NetworkLatency())
	}
	if len(p.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(p.Hops))
	}
	h0, h1 := p.Hops[0], p.Hops[1]
	if h0.Router != 0 || h0.InPort != 0 || h0.Out != 1 || h0.DownVC != 0 {
		t.Errorf("hop0 = %+v", h0)
	}
	if h0.VAWait() != 2 || h0.SAWait() != 1 || h0.Serialize() != 2 || h0.Flits != 2 {
		t.Errorf("hop0 phases va=%d sa=%d ser=%d flits=%d, want 2/1/2/2",
			h0.VAWait(), h0.SAWait(), h0.Serialize(), h0.Flits)
	}
	if h0.Borrows != 1 || h0.BorrowStalls != 1 {
		t.Errorf("hop0 borrows/stalls = %d/%d, want 1/1", h0.Borrows, h0.BorrowStalls)
	}
	if h1.Router != 1 || h1.InPort != 3 || h1.Out != 0 {
		t.Errorf("hop1 = %+v", h1)
	}
	if h1.BypassGrants != 1 || h1.SecondaryFlits != 1 || h1.Flits != 2 {
		t.Errorf("hop1 bypass/secondary/flits = %d/%d/%d, want 1/1/2",
			h1.BypassGrants, h1.SecondaryFlits, h1.Flits)
	}
}

// TestBuildSpansUnsortedInput feeds the same events with the two routers'
// streams concatenated out of order: the builder's stable (cycle, router)
// sort must reconstruct the identical span.
func TestBuildSpansUnsortedInput(t *testing.T) {
	evs := twoHopEvents()
	var shuffled []Event
	for _, e := range evs {
		if e.Router == 1 {
			shuffled = append(shuffled, e)
		}
	}
	for _, e := range evs {
		if e.Router == 0 {
			shuffled = append(shuffled, e)
		}
	}
	set := BuildSpans(shuffled, lineCfg())
	if len(set.Packets) != 1 || len(set.Packets[0].Hops) != 2 {
		t.Fatalf("unsorted input not reconstructed: %+v", set)
	}
	if set.Packets[0].Latency != 10 {
		t.Errorf("latency = %d, want 10", set.Packets[0].Latency)
	}
}

// TestBuildSpansBackToBack sends two single-flit packets through the same
// input VC: the second packet's route compute lands in the same cycle as
// the first's tail crossbar traversal, which must close the first hop and
// open the second — not merge them.
func TestBuildSpansBackToBack(t *testing.T) {
	evs := []Event{
		// Packet A through router 0 (single flit).
		{Cycle: 2, Kind: EvRCCompute, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 3, Kind: EvVAAlloc, Router: 0, Port: 0, VC: 0, Arg: 1, Arg2: 0},
		{Cycle: 4, Kind: EvSAGrant, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 5, Kind: EvXBTraverse, Router: 0, Port: 0, VC: 0, Arg: 1},
		// Packet B reuses (0, 0) the cycle A's tail left.
		{Cycle: 5, Kind: EvRCCompute, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 6, Kind: EvVAAlloc, Router: 0, Port: 0, VC: 0, Arg: 1, Arg2: 0},
		{Cycle: 7, Kind: EvSAGrant, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 8, Kind: EvXBTraverse, Router: 0, Port: 0, VC: 0, Arg: 1},
		// Router 1: A then B, FIFO through the same downstream VC.
		{Cycle: 6, Kind: EvRCCompute, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 7, Kind: EvVAAlloc, Router: 1, Port: 3, VC: 0, Arg: 0, Arg2: 0},
		{Cycle: 8, Kind: EvSAGrant, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 9, Kind: EvXBTraverse, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 9, Kind: EvNIEject, Router: 1, Port: NoPort, VC: NoVC, Arg: 9},
		{Cycle: 9, Kind: EvRCCompute, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 10, Kind: EvVAAlloc, Router: 1, Port: 3, VC: 0, Arg: 0, Arg2: 0},
		{Cycle: 11, Kind: EvSAGrant, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 12, Kind: EvXBTraverse, Router: 1, Port: 3, VC: 0, Arg: 0},
		{Cycle: 12, Kind: EvNIEject, Router: 1, Port: NoPort, VC: NoVC, Arg: 8},
	}
	set := BuildSpans(evs, lineCfg())
	if len(set.Packets) != 2 {
		t.Fatalf("packets = %d, want 2 (incomplete %d orphans %d)",
			len(set.Packets), set.Incomplete, set.Orphans)
	}
	a, b := set.Packets[0], set.Packets[1]
	if a.Latency != 9 || b.Latency != 8 {
		t.Errorf("latencies = %d/%d, want 9/8 (ejection order)", a.Latency, b.Latency)
	}
	for i, p := range set.Packets {
		if len(p.Hops) != 2 || p.Hops[0].Flits != 1 || p.Hops[1].Flits != 1 {
			t.Errorf("packet %d hops malformed: %+v", i, p.Hops)
		}
	}
	if a.Injected != 2 || b.Injected != 5 {
		t.Errorf("injections = %d/%d, want 2/5", a.Injected, b.Injected)
	}
}

// TestBuildSpansOrphanAndDropped: a chain that begins on a non-local
// input with no upstream in the window is a ring-wrap orphan, and
// pipeline events with no open hop are counted as dropped.
func TestBuildSpansOrphanAndDropped(t *testing.T) {
	evs := []Event{
		// Mid-flight arrival at router 1 (input 3 is not local, nothing
		// pending): the upstream events were overwritten.
		{Cycle: 5, Kind: EvRCCompute, Router: 1, Port: 3, VC: 1, Arg: 0},
		{Cycle: 6, Kind: EvVAAlloc, Router: 1, Port: 3, VC: 1, Arg: 0, Arg2: 0},
		{Cycle: 7, Kind: EvSAGrant, Router: 1, Port: 3, VC: 1, Arg: 0},
		{Cycle: 8, Kind: EvXBTraverse, Router: 1, Port: 3, VC: 1, Arg: 0},
		{Cycle: 8, Kind: EvNIEject, Router: 1, Port: NoPort, VC: NoVC, Arg: 30},
		// A stray grant with no hop open on its VC.
		{Cycle: 9, Kind: EvSAGrant, Router: 0, Port: 2, VC: 0, Arg: 1},
	}
	set := BuildSpans(evs, lineCfg())
	if len(set.Packets) != 0 {
		t.Fatalf("orphan chain reported as a packet: %+v", set.Packets)
	}
	if set.Orphans != 1 || set.Dropped != 1 || set.Incomplete != 0 {
		t.Errorf("orphans/dropped/incomplete = %d/%d/%d, want 1/1/0",
			set.Orphans, set.Dropped, set.Incomplete)
	}
}

// TestBuildSpansRecompute: a second route computation before any flit
// leaves is the same head being re-served (e.g. by the duplicate unit
// after a fault), not a new packet.
func TestBuildSpansRecompute(t *testing.T) {
	evs := []Event{
		{Cycle: 2, Kind: EvRCCompute, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 3, Kind: EvRCDuplicate, Router: 0, Port: 0, VC: 0, Arg: 1},
		{Cycle: 4, Kind: EvVAAlloc, Router: 0, Port: 0, VC: 0, Arg: 0, Arg2: 0},
	}
	set := BuildSpans(evs, SpanConfig{LocalPort: 0, NextHop: lineCfg().NextHop})
	if set.Incomplete != 1 || set.Orphans != 0 {
		t.Fatalf("incomplete/orphans = %d/%d, want 1/0", set.Incomplete, set.Orphans)
	}
}

func TestFormatSpans(t *testing.T) {
	set := BuildSpans(twoHopEvents(), lineCfg())
	out := FormatSpans(set, 5)
	for _, want := range []string{
		"1 complete packets",
		"VC allocation wait",
		"borrow-stall cycles",
		"switch allocation wait",
		"1 VA borrows (1 stall cycles), 1 SA bypass grants, 1 secondary-crossbar flits",
		"slowest 1 packets",
		"0->1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSpans missing %q:\n%s", want, out)
		}
	}
	// Empty sets render a header, not a panic.
	if got := FormatSpans(SpanSet{}, 3); !strings.Contains(got, "0 complete packets") {
		t.Errorf("empty FormatSpans = %q", got)
	}
}

// TestHopSpanPhaseGuards: partially observed hops (window truncation)
// must never yield underflowed phase durations.
func TestHopSpanPhaseGuards(t *testing.T) {
	h := HopSpan{Arrive: 10}
	if h.VAWait() != 0 || h.SAWait() != 0 || h.Serialize() != 0 {
		t.Error("unobserved phases must report 0")
	}
	var p PacketSpan
	p.Injected, p.Ejected = 5, 3 // truncated window artifact
	if p.NetworkLatency() != 0 {
		t.Error("negative network latency must clamp to 0")
	}
	_ = sim.Cycle(0)
}
