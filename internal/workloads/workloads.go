// Package workloads provides the application traffic used in the paper's
// latency study (Section IX): SPLASH-2 and PARSEC benchmark applications
// running on a 64-core CMP with directory-based coherence.
//
// The paper obtains this traffic from GEM5 running the real benchmarks
// over a MOESI directory protocol. We substitute a synthetic coherence
// workload with the same structure: each core issues requests (single
// control flits) to directory home nodes, homes respond with data packets
// (five flits) for reads and short acknowledgements for upgrades/writes,
// and a fraction of requests target the memory-controller corners. The
// per-application injection rates, read fractions and burstiness are set
// from published NoC traffic characterizations of these suites (light
// loads overall — these benchmarks stress memory far below synthetic
// saturation — with canneal/streamcluster/ocean among the heaviest).
// What the latency experiment measures is the network's response to
// realistic offered load shapes, which this preserves.
package workloads

import (
	"gonoc/internal/flit"
	"gonoc/internal/rng"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// App is one application's traffic profile.
type App struct {
	// Name is the benchmark name.
	Name string
	// Suite is "SPLASH-2" or "PARSEC".
	Suite string
	// Rate is the per-node request injection rate (requests/node/cycle).
	Rate float64
	// ReadFrac is the fraction of requests answered with a full data
	// packet (5 flits); the rest get single-flit acknowledgements.
	ReadFrac float64
	// Burstiness is the probability a request is immediately followed by
	// another from the same node (misses cluster in real applications).
	Burstiness float64
	// MemFrac is the fraction of requests that go to the memory
	// controllers at the mesh corners instead of a directory home.
	MemFrac float64
}

// SPLASH2 returns the SPLASH-2 application profiles used in Figure 7.
func SPLASH2() []App {
	return []App{
		{Name: "barnes", Suite: "SPLASH-2", Rate: 0.008, ReadFrac: 0.80, Burstiness: 0.20, MemFrac: 0.15},
		{Name: "cholesky", Suite: "SPLASH-2", Rate: 0.011, ReadFrac: 0.75, Burstiness: 0.25, MemFrac: 0.20},
		{Name: "fft", Suite: "SPLASH-2", Rate: 0.013, ReadFrac: 0.70, Burstiness: 0.35, MemFrac: 0.30},
		{Name: "fmm", Suite: "SPLASH-2", Rate: 0.007, ReadFrac: 0.80, Burstiness: 0.15, MemFrac: 0.15},
		{Name: "lu", Suite: "SPLASH-2", Rate: 0.011, ReadFrac: 0.75, Burstiness: 0.25, MemFrac: 0.20},
		{Name: "ocean", Suite: "SPLASH-2", Rate: 0.015, ReadFrac: 0.70, Burstiness: 0.30, MemFrac: 0.35},
		{Name: "radix", Suite: "SPLASH-2", Rate: 0.014, ReadFrac: 0.65, Burstiness: 0.40, MemFrac: 0.30},
		{Name: "water", Suite: "SPLASH-2", Rate: 0.006, ReadFrac: 0.85, Burstiness: 0.10, MemFrac: 0.10},
	}
}

// PARSEC returns the PARSEC application profiles used in Figure 8.
// PARSEC's working sets and sharing patterns load the NoC somewhat more
// than SPLASH-2, which is why the paper sees a larger (13% vs 10%)
// fault-induced latency increase there.
func PARSEC() []App {
	return []App{
		{Name: "blackscholes", Suite: "PARSEC", Rate: 0.006, ReadFrac: 0.85, Burstiness: 0.10, MemFrac: 0.15},
		{Name: "bodytrack", Suite: "PARSEC", Rate: 0.012, ReadFrac: 0.75, Burstiness: 0.30, MemFrac: 0.20},
		{Name: "canneal", Suite: "PARSEC", Rate: 0.015, ReadFrac: 0.65, Burstiness: 0.44, MemFrac: 0.25},
		{Name: "dedup", Suite: "PARSEC", Rate: 0.014, ReadFrac: 0.70, Burstiness: 0.35, MemFrac: 0.25},
		{Name: "ferret", Suite: "PARSEC", Rate: 0.014, ReadFrac: 0.70, Burstiness: 0.35, MemFrac: 0.25},
		{Name: "fluidanimate", Suite: "PARSEC", Rate: 0.013, ReadFrac: 0.75, Burstiness: 0.30, MemFrac: 0.20},
		{Name: "streamcluster", Suite: "PARSEC", Rate: 0.015, ReadFrac: 0.65, Burstiness: 0.40, MemFrac: 0.25},
		{Name: "vips", Suite: "PARSEC", Rate: 0.012, ReadFrac: 0.75, Burstiness: 0.25, MemFrac: 0.20},
		{Name: "x264", Suite: "PARSEC", Rate: 0.014, ReadFrac: 0.70, Burstiness: 0.35, MemFrac: 0.25},
	}
}

// Coherence is the closed-loop coherence-style traffic source
// implementing noc.Traffic for one application profile.
type Coherence struct {
	app     App
	topo    topology.Topology
	memCtrl []int
	streams []*rng.Stream
	inBurst []bool
	stopAt  sim.Cycle

	// Requests and Replies count generated packets, for tests.
	Requests, Replies uint64
}

// NewCoherence builds the traffic source for app on any router-grid
// topology (mesh, torus or cmesh), deterministic in seed. Memory
// controllers sit at the four grid corners, directory homes are
// address-interleaved across all nodes.
func NewCoherence(app App, topo topology.Topology, seed uint64) *Coherence {
	root := rng.New(seed)
	w, h := topo.Dims()
	c := &Coherence{
		app:  app,
		topo: topo,
		memCtrl: []int{
			0, w - 1, (h - 1) * w, topo.Nodes() - 1,
		},
		streams: make([]*rng.Stream, topo.Nodes()),
		inBurst: make([]bool, topo.Nodes()),
	}
	for i := range c.streams {
		c.streams[i] = root.Split()
	}
	return c
}

// StopAt stops request generation at cycle cyc (replies continue so the
// network can drain).
func (c *Coherence) StopAt(cyc sim.Cycle) { c.stopAt = cyc }

// Offered implements noc.Traffic: each node issues requests by a bursty
// Bernoulli process.
func (c *Coherence) Offered(node int, cyc sim.Cycle) []*flit.Packet {
	if c.stopAt != 0 && cyc >= c.stopAt {
		return nil
	}
	r := c.streams[node]
	fire := c.inBurst[node] || r.Bernoulli(c.app.Rate)
	if !fire {
		return nil
	}
	c.inBurst[node] = r.Bernoulli(c.app.Burstiness)
	dst := c.home(node, r)
	c.Requests++
	return []*flit.Packet{{Dst: dst, Class: flit.Request, Size: 1}}
}

// home picks a request destination: a memory controller with probability
// MemFrac, otherwise a uniformly interleaved directory home.
func (c *Coherence) home(node int, r *rng.Stream) int {
	if r.Bernoulli(c.app.MemFrac) {
		if d := c.memCtrl[r.Intn(len(c.memCtrl))]; d != node {
			return d
		}
	}
	for {
		d := r.Intn(c.topo.Nodes())
		if d != node {
			return d
		}
	}
}

// OnEject implements noc.Traffic: every delivered request generates a
// response back to the requester — a 5-flit data packet for reads, a
// single-flit acknowledgement otherwise.
func (c *Coherence) OnEject(p *flit.Packet, cyc sim.Cycle) []*flit.Packet {
	if p.Class != flit.Request {
		return nil
	}
	r := c.streams[p.Dst]
	size := 1
	if r.Bernoulli(c.app.ReadFrac) {
		size = 5
	}
	c.Replies++
	return []*flit.Packet{{Dst: p.Src, Class: flit.Response, Size: size}}
}
