package workloads

import (
	"math"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

func TestSuitesWellFormed(t *testing.T) {
	for _, apps := range [][]App{SPLASH2(), PARSEC()} {
		if len(apps) < 8 {
			t.Fatalf("suite has only %d apps", len(apps))
		}
		seen := map[string]bool{}
		for _, a := range apps {
			if a.Name == "" || seen[a.Name] {
				t.Errorf("bad/duplicate app name %q", a.Name)
			}
			seen[a.Name] = true
			if a.Rate <= 0 || a.Rate > 0.1 {
				t.Errorf("%s: implausible rate %v", a.Name, a.Rate)
			}
			if a.ReadFrac < 0 || a.ReadFrac > 1 || a.Burstiness < 0 || a.Burstiness >= 1 ||
				a.MemFrac < 0 || a.MemFrac > 1 {
				t.Errorf("%s: fractions out of range: %+v", a.Name, a)
			}
		}
	}
}

func TestPARSECHeavierThanSPLASH2(t *testing.T) {
	// The paper's larger PARSEC delta comes from heavier offered load.
	avg := func(apps []App) float64 {
		s := 0.0
		for _, a := range apps {
			s += a.Rate / (1 - a.Burstiness)
		}
		return s / float64(len(apps))
	}
	if avg(PARSEC()) <= avg(SPLASH2()) {
		t.Fatalf("PARSEC effective load %.4f not above SPLASH-2 %.4f",
			avg(PARSEC()), avg(SPLASH2()))
	}
}

func TestCoherenceOfferedRate(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	app := App{Name: "x", Rate: 0.02, ReadFrac: 0.5, Burstiness: 0, MemFrac: 0}
	c := NewCoherence(app, mesh, 1)
	total := 0
	const cycles = 20000
	for cy := sim.Cycle(0); cy < cycles; cy++ {
		for n := 0; n < 64; n++ {
			total += len(c.Offered(n, cy))
		}
	}
	got := float64(total) / (64 * cycles)
	if math.Abs(got-0.02) > 0.002 {
		t.Fatalf("offered rate %v, want ~0.02", got)
	}
	if c.Requests != uint64(total) {
		t.Fatalf("request counter %d != offered %d", c.Requests, total)
	}
}

func TestCoherenceNeverSelf(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	app := App{Name: "x", Rate: 1, MemFrac: 0.5}
	c := NewCoherence(app, mesh, 2)
	for cy := sim.Cycle(0); cy < 50; cy++ {
		for n := 0; n < 64; n++ {
			for _, p := range c.Offered(n, cy) {
				if p.Dst == n {
					t.Fatal("request to self")
				}
				if p.Class != flit.Request || p.Size != 1 {
					t.Fatalf("malformed request %+v", p)
				}
			}
		}
	}
}

func TestCoherenceMemFraction(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	app := App{Name: "x", Rate: 1, MemFrac: 0.4}
	c := NewCoherence(app, mesh, 3)
	corners := map[int]bool{0: true, 7: true, 56: true, 63: true}
	hot, total := 0, 0
	for cy := sim.Cycle(0); cy < 400; cy++ {
		for n := 8; n < 16; n++ { // non-corner sources
			for _, p := range c.Offered(n, cy) {
				total++
				if corners[p.Dst] {
					hot++
				}
			}
		}
	}
	frac := float64(hot) / float64(total)
	// MemFrac plus the uniform tail's corner hits.
	if frac < 0.38 || frac > 0.52 {
		t.Fatalf("corner fraction %v, want ≈0.44", frac)
	}
}

func TestCoherenceReplies(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	app := App{Name: "x", Rate: 0.1, ReadFrac: 1.0}
	c := NewCoherence(app, mesh, 4)
	req := &flit.Packet{Src: 3, Dst: 9, Class: flit.Request, Size: 1}
	rsp := c.OnEject(req, 100)
	if len(rsp) != 1 || rsp[0].Dst != 3 || rsp[0].Class != flit.Response || rsp[0].Size != 5 {
		t.Fatalf("read reply: %+v", rsp)
	}
	app.ReadFrac = 0
	c2 := NewCoherence(app, mesh, 4)
	rsp2 := c2.OnEject(req, 100)
	if len(rsp2) != 1 || rsp2[0].Size != 1 {
		t.Fatalf("ack reply: %+v", rsp2)
	}
	// Responses never generate further traffic.
	if out := c.OnEject(rsp[0], 200); len(out) != 0 {
		t.Fatal("response generated traffic")
	}
	if c.Replies != 1 {
		t.Fatalf("reply counter %d", c.Replies)
	}
}

func TestCoherenceStopAt(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	c := NewCoherence(App{Name: "x", Rate: 1}, mesh, 5)
	if len(c.Offered(0, 5)) == 0 {
		t.Fatal("no request at rate 1")
	}
	c.StopAt(10)
	if len(c.Offered(0, 10)) != 0 {
		t.Fatal("request offered after stop")
	}
	// Replies still flow so the network can drain.
	req := &flit.Packet{Src: 1, Dst: 2, Class: flit.Request, Size: 1}
	if len(c.OnEject(req, 11)) != 1 {
		t.Fatal("reply suppressed after stop")
	}
}

func TestCoherenceDeterminism(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	run := func() []int {
		c := NewCoherence(SPLASH2()[2], mesh, 42)
		var log []int
		for cy := sim.Cycle(0); cy < 500; cy++ {
			for n := 0; n < 64; n++ {
				for _, p := range c.Offered(n, cy) {
					log = append(log, n, p.Dst)
				}
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic trace")
		}
	}
}

// TestCoherenceOnTorusAndCMesh drives the coherence source end to end
// through torus and cmesh networks — topology families whose Network
// has no Mesh() accessor or a concentrated router grid — and requires
// live request/reply traffic to be delivered on both.
func TestCoherenceOnTorusAndCMesh(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo string
		conc int
	}{
		{name: "torus", topo: "torus"},
		{name: "cmesh", topo: "cmesh", conc: 2},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tp, err := topology.New(tc.topo, 4, 4, tc.conc)
			if err != nil {
				t.Fatal(err)
			}
			c := NewCoherence(SPLASH2()[0], tp, 11)
			c.StopAt(400)
			rc := router.DefaultConfig()
			rc.FaultTolerant = true
			n, err := noc.New(noc.Config{
				Width: 4, Height: 4, Topo: tc.topo, Conc: tc.conc,
				Router: rc, Workers: 1,
			}, c)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			n.Run(400)
			if !n.Drain(5000) {
				t.Fatalf("did not drain: %d in flight", n.Stats().InFlight())
			}
			if c.Requests == 0 || c.Replies == 0 {
				t.Fatalf("no coherence traffic: %d requests, %d replies", c.Requests, c.Replies)
			}
			if n.Stats().Ejected() == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}
