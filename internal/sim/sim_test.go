package sim

import (
	"testing"
)

func TestStepAdvancesClock(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("fresh kernel at cycle %d", k.Now())
	}
	k.Step()
	k.Step()
	if k.Now() != 2 {
		t.Fatalf("after 2 steps, Now() = %d", k.Now())
	}
}

func TestTickOrderAndCycleValue(t *testing.T) {
	k := NewKernel()
	var order []string
	var cycles []Cycle
	k.Register("a", TickFunc(func(c Cycle) { order = append(order, "a"); cycles = append(cycles, c) }))
	k.Register("b", TickFunc(func(c Cycle) { order = append(order, "b") }))
	k.Run(2)
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	if cycles[0] != 0 || cycles[1] != 1 {
		t.Fatalf("cycle values seen by ticker: %v", cycles)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Register("c", TickFunc(func(Cycle) { count++ }))
	at, ok := k.RunUntil(func() bool { return count >= 5 }, 100)
	if !ok || at != 5 {
		t.Fatalf("RunUntil = (%d, %v), want (5, true)", at, ok)
	}
	// Already satisfied: no extra steps.
	at2, ok2 := k.RunUntil(func() bool { return true }, 100)
	if !ok2 || at2 != at {
		t.Fatalf("RunUntil on satisfied predicate advanced to %d", at2)
	}
}

func TestRunUntilHitsLimit(t *testing.T) {
	k := NewKernel()
	at, ok := k.RunUntil(func() bool { return false }, 10)
	if ok || at != 10 {
		t.Fatalf("RunUntil = (%d, %v), want (10, false)", at, ok)
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	NewKernel().Register("x", nil)
}

func TestComponents(t *testing.T) {
	k := NewKernel()
	k.Register("r0", TickFunc(func(Cycle) {}))
	k.Register("r1", TickFunc(func(Cycle) {}))
	got := k.Components()
	if len(got) != 2 || got[0] != "r0" || got[1] != "r1" {
		t.Fatalf("Components() = %v", got)
	}
	// Returned slice must be a copy.
	got[0] = "mutated"
	if k.Components()[0] != "r0" {
		t.Fatal("Components() exposes internal slice")
	}
}
