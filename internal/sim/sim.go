// Package sim provides the cycle-driven simulation kernel.
//
// gonoc models hardware the way a synchronous RTL simulator does: the whole
// system advances in lock-step cycles. Components implement Ticker and are
// registered with a Kernel in evaluation order. Within one cycle every
// component's Tick runs exactly once; components are responsible for
// evaluating their internal pipeline stages in reverse order (see
// internal/router) so that state written this cycle is observed next cycle.
//
// The kernel itself is single-threaded: determinism is a hard
// requirement for reproducible experiments, and Tick runs in
// registration order on the caller's goroutine. Parallelism lives in
// two places above the kernel, both preserving bit-exact determinism:
// internal/noc shards each cycle's compute phase across worker
// goroutines behind a two-phase (compute, then commit) step, and
// internal/sweep runs independent simulations concurrently.
package sim

import "fmt"

// Cycle is a simulation timestamp in clock cycles.
type Cycle uint64

// Ticker is a synchronous component evaluated once per cycle.
type Ticker interface {
	// Tick advances the component through cycle c.
	Tick(c Cycle)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(c Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(c Cycle) { f(c) }

// Kernel drives a set of Tickers through simulated time.
type Kernel struct {
	now     Cycle
	tickers []Ticker
	names   []string
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Register appends a component to the evaluation order. Components are
// ticked in registration order every cycle; name is used in diagnostics.
func (k *Kernel) Register(name string, t Ticker) {
	if t == nil {
		panic("sim: Register called with nil Ticker")
	}
	k.tickers = append(k.tickers, t)
	k.names = append(k.names, name)
}

// Now returns the current cycle (the number of completed Step calls).
func (k *Kernel) Now() Cycle { return k.now }

// Step advances simulated time by one cycle, ticking every registered
// component once in registration order.
func (k *Kernel) Step() {
	c := k.now
	for _, t := range k.tickers {
		t.Tick(c)
	}
	k.now++
}

// Run advances n cycles.
func (k *Kernel) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps until done returns true or the cycle limit is reached. It
// returns the cycle at which done first held and true, or the limit and
// false if the limit was hit. done is evaluated before each step, so
// RunUntil on an already-satisfied predicate performs no work.
func (k *Kernel) RunUntil(done func() bool, limit Cycle) (Cycle, bool) {
	for k.now < limit {
		if done() {
			return k.now, true
		}
		k.Step()
	}
	return k.now, done()
}

// Components returns the names of registered components in tick order,
// for diagnostics.
func (k *Kernel) Components() []string {
	out := make([]string, len(k.names))
	copy(out, k.names)
	return out
}

// String implements fmt.Stringer.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{cycle=%d, components=%d}", k.now, len(k.tickers))
}
