package experiments

import (
	"fmt"
	"strings"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/sweep"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// The link-fault delivery study: how the network-level fault model
// (dead links and routers), fault-aware two-layer turn-model routing and
// end-to-end NI retransmission together turn an otherwise
// packet-stranding fault into a latency blip. Each scenario injects its
// faults mid-measurement and runs to drain, so the delivery ratio
// reflects losses the recovery path failed to win back — 1.0000 means
// every unique packet arrived despite the fault.

// LinkFaultConfig parameterizes the study.
type LinkFaultConfig struct {
	// Width and Height give the router grid.
	Width, Height int
	// Topo selects the topology family, as noc.Config.Topo: "" or
	// "mesh" (the default), "torus" or "cmesh". Conc is the cmesh
	// concentration.
	Topo string
	Conc int
	// Rate is the per-node offered load in packets per cycle.
	Rate float64
	// Warmup is the statistics warmup window.
	Warmup sim.Cycle
	// Measure is how long traffic is offered after warmup.
	Measure sim.Cycle
	// FaultAt is the cycle the scenario's faults land (so packets are in
	// flight when the link dies — the hard case retransmission exists for).
	FaultAt sim.Cycle
	// Retx is the NI retransmission configuration for every run.
	Retx noc.RetxConfig
	// DrainLimit bounds the post-traffic drain.
	DrainLimit sim.Cycle
	// Seed derives all randomness.
	Seed uint64
	// Workers bounds scenario-level parallelism (0 = all cores); each
	// network steps serially.
	Workers int
}

// DefaultLinkFaultConfig returns the standard study setup: the paper's
// 8x8 mesh under moderate uniform load, a fault landing mid-measurement,
// and the retransmission timeout tuned above the post-fault latency
// tail, not just the fault-free p99 — a timeout inside the tail
// retransmits packets that were merely slow, and the spurious copies add
// load exactly where the detour already concentrates it.
func DefaultLinkFaultConfig() LinkFaultConfig {
	return LinkFaultConfig{
		Width: 8, Height: 8,
		Rate:       0.02,
		Warmup:     1000,
		Measure:    20000,
		FaultAt:    5000,
		Retx:       noc.RetxConfig{Timeout: 1500},
		DrainLimit: 200000,
		Seed:       2014,
	}
}

// Scenario is one study row: a name and the fault specs applied at
// LinkFaultConfig.FaultAt. An empty spec list is the fault-free baseline.
type Scenario struct {
	Name  string
	Specs []string
}

// ScenariosFromSpecs builds the scenario list for a comma-separated
// injection spec string (the noctool -inject grammar): the fault-free
// baseline followed by one single-fault scenario per spec. The specs are
// validated up front so a typo fails before any simulation runs.
func ScenariosFromSpecs(list string) ([]Scenario, error) {
	routers, sites, err := fault.ParseInjections(list)
	if err != nil {
		return nil, err
	}
	scenarios := []Scenario{{Name: "fault-free"}}
	for i := range routers {
		spec, err := fault.FormatInjection(routers[i], sites[i])
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, Scenario{Name: spec, Specs: []string{spec}})
	}
	return scenarios, nil
}

// ValidateScenarios checks every scenario's fault specs against the
// study's configured topology. ScenariosFromSpecs only checks the spec
// grammar — the dimensions live in the config — so range checking
// happens here, against the actual link table: an out-of-grid router
// fails on any family, a link spec pointing off the mesh edge fails on
// a mesh/cmesh, and the same spec on a torus validates because the edge
// router's port carries a wrap link there.
func ValidateScenarios(cfg LinkFaultConfig, scenarios []Scenario) error {
	topo, err := topology.New(cfg.Topo, cfg.Width, cfg.Height, cfg.Conc)
	if err != nil {
		return err
	}
	for _, sc := range scenarios {
		ids, sites, err := fault.ParseInjections(strings.Join(sc.Specs, ","))
		if err != nil {
			return err
		}
		for i, id := range ids {
			if id < 0 || id >= topo.Nodes() {
				return fmt.Errorf("experiments: scenario %q: router %d outside the %dx%d %s",
					sc.Name, id, cfg.Width, cfg.Height, topo.Kind())
			}
			if sites[i].Kind == fault.LinkDead {
				if _, ok := topo.Neighbor(id, sites[i].Port); !ok {
					return fmt.Errorf("experiments: scenario %q: router %d has no %s link in a %dx%d %s",
						sc.Name, id, sites[i].Port, cfg.Width, cfg.Height, topo.Kind())
				}
			}
		}
	}
	return nil
}

// LinkFaultPoint is one scenario's outcome.
type LinkFaultPoint struct {
	// Scenario names the fault configuration.
	Scenario string
	// Created counts offered packets including retransmitted copies;
	// Delivered counts unique deliveries; Retransmits, Drops and
	// Duplicates account for every extra copy.
	Created, Delivered, Retransmits, Drops, Duplicates uint64
	// DeliveryRatio is unique deliveries per unique offered packet.
	DeliveryRatio float64
	// Reroutes counts RC decisions that deviated from XY to avoid a fault.
	Reroutes uint64
	// AvgLatency and P99 summarize the measured latency distribution, in
	// cycles (retransmitted packets carry their original creation stamp,
	// so recovery cost is included).
	AvgLatency, P99 float64
}

// runScenario simulates one scenario to drain.
func runScenario(sc Scenario, cfg LinkFaultConfig) LinkFaultPoint {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	nodes := cfg.Width * cfg.Height
	src := traffic.NewSynthetic(nodes, cfg.Rate, traffic.Uniform(nodes), traffic.Bimodal(1, 5, 0.6), cfg.Seed)
	src.StopAt(cfg.Warmup + cfg.Measure)
	n := noc.MustNew(noc.Config{
		Width: cfg.Width, Height: cfg.Height, Topo: cfg.Topo, Conc: cfg.Conc,
		Router: rc, Warmup: cfg.Warmup, Workers: 1, Retx: cfg.Retx,
	}, src)
	defer n.Close()
	ids, sites, err := fault.ParseInjections(strings.Join(sc.Specs, ","))
	if err != nil {
		panic(err) // specs were validated by ScenariosFromSpecs
	}
	n.AddHook(func(c sim.Cycle) {
		if c != cfg.FaultAt {
			return
		}
		for i := range ids {
			if err := fault.ApplyNetwork(n, ids[i], sites[i], true); err != nil {
				panic(err)
			}
		}
	})
	n.Run(cfg.Warmup + cfg.Measure)
	n.Drain(cfg.Warmup + cfg.Measure + cfg.DrainLimit)
	st := n.Stats()
	var reroutes uint64
	for id := 0; id < nodes; id++ {
		reroutes += n.Router(id).Counters.Reroutes
	}
	return LinkFaultPoint{
		Scenario:      sc.Name,
		Created:       st.Created(),
		Delivered:     st.Ejected(),
		Retransmits:   st.Retransmits(),
		Drops:         st.Dropped(),
		Duplicates:    st.Duplicates(),
		DeliveryRatio: st.DeliveryRatio(),
		Reroutes:      reroutes,
		AvgLatency:    st.AvgLatency(),
		P99:           st.Percentile(99),
	}
}

// LinkFaultStudy runs every scenario (in parallel) and returns one point
// per scenario, in input order.
func LinkFaultStudy(cfg LinkFaultConfig, scenarios []Scenario) []LinkFaultPoint {
	return sweep.Map(scenarios, cfg.Workers, func(sc Scenario) LinkFaultPoint {
		return runScenario(sc, cfg)
	})
}

// FormatLinkFault renders the study as a fixed-width table.
func FormatLinkFault(points []LinkFaultPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Network-fault delivery campaign (%d scenarios)\n", len(points))
	fmt.Fprintf(&b, "  %-16s %9s %9s %6s %6s %5s %9s %8s %7s\n",
		"scenario", "delivered", "delivery", "retx", "drops", "dups", "reroutes", "avg lat", "p99")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-16s %9d %9.4f %6d %6d %5d %9d %8.2f %7.0f\n",
			p.Scenario, p.Delivered, p.DeliveryRatio, p.Retransmits, p.Drops,
			p.Duplicates, p.Reroutes, p.AvgLatency, p.P99)
	}
	return b.String()
}
