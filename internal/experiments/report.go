package experiments

import (
	"fmt"
	"strings"

	"gonoc/internal/area"
	"gonoc/internal/core"
	"gonoc/internal/fault"
	"gonoc/internal/ftrouters"
	"gonoc/internal/reliability"
	"gonoc/internal/router"
	"gonoc/internal/sweep"
)

// ReliabilityReport bundles the Section VII results: Tables I and II and
// Equations 4–7.
type ReliabilityReport struct {
	// Baseline is Table I (FIT per baseline pipeline stage).
	Baseline reliability.StageFIT
	// Correction is Table II (FIT of the correction circuitry).
	Correction reliability.StageFIT
	// MTTFBaselineHours is Equation 4.
	MTTFBaselineHours float64
	// MTTFProtectedHours is Equation 6 (the paper's Equation 5
	// arithmetic).
	MTTFProtectedHours float64
	// MTTFProtectedExactHours uses the textbook 1-out-of-2 formula.
	MTTFProtectedExactHours float64
	// Improvement is Equation 7 (≈6).
	Improvement float64
}

// Reliability computes the full Section VII report at the paper's design
// point.
func Reliability() ReliabilityReport {
	lib := reliability.DefaultFITLibrary()
	spec := reliability.PaperSpec()
	return ReliabilityReport{
		Baseline:                reliability.BaselineStageFIT(lib, spec),
		Correction:              reliability.CorrectionStageFIT(lib, spec),
		MTTFBaselineHours:       reliability.MTTFBaseline(lib, spec),
		MTTFProtectedHours:      reliability.MTTFProtected(lib, spec),
		MTTFProtectedExactHours: reliability.MTTFProtectedExact(lib, spec),
		Improvement:             reliability.Improvement(lib, spec),
	}
}

// AreaReport bundles the Section VI results.
type AreaReport struct {
	// AreaOverhead and PowerOverhead include fault detection (0.31 and
	// 0.30 in the paper).
	AreaOverhead, PowerOverhead float64
	// AreaOverheadNoDetect and PowerOverheadNoDetect exclude it (0.28,
	// 0.29).
	AreaOverheadNoDetect, PowerOverheadNoDetect float64
	// CritPath is the Section VI-B per-stage critical-path model.
	CritPath area.CritPath
}

// Area computes the Section VI report at the paper's design point.
func Area() AreaReport {
	m := area.DefaultModel()
	spec := reliability.PaperSpec()
	return AreaReport{
		AreaOverhead:          m.AreaOverhead(spec, true),
		PowerOverhead:         m.PowerOverhead(spec, true),
		AreaOverheadNoDetect:  m.AreaOverhead(spec, false),
		PowerOverheadNoDetect: m.PowerOverhead(spec, false),
		CritPath:              area.DefaultCritPath(),
	}
}

// SPFTable computes Table III, deriving the proposed router's area
// overhead from the area model.
func SPFTable() []reliability.SPFResult {
	return ftrouters.TableIII(Area().AreaOverhead)
}

// SPFVCSweep computes the proposed router's SPF across VC counts
// (Section VIII-E's corollary: 7 at 2 VCs, 11.4 at 4, higher beyond).
func SPFVCSweep(vcs []int) []reliability.SPFResult {
	m := area.DefaultModel()
	out := make([]reliability.SPFResult, len(vcs))
	for i, v := range vcs {
		spec := reliability.RouterSpec{Ports: 5, VCs: v, MeshNodes: 64, FlitBits: 32}
		r := reliability.AnalyzeSPF(spec.Ports, spec.VCs, m.AreaOverhead(spec, true))
		r.Design = fmt.Sprintf("Proposed Router (%d VCs)", v)
		out[i] = r
	}
	return out
}

// CampaignTable runs the Monte-Carlo faults-to-failure campaigns of all
// four designs (the simulation counterpart of Table III's fault counts).
// The designs are independent seeded campaigns, so they run on up to
// workers goroutines (0 = all cores) with identical results at any
// worker count.
func CampaignTable(trials int, seed uint64, workers int) []ftrouters.CampaignResult {
	return CampaignTableObserved(trials, seed, workers, nil)
}

// CampaignTableObserved is CampaignTable with a progress callback (nil
// to disable): onTrial(design, done, total) runs after every trial of
// every design, so a long campaign can feed live telemetry gauges. The
// callback may be invoked concurrently from the sweep workers; the
// results are identical with or without it.
func CampaignTableObserved(trials int, seed uint64, workers int, onTrial func(design string, done, total int)) []ftrouters.CampaignResult {
	observe := func(design string) func(done, total int) {
		if onTrial == nil {
			return nil
		}
		return func(done, total int) { onTrial(design, done, total) }
	}
	return sweep.Run(4, workers, func(i int) ftrouters.CampaignResult {
		switch i {
		case 0:
			return ftrouters.FaultsToFailureObserved(ftrouters.NewBulletProof(), trials, seed, observe("BulletProof"))
		case 1:
			return ftrouters.FaultsToFailureObserved(ftrouters.NewVicis(), trials, seed, observe("Vicis"))
		case 2:
			return ftrouters.FaultsToFailureObserved(ftrouters.NewRoCo(), trials, seed, observe("RoCo"))
		default:
			cfg := router.DefaultConfig()
			cfg.FaultTolerant = true
			proposed := fault.FaultsToFailureObserved(cfg, trials, seed, fault.UniversePaper, observe("Proposed Router"))
			return ftrouters.CampaignResult{
				Design: "Proposed Router",
				Trials: proposed.Trials,
				Mean:   proposed.Mean,
				Min:    proposed.Min,
				Max:    proposed.Max,
				P50:    proposed.P50,
				P95:    proposed.P95,
				P99:    proposed.P99,
			}
		}
	})
}

// FormatCampaign renders faults-to-failure campaign results, percentiles
// alongside the mean.
func FormatCampaign(rows []ftrouters.CampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Faults to failure (Monte-Carlo, %d trials)\n", rows[0].Trials)
	fmt.Fprintf(&b, "  %-24s %7s %5s %5s %5s %5s %5s\n", "Architecture", "mean", "p50", "p95", "p99", "min", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %7.2f %5d %5d %5d %5d %5d\n",
			r.Design, r.Mean, r.P50, r.P95, r.P99, r.Min, r.Max)
	}
	return b.String()
}

// FormatReliability renders Tables I/II and the MTTF analysis as text.
func FormatReliability(r ReliabilityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — FIT of baseline pipeline stages (per 10⁹ h)\n")
	for _, st := range []core.StageID{core.StageRC, core.StageVA, core.StageSA, core.StageXB} {
		fmt.Fprintf(&b, "  %-3v %8.1f\n", st, r.Baseline.Stage(st))
	}
	fmt.Fprintf(&b, "  total %6.1f\n\n", r.Baseline.Total())
	fmt.Fprintf(&b, "Table II — FIT of correction circuitry (per 10⁹ h)\n")
	for _, st := range []core.StageID{core.StageRC, core.StageVA, core.StageSA, core.StageXB} {
		fmt.Fprintf(&b, "  %-3v %8.1f\n", st, r.Correction.Stage(st))
	}
	fmt.Fprintf(&b, "  total %6.1f\n\n", r.Correction.Total())
	fmt.Fprintf(&b, "Eq. 4  MTTF(baseline)  ≈ %10.0f h\n", r.MTTFBaselineHours)
	fmt.Fprintf(&b, "Eq. 6  MTTF(protected) ≈ %10.0f h (paper's Eq. 5 arithmetic)\n", r.MTTFProtectedHours)
	fmt.Fprintf(&b, "       MTTF(protected) ≈ %10.0f h (exact 1-of-2 formula)\n", r.MTTFProtectedExactHours)
	fmt.Fprintf(&b, "Eq. 7  improvement     ≈ %10.2f×\n", r.Improvement)
	return b.String()
}

// FormatSPF renders Table III as text.
func FormatSPF(rows []reliability.SPFResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — SPF comparison\n")
	fmt.Fprintf(&b, "  %-24s %6s %22s %6s\n", "Architecture", "Area", "#Faults to failure", "SPF")
	for _, r := range rows {
		areaCol := fmt.Sprintf("%.0f%%", r.AreaOverhead*100)
		if r.AreaOverhead == 0 {
			areaCol = "N/A"
		}
		fmt.Fprintf(&b, "  %-24s %6s %22.2f %6.2f\n", r.Design, areaCol, r.MeanFaults, r.SPF)
	}
	return b.String()
}

// FormatArea renders the full Section VI report (VI-A overheads followed
// by the VI-B critical path) as text.
func FormatArea(a AreaReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-A — synthesis overheads (protected vs baseline)\n")
	fmt.Fprintf(&b, "  area  +%.0f%% (correction only: +%.0f%%)\n", a.AreaOverhead*100, a.AreaOverheadNoDetect*100)
	fmt.Fprintf(&b, "  power +%.0f%% (correction only: +%.0f%%)\n\n", a.PowerOverhead*100, a.PowerOverheadNoDetect*100)
	b.WriteString(FormatCritPath(a))
	return b.String()
}

// FormatCritPath renders only the Section VI-B critical-path analysis:
// per-stage delays, the stage that sets the clock, and each stage's
// slack under the protected clock.
func FormatCritPath(a AreaReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-B — critical path per stage\n")
	prot := a.CritPath.ProtectedPs()
	bp, pp := a.CritPath.ClockPeriodPs()
	for _, st := range []core.StageID{core.StageRC, core.StageVA, core.StageSA, core.StageXB} {
		limiter := ""
		if prot.Stage(st) == pp {
			limiter = "  ← sets the clock"
		}
		fmt.Fprintf(&b, "  %-3v %6.0f ps → %6.0f ps (+%.0f%%, slack %.0f ps)%s\n",
			st, a.CritPath.BaselinePs.Stage(st), prot.Stage(st),
			a.CritPath.Overhead(st)*100, pp-prot.Stage(st), limiter)
	}
	fmt.Fprintf(&b, "  clock period %0.f ps → %0.f ps (+%.1f%%)\n", bp, pp, (pp/bp-1)*100)
	return b.String()
}

// FormatSuite renders a Figure 7/8 result as text.
func FormatSuite(s SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s latency, fault-free vs fault-injected (avg cycles)\n", s.Suite)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  %-14s %7.1f → %7.1f  (+%5.1f%%, %d faults)  p50 %.0f→%.0f p95 %.0f→%.0f p99 %.0f→%.0f\n",
			p.App, p.FaultFree, p.Faulty, p.DeltaPct, p.Faults,
			p.FaultFreeQ.P50, p.FaultyQ.P50, p.FaultFreeQ.P95, p.FaultyQ.P95,
			p.FaultFreeQ.P99, p.FaultyQ.P99)
	}
	fmt.Fprintf(&b, "  overall latency increase: +%.1f%%\n", s.OverallDeltaPct)
	return b.String()
}
