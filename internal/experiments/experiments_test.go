package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"gonoc/internal/workloads"
)

// fastCfg is a reduced configuration for unit tests; the full-scale
// Figure 7/8 runs live in the repository-level benchmarks.
func fastCfg() LatencyConfig {
	return LatencyConfig{
		Width: 4, Height: 4,
		Warmup:    1000,
		Measure:   6000,
		FaultMean: 4000,
		Seed:      7,
	}
}

func TestRunAppFaultyLatencyHigher(t *testing.T) {
	app := workloads.App{Name: "test", Rate: 0.015, ReadFrac: 0.7, Burstiness: 0.3, MemFrac: 0.25}
	pt := RunApp(app, fastCfg())
	if pt.FaultFree <= 0 || pt.Faulty <= 0 {
		t.Fatalf("degenerate latencies: %+v", pt)
	}
	if pt.Faults == 0 {
		t.Fatal("no faults injected in faulty run")
	}
	if pt.Faulty <= pt.FaultFree {
		t.Fatalf("faulty latency %.1f not above fault-free %.1f", pt.Faulty, pt.FaultFree)
	}
	wantDelta := (pt.Faulty - pt.FaultFree) / pt.FaultFree * 100
	if math.Abs(pt.DeltaPct-wantDelta) > 1e-9 {
		t.Fatalf("DeltaPct %v inconsistent", pt.DeltaPct)
	}
}

func TestRunSuiteAggregates(t *testing.T) {
	apps := workloads.SPLASH2()[:3]
	res := RunSuite("mini", apps, fastCfg())
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.OverallDeltaPct <= 0 {
		t.Fatalf("overall delta %.2f%% not positive under faults", res.OverallDeltaPct)
	}
	if res.String() == "" || FormatSuite(res) == "" {
		t.Fatal("empty rendering")
	}
}

func TestRunAppDeterministic(t *testing.T) {
	app := workloads.PARSEC()[0]
	a := RunApp(app, fastCfg())
	b := RunApp(app, fastCfg())
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestReliabilityReport(t *testing.T) {
	r := Reliability()
	if math.Abs(r.Baseline.Total()-2822.5) > 1e-6 {
		t.Errorf("Table I total %v", r.Baseline.Total())
	}
	if math.Abs(r.Correction.Total()-646) > 1e-6 {
		t.Errorf("Table II total %v", r.Correction.Total())
	}
	if r.Improvement < 6 || r.Improvement > 6.4 {
		t.Errorf("improvement %v not ≈6", r.Improvement)
	}
	txt := FormatReliability(r)
	for _, want := range []string{"Table I", "Table II", "Eq. 4", "Eq. 7"} {
		if !strings.Contains(txt, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestAreaReport(t *testing.T) {
	a := Area()
	if math.Abs(a.AreaOverhead-0.31) > 0.01 || math.Abs(a.PowerOverhead-0.30) > 0.01 {
		t.Errorf("overheads %.3f/%.3f, want ≈0.31/0.30", a.AreaOverhead, a.PowerOverhead)
	}
	txt := FormatArea(a)
	if !strings.Contains(txt, "critical path") {
		t.Errorf("area report missing critical path: %s", txt)
	}
}

func TestSPFTable(t *testing.T) {
	rows := SPFTable()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Design != "Proposed Router" || math.Abs(last.SPF-11.4) > 0.15 {
		t.Fatalf("proposed row %+v", last)
	}
	if !strings.Contains(FormatSPF(rows), "BulletProof") {
		t.Fatal("Table III rendering missing rows")
	}
}

func TestSPFVCSweep(t *testing.T) {
	rows := SPFVCSweep([]int{2, 4, 6, 8})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0].SPF-7.0) > 0.5 {
		t.Errorf("2-VC SPF %v, want ≈7", rows[0].SPF)
	}
	if math.Abs(rows[1].SPF-11.4) > 0.15 {
		t.Errorf("4-VC SPF %v, want ≈11.4", rows[1].SPF)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SPF <= rows[i-1].SPF {
			t.Errorf("SPF not increasing with VCs: %v", rows)
		}
	}
}

func TestCampaignTable(t *testing.T) {
	rows := CampaignTable(400, 9, 0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The designs run as parallel sweep jobs; the table must not depend on
	// how many actually ran at once.
	if serial := CampaignTable(400, 9, 1); !reflect.DeepEqual(rows, serial) {
		t.Fatalf("campaign table depends on worker count:\n%v\nvs\n%v", rows, serial)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Design] = r.Mean
	}
	// The ordering the paper's Table III implies: BulletProof < RoCo <
	// Vicis < proposed.
	if !(byName["BulletProof"] < byName["RoCo"] &&
		byName["RoCo"] < byName["Vicis"] &&
		byName["Vicis"] < byName["Proposed Router"]) {
		t.Fatalf("campaign ordering wrong: %v", byName)
	}
}
