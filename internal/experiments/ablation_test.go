package experiments

import "testing"

func TestAblationRotatePeriod(t *testing.T) {
	pts := AblationRotatePeriod([]int{1, 16, 256}, 8000, 3)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Delivered == 0 || p.AvgLatency <= 0 {
			t.Fatalf("degenerate point %v", p)
		}
	}
	// A very long rotation period starves non-default VCs and must be
	// measurably worse than the default.
	if pts[2].AvgLatency <= pts[1].AvgLatency {
		t.Errorf("period 256 latency %.1f not above period 16 latency %.1f",
			pts[2].AvgLatency, pts[1].AvgLatency)
	}
}

func TestAblationVCCount(t *testing.T) {
	pts := AblationVCCount([]int{1, 4}, 8000, 5)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// More VCs must not hurt latency at moderate load (wormhole
	// head-of-line blocking shrinks).
	if pts[1].AvgLatency > pts[0].AvgLatency*1.05 {
		t.Errorf("4 VCs latency %.2f worse than 1 VC %.2f", pts[1].AvgLatency, pts[0].AvgLatency)
	}
	for _, p := range pts {
		if p.Delivered == 0 {
			t.Fatalf("nothing delivered at %d VCs", p.Param)
		}
	}
}

func TestAblationSecondaryPath(t *testing.T) {
	res := AblationSecondaryPath(8000, 7)
	if res.ProtectedDelivered == 0 || res.ProtectedLatency <= 0 {
		t.Fatalf("protected run degenerate: %+v", res)
	}
	// Without the secondary path the baseline wedges eastbound flows:
	// packets pile up undelivered.
	if res.BaselineStuck == 0 {
		t.Fatal("baseline shows no stuck packets despite dead East muxes")
	}
	if res.ProtectedDelivered <= res.BaselineDelivered {
		t.Fatalf("protected delivered %d not above baseline %d",
			res.ProtectedDelivered, res.BaselineDelivered)
	}
}

func TestDegradationCurve(t *testing.T) {
	pts := DegradationCurve([]int{0, 40, 120}, 8000, 11)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Faults != 0 || pts[1].Faults != 40 || pts[2].Faults != 120 {
		t.Fatalf("fault counts %v", pts)
	}
	// Latency rises monotonically (within this spacing) as faults pile up,
	// while delivery continues at every point.
	if !(pts[0].AvgLatency < pts[1].AvgLatency && pts[1].AvgLatency < pts[2].AvgLatency) {
		t.Errorf("latency not increasing: %.2f, %.2f, %.2f",
			pts[0].AvgLatency, pts[1].AvgLatency, pts[2].AvgLatency)
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("no throughput at %d faults", p.Faults)
		}
	}
}
