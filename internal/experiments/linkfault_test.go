package experiments

import (
	"strings"
	"testing"
)

// TestValidateScenarios pins the up-front range check of the -inject
// delivery campaign: specs are validated against the campaign's actual
// grid dimensions, not the 8x8 the study defaults to, so an
// out-of-grid router or a link pointing off the mesh edge fails before
// any trial runs (the mid-run fault hook panics on a bad spec).
func TestValidateScenarios(t *testing.T) {
	cases := []struct {
		name          string
		width, height int
		topo          string
		specs         string
		wantErr       string // substring; "" means the specs validate
	}{
		{"in range 8x8", 8, 8, "", "5:link:e,10:router", ""},
		{"in range 4x4", 4, 4, "", "5:link:e,0:router", ""},
		{"router outside 4x4", 4, 4, "", "16:router", "router 16 outside the 4x4 mesh"},
		{"router outside 2x2", 2, 2, "", "9:link:e", "router 9 outside the 2x2 mesh"},
		{"in-range in 8x8 but not 4x4", 4, 4, "", "40:sa1:e", "router 40 outside the 4x4 mesh"},
		{"link off the east edge", 4, 4, "", "3:link:e", "router 3 has no E link"},
		{"link off the north edge", 4, 4, "", "1:link:n", "router 1 has no N link"},
		{"in-router fault on edge router ok", 4, 4, "", "3:sa1:e", ""},
		{"fault-free baseline only", 4, 4, "", "", ""},
		// A torus's edge routers carry wrap links, so the specs that
		// point off a mesh edge validate there.
		{"torus wrap link east", 4, 4, "torus", "3:link:e", ""},
		{"torus wrap link north", 4, 4, "torus", "1:link:n", ""},
		{"torus router outside", 4, 4, "torus", "16:router", "router 16 outside the 4x4 torus"},
		{"torus size-1 dimension has no NS links", 4, 1, "torus", "0:link:n", "router 0 has no N link in a 4x1 torus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultLinkFaultConfig()
			cfg.Width, cfg.Height, cfg.Topo = tc.width, tc.height, tc.topo
			scenarios, err := ScenariosFromSpecs(tc.specs)
			if err != nil {
				t.Fatalf("ScenariosFromSpecs(%q): %v", tc.specs, err)
			}
			err = ValidateScenarios(cfg, scenarios)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateScenarios: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ValidateScenarios: want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ValidateScenarios: error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
