// Package experiments assembles the substrates into the paper's
// evaluation experiments: the Figure 7/8 latency studies, the Table I–III
// reliability computations and the Section VI area/power/critical-path
// report. Each experiment is a pure function of its configuration, so
// benchmarks, examples and the noctool CLI all regenerate identical
// numbers.
package experiments

import (
	"fmt"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/sweep"
	"gonoc/internal/topology"
	"gonoc/internal/workloads"
)

// LatencyConfig parameterizes a Figure 7/8 run.
type LatencyConfig struct {
	// Width and Height give the mesh (the paper's is 8×8).
	Width, Height int
	// Warmup is the statistics warmup window.
	Warmup sim.Cycle
	// Measure is how long to measure after warmup.
	Measure sim.Cycle
	// FaultMean is the injector's mean inter-fault interval per (router,
	// stage). The paper used 10M cycles on multi-billion-cycle GEM5
	// runs; we scale it to our simulation length so that a comparable
	// multiple-fault population is present during measurement.
	FaultMean sim.Cycle
	// Seed derives all randomness.
	Seed uint64
	// Workers bounds parallelism across applications (0 = all cores).
	Workers int
	// StepWorkers shards each network's compute phase (noc.Config.Workers:
	// 0 = all cores, 1 = serial). Results are identical at any value; with
	// Workers already saturating the cores, 1 avoids oversubscription.
	StepWorkers int
}

// DefaultLatencyConfig returns the scaled-down Figure 7/8 configuration.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		Width: 8, Height: 8,
		Warmup:    5000,
		Measure:   25000,
		FaultMean: 20000,
		Seed:      2014, // the paper's year; any seed works
		// The suite already runs one app per core; serial stepping inside
		// each network avoids oversubscription.
		StepWorkers: 1,
	}
}

// Quantiles summarizes one run's latency distribution tail, extracted
// from the collector's histogram.
type Quantiles struct {
	// P50, P95 and P99 are packet-latency percentiles in cycles.
	P50, P95, P99 float64
}

// LatencyPoint is one application's bar pair in Figure 7/8.
type LatencyPoint struct {
	// App is the benchmark name.
	App string
	// FaultFree and Faulty are average packet latencies in cycles.
	FaultFree, Faulty float64
	// FaultFreeQ and FaultyQ are the corresponding distribution tails —
	// the fault-tolerance mechanisms cost little on average but show up
	// in the tail, which the averages alone can't demonstrate.
	FaultFreeQ, FaultyQ Quantiles
	// DeltaPct is the percentage increase.
	DeltaPct float64
	// Faults is how many faults were present by the end of the faulty
	// run.
	Faults int
}

// SuiteResult aggregates a whole benchmark suite (one figure).
type SuiteResult struct {
	// Suite names the benchmark suite.
	Suite string
	// Points holds one entry per application.
	Points []LatencyPoint
	// OverallDeltaPct is the suite-average latency increase (the paper's
	// "overall NoC latency has increased by 10% / 13%").
	OverallDeltaPct float64
}

// RunApp simulates one application fault-free and fault-injected on the
// protected-router network and returns its latency pair.
func RunApp(app workloads.App, cfg LatencyConfig) LatencyPoint {
	run := func(faulty bool) (float64, Quantiles, int) {
		rc := router.DefaultConfig()
		rc.FaultTolerant = true
		mesh := topology.NewMesh(cfg.Width, cfg.Height)
		tr := workloads.NewCoherence(app, mesh, cfg.Seed)
		n := noc.MustNew(noc.Config{
			Width: cfg.Width, Height: cfg.Height, Router: rc, Warmup: cfg.Warmup,
			Workers: cfg.StepWorkers,
		}, tr)
		defer n.Close()
		var inj *fault.Injector
		if faulty {
			inj = fault.NewInjector(n, cfg.FaultMean, cfg.Seed^0x9e3779b9, true)
		}
		n.Run(cfg.Warmup + cfg.Measure)
		nFaults := 0
		if inj != nil {
			nFaults = len(inj.Injected())
		}
		st := n.Stats()
		q := Quantiles{P50: st.Percentile(50), P95: st.Percentile(95), P99: st.Percentile(99)}
		return st.AvgLatency(), q, nFaults
	}
	clean, cleanQ, _ := run(false)
	dirty, dirtyQ, nFaults := run(true)
	pt := LatencyPoint{
		App: app.Name, FaultFree: clean, Faulty: dirty,
		FaultFreeQ: cleanQ, FaultyQ: dirtyQ, Faults: nFaults,
	}
	if clean > 0 {
		pt.DeltaPct = (dirty - clean) / clean * 100
	}
	return pt
}

// RunSuite runs every application of a suite (in parallel) and aggregates
// the figure.
func RunSuite(suite string, apps []workloads.App, cfg LatencyConfig) SuiteResult {
	points := sweep.Map(apps, cfg.Workers, func(a workloads.App) LatencyPoint {
		return RunApp(a, cfg)
	})
	res := SuiteResult{Suite: suite, Points: points}
	var clean, dirty float64
	for _, p := range points {
		clean += p.FaultFree
		dirty += p.Faulty
	}
	if clean > 0 {
		res.OverallDeltaPct = (dirty - clean) / clean * 100
	}
	return res
}

// Figure7 reproduces the SPLASH-2 latency study.
func Figure7(cfg LatencyConfig) SuiteResult {
	return RunSuite("SPLASH-2", workloads.SPLASH2(), cfg)
}

// Figure8 reproduces the PARSEC latency study.
func Figure8(cfg LatencyConfig) SuiteResult {
	return RunSuite("PARSEC", workloads.PARSEC(), cfg)
}

// String implements fmt.Stringer.
func (s SuiteResult) String() string {
	return fmt.Sprintf("%s: overall +%.1f%% across %d apps", s.Suite, s.OverallDeltaPct, len(s.Points))
}
