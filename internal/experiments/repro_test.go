package experiments

import "testing"

// TestFiguresReproduceShape is the full-scale reproduction guard: it runs
// Figures 7 and 8 at the paper's scale and asserts the headline shape —
// an overall fault-induced latency increase of roughly 10% on SPLASH-2
// and roughly 13% on PARSEC, with PARSEC above SPLASH-2. It is the
// slowest test in the repository (about two minutes single-threaded) and
// is skipped under -short.
func TestFiguresReproduceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Figure 7/8 run")
	}
	cfg := DefaultLatencyConfig()
	f7 := Figure7(cfg)
	f8 := Figure8(cfg)
	t.Logf("SPLASH-2 overall +%.1f%%, PARSEC overall +%.1f%%", f7.OverallDeltaPct, f8.OverallDeltaPct)

	if f7.OverallDeltaPct < 6 || f7.OverallDeltaPct > 16 {
		t.Errorf("SPLASH-2 overall delta %.1f%% outside [6%%, 16%%] (paper: 10%%)", f7.OverallDeltaPct)
	}
	if f8.OverallDeltaPct < 9 || f8.OverallDeltaPct > 19 {
		t.Errorf("PARSEC overall delta %.1f%% outside [9%%, 19%%] (paper: 13%%)", f8.OverallDeltaPct)
	}
	if f8.OverallDeltaPct <= f7.OverallDeltaPct {
		t.Errorf("PARSEC delta %.1f%% not above SPLASH-2 %.1f%%", f8.OverallDeltaPct, f7.OverallDeltaPct)
	}
	// Every application individually must get slower under faults, and
	// all runs must have seen a substantial fault population.
	for _, s := range []SuiteResult{f7, f8} {
		for _, p := range s.Points {
			if p.Faulty <= p.FaultFree {
				t.Errorf("%s: faulty latency %.1f not above fault-free %.1f", p.App, p.Faulty, p.FaultFree)
			}
			if p.Faults < 100 {
				t.Errorf("%s: only %d faults present", p.App, p.Faults)
			}
		}
	}
}
