package experiments

import (
	"fmt"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/rng"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: the bypass default-winner rotation period (Section V-C1's
// anti-starvation rotation), the VC count, and the value of the crossbar
// secondary path.

// AblationPoint is one configuration's outcome in an ablation sweep.
type AblationPoint struct {
	// Param is the swept parameter's value.
	Param int
	// AvgLatency is the measured average packet latency in cycles.
	AvgLatency float64
	// Delivered counts delivered packets (a proxy for throughput when
	// configurations wedge or degrade).
	Delivered uint64
}

// String implements fmt.Stringer.
func (p AblationPoint) String() string {
	return fmt.Sprintf("param=%d latency=%.2f delivered=%d", p.Param, p.AvgLatency, p.Delivered)
}

// ablationNet builds a 4×4 protected network with moderate uniform
// traffic for ablation runs.
func ablationNet(rc router.Config, rate float64, seed uint64, warmup sim.Cycle) *noc.Network {
	rc.FaultTolerant = true
	src := traffic.NewSynthetic(16, rate, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), seed)
	return noc.MustNew(noc.Config{Width: 4, Height: 4, Router: rc, Warmup: warmup}, src)
}

// AblationRotatePeriod measures latency as a function of the bypass
// default-winner rotation period, with every router's East and West SA1
// arbiters faulty so the bypass path carries real traffic. Too short a
// period wastes cycles on transfers; too long a period starves the
// non-default VCs — the sweep exposes the trade-off behind the paper's
// "every input VC [becomes] default winner at different points of time".
func AblationRotatePeriod(periods []int, cycles sim.Cycle, seed uint64) []AblationPoint {
	out := make([]AblationPoint, len(periods))
	for i, p := range periods {
		rc := router.DefaultConfig()
		rc.BypassRotatePeriod = p
		n := ablationNet(rc, 0.06, seed, cycles/10)
		for id := 0; id < 16; id++ {
			n.Router(id).SetSA1Fault(topology.East, true)
			n.Router(id).SetSA1Fault(topology.West, true)
		}
		n.Run(cycles)
		out[i] = AblationPoint{
			Param:      p,
			AvgLatency: n.Stats().AvgLatency(),
			Delivered:  n.Stats().Ejected(),
		}
		n.Close()
	}
	return out
}

// AblationVCCount measures fault-free latency versus the number of
// virtual channels per port (more VCs reduce head-of-line blocking but
// the paper's SPF analysis shows they also add tolerable fault sites).
func AblationVCCount(vcs []int, cycles sim.Cycle, seed uint64) []AblationPoint {
	out := make([]AblationPoint, len(vcs))
	for i, v := range vcs {
		rc := router.DefaultConfig()
		rc.VCs = v
		rc.Classes = 1
		n := ablationNet(rc, 0.03, seed, cycles/10)
		n.Run(cycles)
		out[i] = AblationPoint{
			Param:      v,
			AvgLatency: n.Stats().AvgLatency(),
			Delivered:  n.Stats().Ejected(),
		}
		n.Close()
	}
	return out
}

// SecondaryPathAblation compares, under one crossbar-mux fault per
// router, the protected router (secondary path carries the detour)
// against the unprotected baseline (the affected output is simply dead).
// It returns the protected network's latency and delivery count, and the
// baseline's delivered/in-flight counts showing traffic wedging.
type SecondaryPathAblation struct {
	ProtectedLatency   float64
	ProtectedDelivered uint64
	BaselineDelivered  uint64
	BaselineStuck      uint64
}

// AblationSecondaryPath runs the secondary-path ablation: every router's
// East crossbar mux is faulty.
func AblationSecondaryPath(cycles sim.Cycle, seed uint64) SecondaryPathAblation {
	run := func(ft bool) (float64, uint64, uint64) {
		rc := router.DefaultConfig()
		rc.FaultTolerant = ft
		src := traffic.NewSynthetic(16, 0.02, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), seed)
		n := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: rc, Warmup: cycles / 10}, src)
		defer n.Close()
		for id := 0; id < 16; id++ {
			n.Router(id).SetXBFault(topology.East, true)
		}
		n.Run(cycles)
		return n.Stats().AvgLatency(), n.Stats().Ejected(), n.Stats().InFlight()
	}
	lat, del, _ := run(true)
	_, bdel, bstuck := run(false)
	return SecondaryPathAblation{
		ProtectedLatency:   lat,
		ProtectedDelivered: del,
		BaselineDelivered:  bdel,
		BaselineStuck:      bstuck,
	}
}

// DegradationPoint is one point on the graceful-degradation curve.
type DegradationPoint struct {
	// Faults is the number of (tolerable) faults present in the network.
	Faults int
	// AvgLatency is the measured average packet latency.
	AvgLatency float64
	// Throughput is delivered flits per node per cycle.
	Throughput float64
}

// DegradationCurve measures how the protected network degrades as
// tolerable faults accumulate — the continuous version of the paper's
// before/after latency comparison. For each requested fault count a
// fresh 4×4 network receives that many randomly placed safe faults
// before measurement.
func DegradationCurve(faultCounts []int, cycles sim.Cycle, seed uint64) []DegradationPoint {
	out := make([]DegradationPoint, len(faultCounts))
	for i, nf := range faultCounts {
		rc := router.DefaultConfig()
		n := ablationNet(rc, 0.03, seed, cycles/10)
		r := rng.New(seed ^ uint64(nf)<<32)
		sites := fault.SitesIn(n.Router(0).Config(), fault.UniverseAll)
		placed := 0
		for attempts := 0; placed < nf && attempts < nf*50; attempts++ {
			node := r.Intn(16)
			rt := n.Router(node)
			s := sites[r.Intn(len(sites))]
			if fault.IsFaulty(rt, s) {
				continue
			}
			fault.Apply(rt, s, true)
			if !rt.Functional() {
				fault.Apply(rt, s, false)
				continue
			}
			placed++
		}
		n.Run(cycles)
		st := n.Stats()
		out[i] = DegradationPoint{
			Faults:     placed,
			AvgLatency: st.AvgLatency(),
			Throughput: st.ThroughputFlits(n.Now()) / 16,
		}
		n.Close()
	}
	return out
}
