// Package perf measures step-loop throughput across mesh sizes, worker
// counts and topology families, and records the results as a JSON
// snapshot (BENCH_scaling.json at the repository root) that CI compares
// fresh measurements against.
//
// The package is deliberately outside the deterministic simulation
// core: wall-clock timing and runtime memory statistics are allowed
// here, while the determinism linter (cmd/nocvet) bans them inside the
// simulation packages. Nothing in this package feeds back into a
// simulation — it only observes how fast one runs.
//
// Each measured point reports two windows:
//
//   - Throughput: steps per second with live traffic, the realistic
//     simulation workload (injection, traversal and ejection all
//     active).
//   - Allocation: after the traffic horizon, once the injection side is
//     idle (Network.InjectionIdle), allocations per Step. The zero-alloc
//     hot-path contract says this is exactly 0; the snapshot comparison
//     and TestStepZeroAllocSteadyState both enforce it.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/traffic"
)

// Schema identifies the snapshot format. Bump the suffix when the
// structure or the meaning of a field changes; the reader rejects
// snapshots with a different schema so stale files fail loudly.
const Schema = "gonoc-bench-scaling/v2"

// Observability modes a case can measure. Off is the zero-alloc hot
// path; ObsOn adds the counter registry, stall attribution and the
// windowed utilization ring; ObsFlight additionally arms the flight
// recorder, so every trace-emitting site also stores into its ring.
const (
	ObsOff    = ""
	ObsOn     = "obs"
	ObsFlight = "flight"
)

// Case is one measurement configuration.
type Case struct {
	Topo          string  `json:"topo"` // "" means mesh
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	Workers       int     `json:"workers"`
	Rate          float64 `json:"rate"`
	WarmupCycles  int     `json:"warmup_cycles"`
	MeasureCycles int     `json:"measure_cycles"`
	// ObsMode selects the observability configuration: ObsOff, ObsOn or
	// ObsFlight. The steady-state zero-alloc contract holds in every
	// mode — handles are pre-bound and the rings are pre-allocated — so
	// the modes differ in time per step, not allocations.
	ObsMode string `json:"obs_mode,omitempty"`
}

// Key identifies a case across snapshots, independent of how many
// cycles each side measured.
func (c Case) Key() string {
	topo := c.Topo
	if topo == "" {
		topo = "mesh"
	}
	k := fmt.Sprintf("%s-%dx%d-w%d", topo, c.Width, c.Height, c.Workers)
	if c.ObsMode != ObsOff {
		k += "-" + c.ObsMode
	}
	return k
}

// Point is one measured case.
type Point struct {
	Case
	StepsPerSec        float64 `json:"steps_per_sec"`
	RouterCyclesPerSec float64 `json:"router_cycles_per_sec"`
	AllocsPerStep      float64 `json:"allocs_per_step"` // steady state; contract: 0
	BytesPerStep       float64 `json:"bytes_per_step"`
}

// Snapshot is a recorded benchmark trajectory plus enough machine
// context to judge whether a comparison is meaningful.
type Snapshot struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Points    []Point `json:"points"`
}

// DefaultTrajectory is the full checked-in curve: mesh size scaling at
// one worker, worker scaling at 64x64, and the torus/cmesh families.
// Measurement windows shrink as meshes grow so every point costs
// roughly the same wall time.
func DefaultTrajectory() []Case {
	return []Case{
		{Topo: "", Width: 8, Height: 8, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 3000},
		{Topo: "", Width: 16, Height: 16, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 2000},
		{Topo: "", Width: 32, Height: 32, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000},
		{Topo: "", Width: 64, Height: 64, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 400},
		{Topo: "", Width: 64, Height: 64, Workers: 2, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 400},
		{Topo: "", Width: 64, Height: 64, Workers: 4, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 400},
		{Topo: "", Width: 64, Height: 64, Workers: 8, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 400},
		{Topo: "torus", Width: 32, Height: 32, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000},
		{Topo: "torus", Width: 32, Height: 32, Workers: 4, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000},
		{Topo: "cmesh", Width: 32, Height: 32, Workers: 4, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000},
		// Observability overhead: the same 32x32 mesh with counters,
		// stall attribution and windows on, and with the flight recorder
		// armed on top. Compare against the w1 obs-off point above.
		{Topo: "", Width: 32, Height: 32, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000, ObsMode: ObsOn},
		{Topo: "", Width: 32, Height: 32, Workers: 1, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000, ObsMode: ObsFlight},
		{Topo: "", Width: 64, Height: 64, Workers: 4, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 400, ObsMode: ObsOn},
	}
}

// QuickTrajectory is the short CI smoke subset: same keys as the
// corresponding DefaultTrajectory points (so Compare can match them)
// with smaller measurement windows.
func QuickTrajectory() []Case {
	return []Case{
		{Topo: "", Width: 16, Height: 16, Workers: 1, Rate: 0.02, WarmupCycles: 100, MeasureCycles: 400},
		{Topo: "", Width: 64, Height: 64, Workers: 1, Rate: 0.02, WarmupCycles: 100, MeasureCycles: 120},
		{Topo: "", Width: 64, Height: 64, Workers: 4, Rate: 0.02, WarmupCycles: 100, MeasureCycles: 120},
		{Topo: "torus", Width: 32, Height: 32, Workers: 4, Rate: 0.02, WarmupCycles: 100, MeasureCycles: 200},
		// The CI strict gate also pins the zero-alloc contract with
		// observability on (counters + windows + flight recorder).
		{Topo: "", Width: 16, Height: 16, Workers: 1, Rate: 0.02, WarmupCycles: 100, MeasureCycles: 400, ObsMode: ObsFlight},
	}
}

// Measure runs one case: a timed window with live traffic for the
// throughput numbers, then — once the injection side has gone idle — a
// short drain-phase window for the steady-state allocation numbers.
func Measure(c Case) (Point, error) {
	nodes := c.Width * c.Height
	horizon := sim.Cycle(c.WarmupCycles + c.MeasureCycles)
	src := traffic.NewSynthetic(nodes, c.Rate, traffic.Uniform(nodes), traffic.Bimodal(1, 5, 0.6), 7)
	src.StopAt(horizon)
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	switch c.ObsMode {
	case ObsOff:
	case ObsOn, ObsFlight:
		o := obs.New(1)
		o.Tracer.SetEnabled(false)
		o.Windows = obs.NewWindows(nodes, rc.Ports, rc.VCs, obs.DefaultBucketCycles, obs.DefaultWindowBucket)
		if c.ObsMode == ObsFlight {
			o.Flight = obs.NewFlightRecorder(nodes, obs.DefaultFlightEvents)
		}
		rc.Obs = o
	default:
		return Point{}, fmt.Errorf("perf: %s: unknown obs mode %q", c.Key(), c.ObsMode)
	}
	n, err := noc.New(noc.Config{
		Width: c.Width, Height: c.Height, Topo: c.Topo,
		Router: rc, Warmup: 50, Workers: c.Workers,
	}, src)
	if err != nil {
		return Point{}, fmt.Errorf("perf: %s: %w", c.Key(), err)
	}
	defer n.Close()

	n.Run(sim.Cycle(c.WarmupCycles))
	start := time.Now()
	n.Run(sim.Cycle(c.MeasureCycles))
	elapsed := time.Since(start).Seconds()

	// Flush the injection backlog so the allocation window covers only
	// the steady-state hot path (compute, local commit, link commit).
	for i := 0; i < 200 && !n.InjectionIdle(); i++ {
		n.Run(50)
	}
	if !n.InjectionIdle() {
		return Point{}, fmt.Errorf("perf: %s: injection backlog did not flush", c.Key())
	}
	const allocSteps = 32
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// Warm the measurement regime before reading the counters: the first
	// steps after clamping GOMAXPROCS can make the scheduler allocate
	// park/unpark bookkeeping for the worker pool's channels, which is
	// runtime noise, not step-path allocation.
	for i := 0; i < 8; i++ {
		n.Step()
	}
	// Run one throwaway window first: a single stray runtime malloc (heap
	// sampling re-arming, scavenger bookkeeping) can land in the first
	// window after a GC in a fresh process and would read as a contract
	// violation. The second window is the measurement.
	var m0, m1 runtime.MemStats
	for window := 0; window < 2; window++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < allocSteps; i++ {
			n.Step()
		}
		runtime.ReadMemStats(&m1)
	}

	p := Point{Case: c}
	p.StepsPerSec = float64(c.MeasureCycles) / elapsed
	p.RouterCyclesPerSec = p.StepsPerSec * float64(nodes)
	p.AllocsPerStep = float64(m1.Mallocs-m0.Mallocs) / allocSteps
	p.BytesPerStep = float64(m1.TotalAlloc-m0.TotalAlloc) / allocSteps
	return p, nil
}

// Collect measures every case and assembles a snapshot. progress (may
// be nil) receives each point as it lands, for live output.
func Collect(cases []Case, progress func(Point)) (Snapshot, error) {
	s := Snapshot{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	for _, c := range cases {
		p, err := Measure(c)
		if err != nil {
			return Snapshot{}, err
		}
		if progress != nil {
			progress(p)
		}
		s.Points = append(s.Points, p)
	}
	return s, nil
}

// WriteFile writes the snapshot as indented JSON.
func WriteFile(path string, s Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile reads a snapshot and rejects unknown schemas.
func ReadFile(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	if s.Schema != Schema {
		return Snapshot{}, fmt.Errorf("perf: %s: schema %q, want %q (regenerate with noctool bench)",
			path, s.Schema, Schema)
	}
	return s, nil
}

// Compare checks fresh points against a reference snapshot and returns
// one finding per violation: a nonzero steady-state allocation count
// (always a failure — the zero-alloc contract does not depend on the
// machine), or throughput below (1-tol) of the reference for the same
// key (meaningful only on comparable hardware; gate it accordingly).
// Points without a matching reference key are skipped.
func Compare(ref, fresh Snapshot, tol float64) []string {
	refByKey := make(map[string]Point, len(ref.Points))
	for _, p := range ref.Points {
		refByKey[p.Key()] = p
	}
	var findings []string
	for _, p := range fresh.Points {
		if p.AllocsPerStep != 0 {
			findings = append(findings, fmt.Sprintf(
				"%s: steady-state Step allocates %.2f objects/op, want 0", p.Key(), p.AllocsPerStep))
		}
		r, ok := refByKey[p.Key()]
		if !ok {
			continue
		}
		if floor := r.RouterCyclesPerSec * (1 - tol); p.RouterCyclesPerSec < floor {
			findings = append(findings, fmt.Sprintf(
				"%s: %.0f router-cycles/sec is below %.0f (reference %.0f minus %.0f%% tolerance)",
				p.Key(), p.RouterCyclesPerSec, floor, r.RouterCyclesPerSec, tol*100))
		}
	}
	return findings
}
