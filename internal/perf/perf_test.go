package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	want := Snapshot{
		Schema: Schema, GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64", CPUs: 4,
		Points: []Point{
			{Case: Case{Topo: "torus", Width: 32, Height: 32, Workers: 4, Rate: 0.02, WarmupCycles: 200, MeasureCycles: 1000},
				StepsPerSec: 850, RouterCyclesPerSec: 870400, AllocsPerStep: 0, BytesPerStep: 0},
		},
	}
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != want.Schema || got.CPUs != want.CPUs || len(got.Points) != 1 {
		t.Fatalf("round trip mangled the snapshot: %+v", got)
	}
	if got.Points[0].Key() != "torus-32x32-w4" {
		t.Fatalf("key = %q, want torus-32x32-w4", got.Points[0].Key())
	}
	if got.Points[0].RouterCyclesPerSec != 870400 {
		t.Fatalf("router cycles = %v, want 870400", got.Points[0].RouterCyclesPerSec)
	}
}

func TestReadFileRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.json")
	if err := os.WriteFile(path, []byte(`{"schema":"gonoc-bench-scaling/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want a schema mismatch", err)
	}
}

func TestCompare(t *testing.T) {
	base := Case{Width: 64, Height: 64, Workers: 1}
	ref := Snapshot{Points: []Point{{Case: base, RouterCyclesPerSec: 1000}}}

	if f := Compare(ref, Snapshot{Points: []Point{{Case: base, RouterCyclesPerSec: 900}}}, 0.30); len(f) != 0 {
		t.Fatalf("10%% slowdown inside tolerance flagged: %v", f)
	}
	f := Compare(ref, Snapshot{Points: []Point{{Case: base, RouterCyclesPerSec: 600}}}, 0.30)
	if len(f) != 1 || !strings.Contains(f[0], "below") {
		t.Fatalf("40%% slowdown not flagged: %v", f)
	}
	f = Compare(ref, Snapshot{Points: []Point{{Case: base, RouterCyclesPerSec: 1000, AllocsPerStep: 0.5}}}, 0.30)
	if len(f) != 1 || !strings.Contains(f[0], "allocates") {
		t.Fatalf("nonzero allocs not flagged: %v", f)
	}
	// A fresh point with no reference key is skipped, not an error.
	other := Case{Topo: "torus", Width: 16, Height: 16, Workers: 2}
	if f := Compare(ref, Snapshot{Points: []Point{{Case: other, RouterCyclesPerSec: 1}}}, 0.30); len(f) != 0 {
		t.Fatalf("unmatched key flagged: %v", f)
	}
}

// TestBenchSnapshotSmoke is the CI gate: it measures the quick
// trajectory in-process and enforces the zero-alloc contract on every
// point, and checks that the checked-in BENCH_scaling.json parses under
// the current schema. With NOC_BENCH_STRICT=1 it additionally fails if
// throughput regressed more than 30% against the checked-in reference —
// meaningful only on hardware comparable to the machine that recorded
// the snapshot, hence the opt-in.
func TestBenchSnapshotSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement takes ~15s; skipped in -short mode")
	}
	fresh, err := Collect(QuickTrajectory(), func(p Point) {
		t.Logf("%s: %.0f router-cycles/sec, %.2f allocs/op", p.Key(), p.RouterCyclesPerSec, p.AllocsPerStep)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fresh.Points {
		if p.AllocsPerStep != 0 {
			t.Errorf("%s: steady-state Step allocates %.2f objects/op, want 0", p.Key(), p.AllocsPerStep)
		}
	}

	ref, err := ReadFile("../../BENCH_scaling.json")
	if err != nil {
		t.Fatalf("checked-in snapshot unreadable: %v", err)
	}
	if len(ref.Points) == 0 {
		t.Fatal("checked-in snapshot has no points; regenerate with noctool bench -o BENCH_scaling.json")
	}
	findings := Compare(ref, fresh, 0.30)
	if os.Getenv("NOC_BENCH_STRICT") == "1" {
		for _, f := range findings {
			t.Error(f)
		}
	} else if len(findings) > 0 {
		t.Logf("non-strict mode; would have flagged: %v", findings)
	}
}
