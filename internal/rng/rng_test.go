package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
	// Splitting must not make the child replay the parent.
	p := New(7)
	child := p.Split()
	if child.Uint64() == p.Uint64() {
		t.Fatal("child replays parent sequence")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(13)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const mean, n = 250.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(19)
	const p, n = 0.25, 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p
	if got := sum / n; math.Abs(got-want)/want > 0.03 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, got, want)
	}
	if New(1).Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nProperty(t *testing.T) {
	r := New(31)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two streams from the same seed agree on Intn sequences for any
// bound.
func TestSeedEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, bounds []uint16) bool {
		a, b := New(seed), New(seed)
		for _, bd := range bounds {
			n := int(bd%1000) + 1
			if a.Intn(n) != b.Intn(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(64)
	}
	_ = sink
}
