// Package rng provides the deterministic pseudo-random number generation
// used throughout the simulator.
//
// Every source of randomness in gonoc — traffic injection, destination
// selection, fault-arrival times, Monte-Carlo campaigns — draws from a
// seeded Stream so that any experiment is exactly reproducible from its
// seed. Streams can be split into statistically independent child streams,
// which is what lets the sweep package run many simulations in parallel
// while each remains deterministic.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure and
// must never be used for security purposes; it is chosen for speed,
// equidistribution and a cheap jump/split operation.
package rng

import "math"

// Stream is a deterministic random number stream. The zero value is not
// valid; construct streams with New or Stream.Split.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding so that correlated seeds (0, 1, 2, ...) still
// produce decorrelated xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed. Distinct seeds yield
// decorrelated streams.
func New(seed uint64) *Stream {
	st := seed
	var r Stream
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a child stream that is statistically independent of the
// parent. The parent's state advances, so successive Splits yield distinct
// children. Splitting is how per-node and per-worker streams are derived
// from one experiment seed.
func (r *Stream) Split() *Stream {
	// Seed the child from two parent draws mixed through SplitMix64 so the
	// child sequence shares no lattice structure with the parent.
	seed := r.Uint64() ^ rotl(r.Uint64(), 31)
	return New(seed)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method (no modulo bias).
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n { // -n%n == (2^64 - n) % n
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (r *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with mean <= 0")
	}
	// Avoid log(0); Float64 returns [0,1) so 1-u is in (0,1].
	u := 1 - r.Float64()
	return -mean * math.Log(u)
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, a geometric variate with mean (1-p)/p. It panics unless
// 0 < p <= 1.
func (r *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := 1 - r.Float64()
	return int(math.Log(u) / math.Log(1-p))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
