package area

import (
	"math"
	"testing"

	"gonoc/internal/core"
	"gonoc/internal/reliability"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestAreaOverheadMatchesPaper(t *testing.T) {
	m := DefaultModel()
	spec := reliability.PaperSpec()
	// Section VI-A: 28% before detection, 31% with detection.
	near(t, "area overhead (no detection)", m.AreaOverhead(spec, false), 0.28, 0.01)
	near(t, "area overhead (with detection)", m.AreaOverhead(spec, true), 0.31, 0.01)
}

func TestPowerOverheadMatchesPaper(t *testing.T) {
	m := DefaultModel()
	spec := reliability.PaperSpec()
	// Section VI-A: 29% before detection, 30% with detection.
	near(t, "power overhead (no detection)", m.PowerOverhead(spec, false), 0.29, 0.01)
	near(t, "power overhead (with detection)", m.PowerOverhead(spec, true), 0.30, 0.01)
}

func TestStageBreakdownSane(t *testing.T) {
	m := DefaultModel()
	spec := reliability.PaperSpec()
	base := m.BaselineAreaGE(spec)
	corr := m.CorrectionAreaGE(spec)
	for _, st := range []core.StageID{core.StageRC, core.StageVA, core.StageSA, core.StageXB} {
		if base.Stage(st) <= 0 || corr.Stage(st) <= 0 {
			t.Errorf("stage %v has non-positive area", st)
		}
	}
	// VA (400 arbiters' worth) dominates baseline area, as in real
	// routers' control logic; RC correction equals RC baseline (full
	// duplication).
	if base.VA <= base.RC || base.VA <= base.SA {
		t.Error("VA should dominate baseline control area")
	}
	near(t, "RC duplication", corr.RC, base.RC, 1e-9)
}

func TestAreaScalesWithStructure(t *testing.T) {
	m := DefaultModel()
	small := reliability.RouterSpec{Ports: 5, VCs: 2, MeshNodes: 64, FlitBits: 32}
	big := reliability.RouterSpec{Ports: 5, VCs: 8, MeshNodes: 64, FlitBits: 32}
	if m.BaselineAreaGE(small).Total() >= m.BaselineAreaGE(big).Total() {
		t.Error("baseline area did not grow with VCs")
	}
	wide := reliability.RouterSpec{Ports: 5, VCs: 4, MeshNodes: 64, FlitBits: 64}
	if m.CorrectionAreaGE(reliability.PaperSpec()).XB >= m.CorrectionAreaGE(wide).XB {
		t.Error("XB correction area did not grow with flit width")
	}
}

func TestRelativeOverheadGrowsWithFewerVCs(t *testing.T) {
	// The correction circuitry is a bigger fraction of a smaller router —
	// this is what drives SPF ≈ 7 at 2 VCs (Section VIII-E).
	m := DefaultModel()
	two := reliability.RouterSpec{Ports: 5, VCs: 2, MeshNodes: 64, FlitBits: 32}
	four := reliability.PaperSpec()
	if m.AreaOverhead(two, true) <= m.AreaOverhead(four, true) {
		t.Errorf("overhead at 2 VCs (%v) not above 4 VCs (%v)",
			m.AreaOverhead(two, true), m.AreaOverhead(four, true))
	}
}

func TestSPFChainWithAreaModel(t *testing.T) {
	// End-to-end Table III row for the proposed router: the area model's
	// 31% overhead and the SPF analysis's mean of 15 give SPF ≈ 11.4.
	m := DefaultModel()
	spec := reliability.PaperSpec()
	r := reliability.AnalyzeSPF(spec.Ports, spec.VCs, m.AreaOverhead(spec, true))
	near(t, "proposed router SPF", r.SPF, 11.4, 0.1)

	// And the 2-VC corollary: SPF ≈ 7.
	two := reliability.RouterSpec{Ports: 5, VCs: 2, MeshNodes: 64, FlitBits: 32}
	r2 := reliability.AnalyzeSPF(two.Ports, two.VCs, m.AreaOverhead(two, true))
	near(t, "2-VC SPF", r2.SPF, 7.0, 0.45)
}

func TestCriticalPathMatchesPaper(t *testing.T) {
	c := DefaultCritPath()
	near(t, "RC overhead", c.Overhead(core.StageRC), 0.0, 1e-9)
	near(t, "VA overhead", c.Overhead(core.StageVA), 0.20, 1e-9)
	near(t, "SA overhead", c.Overhead(core.StageSA), 0.10, 1e-9)
	near(t, "XB overhead", c.Overhead(core.StageXB), 0.25, 1e-9)
	b, p := c.ClockPeriodPs()
	if b != 510 {
		t.Errorf("baseline clock period %v, want 510 (VA-limited)", b)
	}
	if p != 612 {
		t.Errorf("protected clock period %v, want 612 (VA-limited)", p)
	}
}

func TestAreaUm2Conversion(t *testing.T) {
	m := DefaultModel()
	ge := StageBreakdown{RC: 100, VA: 200, SA: 300, XB: 400}
	um := m.AreaUm2(ge)
	near(t, "um2 total", um.Total(), 1000*m.NAND2Um2, 1e-9)
}
