package area

import "gonoc/internal/core"

// CritPath is the Section VI-B critical-path analysis: per-stage delays
// of the baseline pipeline and the multiplicative impact of the
// correction circuitry, obtained in the paper by sweeping synthesis clock
// targets to the zero-slack point.
type CritPath struct {
	// BaselinePs is each stage's critical path in picoseconds at 45 nm.
	BaselinePs StageBreakdown
	// Factor is the protected/baseline delay ratio per stage. The paper
	// reports ≈1.0 (RC, spatial redundancy off the critical path), 1.20
	// (VA, the borrow scan and R2/VF/ID muxing), 1.10 (SA, the bypass
	// 2:1 mux) and 1.25 (XB, the series demux + Pk mux).
	Factor StageBreakdown
}

// DefaultCritPath returns the 45 nm-calibrated model.
func DefaultCritPath() CritPath {
	return CritPath{
		BaselinePs: StageBreakdown{RC: 320, VA: 510, SA: 470, XB: 380},
		Factor:     StageBreakdown{RC: 1.0, VA: 1.20, SA: 1.10, XB: 1.25},
	}
}

// ProtectedPs returns the protected pipeline's per-stage critical paths.
func (c CritPath) ProtectedPs() StageBreakdown {
	return StageBreakdown{
		RC: c.BaselinePs.RC * c.Factor.RC,
		VA: c.BaselinePs.VA * c.Factor.VA,
		SA: c.BaselinePs.SA * c.Factor.SA,
		XB: c.BaselinePs.XB * c.Factor.XB,
	}
}

// Overhead returns the fractional critical-path increase of one stage.
func (c CritPath) Overhead(id core.StageID) float64 {
	return c.Factor.Stage(id) - 1
}

// ClockPeriodPs returns the minimum clock period (the slowest stage) for
// the baseline and protected pipelines.
func (c CritPath) ClockPeriodPs() (baseline, protected float64) {
	b, p := c.BaselinePs, c.ProtectedPs()
	maxOf := func(s StageBreakdown) float64 {
		m := s.RC
		for _, v := range []float64{s.VA, s.SA, s.XB} {
			if v > m {
				m = v
			}
		}
		return m
	}
	return maxOf(b), maxOf(p)
}
