// Package area models the synthesis results of Section VI: silicon area,
// power and critical path of the baseline and protected router pipelines.
//
// The paper synthesized Verilog for both pipelines with Cadence Encounter
// RTL Compiler at 45 nm and reports relative overheads: +28% area and
// +29% power for the correction circuitry, rising to +31% / +30% once the
// NoCAlert-style fault-detection layer [18] is included, and per-stage
// critical-path increases of ≈0% (RC), 20% (VA), 10% (SA) and 25% (XB).
//
// We rebuild those numbers from a gate-equivalent (GE) inventory: every
// component is assigned an area in NAND2-equivalents and a switching
// activity factor, both calibrated to 45 nm-class values so that the
// paper's evaluation point reproduces its overheads. Because the model is
// structural (per component, per stage), it also extrapolates to other
// radices, VC counts and flit widths.
package area

import (
	"gonoc/internal/core"
	"gonoc/internal/reliability"
)

// Model holds the per-component area/power coefficients.
type Model struct {
	// NAND2Um2 converts gate equivalents to µm² (0.8 at 45 nm).
	NAND2Um2 float64
	// ComparatorGE is the area of a 6-bit comparator in GE (scaled
	// linearly with width for other sizes).
	ComparatorGE float64
	// ArbGEPerInput is the arbiter area per request input.
	ArbGEPerInput float64
	// MuxGEPerBitLeg is the multiplexer area per bit per (n−1) legs.
	MuxGEPerBitLeg float64
	// DemuxGEPerBitLeg is the demultiplexer area per bit per (n−1) legs.
	DemuxGEPerBitLeg float64
	// DFFGE is the area of one flip-flop bit.
	DFFGE float64
	// DFFActivity is the relative power weight of flip-flops: registers
	// draw clock-tree and internal-node power every cycle, while the
	// combinational arbitration logic only switches with traffic, so the
	// per-GE power of the DFF-heavy correction blocks is slightly higher.
	DFFActivity float64
	// DetectionAreaFrac and DetectionPowerFrac are the extra fractions of
	// baseline area/power contributed by the fault-detection layer
	// (NoCAlert-style distributed assertions, the paper's [18]).
	DetectionAreaFrac  float64
	DetectionPowerFrac float64
}

// DefaultModel returns the 45 nm-calibrated model that reproduces the
// paper's Section VI-A overheads at the 5-port, 4-VC, 32-bit design point.
func DefaultModel() *Model {
	return &Model{
		NAND2Um2:           0.8,
		ComparatorGE:       30,
		ArbGEPerInput:      7,
		MuxGEPerBitLeg:     0.75,
		DemuxGEPerBitLeg:   0.5,
		DFFGE:              6.6,
		DFFActivity:        1.05,
		DetectionAreaFrac:  0.03,
		DetectionPowerFrac: 0.01,
	}
}

// StageBreakdown holds a per-pipeline-stage quantity (GE, µm² or power
// units).
type StageBreakdown struct {
	RC, VA, SA, XB float64
}

// Total sums the four stages.
func (s StageBreakdown) Total() float64 { return s.RC + s.VA + s.SA + s.XB }

// Stage returns one stage's value by ID.
func (s StageBreakdown) Stage(id core.StageID) float64 {
	switch id {
	case core.StageRC:
		return s.RC
	case core.StageVA:
		return s.VA
	case core.StageSA:
		return s.SA
	default:
		return s.XB
	}
}

// comparator returns GE for a comparator sized for the mesh.
func (m *Model) comparator(meshNodes int) float64 {
	bits := 1
	for (1 << bits) < meshNodes {
		bits++
	}
	return m.ComparatorGE * float64(bits) / 6
}

func (m *Model) arb(n int) float64          { return m.ArbGEPerInput * float64(n) }
func (m *Model) mux(n, width int) float64   { return m.MuxGEPerBitLeg * float64(width*(n-1)) }
func (m *Model) demux(n, width int) float64 { return m.DemuxGEPerBitLeg * float64(width*(n-1)) }
func (m *Model) dff(bits int) float64       { return m.DFFGE * float64(bits) }

// BaselineAreaGE returns the baseline pipeline's per-stage area in gate
// equivalents, using the same structural inventory as Table I.
func (m *Model) BaselineAreaGE(spec reliability.RouterSpec) StageBreakdown {
	p, v := spec.Ports, spec.VCs
	cmp := m.comparator(spec.MeshNodes)
	return StageBreakdown{
		RC: float64(2*p) * cmp,
		VA: float64(p*v*p)*m.arb(v) + float64(p*v)*m.arb(p*v),
		SA: float64(p*p)*m.mux(v, 1) + float64(p)*m.arb(v) + float64(p)*m.arb(p),
		XB: float64(p) * m.mux(p, spec.FlitBits),
	}
}

// CorrectionAreaGE returns the correction circuitry's per-stage area in
// gate equivalents, using the same structural inventory as Table II.
func (m *Model) CorrectionAreaGE(spec reliability.RouterSpec) StageBreakdown {
	p, v := spec.Ports, spec.VCs
	cmp := m.comparator(spec.MeshNodes)
	portBits := log2ceil(p)
	vcBits := log2ceil(v)
	return StageBreakdown{
		RC: float64(2*p) * cmp,
		VA: m.dff(p * v * (portBits + 1 + vcBits)),
		SA: float64(p)*m.mux(2, 1) + m.dff(p*vcBits+p*v*(portBits+1)),
		XB: float64(p)*m.mux(2, spec.FlitBits) +
			float64(p-2)*m.demux(2, spec.FlitBits) +
			m.demux(3, spec.FlitBits),
	}
}

// baselinePower and correctionPower weight area by switching activity.
func (m *Model) baselinePower(spec reliability.RouterSpec) StageBreakdown {
	return m.BaselineAreaGE(spec) // all-combinational: activity 1
}

func (m *Model) correctionPower(spec reliability.RouterSpec) StageBreakdown {
	p, v := spec.Ports, spec.VCs
	cmp := m.comparator(spec.MeshNodes)
	portBits := log2ceil(p)
	vcBits := log2ceil(v)
	a := m.DFFActivity
	return StageBreakdown{
		RC: float64(2*p) * cmp,
		VA: m.dff(p*v*(portBits+1+vcBits)) * a,
		SA: float64(p)*m.mux(2, 1) + m.dff(p*vcBits+p*v*(portBits+1))*a,
		XB: float64(p)*m.mux(2, spec.FlitBits) +
			float64(p-2)*m.demux(2, spec.FlitBits) +
			m.demux(3, spec.FlitBits),
	}
}

// AreaOverhead returns the protected router's fractional area overhead
// over the baseline. With withDetection the NoCAlert-style detection
// layer is included — the configuration the paper headline (31%) uses.
func (m *Model) AreaOverhead(spec reliability.RouterSpec, withDetection bool) float64 {
	base := m.BaselineAreaGE(spec).Total()
	corr := m.CorrectionAreaGE(spec).Total()
	if withDetection {
		corr += m.DetectionAreaFrac * base
	}
	return corr / base
}

// PowerOverhead returns the protected router's fractional average-power
// overhead (dynamic + static) over the baseline; withDetection adds the
// detection layer (paper headline: 30%).
func (m *Model) PowerOverhead(spec reliability.RouterSpec, withDetection bool) float64 {
	base := m.baselinePower(spec).Total()
	corr := m.correctionPower(spec).Total()
	if withDetection {
		corr += m.DetectionPowerFrac * base
	}
	return corr / base
}

// AreaUm2 converts a GE breakdown to µm².
func (m *Model) AreaUm2(b StageBreakdown) StageBreakdown {
	return StageBreakdown{
		RC: b.RC * m.NAND2Um2, VA: b.VA * m.NAND2Um2,
		SA: b.SA * m.NAND2Um2, XB: b.XB * m.NAND2Um2,
	}
}

func log2ceil(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}
