// Package arbiter implements the arbitration primitives used by the
// router's separable virtual-channel and switch allocators.
//
// The paper's allocators (Figure 3a/3b) are built from v:1 and p:1
// arbiters. We model them as round-robin arbiters — the standard choice in
// NoC routers because they are small and starvation-free — plus the two
// fault-tolerance wrappers the paper adds: a fault flag on every arbiter
// (a permanently faulty arbiter grants nothing) and, for the first switch
// allocation stage, a bypass path that names a rotating "default winner"
// without arbitration (Section V-C, Figure 5).
package arbiter

import "fmt"

// RoundRobin is an n-input round-robin arbiter. Each Grant scans requests
// starting one past the previous winner, so every persistent requester is
// served within n grants (starvation freedom).
//
// A faulty arbiter grants nothing: the paper's fault model makes a broken
// arbiter unusable rather than byzantine (detection hardware is assumed to
// flag it, Section V).
type RoundRobin struct {
	n      int
	prio   int // index to scan first
	faulty bool
}

// NewRoundRobin returns an n-input arbiter. It panics if n < 1.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic(fmt.Sprintf("arbiter: invalid width %d", n))
	}
	return &RoundRobin{n: n}
}

// Inputs returns the arbiter width.
func (a *RoundRobin) Inputs() int { return a.n }

// SetFaulty marks the arbiter permanently faulty (or repairs it, for
// testing).
func (a *RoundRobin) SetFaulty(f bool) { a.faulty = f }

// Faulty reports whether the arbiter is marked faulty.
func (a *RoundRobin) Faulty() bool { return a.faulty }

// Grant arbitrates among the requests (len must equal Inputs) and returns
// the granted input. ok is false when the arbiter is faulty or no input is
// requesting. A successful grant advances the priority pointer just past
// the winner.
func (a *RoundRobin) Grant(requests []bool) (winner int, ok bool) {
	if len(requests) != a.n {
		panic(fmt.Sprintf("arbiter: %d requests for %d-input arbiter", len(requests), a.n))
	}
	if a.faulty {
		return -1, false
	}
	for i := 0; i < a.n; i++ {
		idx := (a.prio + i) % a.n
		if requests[idx] {
			a.prio = (idx + 1) % a.n
			return idx, true
		}
	}
	return -1, false
}

// Prio returns the index the next Grant scans first. Together with
// SetPrio it lets checkpoint/restore and the model checker capture the
// arbiter's full mutable state (the priority pointer is the only state
// besides the fault flag).
func (a *RoundRobin) Prio() int { return a.prio }

// SetPrio restores the scan-first index saved by Prio. It panics when p
// is outside [0, Inputs()).
func (a *RoundRobin) SetPrio(p int) {
	if p < 0 || p >= a.n {
		panic(fmt.Sprintf("arbiter: prio %d out of range for %d-input arbiter", p, a.n))
	}
	a.prio = p
}

// Peek is Grant without the priority update, for lookahead logic and tests.
func (a *RoundRobin) Peek(requests []bool) (winner int, ok bool) {
	if len(requests) != a.n {
		panic(fmt.Sprintf("arbiter: %d requests for %d-input arbiter", len(requests), a.n))
	}
	if a.faulty {
		return -1, false
	}
	for i := 0; i < a.n; i++ {
		idx := (a.prio + i) % a.n
		if requests[idx] {
			return idx, true
		}
	}
	return -1, false
}

// Bypassed is the protected first-stage switch arbiter of Figure 5: a
// round-robin arbiter augmented with a bypass path — a 2:1 multiplexer
// selecting between the arbiter's output and a register naming a default
// winner. When the arbiter is faulty the bypass path "chooses an input VC
// as the winner without arbitration"; the default winner register rotates
// over time so no VC is starved by a static choice (Section V-C1).
//
// The bypass path itself (mux + register) is a fault site: with both the
// arbiter and its bypass faulty, switch allocation at this input port is
// impossible and the router has failed.
type Bypassed struct {
	Arb *RoundRobin
	// defaultWinner is the register driving the bypass mux.
	defaultWinner int
	// rotatePeriod is how many bypass grants occur before the default
	// winner advances; the paper only requires that "every input VC [be]
	// default winner at different points of time".
	rotatePeriod int
	grants       int
	bypassFaulty bool
}

// NewBypassed wraps an n-input arbiter with a bypass path. rotatePeriod
// must be >= 1; it controls how often the default winner rotates.
func NewBypassed(n, rotatePeriod int) *Bypassed {
	if rotatePeriod < 1 {
		panic(fmt.Sprintf("arbiter: invalid rotate period %d", rotatePeriod))
	}
	return &Bypassed{Arb: NewRoundRobin(n), rotatePeriod: rotatePeriod}
}

// SetBypassFaulty marks the bypass path (mux + register) faulty.
func (b *Bypassed) SetBypassFaulty(f bool) { b.bypassFaulty = f }

// BypassFaulty reports whether the bypass path is faulty.
func (b *Bypassed) BypassFaulty() bool { return b.bypassFaulty }

// Usable reports whether this input port can still perform first-stage
// switch allocation: either the arbiter or the bypass path must be intact.
func (b *Bypassed) Usable() bool { return !b.Arb.Faulty() || !b.bypassFaulty }

// InBypass reports whether grants are currently served by the bypass path.
func (b *Bypassed) InBypass() bool { return b.Arb.Faulty() && !b.bypassFaulty }

// DefaultWinner returns the input currently named by the bypass register.
func (b *Bypassed) DefaultWinner() int { return b.defaultWinner }

// BypassState returns the bypass register state: the current default
// winner and the number of bypass grants since it last rotated. Paired
// with SetBypassState for checkpoint/restore.
func (b *Bypassed) BypassState() (defaultWinner, grants int) {
	return b.defaultWinner, b.grants
}

// SetBypassState restores the bypass register state saved by
// BypassState. It panics when defaultWinner is outside [0, Inputs()).
func (b *Bypassed) SetBypassState(defaultWinner, grants int) {
	if defaultWinner < 0 || defaultWinner >= b.Arb.Inputs() {
		panic(fmt.Sprintf("arbiter: default winner %d out of range for %d-input arbiter", defaultWinner, b.Arb.Inputs()))
	}
	b.defaultWinner = defaultWinner
	b.grants = grants
}

// Grant arbitrates. In normal operation it defers to the round-robin
// arbiter. In bypass operation it returns the default winner regardless of
// the request vector — the caller (the router's SA stage) is responsible
// for transferring flits into the default winner's VC when that VC is
// empty, exactly as Section V-C1 describes. ok is false only when neither
// path is usable.
func (b *Bypassed) Grant(requests []bool) (winner int, ok bool) {
	if !b.Arb.Faulty() {
		return b.Arb.Grant(requests)
	}
	if b.bypassFaulty {
		return -1, false
	}
	w := b.defaultWinner
	b.grants++
	if b.grants >= b.rotatePeriod {
		b.grants = 0
		b.defaultWinner = (b.defaultWinner + 1) % b.Arb.Inputs()
	}
	return w, true
}

// Matrix is an n-input matrix arbiter: a triangular matrix of priority
// bits in which w[i][j] set means input i beats input j. After a grant
// the winner moves to lowest priority (least-recently-served policy),
// giving stronger fairness than round-robin under asymmetric request
// patterns. Matrix arbiters are the other standard NoC arbiter (Dally &
// Towles §18.5); gonoc's allocators default to round-robin, and this
// implementation exists for arbitration-policy experiments.
type Matrix struct {
	n      int
	w      [][]bool // w[i][j], i < j: true ⇒ i beats j
	faulty bool
}

// NewMatrix returns an n-input matrix arbiter with initial priority
// 0 > 1 > ... > n-1. It panics if n < 1.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		panic(fmt.Sprintf("arbiter: invalid width %d", n))
	}
	m := &Matrix{n: n, w: make([][]bool, n)}
	for i := range m.w {
		m.w[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.w[i][j] = true
		}
	}
	return m
}

// Inputs returns the arbiter width.
func (m *Matrix) Inputs() int { return m.n }

// SetFaulty marks the arbiter permanently faulty.
func (m *Matrix) SetFaulty(f bool) { m.faulty = f }

// Faulty reports whether the arbiter is marked faulty.
func (m *Matrix) Faulty() bool { return m.faulty }

// beats reports whether input i currently has priority over input j.
func (m *Matrix) beats(i, j int) bool {
	if i < j {
		return m.w[i][j]
	}
	return !m.w[j][i]
}

// Grant arbitrates among requests: the winner is the requesting input
// that beats every other requesting input. A successful grant demotes
// the winner below all other inputs.
func (m *Matrix) Grant(requests []bool) (winner int, ok bool) {
	if len(requests) != m.n {
		panic(fmt.Sprintf("arbiter: %d requests for %d-input arbiter", len(requests), m.n))
	}
	if m.faulty {
		return -1, false
	}
	for i := 0; i < m.n; i++ {
		if !requests[i] {
			continue
		}
		wins := true
		for j := 0; j < m.n && wins; j++ {
			if j != i && requests[j] && !m.beats(i, j) {
				wins = false
			}
		}
		if !wins {
			continue
		}
		// Demote the winner below everyone.
		for j := 0; j < m.n; j++ {
			if j == i {
				continue
			}
			if i < j {
				m.w[i][j] = false
			} else {
				m.w[j][i] = true
			}
		}
		return i, true
	}
	return -1, false
}
