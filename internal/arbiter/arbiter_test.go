package arbiter

import (
	"testing"
	"testing/quick"
)

func TestGrantSingleRequester(t *testing.T) {
	a := NewRoundRobin(4)
	req := []bool{false, false, true, false}
	w, ok := a.Grant(req)
	if !ok || w != 2 {
		t.Fatalf("Grant = (%d, %v), want (2, true)", w, ok)
	}
}

func TestGrantNoRequesters(t *testing.T) {
	a := NewRoundRobin(3)
	if w, ok := a.Grant([]bool{false, false, false}); ok {
		t.Fatalf("granted %d with no requests", w)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	a := NewRoundRobin(3)
	all := []bool{true, true, true}
	var order []int
	for i := 0; i < 6; i++ {
		w, ok := a.Grant(all)
		if !ok {
			t.Fatal("grant failed with all requesting")
		}
		order = append(order, w)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestStarvationFreedom(t *testing.T) {
	// With persistent requests on all inputs, every input must win within
	// n consecutive grants.
	a := NewRoundRobin(5)
	all := []bool{true, true, true, true, true}
	lastWin := map[int]int{}
	for i := 0; i < 100; i++ {
		w, _ := a.Grant(all)
		if prev, seen := lastWin[w]; seen && i-prev > 5 {
			t.Fatalf("input %d starved for %d grants", w, i-prev)
		}
		lastWin[w] = i
	}
}

func TestFaultyArbiterGrantsNothing(t *testing.T) {
	a := NewRoundRobin(4)
	a.SetFaulty(true)
	if _, ok := a.Grant([]bool{true, true, true, true}); ok {
		t.Fatal("faulty arbiter granted")
	}
	if !a.Faulty() {
		t.Fatal("Faulty() = false after SetFaulty(true)")
	}
	a.SetFaulty(false)
	if _, ok := a.Grant([]bool{true, false, false, false}); !ok {
		t.Fatal("repaired arbiter does not grant")
	}
}

func TestPeekDoesNotAdvance(t *testing.T) {
	a := NewRoundRobin(2)
	all := []bool{true, true}
	w1, _ := a.Peek(all)
	w2, _ := a.Peek(all)
	if w1 != w2 {
		t.Fatal("Peek advanced priority")
	}
	g, _ := a.Grant(all)
	if g != w1 {
		t.Fatal("Grant disagrees with Peek")
	}
}

func TestGrantWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch did not panic")
		}
	}()
	NewRoundRobin(3).Grant([]bool{true})
}

func TestNewRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRoundRobin(0) did not panic")
		}
	}()
	NewRoundRobin(0)
}

// Property: a grant is always an actually-requesting input (when the
// arbiter is healthy).
func TestGrantOnlyRequesters(t *testing.T) {
	a := NewRoundRobin(8)
	f := func(mask uint8) bool {
		req := make([]bool, 8)
		any := false
		for i := range req {
			req[i] = mask&(1<<i) != 0
			any = any || req[i]
		}
		w, ok := a.Grant(req)
		if !any {
			return !ok
		}
		return ok && req[w]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBypassNormalOperation(t *testing.T) {
	b := NewBypassed(4, 1)
	w, ok := b.Grant([]bool{false, true, false, false})
	if !ok || w != 1 {
		t.Fatalf("normal grant = (%d, %v)", w, ok)
	}
	if b.InBypass() {
		t.Fatal("InBypass with healthy arbiter")
	}
}

func TestBypassDefaultWinnerRotates(t *testing.T) {
	b := NewBypassed(4, 1)
	b.Arb.SetFaulty(true)
	if !b.InBypass() || !b.Usable() {
		t.Fatal("expected bypass mode")
	}
	var wins []int
	none := []bool{false, false, false, false}
	for i := 0; i < 8; i++ {
		w, ok := b.Grant(none)
		if !ok {
			t.Fatal("bypass grant failed")
		}
		wins = append(wins, w)
	}
	// With rotate period 1, the default winner must cycle 0,1,2,3,0,...
	for i, w := range wins {
		if w != i%4 {
			t.Fatalf("bypass winners %v, want rotation", wins)
		}
	}
}

func TestBypassRotatePeriod(t *testing.T) {
	b := NewBypassed(2, 3)
	b.Arb.SetFaulty(true)
	var wins []int
	for i := 0; i < 7; i++ {
		w, _ := b.Grant([]bool{false, false})
		wins = append(wins, w)
	}
	want := []int{0, 0, 0, 1, 1, 1, 0}
	for i := range want {
		if wins[i] != want[i] {
			t.Fatalf("wins %v, want %v", wins, want)
		}
	}
}

func TestBypassBothFaultyFails(t *testing.T) {
	b := NewBypassed(4, 1)
	b.Arb.SetFaulty(true)
	b.SetBypassFaulty(true)
	if b.Usable() {
		t.Fatal("Usable with both paths faulty")
	}
	if _, ok := b.Grant([]bool{true, true, true, true}); ok {
		t.Fatal("granted with both paths faulty")
	}
}

func TestBypassFaultyAloneHarmless(t *testing.T) {
	// A faulty bypass path with a healthy arbiter must not affect grants.
	b := NewBypassed(3, 1)
	b.SetBypassFaulty(true)
	if !b.Usable() {
		t.Fatal("not usable with healthy arbiter")
	}
	w, ok := b.Grant([]bool{false, false, true})
	if !ok || w != 2 {
		t.Fatalf("grant = (%d, %v)", w, ok)
	}
}

func TestNewBypassedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBypassed with period 0 did not panic")
		}
	}()
	NewBypassed(4, 0)
}

func TestMatrixSingleRequester(t *testing.T) {
	m := NewMatrix(4)
	w, ok := m.Grant([]bool{false, false, true, false})
	if !ok || w != 2 {
		t.Fatalf("Grant = (%d, %v)", w, ok)
	}
	if _, ok := m.Grant([]bool{false, false, false, false}); ok {
		t.Fatal("granted with no requests")
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	m := NewMatrix(3)
	all := []bool{true, true, true}
	var order []int
	for i := 0; i < 6; i++ {
		w, ok := m.Grant(all)
		if !ok {
			t.Fatal("grant failed")
		}
		order = append(order, w)
	}
	// LRS over persistent requesters cycles through all inputs.
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestMatrixFairnessAsymmetric(t *testing.T) {
	// Input 2 requests every cycle, inputs 0 and 1 alternate; nobody may
	// be starved and the always-on requester must not dominate unfairly.
	m := NewMatrix(3)
	wins := map[int]int{}
	for c := 0; c < 300; c++ {
		req := []bool{c%2 == 0, c%2 == 1, true}
		if w, ok := m.Grant(req); ok {
			wins[w]++
		}
	}
	if wins[2] < 100 || wins[2] > 200 {
		t.Fatalf("always-on requester won %d of 300", wins[2])
	}
	if wins[0] == 0 || wins[1] == 0 {
		t.Fatalf("starvation: %v", wins)
	}
}

func TestMatrixExactlyOneWinnerProperty(t *testing.T) {
	m := NewMatrix(8)
	f := func(mask uint8) bool {
		req := make([]bool, 8)
		any := false
		for i := range req {
			req[i] = mask&(1<<i) != 0
			any = any || req[i]
		}
		w, ok := m.Grant(req)
		if !any {
			return !ok
		}
		return ok && req[w]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixFaulty(t *testing.T) {
	m := NewMatrix(2)
	m.SetFaulty(true)
	if !m.Faulty() {
		t.Fatal("Faulty() false")
	}
	if _, ok := m.Grant([]bool{true, true}); ok {
		t.Fatal("faulty matrix granted")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0) did not panic")
		}
	}()
	NewMatrix(0)
}
