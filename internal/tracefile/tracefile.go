// Package tracefile records and replays packet traces. The paper's
// latency study is trace-driven (GEM5 produces the benchmark traffic that
// GARNET then routes); this package provides the equivalent workflow for
// gonoc: capture the packets a workload offers during one simulation,
// persist them in a simple CSV format, and replay them later — against a
// different router configuration, fault scenario or build — with the
// offered traffic held exactly constant.
//
// The format is one record per packet:
//
//	cycle,src,dst,class,size
//
// with an optional "# gonoc-trace v1" comment header. CSV keeps traces
// greppable and diffable; traces compress extremely well if stored at
// rest.
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/sim"
	"gonoc/internal/traffic"
)

// header is the optional first line of a trace file.
const header = "# gonoc-trace v1"

// Write serializes entries (sorted by cycle, then source) to w.
func Write(w io.Writer, entries []traffic.TraceEntry) error {
	sorted := make([]traffic.TraceEntry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Cycle != sorted[j].Cycle {
			return sorted[i].Cycle < sorted[j].Cycle
		}
		return sorted[i].Src < sorted[j].Src
	})
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for _, e := range sorted {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d\n",
			e.Cycle, e.Src, e.Dst, int(e.Class), e.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace from r. Blank lines and '#' comments are ignored.
func Read(r io.Reader) ([]traffic.TraceEntry, error) {
	var out []traffic.TraceEntry
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var cyc uint64
		var src, dst, cls, size int
		if _, err := fmt.Sscanf(text, "%d,%d,%d,%d,%d", &cyc, &src, &dst, &cls, &size); err != nil {
			return nil, fmt.Errorf("tracefile: line %d: %v", line, err)
		}
		if size < 1 || src < 0 || dst < 0 || cls < 0 || cls >= flit.NumClasses {
			return nil, fmt.Errorf("tracefile: line %d: invalid record %q", line, text)
		}
		out = append(out, traffic.TraceEntry{
			Cycle: sim.Cycle(cyc),
			Src:   src,
			Dst:   dst,
			Class: flit.Class(cls),
			Size:  size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Recorder wraps a noc.Traffic source, recording every packet it offers
// (including closed-loop replies) so the offered workload can be
// persisted and replayed. Attach it between the workload and the network:
//
//	rec := tracefile.NewRecorder(src)
//	n := noc.MustNew(cfg, rec)
//	... run ...
//	tracefile.Write(f, rec.Entries())
type Recorder struct {
	inner noc.Traffic
	log   []traffic.TraceEntry
}

// NewRecorder wraps inner.
func NewRecorder(inner noc.Traffic) *Recorder { return &Recorder{inner: inner} }

// Offered implements noc.Traffic.
func (r *Recorder) Offered(node int, c sim.Cycle) []*flit.Packet {
	ps := r.inner.Offered(node, c)
	r.record(node, c, ps)
	return ps
}

// OnEject implements noc.Traffic, recording replies at the ejecting node.
func (r *Recorder) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	ps := r.inner.OnEject(p, c)
	r.record(p.Dst, c, ps)
	return ps
}

func (r *Recorder) record(node int, c sim.Cycle, ps []*flit.Packet) {
	for _, p := range ps {
		r.log = append(r.log, traffic.TraceEntry{
			Cycle: c, Src: node, Dst: p.Dst, Class: p.Class, Size: p.Size,
		})
	}
}

// Entries returns the recorded trace.
func (r *Recorder) Entries() []traffic.TraceEntry {
	out := make([]traffic.TraceEntry, len(r.log))
	copy(out, r.log)
	return out
}
