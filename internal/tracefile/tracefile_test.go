package tracefile

import (
	"bytes"
	"strings"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/traffic"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := []traffic.TraceEntry{
		{Cycle: 9, Src: 2, Dst: 0, Size: 2, Class: flit.Response},
		{Cycle: 5, Src: 1, Dst: 2, Size: 3, Class: flit.Request},
		{Cycle: 5, Src: 0, Dst: 3, Size: 1, Class: flit.Request},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Output is sorted (cycle, src).
	want := []traffic.TraceEntry{in[2], in[1], in[0]}
	if len(got) != len(want) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	src := "# gonoc-trace v1\n\n# a comment\n3,0,1,0,1\n"
	got, err := Read(strings.NewReader(src))
	if err != nil || len(got) != 1 {
		t.Fatalf("Read = (%v, %v)", got, err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"not,a,trace",
		"1,0,1,0,0",  // size 0
		"1,0,1,9,1",  // bad class
		"1,-1,1,0,1", // negative src
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

func TestRecorderCapturesOfferedAndReplies(t *testing.T) {
	// Record a closed-loop run, then verify the captured entry counts
	// match the network's packet accounting exactly.
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	inner := traffic.NewSynthetic(16, 0.03, traffic.Uniform(16), traffic.FixedSize(2), 4)
	inner.StopAt(1500)
	rec := NewRecorder(inner)
	n := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}, rec)
	n.Run(1500)
	n.Drain(10000)
	if uint64(len(rec.Entries())) != n.Stats().Created() {
		t.Fatalf("recorded %d entries, network created %d", len(rec.Entries()), n.Stats().Created())
	}
}

func TestRecordedTraceReplaysIdentically(t *testing.T) {
	// The headline property: replaying a recorded trace through an
	// identical network reproduces identical latency statistics.
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	cfg := noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}

	inner := traffic.NewSynthetic(16, 0.03, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 9)
	inner.StopAt(2000)
	rec := NewRecorder(inner)
	n1 := noc.MustNew(cfg, rec)
	n1.Run(2000)
	if !n1.Drain(20000) {
		t.Fatal("original run did not drain")
	}

	// Serialize and re-read, then replay.
	var buf bytes.Buffer
	if err := Write(&buf, rec.Entries()); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n2 := noc.MustNew(cfg, traffic.NewTrace(entries))
	n2.Run(2000)
	if !n2.Drain(20000) {
		t.Fatal("replay did not drain")
	}

	s1, s2 := n1.Stats(), n2.Stats()
	if s1.Created() != s2.Created() || s1.Ejected() != s2.Ejected() {
		t.Fatalf("packet counts differ: (%d,%d) vs (%d,%d)",
			s1.Created(), s1.Ejected(), s2.Created(), s2.Ejected())
	}
	if s1.AvgLatency() != s2.AvgLatency() {
		t.Fatalf("latency differs: %v vs %v", s1.AvgLatency(), s2.AvgLatency())
	}
}

func TestReplayAgainstDifferentConfig(t *testing.T) {
	// A trace recorded once can drive a different configuration — here a
	// faulted network — holding offered traffic exactly constant.
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	cfg := noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 0}

	inner := traffic.NewSynthetic(16, 0.03, traffic.Uniform(16), traffic.FixedSize(3), 11)
	inner.StopAt(1500)
	rec := NewRecorder(inner)
	n1 := noc.MustNew(cfg, rec)
	n1.Run(1500)
	n1.Drain(20000)
	clean := n1.Stats().AvgLatency()

	n2 := noc.MustNew(cfg, traffic.NewTrace(rec.Entries()))
	for id := 0; id < 16; id++ {
		n2.Router(id).SetSA1Fault(1, true) // port North
	}
	n2.Run(1500)
	if !n2.Drain(40000) {
		t.Fatal("faulted replay did not drain")
	}
	if n2.Stats().AvgLatency() <= clean {
		t.Fatalf("faulted replay latency %v not above clean %v", n2.Stats().AvgLatency(), clean)
	}
}
