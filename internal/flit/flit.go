// Package flit defines the units of data movement in the NoC.
//
// Following the paper (and Dally & Towles), a packet is segmented into
// flits — flow-control units — before entering the network: a head flit
// that allocates router resources, zero or more body flits carrying the
// payload, and a tail flit that releases resources. A single-flit packet
// uses a flit that is simultaneously head and tail.
package flit

import (
	"fmt"

	"gonoc/internal/sim"
)

// Kind identifies a flit's role within its packet.
type Kind uint8

const (
	// Head allocates a route and a downstream virtual channel.
	Head Kind = iota
	// Body carries payload under the head's allocation.
	Body
	// Tail carries payload and releases the allocation behind it.
	Tail
	// HeadTail is the single flit of a one-flit packet.
	HeadTail
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "head+tail"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (k Kind) IsHead() bool { return k == Head || k == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (k Kind) IsTail() bool { return k == Tail || k == HeadTail }

// Class is the message class (virtual network) a packet travels in.
// Separating coherence requests from responses into disjoint VC classes is
// the standard way to break protocol deadlock in directory-based CMPs, and
// is how the paper's GEM5/GARNET configuration operates.
type Class uint8

const (
	// Request packets: coherence requests, typically single-flit control.
	Request Class = iota
	// Response packets: data replies, typically multi-flit.
	Response
	// NumClasses is the number of message classes.
	NumClasses = 2
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Request:
		return "request"
	case Response:
		return "response"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Packet is a network-level message between two nodes.
type Packet struct {
	// ID is unique per network for the lifetime of a simulation.
	ID uint64
	// Src and Dst are node indices in the topology.
	Src, Dst int
	// Class is the message class (virtual network).
	Class Class
	// Size is the packet length in flits (>= 1).
	Size int
	// Seq is the source NI's end-to-end sequence number, assigned per
	// source node at offer time. A retransmitted copy keeps the original
	// Seq (under a fresh ID), which is how the sink suppresses duplicates
	// and the source matches deliveries to its retransmission buffer.
	Seq uint64
	// CreatedAt is the cycle the packet was offered to the source queue.
	CreatedAt sim.Cycle
	// InjectedAt is the cycle the head flit entered the network proper.
	InjectedAt sim.Cycle
	// EjectedAt is the cycle the tail flit left the network at Dst.
	EjectedAt sim.Cycle
}

// Latency returns the packet latency in cycles from creation (including
// source queueing) to ejection. It is only meaningful after ejection.
func (p *Packet) Latency() sim.Cycle { return p.EjectedAt - p.CreatedAt }

// NetworkLatency returns the in-network latency (injection to ejection).
func (p *Packet) NetworkLatency() sim.Cycle { return p.EjectedAt - p.InjectedAt }

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d %s size=%d", p.ID, p.Src, p.Dst, p.Class, p.Size)
}

// Flit is one flow-control unit of a packet.
type Flit struct {
	// Pkt is the packet this flit belongs to. All flits of a packet share
	// the same *Packet, which is how ejection stamps the packet once.
	Pkt *Packet
	// Kind is the flit's role.
	Kind Kind
	// Seq is the flit's position within the packet, 0-based.
	Seq int
	// Hops counts router traversals, for sanity checks and statistics.
	Hops int
}

// String implements fmt.Stringer.
func (f *Flit) String() string {
	return fmt.Sprintf("%s[%d/%d] of %s", f.Kind, f.Seq+1, f.Pkt.Size, f.Pkt)
}

// Segment slices a packet into its flits. A size-1 packet becomes a single
// HeadTail flit. It panics if p.Size < 1.
func Segment(p *Packet) []*Flit {
	if p.Size < 1 {
		panic(fmt.Sprintf("flit: packet %v has size %d", p, p.Size))
	}
	flits := make([]*Flit, p.Size)
	for i := range flits {
		k := Body
		switch {
		case p.Size == 1:
			k = HeadTail
		case i == 0:
			k = Head
		case i == p.Size-1:
			k = Tail
		}
		flits[i] = &Flit{Pkt: p, Kind: k, Seq: i}
	}
	return flits
}
