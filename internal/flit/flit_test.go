package flit

import (
	"testing"
	"testing/quick"
)

func TestSegmentSingleFlit(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dst: 5, Size: 1}
	fs := Segment(p)
	if len(fs) != 1 {
		t.Fatalf("got %d flits", len(fs))
	}
	f := fs[0]
	if f.Kind != HeadTail || !f.Kind.IsHead() || !f.Kind.IsTail() {
		t.Fatalf("single flit kind = %v", f.Kind)
	}
	if f.Pkt != p || f.Seq != 0 {
		t.Fatalf("flit fields wrong: %+v", f)
	}
}

func TestSegmentMultiFlit(t *testing.T) {
	p := &Packet{ID: 2, Size: 5}
	fs := Segment(p)
	if len(fs) != 5 {
		t.Fatalf("got %d flits", len(fs))
	}
	if fs[0].Kind != Head {
		t.Errorf("first flit %v", fs[0].Kind)
	}
	for i := 1; i < 4; i++ {
		if fs[i].Kind != Body {
			t.Errorf("flit %d kind %v", i, fs[i].Kind)
		}
	}
	if fs[4].Kind != Tail {
		t.Errorf("last flit %v", fs[4].Kind)
	}
}

func TestSegmentTwoFlit(t *testing.T) {
	fs := Segment(&Packet{Size: 2})
	if fs[0].Kind != Head || fs[1].Kind != Tail {
		t.Fatalf("2-flit packet kinds: %v, %v", fs[0].Kind, fs[1].Kind)
	}
}

func TestSegmentPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Segment of size-0 packet did not panic")
		}
	}()
	Segment(&Packet{Size: 0})
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k              Kind
		isHead, isTail bool
	}{
		{Head, true, false},
		{Body, false, false},
		{Tail, false, true},
		{HeadTail, true, true},
	}
	for _, c := range cases {
		if c.k.IsHead() != c.isHead || c.k.IsTail() != c.isTail {
			t.Errorf("%v: IsHead=%v IsTail=%v", c.k, c.k.IsHead(), c.k.IsTail())
		}
	}
}

func TestLatencies(t *testing.T) {
	p := &Packet{CreatedAt: 10, InjectedAt: 14, EjectedAt: 40}
	if p.Latency() != 30 {
		t.Errorf("Latency = %d", p.Latency())
	}
	if p.NetworkLatency() != 26 {
		t.Errorf("NetworkLatency = %d", p.NetworkLatency())
	}
}

func TestStrings(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dst: 2, Class: Response, Size: 3}
	for _, f := range Segment(p) {
		if f.String() == "" {
			t.Fatal("empty flit string")
		}
	}
	for _, k := range []Kind{Head, Body, Tail, HeadTail, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	for _, c := range []Class{Request, Response, Class(9)} {
		if c.String() == "" {
			t.Fatal("empty class string")
		}
	}
}

// Properties: for any size >= 1, segmentation yields exactly one head role,
// one tail role, correct sequence numbers, and all flits share the packet.
func TestSegmentProperties(t *testing.T) {
	f := func(sz uint8) bool {
		size := int(sz%64) + 1
		p := &Packet{ID: 9, Size: size}
		fs := Segment(p)
		if len(fs) != size {
			return false
		}
		heads, tails := 0, 0
		for i, fl := range fs {
			if fl.Seq != i || fl.Pkt != p {
				return false
			}
			if fl.Kind.IsHead() {
				heads++
			}
			if fl.Kind.IsTail() {
				tails++
			}
		}
		return heads == 1 && tails == 1 && fs[0].Kind.IsHead() && fs[size-1].Kind.IsTail()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
