package noc

import (
	"reflect"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// TestSpansSinglePacket runs one packet corner to corner and checks the
// reconstructed span against ground truth: the XY route, the hop count,
// and the latency the NI reported.
func TestSpansSinglePacket(t *testing.T) {
	o := obs.New(1 << 14)
	n := MustNew(obsCfg(o), nil)
	defer n.Close()
	n.Inject(0, &flit.Packet{Dst: 15, Size: 3})
	if !n.Drain(500) {
		t.Fatal("packet not delivered")
	}
	set := n.Spans()
	if len(set.Packets) != 1 || set.Incomplete != 0 || set.Orphans != 0 || set.Dropped != 0 {
		t.Fatalf("set = %d packets, %d incomplete, %d orphans, %d dropped",
			len(set.Packets), set.Incomplete, set.Orphans, set.Dropped)
	}
	p := set.Packets[0]
	if p.Src != 0 || p.Dst != 15 {
		t.Fatalf("src->dst = %d->%d, want 0->15", p.Src, p.Dst)
	}
	// The span visits every router on the XY path, one hop each.
	wantPath := n.Mesh().PathXY(0, 15)
	if len(p.Hops) != len(wantPath) {
		t.Fatalf("hops = %d, want %d (XY path)", len(p.Hops), len(wantPath))
	}
	for i, h := range p.Hops {
		if h.Router != wantPath[i] {
			t.Errorf("hop %d at router %d, want %d", i, h.Router, wantPath[i])
		}
		if h.Flits != 3 {
			t.Errorf("hop %d saw %d flits, want 3", i, h.Flits)
		}
	}
	// The span's latency is the NI-reported creation-to-ejection latency,
	// which for the only measured packet is the collector's maximum.
	if p.Latency != n.Stats().MaxLatency() {
		t.Errorf("span latency %d, want %d", p.Latency, n.Stats().MaxLatency())
	}
	if p.NetworkLatency() == 0 || p.NetworkLatency() > p.Latency {
		t.Errorf("network latency %d out of range (total %d)", p.NetworkLatency(), p.Latency)
	}
	// Hops are contiguous: the next route computation can happen no
	// earlier than the cycle after the head's crossbar traversal.
	for i := 1; i < len(p.Hops); i++ {
		if p.Hops[i].Arrive <= p.Hops[i-1].SACycle {
			t.Errorf("hop %d arrives at %d, before upstream switch grant %d",
				i, p.Hops[i].Arrive, p.Hops[i-1].SACycle)
		}
	}
}

// TestSpansWorkerInvariant pins span reconstruction to the parallel
// stepper's bit-exactness guarantee: the same workload traced at
// Workers=1 and Workers=4 must reconstruct identical span sets, even
// though the raw ring-buffer emission order differs.
func TestSpansWorkerInvariant(t *testing.T) {
	build := func(workers int) obs.SpanSet {
		o := obs.New(1 << 18)
		cfg := obsCfg(o)
		cfg.Workers = workers
		src := traffic.NewSynthetic(16, 0.02, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 11)
		src.StopAt(400)
		n := MustNew(cfg, src)
		defer n.Close()
		n.Run(400)
		n.Drain(1200)
		return n.Spans()
	}
	serial, parallel := build(1), build(4)
	if len(serial.Packets) == 0 {
		t.Fatal("no packets reconstructed")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("span sets diverged between worker counts: %d vs %d packets, %d vs %d incomplete",
			len(serial.Packets), len(parallel.Packets), serial.Incomplete, parallel.Incomplete)
	}
	// Cross-check against endpoint statistics: every reconstructed packet
	// count must be bounded by what the collector saw ejected.
	n := uint64(len(serial.Packets))
	if n == 0 || serial.Orphans != 0 || serial.Dropped != 0 {
		t.Errorf("reconstruction lossy without ring wrap: %d packets, %d orphans, %d dropped",
			n, serial.Orphans, serial.Dropped)
	}
}

// TestSpansUnderFaults exercises reconstruction while the fault-tolerance
// mechanisms are engaged, so spans carry borrow/bypass/secondary markers.
func TestSpansUnderFaults(t *testing.T) {
	o := obs.New(1 << 18)
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 9)
	src.StopAt(2000)
	n := MustNew(obsCfg(o), src)
	defer n.Close()
	rt := n.Router(5)
	rt.SetSA1Fault(topology.East, true)
	rt.SetVA1Fault(topology.North, 0, true)
	n.Run(2000)
	n.Drain(4000)
	set := n.Spans()
	if len(set.Packets) == 0 {
		t.Fatal("no packets reconstructed under faults")
	}
	var stalls, bypass int
	for _, p := range set.Packets {
		for _, h := range p.Hops {
			stalls += h.BorrowStalls
			bypass += h.BypassGrants
		}
	}
	if stalls == 0 && bypass == 0 {
		t.Error("fault mechanisms engaged but no span carries their markers")
	}
}
