package noc

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"gonoc/internal/core"
	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
)

// Canonical-encoding helpers, mirroring internal/core's.
func appI(b []byte, v int) []byte    { return binary.AppendVarint(b, int64(v)) }
func appU(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appB(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Deep snapshot/restore of a Network at a step boundary, plus a
// canonical byte encoding of the behaviour-relevant state. These are
// the enablers for the model-checking tier (internal/modelcheck), which
// snapshots a state, explores one successor, and rolls back — and the
// per-network half of the checkpoint/restore groundwork the ROADMAP's
// campaign-server item needs.
//
// Snapshot and Restore must be called between Steps (never from a
// hook). At that boundary the router-internal I/O latches are empty —
// inputs were drained at the top of Tick, outputs were taken by the
// commit phase — and all in-flight traffic lives in the network's
// inbound latches (inFlits/inCredits/inNICredits), which the snapshot
// captures.

// Snapshot is a deep, self-contained copy of a Network's mutable state.
// It holds no aliases into the live network: packets and flits are
// cloned with identity preserved (all flits of one packet share one
// cloned *Packet), so a snapshot can be restored any number of times.
type Snapshot struct {
	cycle  sim.Cycle
	nextID uint64

	routers []*core.RouterState
	nis     []niState

	inFlits     [][]router.InFlit
	inCredits   [][]core.CreditIn
	inNICredits [][]router.Credit

	linkFlits [][]uint64

	linkDead        [][]bool
	routerDead      []bool
	midFlight       [][][]bool
	linkDrop        [][][]bool
	linkDropsActive int

	seqNext   []uint64
	retx      [][]retxEntry
	delivered []map[int]*seqWindow

	stats *stats.Collector
}

// niState is the saved form of one network interface.
type niState struct {
	queues    [][]*flit.Packet
	active    [][]*flit.Flit
	activeVCs int
	vcBusy    []bool
	credits   []int
	sendScan  int
}

// cloner deep-copies flits and packets with identity preservation: every
// distinct live *Packet maps to exactly one clone, so the flits of a
// packet split between an NI and router buffers still share their
// packet after a round trip.
type cloner struct {
	pkts  map[*flit.Packet]*flit.Packet
	flits map[*flit.Flit]*flit.Flit
}

func newCloner() *cloner {
	return &cloner{pkts: map[*flit.Packet]*flit.Packet{}, flits: map[*flit.Flit]*flit.Flit{}}
}

func (c *cloner) pkt(p *flit.Packet) *flit.Packet {
	if p == nil {
		return nil
	}
	if cp, ok := c.pkts[p]; ok {
		return cp
	}
	cp := *p
	c.pkts[p] = &cp
	return &cp
}

func (c *cloner) flit(f *flit.Flit) *flit.Flit {
	if f == nil {
		return nil
	}
	if cf, ok := c.flits[f]; ok {
		return cf
	}
	cf := *f
	cf.Pkt = c.pkt(f.Pkt)
	c.flits[f] = &cf
	return &cf
}

// Snapshot captures the network's complete mutable state. The receiver
// is unchanged; the returned snapshot shares nothing with it.
func (n *Network) Snapshot() *Snapshot {
	cl := newCloner()
	nodes := len(n.routers)
	s := &Snapshot{
		cycle:  n.cycle,
		nextID: n.nextID,

		routers: make([]*core.RouterState, nodes),
		nis:     make([]niState, nodes),

		inFlits:     make([][]router.InFlit, nodes),
		inCredits:   make([][]core.CreditIn, nodes),
		inNICredits: make([][]router.Credit, nodes),

		linkFlits: make([][]uint64, nodes),

		linkDead:        make([][]bool, nodes),
		routerDead:      append([]bool(nil), n.routerDead...),
		midFlight:       make([][][]bool, nodes),
		linkDrop:        make([][][]bool, nodes),
		linkDropsActive: n.linkDropsActive,

		seqNext:   append([]uint64(nil), n.seqNext...),
		retx:      make([][]retxEntry, nodes),
		delivered: make([]map[int]*seqWindow, nodes),

		stats: n.stats.Clone(),
	}
	for id := 0; id < nodes; id++ {
		s.routers[id] = n.routers[id].SaveState(cl.flit)
		s.nis[id] = saveNI(n.nis[id], cl)

		fl := make([]router.InFlit, len(n.inFlits[id]))
		for i, w := range n.inFlits[id] {
			fl[i] = router.InFlit{In: w.In, VC: w.VC, F: cl.flit(w.F)}
		}
		s.inFlits[id] = fl
		s.inCredits[id] = append([]core.CreditIn(nil), n.inCredits[id]...)
		s.inNICredits[id] = append([]router.Credit(nil), n.inNICredits[id]...)

		s.linkFlits[id] = append([]uint64(nil), n.linkFlits[id]...)
		s.linkDead[id] = append([]bool(nil), n.linkDead[id]...)
		s.midFlight[id] = copyBoolGrid(n.midFlight[id])
		s.linkDrop[id] = copyBoolGrid(n.linkDrop[id])
		s.retx[id] = append([]retxEntry(nil), n.retx[id]...)
		s.delivered[id] = copyWindows(n.delivered[id])
	}
	return s
}

func copyBoolGrid(g [][]bool) [][]bool {
	out := make([][]bool, len(g))
	for i, row := range g {
		out[i] = append([]bool(nil), row...)
	}
	return out
}

func copyWindows(m map[int]*seqWindow) map[int]*seqWindow {
	if m == nil {
		return nil
	}
	out := make(map[int]*seqWindow, len(m))
	//nocvet:ignore determinism map-to-map copy; result order-independent
	for src, w := range m {
		seen := make(map[uint64]bool, len(w.seen))
		//nocvet:ignore determinism map-to-map copy; result order-independent
		for k, v := range w.seen {
			seen[k] = v
		}
		out[src] = &seqWindow{floor: w.floor, seen: seen}
	}
	return out
}

func saveNI(ni *NI, cl *cloner) niState {
	s := niState{
		queues:    make([][]*flit.Packet, len(ni.queues)),
		active:    make([][]*flit.Flit, len(ni.active)),
		activeVCs: ni.activeVCs,
		vcBusy:    append([]bool(nil), ni.vcBusy...),
		credits:   append([]int(nil), ni.credits...),
		sendScan:  ni.sendScan,
	}
	for cls, q := range ni.queues {
		qs := make([]*flit.Packet, len(q))
		for i, p := range q {
			qs[i] = cl.pkt(p)
		}
		s.queues[cls] = qs
	}
	for v, fl := range ni.active {
		if len(fl) == 0 {
			continue
		}
		fs := make([]*flit.Flit, len(fl))
		for i, f := range fl {
			fs[i] = cl.flit(f)
		}
		s.active[v] = fs
	}
	return s
}

// Restore rewinds the network to a state captured by Snapshot. The
// snapshot is re-cloned, not consumed: the same snapshot can be
// restored again. Restore must be called at a step boundary, on the
// same network (same configuration and topology) the snapshot came
// from. Fault-aware routing tables are rebuilt from the restored
// link/router fault sets.
func (n *Network) Restore(s *Snapshot) {
	// The fault-aware routing tables are a pure function of the link and
	// router fault sets, so the rebuild at the end is only needed when
	// the snapshot's fault sets differ from the network's current ones.
	// The model checker restores thousands of same-fault-set snapshots
	// per scenario; skipping the rebuild there is a large win.
	faultsChanged := false
	for id := range n.routerDead {
		if n.routerDead[id] != s.routerDead[id] {
			faultsChanged = true
			break
		}
	}
	if !faultsChanged {
	links:
		for id := range n.linkDead {
			for p := range n.linkDead[id] {
				if n.linkDead[id][p] != s.linkDead[id][p] {
					faultsChanged = true
					break links
				}
			}
		}
	}

	cl := newCloner()
	n.cycle = s.cycle
	n.nextID = s.nextID
	n.linkDropsActive = s.linkDropsActive
	copy(n.routerDead, s.routerDead)
	copy(n.seqNext, s.seqNext)
	n.stats = s.stats.Clone()

	for id := range n.routers {
		n.routers[id].RestoreState(s.routers[id], cl.flit)
		restoreNI(n.nis[id], &s.nis[id], cl)

		n.inFlits[id] = n.inFlits[id][:0]
		for _, w := range s.inFlits[id] {
			n.inFlits[id] = append(n.inFlits[id],
				router.InFlit{In: w.In, VC: w.VC, F: cl.flit(w.F)})
		}
		n.inCredits[id] = append(n.inCredits[id][:0], s.inCredits[id]...)
		n.inNICredits[id] = append(n.inNICredits[id][:0], s.inNICredits[id]...)

		copy(n.linkFlits[id], s.linkFlits[id])
		copy(n.linkDead[id], s.linkDead[id])
		for p := range n.midFlight[id] {
			copy(n.midFlight[id][p], s.midFlight[id][p])
			copy(n.linkDrop[id][p], s.linkDrop[id][p])
		}
		n.retx[id] = append(n.retx[id][:0], s.retx[id]...)
		n.delivered[id] = copyWindows(s.delivered[id])

		// Staged compute outputs alias router buffers that RestoreState
		// just reset; drop the stale views.
		n.stagedFlits[id] = nil
		n.stagedCredits[id] = nil
	}
	if faultsChanged {
		// Rebuild (or drop) the fault-aware tables from the restored
		// fault sets. rebuildRoutes reinstalls the topology's baseline
		// RouteFn (nil for mesh/cmesh, the dateline torusRoute for a
		// torus) when the restored state is fault free.
		if err := n.rebuildRoutes(); err != nil {
			// The snapshot came from a network that already routed this
			// fault set, so rebuilding it cannot fail.
			panic(err)
		}
	}
}

func restoreNI(ni *NI, s *niState, cl *cloner) {
	ni.activeVCs = s.activeVCs
	ni.sendScan = s.sendScan
	copy(ni.vcBusy, s.vcBusy)
	copy(ni.credits, s.credits)
	for cls := range ni.queues {
		// Fresh backing arrays: the live queues are re-sliced by
		// Offer/tick, and restore is not a hot path.
		q := make([]*flit.Packet, 0, len(s.queues[cls]))
		for _, p := range s.queues[cls] {
			q = append(q, cl.pkt(p))
		}
		ni.queues[cls] = q
	}
	for v := range ni.active {
		if len(s.active[v]) == 0 {
			ni.active[v] = nil
			continue
		}
		fs := make([]*flit.Flit, 0, len(s.active[v]))
		for _, f := range s.active[v] {
			fs = append(fs, cl.flit(f))
		}
		ni.active[v] = fs
	}
}

// PendingRetx returns the number of unacknowledged packets tracked by
// source retransmission buffers across the network.
func (n *Network) PendingRetx() int { return n.pendingRetx() }

// AppendCanonical appends a canonical encoding of the network's
// behaviour-relevant state to b and returns the extended slice. Two
// network states with equal canonical encodings (under the same
// configuration) are bisimilar: every future choice sequence produces
// the same architectural behaviour. Excluded, because they never feed
// back into behaviour: the cycle counter (all timers are encoded
// relative to it), packet IDs and timestamps, the statistics collector,
// and link-utilization counters.
func (n *Network) AppendCanonical(b []byte) []byte {
	for id, r := range n.routers {
		b = r.AppendCanonical(b)
		b = n.appendCanonicalNI(b, id)

		b = appI(b, len(n.inFlits[id]))
		for _, w := range n.inFlits[id] {
			b = appI(b, int(w.In))
			b = appI(b, w.VC)
			b = core.AppendCanonicalFlit(b, w.F)
		}
		b = appI(b, len(n.inCredits[id]))
		for _, cr := range n.inCredits[id] {
			b = appI(b, int(cr.Out))
			b = appI(b, cr.VC)
			b = appB(b, cr.VCFree)
		}
		b = appI(b, len(n.inNICredits[id]))
		for _, cr := range n.inNICredits[id] {
			b = appI(b, int(cr.In))
			b = appI(b, cr.VC)
			b = appB(b, cr.VCFree)
		}

		b = appendBools(b, n.linkDead[id])
		b = appB(b, n.routerDead[id])
		for p := range n.midFlight[id] {
			b = appendBools(b, n.midFlight[id][p])
			b = appendBools(b, n.linkDrop[id][p])
		}

		b = appU(b, n.seqNext[id])
		b = appI(b, len(n.retx[id]))
		for _, e := range n.retx[id] {
			b = appU(b, e.seq)
			b = appI(b, e.dst)
			b = append(b, byte(e.class))
			b = appI(b, e.size)
			// Timers relative to the current cycle, so states reached at
			// different absolute cycles can still coincide.
			b = appU(b, uint64(e.deadline-n.cycle))
			b = appU(b, uint64(e.interval))
			b = appI(b, e.retries)
		}
		b = n.appendCanonicalWindows(b, n.delivered[id])
	}
	return b
}

func (n *Network) appendCanonicalNI(b []byte, id int) []byte {
	ni := n.nis[id]
	for _, q := range ni.queues {
		b = appI(b, len(q))
		for _, p := range q {
			b = appendCanonicalPacket(b, p)
		}
	}
	for _, fl := range ni.active {
		b = appI(b, len(fl))
		for _, f := range fl {
			b = core.AppendCanonicalFlit(b, f)
		}
	}
	b = appendBools(b, ni.vcBusy)
	for _, c := range ni.credits {
		b = appI(b, c)
	}
	b = appI(b, ni.sendScan)
	return b
}

func (n *Network) appendCanonicalWindows(b []byte, m map[int]*seqWindow) []byte {
	b = appI(b, len(m))
	srcs := make([]int, 0, len(m))
	//nocvet:ignore determinism collected keys are sorted before use
	for src := range m {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		w := m[src]
		b = appI(b, src)
		b = appU(b, w.floor)
		seen := make([]uint64, 0, len(w.seen))
		//nocvet:ignore determinism collected keys are sorted before use
		for s := range w.seen {
			seen = append(seen, s)
		}
		sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
		b = appI(b, len(seen))
		for _, s := range seen {
			b = appU(b, s)
		}
	}
	return b
}

func appendCanonicalPacket(b []byte, p *flit.Packet) []byte {
	b = appI(b, p.Src)
	b = appI(b, p.Dst)
	b = append(b, byte(p.Class))
	b = appI(b, p.Size)
	b = appU(b, p.Seq)
	return b
}

func appendBools(b []byte, vs []bool) []byte {
	for _, v := range vs {
		b = appB(b, v)
	}
	return b
}

// StateHash returns a 64-bit FNV-1a hash of the canonical state, for
// display and logging. The model checker keys its visited set on the
// full canonical bytes, not this hash, so hash collisions cannot mask
// distinct states.
func (n *Network) StateHash() uint64 {
	h := fnv.New64a()
	h.Write(n.AppendCanonical(nil))
	return h.Sum64()
}

// DropPendingCredit removes one credit from router id's inbound credit
// latch and reports whether there was one to remove. It exists to
// sabotage the simulator on purpose: losing a credit permanently
// underfunds one VC's flow control, which eventually wedges the
// pipeline — exactly the class of bug the model checker's deadlock
// detector must catch. Used by `noctool check -sabotage` and the
// modelcheck counterexample tests; never called by simulation code.
func (n *Network) DropPendingCredit(id int) bool {
	lat := n.inCredits[id]
	if len(lat) == 0 {
		return false
	}
	n.inCredits[id] = lat[:len(lat)-1]
	return true
}
