package noc

import (
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/rng"
	"gonoc/internal/topology"
)

// TestFunctionalPredicateMatchesBehavior is the conformance test between
// the SPF failure predicate and actual router behaviour: for many random
// fault sets that Functional() declares tolerable, every flow through
// the faulted router must still deliver; and for fault sets declared
// fatal, at least one flow must wedge. A divergence in either direction
// would invalidate the SPF analysis.
func TestFunctionalPredicateMatchesBehavior(t *testing.T) {
	r := rng.New(20140519) // the paper's conference date
	for trial := 0; trial < 40; trial++ {
		n := MustNew(testCfg(3, 3, true), nil)
		rt := n.Router(4)
		nFaults := 1 + r.Intn(10)
		for i := 0; i < nFaults; i++ {
			p := topology.Port(r.Intn(5))
			switch r.Intn(6) {
			case 0:
				rt.SetRCFault(p, r.Intn(2), true)
			case 1:
				rt.SetVA1Fault(p, r.Intn(4), true)
			case 2:
				rt.SetVA2Fault(p, r.Intn(4), true)
			case 3:
				rt.SetSA1Fault(p, true)
			case 4:
				rt.SetSA2Fault(p, true)
			case 5:
				rt.SetXBFault(p, true)
			}
		}
		functional := rt.Functional()

		// Drive one flow through the centre for every (in, out) direction
		// pair: N→S, S→N, E→W, W→E plus corner turns, and local flows.
		flows := [][2]int{
			{1, 7}, {7, 1}, {3, 5}, {5, 3}, // straight through centre
			{1, 5}, {3, 7}, {5, 7}, {3, 1}, // turns through centre
			{4, 0}, {0, 4}, // local inject/eject at centre region
		}
		for _, f := range flows {
			n.Inject(f[0], &flit.Packet{Dst: f[1], Size: 2})
		}
		delivered := n.Drain(4000)

		if functional && !delivered {
			t.Fatalf("trial %d: predicate says functional but %d packets wedged",
				trial, n.Stats().InFlight())
		}
		if !functional && delivered {
			// A non-functional router has SOME dead function; the probe
			// flows above exercise every port pair, so at least one must
			// wedge. (VA2 class-death is the one exception the probes
			// can miss only if no probe crosses the dead output — they
			// all do.)
			t.Fatalf("trial %d: predicate says failed but all packets delivered", trial)
		}
	}
}
