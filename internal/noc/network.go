// Package noc wires routers, links and network interfaces into a complete
// mesh network-on-chip and drives end-to-end simulations: traffic
// generation, fault-injection hooks and statistics collection.
//
// The cycle model matches GARNET's at the granularity the paper needs:
// routers have the 4-stage pipeline of Figure 2, inter-router links take
// one cycle in each direction (flits downstream, credits upstream), and
// each node's NI injects at most one flit per cycle.
package noc

import (
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

const localPort = topology.Local

// Traffic is the workload driving a simulation. Implementations must be
// deterministic given their construction-time seed.
type Traffic interface {
	// Offered returns the packets node creates at cycle c (usually zero
	// or one). The network stamps CreatedAt.
	Offered(node int, c sim.Cycle) []*flit.Packet
	// OnEject is invoked when a packet is delivered; any returned packets
	// are offered at the delivery node (coherence-style replies). May be
	// a no-op for open-loop synthetic traffic.
	OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet
}

// Config configures a network.
type Config struct {
	// Width and Height are the mesh dimensions (the paper uses 8×8).
	Width, Height int
	// Router configures every router in the mesh.
	Router router.Config
	// Warmup is the statistics warmup window in cycles.
	Warmup sim.Cycle
}

// DefaultConfig returns the paper's evaluation configuration: an 8×8 mesh
// of protected 5×5 routers with 4 VCs.
func DefaultConfig() Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	return Config{Width: 8, Height: 8, Router: rc, Warmup: 1000}
}

// payload is an in-flight link transfer, delivered next cycle.
type flitWire struct {
	dst int // destination router
	in  topology.Port
	vc  int
	f   *flit.Flit
}

type creditWire struct {
	dst int // destination router (upstream)
	c   core.CreditIn
}

type niCreditWire struct {
	dst int // destination NI node
	c   router.Credit
}

// Network is a complete W×H mesh NoC.
type Network struct {
	cfg     Config
	mesh    topology.Mesh
	routers []*core.Router
	nis     []*NI
	traffic Traffic
	stats   *stats.Collector
	cycle   sim.Cycle
	nextID  uint64

	// hooks run at the start of every cycle (fault injection, probes).
	hooks []func(c sim.Cycle)

	// linkFlits counts flits sent per (router, output port), for
	// utilization analysis and the heatmap.
	linkFlits [][]uint64

	// obsNodes holds each node's pre-bound observability handle, all nil
	// when cfg.Router.Obs is nil (the default).
	obsNodes []*obs.NodeObs

	// link latches: generated this cycle, delivered next cycle.
	flitWires     []flitWire
	creditWires   []creditWire
	niCreditWires []niCreditWire
}

// New builds a network. All routers share cfg.Router; traffic may be nil
// for manually-driven tests.
func New(cfg Config, traffic Traffic) (*Network, error) {
	if cfg.Width < 2 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	mesh := topology.NewMesh(cfg.Width, cfg.Height)
	n := &Network{
		cfg:     cfg,
		mesh:    mesh,
		traffic: traffic,
		stats:   stats.NewCollector(cfg.Warmup),
	}
	n.routers = make([]*core.Router, mesh.Nodes())
	n.nis = make([]*NI, mesh.Nodes())
	n.linkFlits = make([][]uint64, mesh.Nodes())
	n.obsNodes = make([]*obs.NodeObs, mesh.Nodes())
	for i := range n.linkFlits {
		n.linkFlits[i] = make([]uint64, cfg.Router.Ports)
	}
	for id := 0; id < mesh.Nodes(); id++ {
		r, err := core.New(id, mesh, cfg.Router)
		if err != nil {
			return nil, err
		}
		n.routers[id] = r
		n.obsNodes[id] = obs.BindNode(cfg.Router.Obs, id, cfg.Router.Ports)
		node := id
		n.nis[id] = newNI(id, r, n.obsNodes[id], func(p *flit.Packet, c sim.Cycle) {
			n.stats.RecordEjection(p)
			if on := n.obsNodes[node]; on != nil {
				on.NIEject(c, p.Latency())
			}
			if n.traffic != nil {
				for _, rp := range n.traffic.OnEject(p, c) {
					n.offer(node, rp, c)
				}
			}
		})
	}
	return n, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, traffic Traffic) *Network {
	n, err := New(cfg, traffic)
	if err != nil {
		panic(err)
	}
	return n
}

// Mesh returns the network topology.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// Router returns the router at node id.
func (n *Network) Router(id int) *core.Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id int) *NI { return n.nis[id] }

// Stats returns the statistics collector.
func (n *Network) Stats() *stats.Collector { return n.stats }

// Now returns the current cycle.
func (n *Network) Now() sim.Cycle { return n.cycle }

// AddHook registers a function invoked at the start of every cycle, used
// by the fault injector and test probes.
func (n *Network) AddHook(h func(c sim.Cycle)) { n.hooks = append(n.hooks, h) }

// Obs returns the observer the network was configured with, or nil when
// observability is disabled. The fault injectors and the watchdog use it
// to report their events into the same registry and trace.
func (n *Network) Obs() *obs.Observer { return n.cfg.Router.Obs }

// offer stamps and enqueues a packet at node.
func (n *Network) offer(node int, p *flit.Packet, c sim.Cycle) {
	p.ID = n.nextID
	n.nextID++
	p.CreatedAt = c
	p.Src = node
	n.stats.RecordCreation(p)
	if on := n.obsNodes[node]; on != nil {
		on.NIOffer(c, p.Dst)
	}
	n.nis[node].Offer(p)
}

// Inject offers a packet from src to the network immediately (for tests
// and trace-driven runs). Class and Size must be set; Src is overwritten.
func (n *Network) Inject(src int, p *flit.Packet) { n.offer(src, p, n.cycle) }

// Step advances the network one cycle.
func (n *Network) Step() {
	c := n.cycle

	// 0. Cycle hooks (fault injection etc.).
	for _, h := range n.hooks {
		h(c)
	}

	// 1. Deliver last cycle's link traffic.
	for _, w := range n.flitWires {
		n.routers[w.dst].AcceptFlit(router.InFlit{In: w.in, VC: w.vc, F: w.f})
	}
	n.flitWires = n.flitWires[:0]
	for _, w := range n.creditWires {
		n.routers[w.dst].AcceptCredit(w.c)
	}
	n.creditWires = n.creditWires[:0]
	for _, w := range n.niCreditWires {
		n.nis[w.dst].acceptCredit(w.c)
	}
	n.niCreditWires = n.niCreditWires[:0]

	// 2. Traffic generation and NI injection.
	if n.traffic != nil {
		for node := range n.nis {
			for _, p := range n.traffic.Offered(node, c) {
				n.offer(node, p, c)
			}
		}
	}
	for _, ni := range n.nis {
		ni.tick(c)
	}

	// 3. Routers compute.
	for _, r := range n.routers {
		r.Tick(c)
	}

	// 4. Collect outputs onto the wires (delivered next cycle), except
	// local ejection, which the NI consumes this cycle.
	for id, r := range n.routers {
		for _, of := range r.TakeOutFlits() {
			n.linkFlits[id][of.Out]++
			if on := n.obsNodes[id]; on != nil {
				on.LinkFlit(int(of.Out))
			}
			if of.Out == localPort {
				n.nis[id].consume(of.F, c)
				// Ejection credit back to this router's local output.
				n.creditWires = append(n.creditWires, creditWire{
					dst: id,
					c:   core.CreditIn{Out: localPort, VC: of.DownVC, VCFree: of.F.Kind.IsTail()},
				})
				continue
			}
			nb, ok := n.mesh.Neighbor(id, of.Out)
			if !ok {
				panic(fmt.Sprintf("noc: router %d emitted flit through edge port %v", id, of.Out))
			}
			n.flitWires = append(n.flitWires, flitWire{
				dst: nb, in: of.Out.Opposite(), vc: of.DownVC, f: of.F,
			})
		}
		for _, cr := range r.TakeOutCredits() {
			if cr.In == localPort {
				n.niCreditWires = append(n.niCreditWires, niCreditWire{dst: id, c: cr})
				continue
			}
			up, ok := n.mesh.Neighbor(id, cr.In)
			if !ok {
				panic(fmt.Sprintf("noc: router %d emitted credit through edge port %v", id, cr.In))
			}
			n.creditWires = append(n.creditWires, creditWire{
				dst: up,
				c:   core.CreditIn{Out: cr.In.Opposite(), VC: cr.VC, VCFree: cr.VCFree},
			})
		}
	}

	n.cycle++
}

// Run advances the network cycles steps.
func (n *Network) Run(cycles sim.Cycle) {
	for i := sim.Cycle(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain keeps stepping (traffic generation continues) until all offered
// packets have been delivered or the cycle limit is reached. It returns
// true when the network drained.
func (n *Network) Drain(limit sim.Cycle) bool {
	for n.cycle < limit {
		if n.stats.InFlight() == 0 {
			return true
		}
		n.Step()
	}
	return n.stats.InFlight() == 0
}

// Functional reports whether every router in the network is functional.
func (n *Network) Functional() bool {
	for _, r := range n.routers {
		if !r.Functional() {
			return false
		}
	}
	return true
}
