// Package noc wires routers, links and network interfaces into a complete
// network-on-chip and drives end-to-end simulations: traffic generation,
// fault-injection hooks and statistics collection. Three topologies are
// supported — the paper's 2-D mesh, a torus and a concentrated mesh (see
// internal/topology and Config.Topo).
//
// The cycle model matches GARNET's at the granularity the paper needs:
// routers have the 4-stage pipeline of Figure 2, inter-router links take
// one cycle in each direction (flits downstream, credits upstream), and
// each node's NI injects at most one flit per cycle.
//
// # Parallel stepping
//
// Step is an explicit multi-phase tick. The compute phase advances every
// node — delivering the node's latched link traffic, ticking its NI and
// its router — reading only last-cycle state, so nodes are mutually
// independent and the phase shards over a persistent worker pool
// (Config.Workers). The commit phase then applies all cross-node
// effects. Local effects (ejections, statistics, closed-loop traffic
// replies) commit serially in canonical node order; link transfers
// commit pull-side — each destination node gathers the flits and credits
// its neighbours staged for it — which makes every latch single-writer,
// so in the fault-free steady state the link commit also shards over the
// pool. Serial and parallel execution run the identical code in the
// identical order, so results are bit-exact for any worker count: the
// same flit arrival cycles, the same statistics, and the same
// observability event multiset (see obs.SortEvents for the canonical
// event order used when comparing traces).
//
// # Memory discipline
//
// The steady-state Step path allocates nothing (pinned by
// TestStepZeroAllocSteadyState and the benchmark smoke test; see
// DESIGN.md). All per-cycle traffic flows through preallocated storage:
// the inter-node latches are fixed-capacity buckets carved from
// contiguous arenas, router output buffers are drained by handing the
// caller the filled slice and retaining the backing array, and neighbour
// lookups go through a flat table baked at construction time instead of
// per-flit coordinate arithmetic.
package noc

import (
	"fmt"
	"runtime"
	"sync"

	"gonoc/internal/core"
	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

const localPort = topology.Local

// Traffic is the workload driving a simulation. Implementations must be
// deterministic given their construction-time seed.
type Traffic interface {
	// Offered returns the packets node creates at cycle c (usually zero
	// or one). The network stamps CreatedAt.
	Offered(node int, c sim.Cycle) []*flit.Packet
	// OnEject is invoked when a packet is delivered; any returned packets
	// are offered at the delivery node (coherence-style replies). May be
	// a no-op for open-loop synthetic traffic.
	OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet
}

// Config configures a network.
type Config struct {
	// Width and Height are the router-grid dimensions (the paper uses
	// 8×8).
	Width, Height int
	// Topo selects the topology family: "" or "mesh" (the default),
	// "torus" or "cmesh". A torus needs at least numLayers VCs per
	// message class for its dateline deadlock avoidance; all three
	// families support network-level link/router faults (SetLinkFault,
	// SetRouterFault) on top of router-internal faults — on a torus
	// the fault-aware tables restrict wrap-link crossings to keep the
	// dateline scheme deadlock free (see routing.go).
	Topo string
	// Conc is the cmesh concentration (terminals per router); 0 means 1.
	// Ignored unless Topo is "cmesh".
	Conc int
	// Router configures every router in the network.
	Router router.Config
	// Warmup is the statistics warmup window in cycles.
	Warmup sim.Cycle
	// Workers is the number of goroutines Step's parallel phases are
	// sharded over: 0 selects runtime.GOMAXPROCS(0), 1 is the serial
	// path, and any value is clamped to the node count. Every worker
	// count produces bit-exact identical simulations; negative values
	// are rejected by New.
	Workers int
	// Retx configures the NIs' end-to-end retransmission layer; the
	// zero value disables it.
	Retx RetxConfig
}

// RetxConfig configures end-to-end packet retransmission at the network
// interfaces: sources keep a bounded buffer of unacknowledged packets
// and re-inject them on a cycle timeout with exponential backoff, and
// sinks suppress the duplicate deliveries this can create. Combined with
// fault-aware routing it delivers 100% of packets under any single link
// or router fault.
type RetxConfig struct {
	// Timeout is the initial retransmission timeout in cycles, counted
	// from the offer; 0 disables retransmission entirely. Set it above
	// the worst-case delivery latency of the configuration or duplicates
	// will be common (they are suppressed, but cost bandwidth).
	Timeout sim.Cycle
	// Backoff multiplies the timeout after every retransmission
	// (exponential backoff); values below 1 default to 2.
	Backoff int
	// MaxRetries bounds the retransmissions per packet; 0 defaults to 8.
	// A packet still undelivered after MaxRetries is abandoned (it has
	// already been recorded as dropped when its last copy died).
	MaxRetries int
	// Buffer bounds the retransmission entries tracked per source node;
	// 0 defaults to 32. Packets offered while the buffer is full are
	// sent without retransmission protection.
	Buffer int
}

// withDefaults resolves the zero-value knobs of an enabled config.
func (rc RetxConfig) withDefaults() RetxConfig {
	if rc.Timeout <= 0 {
		return RetxConfig{}
	}
	if rc.Backoff < 1 {
		rc.Backoff = 2
	}
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = 8
	}
	if rc.Buffer <= 0 {
		rc.Buffer = 32
	}
	return rc
}

// DefaultConfig returns the paper's evaluation configuration: an 8×8 mesh
// of protected 5×5 routers with 4 VCs.
func DefaultConfig() Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	return Config{Width: 8, Height: 8, Router: rc, Warmup: 1000}
}

// Network is a complete NoC: routers, links and network interfaces on
// the configured topology.
type Network struct {
	cfg Config //noc:derived immutable configuration, fixed at construction
	//noc:derived immutable configuration, fixed at construction
	topo topology.Topology
	// mesh is the underlying mesh router grid exposed by the Mesh()
	// accessor: the mesh itself, or the cmesh's router grid. hasMesh is
	// false for the torus, whose wrap links make it not a mesh (use
	// Topo() there). Fault-aware routing runs on topo directly for all
	// families.
	//noc:derived immutable configuration, derived from topo at build time
	mesh topology.Mesh
	//noc:derived immutable configuration, derived from topo at build time
	hasMesh bool

	// baseRoute is the RouteFn installed while the network is fault
	// free: nil for mesh/cmesh (the routers' built-in XY computation)
	// and torusRoute for a torus. rebuildRoutes restores it when the
	// last network fault is repaired.
	//noc:derived immutable wiring, fixed at construction; rebuildRoutes reinstalls it
	baseRoute core.RouteFn

	// ports is the per-router port count. nbr and wrap are the link
	// tables pre-resolved at build time, indexed id*ports+p: nbr holds
	// the node reached through port p of node id (-1 when the port has
	// no link) and wrap marks torus dateline links. Baking them here
	// keeps the hot commit and routing paths free of per-flit
	// coordinate arithmetic.
	ports int     //noc:derived immutable link table, baked at build time
	nbr   []int32 //noc:derived immutable link table, baked at build time
	wrap  []bool  //noc:derived immutable link table, baked at build time

	routers []*core.Router
	nis     []*NI
	//noc:derived external input source, outside the snapshot scope by contract (drivers re-seed it)
	traffic Traffic
	//noc:derived observational only: saved and restored, but excluded from the canonical encoding because statistics never feed arbitration
	stats *stats.Collector
	cycle   sim.Cycle //noc:committed
	//noc:committed
	//noc:derived saved and restored, but excluded from the canonical encoding like the packet IDs it mints: bookkeeping identity, never behaviour
	nextID uint64

	// hooks run at the start of every cycle (fault injection, probes).
	//noc:derived immutable wiring, registered before stepping starts
	hooks []func(c sim.Cycle)

	// linkFlits counts flits sent per (router, output port), for
	// utilization analysis and the heatmap.
	//
	//noc:committed
	//noc:derived observational only: saved and restored, but excluded from the canonical encoding because utilization counts never feed arbitration
	linkFlits [][]uint64

	// obsNodes holds each node's pre-bound observability handle, all nil
	// when cfg.Router.Obs is nil (the default).
	//noc:derived immutable wiring, bound at construction; observational only
	obsNodes []*obs.NodeObs

	// Link latches, indexed by destination node: filled by the commit
	// phase, drained by the next cycle's compute phase. Each bucket has
	// exactly one writer per phase — the destination's compute worker
	// drains it, the destination's commit worker fills it — and each is
	// a fixed-capacity arena bucket (makeBuckets), so steady-state
	// appends never allocate.
	inFlits     [][]router.InFlit
	inCredits   [][]core.CreditIn
	inNICredits [][]router.Credit

	// Staged per-node outputs of the compute phase, consumed by the
	// commit phase. Each entry aliases the producing router's reusable
	// output buffer: valid from the end of the node's compute until
	// that router's next Tick.
	stagedFlits   [][]router.OutFlit //noc:derived per-cycle scratch, consumed by commit before the step boundary
	stagedCredits [][]router.Credit  //noc:derived per-cycle scratch, consumed by commit before the step boundary

	// Network-level fault state. linkDead is the explicit per-(node,
	// port) dead-link set (kept symmetric: both endpoints of a link are
	// marked); routerDead marks completely failed routers. routes is the
	// fault-aware routing table, nil while the network is fault-free —
	// routing is then the exact XY baseline.
	linkDead   [][]bool    //noc:committed
	routerDead []bool      //noc:committed
	//noc:committed
	//noc:derived recomputed on restore: rebuildRoutes reconstructs it from linkDead/routerDead, which the snapshot covers
	routes *routeTable

	// Per-(node, output port, downstream VC) wormhole link state.
	// midFlight marks a packet whose head crossed the link while it was
	// alive (such packets complete gracefully if the link then dies);
	// linkDrop marks a packet being discarded at a dead link, from its
	// dropped head until its tail. linkDropsActive counts the set
	// linkDrop bits: while any packet is mid-discard the link commit
	// must stay serial, because discarding synthesizes credits for
	// other nodes' latches.
	midFlight       [][][]bool //noc:committed
	linkDrop        [][][]bool //noc:committed
	//noc:committed
	//noc:derived excluded from the canonical encoding: it is the count of set linkDrop bits, which are encoded
	linkDropsActive int

	// End-to-end retransmission state: per-source sequence numbers,
	// retransmission buffers, and per-sink duplicate-suppression windows
	// keyed by source node. retxCfg is cfg.Retx with defaults resolved.
	seqNext   []uint64             //noc:committed
	retx      [][]retxEntry        //noc:committed
	delivered []map[int]*seqWindow //noc:committed
	//noc:derived immutable configuration, resolved from cfg.Retx at construction
	retxCfg RetxConfig

	// workers is the resolved parallel-phase shard count (>= 1); pool is
	// the persistent worker pool, started lazily on the first parallel
	// phase and released by Close.
	workers int       //noc:derived immutable execution-engine configuration, not simulated state
	pool    *stepPool //noc:derived execution-engine plumbing, not simulated state
}

// retxEntry is one unacknowledged packet in a source's retransmission
// buffer: everything needed to clone it, plus the timer state.
type retxEntry struct {
	seq       uint64
	dst       int
	class     flit.Class
	size      int
	createdAt sim.Cycle
	deadline  sim.Cycle
	interval  sim.Cycle
	retries   int
}

// seqWindow is a sink's duplicate-suppression state for one source: all
// sequence numbers below floor have been delivered, plus a sparse set of
// delivered numbers above it (compacted as the floor advances).
type seqWindow struct {
	floor uint64
	seen  map[uint64]bool
}

// stepPhase selects the work a pooled worker runs over its node shard.
type stepPhase int8

const (
	phaseCompute stepPhase = iota
	phaseCommitLinks
)

// stepJob is one phase dispatch to the worker pool.
type stepJob struct {
	phase stepPhase
	cycle sim.Cycle
}

// stepPool is the persistent worker pool for Step's parallel phases: one
// goroutine per shard, parked on a per-worker channel between phases.
// Channel send/receive orders each worker's reads after the previous
// phase's writes, and wg.Wait orders the next phase after every worker's
// writes, so phases never race.
type stepPool struct {
	start []chan stepJob
	wg    sync.WaitGroup
	once  sync.Once
}

// makeBuckets carves nodes zero-length, fixed-capacity buckets out of
// one contiguous arena. Steady-state appends stay allocation-free and
// the per-node latches sit densely in memory. The three-index slice pins
// each bucket's capacity at per elements: a burst beyond that
// reallocates the bucket out of the arena — still correct, just off the
// fast path — so per only needs to cover the per-cycle common case, not
// a hard worst case.
func makeBuckets[T any](nodes, per int) [][]T {
	arena := make([]T, nodes*per)
	b := make([][]T, nodes)
	for i := range b {
		b[i] = arena[i*per : i*per : (i+1)*per]
	}
	return b
}

// New builds a network. All routers share cfg.Router; traffic may be nil
// for manually-driven tests.
func New(cfg Config, traffic Traffic) (*Network, error) {
	if cfg.Width < 2 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: invalid %dx%d dimensions", cfg.Width, cfg.Height)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("noc: invalid Workers %d: want 0 (all cores), 1 (serial) or a positive shard count", cfg.Workers)
	}
	topo, err := topology.New(cfg.Topo, cfg.Width, cfg.Height, cfg.Conc)
	if err != nil {
		return nil, err
	}
	if topo.Kind() == "torus" {
		for cls := 0; cls < cfg.Router.Classes; cls++ {
			lo, hi := cfg.Router.ClassRange(cls)
			if hi-lo < numLayers {
				return nil, fmt.Errorf("noc: torus dateline routing needs >= %d VCs per message class (class %d has %d): raise VCs or lower Classes",
					numLayers, cls, hi-lo)
			}
		}
	}
	nodes := topo.Nodes()
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nodes {
		workers = nodes
	}
	ports := cfg.Router.Ports
	vcs := cfg.Router.VCs
	n := &Network{
		cfg:     cfg,
		topo:    topo,
		ports:   ports,
		traffic: traffic,
		stats:   stats.NewCollector(cfg.Warmup),
		workers: workers,
		retxCfg: cfg.Retx.withDefaults(),
	}
	switch t := topo.(type) {
	case topology.Mesh:
		n.mesh, n.hasMesh = t, true
	case topology.CMesh:
		n.mesh, n.hasMesh = t.Mesh, true
	}
	n.nbr = make([]int32, nodes*ports)
	n.wrap = make([]bool, nodes*ports)
	for id := 0; id < nodes; id++ {
		for p := 0; p < ports; p++ {
			i := id*ports + p
			n.nbr[i] = -1
			if p == int(topology.Local) {
				continue
			}
			if nb, ok := topo.Neighbor(id, topology.Port(p)); ok {
				n.nbr[i] = int32(nb)
			}
			n.wrap[i] = topo.Wrap(id, topology.Port(p))
		}
	}
	n.routers = make([]*core.Router, nodes)
	n.nis = make([]*NI, nodes)
	n.linkFlits = make([][]uint64, nodes)
	n.obsNodes = make([]*obs.NodeObs, nodes)
	// Latch bucket capacities cover the steady-state per-cycle maxima:
	// one flit per input port; per upstream link up to one credit per VC
	// plus the ejection and drop-synthesized credits; up to one local
	// credit per VC from the drain and crossbar stages each.
	n.inFlits = makeBuckets[router.InFlit](nodes, ports)
	n.inCredits = makeBuckets[core.CreditIn](nodes, (ports-1)*vcs+ports+2)
	n.inNICredits = makeBuckets[router.Credit](nodes, 2*vcs)
	n.stagedFlits = make([][]router.OutFlit, nodes)
	n.stagedCredits = make([][]router.Credit, nodes)
	n.linkDead = make([][]bool, nodes)
	n.routerDead = make([]bool, nodes)
	n.midFlight = make([][][]bool, nodes)
	n.linkDrop = make([][][]bool, nodes)
	n.seqNext = make([]uint64, nodes)
	n.retx = make([][]retxEntry, nodes)
	n.delivered = make([]map[int]*seqWindow, nodes)
	for i := range n.linkFlits {
		n.linkFlits[i] = make([]uint64, ports)
		n.linkDead[i] = make([]bool, ports)
		n.midFlight[i] = make([][]bool, ports)
		n.linkDrop[i] = make([][]bool, ports)
		for p := range n.midFlight[i] {
			n.midFlight[i][p] = make([]bool, vcs)
			n.linkDrop[i][p] = make([]bool, vcs)
		}
	}
	for id := 0; id < nodes; id++ {
		r, err := core.New(id, topo, cfg.Router)
		if err != nil {
			return nil, err
		}
		n.routers[id] = r
		n.obsNodes[id] = obs.BindNode(cfg.Router.Obs, id, ports)
		node := id
		n.nis[id] = newNI(id, r, n.obsNodes[id], func(p *flit.Packet, c sim.Cycle) {
			if n.retxCfg.Timeout > 0 {
				if n.isDuplicate(node, p) {
					n.stats.RecordDuplicate(p)
					if on := n.obsNodes[node]; on != nil {
						on.NIDupSuppressed(c, p.Src)
					}
					return
				}
				n.releaseRetx(p.Src, p.Seq)
			}
			n.stats.RecordEjection(p)
			if on := n.obsNodes[node]; on != nil {
				on.NIEject(c, p.Latency())
			}
			if n.traffic != nil {
				for _, rp := range n.traffic.OnEject(p, c) {
					n.offer(node, rp, c)
				}
			}
		})
	}
	if topo.Kind() == "torus" {
		n.baseRoute = n.torusRoute
		for _, r := range n.routers {
			r.SetRouteFn(n.baseRoute)
		}
	}
	// The window ring rolls from the serial pre-phase, keeping the bucket
	// index stable while compute-phase workers add samples.
	if o := cfg.Router.Obs; o != nil {
		if w := o.Windows; w != nil {
			n.AddHook(w.Roll)
		}
	}
	return n, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, traffic Traffic) *Network {
	n, err := New(cfg, traffic)
	if err != nil {
		panic(err)
	}
	return n
}

// Topo returns the network topology.
func (n *Network) Topo() topology.Topology { return n.topo }

// Mesh returns the network's mesh router graph: the topology itself for
// a mesh, the router grid for a cmesh. It panics for a torus — use Topo
// for topology-generic access.
func (n *Network) Mesh() topology.Mesh {
	if !n.hasMesh {
		panic(fmt.Sprintf("noc: Mesh() on a %s network: use Topo()", n.topo.Kind()))
	}
	return n.mesh
}

// Router returns the router at node id.
func (n *Network) Router(id int) *core.Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id int) *NI { return n.nis[id] }

// Stats returns the statistics collector.
func (n *Network) Stats() *stats.Collector { return n.stats }

// Now returns the current cycle.
func (n *Network) Now() sim.Cycle { return n.cycle }

// AddHook registers a function invoked at the start of every cycle, used
// by the fault injector and test probes.
func (n *Network) AddHook(h func(c sim.Cycle)) { n.hooks = append(n.hooks, h) }

// Obs returns the observer the network was configured with, or nil when
// observability is disabled. The fault injectors and the watchdog use it
// to report their events into the same registry and trace.
func (n *Network) Obs() *obs.Observer { return n.cfg.Router.Obs }

// neighbor returns the node reached from id through port p, or -1 when
// the port has no link, via the table pre-resolved at build time.
func (n *Network) neighbor(id int, p topology.Port) int {
	return int(n.nbr[id*n.ports+int(p)])
}

// wrapLink reports whether the link leaving id through p is a torus
// dateline link, via the table pre-resolved at build time.
func (n *Network) wrapLink(id int, p topology.Port) bool {
	return n.wrap[id*n.ports+int(p)]
}

// offer stamps and enqueues a packet at node. With network faults
// present, packets whose destination is unreachable (and every packet at
// a dead node) are dropped here, with the drop counted, instead of
// entering the network to hang. It allocates from the shared packet-ID
// and sequence counters, so it must only run in Step's serial phases.
//
//noc:commit-only
func (n *Network) offer(node int, p *flit.Packet, c sim.Cycle) {
	p.ID = n.nextID
	n.nextID++
	p.CreatedAt = c
	p.Src = node
	p.Seq = n.seqNext[node]
	n.seqNext[node]++
	n.stats.RecordCreation(p)
	if on := n.obsNodes[node]; on != nil {
		on.NIOffer(c, p.Dst)
	}
	if n.dropIfUnreachable(node, p, c) {
		return
	}
	n.trackRetx(node, p, c)
	n.nis[node].Offer(p)
}

// Inject offers a packet from src to the network immediately (for tests
// and trace-driven runs). Class and Size must be set; Src is overwritten.
func (n *Network) Inject(src int, p *flit.Packet) { n.offer(src, p, n.cycle) }

// Workers returns the resolved parallel-phase shard count (>= 1).
func (n *Network) Workers() int { return n.workers }

// Step advances the network one cycle as an explicit multi-phase tick:
//
//  1. Serial pre-phase: cycle hooks (fault injection, probes), the
//     retransmission-timer scan and traffic generation, all of which
//     touch shared state (router fault bits, packet IDs, the stats
//     collector) in node order.
//  2. Compute phase: every node delivers its latched link traffic,
//     ticks its NI and ticks its router, reading only last-cycle
//     state. Nodes are independent, so the phase shards over the
//     worker pool when Workers > 1.
//  3. Local commit: per-node effects that touch shared state — packet
//     ejections (statistics, closed-loop traffic replies), drops of
//     unreachable packets — applied serially in canonical node order.
//  4. Link commit: each destination node pulls the flits and credits
//     its neighbours staged for it into its inbound latches for
//     delivery next cycle. Every latch has a single writer, so in the
//     fault-free steady state this phase also shards over the pool;
//     with a network fault active it runs the same code serially.
//
// Because every phase runs the same code in the same order regardless of
// sharding, the simulation is bit-exact identical for every worker
// count.
func (n *Network) Step() {
	c := n.cycle

	for _, h := range n.hooks {
		h(c)
	}
	n.retxScan(c)
	if n.traffic != nil {
		for node := range n.nis {
			for _, p := range n.traffic.Offered(node, c) {
				n.offer(node, p, c)
			}
		}
	}

	if n.workers == 1 {
		for id := range n.routers {
			n.computeNode(id, c)
		}
	} else {
		n.runPhase(phaseCompute, c)
	}

	n.commit(c)
	if assertEnabled {
		n.assertPostStep()
	}
	n.cycle++
}

// runPhase dispatches one parallel phase to the worker pool and waits
// for every shard to finish.
func (n *Network) runPhase(phase stepPhase, c sim.Cycle) {
	if n.pool == nil {
		n.startPool()
	}
	n.pool.wg.Add(len(n.pool.start))
	for _, ch := range n.pool.start {
		ch <- stepJob{phase: phase, cycle: c}
	}
	n.pool.wg.Wait()
}

// computeNode advances node id through cycle c: deliver last cycle's
// latched flits and credits, tick the NI (which streams at most one flit
// into the router's local port) and tick the router. Everything touched
// here is either owned by node id or safe for concurrent use (obs
// counters are atomic, the tracer is locked), so computeNode runs
// concurrently for distinct nodes. The phasesafety analyzer (see
// internal/analysis) checks that nothing reachable from here calls a
// //noc:commit-only function or writes a //noc:committed field.
//
//noc:compute-phase
//noc:hot-path
func (n *Network) computeNode(id int, c sim.Cycle) {
	r := n.routers[id]
	for _, w := range n.inFlits[id] {
		r.AcceptFlit(w)
	}
	n.inFlits[id] = n.inFlits[id][:0]
	for _, cr := range n.inCredits[id] {
		r.AcceptCredit(cr)
	}
	n.inCredits[id] = n.inCredits[id][:0]
	for _, cr := range n.inNICredits[id] {
		n.nis[id].acceptCredit(cr)
	}
	n.inNICredits[id] = n.inNICredits[id][:0]

	n.nis[id].tick(c)
	r.Tick(c)

	n.stagedFlits[id] = r.TakeOutFlits()
	n.stagedCredits[id] = r.TakeOutCredits()
}

// commit applies the compute phase's staged outputs: first the serial
// local commit (ejections, drops, statistics — everything that touches
// shared state, in canonical node order), then the link commit. The link
// commit shards over the worker pool whenever no network fault can make
// a node write outside its own latches: any live routing table or
// in-progress packet discard forces the serial path, which runs the
// identical per-node code in the identical order.
//
//noc:commit-only
func (n *Network) commit(c sim.Cycle) {
	n.commitLocal(c)
	if n.workers > 1 && n.routes == nil && n.linkDropsActive == 0 {
		n.runPhase(phaseCommitLinks, c)
	} else {
		for id := range n.routers {
			n.commitLinksNode(id, c)
		}
	}
}

// commitLocal applies, serially in node order, every staged effect that
// touches shared state: packets the routing function declared
// unreachable, and flits arriving at their destination's local port —
// statistics, the ejection into the NI (which can re-enter the network
// through closed-loop traffic replies), and the ejection credit. It also
// validates that no router emitted traffic through a port with no link,
// the invariant the link commit's pull loops rely on to see every staged
// flit.
//
//noc:commit-only
func (n *Network) commitLocal(c sim.Cycle) {
	for id := range n.routers {
		for _, pkt := range n.routers[id].TakeDropped() {
			// Routing declared the destination unreachable; the router
			// drains the buffered flits itself.
			n.stats.RecordDrop(pkt)
			if on := n.obsNodes[id]; on != nil {
				on.DropUnreachable(c, pkt.Dst)
			}
		}
		for _, of := range n.stagedFlits[id] {
			if of.Out != localPort {
				if n.neighbor(id, of.Out) < 0 {
					panic(fmt.Sprintf("noc: router %d emitted flit through edge port %v", id, of.Out))
				}
				continue
			}
			n.linkFlits[id][of.Out]++
			if on := n.obsNodes[id]; on != nil {
				on.LinkFlit(int(of.Out), of.DownVC)
			}
			if n.routerDead[id] {
				// A dead node ejects nothing: the packet (necessarily
				// one already inside this router when it died) is
				// discarded, but the router's local output still gets
				// its ejection credit so the pipeline drains.
				if of.F.Kind.IsTail() {
					n.stats.RecordDrop(of.F.Pkt)
					if on := n.obsNodes[id]; on != nil {
						on.DropUnreachable(c, of.F.Pkt.Dst)
					}
				}
			} else {
				n.nis[id].consume(of.F, c)
			}
			// Ejection credit back to this router's local output.
			n.inCredits[id] = append(n.inCredits[id],
				core.CreditIn{Out: localPort, VC: of.DownVC, VCFree: of.F.Kind.IsTail()})
		}
		for _, cr := range n.stagedCredits[id] {
			if cr.In != localPort {
				if n.neighbor(id, cr.In) < 0 {
					panic(fmt.Sprintf("noc: router %d emitted credit through edge port %v", id, cr.In))
				}
				continue
			}
			n.inNICredits[id] = append(n.inNICredits[id], cr)
		}
	}
}

// commitLinksNode applies, for destination node u, every link transfer
// arriving at u this cycle: it pulls from each neighbour v's staged
// outputs the flits that left v toward u (updating v's per-link wormhole
// and utilization state) and the credits v returned to u. The link
// (v, port) feeding u is crossed by no other node's traffic, so distinct
// destination nodes touch disjoint state and the phase shards over the
// worker pool — except when a network fault is active, because the
// dead-link paths below synthesize credits into the sender's latch
// (dropAtLink), which may belong to another shard; commit detects that
// and runs this same code serially instead, keeping serial and parallel
// runs bit-exact by construction.
//
//noc:commit-only
//noc:hot-path
func (n *Network) commitLinksNode(u int, c sim.Cycle) {
	for p := topology.Port(1); int(p) < n.ports; p++ {
		v := n.neighbor(u, p)
		if v < 0 {
			continue
		}
		q := p.Opposite() // v's output port facing u
		mf := n.midFlight[v][q]
		ld := n.linkDrop[v][q]
		for _, of := range n.stagedFlits[v] {
			if of.Out != q {
				continue
			}
			dvc := of.DownVC
			if ld[dvc] {
				// Rest of a packet whose head was already discarded at
				// this link: keep dropping (even if the link was repaired
				// mid-packet — the neighbour never saw the head).
				n.dropAtLink(v, of, c)
				if of.F.Kind.IsTail() {
					ld[dvc] = false
					n.linkDropsActive--
				}
				continue
			}
			if n.deadLink(v, q) && !mf[dvc] {
				// The head meets a dead link: discard the whole packet.
				// (A packet whose head crossed while the link was alive —
				// midFlight — completes gracefully instead; the fault
				// takes effect at packet granularity.)
				if of.F.Kind.IsHead() {
					n.stats.RecordDrop(of.F.Pkt)
					if on := n.obsNodes[v]; on != nil {
						on.LinkDrop(c, int(q), of.F.Pkt.Dst)
					}
				}
				n.dropAtLink(v, of, c)
				if !of.F.Kind.IsTail() {
					ld[dvc] = true
					n.linkDropsActive++
				}
				continue
			}
			if of.F.Kind.IsHead() {
				mf[dvc] = true
			}
			if of.F.Kind.IsTail() {
				mf[dvc] = false
			}
			n.linkFlits[v][q]++
			if on := n.obsNodes[v]; on != nil {
				on.LinkFlit(int(q), dvc)
			}
			n.inFlits[u] = append(n.inFlits[u],
				router.InFlit{In: p, VC: dvc, F: of.F})
		}
		for _, cr := range n.stagedCredits[v] {
			if cr.In != q {
				continue
			}
			n.inCredits[u] = append(n.inCredits[u],
				core.CreditIn{Out: p, VC: cr.VC, VCFree: cr.VCFree})
		}
	}
}

// startPool spawns the persistent phase workers, each owning a fixed
// contiguous shard of nodes so every latch bucket has exactly one writer
// per phase. This is the only sanctioned goroutine spawn in simulation
// code (the determinism analyzer in internal/analysis flags any other).
//
//noc:worker-pool
func (n *Network) startPool() {
	p := &stepPool{start: make([]chan stepJob, n.workers)}
	nodes := len(n.routers)
	lo := 0
	for i := range p.start {
		hi := lo + nodes/n.workers
		if i < nodes%n.workers {
			hi++
		}
		ch := make(chan stepJob, 1)
		p.start[i] = ch
		go func(lo, hi int, ch chan stepJob) {
			for j := range ch {
				switch j.phase {
				case phaseCompute:
					for id := lo; id < hi; id++ {
						n.computeNode(id, j.cycle)
					}
				case phaseCommitLinks:
					for id := lo; id < hi; id++ {
						n.commitLinksNode(id, j.cycle)
					}
				}
				p.wg.Done()
			}
		}(lo, hi, ch)
		lo = hi
	}
	n.pool = p
}

// Close releases the phase worker pool. It is idempotent and safe on a
// serial network; the network itself remains usable — a subsequent Step
// simply restarts the pool. Long-lived drivers that build many parallel
// networks (sweeps, campaigns) should Close each one.
func (n *Network) Close() {
	if n.pool == nil {
		return
	}
	p := n.pool
	n.pool = nil
	p.once.Do(func() {
		for _, ch := range p.start {
			close(ch)
		}
	})
}

// Run advances the network cycles steps.
func (n *Network) Run(cycles sim.Cycle) {
	for i := sim.Cycle(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain keeps stepping (traffic generation continues) until every
// offered packet has been delivered or dropped — and, with
// retransmission enabled, no retransmission is still pending — or the
// cycle limit is reached. It returns true when the network drained.
func (n *Network) Drain(limit sim.Cycle) bool {
	for n.cycle < limit {
		if n.stats.InFlight() == 0 && n.pendingRetx() == 0 {
			return true
		}
		n.Step()
	}
	return n.stats.InFlight() == 0 && n.pendingRetx() == 0
}

// InjectionIdle reports whether every NI has drained its injection
// queues and finished streaming its active packets into the network.
// Once the traffic source stops offering, an idle injection side means
// flit segmentation — the one allocation left on the step path — is
// over; the perf harness and the zero-alloc regression test use it to
// find the steady-state measurement window.
func (n *Network) InjectionIdle() bool {
	for _, ni := range n.nis {
		if ni.QueuedPackets() > 0 || ni.Sending() {
			return false
		}
	}
	return true
}

// pendingRetx counts unacknowledged packets still tracked by some
// source's retransmission buffer.
func (n *Network) pendingRetx() int {
	if n.retxCfg.Timeout == 0 {
		return 0
	}
	total := 0
	for _, e := range n.retx {
		total += len(e)
	}
	return total
}

// TriggerFlightDump extracts the flight recorder's retained event
// window as a dump tagged with the current cycle, and reports whether a
// recorder is attached. It must run from a serial phase — a cycle hook,
// between steps, or the nocassert failure path — never concurrently
// with a parallel compute phase.
func (n *Network) TriggerFlightDump(reason string) (obs.Dump, bool) {
	o := n.cfg.Router.Obs
	if o == nil {
		return obs.Dump{}, false
	}
	f := o.Flight
	if f == nil {
		return obs.Dump{}, false
	}
	return f.Trigger(n.cycle, reason), true
}

// Functional reports whether every router in the network is functional.
func (n *Network) Functional() bool {
	for _, r := range n.routers {
		if !r.Functional() {
			return false
		}
	}
	return true
}
