// Package noc wires routers, links and network interfaces into a complete
// mesh network-on-chip and drives end-to-end simulations: traffic
// generation, fault-injection hooks and statistics collection.
//
// The cycle model matches GARNET's at the granularity the paper needs:
// routers have the 4-stage pipeline of Figure 2, inter-router links take
// one cycle in each direction (flits downstream, credits upstream), and
// each node's NI injects at most one flit per cycle.
//
// # Parallel stepping
//
// Step is an explicit two-phase tick. The compute phase advances every
// node — delivering the node's latched link traffic, ticking its NI and
// its router — reading only last-cycle state, so nodes are mutually
// independent and the phase shards over a persistent worker pool
// (Config.Workers). The commit phase then applies all cross-node effects
// — link transfers, credit returns, ejections, statistics — serially in
// canonical node order. Results are therefore bit-exact identical for
// any worker count: the same flit arrival cycles, the same statistics,
// and the same observability event multiset (see obs.SortEvents for the
// canonical event order used when comparing traces).
package noc

import (
	"fmt"
	"runtime"
	"sync"

	"gonoc/internal/core"
	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

const localPort = topology.Local

// Traffic is the workload driving a simulation. Implementations must be
// deterministic given their construction-time seed.
type Traffic interface {
	// Offered returns the packets node creates at cycle c (usually zero
	// or one). The network stamps CreatedAt.
	Offered(node int, c sim.Cycle) []*flit.Packet
	// OnEject is invoked when a packet is delivered; any returned packets
	// are offered at the delivery node (coherence-style replies). May be
	// a no-op for open-loop synthetic traffic.
	OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet
}

// Config configures a network.
type Config struct {
	// Width and Height are the mesh dimensions (the paper uses 8×8).
	Width, Height int
	// Router configures every router in the mesh.
	Router router.Config
	// Warmup is the statistics warmup window in cycles.
	Warmup sim.Cycle
	// Workers is the number of goroutines Step's compute phase is
	// sharded over: 0 selects runtime.GOMAXPROCS(0), 1 is the serial
	// path, and any value is clamped to the node count. Every worker
	// count produces bit-exact identical simulations; negative values
	// are rejected by New.
	Workers int
	// Retx configures the NIs' end-to-end retransmission layer; the
	// zero value disables it.
	Retx RetxConfig
}

// RetxConfig configures end-to-end packet retransmission at the network
// interfaces: sources keep a bounded buffer of unacknowledged packets
// and re-inject them on a cycle timeout with exponential backoff, and
// sinks suppress the duplicate deliveries this can create. Combined with
// fault-aware routing it delivers 100% of packets under any single link
// or router fault.
type RetxConfig struct {
	// Timeout is the initial retransmission timeout in cycles, counted
	// from the offer; 0 disables retransmission entirely. Set it above
	// the worst-case delivery latency of the configuration or duplicates
	// will be common (they are suppressed, but cost bandwidth).
	Timeout sim.Cycle
	// Backoff multiplies the timeout after every retransmission
	// (exponential backoff); values below 1 default to 2.
	Backoff int
	// MaxRetries bounds the retransmissions per packet; 0 defaults to 8.
	// A packet still undelivered after MaxRetries is abandoned (it has
	// already been recorded as dropped when its last copy died).
	MaxRetries int
	// Buffer bounds the retransmission entries tracked per source node;
	// 0 defaults to 32. Packets offered while the buffer is full are
	// sent without retransmission protection.
	Buffer int
}

// withDefaults resolves the zero-value knobs of an enabled config.
func (rc RetxConfig) withDefaults() RetxConfig {
	if rc.Timeout <= 0 {
		return RetxConfig{}
	}
	if rc.Backoff < 1 {
		rc.Backoff = 2
	}
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = 8
	}
	if rc.Buffer <= 0 {
		rc.Buffer = 32
	}
	return rc
}

// DefaultConfig returns the paper's evaluation configuration: an 8×8 mesh
// of protected 5×5 routers with 4 VCs.
func DefaultConfig() Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	return Config{Width: 8, Height: 8, Router: rc, Warmup: 1000}
}

// Network is a complete W×H mesh NoC.
type Network struct {
	cfg     Config
	mesh    topology.Mesh
	routers []*core.Router
	nis     []*NI
	traffic Traffic
	stats   *stats.Collector
	cycle   sim.Cycle //noc:committed
	nextID  uint64    //noc:committed

	// hooks run at the start of every cycle (fault injection, probes).
	hooks []func(c sim.Cycle)

	// linkFlits counts flits sent per (router, output port), for
	// utilization analysis and the heatmap.
	//
	//noc:committed
	linkFlits [][]uint64

	// obsNodes holds each node's pre-bound observability handle, all nil
	// when cfg.Router.Obs is nil (the default).
	obsNodes []*obs.NodeObs

	// Link latches, indexed by destination node: filled by the commit
	// phase in canonical node order, drained by the next cycle's compute
	// phase. Each bucket is touched by exactly one compute worker.
	inFlits     [][]router.InFlit
	inCredits   [][]core.CreditIn
	inNICredits [][]router.Credit

	// Staged per-node outputs of the compute phase, consumed by the
	// commit phase in node order.
	stagedFlits   [][]router.OutFlit
	stagedCredits [][]router.Credit

	// Network-level fault state. linkDead is the explicit per-(node,
	// port) dead-link set (kept symmetric: both endpoints of a link are
	// marked); routerDead marks completely failed routers. routes is the
	// fault-aware routing table, nil while the network is fault-free —
	// routing is then the exact XY baseline.
	linkDead   [][]bool    //noc:committed
	routerDead []bool      //noc:committed
	routes     *routeTable //noc:committed

	// Per-(node, output port, downstream VC) wormhole link state.
	// midFlight marks a packet whose head crossed the link while it was
	// alive (such packets complete gracefully if the link then dies);
	// linkDrop marks a packet being discarded at a dead link, from its
	// dropped head until its tail.
	midFlight [][][]bool //noc:committed
	linkDrop  [][][]bool //noc:committed

	// End-to-end retransmission state: per-source sequence numbers,
	// retransmission buffers, and per-sink duplicate-suppression windows
	// keyed by source node. retxCfg is cfg.Retx with defaults resolved.
	seqNext   []uint64             //noc:committed
	retx      [][]retxEntry        //noc:committed
	delivered []map[int]*seqWindow //noc:committed
	retxCfg   RetxConfig

	// workers is the resolved compute-phase shard count (>= 1); pool is
	// the persistent worker pool, started lazily on the first parallel
	// Step and released by Close.
	workers int
	pool    *stepPool
}

// retxEntry is one unacknowledged packet in a source's retransmission
// buffer: everything needed to clone it, plus the timer state.
type retxEntry struct {
	seq       uint64
	dst       int
	class     flit.Class
	size      int
	createdAt sim.Cycle
	deadline  sim.Cycle
	interval  sim.Cycle
	retries   int
}

// seqWindow is a sink's duplicate-suppression state for one source: all
// sequence numbers below floor have been delivered, plus a sparse set of
// delivered numbers above it (compacted as the floor advances).
type seqWindow struct {
	floor uint64
	seen  map[uint64]bool
}

// stepPool is the persistent compute-phase worker pool: one goroutine
// per shard, parked on a per-worker channel between cycles. Channel
// send/receive orders each worker's reads after the commit phase's
// writes, and wg.Wait orders the commit phase after every worker's
// writes, so the two phases never race.
type stepPool struct {
	start []chan sim.Cycle
	wg    sync.WaitGroup
	once  sync.Once
}

// New builds a network. All routers share cfg.Router; traffic may be nil
// for manually-driven tests.
func New(cfg Config, traffic Traffic) (*Network, error) {
	if cfg.Width < 2 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("noc: invalid Workers %d: want 0 (all cores), 1 (serial) or a positive shard count", cfg.Workers)
	}
	mesh := topology.NewMesh(cfg.Width, cfg.Height)
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > mesh.Nodes() {
		workers = mesh.Nodes()
	}
	n := &Network{
		cfg:     cfg,
		mesh:    mesh,
		traffic: traffic,
		stats:   stats.NewCollector(cfg.Warmup),
		workers: workers,
		retxCfg: cfg.Retx.withDefaults(),
	}
	n.routers = make([]*core.Router, mesh.Nodes())
	n.nis = make([]*NI, mesh.Nodes())
	n.linkFlits = make([][]uint64, mesh.Nodes())
	n.obsNodes = make([]*obs.NodeObs, mesh.Nodes())
	n.inFlits = make([][]router.InFlit, mesh.Nodes())
	n.inCredits = make([][]core.CreditIn, mesh.Nodes())
	n.inNICredits = make([][]router.Credit, mesh.Nodes())
	n.stagedFlits = make([][]router.OutFlit, mesh.Nodes())
	n.stagedCredits = make([][]router.Credit, mesh.Nodes())
	n.linkDead = make([][]bool, mesh.Nodes())
	n.routerDead = make([]bool, mesh.Nodes())
	n.midFlight = make([][][]bool, mesh.Nodes())
	n.linkDrop = make([][][]bool, mesh.Nodes())
	n.seqNext = make([]uint64, mesh.Nodes())
	n.retx = make([][]retxEntry, mesh.Nodes())
	n.delivered = make([]map[int]*seqWindow, mesh.Nodes())
	for i := range n.linkFlits {
		n.linkFlits[i] = make([]uint64, cfg.Router.Ports)
		n.linkDead[i] = make([]bool, cfg.Router.Ports)
		n.midFlight[i] = make([][]bool, cfg.Router.Ports)
		n.linkDrop[i] = make([][]bool, cfg.Router.Ports)
		for p := range n.midFlight[i] {
			n.midFlight[i][p] = make([]bool, cfg.Router.VCs)
			n.linkDrop[i][p] = make([]bool, cfg.Router.VCs)
		}
	}
	for id := 0; id < mesh.Nodes(); id++ {
		r, err := core.New(id, mesh, cfg.Router)
		if err != nil {
			return nil, err
		}
		n.routers[id] = r
		n.obsNodes[id] = obs.BindNode(cfg.Router.Obs, id, cfg.Router.Ports)
		node := id
		n.nis[id] = newNI(id, r, n.obsNodes[id], func(p *flit.Packet, c sim.Cycle) {
			if n.retxCfg.Timeout > 0 {
				if n.isDuplicate(node, p) {
					n.stats.RecordDuplicate(p)
					if on := n.obsNodes[node]; on != nil {
						on.NIDupSuppressed(c, p.Src)
					}
					return
				}
				n.releaseRetx(p.Src, p.Seq)
			}
			n.stats.RecordEjection(p)
			if on := n.obsNodes[node]; on != nil {
				on.NIEject(c, p.Latency())
			}
			if n.traffic != nil {
				for _, rp := range n.traffic.OnEject(p, c) {
					n.offer(node, rp, c)
				}
			}
		})
	}
	return n, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, traffic Traffic) *Network {
	n, err := New(cfg, traffic)
	if err != nil {
		panic(err)
	}
	return n
}

// Mesh returns the network topology.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// Router returns the router at node id.
func (n *Network) Router(id int) *core.Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id int) *NI { return n.nis[id] }

// Stats returns the statistics collector.
func (n *Network) Stats() *stats.Collector { return n.stats }

// Now returns the current cycle.
func (n *Network) Now() sim.Cycle { return n.cycle }

// AddHook registers a function invoked at the start of every cycle, used
// by the fault injector and test probes.
func (n *Network) AddHook(h func(c sim.Cycle)) { n.hooks = append(n.hooks, h) }

// Obs returns the observer the network was configured with, or nil when
// observability is disabled. The fault injectors and the watchdog use it
// to report their events into the same registry and trace.
func (n *Network) Obs() *obs.Observer { return n.cfg.Router.Obs }

// offer stamps and enqueues a packet at node. With network faults
// present, packets whose destination is unreachable (and every packet at
// a dead node) are dropped here, with the drop counted, instead of
// entering the network to hang. It allocates from the shared packet-ID
// and sequence counters, so it must only run in Step's serial phases.
//
//noc:commit-only
func (n *Network) offer(node int, p *flit.Packet, c sim.Cycle) {
	p.ID = n.nextID
	n.nextID++
	p.CreatedAt = c
	p.Src = node
	p.Seq = n.seqNext[node]
	n.seqNext[node]++
	n.stats.RecordCreation(p)
	if on := n.obsNodes[node]; on != nil {
		on.NIOffer(c, p.Dst)
	}
	if n.dropIfUnreachable(node, p, c) {
		return
	}
	n.trackRetx(node, p, c)
	n.nis[node].Offer(p)
}

// Inject offers a packet from src to the network immediately (for tests
// and trace-driven runs). Class and Size must be set; Src is overwritten.
func (n *Network) Inject(src int, p *flit.Packet) { n.offer(src, p, n.cycle) }

// Workers returns the resolved compute-phase shard count (>= 1).
func (n *Network) Workers() int { return n.workers }

// Step advances the network one cycle as an explicit two-phase tick:
//
//  1. Serial pre-phase: cycle hooks (fault injection, probes), the
//     retransmission-timer scan and traffic generation, all of which
//     touch shared state (router fault bits, packet IDs, the stats
//     collector) in node order.
//  2. Compute phase: every node delivers its latched link traffic,
//     ticks its NI and ticks its router, reading only last-cycle
//     state. Nodes are independent, so the phase shards over the
//     worker pool when Workers > 1.
//  3. Commit phase: staged router outputs are applied serially in
//     canonical node order — link flit counters, ejections (stats and
//     closed-loop traffic replies) and next cycle's per-node latches.
//
// Because the commit order is fixed and the compute phase is node-local,
// the simulation is bit-exact identical for every worker count.
func (n *Network) Step() {
	c := n.cycle

	for _, h := range n.hooks {
		h(c)
	}
	n.retxScan(c)
	if n.traffic != nil {
		for node := range n.nis {
			for _, p := range n.traffic.Offered(node, c) {
				n.offer(node, p, c)
			}
		}
	}

	if n.workers == 1 {
		for id := range n.routers {
			n.computeNode(id, c)
		}
	} else {
		if n.pool == nil {
			n.startPool()
		}
		n.pool.wg.Add(len(n.pool.start))
		for _, ch := range n.pool.start {
			ch <- c
		}
		n.pool.wg.Wait()
	}

	n.commit(c)
	if assertEnabled {
		n.assertPostStep()
	}
	n.cycle++
}

// computeNode advances node id through cycle c: deliver last cycle's
// latched flits and credits, tick the NI (which streams at most one flit
// into the router's local port) and tick the router. Everything touched
// here is either owned by node id or safe for concurrent use (obs
// counters are atomic, the tracer is locked), so computeNode runs
// concurrently for distinct nodes. The phasesafety analyzer (see
// internal/analysis) checks that nothing reachable from here calls a
// //noc:commit-only function or writes a //noc:committed field.
//
//noc:compute-phase
func (n *Network) computeNode(id int, c sim.Cycle) {
	r := n.routers[id]
	for _, w := range n.inFlits[id] {
		r.AcceptFlit(w)
	}
	n.inFlits[id] = n.inFlits[id][:0]
	for _, cr := range n.inCredits[id] {
		r.AcceptCredit(cr)
	}
	n.inCredits[id] = n.inCredits[id][:0]
	for _, cr := range n.inNICredits[id] {
		n.nis[id].acceptCredit(cr)
	}
	n.inNICredits[id] = n.inNICredits[id][:0]

	n.nis[id].tick(c)
	r.Tick(c)

	n.stagedFlits[id] = r.TakeOutFlits()
	n.stagedCredits[id] = r.TakeOutCredits()
}

// commit applies the compute phase's staged outputs in node order:
// counts link flits, consumes local ejections this cycle (statistics,
// closed-loop traffic replies), discards traffic meeting a dead link or
// router (crediting the sender so its flow control unwinds exactly) and
// latches everything crossing a live link into the destination node's
// inbound buckets for delivery next cycle.
//
//noc:commit-only
func (n *Network) commit(c sim.Cycle) {
	for id := range n.routers {
		for _, pkt := range n.routers[id].TakeDropped() {
			// Routing declared the destination unreachable; the router
			// drains the buffered flits itself.
			n.stats.RecordDrop(pkt)
			if on := n.obsNodes[id]; on != nil {
				on.DropUnreachable(c, pkt.Dst)
			}
		}
		for _, of := range n.stagedFlits[id] {
			if of.Out == localPort {
				n.linkFlits[id][of.Out]++
				if on := n.obsNodes[id]; on != nil {
					on.LinkFlit(int(of.Out))
				}
				if n.routerDead[id] {
					// A dead node ejects nothing: the packet (necessarily
					// one already inside this router when it died) is
					// discarded, but the router's local output still gets
					// its ejection credit so the pipeline drains.
					if of.F.Kind.IsTail() {
						n.stats.RecordDrop(of.F.Pkt)
						if on := n.obsNodes[id]; on != nil {
							on.DropUnreachable(c, of.F.Pkt.Dst)
						}
					}
				} else {
					n.nis[id].consume(of.F, c)
				}
				// Ejection credit back to this router's local output.
				n.inCredits[id] = append(n.inCredits[id],
					core.CreditIn{Out: localPort, VC: of.DownVC, VCFree: of.F.Kind.IsTail()})
				continue
			}
			nb, ok := n.mesh.Neighbor(id, of.Out)
			if !ok {
				panic(fmt.Sprintf("noc: router %d emitted flit through edge port %v", id, of.Out))
			}
			dvc := of.DownVC
			mf := n.midFlight[id][of.Out]
			ld := n.linkDrop[id][of.Out]
			if ld[dvc] {
				// Rest of a packet whose head was already discarded at
				// this link: keep dropping (even if the link was repaired
				// mid-packet — the neighbor never saw the head).
				n.dropAtLink(id, of, c)
				if of.F.Kind.IsTail() {
					ld[dvc] = false
				}
				continue
			}
			if n.deadLink(id, of.Out) && !mf[dvc] {
				// The head meets a dead link: discard the whole packet.
				// (A packet whose head crossed while the link was alive —
				// midFlight — completes gracefully instead; the fault
				// takes effect at packet granularity.)
				if of.F.Kind.IsHead() {
					n.stats.RecordDrop(of.F.Pkt)
					if on := n.obsNodes[id]; on != nil {
						on.LinkDrop(c, int(of.Out), of.F.Pkt.Dst)
					}
				}
				n.dropAtLink(id, of, c)
				if !of.F.Kind.IsTail() {
					ld[dvc] = true
				}
				continue
			}
			if of.F.Kind.IsHead() {
				mf[dvc] = true
			}
			if of.F.Kind.IsTail() {
				mf[dvc] = false
			}
			n.linkFlits[id][of.Out]++
			if on := n.obsNodes[id]; on != nil {
				on.LinkFlit(int(of.Out))
			}
			n.inFlits[nb] = append(n.inFlits[nb],
				router.InFlit{In: of.Out.Opposite(), VC: of.DownVC, F: of.F})
		}
		n.stagedFlits[id] = nil
		for _, cr := range n.stagedCredits[id] {
			if cr.In == localPort {
				n.inNICredits[id] = append(n.inNICredits[id], cr)
				continue
			}
			up, ok := n.mesh.Neighbor(id, cr.In)
			if !ok {
				panic(fmt.Sprintf("noc: router %d emitted credit through edge port %v", id, cr.In))
			}
			n.inCredits[up] = append(n.inCredits[up],
				core.CreditIn{Out: cr.In.Opposite(), VC: cr.VC, VCFree: cr.VCFree})
		}
		n.stagedCredits[id] = nil
	}
}

// startPool spawns the persistent compute workers, each owning a fixed
// contiguous shard of nodes so every bucket has exactly one writer.
// This is the only sanctioned goroutine spawn in simulation code (the
// determinism analyzer in internal/analysis flags any other).
//
//noc:worker-pool
func (n *Network) startPool() {
	p := &stepPool{start: make([]chan sim.Cycle, n.workers)}
	nodes := len(n.routers)
	lo := 0
	for i := range p.start {
		hi := lo + nodes/n.workers
		if i < nodes%n.workers {
			hi++
		}
		ch := make(chan sim.Cycle, 1)
		p.start[i] = ch
		go func(lo, hi int, ch chan sim.Cycle) {
			for c := range ch {
				for id := lo; id < hi; id++ {
					n.computeNode(id, c)
				}
				p.wg.Done()
			}
		}(lo, hi, ch)
		lo = hi
	}
	n.pool = p
}

// Close releases the compute worker pool. It is idempotent and safe on
// a serial network; the network itself remains usable — a subsequent
// Step simply restarts the pool. Long-lived drivers that build many
// parallel networks (sweeps, campaigns) should Close each one.
func (n *Network) Close() {
	if n.pool == nil {
		return
	}
	p := n.pool
	n.pool = nil
	p.once.Do(func() {
		for _, ch := range p.start {
			close(ch)
		}
	})
}

// Run advances the network cycles steps.
func (n *Network) Run(cycles sim.Cycle) {
	for i := sim.Cycle(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain keeps stepping (traffic generation continues) until every
// offered packet has been delivered or dropped — and, with
// retransmission enabled, no retransmission is still pending — or the
// cycle limit is reached. It returns true when the network drained.
func (n *Network) Drain(limit sim.Cycle) bool {
	for n.cycle < limit {
		if n.stats.InFlight() == 0 && n.pendingRetx() == 0 {
			return true
		}
		n.Step()
	}
	return n.stats.InFlight() == 0 && n.pendingRetx() == 0
}

// pendingRetx counts unacknowledged packets still tracked by some
// source's retransmission buffer.
func (n *Network) pendingRetx() int {
	if n.retxCfg.Timeout == 0 {
		return 0
	}
	total := 0
	for _, e := range n.retx {
		total += len(e)
	}
	return total
}

// Functional reports whether every router in the network is functional.
func (n *Network) Functional() bool {
	for _, r := range n.routers {
		if !r.Functional() {
			return false
		}
	}
	return true
}
