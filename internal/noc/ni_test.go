package noc

import (
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/sim"
)

// fakeRouter records flits the NI injects without simulating anything.
type fakeRouter struct {
	cfg router.Config
	got []router.InFlit
}

func (f *fakeRouter) AcceptFlit(in router.InFlit) { f.got = append(f.got, in) }
func (f *fakeRouter) Config() router.Config       { return f.cfg }

func newFakeRouter() *fakeRouter {
	cfg := router.DefaultConfig()
	cfg.Classes = 2
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &fakeRouter{cfg: cfg}
}

func TestNIAllocatesVCAndStreams(t *testing.T) {
	fr := newFakeRouter()
	ni := newNI(0, fr, nil, nil)
	p := &flit.Packet{Dst: 5, Class: flit.Request, Size: 3}
	ni.Offer(p)
	if ni.QueuedPackets() != 1 {
		t.Fatalf("queued = %d", ni.QueuedPackets())
	}
	for c := sim.Cycle(0); c < 3; c++ {
		ni.tick(c)
	}
	if len(fr.got) != 3 {
		t.Fatalf("router received %d flits, want 3", len(fr.got))
	}
	// All flits of the packet on the same request-class VC, in order.
	v := fr.got[0].VC
	if v >= 2 {
		t.Fatalf("request packet on VC %d (response class)", v)
	}
	for i, in := range fr.got {
		if in.VC != v || in.F.Seq != i {
			t.Fatalf("flit %d on VC %d seq %d", i, in.VC, in.F.Seq)
		}
	}
	if p.InjectedAt != 0 {
		t.Fatalf("InjectedAt = %d", p.InjectedAt)
	}
	if ni.Sending() {
		t.Fatal("still sending after last flit")
	}
}

func TestNIOneFlitPerCycle(t *testing.T) {
	fr := newFakeRouter()
	ni := newNI(0, fr, nil, nil)
	// Two packets in different classes: both get VCs immediately, but the
	// local link carries one flit per cycle.
	ni.Offer(&flit.Packet{Dst: 1, Class: flit.Request, Size: 2})
	ni.Offer(&flit.Packet{Dst: 2, Class: flit.Response, Size: 2})
	ni.tick(0)
	if len(fr.got) != 1 {
		t.Fatalf("%d flits in one cycle", len(fr.got))
	}
	for c := sim.Cycle(1); c < 4; c++ {
		ni.tick(c)
	}
	if len(fr.got) != 4 {
		t.Fatalf("total flits %d, want 4", len(fr.got))
	}
}

func TestNIRespectsCredits(t *testing.T) {
	fr := newFakeRouter()
	ni := newNI(0, fr, nil, nil)
	ni.Offer(&flit.Packet{Dst: 1, Class: flit.Request, Size: 6})
	for c := sim.Cycle(0); c < 10; c++ {
		ni.tick(c)
	}
	// Buffer depth 4: only 4 flits may be outstanding without credits.
	if len(fr.got) != 4 {
		t.Fatalf("sent %d flits without credits, want 4", len(fr.got))
	}
	ni.acceptCredit(router.Credit{In: localPort, VC: fr.got[0].VC})
	ni.tick(10)
	if len(fr.got) != 5 {
		t.Fatalf("sent %d flits after one credit, want 5", len(fr.got))
	}
}

func TestNIVCReuseAfterFree(t *testing.T) {
	fr := newFakeRouter()
	ni := newNI(0, fr, nil, nil)
	ni.Offer(&flit.Packet{Dst: 1, Class: flit.Request, Size: 1})
	ni.tick(0)
	v := fr.got[0].VC
	// Without a VCFree the same class's next packet uses the other VC.
	ni.Offer(&flit.Packet{Dst: 2, Class: flit.Request, Size: 1})
	ni.tick(1)
	if fr.got[1].VC == v {
		t.Fatalf("VC %d reused before VCFree", v)
	}
	// After VCFree (and credit return) the first VC is available again.
	ni.acceptCredit(router.Credit{In: localPort, VC: v, VCFree: true})
	ni.acceptCredit(router.Credit{In: localPort, VC: fr.got[1].VC, VCFree: true})
	ni.Offer(&flit.Packet{Dst: 3, Class: flit.Request, Size: 1})
	ni.tick(2)
	if fr.got[2].VC != v {
		t.Fatalf("freed VC %d not reused (got %d)", v, fr.got[2].VC)
	}
}

func TestNIEjectionCallback(t *testing.T) {
	fr := newFakeRouter()
	var done []*flit.Packet
	ni := newNI(3, fr, nil, func(p *flit.Packet, c sim.Cycle) { done = append(done, p) })
	p := &flit.Packet{Dst: 3, Size: 2}
	fs := flit.Segment(p)
	ni.consume(fs[0], 100)
	if len(done) != 0 {
		t.Fatal("callback before tail")
	}
	ni.consume(fs[1], 101)
	if len(done) != 1 || p.EjectedAt != 101 {
		t.Fatalf("ejection callback wrong: %d packets, EjectedAt=%d", len(done), p.EjectedAt)
	}
}

func TestNIWrongDestinationPanics(t *testing.T) {
	fr := newFakeRouter()
	ni := newNI(3, fr, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("misdelivered packet did not panic")
		}
	}()
	p := &flit.Packet{Dst: 9, Size: 1}
	ni.consume(flit.Segment(p)[0], 5)
}
