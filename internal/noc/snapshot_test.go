// Snapshot/restore round-trip suite: a restored network must replay
// bit-exactly — same canonical state trajectory, same statistics — and
// a snapshot must survive multiple restores unchanged. These are the
// properties the model-checking tier (internal/modelcheck) is built on.
package noc_test

import (
	"bytes"
	"fmt"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// trajectory records per-cycle canonical hashes plus the final summary
// over k further steps, without mutating semantics (stats are part of
// the snapshot so they rewind too).
func trajectory(n *noc.Network, k int) string {
	var b []byte
	for i := 0; i < k; i++ {
		b = fmt.Appendf(b, "%d:%016x\n", n.Now(), n.StateHash())
		n.Step()
	}
	b = fmt.Appendf(b, "final %016x\n%s", n.StateHash(), n.Stats().Summary())
	return string(b)
}

// TestSnapshotRestoreRoundTrip snapshots a loaded mid-drain network
// (traffic stopped, flits still in flight) and asserts the continuation
// replays identically after each of two restores.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo string
		conc int
	}{
		{name: "mesh", topo: ""},
		{name: "torus", topo: "torus"},
		{name: "cmesh", topo: "cmesh", conc: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rc := router.DefaultConfig()
			rc.FaultTolerant = true
			src := traffic.NewSynthetic(16, 0.1, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 11)
			src.StopAt(120)
			n := noc.MustNew(noc.Config{
				Width: 4, Height: 4, Topo: tc.topo, Conc: tc.conc,
				Router: rc, Retx: noc.RetxConfig{Timeout: 400, MaxRetries: 3},
			}, src)
			defer n.Close()
			n.Run(130) // traffic stopped; flits still in flight
			if n.Stats().InFlight() == 0 {
				t.Fatal("network drained before the snapshot; case exercises nothing")
			}

			snap := n.Snapshot()
			want := trajectory(n, 60)

			n.Restore(snap)
			if got := trajectory(n, 60); got != want {
				t.Errorf("first restore diverged:\n--- original ---\n%s--- restored ---\n%s", want, got)
			}
			n.Restore(snap)
			if got := trajectory(n, 60); got != want {
				t.Errorf("second restore diverged: snapshot was consumed by the first restore")
			}
		})
	}
}

// TestSnapshotRestoreUnderFaults snapshots a mesh with a dead link, a
// dead router, pending retransmissions and duplicate-suppression state,
// and asserts restore reproduces the continuation — including the
// fault-aware routing tables rebuilt from the restored fault sets.
func TestSnapshotRestoreUnderFaults(t *testing.T) {
	src := traffic.NewSynthetic(16, 0.08, traffic.Uniform(16), traffic.FixedSize(2), 23)
	src.StopAt(200)
	n := newFaultNet(t, 4, 4, noc.RetxConfig{Timeout: 120, MaxRetries: 4}, 1, src)
	defer n.Close()
	n.AddHook(func(c sim.Cycle) {
		if c == 50 {
			if err := n.SetLinkFault(5, topology.East, true); err != nil {
				t.Error(err)
			}
		}
		if c == 90 {
			if err := n.SetRouterFault(10, true); err != nil {
				t.Error(err)
			}
		}
	})
	n.Run(230)

	snap := n.Snapshot()
	want := trajectory(n, 200)
	n.Restore(snap)
	if got := trajectory(n, 200); got != want {
		t.Errorf("faulted restore diverged:\n--- original ---\n%s--- restored ---\n%s", want, got)
	}
}

// TestSnapshotIsolation asserts post-snapshot execution cannot corrupt
// the snapshot: the canonical encoding captured at snapshot time is
// reproduced exactly by restoring after the network has moved on.
func TestSnapshotIsolation(t *testing.T) {
	src := traffic.NewSynthetic(16, 0.1, traffic.Uniform(16), traffic.FixedSize(3), 5)
	src.StopAt(80)
	n := newFaultNet(t, 4, 4, noc.RetxConfig{}, 1, src)
	defer n.Close()
	n.Run(90)

	before := n.AppendCanonical(nil)
	snap := n.Snapshot()
	n.Run(100) // mutate flits, credits, arbiters in place
	n.Restore(snap)
	after := n.AppendCanonical(nil)
	if !bytes.Equal(before, after) {
		t.Error("canonical state after restore differs from the state at snapshot time")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Errorf("restored network violates invariants: %v", err)
	}
}

// TestSnapshotParallelWorkers asserts a snapshot taken from a serial
// network replays identically on a parallel-stepping one (the snapshot
// state is worker-count independent, like everything else in Step).
func TestSnapshotParallelWorkers(t *testing.T) {
	build := func(workers int) *noc.Network {
		src := traffic.NewSynthetic(16, 0.1, traffic.Uniform(16), traffic.FixedSize(2), 77)
		src.StopAt(100)
		return newFaultNet(t, 4, 4, noc.RetxConfig{}, workers, src)
	}
	serial := build(1)
	defer serial.Close()
	serial.Run(110)
	snap := serial.Snapshot()
	want := trajectory(serial, 80)

	par := build(8)
	defer par.Close()
	par.Run(110) // same seed: same state; then restore the serial snapshot
	par.Restore(snap)
	if got := trajectory(par, 80); got != want {
		t.Errorf("parallel continuation diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}
