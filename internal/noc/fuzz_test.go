package noc_test

import (
	"encoding/binary"
	"testing"

	"gonoc/internal/fault"
	"gonoc/internal/noc"
	"gonoc/internal/rng"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/traffic"
)

// FuzzNetworkInvariants drives a fault-tolerant mesh under a fuzzed
// combination of traffic seed, injection rate, worker count and random
// safe-only fault placement, and checks the credit-conservation
// invariant (CheckInvariants) at every boundary plus full delivery after
// drain. Faults that would kill a router are rolled back — the network
// stays functional by construction, so every offered packet must arrive
// no matter which sites are broken or how the step is sharded.
func FuzzNetworkInvariants(f *testing.F) {
	f.Add([]byte("determinism"))
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0x3c, 0x81, 0x02, 0x40, 0x09, 0x21, 0x5a, 0x03, 0x0b, 0x04})
	f.Add([]byte("parallel-step-faults"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			data = []byte{0}
		}
		b := func(i int) byte { return data[i%len(data)] }
		var seedBytes [8]byte
		for i := range seedBytes {
			seedBytes[i] = b(i)
		}
		seed := binary.LittleEndian.Uint64(seedBytes[:])
		workers := 1 + int(b(8))%4
		nFaults := int(b(9)) % 12
		rate := 0.01 + float64(b(10)%8)*0.01

		const cycles = 600
		rc := router.DefaultConfig()
		rc.FaultTolerant = true
		src := traffic.NewSynthetic(16, rate, traffic.Uniform(16), traffic.Bimodal(1, 4, 0.5), seed)
		src.StopAt(cycles)
		n, err := noc.New(noc.Config{Width: 4, Height: 4, Router: rc, Workers: workers}, src)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()

		sites := fault.SitesIn(rc, fault.UniverseAll)
		r := rng.New(seed ^ 0x9e3779b97f4a7c15)
		for i := 0; i < nFaults; i++ {
			rt := n.Router(r.Intn(16))
			s := sites[r.Intn(len(sites))]
			fault.Apply(rt, s, true)
			if !rt.Functional() {
				fault.Apply(rt, s, false) // keep the network deliverable
			}
		}

		for c := 0; c < cycles; c += 50 {
			n.Run(50)
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d (workers=%d, faults=%d): %v", c+50, workers, nFaults, err)
			}
		}
		if !n.Drain(sim.Cycle(cycles + 20000)) {
			t.Fatalf("workers=%d faults=%d rate=%.2f: did not drain, %d in flight",
				workers, nFaults, rate, n.Stats().InFlight())
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("after drain: %v", err)
		}
		if got, want := n.Stats().Ejected(), n.Stats().Created(); got != want {
			t.Fatalf("delivered %d of %d packets", got, want)
		}
	})
}
