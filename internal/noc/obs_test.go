package noc

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// obsCfg returns a 4×4 protected-mesh config with observability enabled.
func obsCfg(o *obs.Observer) Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	return Config{Width: 4, Height: 4, Router: rc}
}

// TestObsCountersMatchRouterCounters cross-checks the obs registry
// against the router's own mechanism tally: the two are maintained at
// the same instrumentation sites, so any divergence means a counter was
// bound to the wrong key.
func TestObsCountersMatchRouterCounters(t *testing.T) {
	o := obs.New(1 << 14)
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 9)
	n := MustNew(obsCfg(o), src)

	// An SA1 fault engages the bypass path (and transfers); a VA1 fault
	// engages arbiter borrowing; an XB fault engages the secondary path.
	rt := n.Router(5)
	rt.SetSA1Fault(topology.East, true)
	rt.SetVA1Fault(topology.North, 0, true)
	rt.SetXBFault(topology.West, true)
	n.Run(4000)

	var wantBypass, wantBorrow, wantSecondary, wantFlits uint64
	for id := 0; id < 16; id++ {
		c := n.Router(id).Counters
		wantBypass += c.SABypassGrants
		wantBorrow += c.VA1Borrows
		wantSecondary += c.XBSecondary
		wantFlits += c.FlitsRouted
	}
	if wantBypass == 0 || wantBorrow == 0 || wantSecondary == 0 {
		t.Fatalf("fault mechanisms not engaged: bypass=%d borrow=%d secondary=%d",
			wantBypass, wantBorrow, wantSecondary)
	}

	sum := func(k obs.Kind) uint64 {
		var s uint64
		for _, r := range o.Metrics.PerRouter() {
			s += r.Total[k]
		}
		return s
	}
	checks := []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.KSABypassGrants, wantBypass},
		{obs.KVA1Borrows, wantBorrow},
		{obs.KXBSecondary, wantSecondary},
		{obs.KFlitsRouted, wantFlits},
	}
	for _, c := range checks {
		if got := sum(c.kind); got != c.want {
			t.Errorf("%v = %d, want %d (router tally)", c.kind, got, c.want)
		}
	}

	// NI accounting must match the stats collector.
	if got, want := sum(obs.KNIPacketsOffered), n.Stats().Created(); got != want {
		t.Errorf("ni.packets_offered = %d, want %d", got, want)
	}
	if got, want := sum(obs.KNIPacketsEjected), n.Stats().Ejected(); got != want {
		t.Errorf("ni.packets_ejected = %d, want %d", got, want)
	}

	// Link counters must match the network's own per-link tally.
	var wantLink uint64
	for id := 0; id < 16; id++ {
		wantLink += n.RouterFlits(id)
	}
	if got := sum(obs.KLinkFlits); got != wantLink {
		t.Errorf("link.flits = %d, want %d", got, wantLink)
	}
}

// TestObsTraceCapturesFaultMechanisms runs a faulty mesh and checks the
// Chrome trace contains the borrow/bypass events the paper's analysis
// reasons about.
func TestObsTraceCapturesFaultMechanisms(t *testing.T) {
	o := obs.New(1 << 15)
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 11)
	n := MustNew(obsCfg(o), src)
	n.Router(5).SetSA1Fault(topology.East, true)
	n.Router(5).SetVA1Fault(topology.North, 0, true)
	n.Run(3000)

	var buf bytes.Buffer
	if err := o.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Pid  int32  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	found := map[string]bool{}
	for _, e := range doc.TraceEvents {
		found[e.Name] = true
	}
	for _, want := range []string{"SA bypass", "VA borrow", "XB traverse", "NI eject"} {
		if !found[want] {
			t.Errorf("trace missing %q events (got %v)", want, keys(found))
		}
	}
}

// TestObsDisabledNetworkRuns is the no-op guard at network level: a nil
// Obs must simulate identically and leave no handles bound.
func TestObsDisabledNetworkRuns(t *testing.T) {
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 9)
	n := MustNew(obsCfg(nil), src)
	n.Run(1000)
	if n.Obs() != nil {
		t.Fatal("Obs() should be nil when disabled")
	}
	if n.Stats().Ejected() == 0 {
		t.Fatal("disabled-obs network delivered nothing")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	//nocvet:ignore determinism collected keys are sorted before use
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
