package noc

import (
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// Network-level faults (dead links and dead routers) and the end-to-end
// retransmission layer that recovers from them. All the state mutated
// here lives in the serial phases of Step (hooks, offer, commit), so
// recovery is bit-exact for every Workers setting.

// SetLinkFault kills (value true) or repairs (value false) the
// inter-router link leaving router id through port p. A dead link is
// bidirectional — the fault is mirrored on the neighbor's facing port —
// and takes effect at packet granularity: a head flit meeting the dead
// link is discarded (with the rest of its packet), while a packet whose
// head already crossed completes gracefully. The sender's flow control
// is unwound locally for discarded flits, so no VC or credit leaks.
// Routing tables are rebuilt immediately; call this from a cycle hook
// (or before the run) so the change lands in a serial phase.
func (n *Network) SetLinkFault(id int, p topology.Port, value bool) error {
	w, h := n.topo.Dims()
	if id < 0 || id >= n.topo.Nodes() {
		return fmt.Errorf("noc: router %d outside %dx%d %s", id, w, h, n.topo.Kind())
	}
	if p < topology.North || p > topology.West {
		return fmt.Errorf("noc: link fault port must be a network direction, got %v", p)
	}
	nb := n.neighbor(id, p)
	if nb < 0 {
		return fmt.Errorf("noc: router %d has no %v link in a %dx%d %s", id, p, w, h, n.topo.Kind())
	}
	n.linkDead[id][p] = value
	n.linkDead[nb][p.Opposite()] = value
	return n.rebuildRoutes()
}

// SetRouterFault kills (value true) or repairs (value false) router id
// entirely: all of its network links behave dead in both directions,
// its NI neither injects nor ejects, and no route transits it.
func (n *Network) SetRouterFault(id int, value bool) error {
	w, h := n.topo.Dims()
	if id < 0 || id >= n.topo.Nodes() {
		return fmt.Errorf("noc: router %d outside %dx%d %s", id, w, h, n.topo.Kind())
	}
	n.routerDead[id] = value
	return n.rebuildRoutes()
}

// LinkFaulty reports whether the link leaving router id through port p
// is dead — explicitly, or because either endpoint router is dead.
func (n *Network) LinkFaulty(id int, p topology.Port) bool {
	if n.linkDead[id][p] || n.routerDead[id] {
		return true
	}
	nb := n.neighbor(id, p)
	return nb >= 0 && n.routerDead[nb]
}

// RouterFaulty reports whether router id is marked dead.
func (n *Network) RouterFaulty(id int) bool { return n.routerDead[id] }

// Reachable reports whether a packet injected at src can currently reach
// dst. With no network faults every (src, dst) pair is reachable.
func (n *Network) Reachable(src, dst int) bool {
	if n.routes == nil {
		return true
	}
	if n.routerDead[src] || n.routerDead[dst] {
		return src == dst && !n.routerDead[src]
	}
	return src == dst || n.routes.reachable(src, dst)
}

// anyNetworkFault reports whether any link or router fault is set.
func (n *Network) anyNetworkFault() bool {
	for _, d := range n.routerDead {
		if d {
			return true
		}
	}
	for _, row := range n.linkDead {
		for _, d := range row {
			if d {
				return true
			}
		}
	}
	return false
}

// rebuildRoutes recomputes the fault-aware routing tables after a fault
// change. With no network faults the tables are dropped and every router
// reverts to its baseline route computation (built-in XY on a mesh or
// cmesh, the dateline torusRoute on a torus), keeping the fault-free
// simulation bit-identical to the pre-fault-model baseline.
func (n *Network) rebuildRoutes() error {
	if !n.anyNetworkFault() {
		n.routes = nil
		for _, r := range n.routers {
			r.SetRouteFn(n.baseRoute)
		}
		return nil
	}
	for cls := 0; cls < n.cfg.Router.Classes; cls++ {
		lo, hi := n.cfg.Router.ClassRange(cls)
		if hi-lo < numLayers {
			return fmt.Errorf("noc: fault-aware routing needs >= %d VCs per message class (class %d has %d): raise VCs or lower Classes",
				numLayers, cls, hi-lo)
		}
	}
	n.routes = buildRoutes(n.topo, n.linkDead, n.routerDead)
	for _, r := range n.routers {
		r.SetRouteFn(n.routeFor)
	}
	return nil
}

// routeFor is the core.RouteFn installed on every router while network
// faults are present: a table lookup keyed by (node, input port, layer),
// returning the output port and the downstream VC layer range.
func (n *Network) routeFor(cur int, in topology.Port, vcIdx int, dst int) (topology.Port, int, int, bool) {
	cfg := n.cfg.Router
	lo, hi := cfg.ClassRange(cfg.ClassOf(vcIdx))
	if cur == dst {
		return topology.Local, lo, hi, true
	}
	t := n.routes
	if t == nil {
		// Raced with a repair in a hook; cannot happen mid-phase, but
		// fall back to the baseline route rather than panic.
		return n.topo.Route(cur, dst), lo, hi, true
	}
	half := (hi - lo) / numLayers
	layer := 0
	if in != topology.Local && vcIdx >= lo+half {
		layer = 1
	}
	e := t.lookup(dst, cur, in, layer)
	if e.out < 0 {
		return topology.Local, 0, 0, false
	}
	if e.layer == 0 {
		return topology.Port(e.out), lo, lo + half, true
	}
	return topology.Port(e.out), lo + half, hi, true
}

// deadLink reports whether the link leaving id through out carries
// nothing this cycle. The routes-nil fast path keeps the fault-free
// commit loop at one pointer test per flit.
func (n *Network) deadLink(id int, out topology.Port) bool {
	if n.routes == nil {
		return false
	}
	return n.LinkFaulty(id, out)
}

// dropAtLink discards one flit at a dead link, synthesizing the upstream
// credit the neighbor would have returned so the sender's flow control
// (and the network-wide credit-conservation invariant) stays exact.
//
//noc:commit-only
func (n *Network) dropAtLink(id int, of router.OutFlit, _ sim.Cycle) {
	n.inCredits[id] = append(n.inCredits[id],
		core.CreditIn{Out: of.Out, VC: of.DownVC, VCFree: of.F.Kind.IsTail()})
}

// dropIfUnreachable drops a freshly offered packet whose destination no
// surviving path reaches (or whose source node is dead), recording the
// drop, and reports whether it did.
//
//noc:commit-only
func (n *Network) dropIfUnreachable(node int, p *flit.Packet, c sim.Cycle) bool {
	if n.routes == nil {
		return false
	}
	if node != p.Dst && !n.routerDead[node] && !n.routerDead[p.Dst] && n.routes.reachable(node, p.Dst) {
		return false
	}
	if node == p.Dst && !n.routerDead[node] {
		return false // self-delivery at a live node always works
	}
	n.stats.RecordDrop(p)
	if on := n.obsNodes[node]; on != nil {
		on.DropUnreachable(c, p.Dst)
	}
	return true
}

// trackRetx records a freshly offered packet in its source's
// retransmission buffer, if retransmission is enabled and the buffer has
// room (packets offered past the bound travel unprotected).
//
//noc:commit-only
func (n *Network) trackRetx(node int, p *flit.Packet, c sim.Cycle) {
	if n.retxCfg.Timeout == 0 || len(n.retx[node]) >= n.retxCfg.Buffer {
		return
	}
	n.retx[node] = append(n.retx[node], retxEntry{
		seq: p.Seq, dst: p.Dst, class: p.Class, size: p.Size,
		createdAt: c,
		deadline:  c + n.retxCfg.Timeout,
		interval:  n.retxCfg.Timeout,
	})
}

// retxScan fires expired retransmission timers. It runs in Step's serial
// pre-phase in canonical node order, so retransmissions are bit-exact at
// every Workers setting.
//
//noc:commit-only
func (n *Network) retxScan(c sim.Cycle) {
	if n.retxCfg.Timeout == 0 {
		return
	}
	for node := range n.retx {
		entries := n.retx[node]
		if len(entries) == 0 {
			continue
		}
		kept := entries[:0]
		for _, e := range entries {
			if c < e.deadline {
				kept = append(kept, e)
				continue
			}
			if e.retries >= n.retxCfg.MaxRetries {
				// Abandon: every copy was already recorded as dropped
				// when it died, so accounting stays balanced.
				continue
			}
			e.retries++
			e.interval *= sim.Cycle(n.retxCfg.Backoff)
			e.deadline = c + e.interval
			n.retransmit(node, e, c)
			kept = append(kept, e)
		}
		n.retx[node] = kept
	}
}

// retransmit clones and re-offers an unacknowledged packet. The clone
// keeps the original's sequence number (for duplicate suppression and
// release) and CreatedAt stamp (so measured latency includes the loss),
// under a fresh packet ID.
//
//noc:commit-only
func (n *Network) retransmit(node int, e retxEntry, c sim.Cycle) {
	p := &flit.Packet{
		ID: n.nextID, Src: node, Dst: e.dst, Class: e.class, Size: e.size,
		CreatedAt: e.createdAt, Seq: e.seq,
	}
	n.nextID++
	n.stats.RecordCreation(p)
	n.stats.RecordRetransmit(p)
	if on := n.obsNodes[node]; on != nil {
		on.NIRetransmit(c, e.dst, e.retries)
	}
	if n.dropIfUnreachable(node, p, c) {
		return
	}
	n.nis[node].Offer(p)
}

// releaseRetx removes the retransmission entry for (src, seq) after the
// sink saw its first delivery.
//
//noc:commit-only
func (n *Network) releaseRetx(src int, seq uint64) {
	entries := n.retx[src]
	for i := range entries {
		if entries[i].seq == seq {
			n.retx[src] = append(entries[:i], entries[i+1:]...)
			return
		}
	}
}

// isDuplicate reports whether the sink at node has already delivered the
// packet (same source, same sequence number), marking it delivered
// otherwise. The per-source window compacts as its floor advances, so
// memory tracks only out-of-order deliveries.
//
//noc:commit-only
func (n *Network) isDuplicate(node int, p *flit.Packet) bool {
	m := n.delivered[node]
	if m == nil {
		m = make(map[int]*seqWindow)
		n.delivered[node] = m
	}
	w := m[p.Src]
	if w == nil {
		w = &seqWindow{seen: make(map[uint64]bool)}
		m[p.Src] = w
	}
	if p.Seq < w.floor || w.seen[p.Seq] {
		return true
	}
	w.seen[p.Seq] = true
	for w.seen[w.floor] {
		delete(w.seen, w.floor)
		w.floor++
	}
	return false
}
