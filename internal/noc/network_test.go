package noc

import (
	"strings"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func testCfg(w, h int, ft bool) Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = ft
	rc.Classes = 1
	return Config{Width: w, Height: h, Router: rc, Warmup: 0}
}

func TestSinglePacketLatency(t *testing.T) {
	n := MustNew(testCfg(8, 8, true), nil)
	p := &flit.Packet{Dst: 63, Size: 1}
	n.Inject(0, p)
	if !n.Drain(500) {
		t.Fatal("packet not delivered")
	}
	// 14 hops: 3 cycles in the first router's pipeline after injection,
	// then 4 per additional hop (pipeline + link).
	hops := n.Mesh().HopsXY(0, 63)
	want := sim.Cycle(3 + 4*hops)
	if p.Latency() != want {
		t.Errorf("latency = %d, want %d", p.Latency(), want)
	}
	if n.Stats().Ejected() != 1 {
		t.Errorf("ejected = %d", n.Stats().Ejected())
	}
}

func TestMultiFlitPacketAcrossMesh(t *testing.T) {
	n := MustNew(testCfg(4, 4, true), nil)
	p := &flit.Packet{Dst: 15, Size: 5}
	n.Inject(0, p)
	if !n.Drain(500) {
		t.Fatal("packet not delivered")
	}
	// Tail trails the head by 4 flit-cycles.
	hops := n.Mesh().HopsXY(0, 15)
	want := sim.Cycle(3+4*hops) + 4
	if p.Latency() != want {
		t.Errorf("latency = %d, want %d", p.Latency(), want)
	}
}

func TestAllPacketsDeliveredUniform(t *testing.T) {
	cfg := testCfg(4, 4, true)
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 11)
	src.StopAt(2000)
	n := MustNew(cfg, src)
	n.Run(2000)
	if !n.Drain(5000) {
		t.Fatalf("network did not drain: %d in flight", n.Stats().InFlight())
	}
	if n.Stats().Created() == 0 {
		t.Fatal("no packets created")
	}
	if n.Stats().Created() != n.Stats().Ejected() {
		t.Fatalf("created %d != ejected %d", n.Stats().Created(), n.Stats().Ejected())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		src := traffic.NewSynthetic(16, 0.08, traffic.Uniform(16), traffic.FixedSize(3), 99)
		n := MustNew(testCfg(4, 4, true), src)
		n.Run(3000)
		return n.Stats().Ejected(), n.Stats().AvgLatency()
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d, %v) vs (%d, %v)", e1, l1, e2, l2)
	}
	if e1 == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestProtectedFaultFreeMatchesBaselineNetwork(t *testing.T) {
	run := func(ft bool) (uint64, float64) {
		src := traffic.NewSynthetic(16, 0.06, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 123)
		n := MustNew(testCfg(4, 4, ft), src)
		n.Run(4000)
		return n.Stats().Ejected(), n.Stats().AvgLatency()
	}
	eb, lb := run(false)
	ef, lf := run(true)
	if eb != ef || lb != lf {
		t.Fatalf("fault-free protected differs from baseline: (%d, %v) vs (%d, %v)", eb, lb, ef, lf)
	}
}

func TestTwoClassRequestReply(t *testing.T) {
	// Closed-loop: every request spawns a response at the destination.
	cfg := testCfg(4, 4, true)
	cfg.Router.Classes = 2
	src := newReqReply(16, 0.03, 77)
	src.stopAt = 1500
	n := MustNew(cfg, src)
	n.Run(1500)
	if !n.Drain(6000) {
		t.Fatalf("did not drain: %d in flight", n.Stats().InFlight())
	}
	st := n.Stats()
	if st.Ejected() != st.Created() {
		t.Fatalf("created %d != ejected %d", st.Created(), st.Ejected())
	}
	if src.requests == 0 || src.replies == 0 {
		t.Fatal("no closed-loop traffic")
	}
	if src.requests != src.replies {
		t.Fatalf("requests %d != replies %d after drain", src.requests, src.replies)
	}
}

// reqReply is a minimal coherence-style closed-loop workload for tests.
type reqReply struct {
	gen      *traffic.Synthetic
	stopAt   sim.Cycle
	requests uint64
	replies  uint64
}

func newReqReply(nodes int, rate float64, seed uint64) *reqReply {
	g := traffic.NewSynthetic(nodes, rate, traffic.Uniform(nodes), traffic.FixedSize(1), seed)
	return &reqReply{gen: g}
}

func (rr *reqReply) Offered(node int, c sim.Cycle) []*flit.Packet {
	if rr.stopAt != 0 && c >= rr.stopAt {
		return nil
	}
	ps := rr.gen.Offered(node, c)
	rr.requests += uint64(len(ps))
	return ps
}

func (rr *reqReply) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	if p.Class != flit.Request {
		return nil
	}
	rr.replies++
	return []*flit.Packet{{Dst: p.Src, Class: flit.Response, Size: 5}}
}

func TestHighLoadNoDeadlock(t *testing.T) {
	// Near-saturation uniform traffic must keep making progress.
	src := traffic.NewSynthetic(16, 0.35, traffic.Uniform(16), traffic.FixedSize(4), 5)
	n := MustNew(testCfg(4, 4, true), src)
	n.Run(2000)
	half := n.Stats().Ejected()
	n.Run(2000)
	if n.Stats().Ejected() <= half {
		t.Fatalf("no progress in second half: %d then %d", half, n.Stats().Ejected())
	}
}

func TestFaultedNetworkStillDelivers(t *testing.T) {
	// One tolerable fault per stage, spread across routers on the main
	// diagonal: everything must still arrive (at somewhat higher latency).
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 31)
	src.StopAt(3000)
	n := MustNew(testCfg(4, 4, true), src)
	n.Router(0).SetRCFault(topology.Local, 0, true)
	n.Router(5).SetVA1Fault(topology.West, 0, true)
	n.Router(10).SetSA1Fault(topology.East, true)
	n.Router(15).SetXBFault(topology.Local, true)
	n.Router(5).SetXBFault(topology.East, true)
	n.Router(10).SetVA2Fault(topology.North, 1, true)
	if !n.Functional() {
		t.Fatal("network should remain functional with tolerable faults")
	}
	n.Run(3000)
	if !n.Drain(10000) {
		t.Fatalf("faulted network did not drain: %d in flight", n.Stats().InFlight())
	}
	if n.Stats().Created() != n.Stats().Ejected() {
		t.Fatalf("lost packets: created %d, ejected %d", n.Stats().Created(), n.Stats().Ejected())
	}
}

func TestFaultyNetworkHigherLatency(t *testing.T) {
	// The same workload through a heavily faulted (but functional)
	// network must show higher average latency than fault-free.
	run := func(faulty bool) float64 {
		src := traffic.NewSynthetic(16, 0.10, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 63)
		n := MustNew(testCfg(4, 4, true), src)
		if faulty {
			for id := 0; id < 16; id++ {
				r := n.Router(id)
				r.SetSA1Fault(topology.East, true)
				r.SetXBFault(topology.West, true)
				r.SetVA1Fault(topology.North, 0, true)
			}
		}
		n.Run(6000)
		return n.Stats().AvgLatency()
	}
	clean, faulted := run(false), run(true)
	if clean == 0 || faulted <= clean {
		t.Fatalf("faulted latency %v not above clean latency %v", faulted, clean)
	}
}

func TestHooksRun(t *testing.T) {
	n := MustNew(testCfg(2, 2, true), nil)
	var seen []sim.Cycle
	n.AddHook(func(c sim.Cycle) { seen = append(seen, c) })
	n.Run(3)
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("hook cycles: %v", seen)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{Width: 1, Height: 0}, nil); err == nil {
		t.Fatal("invalid mesh accepted")
	}
	bad := testCfg(2, 2, true)
	bad.Router.VCs = 3
	bad.Router.Classes = 2
	if _, err := New(bad, nil); err == nil {
		t.Fatal("invalid router config accepted")
	}
}

func TestLinkFlitsAndHeatmap(t *testing.T) {
	n := MustNew(testCfg(4, 4, true), nil)
	// A 3-flit packet from node 0 to node 3 crosses routers 0,1,2,3 East.
	n.Inject(0, &flit.Packet{Dst: 3, Size: 3})
	if !n.Drain(200) {
		t.Fatal("packet not delivered")
	}
	for _, id := range []int{0, 1, 2} {
		if got := n.LinkFlits(id, topology.East); got != 3 {
			t.Errorf("router %d East link carried %d flits, want 3", id, got)
		}
	}
	if got := n.LinkFlits(3, topology.Local); got != 3 {
		t.Errorf("ejection link carried %d flits, want 3", got)
	}
	if n.RouterFlits(1) != 3 || n.RouterFlits(15) != 0 {
		t.Errorf("RouterFlits: r1=%d r15=%d", n.RouterFlits(1), n.RouterFlits(15))
	}
	hm := n.Heatmap()
	if !strings.Contains(hm, "9") {
		t.Errorf("heatmap missing hot cell:\n%s", hm)
	}
	// Mark a router dead: heatmap shows X.
	n.Router(15).SetRCFault(topology.Local, 0, true)
	n.Router(15).SetRCFault(topology.Local, 1, true)
	if !strings.Contains(n.Heatmap(), "X") {
		t.Error("heatmap does not mark dead router")
	}
}

func TestHeatmapEmptyNetwork(t *testing.T) {
	n := MustNew(testCfg(2, 2, true), nil)
	hm := n.Heatmap()
	if !strings.Contains(hm, ".") {
		t.Errorf("idle heatmap: %s", hm)
	}
}

func TestCreditConservationInvariant(t *testing.T) {
	// The global credit-conservation equation must hold at every cycle
	// boundary of a busy, faulted simulation.
	src := traffic.NewSynthetic(16, 0.08, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 17)
	n := MustNew(testCfg(4, 4, true), src)
	n.Router(5).SetSA1Fault(topology.East, true)
	n.Router(10).SetXBFault(topology.West, true)
	n.Router(6).SetVA1Fault(topology.North, 0, true)
	for i := 0; i < 3000; i++ {
		n.Step()
		if i%7 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Ejected() == 0 {
		t.Fatal("no traffic flowed during invariant check")
	}
}

func TestOneRowMesh(t *testing.T) {
	// Degenerate 8×1 mesh: only East/West links exist; routing and flow
	// control must still work end to end.
	n := MustNew(testCfg(8, 1, true), nil)
	p1 := &flit.Packet{Dst: 7, Size: 3}
	p2 := &flit.Packet{Dst: 0, Size: 3}
	n.Inject(0, p1)
	n.Inject(7, p2)
	if !n.Drain(500) {
		t.Fatal("one-row mesh did not deliver")
	}
	if n.Stats().Ejected() != 2 {
		t.Fatalf("ejected %d", n.Stats().Ejected())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricMeshTraffic(t *testing.T) {
	src := traffic.NewSynthetic(8, 0.04, traffic.Uniform(8), traffic.Bimodal(1, 5, 0.5), 21)
	src.StopAt(2000)
	n := MustNew(testCfg(4, 2, true), src)
	n.Run(2000)
	if !n.Drain(10000) {
		t.Fatalf("4x2 mesh did not drain: %d in flight", n.Stats().InFlight())
	}
	if n.Stats().Created() != n.Stats().Ejected() {
		t.Fatalf("loss on asymmetric mesh: %d vs %d", n.Stats().Created(), n.Stats().Ejected())
	}
}
