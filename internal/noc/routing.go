package noc

import (
	"gonoc/internal/topology"
)

// Fault-aware routing.
//
// When at least one network-level fault (dead link or dead router) is
// present, the network replaces the routers' baseline route computation
// with table lookups built here; with no faults the tables are dropped
// and routing is the exact, bit-identical baseline (XY on a mesh/cmesh,
// the dateline RouteFn of torusroute.go on a torus).
//
// Deadlock freedom comes from a two-layer turn model. Each message
// class's VC range is split into two routing layers:
//
//	layer 0 — negative-first: turns from a positive direction (East,
//	          South) into a negative one (North, West) are forbidden,
//	layer 1 — positive-first: turns from a negative direction into a
//	          positive one are forbidden.
//
// Each turn model is individually deadlock-free, and a packet may switch
// layers exactly one way (0 → 1) with an arbitrary (non-180°) turn at
// the switch, so the combined channel-dependency graph is the union of
// two acyclic graphs joined by one-way edges — still acyclic. The
// resulting path shapes, a negative-first prefix plus one free turn plus
// a positive-first suffix, are rich enough to detour around any single
// dead link or dead router without losing connectivity (pinned by the
// exhaustive single-fault test).
//
// On a torus the wrap links add ring cycles that the turn model alone
// does not break, so they get a dateline-aware restriction on top: a
// packet may cross a wrap link only on its injection hop (the channel
// is entered with no upstream channel held) or as its single free
// 0 → 1 layer-switch hop. Within a layer, then, every wrap channel has
// no incoming channel dependency — intra-layer dependencies run over
// the non-wrap links only, which form exactly the W×H mesh the turn
// model is already acyclic on — so each layer's dependency graph stays
// acyclic and the one-way union argument above goes through unchanged.
// Connectivity under a single fault reduces to the proven mesh case:
// a dead wrap link leaves the whole mesh subgraph intact, and a dead
// mesh link or router is the exhaustively-proven mesh scenario (wrap
// hops only ever shorten paths). On a mesh or cmesh topology.Wrap is
// identically false and the tables built here are bit-identical to the
// pre-torus ones.
//
// Routing state is (node, input port, layer): the input port encodes the
// packet's motion direction (Local means injection, which has no turn
// constraint and a free choice of starting layer), the layer is derived
// from the input VC index. Tables are built per destination by a
// backward BFS over that state graph, so every next hop strictly
// decreases the remaining distance — table-routed paths cannot loop.

// numLayers is the number of deadlock-avoidance routing layers each
// message class's VC range is split into.
const numLayers = 2

// routeEntry is one routing decision: the output port to take and the
// layer of the downstream VC range to allocate from. out is -1 when the
// destination is unreachable from the state.
type routeEntry struct {
	out   int8
	layer int8
}

// routeTable holds, per destination, a routeEntry for every routing
// state. It is immutable once built; SetLinkFault/SetRouterFault swap in
// a fresh table during the serial hook phase.
type routeTable struct {
	topo    topology.Topology
	entries [][]routeEntry // [dst][stateID]
}

// statesPerNode is the routing-state count per node.
const statesPerNode = int(topology.NumPorts) * numLayers

// stateID flattens a routing state.
func stateID(node int, in topology.Port, layer int) int {
	return node*statesPerNode + int(in)*numLayers + layer
}

// turnLegal reports whether a packet that entered through port in on
// layer l may leave through port out on layer l2.
func turnLegal(in, out topology.Port, l, l2 int) bool {
	if in == topology.Local {
		return true // injection: no motion yet, any turn and layer
	}
	if out == in {
		return false // 180° turn, always illegal
	}
	if l2 < l {
		return false // layers are strictly one-way: 0 → 1
	}
	if l2 > l {
		return true // the layer switch is the packet's one free turn
	}
	dir := in.Opposite() // current motion direction
	if dir == out {
		return true // going straight is never a turn
	}
	negDir := dir == topology.North || dir == topology.West
	negOut := out == topology.North || out == topology.West
	if l == 0 {
		return !(!negDir && negOut) // negative-first: no positive→negative
	}
	return !(negDir && !negOut) // positive-first: no negative→positive
}

// buildRoutes computes the full per-destination routing tables for the
// given fault state. Dead routers are never entered (they can neither
// transit nor terminate traffic) and dead links carry nothing in either
// direction. Wrap (dateline) links are crossed only on injection or
// layer-switch hops, which keeps each layer's channel-dependency graph
// acyclic on a torus (see the package comment above).
func buildRoutes(topo topology.Topology, linkDead [][]bool, routerDead []bool) *routeTable {
	nStates := topo.Nodes() * statesPerNode

	// Forward adjacency over routing states. It is independent of the
	// destination, so it is built once and reversed for the BFS.
	type move struct {
		out, layer int8
		to         int32
	}
	adj := make([][]move, nStates)
	for node := 0; node < topo.Nodes(); node++ {
		if routerDead[node] {
			continue
		}
		for in := topology.Local; in <= topology.West; in++ {
			for l := 0; l < numLayers; l++ {
				if in == topology.Local && l != 0 {
					continue // injection states live on layer 0 only
				}
				s := stateID(node, in, l)
				for out := topology.North; out <= topology.West; out++ {
					nb, ok := topo.Neighbor(node, out)
					if !ok || linkDead[node][out] || routerDead[nb] {
						continue
					}
					wrap := topo.Wrap(node, out)
					for l2 := l; l2 < numLayers; l2++ {
						if !turnLegal(in, out, l, l2) {
							continue
						}
						if wrap && in != topology.Local && l2 == l {
							// A wrap channel may only be entered with no
							// upstream channel held (injection) or on the
							// one free layer switch; an intra-layer wrap
							// hop would close the ring's dependency cycle.
							continue
						}
						adj[s] = append(adj[s], move{
							out: int8(out), layer: int8(l2),
							to: int32(stateID(nb, out.Opposite(), l2)),
						})
					}
				}
			}
		}
	}
	rev := make([][]int32, nStates)
	for s := range adj {
		for _, m := range adj[s] {
			rev[m.to] = append(rev[m.to], int32(s))
		}
	}

	t := &routeTable{topo: topo, entries: make([][]routeEntry, topo.Nodes())}
	dist := make([]int32, nStates)
	queue := make([]int32, 0, nStates)
	for dst := 0; dst < topo.Nodes(); dst++ {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		if !routerDead[dst] {
			for in := topology.Local; in <= topology.West; in++ {
				for l := 0; l < numLayers; l++ {
					s := int32(stateID(dst, in, l))
					dist[s] = 0
					queue = append(queue, s)
				}
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range rev[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}

		ents := make([]routeEntry, nStates)
		for s := 0; s < nStates; s++ {
			if s/statesPerNode == dst {
				ents[s] = routeEntry{out: int8(topology.Local), layer: int8(s % numLayers)}
				continue
			}
			// Among minimal-distance moves, prefer the port the
			// topology's baseline routing would take (XY on a mesh,
			// minimal-direction DOR on a torus). Every X-then-Y path
			// shape is realizable in the two-layer model (a
			// positive→negative turn rides the free 0→1 layer switch),
			// so traffic whose baseline path misses the faults keeps
			// the baseline's load balance — a single smallest-port
			// tie-break instead funnels every tied flow onto the same
			// links and congests the whole network.
			xy := int8(topo.Route(s/statesPerNode, dst))
			best := routeEntry{out: -1}
			bestDist := int32(-1)
			for _, m := range adj[s] {
				d := dist[m.to]
				if d < 0 {
					continue
				}
				better := bestDist < 0 || d < bestDist
				if !better && d == bestDist {
					switch bp, mp := best.out == xy, m.out == xy; {
					case mp != bp:
						better = mp
					case m.layer != best.layer:
						better = m.layer < best.layer
					default:
						better = m.out < best.out
					}
				}
				if better {
					best = routeEntry{out: m.out, layer: m.layer}
					bestDist = d
				}
			}
			ents[s] = best
		}
		t.entries[dst] = ents
	}
	return t
}

// lookup returns the routing decision for a packet at node (entered
// through in, on layer) heading for dst.
func (t *routeTable) lookup(dst, node int, in topology.Port, layer int) routeEntry {
	return t.entries[dst][stateID(node, in, layer)]
}

// reachable reports whether a packet injected at src can reach dst under
// the table's fault state.
func (t *routeTable) reachable(src, dst int) bool {
	return t.entries[dst][stateID(src, topology.Local, 0)].out >= 0
}
