//go:build nocassert

// Runtime counterpart of the nocvet analyzers (internal/analysis): where
// the analyzers prove structural rules about the source, this layer
// checks the dynamic invariants those rules protect, once per tick.
// Build with
//
//	go test -tags nocassert ./...
//
// to enable it; the default build compiles it out entirely (see
// assert_off.go).
package noc

import (
	"fmt"

	"gonoc/internal/topology"
	"gonoc/internal/vc"
)

// assertEnabled gates the per-tick runtime assertion layer: this build
// has the nocassert tag, so Step verifies the network after every commit
// phase.
const assertEnabled = true

// assertPostStep validates the network at the cycle boundary, after the
// commit phase has drained all staged outputs:
//
//   - the global credit-conservation equation (CheckInvariants): for every
//     inter-router link and VC, credits + occupancy + wire flits + wire
//     credits + pending grants = Depth;
//   - every virtual channel's state-machine consistency (checkVCState).
//
// A violation panics with the cycle and location: these are simulator
// bugs, never workload conditions, so failing loudly at the first bad
// cycle beats diagnosing the downstream wreckage.
func (n *Network) assertPostStep() {
	if err := n.CheckInvariants(); err != nil {
		n.assertFail(fmt.Sprintf("nocassert: cycle %d: %v", n.cycle, err))
	}
	for id, r := range n.routers {
		cfg := r.Config()
		for p := 0; p < cfg.Ports; p++ {
			for v := 0; v < cfg.VCs; v++ {
				q := r.InputVC(topology.Port(p), v)
				if err := checkVCState(q); err != nil {
					n.assertFail(fmt.Sprintf("nocassert: cycle %d: router %d port %v vc%d: %v",
						n.cycle, id, topology.Port(p), v, err))
				}
			}
		}
	}
}

// assertFail records a flight-recorder dump (when one is attached) so the
// cycles leading up to the violation survive the crash, then panics with
// the violation message. The dump is retrievable from the recorder by a
// recovering caller, and the panic message points at it.
func (n *Network) assertFail(msg string) {
	if _, ok := n.TriggerFlightDump(msg); ok {
		panic(msg + " (flight-recorder dump captured)")
	}
	panic(msg)
}

// checkVCState validates one VC against the G state machine of Figure 3d
// as it must look at a cycle boundary:
//
//	Idle     — no packet: buffer empty, no downstream VC held
//	Routing  — head flit buffered, awaiting RC: no downstream VC yet
//	VCAlloc  — head flit buffered, competing in VA: no downstream VC yet
//	Active   — downstream VC allocated (buffer may be empty mid-packet)
//	Dropping — discarding a doomed packet: no downstream VC held (the
//	           buffer may be empty while body flits are still arriving)
func checkVCState(q *vc.VC) error {
	switch q.G {
	case vc.Idle:
		if !q.Empty() {
			return fmt.Errorf("Idle VC holds %d flits", q.Len())
		}
		if q.OutVC != vc.None {
			return fmt.Errorf("Idle VC holds downstream VC %d", q.OutVC)
		}
	case vc.Routing, vc.VCAlloc:
		if q.OutVC != vc.None {
			return fmt.Errorf("%v VC already holds downstream VC %d", q.G, q.OutVC)
		}
		if q.Empty() {
			return fmt.Errorf("%v VC has no buffered flit", q.G)
		}
		if f := q.Front(); !f.Kind.IsHead() {
			return fmt.Errorf("%v VC fronts a %v flit, want a head", q.G, f.Kind)
		}
	case vc.Active:
		if q.OutVC == vc.None {
			return fmt.Errorf("Active VC holds no downstream VC")
		}
	case vc.Dropping:
		if q.OutVC != vc.None {
			return fmt.Errorf("Dropping VC holds downstream VC %d", q.OutVC)
		}
	default:
		return fmt.Errorf("unknown G state %d", uint8(q.G))
	}
	return nil
}
