package noc

import (
	"fmt"
	"strings"

	"gonoc/internal/topology"
)

// LinkFlits returns the number of flits router id has sent through output
// port p since the start of the simulation. Local counts ejections.
func (n *Network) LinkFlits(id int, p topology.Port) uint64 {
	return n.linkFlits[id][p]
}

// RouterFlits returns the total flits forwarded by router id across all
// output ports.
func (n *Network) RouterFlits(id int) uint64 {
	var sum uint64
	for p := range n.linkFlits[id] {
		sum += n.linkFlits[id][p]
	}
	return sum
}

// Heatmap renders per-router forwarded-flit counts as an ASCII grid, one
// cell per router, normalized to the busiest router: '.' for idle through
// '9' for the hottest, with 'X' marking non-functional routers. It is the
// quickest way to see traffic concentration and fault-induced detours.
func (n *Network) Heatmap() string {
	var max uint64
	for id := range n.routers {
		if f := n.RouterFlits(id); f > max {
			max = f
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "router load heatmap (max %d flits)\n", max)
	w, h := n.topo.Dims()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := n.topo.ID(topology.Coord{X: x, Y: y})
			switch {
			case !n.routers[id].Functional():
				b.WriteString(" X")
			case max == 0:
				b.WriteString(" .")
			default:
				v := n.RouterFlits(id) * 9 / max
				if v == 0 && n.RouterFlits(id) > 0 {
					v = 1
				}
				if v == 0 {
					b.WriteString(" .")
				} else {
					fmt.Fprintf(&b, " %d", v)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
