//go:build nocassert

package noc

import (
	"fmt"
	"strings"
	"testing"

	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/traffic"
)

// TestAssertFailureCapturesFlightDump sabotages flow control on purpose
// (a dropped credit permanently underfunds one VC) and checks the
// nocassert layer's crash path: the violation panics, the panic message
// points at the captured dump, and the dump is non-empty and replayable.
func TestAssertFailureCapturesFlightDump(t *testing.T) {
	o := obs.New(1)
	o.Tracer.SetEnabled(false)
	o.Flight = obs.NewFlightRecorder(16, 64)
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(3), 21)
	src.StopAt(2000)
	n := MustNew(Config{Width: 4, Height: 4, Router: rc}, src)
	defer n.Close()
	sabotaged := false
	n.AddHook(func(c sim.Cycle) {
		if !sabotaged && c > 50 {
			sabotaged = n.DropPendingCredit(5)
		}
	})
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		n.Run(5000)
	}()
	if msg == "" {
		t.Fatal("dropped credit went undetected by the assertion layer")
	}
	if !strings.Contains(msg, "nocassert") {
		t.Fatalf("panic is not an assertion failure: %q", msg)
	}
	if !strings.Contains(msg, "flight-recorder dump captured") {
		t.Fatalf("panic does not point at the flight dump: %q", msg)
	}
	dumps := o.Flight.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("recorder holds %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if len(d.Events) == 0 {
		t.Fatal("flight dump is empty")
	}
	if !strings.Contains(d.Reason, "nocassert") {
		t.Fatalf("dump reason %q does not carry the violation", d.Reason)
	}
	if txt := obs.FormatDump(d); !strings.Contains(txt, "cycle") {
		t.Fatalf("dump does not format to a replay transcript:\n%s", txt)
	}
}
