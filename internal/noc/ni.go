package noc

import (
	"fmt"

	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
)

// NI is a node's network interface. On the injection side it plays the
// role of an upstream router for the local input port: it allocates a free
// local VC per packet, tracks credits, and streams at most one flit per
// cycle into the router. On the ejection side it consumes flits arriving
// at the local output port instantly and returns credits.
type NI struct {
	node int           //noc:derived immutable identity, fixed at construction
	r    routerCore    //noc:derived immutable wiring, fixed at construction
	cfg  router.Config //noc:derived immutable configuration, fixed at construction

	// queues holds packets waiting for a VC, one queue per message class.
	queues [][]*flit.Packet
	// active holds, per allocated local VC, the packet's remaining
	// flits (empty when the VC is idle); activeVCs counts the non-empty
	// entries. A dense slice instead of a map keeps the per-cycle send
	// scan allocation-free.
	active [][]*flit.Flit
	//noc:derived excluded from the canonical encoding: it is the count of non-empty active entries, which are encoded
	activeVCs int
	// vcBusy and credits track the router's local input VCs.
	vcBusy  []bool
	credits []int
	// sendScan rotates the VC served first, for fairness.
	sendScan int

	// eject assembles arriving packets; flits of a packet arrive in
	// order, so we only track the count per packet.
	//noc:derived immutable wiring, fixed at construction
	onEject func(*flit.Packet, sim.Cycle)

	// obs is the node's observability handle (nil when disabled).
	//noc:derived immutable wiring, bound at construction; observational only
	obs *obs.NodeObs
}

// routerCore is the router interface the NI depends on (satisfied by
// *core.Router).
type routerCore interface {
	AcceptFlit(router.InFlit)
	Config() router.Config
}

// newNI builds the network interface for node attached to router r.
func newNI(node int, r routerCore, on *obs.NodeObs, onEject func(*flit.Packet, sim.Cycle)) *NI {
	cfg := r.Config()
	ni := &NI{
		node:    node,
		r:       r,
		cfg:     cfg,
		queues:  make([][]*flit.Packet, cfg.Classes),
		active:  make([][]*flit.Flit, cfg.VCs),
		vcBusy:  make([]bool, cfg.VCs),
		credits: make([]int, cfg.VCs),
		onEject: onEject,
		obs:     on,
	}
	for v := range ni.credits {
		ni.credits[v] = cfg.Depth
	}
	return ni
}

// Offer enqueues a packet for injection. The packet's CreatedAt stamp must
// already be set.
func (ni *NI) Offer(p *flit.Packet) {
	cls := int(p.Class)
	if cls >= ni.cfg.Classes {
		cls = ni.cfg.Classes - 1
	}
	ni.queues[cls] = append(ni.queues[cls], p)
}

// QueuedPackets returns the number of packets waiting for a VC.
func (ni *NI) QueuedPackets() int {
	n := 0
	for _, q := range ni.queues {
		n += len(q)
	}
	return n
}

// Sending reports whether any packet is mid-injection.
func (ni *NI) Sending() bool { return ni.activeVCs > 0 }

// acceptCredit processes a credit returned by the router's local input
// port.
func (ni *NI) acceptCredit(c router.Credit) {
	ni.creditReturn(c.VC)
	if c.VCFree {
		ni.vcBusy[c.VC] = false
	}
}

// creditReturn is the audited entry point for adding a local-link credit
// on VC v, with its overflow panic (see the creditflow analyzer in
// internal/analysis).
//
//noc:credit-accessor
func (ni *NI) creditReturn(v int) {
	ni.credits[v]++
	if ni.credits[v] > ni.cfg.Depth {
		panic(fmt.Sprintf("noc: NI %d credit overflow on vc%d", ni.node, v))
	}
}

// creditSpend is the audited entry point for consuming a local-link
// credit on VC v when a flit enters the router, with its underflow panic.
//
//noc:credit-accessor
func (ni *NI) creditSpend(v int) {
	ni.credits[v]--
	if ni.credits[v] < 0 {
		panic(fmt.Sprintf("noc: NI %d negative credit on vc%d", ni.node, v))
	}
}

// tick allocates VCs to queued packets and sends at most one flit.
func (ni *NI) tick(cy sim.Cycle) {
	// Allocate a free local VC to the head packet of each class queue.
	for cls := range ni.queues {
		if len(ni.queues[cls]) == 0 {
			continue
		}
		lo, hi := ni.cfg.ClassRange(cls)
		for v := lo; v < hi; v++ {
			if ni.vcBusy[v] {
				continue
			}
			p := ni.queues[cls][0]
			ni.queues[cls] = ni.queues[cls][1:]
			p.InjectedAt = cy
			ni.vcBusy[v] = true
			//nocvet:ignore hotpathalloc segmentation allocates per injected packet, not per steady-state cycle; the zero-alloc contract pins the post-transient loop
			ni.active[v] = flit.Segment(p)
			ni.activeVCs++
			break
		}
	}
	if ni.obs != nil {
		ni.obs.NIQueueDepth(ni.QueuedPackets())
	}

	// Send one flit from one active VC (the local link carries one flit
	// per cycle), rotating the starting VC for fairness.
	for i := 0; i < ni.cfg.VCs; i++ {
		v := (ni.sendScan + i) % ni.cfg.VCs
		fl := ni.active[v]
		if len(fl) == 0 || ni.credits[v] == 0 {
			continue
		}
		f := fl[0]
		//nocvet:ignore hotpathalloc routerCore is always *core.Router, whose AcceptFlit is a self-append into a pre-capped latch
		ni.r.AcceptFlit(router.InFlit{In: localPort, VC: v, F: f})
		if ni.obs != nil {
			ni.obs.NIFlitSent()
		}
		ni.creditSpend(v)
		if len(fl) == 1 {
			ni.active[v] = nil
			ni.activeVCs--
		} else {
			ni.active[v] = fl[1:]
		}
		ni.sendScan = (v + 1) % ni.cfg.VCs
		break
	}
}

// consume handles a flit ejected at the local output port.
func (ni *NI) consume(f *flit.Flit, cy sim.Cycle) {
	if f.Pkt.Dst != ni.node {
		panic(fmt.Sprintf("noc: packet for node %d ejected at node %d", f.Pkt.Dst, ni.node))
	}
	if f.Kind.IsTail() {
		f.Pkt.EjectedAt = cy
		if ni.onEject != nil {
			ni.onEject(f.Pkt, cy)
		}
	}
}
