// Network-level fault-tolerance suite: exhaustive single-fault
// reachability of the two-layer turn-model routing, 100% end-to-end
// delivery under any single link or router fault with retransmission
// enabled — on mesh, cmesh and torus (wrap links included) — and clean
// termination on partitioned meshes.
package noc_test

import (
	"fmt"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// topoLinks enumerates each bidirectional link of a topology once, as
// (node, port) with port in {East, South}. On a torus this covers every
// ring link exactly once, wrap links included.
func topoLinks(tp topology.Topology) [][2]int {
	var links [][2]int
	for id := 0; id < tp.Nodes(); id++ {
		for _, p := range []topology.Port{topology.East, topology.South} {
			if _, ok := tp.Neighbor(id, p); ok {
				links = append(links, [2]int{id, int(p)})
			}
		}
	}
	return links
}

// testTopo builds the router-graph topology for a fault-suite case.
func testTopo(t *testing.T, topo string, w, h, conc int) topology.Topology {
	t.Helper()
	tp, err := topology.New(topo, w, h, conc)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func newFaultNet(t *testing.T, w, h int, retx noc.RetxConfig, workers int, tr noc.Traffic) *noc.Network {
	t.Helper()
	return newTopoFaultNet(t, w, h, "", 0, retx, workers, tr)
}

// newTopoFaultNet is newFaultNet with an explicit topology family, for
// running the fault suites on cmesh as well as mesh. topo "" means
// mesh; conc is the cmesh concentration.
func newTopoFaultNet(t *testing.T, w, h int, topo string, conc int, retx noc.RetxConfig, workers int, tr noc.Traffic) *noc.Network {
	t.Helper()
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	n, err := noc.New(noc.Config{
		Width: w, Height: h, Topo: topo, Conc: conc,
		Router: rc, Warmup: 0, Workers: workers, Retx: retx,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// faultTopologies enumerates the topology families the single-fault
// suites must cover: the plain mesh, the concentrated mesh (whose
// router graph routes faults over the same two-layer tables), and the
// torus (whose tables add the wrap-link dateline rule).
var faultTopologies = []struct {
	name string
	topo string
	conc int
}{
	{name: "mesh", topo: "", conc: 0},
	{name: "cmesh", topo: "cmesh", conc: 2},
	{name: "torus", topo: "torus", conc: 0},
}

// TestExhaustiveSingleFaultReachability kills every link and every
// router of a 4x4 router grid in turn — on mesh, cmesh and torus — and
// asserts the routing tables keep every surviving (src, dst) pair
// connected — the turn model loses no connectivity a single fault
// leaves physically intact.
func TestExhaustiveSingleFaultReachability(t *testing.T) {
	for _, dim := range [][2]int{{4, 4}, {2, 2}, {4, 2}} {
		for _, tc := range faultTopologies {
			w, h, tc := dim[0], dim[1], tc
			t.Run(fmt.Sprintf("%s-%dx%d", tc.name, w, h), func(t *testing.T) {
				n := newTopoFaultNet(t, w, h, tc.topo, tc.conc, noc.RetxConfig{}, 1, nil)
				defer n.Close()
				tp := n.Topo()
				nodes := tp.Nodes()
				checkAllPairs := func(desc string, dead int) {
					for src := 0; src < nodes; src++ {
						for dst := 0; dst < nodes; dst++ {
							if src == dead || dst == dead {
								continue
							}
							if !n.Reachable(src, dst) {
								t.Errorf("%s: %d -> %d unreachable", desc, src, dst)
							}
						}
					}
				}
				for _, lk := range topoLinks(tp) {
					id, p := lk[0], topology.Port(lk[1])
					if err := n.SetLinkFault(id, p, true); err != nil {
						t.Fatal(err)
					}
					checkAllPairs(fmt.Sprintf("link %d:%v dead", id, p), -1)
					if err := n.SetLinkFault(id, p, false); err != nil {
						t.Fatal(err)
					}
				}
				for id := 0; id < nodes; id++ {
					if err := n.SetRouterFault(id, true); err != nil {
						t.Fatal(err)
					}
					checkAllPairs(fmt.Sprintf("router %d dead", id), id)
					for other := 0; other < nodes; other++ {
						if other != id && n.Reachable(other, id) {
							t.Errorf("router %d dead: %d -> %d reported reachable", id, other, id)
						}
					}
					if err := n.SetRouterFault(id, false); err != nil {
						t.Fatal(err)
					}
				}
				// All faults repaired: back on the baseline fast path.
				checkAllPairs("fault-free", -1)
			})
		}
	}
}

// TestSetFaultValidation covers the error paths of the fault setters.
func TestSetFaultValidation(t *testing.T) {
	n := newFaultNet(t, 4, 4, noc.RetxConfig{}, 1, nil)
	defer n.Close()
	if err := n.SetLinkFault(-1, topology.East, true); err == nil {
		t.Error("negative router id accepted")
	}
	if err := n.SetLinkFault(16, topology.East, true); err == nil {
		t.Error("out-of-range router id accepted")
	}
	if err := n.SetLinkFault(5, topology.Local, true); err == nil {
		t.Error("local port accepted as a link")
	}
	if err := n.SetLinkFault(0, topology.North, true); err == nil {
		t.Error("mesh-edge port accepted as a link")
	}
	if err := n.SetRouterFault(99, true); err == nil {
		t.Error("out-of-range router id accepted")
	}
	// On a torus the same grid-edge port carries a wrap link, so the
	// fault must be accepted there; a size-1 dimension still has none.
	tor := newTopoFaultNet(t, 4, 4, "torus", 0, noc.RetxConfig{}, 1, nil)
	defer tor.Close()
	if err := tor.SetLinkFault(0, topology.North, true); err != nil {
		t.Errorf("torus wrap link rejected: %v", err)
	}
	if err := tor.SetLinkFault(0, topology.North, false); err != nil {
		t.Error(err)
	}
	flatTor := newTopoFaultNet(t, 4, 1, "torus", 0, noc.RetxConfig{}, 1, nil)
	defer flatTor.Close()
	if err := flatTor.SetLinkFault(0, topology.North, true); err == nil {
		t.Error("size-1 torus dimension accepted a link fault")
	}
	// Fault-aware routing needs two VCs per class to form its layers.
	rc := router.DefaultConfig()
	rc.VCs = 2 // two classes -> one VC each
	small := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: rc}, nil)
	defer small.Close()
	if err := small.SetLinkFault(5, topology.East, true); err == nil {
		t.Error("single-VC-per-class config accepted for fault-aware routing")
	}
}

// checkFullDelivery asserts the end-to-end reliability contract after a
// drained run: every unique offered packet was delivered exactly once,
// and every extra copy created by retransmission is accounted for as a
// drop or a suppressed duplicate.
func checkFullDelivery(t *testing.T, n *noc.Network, desc string) {
	t.Helper()
	s := n.Stats()
	unique := s.Created() - s.Retransmits()
	if s.Ejected() != unique {
		t.Errorf("%s: delivered %d of %d unique packets (created %d, retransmits %d, dropped %d, duplicates %d)",
			desc, s.Ejected(), unique, s.Created(), s.Retransmits(), s.Dropped(), s.Duplicates())
	}
	if s.Dropped()+s.Duplicates() != s.Retransmits() {
		t.Errorf("%s: accounting leak: dropped %d + duplicates %d != retransmits %d",
			desc, s.Dropped(), s.Duplicates(), s.Retransmits())
	}
	if dr := s.DeliveryRatio(); dr != 1.0 {
		t.Errorf("%s: delivery ratio %v, want 1", desc, dr)
	}
}

// TestSingleLinkFaultFullDelivery kills each link of a 4x4 router grid
// mid-run in turn, on the plain mesh, the concentrated mesh and the
// torus (whose link set includes the wrap links). Rerouting plus NI
// retransmission must deliver 100% of the offered packets: the copies
// lost at the dying link are retransmitted over surviving paths, and
// any duplicates are suppressed at the sinks.
func TestSingleLinkFaultFullDelivery(t *testing.T) {
	const (
		faultAt = 300
		stop    = 700
	)
	retx := noc.RetxConfig{Timeout: 250, MaxRetries: 5}
	for _, tc := range faultTopologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			links := topoLinks(testTopo(t, tc.topo, 4, 4, tc.conc))
			if testing.Short() {
				links = links[:4]
			}
			for _, lk := range links {
				id, p := lk[0], topology.Port(lk[1])
				desc := fmt.Sprintf("%s link %d:%v", tc.name, id, p)
				src := traffic.NewSynthetic(16, 0.04, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), uint64(37+id))
				src.StopAt(stop)
				n := newTopoFaultNet(t, 4, 4, tc.topo, tc.conc, retx, 1, src)
				n.AddHook(func(c sim.Cycle) {
					if c == faultAt {
						if err := n.SetLinkFault(id, p, true); err != nil {
							t.Errorf("%s: %v", desc, err)
						}
					}
				})
				n.Run(stop)
				if !n.Drain(stop + 60000) {
					t.Fatalf("%s: did not drain: %d in flight", desc, n.Stats().InFlight())
				}
				if err := n.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", desc, err)
				}
				checkFullDelivery(t, n, desc)
				n.Close()
			}
		})
	}
}

// avoidNode filters a workload so no packet originates or terminates at
// one node, for router-fault runs where that node is about to die.
type avoidNode struct {
	inner noc.Traffic
	node  int
}

func (a *avoidNode) Offered(node int, c sim.Cycle) []*flit.Packet {
	if node == a.node {
		return nil
	}
	ps := a.inner.Offered(node, c)
	kept := ps[:0]
	for _, p := range ps {
		if p.Dst != a.node {
			kept = append(kept, p)
		}
	}
	return kept
}

func (a *avoidNode) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	return a.inner.OnEject(p, c)
}

// TestSingleRouterFaultFullDelivery kills each router of a 4x4 router
// grid mid-run in turn — on the plain mesh, the concentrated mesh and
// the torus — with a workload that never sources or sinks at the dying
// node.
// Packets transiting the dead router are lost and must be recovered by
// retransmission over detour paths: 100% delivery.
func TestSingleRouterFaultFullDelivery(t *testing.T) {
	const (
		faultAt = 300
		stop    = 700
	)
	retx := noc.RetxConfig{Timeout: 250, MaxRetries: 5}
	for _, tc := range faultTopologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ids := []int{0, 1, 5, 6, 10, 15} // corners, edges and interior
			if testing.Short() {
				ids = ids[:2]
			}
			for _, id := range ids {
				desc := fmt.Sprintf("%s router %d", tc.name, id)
				inner := traffic.NewSynthetic(16, 0.04, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), uint64(91+id))
				inner.StopAt(stop)
				n := newTopoFaultNet(t, 4, 4, tc.topo, tc.conc, retx, 1, &avoidNode{inner: inner, node: id})
				n.AddHook(func(c sim.Cycle) {
					if c == faultAt {
						if err := n.SetRouterFault(id, true); err != nil {
							t.Errorf("%s: %v", desc, err)
						}
					}
				})
				n.Run(stop)
				if !n.Drain(stop + 60000) {
					t.Fatalf("%s: did not drain: %d in flight", desc, n.Stats().InFlight())
				}
				if err := n.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", desc, err)
				}
				checkFullDelivery(t, n, desc)
				n.Close()
			}
		})
	}
}

// TestDeadDestinationDrops pins the give-up path: packets to a dead
// router are dropped with the drop counted, never delivered, and the
// network still drains.
func TestDeadDestinationDrops(t *testing.T) {
	n := newFaultNet(t, 4, 4, noc.RetxConfig{Timeout: 100, MaxRetries: 2}, 1, nil)
	defer n.Close()
	if err := n.SetRouterFault(5, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Inject(i%4, &flit.Packet{Dst: 5, Class: flit.Request, Size: 1})
	}
	n.Inject(5, &flit.Packet{Dst: 9, Class: flit.Request, Size: 1}) // dead source
	if !n.Drain(5000) {
		t.Fatalf("did not drain: %d in flight", n.Stats().InFlight())
	}
	s := n.Stats()
	if s.Ejected() != 0 {
		t.Errorf("%d packets delivered to/from a dead router", s.Ejected())
	}
	if s.Dropped() != s.Created() {
		t.Errorf("dropped %d of %d created", s.Dropped(), s.Created())
	}
}

// TestPartitionedMeshTermination severs a corner node from the rest of
// the mesh mid-run. Undeliverable traffic must be dropped (bounded by
// MaxRetries), the run must drain at every worker count, and the
// outcome must stay bit-exact between serial and parallel stepping.
func TestPartitionedMeshTermination(t *testing.T) {
	const (
		faultAt = 200
		stop    = 600
	)
	run := func(workers int) (summary string, dropped uint64) {
		src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(2), 4242)
		src.StopAt(stop)
		n := newFaultNet(t, 4, 4, noc.RetxConfig{Timeout: 150, MaxRetries: 2}, workers, src)
		defer n.Close()
		n.AddHook(func(c sim.Cycle) {
			if c != faultAt {
				return
			}
			// Node 0 is the NW corner: its only links go East and South.
			if err := n.SetLinkFault(0, topology.East, true); err != nil {
				t.Error(err)
			}
			if err := n.SetLinkFault(0, topology.South, true); err != nil {
				t.Error(err)
			}
		})
		n.Run(stop)
		if !n.Drain(stop + 60000) {
			t.Fatalf("workers=%d: partitioned mesh did not drain: %d in flight, %d retx pending",
				workers, n.Stats().InFlight(), n.Stats().Created())
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		s := n.Stats()
		if s.Created() != s.Ejected()+s.Dropped()+s.Duplicates() {
			t.Fatalf("workers=%d: accounting leak: created %d != ejected %d + dropped %d + duplicates %d",
				workers, s.Created(), s.Ejected(), s.Dropped(), s.Duplicates())
		}
		return s.Summary(), s.Dropped()
	}
	ref, refDropped := run(1)
	if refDropped == 0 {
		t.Fatal("partition produced no drops; the case is not exercising the give-up path")
	}
	if got, _ := run(8); got != ref {
		t.Errorf("partitioned run diverged between workers=1 and workers=8:\n--- serial ---\n%s--- parallel ---\n%s", ref, got)
	}
}

// TestRerouteCountersAndRepair asserts rerouting is visible in the
// router counters while a fault is present, and that repairing the last
// fault restores pure XY routing (no further reroutes).
func TestRerouteCountersAndRepair(t *testing.T) {
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(1), 7)
	src.StopAt(1200)
	n := newFaultNet(t, 4, 4, noc.RetxConfig{Timeout: 250}, 1, src)
	defer n.Close()
	if err := n.SetLinkFault(5, topology.East, true); err != nil {
		t.Fatal(err)
	}
	n.Run(600)
	reroutes := func() (total uint64) {
		for id := 0; id < 16; id++ {
			total += n.Router(id).Counters.Reroutes
		}
		return
	}
	mid := reroutes()
	if mid == 0 {
		t.Fatal("no reroutes recorded with a dead link on a loaded mesh")
	}
	if err := n.SetLinkFault(5, topology.East, false); err != nil {
		t.Fatal(err)
	}
	n.Run(600)
	if !n.Drain(60000) {
		t.Fatalf("did not drain after repair: %d in flight", n.Stats().InFlight())
	}
	checkFullDelivery(t, n, "repair")
}
