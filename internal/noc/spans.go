package noc

import (
	"gonoc/internal/obs"
	"gonoc/internal/topology"
)

// NextHop reports the downstream router and the input port its link feeds
// when leaving router id through output port out. ok is false for the
// local (ejection) port and for mesh edges. It is the topology adapter
// obs.BuildSpans needs to chain hops across routers.
func (n *Network) NextHop(id, out int) (nextRouter, inPort int, ok bool) {
	p := topology.Port(out)
	if p == localPort {
		return 0, 0, false
	}
	nb := n.neighbor(id, p)
	if nb < 0 {
		return 0, 0, false
	}
	return nb, int(p.Opposite()), true
}

// Spans reconstructs per-packet hop spans from the network's retained
// trace window. It returns an empty set when the network runs without a
// tracer. Call it after the simulation (or between steps) — the builder
// reads a snapshot of the ring, so a live network is safe too.
func (n *Network) Spans() obs.SpanSet {
	o := n.Obs()
	if o == nil || o.Tracer == nil {
		return obs.SpanSet{}
	}
	return obs.BuildSpans(o.Tracer.Events(), obs.SpanConfig{
		NextHop:   n.NextHop,
		LocalPort: int(localPort),
	})
}
