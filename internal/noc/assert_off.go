//go:build !nocassert

package noc

// assertEnabled gates the per-tick runtime assertion layer (see
// assert_nocassert.go). Without the nocassert build tag it is a false
// constant, so the assertion call in Step is dead code the compiler
// removes: the default build pays nothing.
const assertEnabled = false

// assertPostStep is compiled out without the nocassert tag.
func (n *Network) assertPostStep() {}
