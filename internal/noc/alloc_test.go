package noc

import (
	"testing"

	"gonoc/internal/router"
	"gonoc/internal/traffic"
)

// steadyNetwork builds a network whose traffic stops at a fixed horizon
// and runs it until every NI has drained its injection queues and
// finished segmenting packets, while flits are still crossing the
// network. Past that point the only work left is the steady-state hot
// path — compute, local commit, link commit — which must not allocate.
func steadyNetwork(t testing.TB, topo string, w, h, workers int) *Network {
	t.Helper()
	nodes := w * h
	const stop = 400
	src := traffic.NewSynthetic(nodes, 0.02, traffic.Uniform(nodes), traffic.Bimodal(1, 5, 0.6), 7)
	src.StopAt(stop)
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	n, err := New(Config{
		Width: w, Height: h, Topo: topo,
		Router: rc, Warmup: 50, Workers: workers,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(stop)
	// Flush the injection backlog: flit segmentation is the one
	// legitimate allocator left after the traffic horizon, and it runs
	// until the NI queues empty.
	for i := 0; i < 80 && !n.InjectionIdle(); i++ {
		n.Run(50)
	}
	if !n.InjectionIdle() {
		t.Fatal("injection backlog did not flush; raise the flush budget")
	}
	if n.Stats().Ejected() == 0 {
		t.Fatal("no ejections during warmup; the lazy histogram allocation was not exercised")
	}
	if n.Stats().InFlight() == 0 {
		t.Fatal("network drained during warmup; nothing steady-state to measure")
	}
	return n
}

// TestStepZeroAllocSteadyState pins the tentpole memory contract: once a
// network is past its injection transient, Step allocates nothing — on a
// 64x64 mesh and on the torus and cmesh families — so stepping large
// meshes for millions of cycles puts no pressure on the garbage
// collector. Any new per-tick allocation in the compute or commit path
// fails this test.
func TestStepZeroAllocSteadyState(t *testing.T) {
	cases := []struct {
		name, topo string
		w, h       int
	}{
		{"mesh-64x64", "", 64, 64},
		{"torus-32x32", "torus", 32, 32},
		{"cmesh-32x32", "cmesh", 32, 32},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := steadyNetwork(t, tc.topo, tc.w, tc.h, 1)
			defer n.Close()
			if allocs := testing.AllocsPerRun(20, func() { n.Step() }); allocs != 0 {
				t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
			}
			if n.Stats().InFlight() == 0 {
				t.Fatal("network drained during measurement; the window no longer covers the hot path")
			}
		})
	}
}

// benchStep measures steady-state step throughput with live traffic.
func benchStep(b *testing.B, topo string, w, h, workers int) {
	nodes := w * h
	src := traffic.NewSynthetic(nodes, 0.02, traffic.Uniform(nodes), traffic.Bimodal(1, 5, 0.6), 7)
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	n, err := New(Config{Width: w, Height: h, Topo: topo, Router: rc, Workers: workers}, src)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	n.Run(64) // fill the pipelines
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

func BenchmarkStep(b *testing.B) {
	cases := []struct {
		name, topo string
		w, h       int
		workers    int
	}{
		{"mesh-8x8-w1", "", 8, 8, 1},
		{"mesh-16x16-w1", "", 16, 16, 1},
		{"mesh-32x32-w1", "", 32, 32, 1},
		{"mesh-64x64-w1", "", 64, 64, 1},
		{"mesh-64x64-w2", "", 64, 64, 2},
		{"mesh-64x64-w4", "", 64, 64, 4},
		{"mesh-64x64-w8", "", 64, 64, 8},
		{"torus-32x32-w1", "torus", 32, 32, 1},
		{"torus-32x32-w4", "torus", 32, 32, 4},
		{"cmesh-32x32-w4", "cmesh", 32, 32, 4},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) { benchStep(b, tc.topo, tc.w, tc.h, tc.workers) })
	}
}
