// Multi-fault coverage of the reachability oracle: Reachable must stay
// sound (never promise a path the surviving graph lacks) under fault
// combinations the single-fault suites never form, and kill/repair
// sequences must land back on exactly the fault-free behavior.
package noc_test

import (
	"fmt"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// physConnected computes ground-truth physical connectivity by BFS over
// the surviving links, as reported by the network's own fault state
// (LinkFaulty folds dead endpoints into dead links).
func physConnected(n *noc.Network) [][]bool {
	tp := n.Topo()
	nodes := tp.Nodes()
	conn := make([][]bool, nodes)
	for src := 0; src < nodes; src++ {
		conn[src] = make([]bool, nodes)
		if n.RouterFaulty(src) {
			continue
		}
		queue := []int{src}
		conn[src][src] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for p := topology.North; p <= topology.West; p++ {
				nb, ok := tp.Neighbor(cur, p)
				if !ok || conn[src][nb] || n.LinkFaulty(cur, p) {
					continue
				}
				conn[src][nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return conn
}

// checkReachableSound asserts Reachable never claims a pair the
// physical graph cannot serve, and returns how many pairs it serves.
func checkReachableSound(t *testing.T, n *noc.Network, desc string) int {
	t.Helper()
	conn := physConnected(n)
	nodes := n.Topo().Nodes()
	served := 0
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if !n.Reachable(src, dst) {
				continue
			}
			served++
			if !conn[src][dst] {
				t.Errorf("%s: Reachable(%d, %d) true but no physical path survives", desc, src, dst)
			}
		}
	}
	return served
}

// TestMultiFaultReachableSoundness forms every pair of simultaneous
// faults — link+link, link+router and router+router — on a 4x4 mesh and
// asserts the reachability oracle stays sound against BFS ground truth,
// then repairs the pair and requires full connectivity back.
func TestMultiFaultReachableSoundness(t *testing.T) {
	n := newFaultNet(t, 4, 4, noc.RetxConfig{}, 1, nil)
	defer n.Close()
	links := topoLinks(n.Topo())
	nodes := n.Topo().Nodes()

	type faultOp struct {
		set  func(bool) error
		desc string
	}
	var ops []faultOp
	for _, lk := range links {
		id, p := lk[0], topology.Port(lk[1])
		ops = append(ops, faultOp{
			set:  func(v bool) error { return n.SetLinkFault(id, p, v) },
			desc: fmt.Sprintf("link %d:%v", id, p),
		})
	}
	for id := 0; id < nodes; id++ {
		id := id
		ops = append(ops, faultOp{
			set:  func(v bool) error { return n.SetRouterFault(id, v) },
			desc: fmt.Sprintf("router %d", id),
		})
	}

	full := nodes * nodes
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			desc := ops[i].desc + " + " + ops[j].desc
			if err := ops[i].set(true); err != nil {
				t.Fatal(err)
			}
			if err := ops[j].set(true); err != nil {
				t.Fatal(err)
			}
			checkReachableSound(t, n, desc)
			if err := ops[i].set(false); err != nil {
				t.Fatal(err)
			}
			if err := ops[j].set(false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if served := checkReachableSound(t, n, "all repaired"); served != full {
		t.Errorf("after repairing every pair: %d of %d pairs reachable", served, full)
	}
}

// reachFilter drops offered packets whose (src, dst) the provided
// predicate rejects, so delivery assertions only cover pairs the
// network claims to serve.
type reachFilter struct {
	inner noc.Traffic
	keep  func(src, dst int) bool
}

func (f *reachFilter) Offered(node int, c sim.Cycle) []*flit.Packet {
	ps := f.inner.Offered(node, c)
	kept := ps[:0]
	for _, p := range ps {
		if f.keep(node, p.Dst) {
			kept = append(kept, p)
		}
	}
	return kept
}

func (f *reachFilter) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	return f.inner.OnEject(p, c)
}

// TestMultiFaultFullDelivery loads a 4x4 mesh carrying three
// simultaneous faults (two links and a router) with traffic restricted
// to the pairs Reachable still serves, and requires 100% delivery: the
// oracle's promises must be kept, not just sound.
func TestMultiFaultFullDelivery(t *testing.T) {
	const stop = 700
	retx := noc.RetxConfig{Timeout: 250, MaxRetries: 5}
	inner := traffic.NewSynthetic(16, 0.04, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 2024)
	inner.StopAt(stop)
	var n *noc.Network
	n = newFaultNet(t, 4, 4, retx, 1, &reachFilter{
		inner: inner,
		keep:  func(src, dst int) bool { return src != dst && n.Reachable(src, dst) },
	})
	defer n.Close()
	if err := n.SetLinkFault(5, topology.East, true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkFault(9, topology.South, true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetRouterFault(15, true); err != nil {
		t.Fatal(err)
	}
	served := checkReachableSound(t, n, "2 links + 1 router")
	if served == 0 {
		t.Fatal("no reachable pairs under the triple fault; the case is vacuous")
	}
	n.Run(stop)
	if !n.Drain(stop + 60000) {
		t.Fatalf("did not drain: %d in flight", n.Stats().InFlight())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkFullDelivery(t, n, "triple fault")
}

// TestFaultRepairSequence walks a kill/verify/repair/verify sequence —
// accumulate a link fault, then a router fault, then repair them one at
// a time — checking the reachability oracle at every step and, once
// healed, that traffic behaves exactly as on a never-faulted network.
func TestFaultRepairSequence(t *testing.T) {
	n := newFaultNet(t, 4, 4, noc.RetxConfig{Timeout: 250, MaxRetries: 5}, 1, nil)
	defer n.Close()
	nodes := n.Topo().Nodes()
	full := nodes * nodes

	// Kill a link: single link fault must cost no connectivity.
	if err := n.SetLinkFault(5, topology.East, true); err != nil {
		t.Fatal(err)
	}
	if served := checkReachableSound(t, n, "link 5:E"); served != full {
		t.Errorf("single link fault lost connectivity: %d of %d pairs", served, full)
	}

	// Kill a router on top: exactly the dead router's pairs disappear.
	if err := n.SetRouterFault(10, true); err != nil {
		t.Fatal(err)
	}
	want := (nodes - 1) * (nodes - 1)
	if served := checkReachableSound(t, n, "link 5:E + router 10"); served != want {
		t.Errorf("link+router faults: %d pairs reachable, want %d (all pairs avoiding the dead router)", served, want)
	}
	for other := 0; other < nodes; other++ {
		if other != 10 && n.Reachable(other, 10) {
			t.Errorf("dead router 10 reported reachable from %d", other)
		}
	}

	// Repair the link: still exactly the router-fault picture.
	if err := n.SetLinkFault(5, topology.East, false); err != nil {
		t.Fatal(err)
	}
	if served := checkReachableSound(t, n, "router 10 only"); served != want {
		t.Errorf("after link repair: %d pairs reachable, want %d", served, want)
	}

	// Repair the router: full connectivity, and a loaded run must be
	// indistinguishable from a never-faulted network.
	if err := n.SetRouterFault(10, false); err != nil {
		t.Fatal(err)
	}
	if served := checkReachableSound(t, n, "healed"); served != full {
		t.Errorf("after full repair: %d of %d pairs reachable", served, full)
	}

	// A network that went through the same kill/repair cycle before
	// carrying traffic must behave bit-identically to one that never
	// saw a fault: repair leaves no residue in the routing state.
	const stop = 500
	run := func(faultCycle bool) string {
		src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(2), 909)
		src.StopAt(stop)
		n := newFaultNet(t, 4, 4, noc.RetxConfig{Timeout: 250, MaxRetries: 5}, 1, src)
		defer n.Close()
		if faultCycle {
			for _, v := range []bool{true, false} {
				if err := n.SetLinkFault(5, topology.East, v); err != nil {
					t.Fatal(err)
				}
				if err := n.SetRouterFault(10, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Run(stop)
		if !n.Drain(stop + 60000) {
			t.Fatalf("did not drain: %d in flight", n.Stats().InFlight())
		}
		checkFullDelivery(t, n, "healed run")
		return n.Stats().Summary()
	}
	if healed, fresh := run(true), run(false); healed != fresh {
		t.Errorf("repaired network diverges from a never-faulted one:\n--- repaired ---\n%s--- fresh ---\n%s", healed, fresh)
	}
}

// TestTorusFaultRepairSequence is TestFaultRepairSequence on a 4x4
// torus: kill a wrap link and a router, verify the reachability oracle
// at every step, repair both, and require a healed network to behave
// bit-identically to a never-faulted one — which also proves repair
// reinstalls the dateline RouteFn fast path — at workers 1, 2, 4 and 8.
func TestTorusFaultRepairSequence(t *testing.T) {
	n := newTopoFaultNet(t, 4, 4, "torus", 0, noc.RetxConfig{Timeout: 250, MaxRetries: 5}, 1, nil)
	defer n.Close()
	nodes := n.Topo().Nodes()
	full := nodes * nodes

	// Kill the row-0 wrap link (router 3 is the NE corner; its East
	// link wraps to router 0): no connectivity may be lost.
	if !n.Topo().Wrap(3, topology.East) {
		t.Fatal("expected 3:E to be a wrap link on a 4x4 torus")
	}
	if err := n.SetLinkFault(3, topology.East, true); err != nil {
		t.Fatal(err)
	}
	if served := checkReachableSound(t, n, "wrap link 3:E"); served != full {
		t.Errorf("single wrap-link fault lost connectivity: %d of %d pairs", served, full)
	}

	// Kill a router on top: exactly the dead router's pairs disappear.
	if err := n.SetRouterFault(10, true); err != nil {
		t.Fatal(err)
	}
	want := (nodes - 1) * (nodes - 1)
	if served := checkReachableSound(t, n, "wrap link 3:E + router 10"); served != want {
		t.Errorf("link+router faults: %d pairs reachable, want %d", served, want)
	}

	// Repair both: full connectivity back.
	if err := n.SetLinkFault(3, topology.East, false); err != nil {
		t.Fatal(err)
	}
	if err := n.SetRouterFault(10, false); err != nil {
		t.Fatal(err)
	}
	if served := checkReachableSound(t, n, "healed"); served != full {
		t.Errorf("after full repair: %d of %d pairs reachable", served, full)
	}

	// A torus that went through the kill/repair cycle must behave
	// bit-identically to a fresh one, at every worker count.
	const stop = 500
	run := func(faultCycle bool, workers int) string {
		src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(2), 909)
		src.StopAt(stop)
		n := newTopoFaultNet(t, 4, 4, "torus", 0, noc.RetxConfig{Timeout: 250, MaxRetries: 5}, workers, src)
		defer n.Close()
		if faultCycle {
			for _, v := range []bool{true, false} {
				if err := n.SetLinkFault(3, topology.East, v); err != nil {
					t.Fatal(err)
				}
				if err := n.SetRouterFault(10, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Run(stop)
		if !n.Drain(stop + 60000) {
			t.Fatalf("workers=%d: did not drain: %d in flight", workers, n.Stats().InFlight())
		}
		checkFullDelivery(t, n, "healed torus run")
		return n.Stats().Summary()
	}
	fresh := run(false, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		if healed := run(true, workers); healed != fresh {
			t.Errorf("workers=%d: repaired torus diverges from a fresh one:\n--- repaired ---\n%s--- fresh ---\n%s", workers, healed, fresh)
		}
	}
}
