package noc

import (
	"testing"

	"gonoc/internal/rng"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// TestStressManyFaultsLongRun drives an 8x8 mesh for a long time with a
// large set of randomly chosen tolerable faults and full drain, checking
// packet conservation — the strongest end-to-end invariant we have.
func TestStressManyFaultsLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress test")
	}
	cfg := testCfg(8, 8, true)
	cfg.Router.Classes = 2
	src := traffic.NewSynthetic(64, 0.02, traffic.Uniform(64), traffic.Bimodal(1, 5, 0.5), 2024)
	src.StopAt(20000)
	n := MustNew(cfg, src)

	// Inject random faults, skipping any that would break a router.
	r := rng.New(7)
	injected := 0
	for i := 0; i < 150; i++ {
		id := r.Intn(64)
		rt := n.Router(id)
		p := topology.Port(r.Intn(5))
		undo := func() {}
		switch r.Intn(6) {
		case 0:
			rt.SetRCFault(p, 0, true)
			undo = func() { rt.SetRCFault(p, 0, false) }
		case 1:
			v := r.Intn(4)
			rt.SetVA1Fault(p, v, true)
			undo = func() { rt.SetVA1Fault(p, v, false) }
		case 2:
			v := r.Intn(4)
			rt.SetVA2Fault(p, v, true)
			undo = func() { rt.SetVA2Fault(p, v, false) }
		case 3:
			rt.SetSA1Fault(p, true)
			undo = func() { rt.SetSA1Fault(p, false) }
		case 4:
			rt.SetSA2Fault(p, true)
			undo = func() { rt.SetSA2Fault(p, false) }
		case 5:
			rt.SetXBFault(p, true)
			undo = func() { rt.SetXBFault(p, false) }
		}
		if !rt.Functional() {
			undo()
			continue
		}
		injected++
	}
	if injected < 60 {
		t.Fatalf("only %d faults injected", injected)
	}
	if !n.Functional() {
		t.Fatal("network must be functional after safe injection")
	}

	// Interleave runs with global credit-conservation checks.
	for i := 0; i < 20; i++ {
		n.Run(1000)
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", (i+1)*1000, err)
		}
	}
	if !n.Drain(400000) {
		t.Fatalf("network wedged: %d packets in flight after drain window", n.Stats().InFlight())
	}
	st := n.Stats()
	if st.Created() != st.Ejected() {
		t.Fatalf("packet loss: created %d, ejected %d", st.Created(), st.Ejected())
	}
	if st.Created() < 1000 {
		t.Fatalf("too little traffic exercised: %d packets", st.Created())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	t.Logf("delivered %d packets through %d faults, avg latency %.1f cycles",
		st.Ejected(), injected, st.AvgLatency())
}
