package noc

import (
	"fmt"

	"gonoc/internal/topology"
)

// CheckInvariants validates the global credit-conservation invariant of
// the network and returns the first violation found, or nil.
//
// For every inter-router link (upstream router U, output port P) feeding
// (downstream router D, input port Q = opposite(P)) and every VC v:
//
//	credits_U[P][v] + occupancy_D[Q][v] + inFlightFlits + inFlightCredits
//	  + pendingGrants_U[P][v] = Depth
//
// where the in-flight terms count flits on the downstream wire and
// credits on the upstream wire for that VC, and pendingGrants counts
// switch-allocation winners whose credit is reserved but whose flit has
// not yet traversed the crossbar. The same holds for the
// NI-to-router local links. Any leak — a credit lost, double-returned or
// misrouted, a flit accepted without a credit — breaks this equation, so
// tests can call CheckInvariants at any cycle boundary to pin down
// flow-control bugs the moment they happen.
func (n *Network) CheckInvariants() error {
	depth := n.cfg.Router.Depth
	for id, r := range n.routers {
		cfg := r.Config()
		for p := 1; p < cfg.Ports; p++ { // inter-router ports: N, E, S, W
			port := topology.Port(p)
			nb := n.neighbor(id, port)
			if nb < 0 {
				continue // edge port: no link
			}
			in := port.Opposite()
			for v := 0; v < cfg.VCs; v++ {
				credits := n.creditCount(id, port, v)
				occ := n.routers[nb].InputVC(in, v).Len()
				wireFlits := 0
				for _, w := range n.inFlits[nb] {
					if w.In == in && w.VC == v {
						wireFlits++
					}
				}
				wireCredits := 0
				for _, w := range n.inCredits[id] {
					if w.Out == port && w.VC == v {
						wireCredits++
					}
				}
				pending := r.PendingGrants(port, v)
				total := credits + occ + wireFlits + wireCredits + pending
				if total != depth {
					return fmt.Errorf(
						"noc: credit leak on link r%d.%v -> r%d.%v vc%d: credits %d + occupancy %d + wire flits %d + wire credits %d + pending grants %d = %d, want %d",
						id, port, nb, in, v, credits, occ, wireFlits, wireCredits, pending, total, depth)
				}
			}
		}
	}
	return nil
}

// creditCount reads the router's internal credit counter via the public
// surface: FreeOutVCs covers allocation state, but for credits we track
// through a dedicated accessor on the router.
func (n *Network) creditCount(id int, p topology.Port, v int) int {
	return n.routers[id].Credits(p, v)
}
