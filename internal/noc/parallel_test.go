// Serial/parallel conformance suite for the two-phase network step.
//
// The contract under test: a simulation is bit-exact identical for every
// Config.Workers value — same per-packet timestamps, same statistics
// collector output, same observability event stream after canonical
// sorting. The suite runs identical seeded workloads (open-loop
// synthetic, trace replay; baseline and fault-tolerant routers; static
// and randomly injected faults) at Workers=1 and Workers=N and compares
// everything observable.
package noc_test

import (
	"fmt"
	"runtime"
	"testing"

	"gonoc/internal/fault"
	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// pktRecord is everything observable about one packet's journey.
type pktRecord struct {
	id                         uint64
	src, dst, size             int
	created, injected, ejected sim.Cycle
}

// recorder wraps a Traffic source and keeps a reference to every packet
// it offered, so per-packet latencies can be compared after the run.
type recorder struct {
	inner noc.Traffic
	pkts  []*flit.Packet
}

func (r *recorder) Offered(node int, c sim.Cycle) []*flit.Packet {
	ps := r.inner.Offered(node, c)
	r.pkts = append(r.pkts, ps...)
	return ps
}

func (r *recorder) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	return r.inner.OnEject(p, c)
}

// outcome bundles every observable a conformance case compares.
type outcome struct {
	packets []pktRecord
	summary string
	events  []obs.Event
	heat    string
	cycle   sim.Cycle
}

// timedFault is a fault injection spec applied at a specific cycle.
type timedFault struct {
	at   sim.Cycle
	spec string
}

// confCase is one workload/fault configuration of the suite.
type confCase struct {
	name        string
	topo        string // topology kind ("" = mesh)
	conc        int    // cmesh concentration (0 = 1)
	baseline    bool   // unprotected router instead of the FT design
	makeTraffic func() noc.Traffic
	faults      []string     // injection specs applied before cycle 0
	midFaults   []timedFault // injection specs applied mid-run via a hook
	retx        noc.RetxConfig
	faultMean   sim.Cycle // random safe-only injector mean (0 = none)
	cycles      sim.Cycle
}

// stopAt is the generation horizon shared by the synthetic workloads so
// Drain terminates.
const stopAt = 2000

func uniformTraffic(seed uint64) func() noc.Traffic {
	return func() noc.Traffic {
		src := traffic.NewSynthetic(16, 0.06, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), seed)
		src.StopAt(stopAt)
		return src
	}
}

func transposeTraffic(seed uint64) func() noc.Traffic {
	return func() noc.Traffic {
		src := traffic.NewSynthetic(16, 0.05, traffic.Transpose(topology.NewMesh(4, 4)), traffic.FixedSize(3), seed)
		src.StopAt(stopAt)
		return src
	}
}

// tornadoTorusTraffic drives the torus cases with the pattern that is
// adversarial for minimal torus routing: every packet crosses half its
// ring, so both dateline layers carry traffic.
func tornadoTorusTraffic(seed uint64) func() noc.Traffic {
	return func() noc.Traffic {
		tp, err := topology.New("torus", 4, 4, 1)
		if err != nil {
			panic(err)
		}
		src := traffic.NewSynthetic(16, 0.05, traffic.Tornado(tp), traffic.FixedSize(3), seed)
		src.StopAt(stopAt)
		return src
	}
}

func traceTraffic() func() noc.Traffic {
	var entries []traffic.TraceEntry
	for c := sim.Cycle(0); c < stopAt; c += 7 {
		entries = append(entries,
			traffic.TraceEntry{Cycle: c, Src: int(c) % 16, Dst: (int(c) + 5) % 16, Size: 1 + int(c)%4},
			traffic.TraceEntry{Cycle: c + 2, Src: 15 - int(c)%16, Dst: int(c) % 16, Size: 2},
		)
	}
	// Drop self-sends the generator grammar forbids.
	kept := entries[:0]
	for _, e := range entries {
		if e.Src != e.Dst {
			kept = append(kept, e)
		}
	}
	entries = kept
	return func() noc.Traffic { return traffic.NewTrace(entries) }
}

func conformanceCases() []confCase {
	return []confCase{
		{
			name:        "uniform/ft/fault-free",
			makeTraffic: uniformTraffic(42),
			cycles:      stopAt,
		},
		{
			name:        "transpose/ft/static+injected-faults",
			makeTraffic: transposeTraffic(77),
			faults:      []string{"5:sa1:e", "6:va1:n:1", "10:xb:w", "9:rc:l"},
			faultMean:   600,
			cycles:      stopAt,
		},
		{
			name:        "uniform/baseline/fault-free",
			baseline:    true,
			makeTraffic: uniformTraffic(1234),
			cycles:      stopAt,
		},
		{
			name:        "tracefile/ft/static-faults",
			makeTraffic: traceTraffic(),
			faults:      []string{"0:sa1:s", "3:xb:w", "12:va1:e:0"},
			cycles:      stopAt,
		},
		{
			name:        "uniform/ft/static-link-fault+retx",
			makeTraffic: uniformTraffic(314),
			faults:      []string{"5:link:e", "10:router"},
			retx:        noc.RetxConfig{Timeout: 300, MaxRetries: 4},
			cycles:      stopAt,
		},
		{
			name:        "uniform/ft/midrun-link-faults+retx",
			makeTraffic: uniformTraffic(2718),
			midFaults: []timedFault{
				{at: 400, spec: "6:link:s"},
				{at: 900, spec: "9:link:n"},
				{at: 1400, spec: "1:router"},
			},
			retx:   noc.RetxConfig{Timeout: 300, MaxRetries: 4},
			cycles: stopAt,
		},
		{
			name:        "tornado/ft/torus/fault-free",
			topo:        "torus",
			makeTraffic: tornadoTorusTraffic(99),
			cycles:      stopAt,
		},
		{
			name:        "uniform/ft/torus/static-router-faults",
			topo:        "torus",
			makeTraffic: uniformTraffic(7001),
			faults:      []string{"5:sa1:e", "9:rc:l", "14:xb:w"},
			cycles:      stopAt,
		},
		{
			name:        "tornado/ft/torus/static-net-faults+retx",
			topo:        "torus",
			makeTraffic: tornadoTorusTraffic(4242),
			// 3:link:e is the row-0 wrap link, so the case exercises the
			// fault tables' wrap-crossing restriction, not just mesh detours.
			faults: []string{"3:link:e", "10:router"},
			retx:   noc.RetxConfig{Timeout: 300, MaxRetries: 4},
			cycles: stopAt,
		},
		{
			name:        "uniform/ft/torus/midrun-link-faults+retx",
			topo:        "torus",
			makeTraffic: uniformTraffic(8086),
			midFaults: []timedFault{
				{at: 400, spec: "0:link:w"}, // wrap link while packets are in flight
				{at: 900, spec: "6:link:s"},
			},
			retx:   noc.RetxConfig{Timeout: 300, MaxRetries: 4},
			cycles: stopAt,
		},
		{
			name:        "uniform/ft/cmesh/static-faults",
			topo:        "cmesh",
			conc:        2,
			makeTraffic: uniformTraffic(555),
			faults:      []string{"5:sa1:e", "3:xb:w"},
			cycles:      stopAt,
		},
	}
}

// runCase runs one configuration at the given worker count and returns
// every observable.
func runCase(t *testing.T, cc confCase, workers int) outcome {
	t.Helper()
	o := obs.New(1 << 21)
	rc := router.DefaultConfig()
	rc.FaultTolerant = !cc.baseline
	rc.Obs = o
	rec := &recorder{inner: cc.makeTraffic()}
	n, err := noc.New(noc.Config{
		Width: 4, Height: 4, Topo: cc.topo, Conc: cc.conc,
		Router: rc, Warmup: 100, Workers: workers, Retx: cc.retx,
	}, rec)
	if err != nil {
		t.Fatalf("%s: %v", cc.name, err)
	}
	defer n.Close()
	for _, spec := range cc.faults {
		id, site, err := fault.ParseInjection(spec)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		if err := fault.ApplyNetwork(n, id, site, true); err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
	}
	for _, mf := range cc.midFaults {
		mf := mf
		id, site, err := fault.ParseInjection(mf.spec)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		n.AddHook(func(c sim.Cycle) {
			if c == mf.at {
				if err := fault.ApplyNetwork(n, id, site, true); err != nil {
					t.Errorf("%s: %v", cc.name, err)
				}
			}
		})
	}
	if cc.faultMean > 0 {
		fault.NewInjector(n, cc.faultMean, 999, true)
	}
	n.Run(cc.cycles)
	if !n.Drain(cc.cycles + 50000) {
		t.Fatalf("%s (workers=%d): did not drain, %d in flight",
			cc.name, workers, n.Stats().InFlight())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("%s (workers=%d): %v", cc.name, workers, err)
	}
	if d := o.Tracer.Dropped(); d != 0 {
		t.Fatalf("%s (workers=%d): trace ring wrapped (%d dropped); grow the capacity", cc.name, workers, d)
	}
	out := outcome{
		summary: n.Stats().Summary(),
		events:  o.Tracer.CanonicalEvents(),
		heat:    n.Heatmap(),
		cycle:   n.Now(),
	}
	for _, p := range rec.pkts {
		out.packets = append(out.packets, pktRecord{
			id: p.ID, src: p.Src, dst: p.Dst, size: p.Size,
			created: p.CreatedAt, injected: p.InjectedAt, ejected: p.EjectedAt,
		})
	}
	return out
}

// diffOutcomes asserts two outcomes are bit-exact identical.
func diffOutcomes(t *testing.T, name string, workers int, ref, got outcome) {
	t.Helper()
	if ref.cycle != got.cycle {
		t.Errorf("%s: final cycle %d (workers=1) vs %d (workers=%d)", name, ref.cycle, got.cycle, workers)
	}
	if len(ref.packets) != len(got.packets) {
		t.Fatalf("%s: %d packets (workers=1) vs %d (workers=%d)",
			name, len(ref.packets), len(got.packets), workers)
	}
	for i := range ref.packets {
		if ref.packets[i] != got.packets[i] {
			t.Fatalf("%s (workers=%d): packet %d diverged:\n  serial:   %+v\n  parallel: %+v",
				name, workers, i, ref.packets[i], got.packets[i])
		}
	}
	if ref.summary != got.summary {
		t.Errorf("%s (workers=%d): stats diverged:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
			name, workers, ref.summary, workers, got.summary)
	}
	if ref.heat != got.heat {
		t.Errorf("%s (workers=%d): link-utilization heatmap diverged", name, workers)
	}
	if len(ref.events) != len(got.events) {
		t.Fatalf("%s: %d obs events (workers=1) vs %d (workers=%d)",
			name, len(ref.events), len(got.events), workers)
	}
	for i := range ref.events {
		if ref.events[i] != got.events[i] {
			t.Fatalf("%s (workers=%d): canonical event %d diverged:\n  serial:   %+v\n  parallel: %+v",
				name, workers, i, ref.events[i], got.events[i])
		}
	}
}

// TestSerialParallelConformance is the acceptance suite: Workers=1 vs
// Workers=8 must be bit-exact on every configuration; the first
// configuration additionally checks uneven shard counts.
func TestSerialParallelConformance(t *testing.T) {
	for i, cc := range conformanceCases() {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			ref := runCase(t, cc, 1)
			if len(ref.packets) == 0 {
				t.Fatal("workload offered no packets")
			}
			if ref.summary == "" || len(ref.events) == 0 {
				t.Fatal("empty observables")
			}
			workerSet := []int{8}
			switch {
			case i == 0:
				workerSet = []int{2, 3, 8} // 3 does not divide 16: uneven shards
			case cc.topo != "":
				workerSet = []int{2, 4, 8} // new topology families: full worker sweep
			}
			for _, w := range workerSet {
				diffOutcomes(t, cc.name, w, ref, runCase(t, cc, w))
			}
		})
	}
}

// TestGoldenDeterminism guards the commit phase against map-iteration or
// scheduling nondeterminism: three repeated runs of one seeded, faulted,
// parallel configuration must produce byte-identical statistics and
// identical canonical event streams.
func TestGoldenDeterminism(t *testing.T) {
	cases := []confCase{
		{
			name:        "golden-mesh",
			makeTraffic: transposeTraffic(2014),
			faults:      []string{"5:sa1:e", "10:xb:w"},
			faultMean:   800,
			cycles:      stopAt,
		},
		{
			name:        "golden-torus",
			topo:        "torus",
			makeTraffic: tornadoTorusTraffic(2014),
			faults:      []string{"5:sa1:e", "10:xb:w"},
			faultMean:   800,
			cycles:      stopAt,
		},
		{
			name:        "golden-torus-netfaults",
			topo:        "torus",
			makeTraffic: tornadoTorusTraffic(2014),
			faults:      []string{"3:link:e", "5:link:e", "10:router"},
			retx:        noc.RetxConfig{Timeout: 300, MaxRetries: 4},
			cycles:      stopAt,
		},
		{
			name:        "golden-cmesh",
			topo:        "cmesh",
			conc:        2,
			makeTraffic: uniformTraffic(2014),
			faults:      []string{"5:sa1:e", "10:xb:w"},
			cycles:      stopAt,
		},
	}
	for _, cc := range cases {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			run := func() outcome { return runCase(t, cc, 4) }
			ref := run()
			if ref.summary == "" {
				t.Fatal("empty summary")
			}
			for rep := 0; rep < 2; rep++ {
				got := run()
				if got.summary != ref.summary {
					t.Fatalf("run %d summary diverged:\n%s\nvs\n%s", rep+2, ref.summary, got.summary)
				}
				diffOutcomes(t, cc.name, 4, ref, got)
			}
		})
	}
}

// TestConfigWorkersValidation is the Config.Workers table test: negative
// values are rejected by New with a descriptive error; 0 defaults to
// GOMAXPROCS; any request is clamped to the node count.
func TestConfigWorkersValidation(t *testing.T) {
	nodes := 16
	wantDefault := runtime.GOMAXPROCS(0)
	if wantDefault > nodes {
		wantDefault = nodes
	}
	cases := []struct {
		workers int
		wantErr bool
		want    int
	}{
		{workers: -1, wantErr: true},
		{workers: -64, wantErr: true},
		{workers: 0, want: wantDefault},
		{workers: 1, want: 1},
		{workers: 5, want: 5},
		{workers: runtime.NumCPU() + 1000, want: nodes}, // > NumCPU: clamped to the mesh
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			cfg := noc.Config{Width: 4, Height: 4, Router: router.DefaultConfig(), Workers: tc.workers}
			n, err := noc.New(cfg, nil)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Workers=%d accepted, want error", tc.workers)
				}
				return
			}
			if err != nil {
				t.Fatalf("Workers=%d rejected: %v", tc.workers, err)
			}
			defer n.Close()
			if got := n.Workers(); got != tc.want {
				t.Fatalf("Workers=%d resolved to %d, want %d", tc.workers, got, tc.want)
			}
		})
	}
}

// TestCloseIdempotentAndRestartable: Close may be called repeatedly, and
// a closed network restarts its pool on the next Step.
func TestCloseIdempotentAndRestartable(t *testing.T) {
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(2), 7)
	n := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: router.DefaultConfig(), Workers: 4}, src)
	n.Run(200)
	n.Close()
	n.Close()
	before := n.Stats().Created()
	n.Run(200) // restarts the pool
	if n.Stats().Created() <= before {
		t.Fatal("no traffic after pool restart")
	}
	n.Close()
}
