package noc

import (
	"gonoc/internal/topology"
)

// Torus routing.
//
// The torus's wrap-around links close every row and column into a ring,
// which puts a cycle in each ring's channel-dependency graph: packets
// buffered all the way around a ring can each wait on the next, forever.
// The classic fix, used here, is dateline virtual-channel layers: each
// message class's VC range is split into two layers, a packet starts in
// layer 0, and crossing a dimension's dateline (any wrap link, flagged
// by topology.Wrap) forces it into layer 1 for the rest of that
// dimension. Within a layer the ring's channel dependencies are ordered
// by position — layer 0 never wraps without leaving the layer, and a
// minimal route crosses each dimension's dateline at most once (pinned
// by TestTorusWrapCrossings), so layer 1's dependencies start at the
// wrap and stay ordered too. The combined graph is acyclic, hence
// deadlock free.
//
// The layer is derived, not stored: a packet's current layer is read off
// its input VC index (upper half of the class range = layer 1), exactly
// like the fault-aware mesh routing in routing.go, and it resets to 0
// when the packet turns from the X ring into the Y ring (dimension-order
// routing never returns to X, so the X layer history is irrelevant).
// Freshly injected packets (input port Local) start in layer 0.
//
// torusRoute is installed as every router's core.RouteFn at build time
// and whenever the network is free of link/router faults. It returns
// the same output port as the topology's minimal-direction routing —
// only the downstream VC range is constrained — so the Reroutes counter
// stays zero and the flit path shapes match topology.Torus.Route
// exactly. While network faults are present the fault-aware tables of
// routing.go take over (with their own wrap-link dateline rule), and
// rebuildRoutes reinstalls this fast path once the last fault is
// repaired.

// sameAxis reports whether two directional ports lie on the same
// dimension (both X: East/West, or both Y: North/South).
func sameAxis(a, b topology.Port) bool {
	ax := a == topology.East || a == topology.West
	bx := b == topology.East || b == topology.West
	return ax == bx
}

// torusRoute is the core.RouteFn for torus networks: minimal-direction
// dimension-order routing with dateline VC layers. New validates that
// every message class has at least numLayers VCs, so the layer halves
// are never empty.
func (n *Network) torusRoute(cur int, in topology.Port, vcIdx int, dst int) (topology.Port, int, int, bool) {
	cfg := n.cfg.Router
	lo, hi := cfg.ClassRange(cfg.ClassOf(vcIdx))
	out := n.topo.Route(cur, dst)
	if out == topology.Local {
		return out, lo, hi, true
	}
	half := (hi - lo) / numLayers
	layer := 0
	if in != topology.Local && sameAxis(in, out) && vcIdx >= lo+half {
		// Still travelling the same ring on the dateline layer.
		layer = 1
	}
	if n.wrapLink(cur, out) {
		// Crossing the dateline: the downstream buffer is on layer 1.
		layer = 1
	}
	if layer == 0 {
		return out, lo, lo + half, true
	}
	return out, lo + half, hi, true
}
