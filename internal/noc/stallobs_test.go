// Observability-tier suite: stall attribution, windowed link heatmaps,
// and the flight recorder ride the parallel stepper's bit-exactness
// guarantee — every counter, window bucket, and dump must be identical
// at any Config.Workers, on every topology family.
package noc

import (
	"reflect"
	"testing"

	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

// obsOutcome bundles every congestion-observability artifact one run
// produces, for cross-worker comparison.
type obsOutcome struct {
	stalls  []obs.RouterTotals
	samples []obs.Sample
	window  obs.WindowSnapshot
	dump    obs.Dump
	spans   obs.SpanSet
	summary string
}

// runObsCase runs one seeded workload with the full observability tier
// attached (tracer, windows, flight recorder) and returns everything.
func runObsCase(t *testing.T, topoKind string, conc, workers int, linkFault bool) obsOutcome {
	t.Helper()
	tp, err := topology.New(topoKind, 4, 4, conc)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(1 << 19)
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	o.Windows = obs.NewWindows(tp.Nodes(), rc.Ports, rc.VCs, 256, 8)
	o.Flight = obs.NewFlightRecorder(tp.Nodes(), 64)
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 42)
	src.StopAt(1500)
	n := MustNew(Config{
		Width: 4, Height: 4, Topo: topoKind, Conc: conc,
		Router: rc, Warmup: 100, Workers: workers,
	}, src)
	defer n.Close()
	if linkFault {
		if err := n.SetLinkFault(5, topology.East, true); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(1500)
	if !n.Drain(30000) {
		t.Fatalf("workers=%d: did not drain, %d in flight", workers, n.Stats().InFlight())
	}
	dump, ok := n.TriggerFlightDump("worker-invariance check")
	if !ok {
		t.Fatalf("workers=%d: flight recorder attached but no dump captured", workers)
	}
	return obsOutcome{
		stalls:  o.Metrics.PerRouter(),
		samples: o.Metrics.Snapshot(),
		window:  o.Windows.Snapshot(),
		dump:    dump,
		spans:   n.Spans(),
		summary: n.Stats().Summary(),
	}
}

// stallTotals sums the four stall-attribution counters over all routers.
func stallTotals(rts []obs.RouterTotals) [obs.NumStallKinds]uint64 {
	var out [obs.NumStallKinds]uint64
	for _, rt := range rts {
		for k := 0; k < obs.NumStallKinds; k++ {
			out[k] += rt.Total[obs.StallKind(k).Kind()]
		}
	}
	return out
}

// TestStallObsWorkersInvariant is the acceptance check for the
// congestion tier: on a faulted mesh, stall counters, the full metrics
// snapshot, window buckets, the flight dump, and span reconstruction
// must be bit-exact across Workers in {1, 2, 4, 8}.
func TestStallObsWorkersInvariant(t *testing.T) {
	ref := runObsCase(t, "mesh", 0, 1, true)
	tot := stallTotals(ref.stalls)
	if tot[obs.StallCreditStarved] == 0 || tot[obs.StallArbLost] == 0 {
		t.Fatalf("faulted workload produced no credit/arb stalls: %v", tot)
	}
	if tot[obs.StallRouteBlocked] == 0 {
		t.Fatalf("dead link produced no route-blocked stalls: %v", tot)
	}
	if len(ref.dump.Events) == 0 {
		t.Fatal("flight dump is empty")
	}
	if len(ref.window.Buckets) == 0 || ref.window.Cycles() == 0 {
		t.Fatal("window snapshot is empty")
	}
	for _, w := range []int{2, 4, 8} {
		got := runObsCase(t, "mesh", 0, w, true)
		if !reflect.DeepEqual(ref.stalls, got.stalls) {
			t.Errorf("workers=%d: per-router stall totals diverged: %v vs %v",
				w, stallTotals(ref.stalls), stallTotals(got.stalls))
		}
		if !reflect.DeepEqual(ref.samples, got.samples) {
			t.Errorf("workers=%d: metrics snapshot diverged (%d vs %d series)",
				w, len(ref.samples), len(got.samples))
		}
		if !reflect.DeepEqual(ref.window, got.window) {
			t.Errorf("workers=%d: window snapshot diverged", w)
		}
		if ref.dump.Reason != got.dump.Reason || !reflect.DeepEqual(ref.dump.Events, got.dump.Events) {
			t.Errorf("workers=%d: flight dump diverged (%d vs %d events)",
				w, len(ref.dump.Events), len(got.dump.Events))
		}
		if !reflect.DeepEqual(ref.spans, got.spans) {
			t.Errorf("workers=%d: span sets diverged", w)
		}
		if ref.summary != got.summary {
			t.Errorf("workers=%d: stats summary diverged:\n%s\nvs\n%s", w, ref.summary, got.summary)
		}
	}
}

// TestHeatmapWindowsTopologiesWorkers runs the windowed heatmap on the
// torus and concentrated-mesh families: buckets must be populated,
// cover the run, and stay bit-exact across worker counts.
func TestHeatmapWindowsTopologiesWorkers(t *testing.T) {
	cases := []struct {
		name string
		topo string
		conc int
	}{
		{name: "torus", topo: "torus"},
		{name: "cmesh", topo: "cmesh", conc: 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := runObsCase(t, tc.topo, tc.conc, 1, false)
			if len(ref.window.Buckets) == 0 {
				t.Fatal("no window buckets retained")
			}
			var flits uint64
			for _, lt := range ref.window.LinkTotals() {
				flits += lt.Flits
			}
			if flits == 0 {
				t.Fatal("window recorded no link flits")
			}
			// Fault-free runs never block on a missing route.
			if tot := stallTotals(ref.stalls); tot[obs.StallRouteBlocked] != 0 || tot[obs.StallFaultDrain] != 0 {
				t.Fatalf("fault-free %s run shows route/drain stalls: %v", tc.name, tot)
			}
			for _, w := range []int{2, 4, 8} {
				got := runObsCase(t, tc.topo, tc.conc, w, false)
				if !reflect.DeepEqual(ref.window, got.window) {
					t.Errorf("workers=%d: %s window snapshot diverged", w, tc.name)
				}
				if !reflect.DeepEqual(ref.stalls, got.stalls) {
					t.Errorf("workers=%d: %s stall totals diverged", w, tc.name)
				}
			}
		})
	}
}

// TestSpansTopologiesWorkers extends hop-span reconstruction coverage to
// the torus and cmesh families: every packet reconstructs losslessly,
// hop chains are contiguous, and the sets are worker-invariant.
func TestSpansTopologiesWorkers(t *testing.T) {
	cases := []struct {
		name string
		topo string
		conc int
	}{
		{name: "torus", topo: "torus"},
		{name: "cmesh", topo: "cmesh", conc: 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := runObsCase(t, tc.topo, tc.conc, 1, false)
			if len(ref.spans.Packets) == 0 {
				t.Fatal("no packets reconstructed")
			}
			if ref.spans.Orphans != 0 || ref.spans.Dropped != 0 || ref.spans.Incomplete != 0 {
				t.Fatalf("lossy reconstruction: %d orphans, %d dropped, %d incomplete",
					ref.spans.Orphans, ref.spans.Dropped, ref.spans.Incomplete)
			}
			for _, p := range ref.spans.Packets {
				if len(p.Hops) == 0 {
					t.Fatalf("packet %d->%d has no hops", p.Src, p.Dst)
				}
				for i := 1; i < len(p.Hops); i++ {
					if p.Hops[i].Arrive <= p.Hops[i-1].SACycle {
						t.Fatalf("packet %d->%d hop %d arrives at %d, before upstream grant %d",
							p.Src, p.Dst, i, p.Hops[i].Arrive, p.Hops[i-1].SACycle)
					}
				}
			}
			for _, w := range []int{4, 8} {
				got := runObsCase(t, tc.topo, tc.conc, w, false)
				if !reflect.DeepEqual(ref.spans, got.spans) {
					t.Errorf("workers=%d: %s span sets diverged", w, tc.name)
				}
			}
		})
	}
}

// TestWindowRollTracksNetworkCycle pins the serial-hook contract: the
// window ring is rolled exactly once per Step, so the snapshot covers
// every simulated cycle with bucket boundaries at multiples of the
// bucket width.
func TestWindowRollTracksNetworkCycle(t *testing.T) {
	tp, err := topology.New("mesh", 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(1)
	o.Tracer.SetEnabled(false)
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	o.Windows = obs.NewWindows(tp.Nodes(), rc.Ports, rc.VCs, 100, 4)
	n := MustNew(Config{Width: 4, Height: 4, Router: rc}, nil)
	defer n.Close()
	n.Run(250)
	s := o.Windows.Snapshot()
	if got := s.Cycles(); got != 250 {
		t.Fatalf("snapshot covers %d cycles, want 250", got)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("retained %d buckets, want 3 (two full + partial)", len(s.Buckets))
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.Start != 200 || last.Cycles != 50 || !last.Partial {
		t.Fatalf("in-progress bucket = start %d, %d cycles, partial=%v; want 200, 50, true",
			last.Start, last.Cycles, last.Partial)
	}
	if n.Now() != sim.Cycle(250) {
		t.Fatalf("network at cycle %d, want 250", n.Now())
	}
}
