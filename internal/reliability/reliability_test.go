package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"gonoc/internal/core"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestCalibratedPerFET(t *testing.T) {
	p := DefaultTDDBParams()
	near(t, "FIT/FET", p.FITPerFET(1.0, 1.0, 300), 0.1, 1e-12)
	// Duty cycle scales linearly (Equation 3).
	near(t, "FIT/FET@50%", p.FITPerFET(0.5, 1.0, 300), 0.05, 1e-12)
}

func TestFORCPhysicsTrends(t *testing.T) {
	p := DefaultTDDBParams()
	// Higher temperature accelerates TDDB.
	if p.FORC(1.0, 340) <= p.FORC(1.0, 300) {
		t.Error("FORC did not increase with temperature")
	}
	// Higher voltage accelerates TDDB (voltage exponent is large and
	// positive at operating temperatures).
	if p.FORC(1.1, 300) <= p.FORC(1.0, 300) {
		t.Error("FORC did not increase with voltage")
	}
}

func TestComponentFITsMatchPaper(t *testing.T) {
	lib := DefaultFITLibrary()
	cases := []struct {
		c    Component
		want float64
	}{
		{Comparator6, 11.7},
		{Arb4, 7.4},
		{Arb5, 9.3},
		{Arb20, 36.9}, // paper prints 36.7; see EXPERIMENTS.md
		{Mux4x1, 4.8},
		{Mux5x1x32, 204.8},
		{Mux2x1x32, 51.2},
		{Mux2x1Ctl, 1.6},
		{Demux2x32, 32.0},
		{Demux3x32, 64.0},
		{DFFBit, 0.5},
	}
	for _, c := range cases {
		near(t, c.c.String(), lib.FIT(c.c), c.want, 1e-9)
	}
}

func TestTableIBaselineStageFIT(t *testing.T) {
	lib := DefaultFITLibrary()
	s := BaselineStageFIT(lib, PaperSpec())
	near(t, "RC", s.RC, 117, 1e-9)
	near(t, "VA", s.VA, 1478, 1e-9) // 100·7.4 + 20·36.9
	near(t, "SA", s.SA, 203.5, 1e-9)
	near(t, "XB", s.XB, 1024, 1e-9)
	near(t, "total", s.Total(), 2822.5, 1e-9)
}

func TestTableIICorrectionStageFIT(t *testing.T) {
	lib := DefaultFITLibrary()
	s := CorrectionStageFIT(lib, PaperSpec())
	near(t, "RC", s.RC, 117, 1e-9)
	near(t, "VA", s.VA, 60, 1e-9)
	near(t, "SA", s.SA, 53, 1e-9)
	near(t, "XB", s.XB, 416, 1e-9)
	near(t, "total", s.Total(), 646, 1e-9)
}

func TestEquation4BaselineMTTF(t *testing.T) {
	lib := DefaultFITLibrary()
	// Paper: ≈354,358 h from a rounded 2822 FIT; we carry 2822.5.
	near(t, "MTTF_baseline", MTTFBaseline(lib, PaperSpec()), 354296, 1)
}

func TestEquation6ProtectedMTTF(t *testing.T) {
	lib := DefaultFITLibrary()
	// Paper: ≈2,190,696 h.
	near(t, "MTTF_protected", MTTFProtected(lib, PaperSpec()), 2190696, 500)
}

func TestEquation7SixTimesImprovement(t *testing.T) {
	lib := DefaultFITLibrary()
	imp := Improvement(lib, PaperSpec())
	near(t, "improvement", imp, 6.18, 0.02)
	if imp < 5.5 || imp > 6.5 {
		t.Errorf("improvement %v not ≈6", imp)
	}
}

func TestExactParallelFormulaIsLower(t *testing.T) {
	lib := DefaultFITLibrary()
	exact := MTTFProtectedExact(lib, PaperSpec())
	paper := MTTFProtected(lib, PaperSpec())
	if exact >= paper {
		t.Fatalf("exact %v should be below paper arithmetic %v", exact, paper)
	}
	// The exact 1-out-of-2 MTTF still shows a large improvement (~4.6×).
	ratio := exact / MTTFBaseline(lib, PaperSpec())
	if ratio < 4 || ratio > 5 {
		t.Errorf("exact improvement %v outside [4, 5]", ratio)
	}
}

func TestParallelMTTFProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		l1, l2 := float64(a)+1, float64(b)+1
		p := ParallelMTTFPaper(l1, l2)
		e := ParallelMTTFExact(l1, l2)
		// Both exceed the better single component; exact ≤ paper.
		best := math.Max(MTTFHours(l1), MTTFHours(l2))
		return e > best && p > e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMTTFHours(t *testing.T) {
	near(t, "MTTF(2822)", MTTFHours(2822), 354358, 1)
	if !math.IsInf(MTTFHours(0), 1) {
		t.Error("MTTF of 0 FIT should be +Inf")
	}
}

func TestStageBoundsPaper(t *testing.T) {
	b := StageBounds(5, 4)
	want := map[core.StageID][2]int{
		core.StageRC: {5, 2},
		core.StageVA: {15, 4},
		core.StageSA: {5, 2},
		core.StageXB: {2, 2},
	}
	for _, sb := range b {
		w := want[sb.Stage]
		if sb.MaxTolerated != w[0] || sb.MinToFail != w[1] {
			t.Errorf("%v: bounds (%d, %d), want %v", sb.Stage, sb.MaxTolerated, sb.MinToFail, w)
		}
	}
}

func TestSPFPaperDesignPoint(t *testing.T) {
	r := AnalyzeSPF(5, 4, 0.31)
	if r.MinToFail != 2 || r.MaxToFail != 28 {
		t.Fatalf("fault bounds (%d, %d), want (2, 28)", r.MinToFail, r.MaxToFail)
	}
	near(t, "mean faults", r.MeanFaults, 15, 1e-9)
	near(t, "SPF", r.SPF, 11.45, 0.01) // paper prints 11.4
}

func TestSPFTwoVCs(t *testing.T) {
	// Section VIII-E: with 2 VCs the SPF value drops to ≈7.
	r := AnalyzeSPF(5, 2, 0.43)
	near(t, "mean faults (2 VCs)", r.MeanFaults, 10, 1e-9)
	near(t, "SPF (2 VCs)", r.SPF, 7.0, 0.05)
}

func TestSPFGrowsWithVCs(t *testing.T) {
	// "This SPF value increases further beyond 11 if the number of VCs
	// per input is increased beyond 4."
	prev := 0.0
	for _, v := range []int{2, 4, 6, 8} {
		r := AnalyzeSPF(5, v, 0.31)
		if r.SPF <= prev {
			t.Fatalf("SPF not increasing at %d VCs: %v <= %v", v, r.SPF, prev)
		}
		prev = r.SPF
	}
}

func TestNewSPFResult(t *testing.T) {
	// BulletProof's Table III row: 52% overhead, 3.15 faults → SPF 2.07.
	r := NewSPFResult("BulletProof", 0.52, 3.15)
	near(t, "BulletProof SPF", r.SPF, 2.07, 0.01)
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestGenericTransistorModels(t *testing.T) {
	// The generic models must agree with the calibrated library at the
	// canonical sizes.
	if ArbTransistors(4) != Transistors(Arb4) || ArbTransistors(20) != Transistors(Arb20) {
		t.Error("arbiter model disagrees with library")
	}
	if MuxTransistors(5, 32) != Transistors(Mux5x1x32) || MuxTransistors(2, 1) != Transistors(Mux2x1Ctl) {
		t.Error("mux model disagrees with library")
	}
	if DemuxTransistors(2, 32) != Transistors(Demux2x32) || DemuxTransistors(3, 32) != Transistors(Demux3x32) {
		t.Error("demux model disagrees with library")
	}
	if ComparatorTransistors(6) != Transistors(Comparator6) {
		t.Error("comparator model disagrees with library")
	}
	// Monotonicity in size.
	if ArbTransistors(8) <= ArbTransistors(4) || MuxTransistors(3, 32) <= MuxTransistors(2, 32) {
		t.Error("transistor models not monotone")
	}
}

func TestSumFIT(t *testing.T) {
	lib := DefaultFITLibrary()
	inv := map[Component]int{Comparator6: 10}
	near(t, "RC via SumFIT", lib.SumFIT(inv), 117, 1e-9)
}
