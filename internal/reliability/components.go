package reliability

import "fmt"

// Component identifies a fundamental circuit block of the router pipeline
// (Table I's "FC" column plus the correction-circuitry blocks of Table II).
type Component int

// The fundamental components of the baseline pipeline and the correction
// circuitry.
const (
	// Comparator6 is a 6-bit coordinate comparator (the RC unit's
	// building block; two per RC unit for X and Y in an 8×8 mesh).
	Comparator6 Component = iota
	// Arb4 is a 4:1 round-robin arbiter.
	Arb4
	// Arb5 is a 5:1 round-robin arbiter.
	Arb5
	// Arb20 is a 20:1 round-robin arbiter (VA stage 2 in a 5-port,
	// 4-VC router).
	Arb20
	// Mux4x1 is a 1-bit 4:1 multiplexer (SA control path).
	Mux4x1
	// Mux5x1x32 is a 32-bit 5:1 multiplexer (one crossbar output).
	Mux5x1x32
	// Mux2x1x32 is a 32-bit 2:1 multiplexer (the protected crossbar's
	// per-output Pk mux).
	Mux2x1x32
	// Mux2x1Ctl is a 1-bit 2:1 multiplexer (the SA bypass mux).
	Mux2x1Ctl
	// Demux2x32 is a 32-bit 1:2 demultiplexer (protected crossbar).
	Demux2x32
	// Demux3x32 is a 32-bit 1:3 demultiplexer (protected crossbar).
	Demux3x32
	// DFFBit is one D flip-flop bit (the added state fields R2/VF/ID/SP/
	// FSP and the bypass default-winner register).
	DFFBit

	numComponents
)

// String implements fmt.Stringer.
func (c Component) String() string {
	names := [...]string{
		"6-bit comparator", "4:1 arbiter", "5:1 arbiter", "20:1 arbiter",
		"4:1 mux", "32-bit 5:1 mux", "32-bit 2:1 mux", "2:1 mux",
		"32-bit 1:2 demux", "32-bit 1:3 demux", "DFF bit",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// transistors is the FET count of each component. With the calibrated 0.1
// FIT/FET these counts reproduce the paper's component FIT values exactly
// (Comparator6 = 11.7, Arb4 = 7.4, Arb20 = 36.9 ≈ 36.7, Mux4x1 = 4.8,
// Mux5x1x32 = 204.8, DFFBit = 0.5, and the Table II correction totals).
var transistors = [numComponents]int{
	Comparator6: 117,
	Arb4:        74,
	Arb5:        93,
	Arb20:       369,
	Mux4x1:      48,
	Mux5x1x32:   2048,
	Mux2x1x32:   512,
	Mux2x1Ctl:   16,
	Demux2x32:   320,
	Demux3x32:   640,
	DFFBit:      5,
}

// Transistors returns the FET count of component c.
func Transistors(c Component) int { return transistors[c] }

// FITLibrary maps components to FIT rates under given operating
// conditions.
type FITLibrary struct {
	params TDDBParams
	duty   float64
	vdd, t float64
}

// NewFITLibrary builds a component FIT library from the TDDB parameters at
// the given duty cycle, supply voltage (V) and temperature (K). The paper
// evaluates at duty = 1 (continuous stress), 1 V, 300 K.
func NewFITLibrary(p TDDBParams, duty, vdd, t float64) *FITLibrary {
	return &FITLibrary{params: p, duty: duty, vdd: vdd, t: t}
}

// DefaultFITLibrary returns the library at the paper's operating point.
func DefaultFITLibrary() *FITLibrary {
	return NewFITLibrary(DefaultTDDBParams(), 1.0, 1.0, 300)
}

// PerFET returns the FIT contribution of one transistor.
func (l *FITLibrary) PerFET() float64 {
	return l.params.FITPerFET(l.duty, l.vdd, l.t)
}

// FIT returns the FIT rate of component c: its transistor count times the
// per-FET rate (the SOFR model applied within the component).
func (l *FITLibrary) FIT(c Component) float64 {
	return float64(transistors[c]) * l.PerFET()
}

// SumFIT applies the Sum-of-Failure-Rates model to a component inventory:
// the circuit's FIT is the sum over components of count × FIT.
func (l *FITLibrary) SumFIT(inv map[Component]int) float64 {
	total := 0.0
	for c, n := range inv {
		total += float64(n) * l.FIT(c)
	}
	return total
}
