package reliability_test

import (
	"fmt"

	"gonoc/internal/reliability"
)

// Example reproduces the paper's Section VII headline: the protected
// router's MTTF is about six times the baseline's.
func Example() {
	lib := reliability.DefaultFITLibrary()
	spec := reliability.PaperSpec()
	fmt.Printf("baseline FIT:  %.1f\n", reliability.BaselineStageFIT(lib, spec).Total())
	fmt.Printf("correction FIT: %.1f\n", reliability.CorrectionStageFIT(lib, spec).Total())
	fmt.Printf("improvement:   %.2fx\n", reliability.Improvement(lib, spec))
	// Output:
	// baseline FIT:  2822.5
	// correction FIT: 646.0
	// improvement:   6.18x
}

// ExampleAnalyzeSPF computes the proposed router's Table III row.
func ExampleAnalyzeSPF() {
	r := reliability.AnalyzeSPF(5, 4, 0.31)
	fmt.Printf("faults to failure: min %d, max %d, mean %.0f\n", r.MinToFail, r.MaxToFail, r.MeanFaults)
	fmt.Printf("SPF: %.1f\n", r.SPF)
	// Output:
	// faults to failure: min 2, max 28, mean 15
	// SPF: 11.5
}
