package reliability

// This file implements the paper's Section VII: MTTF of the baseline
// pipeline (Equation 4), of the two-component protected router
// (Equations 5–6) and the reliability improvement ratio (Equation 7).

// MTTFBaseline returns Equation 4: the MTTF in hours of the unprotected
// pipeline, 10⁹ divided by the SOFR sum of Table I.
func MTTFBaseline(lib *FITLibrary, spec RouterSpec) float64 {
	return MTTFHours(BaselineStageFIT(lib, spec).Total())
}

// ParallelMTTFPaper evaluates Equation 5 exactly as the paper prints and
// uses it:
//
//	MTTF = 1/λ₁ + 1/λ₂ + 1/(λ₁+λ₂)
//
// for a system of two components (failure rates λ₁, λ₂ in FIT) that works
// as long as either component works. Note the textbook expectation of
// max(T₁, T₂) for independent exponentials carries a MINUS on the third
// term (see ParallelMTTFExact); we reproduce the paper's arithmetic —
// which yields its headline 2,190,696 h and ≈6× — and report both.
func ParallelMTTFPaper(fit1, fit2 float64) float64 {
	return MTTFHours(fit1) + MTTFHours(fit2) + MTTFHours(fit1+fit2)
}

// ParallelMTTFExact returns E[max(T₁, T₂)] = 1/λ₁ + 1/λ₂ − 1/(λ₁+λ₂) for
// independent exponential lifetimes, the standard 1-out-of-2 parallel
// system MTTF (Gaver 1963, the paper's reference [17]).
func ParallelMTTFExact(fit1, fit2 float64) float64 {
	return MTTFHours(fit1) + MTTFHours(fit2) - MTTFHours(fit1+fit2)
}

// MTTFProtected returns Equation 6: the protected router's MTTF in hours,
// treating the baseline pipeline (λ₁ = Table I total) and the correction
// circuitry (λ₂ = Table II total) as a two-component parallel system,
// using the paper's Equation 5 arithmetic.
func MTTFProtected(lib *FITLibrary, spec RouterSpec) float64 {
	l1 := BaselineStageFIT(lib, spec).Total()
	l2 := CorrectionStageFIT(lib, spec).Total()
	return ParallelMTTFPaper(l1, l2)
}

// MTTFProtectedExact is MTTFProtected with the exact parallel-system
// formula.
func MTTFProtectedExact(lib *FITLibrary, spec RouterSpec) float64 {
	l1 := BaselineStageFIT(lib, spec).Total()
	l2 := CorrectionStageFIT(lib, spec).Total()
	return ParallelMTTFExact(l1, l2)
}

// Improvement returns Equation 7: MTTF_protected / MTTF_baseline (≈6 at
// the paper's design point).
func Improvement(lib *FITLibrary, spec RouterSpec) float64 {
	return MTTFProtected(lib, spec) / MTTFBaseline(lib, spec)
}
