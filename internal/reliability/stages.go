package reliability

import (
	"fmt"
	"math"

	"gonoc/internal/core"
)

// RouterSpec describes the router whose pipeline FIT is being analysed.
type RouterSpec struct {
	// Ports is the router radix (5 for a mesh).
	Ports int
	// VCs is the number of virtual channels per input port.
	VCs int
	// MeshNodes sizes the RC comparators (an 8×8 mesh needs 6-bit
	// destination comparison).
	MeshNodes int
	// FlitBits is the datapath width (32 in the paper).
	FlitBits int
}

// PaperSpec returns the paper's evaluation point: a 5×5 router with 4 VCs
// in an 8×8 mesh with 32-bit flits.
func PaperSpec() RouterSpec {
	return RouterSpec{Ports: 5, VCs: 4, MeshNodes: 64, FlitBits: 32}
}

// The generic transistor-count models below extrapolate the calibrated
// component library to arbitrary sizes. At the paper's canonical sizes
// they reproduce the library exactly:
//
//	arbiter n:1       ≈ 18.5·n FETs      (74 @ 4:1, 93 @ 5:1, 369 @ 20:1)
//	mux n:1, w bits   = 16·w·(n−1) FETs  (2048 @ 5:1×32, 48 @ 4:1×1)
//	demux 1:n, w bits = 10·w·(n−1) FETs  (320 @ 1:2×32, 640 @ 1:3×32)
//	comparator b bits ≈ 19.5·b FETs      (117 @ 6 bits)
//	DFF               = 5 FETs per bit

// ArbTransistors returns the FET count of an n:1 round-robin arbiter.
func ArbTransistors(n int) int {
	switch n {
	case 4:
		return Transistors(Arb4)
	case 5:
		return Transistors(Arb5)
	case 20:
		return Transistors(Arb20)
	}
	return int(math.Round(18.5 * float64(n)))
}

// MuxTransistors returns the FET count of an n:1 multiplexer of the given
// bit width.
func MuxTransistors(n, width int) int { return 16 * width * (n - 1) }

// DemuxTransistors returns the FET count of a 1:n demultiplexer of the
// given bit width.
func DemuxTransistors(n, width int) int { return 10 * width * (n - 1) }

// ComparatorTransistors returns the FET count of a b-bit comparator.
func ComparatorTransistors(bits int) int {
	if bits == 6 {
		return Transistors(Comparator6)
	}
	return int(math.Round(19.5 * float64(bits)))
}

// DFFTransistors returns the FET count of a b-bit D flip-flop register.
func DFFTransistors(bits int) int { return Transistors(DFFBit) * bits }

// destBits returns the comparator width needed to compare destinations in
// a mesh of n nodes.
func destBits(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// log2ceil returns ceil(log2(n)) with a minimum of 1 bit.
func log2ceil(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}

// StageFIT holds per-pipeline-stage FIT rates (failures per 10⁹ hours).
type StageFIT struct {
	RC, VA, SA, XB float64
}

// Total returns the SOFR sum across the four stages.
func (s StageFIT) Total() float64 { return s.RC + s.VA + s.SA + s.XB }

// Stage returns the FIT of one stage by ID.
func (s StageFIT) Stage(id core.StageID) float64 {
	switch id {
	case core.StageRC:
		return s.RC
	case core.StageVA:
		return s.VA
	case core.StageSA:
		return s.SA
	case core.StageXB:
		return s.XB
	}
	panic(fmt.Sprintf("reliability: unknown stage %v", id))
}

// BaselineStageFIT computes Table I: the FIT of each baseline pipeline
// stage under the SOFR model.
//
//	RC: 2 comparators per input port
//	VA: P·V·P stage-1 V:1 arbiters + P·V stage-2 (P·V):1 arbiters
//	SA: P² V:1 control muxes + P stage-1 V:1 arbiters + P stage-2 P:1
//	    arbiters
//	XB: P flit-wide P:1 multiplexers
func BaselineStageFIT(lib *FITLibrary, spec RouterSpec) StageFIT {
	per := lib.PerFET()
	fit := func(fets int) float64 { return float64(fets) * per }
	p, v := spec.Ports, spec.VCs
	cmp := ComparatorTransistors(destBits(spec.MeshNodes))
	return StageFIT{
		RC: fit(2 * p * cmp),
		VA: fit(p*v*p*ArbTransistors(v)) + fit(p*v*ArbTransistors(p*v)),
		SA: fit(p*p*MuxTransistors(v, 1)) + fit(p*ArbTransistors(v)) + fit(p*ArbTransistors(p)),
		XB: fit(p * MuxTransistors(p, spec.FlitBits)),
	}
}

// CorrectionStageFIT computes Table II: the FIT of the correction
// circuitry added to each stage.
//
//	RC: a duplicate RC unit per port (2·P comparators)
//	VA: per input VC, the R2 (log₂P bits), VF (1 bit) and ID (log₂V bits)
//	    state fields
//	SA: P bypass 2:1 muxes + P default-winner registers (log₂V bits) +
//	    per input VC the SP (log₂P bits) and FSP (1 bit) fields
//	XB: P flit-wide 2:1 output muxes + (P−3) 1:2 demuxes + one extra 1:2
//	    and one 1:3 demux (for P = 5: three 1:2 and one 1:3, Figure 6)
func CorrectionStageFIT(lib *FITLibrary, spec RouterSpec) StageFIT {
	per := lib.PerFET()
	fit := func(fets int) float64 { return float64(fets) * per }
	p, v := spec.Ports, spec.VCs
	cmp := ComparatorTransistors(destBits(spec.MeshNodes))
	portBits := log2ceil(p)
	vcBits := log2ceil(v)
	vaBits := p * v * (portBits + 1 + vcBits)
	saBits := p*vcBits + p*v*(portBits+1)
	return StageFIT{
		RC: fit(2 * p * cmp),
		VA: fit(DFFTransistors(vaBits)),
		SA: fit(p*MuxTransistors(2, 1)) + fit(DFFTransistors(saBits)),
		XB: fit(p*MuxTransistors(2, spec.FlitBits)) +
			fit((p-2)*DemuxTransistors(2, spec.FlitBits)) +
			fit(DemuxTransistors(3, spec.FlitBits)),
	}
}
