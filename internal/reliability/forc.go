// Package reliability implements the paper's reliability methodology:
// the FORC (Failure-in-time Of a Reference Circuit) TDDB model of Shin et
// al. (Equations 2–3), a calibrated component FIT library, the
// Sum-of-Failure-Rates composition (Tables I and II), MTTF analysis
// (Equations 1 and 4–7) and the Silicon Protection Factor comparison
// (Section VIII, Table III).
package reliability

import "math"

// Boltzmann is the Boltzmann constant in eV/K.
const Boltzmann = 8.617385e-5

// TDDBParams are the fitting parameters of the time-dependent dielectric
// breakdown FORC model (Equation 2), taken from the experimental fits of
// Wu et al. as tabulated by Srinivasan et al., "The case for lifetime
// reliability-aware microprocessors" (ISCA 2004).
type TDDBParams struct {
	// A is the normalization constant A_TDDB. Its absolute value depends
	// on the (unpublished) reference-circuit definition; use Calibrate to
	// fix it against a known FIT-per-FET operating point.
	A float64
	// VoltageExpA and VoltageExpB are the a and b parameters of the
	// voltage acceleration term Vdd^(a − b·T).
	VoltageExpA, VoltageExpB float64
	// X, Y, Z parameterize the temperature activation term
	// exp(−(X + Y/T + Z·T) / kT), in eV, eV·K and eV/K.
	X, Y, Z float64
}

// DefaultTDDBParams returns the Srinivasan et al. fit used by the paper,
// calibrated so that one FET at Vdd = 1 V, T = 300 K and 100% duty cycle
// contributes 0.1 FIT. That calibration makes the component FIT values of
// Tables I and II come out exactly (e.g. a 117-transistor 6-bit comparator
// at 11.7 FIT).
func DefaultTDDBParams() TDDBParams {
	p := TDDBParams{
		VoltageExpA: 78,
		VoltageExpB: 0.081,
		X:           0.759,    // eV
		Y:           -66.8,    // eV·K
		Z:           -8.37e-4, // eV/K
	}
	p.A = 1 // placeholder; calibrate below
	p = p.Calibrate(0.1, 1.0, 300)
	return p
}

// FORC returns the failures-in-time of the reference circuit (Equation 2)
// at supply voltage vdd (volts) and temperature t (kelvin):
//
//	FORC_TDDB = (10⁹ / A) · Vdd^(a−b·T) · e^(−(X + Y/T + Z·T)/kT)
func (p TDDBParams) FORC(vdd, t float64) float64 {
	v := math.Pow(vdd, p.VoltageExpA-p.VoltageExpB*t)
	act := math.Exp(-(p.X + p.Y/t + p.Z*t) / (Boltzmann * t))
	return 1e9 / p.A * v * act
}

// FITPerFET returns the FIT contribution of a single field-effect
// transistor (Equation 3): duty · FORC, where duty is the fraction of time
// the device is under stress.
func (p TDDBParams) FITPerFET(duty, vdd, t float64) float64 {
	return duty * p.FORC(vdd, t)
}

// Calibrate returns a copy of p with A chosen so that FITPerFET(1.0, vdd,
// t) equals target. The paper's reference point is 0.1 FIT/FET at 1 V and
// 300 K.
func (p TDDBParams) Calibrate(target, vdd, t float64) TDDBParams {
	p.A = 1
	raw := p.FITPerFET(1.0, vdd, t)
	p.A = raw / target
	return p
}

// MTTFHours converts a FIT rate (failures per 10⁹ hours) to mean time to
// failure in hours (Equation 1). It returns +Inf for a zero rate.
func MTTFHours(fit float64) float64 {
	if fit == 0 {
		return math.Inf(1)
	}
	return 1e9 / fit
}
