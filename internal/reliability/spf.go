package reliability

import (
	"fmt"

	"gonoc/internal/core"
)

// This file implements Section VIII: the Silicon Protection Factor
// analysis. SPF is the mean number of faults required to cause router
// failure divided by the area overhead factor of the correction circuitry;
// higher is better.

// StageFaultBounds gives, for one pipeline stage, the paper's theoretical
// fault-tolerance bounds: the maximum number of faults the stage's
// mechanism can absorb and the minimum number that defeats it.
type StageFaultBounds struct {
	Stage core.StageID
	// MaxTolerated is the largest fault count the stage can survive.
	MaxTolerated int
	// MinToFail is the smallest fault count that can kill the stage.
	MinToFail int
}

// StageBounds returns the Section VIII per-stage analysis for a router
// with the given radix and VC count:
//
//	RC: one duplicate per port → tolerates P, fails with 2 (both copies
//	    of one port).
//	VA: each VC can borrow from V−1 siblings → tolerates (V−1)·P, fails
//	    with V (every arbiter set of one port).
//	SA: one bypass per port → tolerates P, fails with 2 (arbiter plus
//	    bypass of one port).
//	XB: exactly 2 simultaneous mux faults are tolerable (e.g. M2 and M4
//	    in Figure 6), and 2 faults on one output (primary + secondary)
//	    cause failure.
func StageBounds(ports, vcs int) []StageFaultBounds {
	return []StageFaultBounds{
		{Stage: core.StageRC, MaxTolerated: ports, MinToFail: 2},
		{Stage: core.StageVA, MaxTolerated: (vcs - 1) * ports, MinToFail: vcs},
		{Stage: core.StageSA, MaxTolerated: ports, MinToFail: 2},
		{Stage: core.StageXB, MaxTolerated: 2, MinToFail: 2},
	}
}

// SPFResult is a complete SPF analysis of one router design.
type SPFResult struct {
	// Design names the analysed router.
	Design string
	// AreaOverhead is the fractional area cost of the correction
	// circuitry (0.31 for the proposed router).
	AreaOverhead float64
	// MinToFail is the smallest fault count that can cause failure.
	MinToFail int
	// MaxToFail is the fault count guaranteed to cause failure: one more
	// than the total tolerable faults.
	MaxToFail int
	// MeanFaults is the paper's estimator: the average of MinToFail and
	// MaxToFail.
	MeanFaults float64
	// SPF is MeanFaults / (1 + AreaOverhead).
	SPF float64
}

// String implements fmt.Stringer.
func (r SPFResult) String() string {
	return fmt.Sprintf("%s: area +%.0f%%, faults to failure %.2f, SPF %.2f",
		r.Design, r.AreaOverhead*100, r.MeanFaults, r.SPF)
}

// AnalyzeSPF performs the Section VIII-E calculation for the proposed
// router: per-stage bounds are combined (min over stages for the floor,
// sum of tolerated faults plus one for the ceiling), the mean is their
// average, and SPF divides by the area factor. For the paper's 5-port,
// 4-VC router at 31% overhead this yields mean 15 and SPF ≈ 11.4; with 2
// VCs the mean drops to 10 (SPF ≈ 7).
func AnalyzeSPF(ports, vcs int, areaOverhead float64) SPFResult {
	bounds := StageBounds(ports, vcs)
	minToFail := bounds[0].MinToFail
	tolerated := 0
	for _, b := range bounds {
		if b.MinToFail < minToFail {
			minToFail = b.MinToFail
		}
		tolerated += b.MaxTolerated
	}
	maxToFail := tolerated + 1
	mean := float64(minToFail+maxToFail) / 2
	return SPFResult{
		Design:       "Proposed Router",
		AreaOverhead: areaOverhead,
		MinToFail:    minToFail,
		MaxToFail:    maxToFail,
		MeanFaults:   mean,
		SPF:          mean / (1 + areaOverhead),
	}
}

// NewSPFResult builds an SPFResult from externally supplied numbers (used
// for the Table III comparison entries, whose fault counts come from the
// cited papers' own experiments).
func NewSPFResult(design string, areaOverhead, meanFaults float64) SPFResult {
	return SPFResult{
		Design:       design,
		AreaOverhead: areaOverhead,
		MeanFaults:   meanFaults,
		SPF:          meanFaults / (1 + areaOverhead),
	}
}
