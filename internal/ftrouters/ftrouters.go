// Package ftrouters models the fault-tolerant router designs the paper
// compares against in Section VIII (Table III): BulletProof
// (Constantinides et al., HPCA 2006), Vicis (Fick et al., DAC 2009) and
// RoCo (Kim et al., ISCA 2006), alongside the proposed router.
//
// Each design is modelled at the granularity its fault-tolerance
// mechanism operates on — redundant module groups for BulletProof's NMR,
// per-unit ECC plus a crossbar bypass bus for Vicis, row/column halves
// for RoCo — with a Functional predicate mirroring the published failure
// condition. Site counts are calibrated so that Monte-Carlo
// faults-to-failure reproduces each design's published Table III number
// (3.15, 9.3 and 5.5 faults respectively); the original numbers come from
// those papers' own fault-injection experiments, which we cannot rerun,
// so the calibration target is the published mean itself.
package ftrouters

import (
	"math"

	"gonoc/internal/rng"
	"gonoc/internal/stats"
)

// Design describes one fault-tolerant router design for campaign and SPF
// purposes.
type Design interface {
	// Name returns the design's name as used in Table III.
	Name() string
	// AreaOverhead returns the fractional area cost of the design's
	// protection (Table III's area column).
	AreaOverhead() float64
	// NumSites returns the number of distinct injectable fault sites.
	NumSites() int
	// NewInstance returns a fresh, fault-free instance.
	NewInstance() Instance
}

// Instance is one copy of a design accumulating faults.
type Instance interface {
	// Inject makes site faulty (idempotent).
	Inject(site int)
	// Functional reports whether the design still routes packets.
	Functional() bool
}

// CampaignResult summarizes a Monte-Carlo faults-to-failure campaign over
// a Design.
type CampaignResult struct {
	Design string
	Trials int
	Mean   float64
	Min    int
	Max    int
	// P50, P95 and P99 are nearest-rank percentiles of the per-trial
	// fault counts.
	P50, P95, P99 int
}

// FaultsToFailure injects uniformly ordered random faults into fresh
// instances until failure, over the given number of trials.
func FaultsToFailure(d Design, trials int, seed uint64) CampaignResult {
	return FaultsToFailureObserved(d, trials, seed, nil)
}

// FaultsToFailureObserved is FaultsToFailure with a per-trial progress
// callback (nil to disable): onTrial(done, total) runs after each trial,
// for live campaign telemetry. The callback does not influence the
// result.
func FaultsToFailureObserved(d Design, trials int, seed uint64, onTrial func(done, total int)) CampaignResult {
	r := rng.New(seed)
	res := CampaignResult{Design: d.Name(), Trials: trials, Min: math.MaxInt}
	counts := make([]int, 0, trials)
	sum := 0
	for t := 0; t < trials; t++ {
		inst := d.NewInstance()
		order := r.Perm(d.NumSites())
		count := 0
		for _, s := range order {
			inst.Inject(s)
			count++
			if !inst.Functional() {
				break
			}
		}
		sum += count
		counts = append(counts, count)
		if count < res.Min {
			res.Min = count
		}
		if count > res.Max {
			res.Max = count
		}
		if onTrial != nil {
			onTrial(t+1, trials)
		}
	}
	res.Mean = float64(sum) / float64(trials)
	res.P50 = stats.IntPercentile(counts, 50)
	res.P95 = stats.IntPercentile(counts, 95)
	res.P99 = stats.IntPercentile(counts, 99)
	return res
}

// --- BulletProof ---

// BulletProof models the NMR-based defect-tolerant switch: the router is
// decomposed into module groups, each backed by a redundant copy; the
// switch fails when both copies of any group are defective. We use the
// design point the paper compares against (≈52% area overhead), whose
// published mean faults-to-failure is 3.15 — reproduced by three
// dual-redundant groups.
type BulletProof struct {
	// Groups is the number of dual-redundant module groups.
	Groups int
}

// NewBulletProof returns the Table III design point.
func NewBulletProof() *BulletProof { return &BulletProof{Groups: 3} }

// Name implements Design.
func (b *BulletProof) Name() string { return "BulletProof" }

// AreaOverhead implements Design (Table III: 52%).
func (b *BulletProof) AreaOverhead() float64 { return 0.52 }

// NumSites implements Design: two copies per group.
func (b *BulletProof) NumSites() int { return 2 * b.Groups }

// NewInstance implements Design.
func (b *BulletProof) NewInstance() Instance {
	return &pairInstance{pairs: b.Groups, hits: make([]int, b.Groups)}
}

// pairInstance fails when any pair accumulates two faults.
type pairInstance struct {
	pairs int
	hits  []int
}

func (p *pairInstance) Inject(site int) { p.hits[site%p.pairs]++ }

func (p *pairInstance) Functional() bool {
	for _, h := range p.hits {
		if h >= 2 {
			return false
		}
	}
	return true
}

// --- Vicis ---

// Vicis models the DAC 2009 design: fine-grained ECC on the datapath
// units (each unit corrects its first hard fault and dies on the second),
// a crossbar bypass bus covering any single crossbar mux fault, and input
// port swapping. Its published mean faults-to-failure is 9.3 at 42% area
// overhead; the ECC unit count is calibrated to that mean.
type Vicis struct {
	// ECCUnits is the number of independently ECC-protected datapath
	// units.
	ECCUnits int
	// XBMuxes is the number of crossbar muxes covered by one bypass bus.
	XBMuxes int
}

// NewVicis returns the Table III design point.
func NewVicis() *Vicis { return &Vicis{ECCUnits: 30, XBMuxes: 5} }

// Name implements Design.
func (v *Vicis) Name() string { return "Vicis" }

// AreaOverhead implements Design (Table III: 42%).
func (v *Vicis) AreaOverhead() float64 { return 0.42 }

// NumSites implements Design: two per ECC unit (datapath + its check
// bits), the crossbar muxes and the bypass bus.
func (v *Vicis) NumSites() int { return 2*v.ECCUnits + v.XBMuxes + 1 }

// NewInstance implements Design.
func (v *Vicis) NewInstance() Instance {
	return &vicisInstance{cfg: *v, ecc: make([]int, v.ECCUnits)}
}

type vicisInstance struct {
	cfg      Vicis
	ecc      []int
	xbFaults int
	busFault bool
}

func (vi *vicisInstance) Inject(site int) {
	switch {
	case site < 2*vi.cfg.ECCUnits:
		vi.ecc[site%vi.cfg.ECCUnits]++
	case site < 2*vi.cfg.ECCUnits+vi.cfg.XBMuxes:
		vi.xbFaults++
	default:
		vi.busFault = true
	}
}

func (vi *vicisInstance) Functional() bool {
	for _, h := range vi.ecc {
		if h >= 2 {
			return false // ECC exhausted on one unit
		}
	}
	// The bypass bus covers exactly one mux fault; a second mux fault, or
	// a mux fault with a broken bus, is fatal.
	if vi.xbFaults >= 2 {
		return false
	}
	if vi.xbFaults == 1 && vi.busFault {
		return false
	}
	return true
}

// --- RoCo ---

// RoCo models the row/column decomposed router: two independent halves
// (row and column) that continue in degraded mode when the other fails.
// Within each half, the routing logic is covered by look-ahead routing
// and the switch arbiter by shared VA arbiters, so each half absorbs a
// few faults before dying; total failure requires both halves dead. The
// published deduction is 5.5 mean faults to failure; area overhead was
// not reported (the paper bounds RoCo's SPF above by 5.5).
type RoCo struct {
	// TolerantPerHalf is how many protected units each half has (each
	// absorbs one fault, second fault in a unit kills the half).
	TolerantPerHalf int
	// FragilePerHalf is how many unprotected units each half has (one
	// fault kills the half).
	FragilePerHalf int
}

// NewRoCo returns the Table III design point (calibrated to 5.5).
func NewRoCo() *RoCo { return &RoCo{TolerantPerHalf: 2, FragilePerHalf: 1} }

// Name implements Design.
func (rc *RoCo) Name() string { return "RoCo" }

// AreaOverhead implements Design. The paper lists N/A; it uses 0 to bound
// SPF from above (SPF < 5.5).
func (rc *RoCo) AreaOverhead() float64 { return 0 }

// NumSites implements Design.
func (rc *RoCo) NumSites() int { return 2 * (2*rc.TolerantPerHalf + rc.FragilePerHalf) }

// NewInstance implements Design.
func (rc *RoCo) NewInstance() Instance {
	return &rocoInstance{
		cfg: *rc,
		tol: [2][]int{make([]int, rc.TolerantPerHalf), make([]int, rc.TolerantPerHalf)},
	}
}

type rocoInstance struct {
	cfg     RoCo
	tol     [2][]int
	fragile [2]bool
}

func (ri *rocoInstance) Inject(site int) {
	perHalf := 2*ri.cfg.TolerantPerHalf + ri.cfg.FragilePerHalf
	half := site / perHalf
	idx := site % perHalf
	if idx < 2*ri.cfg.TolerantPerHalf {
		ri.tol[half][idx%ri.cfg.TolerantPerHalf]++
	} else {
		ri.fragile[half] = true
	}
}

// halfDead reports whether one half can no longer operate.
func (ri *rocoInstance) halfDead(h int) bool {
	if ri.fragile[h] {
		return true
	}
	for _, c := range ri.tol[h] {
		if c >= 2 {
			return true
		}
	}
	return false
}

// Functional implements Instance: RoCo degrades gracefully and only fails
// once both the row and the column component are dead.
func (ri *rocoInstance) Functional() bool {
	return !ri.halfDead(0) || !ri.halfDead(1)
}
