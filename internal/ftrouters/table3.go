package ftrouters

import "gonoc/internal/reliability"

// TableIII returns the paper's Table III: the SPF comparison of the
// proposed router against BulletProof, Vicis and RoCo. The comparator
// rows use the fault counts published by (or deduced from) the respective
// papers; the proposed-router row is computed from the Section VIII
// analysis at the given area overhead (0.31 from the area model).
//
// Note RoCo's area overhead was not reported ("N/A"); the paper bounds
// its SPF above by the raw fault count (SPF < 5.5), which dividing by a
// zero overhead reproduces.
func TableIII(proposedAreaOverhead float64) []reliability.SPFResult {
	proposed := reliability.AnalyzeSPF(5, 4, proposedAreaOverhead)
	return []reliability.SPFResult{
		reliability.NewSPFResult("BulletProof", 0.52, 3.15),
		reliability.NewSPFResult("Vicis", 0.42, 9.3),
		reliability.NewSPFResult("RoCo", 0, 5.5),
		proposed,
	}
}
