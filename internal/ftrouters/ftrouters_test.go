package ftrouters

import (
	"math"
	"testing"
)

func TestBulletProofCalibration(t *testing.T) {
	// Published: mean 3.15 faults to failure.
	res := FaultsToFailure(NewBulletProof(), 20000, 1)
	if math.Abs(res.Mean-3.15) > 0.15 {
		t.Errorf("BulletProof mean = %v, want ≈3.15", res.Mean)
	}
	if res.Min < 2 {
		t.Errorf("BulletProof died after %d fault(s); NMR must survive one", res.Min)
	}
}

func TestVicisCalibration(t *testing.T) {
	// Published: mean 9.3 faults to failure.
	res := FaultsToFailure(NewVicis(), 20000, 2)
	if math.Abs(res.Mean-9.3) > 0.45 {
		t.Errorf("Vicis mean = %v, want ≈9.3", res.Mean)
	}
	if res.Min < 2 {
		t.Errorf("Vicis died after %d fault(s); ECC must absorb one", res.Min)
	}
}

func TestRoCoCalibration(t *testing.T) {
	// Deduced in the paper: mean 5.5 faults to failure.
	res := FaultsToFailure(NewRoCo(), 20000, 3)
	if math.Abs(res.Mean-5.5) > 0.4 {
		t.Errorf("RoCo mean = %v, want ≈5.5", res.Mean)
	}
	// Graceful degradation: one half dying never kills RoCo.
	if res.Min < 2 {
		t.Errorf("RoCo died after %d fault(s)", res.Min)
	}
}

func TestRoCoGracefulDegradation(t *testing.T) {
	// Kill the entire row half: the column half keeps the router alive.
	rc := NewRoCo()
	inst := rc.NewInstance()
	perHalf := rc.NumSites() / 2
	for s := 0; s < perHalf; s++ {
		inst.Inject(s)
	}
	if !inst.Functional() {
		t.Fatal("RoCo failed with only the row half dead")
	}
	inst.Inject(perHalf) // first fragile hit in column half? site perHalf is tolerant
	// Kill the column half outright via its fragile unit.
	inst.Inject(2*perHalf - 1)
	if inst.Functional() {
		t.Fatal("RoCo functional with both halves dead")
	}
}

func TestVicisMechanisms(t *testing.T) {
	v := NewVicis()
	inst := v.NewInstance().(*vicisInstance)
	// One fault in every ECC unit: still functional.
	for u := 0; u < v.ECCUnits; u++ {
		inst.Inject(u)
	}
	if !inst.Functional() {
		t.Fatal("Vicis failed with one correctable fault per ECC unit")
	}
	// One crossbar mux fault: covered by the bypass bus.
	inst.Inject(2 * v.ECCUnits)
	if !inst.Functional() {
		t.Fatal("Vicis failed on a single crossbar fault")
	}
	// Second crossbar mux fault: fatal.
	inst.Inject(2*v.ECCUnits + 1)
	if inst.Functional() {
		t.Fatal("Vicis survived two crossbar faults")
	}
}

func TestVicisBusFault(t *testing.T) {
	v := NewVicis()
	inst := v.NewInstance()
	inst.Inject(v.NumSites() - 1) // bus alone: harmless
	if !inst.Functional() {
		t.Fatal("Vicis failed on bus fault alone")
	}
	inst.Inject(2 * v.ECCUnits) // mux fault with broken bus: fatal
	if inst.Functional() {
		t.Fatal("Vicis survived mux fault with broken bypass bus")
	}
}

func TestBulletProofPairSemantics(t *testing.T) {
	b := NewBulletProof()
	inst := b.NewInstance()
	// One fault per group: functional.
	for g := 0; g < b.Groups; g++ {
		inst.Inject(g)
	}
	if !inst.Functional() {
		t.Fatal("BulletProof failed with one fault per group")
	}
	inst.Inject(b.Groups) // second copy of group 0
	if inst.Functional() {
		t.Fatal("BulletProof survived a dead group")
	}
}

func TestTableIII(t *testing.T) {
	rows := TableIII(0.31)
	if len(rows) != 4 {
		t.Fatalf("Table III has %d rows", len(rows))
	}
	want := map[string]float64{
		"BulletProof":     2.07,
		"Vicis":           6.55,
		"RoCo":            5.5,
		"Proposed Router": 11.45,
	}
	spf := map[string]float64{}
	for _, r := range rows {
		spf[r.Design] = r.SPF
	}
	for name, w := range want {
		if math.Abs(spf[name]-w) > 0.05 {
			t.Errorf("%s SPF = %v, want ≈%v", name, spf[name], w)
		}
	}
	// The headline comparison: the proposed router beats every
	// comparator.
	for name, v := range spf {
		if name != "Proposed Router" && v >= spf["Proposed Router"] {
			t.Errorf("%s SPF %v >= proposed %v", name, v, spf["Proposed Router"])
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := FaultsToFailure(NewVicis(), 500, 9)
	b := FaultsToFailure(NewVicis(), 500, 9)
	if a != b {
		t.Fatalf("campaign not deterministic")
	}
}

// TestCampaignPercentilesAndProgress checks the percentile fields are
// ordered and bounded by the extremes, and that the progress callback
// fires once per trial without perturbing the result.
func TestCampaignPercentilesAndProgress(t *testing.T) {
	plain := FaultsToFailure(NewVicis(), 400, 9)
	var calls, lastDone, lastTotal int
	observed := FaultsToFailureObserved(NewVicis(), 400, 9, func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	})
	if plain != observed {
		t.Fatalf("progress callback changed the result: %+v vs %+v", plain, observed)
	}
	if calls != 400 || lastDone != 400 || lastTotal != 400 {
		t.Errorf("callback fired %d times, last (%d/%d), want 400 (400/400)", calls, lastDone, lastTotal)
	}
	if plain.P50 < plain.Min || plain.P99 > plain.Max || plain.P50 > plain.P95 || plain.P95 > plain.P99 {
		t.Errorf("percentiles inconsistent: %+v", plain)
	}
	if plain.P50 == 0 {
		t.Errorf("p50 = 0 over %d trials", plain.Trials)
	}
}
