package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/traffic"
)

func testNet(o *obs.Observer, workers int) *noc.Network {
	rc := router.DefaultConfig()
	rc.FaultTolerant = true
	rc.Obs = o
	cfg := noc.Config{Width: 4, Height: 4, Router: rc, Warmup: 100, Workers: workers}
	src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.6), 3)
	return noc.MustNew(cfg, src)
}

func get(t *testing.T, h http.Handler, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	return rec.Body.String()
}

func TestPrometheusExposition(t *testing.T) {
	o := obs.New(0)
	n := testNet(o, 1)
	defer n.Close()
	srv := NewServer(o.Metrics)
	Attach(srv, n, 256)
	n.Run(2000)
	srv.Publish(n.Stats().Snapshot())
	srv.SetCycle(n.Now())
	srv.SetProgress("campaign", 3, 10)

	body := get(t, srv.Handler(), "/metrics")
	for _, want := range []string{
		"# TYPE gonoc_cycle gauge",
		"gonoc_cycle 2000",
		"gonoc_packets_created_total",
		"gonoc_packets_in_flight",
		"# TYPE gonoc_packet_latency_cycles histogram",
		`gonoc_packet_latency_cycles_bucket{class="all",le="+Inf"}`,
		`gonoc_packet_latency_cycles_count{class="request"}`,
		"# TYPE gonoc_network_latency_cycles histogram",
		"# TYPE gonoc_rc_computes_total counter",
		`gonoc_sa_grants_total{router="5",port="0"}`,
		"# TYPE gonoc_ni_queue_depth gauge",
		`gonoc_progress_done{task="campaign"} 3`,
		`gonoc_progress_total{task="campaign"} 10`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	checkPrometheusSyntax(t, strings.NewReader(body))

	// The histogram's +Inf bucket must equal its _count, and cumulative
	// bucket counts must be monotonic.
	var prev uint64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `gonoc_network_latency_cycles_bucket{le="`) {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("unparseable bucket line %q", line)
			}
			if v < prev {
				t.Fatalf("bucket counts not monotonic at %q", line)
			}
			prev = v
		}
	}
}

// checkPrometheusSyntax validates the exposition line shapes: comments
// are HELP/TYPE, every sample line is `name[{labels}] value`, and metric
// names are legal.
func checkPrometheusSyntax(t *testing.T, r io.Reader) {
	t.Helper()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("line %d: malformed comment %q", lineno, line)
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp <= 0 {
			t.Errorf("line %d: no sample value in %q", lineno, line)
			continue
		}
		series := line[:sp]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Errorf("line %d: unterminated label set in %q", lineno, line)
			}
			name = series[:i]
		}
		for j, c := range name {
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(j > 0 && c >= '0' && c <= '9')
			if !ok {
				t.Errorf("line %d: illegal metric name %q", lineno, name)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStatusJSON(t *testing.T) {
	o := obs.New(0)
	n := testNet(o, 1)
	defer n.Close()
	srv := NewServer(o.Metrics)
	n.Run(1500)
	srv.Publish(n.Stats().Snapshot())
	srv.SetCycle(n.Now())
	srv.SetProgress("suite", 1, 4)

	var st Status
	if err := json.Unmarshal([]byte(get(t, srv.Handler(), "/status")), &st); err != nil {
		t.Fatalf("status not valid JSON: %v", err)
	}
	if st.Cycle != 1500 || st.Stats == nil {
		t.Fatalf("status = cycle %d, stats %v", st.Cycle, st.Stats != nil)
	}
	if st.Stats.Created == 0 || st.Stats.Created != st.Stats.Ejected+st.Stats.InFlight {
		t.Errorf("inconsistent packet accounting: %+v", st.Stats)
	}
	if st.Progress["suite"].Total != 4 {
		t.Errorf("progress = %+v", st.Progress)
	}
	if st.Stats.Measured > 0 && st.Stats.Latency.P99 < st.Stats.Latency.P50 {
		t.Errorf("quantiles inverted: %+v", st.Stats.Latency)
	}
}

// TestScrapeWhileSteppingParallel is the race-safety acceptance test:
// scrape /metrics and /status continuously from several goroutines while
// the network steps with a parallel worker pool. Run under -race (CI
// does), this pins that live scraping never touches unsynchronized
// simulation state.
func TestScrapeWhileSteppingParallel(t *testing.T) {
	o := obs.New(1 << 12)
	o.Windows = obs.NewWindows(16, 5, 4, 256, 4)
	o.Flight = obs.NewFlightRecorder(16, 64)
	n := testNet(o, 8)
	defer n.Close()
	srv := NewServer(o.Metrics)
	Attach(srv, n, 64)
	h := srv.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/heatmap?top=8", nil))
			}
		}()
	}
	n.Run(3000)
	close(stop)
	wg.Wait()

	body := get(t, h, "/metrics")
	if !strings.Contains(body, "gonoc_packet_latency_cycles_bucket") {
		t.Error("no latency buckets after parallel run")
	}
}

// TestHeatmapEndpoint is the /heatmap scrape smoke test: the endpoint
// serves the windowed link heatmap as JSON, honors ?top=N, and rejects
// malformed values.
func TestHeatmapEndpoint(t *testing.T) {
	o := obs.New(0)
	o.Windows = obs.NewWindows(16, 5, 4, 256, 4)
	n := testNet(o, 1)
	defer n.Close()
	srv := NewServer(o.Metrics)
	flush := Attach(srv, n, 256)
	n.Run(2000)
	flush()

	var hm Heatmap
	if err := json.Unmarshal([]byte(get(t, srv.Handler(), "/heatmap")), &hm); err != nil {
		t.Fatalf("heatmap not valid JSON: %v", err)
	}
	if hm.Cycle != 2000 || hm.BucketCycles != 256 {
		t.Fatalf("heatmap header = cycle %d, bucket %d; want 2000, 256", hm.Cycle, hm.BucketCycles)
	}
	if hm.WindowCycles == 0 || hm.WindowCycles > 4*256 {
		t.Fatalf("window covers %d cycles, want (0, 1024]", hm.WindowCycles)
	}
	if len(hm.StallKinds) != obs.NumStallKinds {
		t.Fatalf("%d stall kinds, want %d", len(hm.StallKinds), obs.NumStallKinds)
	}
	// The full document carries every (router, port) pair, busy or idle.
	if len(hm.Links) != 16*5 {
		t.Fatalf("full heatmap names %d links, want 80", len(hm.Links))
	}
	var busy int
	for _, l := range hm.Links {
		if l.Flits > 0 {
			busy++
		}
		var perVC uint64
		for _, v := range l.PerVC {
			perVC += v
		}
		if perVC != l.Flits {
			t.Fatalf("link %d/%d: per-VC sum %d != flits %d", l.Node, l.Port, perVC, l.Flits)
		}
	}
	if busy == 0 {
		t.Fatal("no link carried traffic after a loaded run")
	}

	var top Heatmap
	if err := json.Unmarshal([]byte(get(t, srv.Handler(), "/heatmap?top=2")), &top); err != nil {
		t.Fatal(err)
	}
	if len(top.Links) != 2 {
		t.Fatalf("top=2 returned %d links", len(top.Links))
	}
	for _, l := range top.Links {
		if l.Flits == 0 {
			t.Fatalf("top-N kept idle link %d/%d", l.Node, l.Port)
		}
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/heatmap?top=zebra", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad top value returned %d, want 400", rec.Code)
	}

	// Without windows attached the endpoint degrades to an empty document
	// rather than a scrape error.
	bare := NewServer(nil)
	var empty Heatmap
	if err := json.Unmarshal([]byte(get(t, bare.Handler(), "/heatmap")), &empty); err != nil {
		t.Fatalf("windowless heatmap not valid JSON: %v", err)
	}
	if len(empty.Links) != 0 {
		t.Fatalf("windowless heatmap names %d links", len(empty.Links))
	}
}

// TestAttachFlushPublishesFinalSnapshot is the staleness regression: a
// run whose length is not a multiple of the publish interval used to
// leave /status frozen at the last interval boundary. The flush func
// Attach returns must republish the end-of-run state.
func TestAttachFlushPublishesFinalSnapshot(t *testing.T) {
	o := obs.New(0)
	n := testNet(o, 1)
	defer n.Close()
	srv := NewServer(o.Metrics)
	flush := Attach(srv, n, 1024)
	n.Run(1500) // 1500 % 1024 != 0: the hook last published at cycle 1024

	var stale Status
	if err := json.Unmarshal([]byte(get(t, srv.Handler(), "/status")), &stale); err != nil {
		t.Fatal(err)
	}
	want := n.Stats().Snapshot()
	if stale.Stats.Created == want.Created {
		t.Fatal("test is vacuous: no packets created after the last interval boundary")
	}

	flush()
	var fresh Status
	if err := json.Unmarshal([]byte(get(t, srv.Handler(), "/status")), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Cycle != 1500 {
		t.Fatalf("flushed cycle = %d, want 1500", fresh.Cycle)
	}
	if fresh.Stats.Created != want.Created || fresh.Stats.Ejected != want.Ejected {
		t.Fatalf("flushed stats stale: %+v vs created %d ejected %d",
			fresh.Stats, want.Created, want.Ejected)
	}
}

// TestPrometheusWindowSeries: with windows attached, /metrics carries
// the windowed link-utilization and stall-mix series in valid
// exposition syntax.
func TestPrometheusWindowSeries(t *testing.T) {
	o := obs.New(0)
	o.Windows = obs.NewWindows(16, 5, 4, 256, 4)
	n := testNet(o, 1)
	defer n.Close()
	srv := NewServer(o.Metrics)
	flush := Attach(srv, n, 256)
	n.Run(2000)
	flush()

	body := get(t, srv.Handler(), "/metrics")
	for _, want := range []string{
		"# TYPE gonoc_window_cycles gauge",
		"# TYPE gonoc_link_window_flits gauge",
		"gonoc_link_window_flits{router=",
		`kind="arb_lost"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	checkPrometheusSyntax(t, strings.NewReader(body))
}

func TestListenAndServe(t *testing.T) {
	srv := NewServer(nil)
	srv.SetCycle(42)
	addr, shutdown, err := ListenAndServe("127.0.0.1:0", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "gonoc_cycle 42") {
		t.Errorf("live scrape missing cycle gauge:\n%s", b)
	}
	// A second bind on the same concrete address must fail synchronously.
	if _, _, err := ListenAndServe(addr.String(), srv.Handler()); err == nil {
		t.Error("duplicate bind did not fail")
	}
	// Graceful shutdown releases the listener: the same port rebinds
	// immediately (this was the serve-command port-reuse flake) and
	// shutdown is idempotent.
	shutdown()
	shutdown()
	_, shutdown2, err := ListenAndServe(addr.String(), srv.Handler())
	if err != nil {
		t.Fatalf("rebind after shutdown failed: %v", err)
	}
	shutdown2()
}

// TestPublishEmptySnapshot: an all-warmup snapshot renders zero-valued
// histogram series, never NaN or missing families.
func TestPublishEmptySnapshot(t *testing.T) {
	srv := NewServer(nil)
	srv.Publish(stats.NewCollector(sim.Cycle(1000)).Snapshot())
	body := get(t, srv.Handler(), "/metrics")
	if strings.Contains(body, "NaN") {
		t.Error("exposition contains NaN")
	}
	if !strings.Contains(body, `gonoc_packet_latency_cycles_bucket{class="all",le="+Inf"} 0`) {
		t.Error("empty histogram families missing")
	}
	checkPrometheusSyntax(t, strings.NewReader(body))
}
