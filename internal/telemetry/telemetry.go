// Package telemetry exposes a running simulation's state over HTTP for
// long-running sims and campaigns: a Prometheus-text-format /metrics
// endpoint (observability counters and gauges, latency histogram
// buckets, in-flight gauges) and a JSON /status snapshot.
//
// # Safety against the parallel stepper
//
// Two data sources feed a scrape, with different synchronization rules:
//
//   - obs.Metrics is safe to read live from any goroutine — counters and
//     gauges are atomics and registry resolution is locked — so /metrics
//     reads it directly and a scrape always sees up-to-date counters,
//     even mid-Step.
//   - stats.Collector is owned by the simulation loop and is not
//     synchronized. The server therefore never touches a live collector:
//     the simulation publishes immutable stats.Snapshot values from a
//     cycle hook (noc cycle hooks run in Step's serial pre-phase, on the
//     Run goroutine), and scrapes load the latest snapshot through an
//     atomic pointer.
//
// This split is what makes scraping safe while the network steps in
// parallel (noc.Config.Workers > 1); the race-detector test pins it.
package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
)

// Progress is one long-running task's completion state, shown by
// campaign drivers (trials done out of total).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Server holds the state the HTTP endpoints render. The zero value is
// not usable; call NewServer.
type Server struct {
	metrics *obs.Metrics
	windows atomic.Pointer[obs.Windows]
	snap    atomic.Pointer[stats.Snapshot]
	cycle   atomic.Uint64

	mu       sync.Mutex
	progress map[string]Progress
}

// NewServer returns a server rendering the given metrics registry
// (nil when the simulation runs without observability — the registry
// section of /metrics is then empty).
func NewServer(m *obs.Metrics) *Server {
	return &Server{metrics: m, progress: map[string]Progress{}}
}

// SetWindows attaches a windowed-utilization ring; /heatmap and the
// gonoc_link_window_* gauge families render it. Windows cells are
// atomics, so scrapes may read the ring live while workers add samples
// (a scrape racing a bucket roll sees a partially-zeroed newest bucket,
// which the snapshot marks partial anyway).
func (s *Server) SetWindows(w *obs.Windows) { s.windows.Store(w) }

// Publish makes st the snapshot served by /metrics and /status. Call it
// from the simulation goroutine (e.g. a noc cycle hook); scrapes on
// other goroutines observe it atomically.
func (s *Server) Publish(st stats.Snapshot) { s.snap.Store(&st) }

// SetCycle updates the current-cycle gauge.
func (s *Server) SetCycle(c sim.Cycle) { s.cycle.Store(uint64(c)) }

// SetProgress updates a named task's completion gauge pair, for
// campaign drivers reporting trials done out of total.
func (s *Server) SetProgress(name string, done, total int) {
	s.mu.Lock()
	s.progress[name] = Progress{Done: done, Total: total}
	s.mu.Unlock()
}

// progressSorted returns the progress entries in name order.
func (s *Server) progressSorted() (names []string, by map[string]Progress) {
	s.mu.Lock()
	by = make(map[string]Progress, len(s.progress))
	for k, v := range s.progress {
		by[k] = v
	}
	s.mu.Unlock()
	names = make([]string, 0, len(by))
	for k := range by {
		names = append(names, k)
	}
	sort.Strings(names)
	return names, by
}

// Status is the /status JSON document.
type Status struct {
	// Cycle is the simulation cycle most recently reported.
	Cycle uint64 `json:"cycle"`
	// Stats is the latest published collector snapshot, if any.
	Stats *stats.Snapshot `json:"stats,omitempty"`
	// Progress holds the campaign progress gauges, if any.
	Progress map[string]Progress `json:"progress,omitempty"`
}

// HeatmapLink is one link's recent-window activity in the /heatmap
// document: flit counts (total and per VC) and the stall mix, summed
// over the retained window ring.
type HeatmapLink struct {
	Node  int      `json:"node"`
	Port  int      `json:"port"`
	Flits uint64   `json:"flits"`
	PerVC []uint64 `json:"per_vc"`
	// Stalls is indexed like the top-level StallKinds list.
	Stalls []uint64 `json:"stalls"`
}

// Heatmap is the /heatmap JSON document: the windowed link-utilization
// ring reduced to per-link totals over the cycles it still covers.
type Heatmap struct {
	Cycle        uint64 `json:"cycle"`
	BucketCycles uint64 `json:"bucket_cycles"`
	Buckets      int    `json:"buckets"`
	// WindowCycles is how many cycles the retained buckets cover.
	WindowCycles uint64 `json:"window_cycles"`
	// StallKinds names the indices of every link's Stalls array.
	StallKinds []string      `json:"stall_kinds"`
	Links      []HeatmapLink `json:"links"`
}

// heatmap reduces the current window ring to the /heatmap document.
// top > 0 keeps only the top links by flit count.
func (s *Server) heatmap(top int) Heatmap {
	doc := Heatmap{Cycle: s.cycle.Load(), StallKinds: make([]string, obs.NumStallKinds)}
	for k := 0; k < obs.NumStallKinds; k++ {
		doc.StallKinds[k] = obs.StallKind(k).String()
	}
	w := s.windows.Load()
	if w == nil {
		return doc
	}
	snap := w.Snapshot()
	doc.BucketCycles = uint64(snap.BucketCycles)
	doc.Buckets = len(snap.Buckets)
	doc.WindowCycles = uint64(snap.Cycles())
	totals := snap.LinkTotals()
	if top > 0 {
		totals = snap.TopLinks(top)
	}
	doc.Links = make([]HeatmapLink, 0, len(totals))
	for _, lt := range totals {
		doc.Links = append(doc.Links, HeatmapLink{
			Node: lt.Node, Port: lt.Port, Flits: lt.Flits,
			PerVC: lt.PerVC, Stalls: lt.Stalls[:],
		})
	}
	return doc
}

// Handler returns the HTTP handler: GET /metrics (Prometheus text
// exposition), GET /status (JSON) and GET /heatmap (windowed link
// utilization and stall mix as JSON; ?top=N keeps the N busiest links).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := Status{Cycle: s.cycle.Load(), Stats: s.snap.Load()}
		if names, by := s.progressSorted(); len(names) > 0 {
			st.Progress = by
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/heatmap", func(w http.ResponseWriter, r *http.Request) {
		top := 0
		if v := r.URL.Query().Get("top"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "top must be a non-negative integer", http.StatusBadRequest)
				return
			}
			top = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.heatmap(top))
	})
	return mux
}

// Attach wires the server to a network: a cycle hook publishes a fresh
// stats snapshot every `every` cycles (and keeps the cycle gauge
// current), and the network's window ring (if its observer has one) is
// exposed on /heatmap. Hooks run in Step's serial pre-phase on the
// simulation goroutine — the only place the unsynchronized
// stats.Collector may be read — so attaching is safe at any Workers
// setting. every == 0 selects a sensible default.
//
// The returned flush publishes a final snapshot at the current cycle.
// The hook alone leaves the last partial interval unpublished — a run
// whose length is not a multiple of `every` would serve stale final
// numbers forever — so call flush from the simulation goroutine once
// stepping is done (and before reading the endpoints for end state).
func Attach(s *Server, n *noc.Network, every sim.Cycle) (flush func()) {
	if every == 0 {
		every = 1 << 10
	}
	if o := n.Obs(); o != nil {
		if w := o.Windows; w != nil {
			s.SetWindows(w)
		}
	}
	n.AddHook(func(c sim.Cycle) {
		s.SetCycle(c)
		if c%every == 0 {
			s.Publish(n.Stats().Snapshot())
		}
	})
	return func() {
		s.SetCycle(n.Now())
		s.Publish(n.Stats().Snapshot())
	}
}

// ListenAndServe binds addr synchronously and then serves h in the
// background. Binding before returning means a bad or already-used
// address fails here, before the simulation starts, instead of racing a
// goroutine's error against the run (the noctool -pprof listener had
// exactly that bug). A nil handler serves http.DefaultServeMux — which
// is where net/http/pprof registers — and the returned address resolves
// ":0" to the actual port.
//
// The returned shutdown function gracefully stops the server with
// http.Server.Shutdown under a short deadline: in-flight scrapes get a
// moment to finish and the listener is released before it returns, so a
// caller that exits and restarts (or a test that reuses the port) never
// races a dangling listener. It is safe to call more than once.
func ListenAndServe(addr string, h http.Handler) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
	}
	return ln.Addr(), shutdown, nil
}
