package telemetry

import (
	"fmt"
	"io"
	"strings"

	"gonoc/internal/flit"
	"gonoc/internal/obs"
	"gonoc/internal/stats"
)

// promName converts an obs.Kind series name ("sa.bypass_grants") to a
// Prometheus metric name ("gonoc_sa_bypass_grants").
func promName(k obs.Kind) string {
	return "gonoc_" + strings.ReplaceAll(k.String(), ".", "_")
}

// keyLabels renders a sample key's label set. The -1 sentinels (network-
// global series, inapplicable dimensions) drop the label entirely.
func keyLabels(k obs.Key) string {
	var parts []string
	if k.Router >= 0 {
		parts = append(parts, fmt.Sprintf("router=%q", fmt.Sprint(k.Router)))
	}
	if k.Port != obs.NoPort {
		parts = append(parts, fmt.Sprintf("port=%q", fmt.Sprint(k.Port)))
	}
	if k.VC != obs.NoVC {
		parts = append(parts, fmt.Sprintf("vc=%q", fmt.Sprint(k.VC)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// writeHistogram renders one stats.HistogramSnapshot as a Prometheus
// histogram family. extraLabel is an optional `name="value"` pair added
// to every series (the class label), or "".
func writeHistogram(w io.Writer, name, help, extraLabel string, typed bool, h stats.HistogramSnapshot) {
	if typed {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	lbl := func(le string) string {
		parts := []string{}
		if extraLabel != "" {
			parts = append(parts, extraLabel)
		}
		if le != "" {
			parts = append(parts, `le="`+le+`"`)
		}
		if len(parts) == 0 {
			return ""
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	for _, b := range h.Buckets {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl(fmt.Sprint(uint64(b.UpperBound))), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl("+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, lbl(""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, lbl(""), h.Count)
}

// writePrometheus renders the full exposition: run gauges, the latest
// stats snapshot (packet counters and latency histograms), the live
// observability registry and any campaign progress gauges.
func (s *Server) writePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP gonoc_cycle Current simulation cycle.\n# TYPE gonoc_cycle gauge\ngonoc_cycle %d\n",
		s.cycle.Load())

	if snap := s.snap.Load(); snap != nil {
		fmt.Fprintf(w, "# HELP gonoc_packets_created_total Packets offered to the network.\n"+
			"# TYPE gonoc_packets_created_total counter\ngonoc_packets_created_total %d\n", snap.Created)
		fmt.Fprintf(w, "# HELP gonoc_packets_ejected_total Packets delivered.\n"+
			"# TYPE gonoc_packets_ejected_total counter\ngonoc_packets_ejected_total %d\n", snap.Ejected)
		fmt.Fprintf(w, "# HELP gonoc_packets_measured_total Packets included in latency statistics (post-warmup).\n"+
			"# TYPE gonoc_packets_measured_total counter\ngonoc_packets_measured_total %d\n", snap.Measured)
		fmt.Fprintf(w, "# HELP gonoc_packets_in_flight Packets offered but not yet delivered.\n"+
			"# TYPE gonoc_packets_in_flight gauge\ngonoc_packets_in_flight %d\n", snap.InFlight)
		fmt.Fprintf(w, "# HELP gonoc_packets_dropped_total Packets discarded at dead links or for unreachable destinations.\n"+
			"# TYPE gonoc_packets_dropped_total counter\ngonoc_packets_dropped_total %d\n", snap.Dropped)
		fmt.Fprintf(w, "# HELP gonoc_packets_retransmitted_total Retransmitted packet copies injected by source NIs.\n"+
			"# TYPE gonoc_packets_retransmitted_total counter\ngonoc_packets_retransmitted_total %d\n", snap.Retransmits)
		fmt.Fprintf(w, "# HELP gonoc_packets_duplicate_total Duplicate deliveries suppressed at sink NIs.\n"+
			"# TYPE gonoc_packets_duplicate_total counter\ngonoc_packets_duplicate_total %d\n", snap.Duplicates)
		fmt.Fprintf(w, "# HELP gonoc_delivery_ratio Unique packets delivered per unique packet offered.\n"+
			"# TYPE gonoc_delivery_ratio gauge\ngonoc_delivery_ratio %g\n", snap.DeliveryRatio)

		writeHistogram(w, "gonoc_packet_latency_cycles",
			"Creation-to-ejection packet latency distribution, in cycles.",
			`class="all"`, true, snap.Latency)
		for cls := 0; cls < flit.NumClasses; cls++ {
			writeHistogram(w, "gonoc_packet_latency_cycles", "",
				fmt.Sprintf("class=%q", flit.Class(cls).String()), false, snap.Classes[cls])
		}
		writeHistogram(w, "gonoc_network_latency_cycles",
			"Injection-to-ejection packet latency distribution, in cycles.",
			"", true, snap.NetworkLatency)
	}

	if s.metrics != nil {
		samples := s.metrics.Snapshot()
		// Group into families: one HELP/TYPE block per kind, series in
		// the registry's canonical (router, port, vc) order.
		byKind := map[obs.Kind][]obs.Sample{}
		for _, sm := range samples {
			byKind[sm.Key.Kind] = append(byKind[sm.Key.Kind], sm)
		}
		for k := obs.Kind(0); int(k) < obs.NumKinds; k++ {
			fam := byKind[k]
			if len(fam) == 0 {
				continue
			}
			name := promName(k)
			typ := "counter"
			if fam[0].IsGauge {
				typ = "gauge"
			} else {
				name += "_total"
			}
			fmt.Fprintf(w, "# HELP %s Simulator %s series %q (%s stage).\n# TYPE %s %s\n",
				name, typ, k.String(), k.Stage(), name, typ)
			for _, sm := range fam {
				fmt.Fprintf(w, "%s%s %d\n", name, keyLabels(sm.Key), sm.Value)
			}
		}
	}

	if win := s.windows.Load(); win != nil {
		snap := win.Snapshot()
		fmt.Fprintf(w, "# HELP gonoc_window_cycles Cycles covered by the retained utilization window ring.\n"+
			"# TYPE gonoc_window_cycles gauge\ngonoc_window_cycles %d\n", snap.Cycles())
		totals := snap.LinkTotals()
		fmt.Fprintf(w, "# HELP gonoc_link_window_flits Flits committed onto a link within the retained windows.\n"+
			"# TYPE gonoc_link_window_flits gauge\n")
		for _, lt := range totals {
			if lt.Flits == 0 {
				continue
			}
			fmt.Fprintf(w, "gonoc_link_window_flits{router=%q,port=%q} %d\n",
				fmt.Sprint(lt.Node), fmt.Sprint(lt.Port), lt.Flits)
		}
		fmt.Fprintf(w, "# HELP gonoc_link_window_stalls Stalled flit-cycles at a port within the retained windows, by cause.\n"+
			"# TYPE gonoc_link_window_stalls gauge\n")
		for _, lt := range totals {
			for k := 0; k < obs.NumStallKinds; k++ {
				if lt.Stalls[k] == 0 {
					continue
				}
				fmt.Fprintf(w, "gonoc_link_window_stalls{router=%q,port=%q,kind=%q} %d\n",
					fmt.Sprint(lt.Node), fmt.Sprint(lt.Port), obs.StallKind(k).String(), lt.Stalls[k])
			}
		}
	}

	if names, by := s.progressSorted(); len(names) > 0 {
		fmt.Fprintf(w, "# HELP gonoc_progress_done Completed units of a long-running task.\n"+
			"# TYPE gonoc_progress_done gauge\n")
		for _, n := range names {
			fmt.Fprintf(w, "gonoc_progress_done{task=%q} %d\n", n, by[n].Done)
		}
		fmt.Fprintf(w, "# HELP gonoc_progress_total Total units of a long-running task.\n"+
			"# TYPE gonoc_progress_total gauge\n")
		for _, n := range names {
			fmt.Fprintf(w, "gonoc_progress_total{task=%q} %d\n", n, by[n].Total)
		}
	}
}
