package sweep

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/traffic"
)

func TestRunOrderPreserved(t *testing.T) {
	got := Run(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d", i, v)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if out := Run(0, 4, func(int) int { return 1 }); out != nil {
		t.Fatalf("expected nil, got %v", out)
	}
}

func TestRunEachJobOnce(t *testing.T) {
	var counts [50]int32
	Run(50, 7, func(i int) struct{} {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	out := Run(10, 0, func(i int) int { return i })
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestRunMoreWorkersThanJobs(t *testing.T) {
	out := Run(3, 100, func(i int) int { return i + 1 })
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestMap(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out := Map(in, 2, func(s string) int { return len(s) })
	want := []int{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestRunParallelismActuallyConcurrent(t *testing.T) {
	// With 4 workers and jobs that block until all 4 started, completion
	// proves concurrency.
	start := make(chan struct{})
	var started atomic.Int32
	done := make(chan struct{})
	go func() {
		Run(4, 4, func(i int) int {
			if started.Add(1) == 4 {
				close(start)
			}
			<-start
			return i
		})
		close(done)
	}()
	<-done
}

// TestRunNestedNetworkWorkers runs a sweep whose jobs each step their
// own network with a sharded compute phase — the two parallelism axes
// composed, as fault campaigns over parallel-stepped networks do. Every
// job must produce the result its seed dictates regardless of how the
// sweep and step goroutines interleave (the race detector covers the
// rest).
func TestRunNestedNetworkWorkers(t *testing.T) {
	const jobs = 6
	run := func(workers int) []string {
		return Run(jobs, 3, func(i int) string {
			rc := router.DefaultConfig()
			rc.FaultTolerant = true
			src := traffic.NewSynthetic(16, 0.05, traffic.Uniform(16), traffic.FixedSize(2), uint64(i)+1)
			src.StopAt(400)
			n := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: rc, Workers: workers}, src)
			defer n.Close()
			n.Run(400)
			if !n.Drain(10000) {
				t.Errorf("job %d did not drain", i)
			}
			return n.Stats().Summary()
		})
	}
	parallel := run(2)
	serial := run(1)
	for i := range parallel {
		if parallel[i] != serial[i] {
			t.Fatalf("job %d: nested parallel stepping changed the result:\n%s\nvs\n%s",
				i, parallel[i], serial[i])
		}
	}
}

// TestRunPanicPropagation: a panicking job must not crash the process
// from a worker goroutine; Run re-panics on the caller's goroutine with
// the job index and the original panic value in the message.
func TestRunPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run swallowed the job panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("re-panic value %T, want string", r)
		}
		if !strings.Contains(msg, "job 13") || !strings.Contains(msg, "boom 13") {
			t.Fatalf("re-panic message missing job context: %q", msg)
		}
	}()
	Run(40, 4, func(i int) int {
		if i == 13 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return i
	})
}

// TestRunPanicStopsDispatch: after a panic is captured, workers stop
// claiming new jobs rather than burning through the remaining queue.
func TestRunPanicStopsDispatch(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		Run(1000, 2, func(i int) int {
			ran.Add(1)
			if i == 0 {
				panic("first job dies")
			}
			return i
		})
	}()
	if n := ran.Load(); n == 1000 {
		t.Error("all jobs ran after the panic; dispatch did not stop")
	}
}

// TestRunFirstPanicWins: with several panicking jobs, the reported one
// is the first captured, and exactly one panic escapes.
func TestRunFirstPanicWins(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic propagated")
		}
	}()
	Run(8, 8, func(i int) int { panic(i) })
}
