// Package sweep runs independent simulation jobs in parallel. The
// simulator core is deliberately single-threaded for determinism (see
// internal/sim); throughput comes from running many configurations at
// once — parameter sweeps, per-application experiments, Monte-Carlo
// campaigns — each on its own goroutine with its own network and its own
// deterministically derived seed.
package sweep

import (
	"runtime"
	"sync"
)

// Run executes job(0..n-1) on up to workers goroutines and returns the
// results in index order. workers <= 0 selects GOMAXPROCS. Jobs must be
// independent; each should derive any randomness from its index so the
// sweep is deterministic regardless of scheduling.
func Run[T any](n, workers int, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				results[i] = job(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// Map applies job to each input in parallel, preserving order.
func Map[In, Out any](inputs []In, workers int, job func(In) Out) []Out {
	return Run(len(inputs), workers, func(i int) Out { return job(inputs[i]) })
}
