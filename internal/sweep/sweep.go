// Package sweep runs independent simulation jobs in parallel — parameter
// sweeps, per-application experiments, Monte-Carlo campaigns — each on
// its own goroutine with its own network and its own deterministically
// derived seed. It composes with the other parallelism axis, the
// network's sharded compute phase (noc.Config.Workers): a sweep of
// many small networks wants serial stepping (StepWorkers/Workers = 1)
// to avoid oversubscription, while a few large networks want the
// opposite. Results are bit-identical either way.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// jobPanic carries a worker panic back to Run's caller with the job that
// caused it, instead of crashing the process from a worker goroutine
// with a scheduler-mangled trace.
type jobPanic struct {
	job   int
	value any
}

// Run executes job(0..n-1) on up to workers goroutines and returns the
// results in index order. workers <= 0 selects GOMAXPROCS. Jobs must be
// independent; each should derive any randomness from its index so the
// sweep is deterministic regardless of scheduling.
//
// A panicking job does not kill the process from inside a worker:
// the first panic (by completion order) is captured with its job index,
// the remaining workers wind down, and Run re-panics on the caller's
// goroutine with the job index prepended to the original value.
func Run[T any](n, workers int, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var next int
	var failed *jobPanic
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				stop := i >= n || failed != nil
				mu.Unlock()
				if stop {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if failed == nil {
								failed = &jobPanic{job: i, value: r}
							}
							mu.Unlock()
						}
					}()
					results[i] = job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if failed != nil {
		panic(fmt.Sprintf("sweep: job %d panicked: %v", failed.job, failed.value))
	}
	return results
}

// Map applies job to each input in parallel, preserving order.
func Map[In, Out any](inputs []In, workers int, job func(In) Out) []Out {
	return Run(len(inputs), workers, func(i int) Out { return job(inputs[i]) })
}
