// Package sweep runs independent simulation jobs in parallel — parameter
// sweeps, per-application experiments, Monte-Carlo campaigns — each on
// its own goroutine with its own network and its own deterministically
// derived seed. It composes with the other parallelism axis, the
// network's sharded compute phase (noc.Config.Workers): a sweep of
// many small networks wants serial stepping (StepWorkers/Workers = 1)
// to avoid oversubscription, while a few large networks want the
// opposite. Results are bit-identical either way.
package sweep

import (
	"runtime"
	"sync"
)

// Run executes job(0..n-1) on up to workers goroutines and returns the
// results in index order. workers <= 0 selects GOMAXPROCS. Jobs must be
// independent; each should derive any randomness from its index so the
// sweep is deterministic regardless of scheduling.
func Run[T any](n, workers int, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				results[i] = job(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// Map applies job to each input in parallel, preserving order.
func Map[In, Out any](inputs []In, workers int, job func(In) Out) []Out {
	return Run(len(inputs), workers, func(i int) Out { return job(inputs[i]) })
}
