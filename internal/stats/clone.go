package stats

// Clone returns an independent copy of the histogram. The bounds slice
// is shared (it is read-only by contract); the counts buffer is shared
// copy-on-write — both histograms are marked shared and the next write
// to either copies first — so cloning is O(1), which the model
// checker's snapshot-per-state exploration depends on. Clone of a nil
// histogram returns nil, matching the collector's lazy histogram
// allocation.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	h.shared = true
	c := *h
	return &c
}

// Clone returns an independent deep copy of the collector, for
// checkpoint/restore: the model checker snapshots a network mid-run and
// must be able to roll its statistics back along with the rest of the
// state. Clone of a nil collector returns nil.
func (c *Collector) Clone() *Collector {
	if c == nil {
		return nil
	}
	cp := *c
	cp.lat = c.lat.Clone()
	cp.net = c.net.Clone()
	for i := range c.classLat {
		cp.classLat[i] = c.classLat[i].Clone()
	}
	return &cp
}
