package stats

import (
	"math"
	"strings"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/sim"
)

func mkPkt(created, ejected sim.Cycle, cls flit.Class, size int) *flit.Packet {
	return &flit.Packet{CreatedAt: created, InjectedAt: created, EjectedAt: ejected, Class: cls, Size: size}
}

func TestBasicAccounting(t *testing.T) {
	c := NewCollector(0)
	p := &flit.Packet{CreatedAt: 10, InjectedAt: 12, EjectedAt: 40, Size: 5}
	c.RecordCreation(p)
	c.RecordEjection(p)
	if c.Created() != 1 || c.Ejected() != 1 || c.Measured() != 1 {
		t.Fatalf("counts: %d/%d/%d", c.Created(), c.Ejected(), c.Measured())
	}
	if c.AvgLatency() != 30 {
		t.Errorf("AvgLatency = %v", c.AvgLatency())
	}
	if c.AvgNetworkLatency() != 28 {
		t.Errorf("AvgNetworkLatency = %v", c.AvgNetworkLatency())
	}
	if c.InFlight() != 0 {
		t.Errorf("InFlight = %d", c.InFlight())
	}
}

func TestInFlight(t *testing.T) {
	c := NewCollector(0)
	p := mkPkt(0, 10, flit.Request, 1)
	c.RecordCreation(p)
	if c.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", c.InFlight())
	}
	c.RecordEjection(p)
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", c.InFlight())
	}
}

func TestWarmupExclusion(t *testing.T) {
	c := NewCollector(100)
	early := mkPkt(50, 90, flit.Request, 1)
	late := mkPkt(150, 170, flit.Request, 1)
	for _, p := range []*flit.Packet{early, late} {
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if c.Measured() != 1 {
		t.Fatalf("Measured = %d, want 1", c.Measured())
	}
	if c.AvgLatency() != 20 {
		t.Errorf("AvgLatency = %v, want 20 (early packet excluded)", c.AvgLatency())
	}
	if c.Ejected() != 2 {
		t.Errorf("Ejected = %d, want 2", c.Ejected())
	}
}

func TestMinMaxPercentile(t *testing.T) {
	c := NewCollector(0)
	for _, lat := range []sim.Cycle{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		p := mkPkt(0, lat, flit.Request, 1)
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if c.MinLatency() != 10 || c.MaxLatency() != 100 {
		t.Errorf("min/max = %d/%d", c.MinLatency(), c.MaxLatency())
	}
	if got := c.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := c.Percentile(1); got != 10 {
		t.Errorf("p1 = %v", got)
	}
}

func TestClassBreakdown(t *testing.T) {
	c := NewCollector(0)
	req := mkPkt(0, 10, flit.Request, 1)
	rsp := mkPkt(0, 30, flit.Response, 5)
	for _, p := range []*flit.Packet{req, rsp} {
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if got := c.ClassAvgLatency(flit.Request); got != 10 {
		t.Errorf("request avg = %v", got)
	}
	if got := c.ClassAvgLatency(flit.Response); got != 30 {
		t.Errorf("response avg = %v", got)
	}
	if got := c.AvgLatency(); got != 20 {
		t.Errorf("overall avg = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector(100)
	for i := 0; i < 10; i++ {
		p := mkPkt(150, 160, flit.Request, 4)
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	// 40 flits over cycles 100..300 = 0.2 flits/cycle.
	if got := c.ThroughputFlits(300); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("throughput = %v, want 0.2", got)
	}
	if got := c.ThroughputFlits(50); got != 0 {
		t.Errorf("throughput before warmup end = %v", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(0)
	if c.AvgLatency() != 0 || c.MinLatency() != 0 || c.Percentile(50) != 0 {
		t.Fatal("empty collector returned nonzero stats")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

// TestAllPacketsInWarmup covers the zero-measured-packets case with
// nonzero traffic: everything was created before Warmup, so every
// latency statistic must return its zero value rather than an
// uninitialized extreme.
func TestAllPacketsInWarmup(t *testing.T) {
	c := NewCollector(1000)
	for i := sim.Cycle(0); i < 5; i++ {
		p := mkPkt(i, i+40, flit.Request, 3)
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if c.Created() != 5 || c.Ejected() != 5 {
		t.Fatalf("created/ejected = %d/%d", c.Created(), c.Ejected())
	}
	if c.Measured() != 0 {
		t.Fatalf("Measured = %d, want 0", c.Measured())
	}
	if c.AvgLatency() != 0 || c.AvgNetworkLatency() != 0 {
		t.Errorf("avg latencies = %v/%v, want 0", c.AvgLatency(), c.AvgNetworkLatency())
	}
	// MinLatency must not leak the MaxUint64 initializer.
	if c.MinLatency() != 0 || c.MaxLatency() != 0 {
		t.Errorf("min/max = %d/%d, want 0/0", c.MinLatency(), c.MaxLatency())
	}
	if c.Percentile(50) != 0 || c.Percentile(99) != 0 {
		t.Errorf("percentiles nonzero with no measured packets")
	}
	if c.ClassAvgLatency(flit.Request) != 0 {
		t.Errorf("class avg nonzero with no measured packets")
	}
	// ThroughputFlits at exactly the warmup cutoff must not divide by a
	// zero-length interval.
	if got := c.ThroughputFlits(1000); got != 0 {
		t.Errorf("ThroughputFlits(warmup) = %v, want 0", got)
	}
	// Summary formats every statistic; with measured == 0 it must render
	// zeros, never NaN.
	if s := c.Summary(); strings.Contains(s, "NaN") {
		t.Errorf("Summary contains NaN:\n%s", s)
	}
	// The average-latency methods return float64: assert the exact
	// contract the docs promise — 0, not NaN, on an empty window.
	for name, v := range map[string]float64{
		"AvgLatency": c.AvgLatency(), "AvgNetworkLatency": c.AvgNetworkLatency(),
		"Percentile(95)": c.Percentile(95), "NetworkPercentile(95)": c.NetworkPercentile(95),
		"ClassPercentile": c.ClassPercentile(flit.Response, 99),
	} {
		if math.IsNaN(v) || v != 0 {
			t.Errorf("%s = %v with measured == 0, want 0", name, v)
		}
	}
}

// TestSingleSamplePercentile checks every percentile collapses to the
// lone sample (the index arithmetic must not under- or overflow).
func TestSingleSamplePercentile(t *testing.T) {
	c := NewCollector(0)
	p := mkPkt(0, 37, flit.Request, 1)
	c.RecordCreation(p)
	c.RecordEjection(p)
	for _, q := range []float64{0.1, 1, 50, 99, 100} {
		if got := c.Percentile(q); got != 37 {
			t.Errorf("Percentile(%v) = %v, want 37", q, got)
		}
	}
	if c.MinLatency() != 37 || c.MaxLatency() != 37 {
		t.Errorf("min/max = %d/%d, want 37/37", c.MinLatency(), c.MaxLatency())
	}
}

// TestMinMaxInitialization checks the extremes track a single descending
// then ascending sequence correctly from their initial values.
func TestMinMaxInitialization(t *testing.T) {
	c := NewCollector(0)
	record := func(lat sim.Cycle) {
		p := mkPkt(0, lat, flit.Request, 1)
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	record(50)
	if c.MinLatency() != 50 || c.MaxLatency() != 50 {
		t.Fatalf("after first sample min/max = %d/%d, want 50/50", c.MinLatency(), c.MaxLatency())
	}
	record(10) // new minimum
	record(90) // new maximum
	if c.MinLatency() != 10 || c.MaxLatency() != 90 {
		t.Errorf("min/max = %d/%d, want 10/90", c.MinLatency(), c.MaxLatency())
	}
}

// TestZeroLatencyPacket: a packet ejected the cycle it was created must
// count as a legitimate 0-cycle minimum, not be confused with "no data".
func TestZeroLatencyPacket(t *testing.T) {
	c := NewCollector(0)
	fast := mkPkt(5, 5, flit.Request, 1)
	slow := mkPkt(5, 25, flit.Request, 1)
	for _, p := range []*flit.Packet{fast, slow} {
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if c.MinLatency() != 0 || c.MaxLatency() != 20 {
		t.Errorf("min/max = %d/%d, want 0/20", c.MinLatency(), c.MaxLatency())
	}
	if c.AvgLatency() != 10 {
		t.Errorf("avg = %v, want 10", c.AvgLatency())
	}
}

func TestSummaryDeterministicAndComplete(t *testing.T) {
	build := func() *Collector {
		c := NewCollector(10)
		for i := 0; i < 40; i++ {
			p := &flit.Packet{
				Src: i % 4, Dst: (i + 1) % 4, Size: 1 + i%5,
				CreatedAt: sim.Cycle(i), InjectedAt: sim.Cycle(i + 2),
				EjectedAt: sim.Cycle(i + 20 + i%7),
				Class:     flit.Class(i % 2),
			}
			c.RecordCreation(p)
			c.RecordEjection(p)
		}
		return c
	}
	s1, s2 := build().Summary(), build().Summary()
	if s1 != s2 {
		t.Fatalf("Summary not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	for _, want := range []string{"created 40", "latency avg", "p50", "flits", "class 0", "class 1"} {
		if !strings.Contains(s1, want) {
			t.Fatalf("summary missing %q:\n%s", want, s1)
		}
	}
}

func TestIntPercentile(t *testing.T) {
	if got := IntPercentile(nil, 50); got != 0 {
		t.Errorf("empty = %d", got)
	}
	vals := []int{30, 10, 20, 50, 40, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int
	}{{50, 50}, {95, 100}, {99, 100}, {100, 100}, {1, 10}, {10, 10}}
	for _, tc := range cases {
		if got := IntPercentile(vals, tc.p); got != tc.want {
			t.Errorf("IntPercentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	// The input must not be reordered.
	if vals[0] != 30 || vals[9] != 100 {
		t.Error("IntPercentile mutated its input")
	}
	// Nearest-rank must agree with Histogram.Quantile on the same data.
	h := NewHistogram(nil)
	for _, v := range vals {
		h.Observe(sim.Cycle(v))
	}
	for _, p := range []float64{1, 50, 95, 99, 100} {
		if int(h.Quantile(p)) != IntPercentile(vals, p) {
			t.Errorf("histogram and nearest-rank disagree at p%v", p)
		}
	}
}

// TestIntPercentileEdges is the edge table for nearest-rank extraction:
// empty, single-element, and boundary percentiles (clamped, never
// indexing out of range).
func TestIntPercentileEdges(t *testing.T) {
	cases := []struct {
		name string
		vals []int
		p    float64
		want int
	}{
		{"empty/p50", nil, 50, 0},
		{"empty/p100", []int{}, 100, 0},
		{"single/p0.01", []int{7}, 0.01, 7},
		{"single/p50", []int{7}, 50, 7},
		{"single/p100", []int{7}, 100, 7},
		{"pair/p50", []int{9, 3}, 50, 3},
		{"pair/p51", []int{9, 3}, 51, 9},
		{"pair/p100", []int{9, 3}, 100, 9},
		{"clamp/p0", []int{5, 6, 7}, 0, 5},
		{"clamp/p150", []int{5, 6, 7}, 150, 7},
		{"clamp/negative", []int{5, 6, 7}, -10, 5},
	}
	for _, tc := range cases {
		if got := IntPercentile(tc.vals, tc.p); got != tc.want {
			t.Errorf("%s: IntPercentile(%v, %v) = %d, want %d", tc.name, tc.vals, tc.p, got, tc.want)
		}
	}
}
