package stats

import (
	"math"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/sim"
)

func mkPkt(created, ejected sim.Cycle, cls flit.Class, size int) *flit.Packet {
	return &flit.Packet{CreatedAt: created, InjectedAt: created, EjectedAt: ejected, Class: cls, Size: size}
}

func TestBasicAccounting(t *testing.T) {
	c := NewCollector(0)
	p := &flit.Packet{CreatedAt: 10, InjectedAt: 12, EjectedAt: 40, Size: 5}
	c.RecordCreation(p)
	c.RecordEjection(p)
	if c.Created() != 1 || c.Ejected() != 1 || c.Measured() != 1 {
		t.Fatalf("counts: %d/%d/%d", c.Created(), c.Ejected(), c.Measured())
	}
	if c.AvgLatency() != 30 {
		t.Errorf("AvgLatency = %v", c.AvgLatency())
	}
	if c.AvgNetworkLatency() != 28 {
		t.Errorf("AvgNetworkLatency = %v", c.AvgNetworkLatency())
	}
	if c.InFlight() != 0 {
		t.Errorf("InFlight = %d", c.InFlight())
	}
}

func TestInFlight(t *testing.T) {
	c := NewCollector(0)
	p := mkPkt(0, 10, flit.Request, 1)
	c.RecordCreation(p)
	if c.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", c.InFlight())
	}
	c.RecordEjection(p)
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", c.InFlight())
	}
}

func TestWarmupExclusion(t *testing.T) {
	c := NewCollector(100)
	early := mkPkt(50, 90, flit.Request, 1)
	late := mkPkt(150, 170, flit.Request, 1)
	for _, p := range []*flit.Packet{early, late} {
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if c.Measured() != 1 {
		t.Fatalf("Measured = %d, want 1", c.Measured())
	}
	if c.AvgLatency() != 20 {
		t.Errorf("AvgLatency = %v, want 20 (early packet excluded)", c.AvgLatency())
	}
	if c.Ejected() != 2 {
		t.Errorf("Ejected = %d, want 2", c.Ejected())
	}
}

func TestMinMaxPercentile(t *testing.T) {
	c := NewCollector(0)
	for _, lat := range []sim.Cycle{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		p := mkPkt(0, lat, flit.Request, 1)
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if c.MinLatency() != 10 || c.MaxLatency() != 100 {
		t.Errorf("min/max = %d/%d", c.MinLatency(), c.MaxLatency())
	}
	if got := c.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := c.Percentile(1); got != 10 {
		t.Errorf("p1 = %v", got)
	}
}

func TestClassBreakdown(t *testing.T) {
	c := NewCollector(0)
	req := mkPkt(0, 10, flit.Request, 1)
	rsp := mkPkt(0, 30, flit.Response, 5)
	for _, p := range []*flit.Packet{req, rsp} {
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	if got := c.ClassAvgLatency(flit.Request); got != 10 {
		t.Errorf("request avg = %v", got)
	}
	if got := c.ClassAvgLatency(flit.Response); got != 30 {
		t.Errorf("response avg = %v", got)
	}
	if got := c.AvgLatency(); got != 20 {
		t.Errorf("overall avg = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector(100)
	for i := 0; i < 10; i++ {
		p := mkPkt(150, 160, flit.Request, 4)
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	// 40 flits over cycles 100..300 = 0.2 flits/cycle.
	if got := c.ThroughputFlits(300); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("throughput = %v, want 0.2", got)
	}
	if got := c.ThroughputFlits(50); got != 0 {
		t.Errorf("throughput before warmup end = %v", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(0)
	if c.AvgLatency() != 0 || c.MinLatency() != 0 || c.Percentile(50) != 0 {
		t.Fatal("empty collector returned nonzero stats")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}
