package stats

import (
	"fmt"
	"math"

	"gonoc/internal/sim"
)

// Histogram is a fixed-bucket latency histogram. Bucket boundaries are
// inclusive upper bounds shared by every histogram built from the same
// bounds slice, so histograms from a sweep fan-out merge bucket-for-
// bucket. All state is integral (counts and a cycle sum), which makes
// Merge associative and bit-exact regardless of merge order or of the
// worker count that produced the inputs — the property the sweep and
// parallel-stepping conformance tests pin.
//
// The default latency bounds keep one-cycle-wide buckets up to
// maxExactLatency cycles, so quantile extraction is exact there (the
// common case for every workload in this repo), and log-linear buckets
// (8 per octave, ≤ ~9% relative width) above it.
type Histogram struct {
	bounds []sim.Cycle // ascending inclusive upper bounds; shared, read-only
	counts []uint64    // len(bounds)+1; the last bucket is overflow
	total  uint64
	sum    uint64 // sum of observed values, in cycles
	min    sim.Cycle
	max    sim.Cycle
	// shared marks counts as aliased by a Clone: the next write must
	// copy first. Lets checkpoint/restore clone histograms in O(1).
	shared bool
}

// own unshares the counts buffer before a write.
func (h *Histogram) own() {
	if h.shared {
		h.counts = append([]uint64(nil), h.counts...)
		h.shared = false
	}
}

// maxExactLatency is the largest latency with a one-cycle-wide bucket;
// quantiles at or below it are exact.
const maxExactLatency = 4096

// latencyBounds is the shared default bucket layout, built once.
var latencyBounds = func() []sim.Cycle {
	var b []sim.Cycle
	for v := sim.Cycle(0); v <= maxExactLatency; v++ {
		b = append(b, v)
	}
	// Log-linear tail: 8 sub-buckets per octave up to ~16M cycles.
	for lo := sim.Cycle(maxExactLatency); lo < 1<<24; lo *= 2 {
		step := lo / 8
		for v := lo + step; v <= lo*2; v += step {
			b = append(b, v)
		}
	}
	return b
}()

// DefaultLatencyBounds returns the shared default bucket upper bounds.
// The slice is read-only and must not be modified.
func DefaultLatencyBounds() []sim.Cycle { return latencyBounds }

// NewHistogram returns an empty histogram over bounds; nil bounds selects
// DefaultLatencyBounds. bounds must be ascending.
func NewHistogram(bounds []sim.Cycle) *Histogram {
	if bounds == nil {
		bounds = latencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v sim.Cycle) {
	h.own()
	h.counts[h.bucket(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += uint64(v)
}

// bucket returns the index of the bucket containing v: the first bound
// >= v, or the overflow bucket.
func (h *Histogram) bucket(v sim.Cycle) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the integer sum of all observed values in cycles.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min and Max return the observed extremes, or 0 with no observations.
func (h *Histogram) Min() sim.Cycle {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed value, or 0 with no observations.
func (h *Histogram) Max() sim.Cycle {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the average observed value, or 0 with no observations
// (never NaN — see the Collector warmup edge case).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the q-th percentile (0 < q <= 100) as the upper bound
// of the bucket holding that rank — exact for values with one-cycle-wide
// buckets (<= maxExactLatency with the default bounds), and within the
// bucket's relative width above. The overflow bucket reports the exact
// observed maximum. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) sim.Cycle {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(float64(h.total) * q / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == len(h.bounds) {
				return h.max // overflow bucket: max is exact
			}
			return h.bounds[i]
		}
	}
	return h.max
}

// Merge adds o's observations into h. Both histograms must share the
// same bucket layout — not just the same bucket count: mismatched bounds
// are rejected with an error rather than silently adding counts that
// mean different latency ranges. Merging is pure integer arithmetic, so
// the result is bit-exact regardless of how the inputs were sharded —
// merging one collector per sweep worker reproduces the single-collector
// histogram.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging histograms with %d vs %d buckets", len(h.counts), len(o.counts))
	}
	// Same backing array (the common shared-default-bounds case) needs no
	// element scan; otherwise every bound must match.
	if len(h.bounds) > 0 && &h.bounds[0] != &o.bounds[0] {
		for i := range h.bounds {
			if h.bounds[i] != o.bounds[i] {
				return fmt.Errorf("stats: merging histograms with mismatched bucket bounds (bucket %d: %d vs %d cycles)",
					i, h.bounds[i], o.bounds[i])
			}
		}
	}
	h.own()
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
	return nil
}

// Bucket is one cumulative histogram bucket in export form: Count
// observations had a value <= UpperBound.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound in cycles.
	UpperBound sim.Cycle `json:"le"`
	// Count is the cumulative observation count at this bound.
	Count uint64 `json:"count"`
}

// exportBounds are the coarse power-of-two bounds used for the
// Prometheus exposition: fine-grained internal buckets are folded into
// these so a scrape stays small (24 series per histogram, plus +Inf).
var exportBounds = func() []sim.Cycle {
	var b []sim.Cycle
	for v := sim.Cycle(1); v <= 1<<23; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// Cumulative folds the histogram into the coarse export bounds and
// returns cumulative counts, the Prometheus histogram convention. The
// final implicit +Inf bucket is Count().
func (h *Histogram) Cumulative() []Bucket {
	out := make([]Bucket, len(exportBounds))
	for i, ub := range exportBounds {
		out[i].UpperBound = ub
	}
	var cum uint64
	ei := 0
	for i, c := range h.counts {
		if i == len(h.bounds) {
			break // overflow lands in +Inf only
		}
		for ei < len(exportBounds) && h.bounds[i] > exportBounds[ei] {
			out[ei].Count = cum
			ei++
		}
		cum += c
	}
	for ; ei < len(exportBounds); ei++ {
		out[ei].Count = cum
	}
	return out
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to hand
// to another goroutine (the live Histogram is owned by the simulation
// loop and is not synchronized).
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations (Sum in cycles).
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Min and Max are the observed extremes (0 when Count is 0).
	Min sim.Cycle `json:"min"`
	Max sim.Cycle `json:"max"`
	// P50, P95 and P99 are extracted quantiles.
	P50 sim.Cycle `json:"p50"`
	P95 sim.Cycle `json:"p95"`
	P99 sim.Cycle `json:"p99"`
	// Buckets is the cumulative export-form histogram.
	Buckets []Bucket `json:"buckets"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.total, Sum: h.sum,
		Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(50), P95: h.Quantile(95), P99: h.Quantile(99),
		Buckets: h.Cumulative(),
	}
}
