package stats

import (
	"reflect"
	"testing"

	"gonoc/internal/flit"
	"gonoc/internal/rng"
	"gonoc/internal/sim"
	"gonoc/internal/sweep"
)

func TestHistogramExactQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	for v := sim.Cycle(1); v <= 100; v++ {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want sim.Cycle
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}, {0.5, 1}}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(50) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram returned nonzero statistics")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	for _, b := range s.Buckets {
		if b.Count != 0 {
			t.Fatalf("empty histogram has nonzero bucket at le=%d", b.UpperBound)
		}
	}
}

func TestHistogramTailBuckets(t *testing.T) {
	h := NewHistogram(nil)
	// Values beyond the exact region land in log-linear buckets; the
	// quantile must come back within the bucket's relative width.
	h.Observe(100_000)
	if got := h.Quantile(50); got < 100_000 || float64(got) > 100_000*1.15 {
		t.Errorf("tail quantile = %d, want within ~12%% above 100000", got)
	}
	// Beyond the largest bound the overflow bucket reports the exact max.
	h2 := NewHistogram(nil)
	h2.Observe(1 << 30)
	if got := h2.Quantile(99); got != 1<<30 {
		t.Errorf("overflow quantile = %d, want exact max", got)
	}
}

func TestHistogramCumulativeExport(t *testing.T) {
	h := NewHistogram(nil)
	for _, v := range []sim.Cycle{0, 1, 2, 3, 4, 8, 9, 1000, 5000, 1 << 25} {
		h.Observe(v)
	}
	buckets := h.Cumulative()
	if len(buckets) == 0 {
		t.Fatal("no export buckets")
	}
	// Cumulative counts must be monotonic and end at Count() minus the
	// overflow observations (which only the implicit +Inf bucket holds).
	var prev uint64
	at := func(ub sim.Cycle) uint64 {
		for _, b := range buckets {
			if b.UpperBound == ub {
				return b.Count
			}
		}
		t.Fatalf("no export bucket le=%d", ub)
		return 0
	}
	for _, b := range buckets {
		if b.Count < prev {
			t.Fatalf("cumulative counts not monotonic at le=%d", b.UpperBound)
		}
		prev = b.Count
	}
	if got := at(1); got != 2 { // values 0, 1
		t.Errorf("le=1 count = %d, want 2", got)
	}
	if got := at(4); got != 5 { // + 2, 3, 4
		t.Errorf("le=4 count = %d, want 5", got)
	}
	if got := at(16); got != 7 { // + 8, 9
		t.Errorf("le=16 count = %d, want 7", got)
	}
	if got := buckets[len(buckets)-1].Count; got != 9 { // all but 1<<25
		t.Errorf("last finite bucket = %d, want 9", got)
	}
	if h.Count() != 10 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHistogramMergeBitExact(t *testing.T) {
	r := rng.New(7)
	values := make([]sim.Cycle, 5000)
	for i := range values {
		values[i] = sim.Cycle(r.Intn(20000))
	}
	whole := NewHistogram(nil)
	for _, v := range values {
		whole.Observe(v)
	}
	// Shard the observations over 8 histograms and merge: the result
	// must be identical field-for-field regardless of sharding.
	shards := make([]*Histogram, 8)
	for i := range shards {
		shards[i] = NewHistogram(nil)
	}
	for i, v := range values {
		shards[i%8].Observe(v)
	}
	merged := NewHistogram(nil)
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(whole.Snapshot(), merged.Snapshot()) {
		t.Fatal("merged histogram diverged from whole-stream histogram")
	}
	if whole.Quantile(99) != merged.Quantile(99) {
		t.Fatal("p99 diverged after merge")
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram(nil)
	b := NewHistogram([]sim.Cycle{1, 2, 3})
	b.Observe(2)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted mismatched bucket layouts")
	}
}

// TestCollectorMergeSweepFanOut is the sweep fan-out acceptance test:
// recording a packet population into one collector versus sharding it
// over per-worker collectors (at any worker count) and merging in index
// order must produce byte-identical summaries and identical histogram
// snapshots.
func TestCollectorMergeSweepFanOut(t *testing.T) {
	mk := func(i int) *flit.Packet {
		return &flit.Packet{
			CreatedAt: sim.Cycle(i), InjectedAt: sim.Cycle(i + 1 + i%3),
			EjectedAt: sim.Cycle(i + 10 + (i*i)%97),
			Class:     flit.Class(i % 2), Size: 1 + i%5,
		}
	}
	const n = 2000
	whole := NewCollector(5)
	for i := 0; i < n; i++ {
		p := mk(i)
		whole.RecordCreation(p)
		whole.RecordEjection(p)
	}
	for _, workers := range []int{1, 8} {
		const shards = 16
		parts := sweep.Run(shards, workers, func(s int) *Collector {
			c := NewCollector(5)
			for i := s; i < n; i += shards {
				p := mk(i)
				c.RecordCreation(p)
				c.RecordEjection(p)
			}
			return c
		})
		merged := NewCollector(5)
		for _, part := range parts {
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Measured() != whole.Measured() {
			t.Fatalf("workers=%d: measured %d vs %d", workers, merged.Measured(), whole.Measured())
		}
		if !reflect.DeepEqual(whole.LatencyHist().Snapshot(), merged.LatencyHist().Snapshot()) {
			t.Fatalf("workers=%d: merged latency histogram diverged", workers)
		}
		if !reflect.DeepEqual(whole.NetworkLatencyHist().Snapshot(), merged.NetworkLatencyHist().Snapshot()) {
			t.Fatalf("workers=%d: merged network histogram diverged", workers)
		}
		for q := range []int{50, 95, 99} {
			if whole.Percentile(float64(q)) != merged.Percentile(float64(q)) {
				t.Fatalf("workers=%d: p%d diverged", workers, q)
			}
		}
		if whole.MinLatency() != merged.MinLatency() || whole.MaxLatency() != merged.MaxLatency() {
			t.Fatalf("workers=%d: extremes diverged", workers)
		}
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 10; i++ {
		p := &flit.Packet{CreatedAt: 0, InjectedAt: 2, EjectedAt: sim.Cycle(10 + i), Size: 2}
		c.RecordCreation(p)
		c.RecordEjection(p)
	}
	s := c.Snapshot()
	if s.Created != 10 || s.Ejected != 10 || s.Measured != 10 || s.InFlight != 0 {
		t.Fatalf("snapshot counts: %+v", s)
	}
	if s.Latency.P50 != sim.Cycle(c.Percentile(50)) {
		t.Errorf("snapshot p50 %d vs collector %v", s.Latency.P50, c.Percentile(50))
	}
	if s.AvgLatency != c.AvgLatency() {
		t.Errorf("snapshot avg %v vs %v", s.AvgLatency, c.AvgLatency())
	}
	// Snapshot of an empty collector must be all zeros, not NaN.
	empty := NewCollector(100).Snapshot()
	if empty.AvgLatency != 0 || empty.Latency.P99 != 0 || empty.Latency.Count != 0 {
		t.Errorf("empty snapshot: %+v", empty)
	}
}

// TestHistogramMergeSameLengthDifferentBounds: equal bucket counts with
// different bounds must be rejected too — adding such counts silently
// reassigns observations to different latency ranges.
func TestHistogramMergeSameLengthDifferentBounds(t *testing.T) {
	a := NewHistogram([]sim.Cycle{1, 2, 3})
	b := NewHistogram([]sim.Cycle{1, 2, 4})
	a.Observe(1)
	b.Observe(4)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted same-length histograms with different bounds")
	}
	// Identical (but separately allocated) bounds merge fine.
	c := NewHistogram([]sim.Cycle{1, 2, 3})
	c.Observe(3)
	if err := a.Merge(c); err != nil {
		t.Fatalf("merge rejected identical bounds: %v", err)
	}
	if a.Count() != 2 {
		t.Fatalf("count after merge = %d, want 2", a.Count())
	}
}

// TestHistogramQuantileEdges pins Quantile's edge behavior: empty,
// single-element and p=100 inputs, plus ranks landing in the overflow
// bucket (where the exact observed max is reported).
func TestHistogramQuantileEdges(t *testing.T) {
	empty := NewHistogram(nil)
	for _, p := range []float64{1, 50, 100} {
		if got := empty.Quantile(p); got != 0 {
			t.Errorf("empty p%v = %d, want 0", p, got)
		}
	}
	single := NewHistogram(nil)
	single.Observe(37)
	for _, p := range []float64{0.01, 1, 50, 99, 100} {
		if got := single.Quantile(p); got != 37 {
			t.Errorf("single-element p%v = %d, want 37", p, got)
		}
	}
	overflow := NewHistogram([]sim.Cycle{10, 20})
	overflow.Observe(5)
	overflow.Observe(123456) // overflow bucket
	if got := overflow.Quantile(100); got != 123456 {
		t.Errorf("overflow p100 = %d, want the exact max 123456", got)
	}
	if got := overflow.Quantile(50); got != 10 {
		t.Errorf("p50 = %d, want bucket bound 10", got)
	}
}
