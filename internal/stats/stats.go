// Package stats collects packet-level performance statistics from a NoC
// simulation: latency (creation to ejection, i.e. including source
// queueing), network latency (injection to ejection), hop counts and
// throughput, with a warmup window excluded from measurement.
//
// Latency is accumulated in fixed-bucket histograms (see Histogram), so
// a collector's memory stays bounded over arbitrarily long campaigns
// while still supporting distribution queries — p50/p95/p99 extraction,
// Prometheus-style cumulative buckets for the telemetry layer, and a
// bit-exact Merge for sweep fan-out.
package stats

import (
	"fmt"
	"math"
	"sort"

	"gonoc/internal/flit"
	"gonoc/internal/sim"
)

// IntPercentile returns the p-th percentile (0 < p <= 100) of values by
// the nearest-rank method — the same semantics Histogram.Quantile uses —
// or 0 with no values. The input is copied, not modified. Campaign
// drivers use it for small per-trial populations (fault counts) that
// don't warrant a histogram.
func IntPercentile(values []int, p float64) int {
	if len(values) == 0 {
		return 0
	}
	s := make([]int, len(values))
	copy(s, values)
	sort.Ints(s)
	rank := int(math.Ceil(float64(len(s)) * p / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Collector accumulates per-packet statistics. Packets created before
// Warmup are counted but excluded from latency measurement, the standard
// methodology for steady-state NoC measurement.
//
// Warmup edge case: when every created packet predates the warmup cutoff
// (Measured() == 0 — short runs, or a warmup longer than the run), all
// latency statistics — averages, percentiles, extremes, class averages —
// return 0 rather than NaN or an uninitialized extreme, so downstream
// report formatting never has to special-case an empty measurement
// window.
type Collector struct {
	// Warmup is the cycle before which created packets are not measured.
	Warmup sim.Cycle

	created  uint64
	ejected  uint64
	measured uint64

	// dropped counts packets discarded by the network (dead links,
	// unreachable destinations); duplicates counts redundant deliveries
	// suppressed at sink NIs; retransmits counts re-injected copies
	// issued by the end-to-end reliability layer. Every physical packet
	// ends in exactly one of ejected, dropped or duplicates, which is
	// what keeps InFlight draining to zero under faults.
	dropped     uint64
	duplicates  uint64
	retransmits uint64

	latSum float64
	netSum float64
	hopSum float64
	latMin sim.Cycle
	latMax sim.Cycle
	flits  uint64

	// lat and net hold the total (creation→ejection) and in-network
	// (injection→ejection) latency distributions; classLat splits the
	// total latency per message class.
	lat      *Histogram
	net      *Histogram
	classLat [flit.NumClasses]*Histogram

	byClass [flit.NumClasses]struct {
		n      uint64
		latSum float64
	}
}

// NewCollector returns a collector measuring packets created at or after
// warmup.
func NewCollector(warmup sim.Cycle) *Collector {
	return &Collector{Warmup: warmup, latMin: math.MaxUint64}
}

// ensureHists lazily allocates the histograms, so a zero-value Collector
// keeps working and an all-warmup run allocates nothing.
func (c *Collector) ensureHists() {
	if c.lat != nil {
		return
	}
	c.lat = NewHistogram(nil)
	c.net = NewHistogram(nil)
	for i := range c.classLat {
		c.classLat[i] = NewHistogram(nil)
	}
}

// RecordCreation notes that a packet was offered to the network.
func (c *Collector) RecordCreation(*flit.Packet) { c.created++ }

// RecordDrop notes that a packet was discarded by the network — at a
// dead link, or because no path to its destination survives the fault
// set. Called at most once per physical packet.
func (c *Collector) RecordDrop(*flit.Packet) { c.dropped++ }

// RecordDuplicate notes that a sink NI suppressed a redundant delivery
// of an already-delivered packet.
func (c *Collector) RecordDuplicate(*flit.Packet) { c.duplicates++ }

// RecordRetransmit notes that a source NI re-injected an unacknowledged
// packet. The copy is also recorded with RecordCreation, so unique
// offered packets = Created() - Retransmits().
func (c *Collector) RecordRetransmit(*flit.Packet) { c.retransmits++ }

// RecordEjection records a completed packet. The packet must have its
// CreatedAt and EjectedAt stamps set.
func (c *Collector) RecordEjection(p *flit.Packet) {
	c.ejected++
	if p.CreatedAt < c.Warmup {
		return
	}
	c.ensureHists()
	lat := p.Latency()
	c.measured++
	c.latSum += float64(lat)
	c.netSum += float64(p.NetworkLatency())
	c.hopSum += float64(p.Size)
	c.flits += uint64(p.Size)
	if lat < c.latMin {
		c.latMin = lat
	}
	if lat > c.latMax {
		c.latMax = lat
	}
	c.lat.Observe(lat)
	c.net.Observe(p.NetworkLatency())
	if int(p.Class) < len(c.byClass) {
		c.byClass[p.Class].n++
		c.byClass[p.Class].latSum += float64(lat)
		c.classLat[p.Class].Observe(lat)
	}
}

// Created returns the number of packets offered.
func (c *Collector) Created() uint64 { return c.created }

// Ejected returns the number of packets delivered.
func (c *Collector) Ejected() uint64 { return c.ejected }

// Measured returns the number of packets included in latency statistics.
func (c *Collector) Measured() uint64 { return c.measured }

// Dropped returns the number of packets discarded by the network.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Duplicates returns the number of deliveries suppressed as duplicates.
func (c *Collector) Duplicates() uint64 { return c.duplicates }

// Retransmits returns the number of re-injected packet copies.
func (c *Collector) Retransmits() uint64 { return c.retransmits }

// InFlight returns the number of packets offered and still owned by the
// network: not yet delivered, discarded, or suppressed as duplicates.
func (c *Collector) InFlight() uint64 {
	return c.created - c.ejected - c.dropped - c.duplicates
}

// DeliveryRatio returns delivered unique packets over offered unique
// packets — ejected / (created - retransmits) — or 1 when nothing was
// offered. With end-to-end retransmission enabled it reaches 1.0 exactly
// when every offered packet was eventually delivered.
func (c *Collector) DeliveryRatio() float64 {
	unique := c.created - c.retransmits
	if unique == 0 {
		return 1
	}
	return float64(c.ejected) / float64(unique)
}

// AvgLatency returns the mean packet latency in cycles (creation to
// ejection), or 0 with no measured packets (see the warmup edge case in
// the Collector docs).
func (c *Collector) AvgLatency() float64 {
	if c.measured == 0 {
		return 0
	}
	return c.latSum / float64(c.measured)
}

// AvgNetworkLatency returns the mean in-network latency in cycles, or 0
// with no measured packets.
func (c *Collector) AvgNetworkLatency() float64 {
	if c.measured == 0 {
		return 0
	}
	return c.netSum / float64(c.measured)
}

// ClassAvgLatency returns the mean latency of one message class, or 0
// when no packet of that class was measured.
func (c *Collector) ClassAvgLatency(cls flit.Class) float64 {
	b := c.byClass[cls]
	if b.n == 0 {
		return 0
	}
	return b.latSum / float64(b.n)
}

// MinLatency and MaxLatency return the observed latency extremes.
func (c *Collector) MinLatency() sim.Cycle {
	if c.measured == 0 {
		return 0
	}
	return c.latMin
}

// MaxLatency returns the largest observed packet latency.
func (c *Collector) MaxLatency() sim.Cycle { return c.latMax }

// LatencyHist returns the total-latency histogram, or nil when no packet
// has been measured yet.
func (c *Collector) LatencyHist() *Histogram { return c.lat }

// NetworkLatencyHist returns the in-network-latency histogram, or nil
// when no packet has been measured yet.
func (c *Collector) NetworkLatencyHist() *Histogram { return c.net }

// ClassLatencyHist returns the total-latency histogram of one message
// class, or nil when no packet has been measured yet.
func (c *Collector) ClassLatencyHist(cls flit.Class) *Histogram {
	if int(cls) >= len(c.classLat) {
		return nil
	}
	return c.classLat[cls]
}

// Percentile returns the p-th latency percentile (0 < p <= 100),
// extracted from the latency histogram: exact for latencies with
// one-cycle-wide buckets (up to 4096 cycles with the default bounds) and
// bucket-resolution above. Returns 0 with no measured packets.
func (c *Collector) Percentile(p float64) float64 {
	if c.measured == 0 {
		return 0
	}
	return float64(c.lat.Quantile(p))
}

// NetworkPercentile is Percentile over the in-network latency
// distribution.
func (c *Collector) NetworkPercentile(p float64) float64 {
	if c.measured == 0 {
		return 0
	}
	return float64(c.net.Quantile(p))
}

// ClassPercentile is Percentile over one message class's latency
// distribution.
func (c *Collector) ClassPercentile(cls flit.Class, p float64) float64 {
	h := c.ClassLatencyHist(cls)
	if h == nil {
		return 0
	}
	return float64(h.Quantile(p))
}

// ThroughputFlits returns accepted flits per cycle over the measurement
// interval ending at cycle end, or 0 when end is inside the warmup
// window (end <= Warmup would otherwise divide by zero).
func (c *Collector) ThroughputFlits(end sim.Cycle) float64 {
	if end <= c.Warmup {
		return 0
	}
	return float64(c.flits) / float64(end-c.Warmup)
}

// Merge folds other's measurements into c, for aggregating per-worker
// collectors after a sweep fan-out. The histogram and counter merges are
// pure integer arithmetic — bit-exact in any merge order; the float
// accumulators (latSum, class sums) are summed in call order, so merging
// shards in a fixed order (e.g. sweep index order) keeps averages
// deterministic too. The receivers' Warmup values are not reconciled;
// each shard applies its own cutoff when recording.
func (c *Collector) Merge(other *Collector) error {
	if other == nil {
		return nil
	}
	c.created += other.created
	c.ejected += other.ejected
	c.dropped += other.dropped
	c.duplicates += other.duplicates
	c.retransmits += other.retransmits
	c.flits += other.flits
	c.latSum += other.latSum
	c.netSum += other.netSum
	c.hopSum += other.hopSum
	if other.measured > 0 {
		if c.measured == 0 || other.latMin < c.latMin {
			c.latMin = other.latMin
		}
		if other.latMax > c.latMax {
			c.latMax = other.latMax
		}
		c.ensureHists()
		if err := c.lat.Merge(other.lat); err != nil {
			return err
		}
		if err := c.net.Merge(other.net); err != nil {
			return err
		}
		for i := range c.classLat {
			if err := c.classLat[i].Merge(other.classLat[i]); err != nil {
				return err
			}
		}
	}
	c.measured += other.measured
	for i := range c.byClass {
		c.byClass[i].n += other.byClass[i].n
		c.byClass[i].latSum += other.byClass[i].latSum
	}
	return nil
}

// Snapshot is a point-in-time copy of a collector's aggregates, safe to
// publish to another goroutine (the live Collector is owned by the
// simulation loop and is not synchronized — the telemetry layer captures
// snapshots from a cycle hook, which runs in the serial phase of the
// network step).
type Snapshot struct {
	Created  uint64 `json:"created"`
	Ejected  uint64 `json:"ejected"`
	Measured uint64 `json:"measured"`
	InFlight uint64 `json:"in_flight"`

	Dropped       uint64  `json:"dropped"`
	Duplicates    uint64  `json:"duplicates"`
	Retransmits   uint64  `json:"retransmits"`
	DeliveryRatio float64 `json:"delivery_ratio"`

	AvgLatency        float64 `json:"avg_latency"`
	AvgNetworkLatency float64 `json:"avg_network_latency"`

	// Latency and NetworkLatency carry the distribution state; Classes
	// holds the per-message-class total-latency distributions, indexed
	// by flit.Class.
	Latency        HistogramSnapshot                  `json:"latency"`
	NetworkLatency HistogramSnapshot                  `json:"network_latency"`
	Classes        [flit.NumClasses]HistogramSnapshot `json:"classes"`
}

// Snapshot captures the collector's current aggregates.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Created: c.created, Ejected: c.ejected, Measured: c.measured,
		InFlight: c.InFlight(),
		Dropped:  c.dropped, Duplicates: c.duplicates, Retransmits: c.retransmits,
		DeliveryRatio: c.DeliveryRatio(),
		AvgLatency:    c.AvgLatency(), AvgNetworkLatency: c.AvgNetworkLatency(),
	}
	if c.measured > 0 {
		s.Latency = c.lat.Snapshot()
		s.NetworkLatency = c.net.Snapshot()
		for i := range c.classLat {
			s.Classes[i] = c.classLat[i].Snapshot()
		}
	}
	return s
}

// String implements fmt.Stringer.
func (c *Collector) String() string {
	return fmt.Sprintf("stats{created=%d ejected=%d avgLat=%.1f}", c.created, c.ejected, c.AvgLatency())
}

// Summary renders every aggregate the collector holds as a multi-line
// string. Two runs of the same simulation produce byte-identical
// summaries — the floating-point accumulators are summed in ejection
// order, which the network keeps canonical, and the histogram state is
// integral — so golden-determinism and serial/parallel conformance tests
// compare Summary outputs directly.
func (c *Collector) Summary() string {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("created %d ejected %d measured %d in-flight %d\n",
		c.created, c.ejected, c.measured, c.InFlight())
	if c.dropped != 0 || c.duplicates != 0 || c.retransmits != 0 {
		app("dropped %d duplicates %d retransmits %d\n",
			c.dropped, c.duplicates, c.retransmits)
	}
	app("latency avg %v net %v min %d max %d\n",
		c.AvgLatency(), c.AvgNetworkLatency(), c.MinLatency(), c.latMax)
	app("latency p50 %v p95 %v p99 %v\n",
		c.Percentile(50), c.Percentile(95), c.Percentile(99))
	if c.measured > 0 {
		app("hist count %d sum %d netsum %d\n", c.lat.Count(), c.lat.Sum(), c.net.Sum())
	}
	app("flits %d hopsum %v\n", c.flits, c.hopSum)
	for cls := range c.byClass {
		if c.byClass[cls].n == 0 {
			continue
		}
		app("class %d n %d latsum %v\n", cls, c.byClass[cls].n, c.byClass[cls].latSum)
	}
	return string(b)
}
