// Package stats collects packet-level performance statistics from a NoC
// simulation: latency (creation to ejection, i.e. including source
// queueing), network latency (injection to ejection), hop counts and
// throughput, with a warmup window excluded from measurement.
package stats

import (
	"fmt"
	"math"
	"sort"

	"gonoc/internal/flit"
	"gonoc/internal/sim"
)

// Collector accumulates per-packet statistics. Packets created before
// Warmup are counted but excluded from latency measurement, the standard
// methodology for steady-state NoC measurement.
type Collector struct {
	// Warmup is the cycle before which created packets are not measured.
	Warmup sim.Cycle

	created  uint64
	ejected  uint64
	measured uint64

	latSum  float64
	netSum  float64
	hopSum  float64
	latMin  sim.Cycle
	latMax  sim.Cycle
	flits   uint64
	samples []float64 // packet latencies, for percentiles

	byClass [flit.NumClasses]struct {
		n      uint64
		latSum float64
	}
}

// NewCollector returns a collector measuring packets created at or after
// warmup.
func NewCollector(warmup sim.Cycle) *Collector {
	return &Collector{Warmup: warmup, latMin: math.MaxUint64}
}

// RecordCreation notes that a packet was offered to the network.
func (c *Collector) RecordCreation(*flit.Packet) { c.created++ }

// RecordEjection records a completed packet. The packet must have its
// CreatedAt and EjectedAt stamps set.
func (c *Collector) RecordEjection(p *flit.Packet) {
	c.ejected++
	if p.CreatedAt < c.Warmup {
		return
	}
	lat := p.Latency()
	c.measured++
	c.latSum += float64(lat)
	c.netSum += float64(p.NetworkLatency())
	c.hopSum += float64(p.Size)
	c.flits += uint64(p.Size)
	if lat < c.latMin {
		c.latMin = lat
	}
	if lat > c.latMax {
		c.latMax = lat
	}
	c.samples = append(c.samples, float64(lat))
	if int(p.Class) < len(c.byClass) {
		c.byClass[p.Class].n++
		c.byClass[p.Class].latSum += float64(lat)
	}
}

// Created returns the number of packets offered.
func (c *Collector) Created() uint64 { return c.created }

// Ejected returns the number of packets delivered.
func (c *Collector) Ejected() uint64 { return c.ejected }

// Measured returns the number of packets included in latency statistics.
func (c *Collector) Measured() uint64 { return c.measured }

// InFlight returns the number of packets offered but not yet delivered.
func (c *Collector) InFlight() uint64 { return c.created - c.ejected }

// AvgLatency returns the mean packet latency in cycles (creation to
// ejection), or 0 with no measured packets.
func (c *Collector) AvgLatency() float64 {
	if c.measured == 0 {
		return 0
	}
	return c.latSum / float64(c.measured)
}

// AvgNetworkLatency returns the mean in-network latency in cycles.
func (c *Collector) AvgNetworkLatency() float64 {
	if c.measured == 0 {
		return 0
	}
	return c.netSum / float64(c.measured)
}

// ClassAvgLatency returns the mean latency of one message class.
func (c *Collector) ClassAvgLatency(cls flit.Class) float64 {
	b := c.byClass[cls]
	if b.n == 0 {
		return 0
	}
	return b.latSum / float64(b.n)
}

// MinLatency and MaxLatency return the observed latency extremes.
func (c *Collector) MinLatency() sim.Cycle {
	if c.measured == 0 {
		return 0
	}
	return c.latMin
}

// MaxLatency returns the largest observed packet latency.
func (c *Collector) MaxLatency() sim.Cycle { return c.latMax }

// Percentile returns the p-th latency percentile (0 < p <= 100).
func (c *Collector) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	s := make([]float64, len(c.samples))
	copy(s, c.samples)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// ThroughputFlits returns accepted flits per cycle over the measurement
// interval ending at cycle end.
func (c *Collector) ThroughputFlits(end sim.Cycle) float64 {
	if end <= c.Warmup {
		return 0
	}
	return float64(c.flits) / float64(end-c.Warmup)
}

// String implements fmt.Stringer.
func (c *Collector) String() string {
	return fmt.Sprintf("stats{created=%d ejected=%d avgLat=%.1f}", c.created, c.ejected, c.AvgLatency())
}

// Summary renders every aggregate the collector holds as a multi-line
// string. Two runs of the same simulation produce byte-identical
// summaries — the floating-point accumulators are summed in ejection
// order, which the network keeps canonical — so golden-determinism and
// serial/parallel conformance tests compare Summary outputs directly.
func (c *Collector) Summary() string {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("created %d ejected %d measured %d in-flight %d\n",
		c.created, c.ejected, c.measured, c.InFlight())
	app("latency avg %v net %v min %d max %d\n",
		c.AvgLatency(), c.AvgNetworkLatency(), c.MinLatency(), c.latMax)
	app("latency p50 %v p95 %v p99 %v\n",
		c.Percentile(50), c.Percentile(95), c.Percentile(99))
	app("flits %d hopsum %v\n", c.flits, c.hopSum)
	for cls := range c.byClass {
		if c.byClass[cls].n == 0 {
			continue
		}
		app("class %d n %d latsum %v\n", cls, c.byClass[cls].n, c.byClass[cls].latSum)
	}
	return string(b)
}
