package crossbar_test

import (
	"fmt"

	"gonoc/internal/crossbar"
)

// ExampleProtected demonstrates the Figure 6 secondary paths: with M3
// (0-based mux 2) faulty, output 2 stays reachable through mux 1.
func ExampleProtected() {
	x := crossbar.NewProtected(5)
	x.SetMuxFaulty(2, true)
	fmt.Println("reachable:", x.Reachable(2))
	fmt.Println("via mux:", x.SecondaryOf(2))
	fmt.Println("whole crossbar ok:", x.AllReachable())
	// Output:
	// reachable: true
	// via mux: 1
	// whole crossbar ok: true
}
