// Package crossbar models the router's switch stage: the baseline P×P
// multiplexer crossbar (Figure 3c) and the paper's protected crossbar
// (Figure 6), which adds a secondary path to every output port.
//
// In the baseline crossbar each output port k is driven by a single pi:1
// multiplexer Mk; a permanent fault in Mk makes output k unreachable. The
// protected crossbar adds a small demultiplexer after selected muxes and a
// 2:1 multiplexer Pk in front of every output, so each output is reachable
// through two different pi:1 muxes:
//
//	secondary(out₁) = M₂   secondary(out₂) = M_P   secondary(out_k) = M_{k−1}, k ≥ 3
//
// (0-based in code). For P = 5 this is exactly Figure 6's circuit — one
// 1:3 demux after M2 (serving out1 and out3), three 1:2 demuxes after
// M3..M5, five 2:1 output muxes — and it reproduces the paper's worked
// example (out 3 reached through M2, D1 and P3) and its fault analysis
// (M2 and M4 faulty is tolerable; any further mux fault causes failure).
package crossbar

import (
	"errors"
	"fmt"
)

// Traverse failure modes, returned as shared sentinel errors so the
// router's hot path pays no allocation when a grant meets a fresh fault:
// callers branch on nil-ness (and may errors.Is against these), and the
// fault site is identified by the grant being cancelled, not by error
// text.
var (
	// ErrMuxFaulty reports a traversal through a faulty pi:1 output mux.
	ErrMuxFaulty = errors.New("crossbar: output mux is faulty")
	// ErrMuxInUse reports a second traversal through a mux already
	// carrying a flit this cycle (an allocation bug in the caller).
	ErrMuxInUse = errors.New("crossbar: output mux already used this cycle")
	// ErrSecondaryFaulty reports a traversal directed through a faulty
	// secondary path.
	ErrSecondaryFaulty = errors.New("crossbar: secondary path is faulty")
)

// Baseline is the unprotected P×P crossbar: one pi:1 output multiplexer
// per output port, a single path to each output.
type Baseline struct {
	p      int
	faulty []bool // output mux Mk
	inUse  []int  // input currently driving mux k this cycle, or -1
}

// NewBaseline returns a P×P crossbar. It panics if p < 2.
func NewBaseline(p int) *Baseline {
	if p < 2 {
		panic(fmt.Sprintf("crossbar: invalid radix %d", p))
	}
	x := &Baseline{p: p, faulty: make([]bool, p), inUse: make([]int, p)}
	x.BeginCycle()
	return x
}

// Ports returns the crossbar radix.
func (x *Baseline) Ports() int { return x.p }

// SetMuxFaulty marks output mux out permanently faulty.
func (x *Baseline) SetMuxFaulty(out int, f bool) { x.faulty[out] = f }

// MuxFaulty reports whether output mux out is faulty.
func (x *Baseline) MuxFaulty(out int) bool { return x.faulty[out] }

// Reachable reports whether output out can be reached at all.
func (x *Baseline) Reachable(out int) bool { return !x.faulty[out] }

// BeginCycle resets per-cycle mux usage. Call once per simulated cycle
// before any Traverse.
func (x *Baseline) BeginCycle() {
	for i := range x.inUse {
		x.inUse[i] = -1
	}
}

// Traverse moves a flit from input port in to output port out. It returns
// an error if the output mux is faulty or already carrying a flit this
// cycle (an allocation bug).
func (x *Baseline) Traverse(in, out int) error {
	if x.faulty[out] {
		return ErrMuxFaulty
	}
	if x.inUse[out] != -1 {
		return ErrMuxInUse
	}
	x.inUse[out] = in
	return nil
}

// Protected is the fault-tolerant crossbar of Figure 6. Fault sites are
// the P primary output muxes Mk and the P secondary paths (the demux leg
// plus output mux Pk serving each output).
type Protected struct {
	p         int
	muxFaulty []bool // primary pi:1 mux Mk
	secFaulty []bool // secondary path (demux leg + Pk) of output k
	inUse     []int  // input driving pi:1 mux k this cycle, or -1
}

// NewProtected returns a protected P×P crossbar. It panics if p < 3,
// since the secondary-path assignment needs at least three outputs.
func NewProtected(p int) *Protected {
	if p < 3 {
		panic(fmt.Sprintf("crossbar: protected crossbar needs radix >= 3, got %d", p))
	}
	x := &Protected{
		p:         p,
		muxFaulty: make([]bool, p),
		secFaulty: make([]bool, p),
		inUse:     make([]int, p),
	}
	x.BeginCycle()
	return x
}

// Ports returns the crossbar radix.
func (x *Protected) Ports() int { return x.p }

// SecondaryOf returns the index of the pi:1 mux providing output out's
// secondary path.
func (x *Protected) SecondaryOf(out int) int {
	switch out {
	case 0:
		return 1
	case 1:
		return x.p - 1
	default:
		return out - 1
	}
}

// SetMuxFaulty marks primary mux M_out faulty.
func (x *Protected) SetMuxFaulty(out int, f bool) { x.muxFaulty[out] = f }

// MuxFaulty reports whether primary mux M_out is faulty.
func (x *Protected) MuxFaulty(out int) bool { return x.muxFaulty[out] }

// SetSecondaryFaulty marks output out's secondary path (demux leg + Pk
// mux) faulty.
func (x *Protected) SetSecondaryFaulty(out int, f bool) { x.secFaulty[out] = f }

// SecondaryFaulty reports whether output out's secondary path is faulty.
func (x *Protected) SecondaryFaulty(out int) bool { return x.secFaulty[out] }

// PrimaryUsable reports whether output out's regular path works.
func (x *Protected) PrimaryUsable(out int) bool { return !x.muxFaulty[out] }

// SecondaryUsable reports whether output out's secondary path works: the
// neighbouring mux and the demux/Pk leg must both be fault-free.
func (x *Protected) SecondaryUsable(out int) bool {
	return !x.secFaulty[out] && !x.muxFaulty[x.SecondaryOf(out)]
}

// Reachable reports whether output out can be reached through either path.
func (x *Protected) Reachable(out int) bool {
	return x.PrimaryUsable(out) || x.SecondaryUsable(out)
}

// AllReachable reports whether every output is reachable — the crossbar
// failure predicate used in SPF analysis.
func (x *Protected) AllReachable() bool {
	for out := 0; out < x.p; out++ {
		if !x.Reachable(out) {
			return false
		}
	}
	return true
}

// BeginCycle resets per-cycle mux usage.
func (x *Protected) BeginCycle() {
	for i := range x.inUse {
		x.inUse[i] = -1
	}
}

// Traverse moves a flit from input port in to output port out, via the
// secondary path when secondary is true. The pi:1 mux actually used is
// M_out for the primary path and M_{secondary(out)} otherwise; each pi:1
// mux carries at most one flit per cycle.
func (x *Protected) Traverse(in, out int, secondary bool) error {
	mux := out
	if secondary {
		if x.secFaulty[out] {
			return ErrSecondaryFaulty
		}
		mux = x.SecondaryOf(out)
	}
	if x.muxFaulty[mux] {
		return ErrMuxFaulty
	}
	if x.inUse[mux] != -1 {
		return ErrMuxInUse
	}
	x.inUse[mux] = in
	return nil
}
