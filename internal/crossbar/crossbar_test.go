package crossbar

import (
	"testing"
	"testing/quick"
)

func TestBaselineTraverse(t *testing.T) {
	x := NewBaseline(5)
	if err := x.Traverse(0, 3); err != nil {
		t.Fatalf("traverse failed: %v", err)
	}
	// Same mux twice in one cycle is an allocation bug.
	if err := x.Traverse(1, 3); err == nil {
		t.Fatal("double use of mux not detected")
	}
	x.BeginCycle()
	if err := x.Traverse(1, 3); err != nil {
		t.Fatalf("traverse after BeginCycle failed: %v", err)
	}
}

func TestBaselineFaultBlocksOutput(t *testing.T) {
	x := NewBaseline(5)
	x.SetMuxFaulty(2, true)
	if x.Reachable(2) {
		t.Fatal("faulty output reported reachable")
	}
	if err := x.Traverse(0, 2); err == nil {
		t.Fatal("traverse through faulty mux succeeded")
	}
	if !x.Reachable(1) {
		t.Fatal("healthy output unreachable")
	}
}

func TestSecondaryAssignment(t *testing.T) {
	// 0-based mirror of the paper's 1-based assignment:
	// out1→M2, out2→M5, out3→M2, out4→M3, out5→M4.
	x := NewProtected(5)
	want := map[int]int{0: 1, 1: 4, 2: 1, 3: 2, 4: 3}
	for out, sec := range want {
		if got := x.SecondaryOf(out); got != sec {
			t.Errorf("SecondaryOf(%d) = %d, want %d", out, got, sec)
		}
	}
}

func TestPaperExampleOut3ViaM2(t *testing.T) {
	// Paper: "output port 3 ... can be reached through either multiplexer
	// M3 or M2". 0-based: out2 via M2 (primary) or M1 (secondary).
	x := NewProtected(5)
	x.SetMuxFaulty(2, true)
	if !x.Reachable(2) {
		t.Fatal("out3 unreachable with only M3 faulty")
	}
	if x.PrimaryUsable(2) || !x.SecondaryUsable(2) {
		t.Fatal("expected secondary path only")
	}
	if err := x.Traverse(0, 2, true); err != nil {
		t.Fatalf("secondary traverse failed: %v", err)
	}
}

func TestPaperMaxTwoFaults(t *testing.T) {
	// Paper (Section VIII-D): with M2 and M4 faulty the crossbar still
	// functions; a further fault in M1, M3 or M5 (or in the correction
	// circuitry) causes failure. 0-based: M1 and M3 faulty is tolerable.
	x := NewProtected(5)
	x.SetMuxFaulty(1, true)
	x.SetMuxFaulty(3, true)
	if !x.AllReachable() {
		t.Fatal("crossbar failed with the paper's tolerable 2-fault pattern")
	}
	for _, extra := range []int{0, 2, 4} {
		y := NewProtected(5)
		y.SetMuxFaulty(1, true)
		y.SetMuxFaulty(3, true)
		y.SetMuxFaulty(extra, true)
		if y.AllReachable() {
			t.Errorf("crossbar survived third mux fault M%d", extra+1)
		}
	}
}

func TestSecondaryPathFault(t *testing.T) {
	x := NewProtected(5)
	x.SetMuxFaulty(2, true)       // out2 loses primary
	x.SetSecondaryFaulty(2, true) // and its secondary path
	if x.Reachable(2) {
		t.Fatal("out2 reachable with both paths faulty")
	}
	if x.AllReachable() {
		t.Fatal("AllReachable with a dead output")
	}
	// Minimum faults to cause failure is 2 — matches Section VIII-D.
}

func TestSecondaryFaultAloneHarmless(t *testing.T) {
	x := NewProtected(5)
	x.SetSecondaryFaulty(0, true)
	if !x.AllReachable() {
		t.Fatal("secondary-only fault made an output unreachable")
	}
	if err := x.Traverse(0, 0, false); err != nil {
		t.Fatalf("primary traverse failed: %v", err)
	}
	if err := x.Traverse(1, 0, true); err == nil {
		t.Fatal("traverse via faulty secondary succeeded")
	}
}

func TestProtectedMuxConflict(t *testing.T) {
	// A flit using M1 as out1's primary and a flit using M1 as out0's
	// secondary conflict on the same physical mux.
	x := NewProtected(5)
	if err := x.Traverse(0, 1, false); err != nil {
		t.Fatalf("primary traverse failed: %v", err)
	}
	if err := x.Traverse(2, 0, true); err == nil {
		t.Fatal("mux sharing conflict not detected")
	}
	x.BeginCycle()
	if err := x.Traverse(2, 0, true); err != nil {
		t.Fatalf("secondary traverse failed after new cycle: %v", err)
	}
}

func TestFaultyPrimaryTraverseFails(t *testing.T) {
	x := NewProtected(5)
	x.SetMuxFaulty(4, true)
	if err := x.Traverse(0, 4, false); err == nil {
		t.Fatal("traverse through faulty primary succeeded")
	}
	if err := x.Traverse(0, 4, true); err != nil {
		t.Fatalf("secondary traverse failed: %v", err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBaseline(1) },
		func() { NewProtected(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor did not panic on invalid radix")
				}
			}()
			f()
		}()
	}
}

// Property: in a fault-free protected crossbar every output's primary and
// secondary muxes differ, every output is reachable, and the secondary
// assignment uses each mux as a secondary at most... (M2 serves two in the
// P=5 case, so: every mux serves at most two outputs as secondary and the
// assignment is total).
func TestSecondaryAssignmentProperty(t *testing.T) {
	f := func(radix uint8) bool {
		p := int(radix%8) + 3 // 3..10
		x := NewProtected(p)
		load := make([]int, p)
		for out := 0; out < p; out++ {
			sec := x.SecondaryOf(out)
			if sec == out || sec < 0 || sec >= p {
				return false
			}
			load[sec]++
			if !x.Reachable(out) {
				return false
			}
		}
		for _, l := range load {
			if l > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any single mux fault leaves all outputs reachable (the paper's
// single-fault tolerance claim for the XB stage).
func TestSingleFaultToleranceProperty(t *testing.T) {
	for p := 3; p <= 9; p++ {
		for m := 0; m < p; m++ {
			x := NewProtected(p)
			x.SetMuxFaulty(m, true)
			if !x.AllReachable() {
				t.Errorf("radix %d: single fault in M%d broke reachability", p, m)
			}
		}
	}
}
